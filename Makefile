GO ?= go
BENCHTIME ?= 0.2s

.PHONY: verify fmt vet build test race bench bench-gate bench-workers chaos

# verify is the tier-1 gate: formatting, vet, build, the full test suite,
# and a race pass over the concurrently-exercised packages.
verify: fmt vet build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/obs ./internal/obs/export ./internal/obs/replay ./internal/optim ./internal/resilience ./internal/resilience/chaostest ./internal/core ./internal/extract ./internal/experiments

# chaos runs the deterministic fault-injection suite under the race
# detector; -count=1 defeats the test cache so faults are re-injected.
chaos:
	$(GO) test -race -count=1 ./internal/resilience/...

# bench appends the next BENCH_<n>.json point to the benchmark trajectory;
# bench-gate compares the two newest points and fails on a >10% ns/op
# regression (see README "Benchmark trajectory").
bench:
	$(GO) run ./cmd/benchgate run -benchtime $(BENCHTIME)

bench-gate:
	$(GO) run ./cmd/benchgate compare

# bench-workers runs only the Workers benchmark variants (serial pipelines
# with the evaluation fan-out at NumCPU width) for a quick parallel-path
# wall-clock check without recording a trajectory point.
bench-workers:
	$(GO) test -run '^$$' -bench 'Workers$$' -benchmem -benchtime $(BENCHTIME) .
