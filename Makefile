GO ?= go
BENCHTIME ?= 0.2s
FUZZTIME ?= 30s

.PHONY: verify fmt vet staticcheck build test race bench bench-gate bench-smoke bench-workers chaos chaos-servd verify-invariants fuzz-smoke trace-smoke servd-smoke soak-smoke campaign-smoke

# verify is the tier-1 gate: formatting, vet, staticcheck (when installed),
# build, the full test suite, and a race pass over the concurrently-exercised
# packages.
verify: fmt vet staticcheck build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when the binary is on PATH, skip
# (loudly) when it is not, so the gate works in hermetic containers.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/obs ./internal/obs/export ./internal/obs/replay ./internal/optim ./internal/resilience ./internal/resilience/chaostest ./internal/core ./internal/extract ./internal/experiments ./internal/serve ./internal/verify ./internal/campaign

# verify-invariants runs the correctness harness: the physics-invariant
# sweeps and differential cross-checks of internal/verify, plus the
# regression tests for every bug the harness has found so far (-count=1
# defeats the cache so the sweeps really execute).
verify-invariants:
	$(GO) test -count=1 ./internal/verify/ ./internal/twoport/ ./internal/mna/ ./internal/touchstone/ ./internal/units/ ./internal/mathx/ ./internal/rfpassive/

# fuzz-smoke gives each native fuzz target a bounded budget (FUZZTIME per
# target) on top of the committed seed corpora. Go allows one fuzz target
# per invocation, hence the three runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/touchstone/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/units/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/obs/replay/

# trace-smoke is the end-to-end check of the causal tracing plane: a quick
# parallel lnaopt run writes a journal, obsreport reconstructs the span tree
# and exports Chrome trace-event JSON, and the JSON is validated (the
# exporter errors on a journal without trace spans, so an untraced run
# fails the target).
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/lnaopt -quick -workers 2 -journal "$$tmp/run.jsonl" >/dev/null && \
	$(GO) run ./cmd/obsreport trace -tree "$$tmp/run.jsonl" > "$$tmp/tree.txt" && \
	head -5 "$$tmp/tree.txt" && \
	$(GO) run ./cmd/obsreport trace -perfetto "$$tmp/run.jsonl" > "$$tmp/trace.json" && \
	grep -q '"traceEvents"' "$$tmp/trace.json" && \
	echo "trace-smoke: OK ($$(wc -c < "$$tmp/trace.json") bytes of trace JSON)"

# servd-smoke boots a real lnaservd on a loopback port, drives it with
# lnaload for a few seconds of multi-tenant traffic, and asserts that jobs
# were accepted, the queue stayed healthy, and SIGTERM drains cleanly
# ("restart resumes the queue" is the daemon's last word on success).
servd-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/lnaservd" ./cmd/lnaservd; \
	$(GO) build -o "$$tmp/lnaload" ./cmd/lnaload; \
	"$$tmp/lnaservd" -addr 127.0.0.1:18406 -dir "$$tmp/data" -workers 2 \
		> /dev/null 2> "$$tmp/servd.log" & pid=$$!; \
	trap 'kill "$$pid" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18406/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	"$$tmp/lnaload" -url http://127.0.0.1:18406 -duration 3s -tenants smoke:4 > "$$tmp/load.txt"; \
	cat "$$tmp/load.txt"; \
	grep -Eq 'smoke +[0-9]+ +[1-9]' "$$tmp/load.txt"; \
	grep -q '"state":"ready"' "$$tmp/load.txt"; \
	kill -TERM "$$pid"; wait "$$pid"; \
	grep -q 'restart resumes the queue' "$$tmp/servd.log"; \
	echo "servd-smoke: OK"

# soak-smoke boots lnaservd and drives two equal-policy tenants through
# lnaload -soak: every accepted job is tracked to its terminal state, the
# report must carry per-tenant p50/p95/p99 end-to-end latency, and the Jain
# fairness index over completions must stay >= 0.95 (equal policy on a
# healthy server means even service).
soak-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/lnaservd" ./cmd/lnaservd; \
	$(GO) build -o "$$tmp/lnaload" ./cmd/lnaload; \
	"$$tmp/lnaservd" -addr 127.0.0.1:18407 -dir "$$tmp/data" -workers 4 \
		> /dev/null 2> "$$tmp/servd.log" & pid=$$!; \
	trap 'kill "$$pid" 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18407/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	"$$tmp/lnaload" -url http://127.0.0.1:18407 -duration 4s -drain 60s -soak \
		-tenants alpha:3,beta:3 > "$$tmp/soak.txt"; \
	cat "$$tmp/soak.txt"; \
	grep -q 'p50_ms' "$$tmp/soak.txt"; \
	grep -Eq 'alpha +[0-9]+ +[1-9]' "$$tmp/soak.txt"; \
	grep -Eq 'beta +[0-9]+ +[1-9]' "$$tmp/soak.txt"; \
	fair=$$(awk '/^fairness/ {print $$2}' "$$tmp/soak.txt"); \
	awk -v f="$$fair" 'BEGIN { exit !(f >= 0.95) }'; \
	kill -TERM "$$pid"; wait "$$pid"; \
	echo "soak-smoke: OK (fairness $$fair)"

# campaign-smoke drives the committed two-cell smoke campaign end to end
# through the real CLI: run it, assert both artifacts exist, delete the
# summary and re-run (every cell must restore from the checkpoint and the
# regenerated summary must be byte-identical), pass the check publish gate,
# then run a second copy and prove campaign-diff reports identity.
campaign-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/campaign" ./cmd/campaign; \
	$(GO) build -o "$$tmp/obsreport" ./cmd/obsreport; \
	"$$tmp/campaign" run -spec examples/campaigns/smoke.yaml -out "$$tmp/a" -parallel 2 2> "$$tmp/run1.log"; \
	test -s "$$tmp/a/campaign.summary.json"; test -s "$$tmp/a/RESULTS.md"; \
	cp "$$tmp/a/campaign.summary.json" "$$tmp/first.json"; \
	rm "$$tmp/a/campaign.summary.json"; \
	"$$tmp/campaign" run -spec examples/campaigns/smoke.yaml -out "$$tmp/a" 2> "$$tmp/run2.log"; \
	grep -q '2 restored from checkpoint' "$$tmp/run2.log"; \
	cmp "$$tmp/first.json" "$$tmp/a/campaign.summary.json"; \
	"$$tmp/campaign" check -out "$$tmp/a"; \
	"$$tmp/campaign" run -spec examples/campaigns/smoke.yaml -out "$$tmp/b" -parallel 2 2> /dev/null; \
	"$$tmp/obsreport" campaign-diff "$$tmp/a/campaign.summary.json" "$$tmp/b/campaign.summary.json" > "$$tmp/diff.txt"; \
	cat "$$tmp/diff.txt"; \
	grep -q 'identical: 2 cells' "$$tmp/diff.txt"; \
	echo "campaign-smoke: OK (resume byte-identical, diff identical)"

# chaos runs the deterministic fault-injection suite under the race
# detector; -count=1 defeats the test cache so faults are re-injected.
chaos:
	$(GO) test -race -count=1 ./internal/resilience/...

# chaos-servd runs the job-server chaos proofs — SIGKILL crash recovery,
# bit-identical checkpoint resume, journal corruption with bounded loss,
# poisoned objectives, and clock skew — under the race detector.
chaos-servd:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/serve/

# bench appends the next BENCH_<n>.json point to the benchmark trajectory;
# bench-gate compares the two newest points and fails on a >10% ns/op
# regression (see README "Benchmark trajectory").
bench:
	$(GO) run ./cmd/benchgate run -benchtime $(BENCHTIME)

bench-gate:
	$(GO) run ./cmd/benchgate compare

# bench-smoke executes every benchmark exactly once: no timing is recorded,
# it only proves the benchmark bodies still run (a broken bench otherwise
# surfaces first during a trajectory recording).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-workers runs only the Workers benchmark variants (serial pipelines
# with the evaluation fan-out at NumCPU width) for a quick parallel-path
# wall-clock check without recording a trajectory point.
bench-workers:
	$(GO) test -run '^$$' -bench 'Workers$$' -benchmem -benchtime $(BENCHTIME) .
