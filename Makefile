GO ?= go

.PHONY: verify fmt vet build test race bench chaos

# verify is the tier-1 gate: formatting, vet, build, the full test suite,
# and a race pass over the concurrently-exercised packages.
verify: fmt vet build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/obs ./internal/optim ./internal/resilience ./internal/experiments

# chaos runs the deterministic fault-injection suite under the race
# detector; -count=1 defeats the test cache so faults are re-injected.
chaos:
	$(GO) test -race -count=1 ./internal/resilience/...

bench:
	$(GO) test -bench=. -benchmem ./...
