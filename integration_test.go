package gnsslna

import (
	"math"
	"strings"
	"testing"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/optim"
)

// TestLibraryWorkflow walks the path a downstream user takes: extract a
// model through the facade, hand the device to the core designer, evaluate
// and optimize — verifying the packages compose without glue.
func TestLibraryWorkflow(t *testing.T) {
	rep, err := ExtractModel("Statz", Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatalf("ExtractModel: %v", err)
	}
	designer := core.NewDesigner(core.NewBuilder(rep.Device))
	designer.Spec.NPoints = 5
	ev, err := designer.Evaluate(core.Design{
		Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12,
	})
	if err != nil {
		t.Fatalf("Evaluate on extracted device: %v", err)
	}
	if math.IsNaN(ev.WorstNFdB) || ev.MinGTdB < 5 {
		t.Errorf("extracted-device amplifier implausible: %+v", ev)
	}
	// A short optimization on the extracted (non-Angelov!) model still
	// converges to a usable design.
	res, err := designer.Optimize(&optim.AttainOptions{Seed: 3, GlobalEvals: 1200, PolishEvals: 800})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Eval.WorstNFdB > 1.2 || res.Eval.MinGTdB < 12 {
		t.Errorf("Statz-model design poor: NF %g, GT %g", res.Eval.WorstNFdB, res.Eval.MinGTdB)
	}
}

// TestFacadeDefaults exercises the zero-value Options path.
func TestFacadeDefaults(t *testing.T) {
	if _, err := RunExperiment("nope", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Error("unknown experiment must be rejected with a clear error")
	}
}

// TestGoldenVariantDesignable confirms the design flow works on a
// process-shifted device, i.e. nothing is tuned to the nominal golden part.
func TestGoldenVariantDesignable(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization skipped in -short mode")
	}
	variant, err := device.GoldenVariant(55)
	if err != nil {
		t.Fatalf("GoldenVariant: %v", err)
	}
	d := core.NewDesigner(core.NewBuilder(variant))
	d.Spec.NPoints = 5
	res, err := d.Optimize(&optim.AttainOptions{Seed: 5, GlobalEvals: 1500, PolishEvals: 900})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Eval.WorstNFdB > 1.0 {
		t.Errorf("variant design NF %g dB", res.Eval.WorstNFdB)
	}
	if res.Eval.StabMargin <= 0 {
		t.Errorf("variant design unstable: %g", res.Eval.StabMargin)
	}
}
