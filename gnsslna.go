// Package gnsslna reproduces "Multi-objective optimization of a low-noise
// antenna amplifier for multi-constellation satellite-navigation receivers"
// (Dobeš et al., SOCC 2015) as a Go library: pHEMT modeling and three-step
// parameter extraction, an improved goal-attainment multi-objective
// optimizer, dispersive passive-element models, and the complete design
// flow for a 1.1-1.7 GHz GNSS antenna preamplifier, verified against a
// synthetic measurement substrate.
//
// This file is the facade: the one-call entry points a downstream user
// needs. The building blocks live under internal/ (device, extract, optim,
// rfpassive, noise, twoport, mna, vna, core, experiments) and are exercised
// by the examples and the cmd/ tools.
package gnsslna

import (
	"fmt"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/experiments"
	"gnsslna/internal/extract"
	"gnsslna/internal/optim"
	"gnsslna/internal/vna"
)

// Options configures the facade workflows.
type Options struct {
	// Seed drives every random process deterministically (default 1).
	Seed int64
	// Quick trims optimization budgets (for demos and tests).
	Quick bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// DesignReport flattens the outcome of the complete design flow.
type DesignReport struct {
	// Design and Snapped are the continuous and E24-snapped optima.
	Design, Snapped core.Design
	// Gamma is the goal-attainment factor (<= 0: all goals met).
	Gamma float64
	// WorstNFdB, MinGTdB grade the snapped design over the band.
	WorstNFdB, MinGTdB float64
	// StabMargin is min(mu)-1 over the wide stability scan.
	StabMargin float64
	// IdsA and PdcW report the bias point cost.
	IdsA, PdcW float64
}

// DesignLNA runs the full paper flow — synthetic measurement campaign,
// three-step extraction of an Angelov model, improved goal-attainment
// selection of the operating point and passive elements — and reports the
// finished multi-constellation preamplifier.
func DesignLNA(opts Options) (DesignReport, error) {
	s := experiments.NewSuite(experiments.Config{Seed: opts.seed(), Quick: opts.Quick})
	res, err := s.Design()
	if err != nil {
		return DesignReport{}, fmt.Errorf("gnsslna: design: %w", err)
	}
	return DesignReport{
		Design:     res.Design,
		Snapped:    res.Snapped,
		Gamma:      res.Gamma,
		WorstNFdB:  res.SnappedEval.WorstNFdB,
		MinGTdB:    res.SnappedEval.MinGTdB,
		StabMargin: res.SnappedEval.StabMargin,
		IdsA:       res.SnappedEval.IdsA,
		PdcW:       res.SnappedEval.PdcW,
	}, nil
}

// ExtractionReport flattens an extraction run.
type ExtractionReport struct {
	// ModelName identifies the fitted DC model class.
	ModelName string
	// DCRelRMSE is the relative DC fit error.
	DCRelRMSE float64
	// SRMSE is the normalized S-parameter fit error.
	SRMSE float64
	// Device is the extracted transistor, usable with core.NewBuilder.
	Device *device.PHEMT
}

// ExtractModel runs the synthetic measurement campaign on the golden device
// and extracts the named model class ("Curtice-2", "Curtice-3", "Statz",
// "TOM" or "Angelov") with the three-step procedure.
func ExtractModel(modelName string, opts Options) (ExtractionReport, error) {
	var dc device.DCModel
	for _, m := range device.AllModels() {
		if m.Name() == modelName {
			dc = m
			break
		}
	}
	if dc == nil {
		return ExtractionReport{}, fmt.Errorf("gnsslna: unknown model %q", modelName)
	}
	ds, err := vna.RunCampaign(device.Golden(), vna.DefaultCampaign(opts.seed()))
	if err != nil {
		return ExtractionReport{}, fmt.Errorf("gnsslna: campaign: %w", err)
	}
	cfg := extract.Config{Seed: opts.seed()}
	if opts.Quick {
		cfg = extract.Config{Seed: opts.seed(), DCEvals: 6000, GlobalEvals: 2500, RefineIters: 20}
	}
	res, err := extract.ThreeStep(ds, dc, cfg)
	if err != nil {
		return ExtractionReport{}, fmt.Errorf("gnsslna: extraction: %w", err)
	}
	return ExtractionReport{
		ModelName: dc.Name(),
		DCRelRMSE: res.DC.RelRMSE,
		SRMSE:     res.SRMSE,
		Device:    res.Device,
	}, nil
}

// RunExperiment renders one reconstructed experiment ("e1".."e9") or all of
// them ("all") as paper-style text tables.
func RunExperiment(id string, opts Options) (string, error) {
	s := experiments.NewSuite(experiments.Config{Seed: opts.seed(), Quick: opts.Quick})
	runs := map[string]func() (experiments.Table, error){
		"e1":  s.E1ModelComparison,
		"e2":  s.E2ExtractionMethods,
		"e3":  s.E3ModelFit,
		"e4":  s.E4GoalAttainment,
		"e4b": s.E4bAblation,
		"e5":  s.E5DesignFlow,
		"e6":  s.E6Verification,
		"e7":  s.E7Dispersion,
		"e8":  s.E8Intermodulation,
		"e9":  s.E9Constellations,
		"e10": s.E10Calibration,
		"e11": s.E11TwoStage,
		"e12": s.E12LinkBudget,
	}
	if id == "all" {
		tables, err := s.All()
		if err != nil {
			return "", err
		}
		out := ""
		for _, t := range tables {
			out += t.Render() + "\n"
		}
		return out, nil
	}
	run, ok := runs[id]
	if !ok {
		return "", fmt.Errorf("gnsslna: unknown experiment %q (want e1..e9 or all)", id)
	}
	t, err := run()
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// AttainOptions exposes the optimizer budget type for advanced callers.
type AttainOptions = optim.AttainOptions
