// Package gnsslna reproduces "Multi-objective optimization of a low-noise
// antenna amplifier for multi-constellation satellite-navigation receivers"
// (Dobeš et al., SOCC 2015) as a Go library: pHEMT modeling and three-step
// parameter extraction, an improved goal-attainment multi-objective
// optimizer, dispersive passive-element models, and the complete design
// flow for a 1.1-1.7 GHz GNSS antenna preamplifier, verified against a
// synthetic measurement substrate.
//
// This file is the facade: the one-call entry points a downstream user
// needs. The building blocks live under internal/ (device, extract, optim,
// rfpassive, noise, twoport, mna, vna, core, experiments) and are exercised
// by the examples and the cmd/ tools.
package gnsslna

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/experiments"
	"gnsslna/internal/extract"
	"gnsslna/internal/obs"
	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/serve"
	"gnsslna/internal/vna"
)

// ProgressEvent is one observation from the running pipelines: an optimizer
// convergence record, the start or end of a pipeline stage, or a completed
// search. Events carry no pointers and are safe to retain.
type ProgressEvent struct {
	// Event names the record kind: "generation" (one optimizer iteration),
	// "span-begin"/"span-end" (a pipeline stage), "done" (a finished
	// search), "sample" (a scalar probe), "fault" (a quarantined objective
	// evaluation), "breaker" (a tripped circuit breaker), or "restart" (a
	// jittered multi-start recovery attempt).
	Event string
	// Scope identifies the emitting stage, e.g. "design.attain.de",
	// "extract.step2.dcfit", "experiment.e4".
	Scope string
	// Gen is the iteration index for "generation" events.
	Gen int
	// Evals counts objective evaluations (cumulative for "generation" and
	// "done", per-stage for "span-end").
	Evals int64
	// Best is the best objective value so far where meaningful.
	Best float64
	// Value carries stage wall time in milliseconds for "span-end" events
	// and the probed scalar for "sample" events.
	Value float64
	// Trace identifies the run and Span/Parent the causal span the event
	// belongs to, when the pipeline runs traced (all zero otherwise).
	Trace, Span, Parent uint64
	// Worker is the 1-based pool-worker ordinal for worker-attributed
	// spans (zero for driver-side events).
	Worker int
}

// Observer receives progress events from the facade workflows. Callbacks
// run synchronously on the optimization goroutine and must be fast; they
// may be invoked from the innermost loops.
type Observer func(ProgressEvent)

// Options configures the facade workflows.
type Options struct {
	// Seed drives every random process deterministically. The zero value
	// selects the default seed 1, so Seed: 0 and Seed: 1 produce identical
	// runs.
	Seed int64
	// Quick trims optimization budgets (for demos and tests).
	Quick bool
	// Observer, when set, receives progress events from every pipeline the
	// workflow runs (nil: disabled, with no overhead in the hot loops).
	Observer Observer
	// Context, when set, cancels the workflow cooperatively: the solvers
	// poll it once per generation and return the best point found so far
	// with an error recognizable by Stopped (nil: never canceled).
	Context context.Context
	// Timeout bounds the workflow wall-clock time (0: unbounded). Like
	// Context, expiry returns the best-so-far result plus a Stopped error.
	Timeout time.Duration
	// MaxEvals bounds the total objective evaluations across the workflow
	// (0: unbounded).
	MaxEvals int64
	// Restarts bounds the jittered multi-start recoveries of the design
	// optimization after circuit-breaker trips (0: single attempt).
	Restarts int
	// Checkpoint, when non-empty, names a JSONL file that completed
	// pipeline stages are appended to and restored from on a later run
	// with the same Seed and Quick mode, skipping recomputation.
	Checkpoint string
	// Workers bounds the goroutines the optimization and sweep stages use
	// to fan out candidate evaluations. The default (0 or 1) is fully
	// serial — exactly today's behavior — and every result is bit-identical
	// for any worker count: all randomness stays on the driving goroutine
	// and workers only evaluate the objective.
	Workers int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// controller builds the run controller for the options, or nil when no
// limit is configured.
func (o Options) controller() *resilience.RunController {
	if o.Context == nil && o.Timeout <= 0 && o.MaxEvals <= 0 {
		return nil
	}
	co := resilience.ControllerOptions{Context: o.Context, MaxEvals: o.MaxEvals}
	if o.Timeout > 0 {
		co.Deadline = time.Now().Add(o.Timeout)
	}
	return resilience.NewController(co)
}

// Stopped reports whether err (from any facade workflow) means the run was
// stopped early — by cancellation ("canceled"), wall-clock deadline
// ("deadline"), evaluation budget ("eval-budget") or circuit breaker
// ("breaker") — and names the reason. DesignLNA additionally returns its
// best-so-far design alongside such an error.
func Stopped(err error) (reason string, ok bool) {
	if st, ok := resilience.AsStopped(err); ok {
		return st.Reason.String(), true
	}
	return "", false
}

// observer adapts the public callback to the internal observer interface.
// The adapter is wrapped in a fresh tracer so facade runs carry causal
// identity (ProgressEvent.Trace/Span/Parent/Worker) just like CLI sessions;
// workflows that observe several phases must call this once and share the
// result, or the phases land on different trace IDs.
func (o Options) observer() obs.Observer {
	if o.Observer == nil {
		return nil
	}
	fn := o.Observer
	tr := obs.NewTracer()
	tr.SetOutliers(obs.NewOutlierDetector())
	return obs.NewTraced(obs.Func(func(e obs.Event) {
		fn(ProgressEvent{
			Event:  e.Kind.String(),
			Scope:  e.Scope,
			Gen:    e.Gen,
			Evals:  e.Evals,
			Best:   e.Best,
			Value:  e.Value,
			Trace:  uint64(e.Trace),
			Span:   uint64(e.Span),
			Parent: uint64(e.Parent),
			Worker: e.Worker,
		})
	}), tr)
}

// DesignReport flattens the outcome of the complete design flow.
type DesignReport struct {
	// Design and Snapped are the continuous and E24-snapped optima.
	Design, Snapped core.Design
	// Gamma is the goal-attainment factor (<= 0: all goals met).
	Gamma float64
	// WorstNFdB, MinGTdB grade the snapped design over the band.
	WorstNFdB, MinGTdB float64
	// StabMargin is min(mu)-1 over the wide stability scan.
	StabMargin float64
	// IdsA and PdcW report the bias point cost.
	IdsA, PdcW float64
}

// DesignLNA runs the full paper flow — synthetic measurement campaign,
// three-step extraction of an Angelov model, improved goal-attainment
// selection of the operating point and passive elements — and reports the
// finished multi-constellation preamplifier. When the run is stopped early
// (see Options.Context, Timeout, MaxEvals and the Stopped predicate) the
// report holds the best design found so far and the error names the
// reason.
func DesignLNA(opts Options) (DesignReport, error) {
	s := experiments.NewSuite(experiments.Config{
		Seed: opts.seed(), Quick: opts.Quick, Observer: opts.observer(),
		Control: opts.controller(), Checkpoint: opts.Checkpoint, Restarts: opts.Restarts,
		Workers: opts.Workers,
	})
	res, err := s.Design()
	if err != nil {
		err = fmt.Errorf("gnsslna: design: %w", err)
		if res == nil {
			return DesignReport{}, err
		}
	}
	return DesignReport{
		Design:     res.Design,
		Snapped:    res.Snapped,
		Gamma:      res.Gamma,
		WorstNFdB:  res.SnappedEval.WorstNFdB,
		MinGTdB:    res.SnappedEval.MinGTdB,
		StabMargin: res.SnappedEval.StabMargin,
		IdsA:       res.SnappedEval.IdsA,
		PdcW:       res.SnappedEval.PdcW,
	}, err
}

// ExtractionReport flattens an extraction run.
type ExtractionReport struct {
	// ModelName identifies the fitted DC model class.
	ModelName string
	// DCRelRMSE is the relative DC fit error.
	DCRelRMSE float64
	// SRMSE is the normalized S-parameter fit error.
	SRMSE float64
	// Device is the extracted transistor, usable with core.NewBuilder.
	Device *device.PHEMT
}

// ExtractModel runs the synthetic measurement campaign on the golden device
// and extracts the named model class ("Curtice-2", "Curtice-3", "Statz",
// "TOM" or "Angelov") with the three-step procedure.
func ExtractModel(modelName string, opts Options) (ExtractionReport, error) {
	var dc device.DCModel
	for _, m := range device.AllModels() {
		if m.Name() == modelName {
			dc = m
			break
		}
	}
	if dc == nil {
		return ExtractionReport{}, fmt.Errorf("gnsslna: unknown model %q", modelName)
	}
	obsv := opts.observer()
	campaign := vna.DefaultCampaign(opts.seed())
	campaign.Observer = obsv
	ds, err := vna.RunCampaign(device.Golden(), campaign)
	if err != nil {
		return ExtractionReport{}, fmt.Errorf("gnsslna: campaign: %w", err)
	}
	cfg := extract.Config{Seed: opts.seed(), Observer: obsv, Control: opts.controller(), Workers: opts.Workers}
	if opts.Quick {
		cfg.DCEvals, cfg.GlobalEvals, cfg.RefineIters = 6000, 2500, 20
	}
	res, err := extract.ThreeStep(ds, dc, cfg)
	if err != nil {
		return ExtractionReport{}, fmt.Errorf("gnsslna: extraction: %w", err)
	}
	return ExtractionReport{
		ModelName: dc.Name(),
		DCRelRMSE: res.DC.RelRMSE,
		SRMSE:     res.SRMSE,
		Device:    res.Device,
	}, nil
}

// ExperimentIDs returns the valid experiment identifiers in canonical run
// order (currently e1..e12 plus the e4b ablation).
func ExperimentIDs() []string {
	return experiments.NewSuite(experiments.Config{}).IDs()
}

// RunExperiment renders one reconstructed experiment (see ExperimentIDs) or
// all of them ("all") as paper-style text tables.
func RunExperiment(id string, opts Options) (string, error) {
	s := experiments.NewSuite(experiments.Config{
		Seed: opts.seed(), Quick: opts.Quick, Observer: opts.observer(),
		Control: opts.controller(), Checkpoint: opts.Checkpoint, Restarts: opts.Restarts,
		Workers: opts.Workers,
	})
	if id == "all" {
		tables, err := s.All()
		if err != nil {
			return "", err
		}
		out := ""
		for _, t := range tables {
			out += t.Render() + "\n"
		}
		return out, nil
	}
	t, err := s.Run(id)
	if err != nil {
		if errors.Is(err, experiments.ErrUnknownExperiment) {
			return "", fmt.Errorf("gnsslna: unknown experiment %q (want %s or all)",
				id, strings.Join(s.IDs(), ", "))
		}
		return "", err
	}
	return t.Render(), nil
}

// AttainOptions exposes the optimizer budget type for advanced callers.
type AttainOptions = optim.AttainOptions

// JobServerOptions configures StartJobServer, the embedded
// design-as-a-service endpoint (the same engine cmd/lnaservd runs).
type JobServerOptions struct {
	// Dir is the data root: the durable queue journal and job artifacts
	// live under it, and a restart over the same directory resumes every
	// acknowledged job.
	Dir string
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Workers sizes the job worker fleet (minimum 1).
	Workers int
	// Retries is the per-job attempt budget on transient failure
	// (0: single attempt).
	Retries int
	// JournalPath, when set, writes the JSONL observability journal there:
	// durable job traces (spanning restarts over the same Dir) and solver
	// spans, anchored with an epoch record so `obsreport trace -tree` and
	// `obsreport serve` can stitch the journals of successive processes.
	JournalPath string
	// Tenants maps tenant name to admission policy — rate, burst, in-flight
	// and evaluation quotas, plus optional SLO targets surfaced as burn-rate
	// gauges on /metrics and /healthz. Nil admits everything.
	Tenants map[string]TenantPolicy
}

// TenantPolicy re-exports the job server's per-tenant admission contract and
// SLO targets for facade callers.
type TenantPolicy = serve.TenantPolicy

// JobServer is a running design-as-a-service endpoint: jobs submitted to
// POST {URL}/jobs survive crashes, pass admission control and execute on a
// worker fleet. See cmd/lnaservd for the full API and operational story.
type JobServer struct {
	srv     *serve.Server
	http    *http.Server
	addr    string
	journal *obs.Journal
}

// StartJobServer opens the durable job queue under opts.Dir (recovering any
// previous state), starts the worker fleet, and listens on opts.Addr.
// Callers own shutdown: defer Shutdown to drain gracefully.
func StartJobServer(opts JobServerOptions) (*JobServer, error) {
	if opts.Dir == "" {
		return nil, errors.New("gnsslna: JobServerOptions.Dir required")
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var journal *obs.Journal
	var sink obs.Observer
	if opts.JournalPath != "" {
		j, err := obs.OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("gnsslna: job server: %w", err)
		}
		if err := j.AppendEpoch(); err != nil {
			j.Close()
			return nil, fmt.Errorf("gnsslna: job server: %w", err)
		}
		journal = j
		// A raw hub, not a Traced: the serve layer stamps each event with
		// the job's durable trace identity.
		sink = obs.NewHub(nil, j)
	}
	s, err := serve.New(serve.Options{
		Dir:      opts.Dir,
		Workers:  opts.Workers,
		Retry:    resilience.RetryPolicy{MaxAttempts: opts.Retries},
		Tenants:  opts.Tenants,
		Observer: sink,
	})
	if err != nil {
		if journal != nil {
			journal.Close()
		}
		return nil, fmt.Errorf("gnsslna: job server: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		if journal != nil {
			journal.Close()
		}
		return nil, fmt.Errorf("gnsslna: job server: %w", err)
	}
	s.Start()
	js := &JobServer{srv: s, http: &http.Server{Handler: s.Handler()}, addr: ln.Addr().String(), journal: journal}
	go func() { _ = js.http.Serve(ln) }()
	return js, nil
}

// URL returns the server's base URL (http://host:port).
func (js *JobServer) URL() string { return "http://" + js.addr }

// Shutdown drains the server: /healthz degrades to draining, new
// submissions are refused, in-flight jobs checkpoint and re-queue for the
// next start, and the queue journal closes cleanly. Bounded by ctx.
func (js *JobServer) Shutdown(ctx context.Context) error {
	err := js.srv.Shutdown(ctx)
	if herr := js.http.Shutdown(ctx); err == nil {
		err = herr
	}
	if js.journal != nil {
		if jerr := js.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}
