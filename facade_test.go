package gnsslna

import (
	"reflect"
	"strings"
	"testing"
)

func TestDesignLNAQuick(t *testing.T) {
	rep, err := DesignLNA(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("DesignLNA: %v", err)
	}
	if rep.Gamma > 0 {
		t.Errorf("gamma = %g: goals not met", rep.Gamma)
	}
	if rep.WorstNFdB <= 0 || rep.WorstNFdB > 0.9 {
		t.Errorf("NF = %g dB, want (0, 0.9]", rep.WorstNFdB)
	}
	if rep.MinGTdB < 14 {
		t.Errorf("GT = %g dB, want >= 14", rep.MinGTdB)
	}
	if rep.StabMargin <= 0 {
		t.Errorf("stability margin = %g, want > 0", rep.StabMargin)
	}
	if rep.Snapped.LIn == 0 || rep.IdsA == 0 || rep.PdcW == 0 {
		t.Error("report fields incomplete")
	}
}

func TestExtractModelFacade(t *testing.T) {
	var generations, dones int
	spanScopes := map[string]bool{}
	observer := func(e ProgressEvent) {
		switch e.Event {
		case "generation":
			generations++
		case "done":
			dones++
		case "span-end":
			spanScopes[e.Scope] = true
		}
	}
	rep, err := ExtractModel("Angelov", Options{Seed: 1, Quick: true, Observer: observer})
	if err != nil {
		t.Fatalf("ExtractModel: %v", err)
	}
	if rep.ModelName != "Angelov" || rep.Device == nil {
		t.Error("report incomplete")
	}
	if generations == 0 || dones == 0 {
		t.Errorf("observer saw %d generation and %d done events, want both > 0", generations, dones)
	}
	for _, scope := range []string{"vna.campaign", "extract.step1.coldfet", "extract.step2.dcfit", "extract.step3"} {
		if !spanScopes[scope] {
			t.Errorf("observer missed span %q (saw %v)", scope, spanScopes)
		}
	}
	if rep.SRMSE > 0.06 {
		t.Errorf("SRMSE = %g, want < 0.06", rep.SRMSE)
	}
	if rep.DCRelRMSE > 0.05 {
		t.Errorf("DC rel RMSE = %g, want < 0.05", rep.DCRelRMSE)
	}
	if _, err := ExtractModel("NoSuchModel", Options{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	out, err := RunExperiment("e7", Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(out, "E7") || !strings.Contains(out, "epsEff") {
		t.Errorf("unexpected E7 output:\n%s", out)
	}
	if _, err := RunExperiment("e42", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestSeedZeroMatchesSeedOne pins the documented Options.Seed contract: the
// zero value selects the default seed 1, so both settings must produce
// byte-identical extractions.
func TestSeedZeroMatchesSeedOne(t *testing.T) {
	if got := (Options{Seed: 0}).seed(); got != 1 {
		t.Fatalf("Options{Seed: 0}.seed() = %d, want 1", got)
	}
	if got := (Options{Seed: 42}).seed(); got != 42 {
		t.Fatalf("Options{Seed: 42}.seed() = %d, want 42", got)
	}
	rep0, err := ExtractModel("Curtice-2", Options{Seed: 0, Quick: true})
	if err != nil {
		t.Fatalf("ExtractModel(Seed: 0): %v", err)
	}
	rep1, err := ExtractModel("Curtice-2", Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("ExtractModel(Seed: 1): %v", err)
	}
	if rep0.DCRelRMSE != rep1.DCRelRMSE || rep0.SRMSE != rep1.SRMSE {
		t.Errorf("Seed 0 and Seed 1 diverge: DC %g vs %g, S %g vs %g",
			rep0.DCRelRMSE, rep1.DCRelRMSE, rep0.SRMSE, rep1.SRMSE)
	}
	if !reflect.DeepEqual(rep0.Device, rep1.Device) {
		t.Error("Seed 0 and Seed 1 extract different devices")
	}
}

// TestExperimentIDs pins the dynamic experiment enumeration: the exported
// list covers e1..e12 plus the e4b ablation, and the unknown-experiment
// error names every valid id instead of a stale hand-written range.
func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"e1", "e2", "e3", "e4", "e4b", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"}
	if len(ids) != len(want) {
		t.Fatalf("ExperimentIDs() = %v, want %v", ids, want)
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("ExperimentIDs() missing %q", id)
		}
	}
	_, err := RunExperiment("e42", Options{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "unknown experiment") {
		t.Errorf("error %q missing 'unknown experiment'", msg)
	}
	for _, id := range ids {
		if !strings.Contains(msg, id) {
			t.Errorf("error %q does not enumerate id %q", msg, id)
		}
	}
}
