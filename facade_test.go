package gnsslna

import (
	"strings"
	"testing"
)

func TestDesignLNAQuick(t *testing.T) {
	rep, err := DesignLNA(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("DesignLNA: %v", err)
	}
	if rep.Gamma > 0 {
		t.Errorf("gamma = %g: goals not met", rep.Gamma)
	}
	if rep.WorstNFdB <= 0 || rep.WorstNFdB > 0.9 {
		t.Errorf("NF = %g dB, want (0, 0.9]", rep.WorstNFdB)
	}
	if rep.MinGTdB < 14 {
		t.Errorf("GT = %g dB, want >= 14", rep.MinGTdB)
	}
	if rep.StabMargin <= 0 {
		t.Errorf("stability margin = %g, want > 0", rep.StabMargin)
	}
	if rep.Snapped.LIn == 0 || rep.IdsA == 0 || rep.PdcW == 0 {
		t.Error("report fields incomplete")
	}
}

func TestExtractModelFacade(t *testing.T) {
	rep, err := ExtractModel("Angelov", Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("ExtractModel: %v", err)
	}
	if rep.ModelName != "Angelov" || rep.Device == nil {
		t.Error("report incomplete")
	}
	if rep.SRMSE > 0.06 {
		t.Errorf("SRMSE = %g, want < 0.06", rep.SRMSE)
	}
	if rep.DCRelRMSE > 0.05 {
		t.Errorf("DC rel RMSE = %g, want < 0.05", rep.DCRelRMSE)
	}
	if _, err := ExtractModel("NoSuchModel", Options{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	out, err := RunExperiment("e7", Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(out, "E7") || !strings.Contains(out, "epsEff") {
		t.Errorf("unexpected E7 output:\n%s", out)
	}
	if _, err := RunExperiment("e42", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
