package device

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// Bias is a DC operating point of the transistor.
type Bias struct {
	// Vgs is the gate-source voltage in volts.
	Vgs float64
	// Vds is the drain-source voltage in volts.
	Vds float64
}

// SmallSignal holds the intrinsic small-signal equivalent-circuit elements
// at one bias point.
type SmallSignal struct {
	// Gm is the transconductance in siemens.
	Gm float64
	// Gds is the output conductance in siemens.
	Gds float64
	// Cgs is the gate-source capacitance in farads.
	Cgs float64
	// Cgd is the gate-drain (feedback) capacitance in farads.
	Cgd float64
	// Cds is the drain-source capacitance in farads.
	Cds float64
	// Ri is the intrinsic channel charging resistance in ohms.
	Ri float64
	// Tau is the transconductance delay in seconds.
	Tau float64
}

// Extrinsics holds the bias-independent parasitic elements surrounding the
// intrinsic device.
type Extrinsics struct {
	// Rg, Rs, Rd are the terminal resistances in ohms.
	Rg, Rs, Rd float64
	// Lg, Ls, Ld are the terminal inductances in henries.
	Lg, Ls, Ld float64
	// Cpg, Cpd are the pad capacitances in farads.
	Cpg, Cpd float64
}

// ErrBadBias reports an unusable bias point (e.g. zero transconductance
// where gain is required).
var ErrBadBias = errors.New("device: bias point yields no usable small-signal model")

// IntrinsicY returns the admittance matrix of the intrinsic equivalent
// circuit at angular frequency derived from f (Hz).
func IntrinsicY(ss SmallSignal, f float64) twoport.Mat2 {
	w := 2 * math.Pi * f
	d := complex(1, w*ss.Cgs*ss.Ri)
	ygs := complex(0, w*ss.Cgs) / d
	ygd := complex(0, w*ss.Cgd)
	ym := complex(ss.Gm, 0) * cmplx.Exp(complex(0, -w*ss.Tau)) / d
	return twoport.Mat2{
		{ygs + ygd, -ygd},
		{ym - ygd, complex(ss.Gds, w*ss.Cds) + ygd},
	}
}

// IntrinsicNoisyY returns the intrinsic admittance matrix together with its
// Pospieszalski noise correlation matrix (normalized to 4kT0) for gate
// temperature tg and drain temperature td (kelvin).
func IntrinsicNoisyY(ss SmallSignal, f, tg, td float64) (y, cy twoport.Mat2) {
	w := 2 * math.Pi * f
	d := complex(1, w*ss.Cgs*ss.Ri)
	ygs := complex(0, w*ss.Cgs) / d
	ym := complex(ss.Gm, 0) * cmplx.Exp(complex(0, -w*ss.Tau)) / d
	y = IntrinsicY(ss, f)
	// Noise sources: e_ri in series with Ri at Tg drives short-circuit
	// currents j1 = Ygs*e at the gate and j2 = Ym*e at the drain; the drain
	// current source i_d (gds at Td) adds directly at port 2, uncorrelated.
	riTerm := ss.Ri * tg / mathx.T0
	cy[0][0] = complex(sqAbs(ygs)*riTerm, 0)
	cy[0][1] = ygs * cmplx.Conj(ym) * complex(riTerm, 0)
	cy[1][0] = cmplx.Conj(cy[0][1])
	cy[1][1] = complex(sqAbs(ym)*riTerm+ss.Gds*td/mathx.T0, 0)
	return y, cy
}

// Embed surrounds the intrinsic noisy two-port with the extrinsic
// parasitics: series gate/drain impedances, the common-lead source
// impedance (added to every Z entry), and shunt pad capacitances. Resistive
// parasitics contribute thermal noise at ambient temperature ta.
func Embed(yInt, cyInt twoport.Mat2, ex Extrinsics, f, ta float64) (noise.TwoPort, error) {
	w := 2 * math.Pi * f
	tp, err := noise.FromY(yInt, cyInt)
	if err != nil {
		return noise.TwoPort{}, fmt.Errorf("device: embed intrinsic: %w", err)
	}
	z, cz, err := tp.ToZ()
	if err != nil {
		return noise.TwoPort{}, fmt.Errorf("device: embed to Z: %w", err)
	}
	zg := complex(ex.Rg, w*ex.Lg)
	zs := complex(ex.Rs, w*ex.Ls)
	zd := complex(ex.Rd, w*ex.Ld)
	tn := ta / mathx.T0
	// Common-lead impedance adds to every entry of Z (series feedback).
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			z[i][j] += zs
			cz[i][j] += complex(ex.Rs*tn, 0)
		}
	}
	z[0][0] += zg
	cz[0][0] += complex(ex.Rg*tn, 0)
	z[1][1] += zd
	cz[1][1] += complex(ex.Rd*tn, 0)
	tp, err = noise.FromZ(z, cz)
	if err != nil {
		return noise.TwoPort{}, fmt.Errorf("device: embed from Z: %w", err)
	}
	// Pad capacitances shunt the external ports (lossless, noiseless).
	y, cy, err := tp.ToY()
	if err != nil {
		return noise.TwoPort{}, fmt.Errorf("device: embed pads: %w", err)
	}
	y[0][0] += complex(0, w*ex.Cpg)
	y[1][1] += complex(0, w*ex.Cpd)
	return noise.FromY(y, cy)
}

// SFromSmallSignal returns the embedded S-parameters of an intrinsic
// small-signal model inside the given extrinsics, without noise bookkeeping.
// Extraction inner loops use this fast path: the small-signal model per bias
// is computed once and swept over frequency, and the embedding works
// directly on 2x2 immittance matrices — the same Y -> Z -> add parasitics ->
// Y -> add pads -> S sequence as Embed, minus the noise-correlation
// congruence transforms that are pure overhead on a zero correlation matrix.
func SFromSmallSignal(ss SmallSignal, ex Extrinsics, f, z0 float64) (twoport.Mat2, error) {
	w := 2 * math.Pi * f
	z, err := IntrinsicY(ss, f).Inv()
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed to Z: %w", err)
	}
	zg := complex(ex.Rg, w*ex.Lg)
	zs := complex(ex.Rs, w*ex.Ls)
	zd := complex(ex.Rd, w*ex.Ld)
	// Common-lead impedance adds to every entry of Z (series feedback).
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			z[i][j] += zs
		}
	}
	z[0][0] += zg
	z[1][1] += zd
	y, err := z.Inv()
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed pads: %w", err)
	}
	// Pad capacitances shunt the external ports (lossless).
	y[0][0] += complex(0, w*ex.Cpg)
	y[1][1] += complex(0, w*ex.Cpd)
	return twoport.YToS(y, z0)
}

// FT returns the short-circuit current-gain cutoff frequency of the
// intrinsic model.
func (ss SmallSignal) FT() float64 {
	ctot := ss.Cgs + ss.Cgd
	if ctot <= 0 {
		return 0
	}
	return ss.Gm / (2 * math.Pi * ctot)
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
