package device

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
)

// biasOn is the nominal operating point used across the device tests.
var biasOn = Bias{Vgs: 0.56, Vds: 3.0}

func TestGoldenDeviceSanity(t *testing.T) {
	d := Golden()
	ids := d.Ids(biasOn)
	if ids < 0.02 || ids > 0.2 {
		t.Errorf("Ids at nominal bias = %g A, want tens of mA", ids)
	}
	ss := d.SmallSignalAt(biasOn)
	if ss.Gm < 0.05 || ss.Gm > 1 {
		t.Errorf("gm = %g S, want O(0.1)", ss.Gm)
	}
	ft := d.FT(biasOn)
	if ft < 5e9 || ft > 100e9 {
		t.Errorf("fT = %g Hz, want tens of GHz", ft)
	}
}

func TestGoldenSParamsPlausible(t *testing.T) {
	d := Golden()
	for _, f := range []float64{1.1e9, 1.4e9, 1.7e9} {
		s, err := d.SAt(biasOn, f, 50)
		if err != nil {
			t.Fatalf("SAt(%g): %v", f, err)
		}
		// |S21| of a good L-band pHEMT: roughly 12-24 dB.
		g := cmplx.Abs(s[1][0])
		if g < 2 || g > 16 {
			t.Errorf("f=%g: |S21| = %g, want 2-16", f, g)
		}
		// Input reflection below unity but substantial (capacitive input).
		if m := cmplx.Abs(s[0][0]); m >= 1 || m < 0.2 {
			t.Errorf("f=%g: |S11| = %g, want in (0.2, 1)", f, m)
		}
		// Reverse isolation much smaller than forward gain.
		if iso := cmplx.Abs(s[0][1]); iso > 0.3 {
			t.Errorf("f=%g: |S12| = %g, want small", f, iso)
		}
	}
}

func TestGoldenNoiseParamsPlausible(t *testing.T) {
	d := Golden()
	p, err := d.NoiseParamsAt(biasOn, 1.575e9, 50)
	if err != nil {
		t.Fatalf("NoiseParamsAt: %v", err)
	}
	nfMin := p.FminDB()
	// L-band E-pHEMT: Fmin between ~0.2 and ~1.2 dB.
	if nfMin < 0.1 || nfMin > 1.5 {
		t.Errorf("Fmin = %g dB, want 0.1-1.5", nfMin)
	}
	if p.Rn <= 0 || p.Rn > 50 {
		t.Errorf("Rn = %g ohm, want small positive", p.Rn)
	}
	if g := cmplx.Abs(p.GammaOpt); g >= 1 {
		t.Errorf("|GammaOpt| = %g, want < 1", g)
	}
}

func TestNoiseFigureRisesWithFrequency(t *testing.T) {
	d := Golden()
	var prev float64
	for i, f := range []float64{0.8e9, 1.2e9, 1.6e9, 2.4e9, 4e9} {
		p, err := d.NoiseParamsAt(biasOn, f, 50)
		if err != nil {
			t.Fatalf("f=%g: %v", f, err)
		}
		if i > 0 && p.Fmin < prev {
			t.Errorf("Fmin not increasing with f: %g at %g Hz", p.Fmin, f)
		}
		prev = p.Fmin
	}
}

func TestNoiseGainTradeoffWithBias(t *testing.T) {
	// Higher drain current: more gm (gain) but hotter drain (noise). This
	// trade-off is what the multi-objective optimization balances.
	d := Golden()
	f := 1.575e9
	// Both biases below the Angelov gm peak (Vpk) so gm grows with Ids.
	lowI := Bias{Vgs: 0.30, Vds: 3}
	highI := Bias{Vgs: 0.46, Vds: 3}
	if d.Ids(lowI) >= d.Ids(highI) {
		t.Fatal("bias fixtures wrong: expected Ids(low) < Ids(high)")
	}
	gmLow := d.SmallSignalAt(lowI).Gm
	gmHigh := d.SmallSignalAt(highI).Gm
	if gmHigh <= gmLow {
		t.Errorf("gm should grow with Ids: %g -> %g", gmLow, gmHigh)
	}
	pLow, err := d.NoiseParamsAt(lowI, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	pHigh, err := d.NoiseParamsAt(highI, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if pHigh.Fmin <= pLow.Fmin {
		t.Errorf("Fmin should grow with Ids: %g -> %g (linear)", pLow.Fmin, pHigh.Fmin)
	}
}

func TestPospieszalskiAgainstClosedForm(t *testing.T) {
	// For the bare intrinsic device with Tau = 0 and Cgd = 0, Pospieszalski
	// gives closed-form noise parameters; the correlation-matrix pipeline
	// must reproduce them. (Pospieszalski 1989, eqs. for Tmin, Rn, Zopt.)
	ss := SmallSignal{
		Gm:  0.25,
		Gds: 0.004,
		Cgs: 1.4e-12,
		Cgd: 0,
		Cds: 0,
		Ri:  1.5,
		Tau: 0,
	}
	tg, td := 300.0, 1200.0
	f := 2e9
	y, cy := IntrinsicNoisyY(ss, f, tg, td)
	tpNoisy, err := noise.FromY(y, cy)
	if err != nil {
		t.Fatalf("FromY: %v", err)
	}
	p, err := tpNoisy.NoiseParams(50)
	if err != nil {
		t.Fatalf("NoiseParams: %v", err)
	}
	// Closed form: with fT = gm/(2 pi Cgs),
	// Tmin = 2 (f/fT) sqrt(Ri gds Tg Td + (f/fT)^2 Ri^2 gds^2 Td^2)
	//        + 2 (f/fT)^2 Ri gds Td.
	fT := ss.Gm / (2 * math.Pi * ss.Cgs)
	r := f / fT
	tmin := 2*r*math.Sqrt(ss.Ri*ss.Gds*tg*td+r*r*ss.Ri*ss.Ri*ss.Gds*ss.Gds*td*td) +
		2*r*r*ss.Ri*ss.Gds*td
	wantFmin := 1 + tmin/mathx.T0
	if math.Abs(p.Fmin-wantFmin) > 1e-6*wantFmin {
		t.Errorf("Fmin = %.8f, closed form %.8f", p.Fmin, wantFmin)
	}
	// Rn closed form: Rn = (Tg/T0) Ri + (Td/T0) gds / gm^2 * |1 + j 2 pi f Cgs Ri|^2
	w := 2 * math.Pi * f
	mag := 1 + w*w*ss.Cgs*ss.Cgs*ss.Ri*ss.Ri
	wantRn := tg/mathx.T0*ss.Ri + td/mathx.T0*ss.Gds/(ss.Gm*ss.Gm)*mag
	if math.Abs(p.Rn-wantRn) > 1e-6*wantRn {
		t.Errorf("Rn = %.8f, closed form %.8f", p.Rn, wantRn)
	}
}

func TestFukuiCrossCheck(t *testing.T) {
	// Fukui's empirical formula and the correlation-matrix Fmin must agree
	// within a factor consistent with kf calibration (same order, same
	// frequency trend).
	d := Golden()
	f := 1.575e9
	p, err := d.NoiseParamsAt(biasOn, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	fukui := d.FukuiFmin(biasOn, f, 2.5)
	// Both excess factors within 3x of each other.
	exCorr := p.Fmin - 1
	exFukui := fukui - 1
	if exCorr <= 0 || exFukui <= 0 {
		t.Fatalf("non-positive excess noise: %g %g", exCorr, exFukui)
	}
	ratio := exCorr / exFukui
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("Fukui and correlation Fmin disagree badly: excess %g vs %g", exCorr, exFukui)
	}
}

func TestEmbeddingAddsParasiticEffects(t *testing.T) {
	// Removing the parasitics must raise gain and lower noise.
	d := Golden()
	f := 1.575e9
	bare := *d
	bare.Ext = Extrinsics{}
	sFull, err := d.SAt(biasOn, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	sBare, err := bare.SAt(biasOn, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(sBare[1][0]) <= cmplx.Abs(sFull[1][0]) {
		t.Errorf("parasitics should reduce |S21|: bare %g vs full %g",
			cmplx.Abs(sBare[1][0]), cmplx.Abs(sFull[1][0]))
	}
	pFull, err := d.NoiseParamsAt(biasOn, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	pBare, err := bare.NoiseParamsAt(biasOn, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if pBare.Fmin >= pFull.Fmin {
		t.Errorf("parasitics should raise Fmin: bare %g vs full %g", pBare.Fmin, pFull.Fmin)
	}
}

func TestFindVgsForIds(t *testing.T) {
	d := Golden()
	for _, target := range []float64{0.01, 0.04, 0.08} {
		vgs, err := d.FindVgsForIds(target, 3)
		if err != nil {
			t.Fatalf("FindVgsForIds(%g): %v", target, err)
		}
		got := d.DC.Ids(vgs, 3)
		if math.Abs(got-target) > 1e-6 {
			t.Errorf("Ids(%g V) = %g, want %g", vgs, got, target)
		}
	}
	if _, err := d.FindVgsForIds(10, 3); err == nil {
		t.Error("impossible current accepted")
	}
}

func TestCapModelTransitions(t *testing.T) {
	c := Golden().Caps
	if c.Cgs(-1) >= c.Cgs(0.8) {
		t.Error("Cgs must grow from pinch-off to open channel")
	}
	if got := c.Cgs(-10); math.Abs(got-c.CgsPinch) > 0.02e-12 {
		t.Errorf("deep pinch Cgs = %g, want ~CgsPinch", got)
	}
	if c.Cgd(0) <= c.Cgd(3) {
		t.Error("Cgd must fall with Vds")
	}
	// Degenerate scales fall back to constants.
	flat := CapModel{Cgs0: 1e-12, Cgd0: 2e-13}
	if flat.Cgs(0.3) != 1e-12 || flat.Cgd(2) != 2e-13 {
		t.Error("zero-scale cap model must be constant")
	}
}

func TestSmallSignalFT(t *testing.T) {
	ss := SmallSignal{Gm: 0.3, Cgs: 1.5e-12, Cgd: 0.2e-12}
	want := 0.3 / (2 * math.Pi * 1.7e-12)
	if got := ss.FT(); math.Abs(got-want) > 1e-3*want {
		t.Errorf("FT = %g, want %g", got, want)
	}
	if (SmallSignal{}).FT() != 0 {
		t.Error("FT of empty model must be 0")
	}
}

func TestReciprocityOfPassiveModeDevice(t *testing.T) {
	// With gm = 0 (cold FET) the device is passive and reciprocal:
	// S12 == S21.
	d := Golden()
	cold := Bias{Vgs: -0.8, Vds: 0}
	s, err := d.SAt(cold, 1e9, 50)
	if err != nil {
		t.Fatalf("cold SAt: %v", err)
	}
	if cmplx.Abs(s[0][1]-s[1][0]) > 1e-9 {
		t.Errorf("cold FET not reciprocal: S12=%v S21=%v", s[0][1], s[1][0])
	}
	// And passive: no power gain anywhere.
	if cmplx.Abs(s[1][0]) >= 1 {
		t.Errorf("cold FET |S21| = %g, want < 1", cmplx.Abs(s[1][0]))
	}
}

func TestGoldenVariantDiffersButPlausible(t *testing.T) {
	g := Golden()
	v, err := GoldenVariant(7)
	if err != nil {
		t.Fatalf("GoldenVariant: %v", err)
	}
	if v.Name == g.Name {
		t.Error("variant not renamed")
	}
	// Parameters moved but stayed within +/-15%.
	if v.Ri == g.Ri {
		t.Error("variant identical to golden")
	}
	if v.Ri < 0.85*g.Ri-1e-12 || v.Ri > 1.15*g.Ri+1e-12 {
		t.Errorf("variant Ri %g outside +/-15%% of %g", v.Ri, g.Ri)
	}
	// Deterministic per seed.
	v2, err := GoldenVariant(7)
	if err != nil {
		t.Fatalf("GoldenVariant: %v", err)
	}
	if v2.Ri != v.Ri || v2.Caps.Cgs0 != v.Caps.Cgs0 {
		t.Error("variant not deterministic")
	}
	// Still a plausible transistor.
	s, err := v.SAt(biasOn, 1.4e9, 50)
	if err != nil {
		t.Fatalf("variant SAt: %v", err)
	}
	if g21 := real(s[1][0])*real(s[1][0]) + imag(s[1][0])*imag(s[1][0]); g21 < 1 {
		t.Errorf("variant |S21|^2 = %g, no longer an amplifier", g21)
	}
}

// rejectingDC is a stub DC model whose SetParams always fails, exercising
// the variant error path that used to panic.
type rejectingDC struct{ Angelov }

var errRejected = errors.New("rejected")

func (r *rejectingDC) SetParams([]float64) error { return errRejected }

func TestVariantOfReturnsSetParamsError(t *testing.T) {
	d := Golden()
	d.DC = &rejectingDC{}
	v, err := variantOf(d, 3)
	if !errors.Is(err, errRejected) {
		t.Fatalf("variantOf error = %v, want wrapped errRejected", err)
	}
	if v != nil {
		t.Fatalf("variantOf returned a device alongside the error: %+v", v)
	}
}
