package device

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllModelsBasicPhysics(t *testing.T) {
	for _, m := range AllModels() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			// Zero drain voltage: zero current.
			if i := m.Ids(0.6, 0); math.Abs(i) > 1e-12 {
				t.Errorf("Ids(Vds=0) = %g, want 0", i)
			}
			// Deep pinch-off: (nearly) zero current.
			if i := m.Ids(-1.5, 3); i > 1e-4 {
				t.Errorf("Ids(pinched) = %g, want ~0", i)
			}
			// Saturation current positive at a strong bias.
			if i := m.Ids(0.8, 3); i <= 0 {
				t.Errorf("Ids(on) = %g, want > 0", i)
			}
			// Monotone in Vgs through the active region.
			prev := m.Ids(0.0, 3)
			for v := 0.05; v <= 0.9; v += 0.05 {
				cur := m.Ids(v, 3)
				if cur < prev-1e-9 {
					t.Errorf("Ids not monotone in Vgs at %g: %g < %g", v, cur, prev)
				}
				prev = cur
			}
			// Gm positive in the active region.
			if g := Gm(m, 0.6, 3); g <= 0 {
				t.Errorf("Gm = %g, want > 0", g)
			}
			// Gds non-negative in saturation.
			if g := Gds(m, 0.6, 3); g < -1e-6 {
				t.Errorf("Gds = %g, want >= 0", g)
			}
		})
	}
}

func TestParamsRoundTripAllModels(t *testing.T) {
	for _, m := range AllModels() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			p := m.Params()
			if len(p) != len(m.ParamNames()) {
				t.Fatalf("param/name length mismatch: %d vs %d", len(p), len(m.ParamNames()))
			}
			lo, hi := m.Bounds()
			if len(lo) != len(p) || len(hi) != len(p) {
				t.Fatalf("bounds length mismatch")
			}
			for i := range p {
				if lo[i] >= hi[i] {
					t.Errorf("bounds[%d] inverted: [%g, %g]", i, lo[i], hi[i])
				}
			}
			// Mutate and restore.
			p2 := append([]float64(nil), p...)
			p2[0] *= 1.5
			if err := m.SetParams(p2); err != nil {
				t.Fatalf("SetParams: %v", err)
			}
			got := m.Params()
			if got[0] != p2[0] {
				t.Errorf("SetParams did not apply: %g vs %g", got[0], p2[0])
			}
			if err := m.SetParams(p[:1]); err == nil {
				t.Error("short parameter vector accepted")
			}
		})
	}
}

func TestGmDerivativeConsistency(t *testing.T) {
	// Gm from the helper must agree with a manual secant for the Angelov
	// model (smooth everywhere).
	m := Golden().DC
	vgs, vds := 0.55, 3.0
	h := 1e-5
	manual := (m.Ids(vgs+h, vds) - m.Ids(vgs-h, vds)) / (2 * h)
	if g := Gm(m, vgs, vds); math.Abs(g-manual) > 1e-4*math.Abs(manual) {
		t.Errorf("Gm = %g, secant = %g", g, manual)
	}
}

func TestAngelovBellShapedGm(t *testing.T) {
	// The Angelov model's signature: gm peaks near Vpk and falls beyond.
	m := &Angelov{Ipk: 0.1, Vpk: 0.5, P1: 3, P2: 0, P3: 0, Lambda: 0.05, Alpha: 3}
	gPeak := Gm(m, 0.5, 3)
	gBelow := Gm(m, 0.1, 3)
	gAbove := Gm(m, 0.9, 3)
	if gPeak <= gBelow || gPeak <= gAbove {
		t.Errorf("gm not bell-shaped: below=%g peak=%g above=%g", gBelow, gPeak, gAbove)
	}
}

func TestColdFETBehaviour(t *testing.T) {
	// At Vds=0 the channel acts as a conductance: gds > 0 when the channel
	// is open and ~0 when pinched (basis of the cold-FET extraction step).
	m := Golden().DC
	open := Gds(m, 0.7, 0)
	pinched := Gds(m, -1.2, 0)
	if open < 1e-3 {
		t.Errorf("open-channel cold conductance = %g S, want substantial", open)
	}
	if pinched > open/1e3 {
		t.Errorf("pinched cold conductance = %g S, want << open (%g)", pinched, open)
	}
}

func TestGm3SignChange(t *testing.T) {
	// gm3 of the Angelov model changes sign across the gm peak — the
	// physical basis of the IP3 "sweet spot".
	m := Golden().DC
	low := Gm3(m, 0.30, 3)
	high := Gm3(m, 0.75, 3)
	if low*high >= 0 {
		t.Errorf("gm3 does not change sign: gm3(0.30)=%g gm3(0.75)=%g", low, high)
	}
}

func TestTOMCompressionReducesCurrent(t *testing.T) {
	base := &TOM{Beta: 0.15, Vto: 0.3, Q: 2, Gamma: 0, Delta: 0, Alpha: 3}
	compressed := &TOM{Beta: 0.15, Vto: 0.3, Q: 2, Gamma: 0, Delta: 0.5, Alpha: 3}
	if compressed.Ids(0.8, 4) >= base.Ids(0.8, 4) {
		t.Error("Delta compression must reduce current")
	}
}

func TestStatzKneePolynomialContinuity(t *testing.T) {
	// The Statz saturation function must be continuous at Vds = 3/Alpha.
	m := NewStatz()
	vKnee := 3 / m.Alpha
	below := m.Ids(0.7, vKnee-1e-9)
	above := m.Ids(0.7, vKnee+1e-9)
	if math.Abs(below-above) > 1e-6*math.Abs(above) {
		t.Errorf("Statz discontinuous at knee: %g vs %g", below, above)
	}
}

func TestAllModelsPhysicalAcrossRandomParams(t *testing.T) {
	// Property: for any parameter vector inside the declared bounds, every
	// model returns finite, non-negative current for vds >= 0 across the
	// operating region.
	rng := rand.New(rand.NewSource(17))
	for _, m := range AllModels() {
		lo, hi := m.Bounds()
		for trial := 0; trial < 60; trial++ {
			p := make([]float64, len(lo))
			for i := range p {
				p[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			if err := m.SetParams(p); err != nil {
				t.Fatalf("%s: SetParams: %v", m.Name(), err)
			}
			for _, vgs := range []float64{-1, 0, 0.3, 0.6, 1} {
				for _, vds := range []float64{0, 0.5, 2, 4} {
					i := m.Ids(vgs, vds)
					if math.IsNaN(i) || math.IsInf(i, 0) {
						t.Fatalf("%s: Ids(%g,%g) = %v with params %v", m.Name(), vgs, vds, i, p)
					}
					if i < -1e-9 {
						t.Fatalf("%s: negative current %g at (%g,%g)", m.Name(), i, vgs, vds)
					}
				}
			}
		}
	}
}
