package device

import (
	"fmt"
	"math"
	"math/rand"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// CapModel describes the bias dependence of the intrinsic capacitances with
// smooth tanh transitions (after Angelov's capacitance model).
type CapModel struct {
	// Cgs0 is the on-state (open channel) gate-source capacitance.
	Cgs0 float64
	// CgsPinch is the pinched-off gate-source capacitance.
	CgsPinch float64
	// CgsVmid and CgsVscale place the Cgs transition versus Vgs.
	CgsVmid, CgsVscale float64
	// Cgd0 is the zero-Vds gate-drain capacitance.
	Cgd0 float64
	// CgdVscale controls the Cgd decrease with Vds.
	CgdVscale float64
	// Cds is the (bias-independent) drain-source capacitance.
	Cds float64
}

// Cgs returns the gate-source capacitance at vgs.
func (c CapModel) Cgs(vgs float64) float64 {
	if c.CgsVscale <= 0 {
		return c.Cgs0
	}
	t := math.Tanh((vgs - c.CgsVmid) / c.CgsVscale)
	return c.CgsPinch + (c.Cgs0-c.CgsPinch)*(1+t)/2
}

// Cgd returns the gate-drain capacitance at vds.
func (c CapModel) Cgd(vds float64) float64 {
	if c.CgdVscale <= 0 {
		return c.Cgd0
	}
	return c.Cgd0 / (1 + math.Max(vds, 0)/c.CgdVscale)
}

// NoiseModel holds the Pospieszalski two-temperature parameters. The drain
// temperature grows with drain current, which creates the fundamental
// NF-vs-gain trade-off the paper's optimization balances.
type NoiseModel struct {
	// Tg is the gate (Ri) equivalent temperature in kelvin.
	Tg float64
	// Td0 is the drain temperature at zero current in kelvin.
	Td0 float64
	// TdSlope is the drain temperature increase in kelvin per ampere.
	TdSlope float64
	// Ta is the ambient temperature of the parasitic resistances.
	Ta float64
}

// Td returns the drain temperature at drain current ids.
func (n NoiseModel) Td(ids float64) float64 {
	return n.Td0 + n.TdSlope*math.Abs(ids)
}

// PHEMT is a complete transistor: DC model, bias-dependent small-signal
// topology, extrinsic parasitics and noise model.
type PHEMT struct {
	// Name labels the device in reports.
	Name string
	// DC is the nonlinear drain-current model.
	DC DCModel
	// Caps is the bias-dependent capacitance model.
	Caps CapModel
	// Ri is the intrinsic charging resistance in ohms.
	Ri float64
	// Tau is the transconductance delay in seconds.
	Tau float64
	// Ext are the extrinsic parasitics.
	Ext Extrinsics
	// Noise is the two-temperature noise model.
	Noise NoiseModel
}

// Golden returns the hidden reference device standing in for the physical
// pHEMT the paper measures: an enhancement-mode GaAs pHEMT of the
// ATF-54143 class, described by an Angelov DC model. The synthetic VNA
// "measures" this device; extraction then recovers it.
func Golden() *PHEMT {
	return &PHEMT{
		Name: "golden-epHEMT",
		DC: &Angelov{
			Ipk:    0.095, // A
			Vpk:    0.48,  // V
			P1:     3.0,
			P2:     0.5,
			P3:     0.18,
			Lambda: 0.045,
			Alpha:  2.6,
		},
		Caps: CapModel{
			Cgs0:      1.55e-12,
			CgsPinch:  0.45e-12,
			CgsVmid:   0.30,
			CgsVscale: 0.22,
			Cgd0:      0.24e-12,
			CgdVscale: 1.8,
			Cds:       0.52e-12,
		},
		Ri:  1.1,
		Tau: 2.2e-12,
		Ext: Extrinsics{
			Rg: 1.0, Rs: 0.55, Rd: 1.6,
			Lg: 0.45e-9, Ls: 0.28e-9, Ld: 0.55e-9,
			Cpg: 0.24e-12, Cpd: 0.26e-12,
		},
		Noise: NoiseModel{
			Tg:      300,
			Td0:     850,
			TdSlope: 14000, // K/A: Td ~ 1690 K at 60 mA
			Ta:      mathx.T0,
		},
	}
}

// GoldenVariant returns a process-shifted copy of the golden device: every
// DC, capacitance and parasitic parameter is perturbed by up to +/-15%
// (deterministically per seed). Extraction robustness tests use these
// variants as "other lots" of the same transistor type. An error is
// returned when the shifted DC parameter vector is rejected by the model.
func GoldenVariant(seed int64) (*PHEMT, error) {
	return variantOf(Golden(), seed)
}

// variantOf perturbs every parameter of d in place by up to +/-15%
// (deterministically per seed) and renames it.
func variantOf(d *PHEMT, seed int64) (*PHEMT, error) {
	rng := rand.New(rand.NewSource(seed))
	scale := func(v float64) float64 { return v * (1 + 0.15*(2*rng.Float64()-1)) }
	p := d.DC.Params()
	for i := range p {
		p[i] = scale(p[i])
	}
	if err := d.DC.SetParams(p); err != nil {
		return nil, fmt.Errorf("device: variant seed %d: %w", seed, err)
	}
	d.Caps.Cgs0 = scale(d.Caps.Cgs0)
	d.Caps.CgsPinch = scale(d.Caps.CgsPinch)
	d.Caps.Cgd0 = scale(d.Caps.Cgd0)
	d.Caps.Cds = scale(d.Caps.Cds)
	d.Ri = scale(d.Ri)
	d.Tau = scale(d.Tau)
	d.Ext.Rg = scale(d.Ext.Rg)
	d.Ext.Rs = scale(d.Ext.Rs)
	d.Ext.Rd = scale(d.Ext.Rd)
	d.Ext.Lg = scale(d.Ext.Lg)
	d.Ext.Ls = scale(d.Ext.Ls)
	d.Ext.Ld = scale(d.Ext.Ld)
	d.Ext.Cpg = scale(d.Ext.Cpg)
	d.Ext.Cpd = scale(d.Ext.Cpd)
	d.Name = fmt.Sprintf("golden-variant-%d", seed)
	return d, nil
}

// Ids returns the DC drain current at the bias point.
func (d *PHEMT) Ids(b Bias) float64 { return d.DC.Ids(b.Vgs, b.Vds) }

// SmallSignalAt returns the intrinsic small-signal model at the bias point.
func (d *PHEMT) SmallSignalAt(b Bias) SmallSignal {
	return SmallSignal{
		Gm:  Gm(d.DC, b.Vgs, b.Vds),
		Gds: math.Max(Gds(d.DC, b.Vgs, b.Vds), 1e-9),
		Cgs: d.Caps.Cgs(b.Vgs),
		Cgd: d.Caps.Cgd(b.Vds),
		Cds: d.Caps.Cds,
		Ri:  d.Ri,
		Tau: d.Tau,
	}
}

// NoisyAt returns the fully embedded noisy two-port of the device at bias b
// and frequency f.
func (d *PHEMT) NoisyAt(b Bias, f float64) (noise.TwoPort, error) {
	ss := d.SmallSignalAt(b)
	td := d.Noise.Td(d.Ids(b))
	y, cy := IntrinsicNoisyY(ss, f, d.Noise.Tg, td)
	tp, err := Embed(y, cy, d.Ext, f, d.Noise.Ta)
	if err != nil {
		return noise.TwoPort{}, fmt.Errorf("device %s at (%.2f, %.2f) V, %.3g Hz: %w",
			d.Name, b.Vgs, b.Vds, f, err)
	}
	return tp, nil
}

// SAt returns the embedded S-parameters of the device at bias b, frequency
// f, referenced to z0.
func (d *PHEMT) SAt(b Bias, f, z0 float64) (twoport.Mat2, error) {
	tp, err := d.NoisyAt(b, f)
	if err != nil {
		return twoport.Mat2{}, err
	}
	return tp.S(z0)
}

// NoiseParamsAt returns the four noise parameters of the embedded device.
func (d *PHEMT) NoiseParamsAt(b Bias, f, z0 float64) (noise.Params, error) {
	tp, err := d.NoisyAt(b, f)
	if err != nil {
		return noise.Params{}, err
	}
	return tp.NoiseParams(z0)
}

// FT returns the cutoff frequency at the bias point.
func (d *PHEMT) FT(b Bias) float64 { return d.SmallSignalAt(b).FT() }

// FukuiFmin returns the classical Fukui estimate of the minimum noise
// figure (linear) at frequency f and bias b, with fitting factor kf
// (typically ~2.5 for pHEMTs). It serves as an independent cross-check of
// the correlation-matrix analysis.
func (d *PHEMT) FukuiFmin(b Bias, f, kf float64) float64 {
	ss := d.SmallSignalAt(b)
	ft := ss.FT()
	if ft <= 0 {
		return math.Inf(1)
	}
	return 1 + kf*(f/ft)*math.Sqrt(ss.Gm*(d.Ext.Rg+d.Ext.Rs))
}

// GmCoefficients returns the first three derivatives of the drain current
// with respect to Vgs at bias b, the power-series coefficients used by the
// intermodulation analysis: ids(v) = Ids + gm1 v + gm2/2 v^2 + gm3/6 v^3.
func (d *PHEMT) GmCoefficients(b Bias) (gm1, gm2, gm3 float64) {
	return Gm(d.DC, b.Vgs, b.Vds), Gm2(d.DC, b.Vgs, b.Vds), Gm3(d.DC, b.Vgs, b.Vds)
}

// FindVgsForIds searches the gate voltage that yields drain current target
// at the given vds, by bisection over the model's useful gate range.
func (d *PHEMT) FindVgsForIds(target, vds float64) (float64, error) {
	lo, hi := -2.0, 2.0
	ilo, ihi := d.DC.Ids(lo, vds), d.DC.Ids(hi, vds)
	if target < ilo || target > ihi {
		return 0, fmt.Errorf("device: target Ids %.3g A outside range [%.3g, %.3g] at Vds=%.2f",
			target, ilo, ihi, vds)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d.DC.Ids(mid, vds) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
