package device

import (
	"fmt"
	"math"

	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// Band-sweep fast paths. NoisyAt recomputes the bias-dependent small-signal
// model — four numerical derivatives of the DC model plus the capacitance
// fits — at every frequency even though none of it depends on frequency.
// BandState hoists that work out of the grid loop; the per-point arithmetic
// that remains is exactly NoisyAt's, so results are value-exact (==) against
// the per-point path (enforced by internal/verify).

// BandState is the frequency-independent part of the device evaluation at
// one bias point.
type BandState struct {
	// SS is the intrinsic small-signal model at the bias.
	SS SmallSignal
	// Td is the drain noise temperature at the bias current.
	Td float64
}

// BandStateAt computes the reusable bias state, exactly as NoisyAt derives
// it per point.
func (d *PHEMT) BandStateAt(b Bias) BandState {
	return BandState{
		SS: d.SmallSignalAt(b),
		Td: d.Noise.Td(d.Ids(b)),
	}
}

// NoisyAtState returns the embedded noisy two-port at f from a precomputed
// bias state, equal (==) to NoisyAt(b, f) for the same bias.
func (d *PHEMT) NoisyAtState(st BandState, b Bias, f float64) (noise.TwoPort, error) {
	y, cy := IntrinsicNoisyY(st.SS, f, d.Noise.Tg, st.Td)
	tp, err := Embed(y, cy, d.Ext, f, d.Noise.Ta)
	if err != nil {
		return noise.TwoPort{}, fmt.Errorf("device %s at (%.2f, %.2f) V, %.3g Hz: %w",
			d.Name, b.Vgs, b.Vds, f, err)
	}
	return tp, nil
}

// NoisyBandInto writes the embedded noisy two-port at each frequency into
// dst (same length as freqs). The bias state is computed once; each point is
// equal (==) to NoisyAt(b, freqs[i]).
func (d *PHEMT) NoisyBandInto(dst []noise.TwoPort, b Bias, freqs []float64) error {
	st := d.BandStateAt(b)
	for i, f := range freqs {
		tp, err := d.NoisyAtState(st, b, f)
		if err != nil {
			return err
		}
		dst[i] = tp
	}
	return nil
}

// EmbedABCD returns only the chain matrix of the embedded device: the exact
// A-side arithmetic of Embed — the same conversion sequence in the same
// order, so the result is equal (==) to Embed(...).A — with every
// noise-correlation congruence skipped. Stability scans need S (hence A)
// but none of the noise bookkeeping, which is most of Embed's cost.
func EmbedABCD(yInt twoport.Mat2, ex Extrinsics, f float64) (twoport.Mat2, error) {
	w := 2 * math.Pi * f
	// FromY: A = YToABCD(yInt).
	a, err := twoport.YToABCD(yInt)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed intrinsic: %w", err)
	}
	// ToZ round-trips through Y: y = ABCDToY(A), z = YToZ(y).
	y, err := twoport.ABCDToY(a)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed to Z: %w", err)
	}
	z, err := twoport.YToZ(y)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed to Z: %w", err)
	}
	zg := complex(ex.Rg, w*ex.Lg)
	zs := complex(ex.Rs, w*ex.Ls)
	zd := complex(ex.Rd, w*ex.Ld)
	// Common-lead impedance adds to every entry of Z (series feedback).
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			z[i][j] += zs
		}
	}
	z[0][0] += zg
	z[1][1] += zd
	// FromZ: y = ZToY(z), A = YToABCD(y).
	y, err = twoport.ZToY(z)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed from Z: %w", err)
	}
	a, err = twoport.YToABCD(y)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed from Z: %w", err)
	}
	// ToY then pad susceptances, then the final FromY.
	y, err = twoport.ABCDToY(a)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("device: embed pads: %w", err)
	}
	y[0][0] += complex(0, w*ex.Cpg)
	y[1][1] += complex(0, w*ex.Cpd)
	return twoport.YToABCD(y)
}

// ABCDAtState returns only the embedded chain matrix at f from a
// precomputed bias state, equal (==) to NoisyAt(b, f).A.
func (d *PHEMT) ABCDAtState(st BandState, f float64) (twoport.Mat2, error) {
	return EmbedABCD(IntrinsicY(st.SS, f), d.Ext, f)
}

// ABCDBandInto writes the embedded chain matrix at each frequency into dst
// (same length as freqs), computing the bias state once.
func (d *PHEMT) ABCDBandInto(dst []twoport.Mat2, b Bias, freqs []float64) error {
	st := d.BandStateAt(b)
	for i, f := range freqs {
		a, err := d.ABCDAtState(st, f)
		if err != nil {
			return err
		}
		dst[i] = a
	}
	return nil
}
