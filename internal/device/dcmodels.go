// Package device models the low-noise pHEMT at the center of the paper's
// preamplifier: five nonlinear DC drain-current models (Curtice quadratic
// and cubic, Statz, TOM and Angelov) used in the model-comparison study, a
// bias-dependent small-signal equivalent circuit with extrinsic parasitics,
// and the Pospieszalski two-temperature noise model producing exact noise
// correlation matrices for the embedded device.
package device

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
)

// DCModel is a nonlinear drain-current model Ids(Vgs, Vds) with a flat
// parameter vector so extraction code can optimize any model generically.
type DCModel interface {
	// Name identifies the model in reports.
	Name() string
	// Ids returns the drain current in amperes at the given gate-source and
	// drain-source voltages.
	Ids(vgs, vds float64) float64
	// Params returns a copy of the parameter vector.
	Params() []float64
	// SetParams replaces the parameter vector.
	SetParams(p []float64) error
	// ParamNames returns the parameter names, aligned with Params.
	ParamNames() []string
	// Bounds returns elementwise lower and upper parameter bounds for
	// global search.
	Bounds() (lo, hi []float64)
}

// Gm returns the transconductance dIds/dVgs of a model at a bias point.
func Gm(m DCModel, vgs, vds float64) float64 {
	return mathx.Derivative(func(v float64) float64 { return m.Ids(v, vds) }, vgs)
}

// Gds returns the output conductance dIds/dVds of a model at a bias point.
func Gds(m DCModel, vgs, vds float64) float64 {
	return mathx.Derivative(func(v float64) float64 { return m.Ids(vgs, v) }, vds)
}

// Gm2 returns the second derivative of Ids with respect to Vgs, the
// quadratic nonlinearity coefficient driving second-order intermodulation.
func Gm2(m DCModel, vgs, vds float64) float64 {
	return mathx.Derivative2(func(v float64) float64 { return m.Ids(v, vds) }, vgs)
}

// Gm3 returns the third derivative of Ids with respect to Vgs, which sets
// third-order intermodulation.
func Gm3(m DCModel, vgs, vds float64) float64 {
	return mathx.Derivative3(func(v float64) float64 { return m.Ids(v, vds) }, vgs)
}

func checkLen(name string, p []float64, want int) error {
	if len(p) != want {
		return fmt.Errorf("device: %s expects %d parameters, got %d", name, want, len(p))
	}
	return nil
}

// CurticeQuadratic is the Curtice (1980) square-law MESFET/HEMT model:
// Ids = Beta (Vgs-Vto)^2 (1 + Lambda Vds) tanh(Alpha Vds).
type CurticeQuadratic struct {
	Beta, Vto, Lambda, Alpha float64
}

var _ DCModel = (*CurticeQuadratic)(nil)

// NewCurticeQuadratic returns the model with neutral starting parameters.
func NewCurticeQuadratic() *CurticeQuadratic {
	return &CurticeQuadratic{Beta: 0.2, Vto: 0.3, Lambda: 0.05, Alpha: 3}
}

// Name implements DCModel.
func (m *CurticeQuadratic) Name() string { return "Curtice-2" }

// Ids implements DCModel.
func (m *CurticeQuadratic) Ids(vgs, vds float64) float64 {
	v := vgs - m.Vto
	if v <= 0 {
		return 0
	}
	return m.Beta * v * v * (1 + m.Lambda*vds) * math.Tanh(m.Alpha*vds)
}

// Params implements DCModel.
func (m *CurticeQuadratic) Params() []float64 {
	return []float64{m.Beta, m.Vto, m.Lambda, m.Alpha}
}

// SetParams implements DCModel.
func (m *CurticeQuadratic) SetParams(p []float64) error {
	if err := checkLen(m.Name(), p, 4); err != nil {
		return err
	}
	m.Beta, m.Vto, m.Lambda, m.Alpha = p[0], p[1], p[2], p[3]
	return nil
}

// ParamNames implements DCModel.
func (m *CurticeQuadratic) ParamNames() []string {
	return []string{"Beta", "Vto", "Lambda", "Alpha"}
}

// Bounds implements DCModel.
func (m *CurticeQuadratic) Bounds() (lo, hi []float64) {
	return []float64{0.01, -1, 0, 0.5}, []float64{2, 1, 0.5, 10}
}

// CurticeCubic is the Curtice-Ettenberg (1985) cubic model:
// Ids = (A0 + A1 V1 + A2 V1^2 + A3 V1^3) tanh(Gamma Vds),
// V1 = Vgs (1 + Beta (Vds0 - Vds)).
type CurticeCubic struct {
	A0, A1, A2, A3, Beta, Gamma, Vds0 float64
}

var _ DCModel = (*CurticeCubic)(nil)

// NewCurticeCubic returns the model with neutral starting parameters.
func NewCurticeCubic() *CurticeCubic {
	return &CurticeCubic{A0: 0.02, A1: 0.1, A2: 0.1, A3: 0.02, Beta: 0, Gamma: 3, Vds0: 3}
}

// Name implements DCModel.
func (m *CurticeCubic) Name() string { return "Curtice-3" }

// Ids implements DCModel.
func (m *CurticeCubic) Ids(vgs, vds float64) float64 {
	v1 := vgs * (1 + m.Beta*(m.Vds0-vds))
	// The cubic fit is only physical on its ascending branch; clamp V1 to
	// the interval where dIds/dV1 >= 0 so the model pinches off cleanly
	// instead of re-rising at large negative gate voltages.
	v1 = m.clampToAscending(v1)
	i := m.A0 + v1*(m.A1+v1*(m.A2+v1*m.A3))
	if i <= 0 {
		return 0
	}
	return i * math.Tanh(m.Gamma*vds)
}

// clampToAscending restricts v1 to the branch of the cubic where the
// polynomial is non-decreasing.
func (m *CurticeCubic) clampToAscending(v1 float64) float64 {
	// Critical points: roots of 3 A3 v^2 + 2 A2 v + A1 = 0.
	a, b, c := 3*m.A3, 2*m.A2, m.A1
	if a == 0 {
		if b == 0 {
			return v1
		}
		// Quadratic current: ascending for v >= -c/b when b > 0.
		root := -c / b
		if b > 0 && v1 < root {
			return root
		}
		if b < 0 && v1 > root {
			return root
		}
		return v1
	}
	disc := b*b - 4*a*c
	if disc <= 0 {
		return v1 // monotone cubic
	}
	sq := math.Sqrt(disc)
	c1 := (-b - sq) / (2 * a)
	c2 := (-b + sq) / (2 * a)
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	if a > 0 {
		// Ascending on (-inf, c1] and [c2, inf): use the physical upper
		// branch.
		if v1 < c2 {
			return c2
		}
		return v1
	}
	// a < 0: ascending only on [c1, c2].
	return math.Min(math.Max(v1, c1), c2)
}

// Params implements DCModel.
func (m *CurticeCubic) Params() []float64 {
	return []float64{m.A0, m.A1, m.A2, m.A3, m.Beta, m.Gamma, m.Vds0}
}

// SetParams implements DCModel.
func (m *CurticeCubic) SetParams(p []float64) error {
	if err := checkLen(m.Name(), p, 7); err != nil {
		return err
	}
	m.A0, m.A1, m.A2, m.A3, m.Beta, m.Gamma, m.Vds0 = p[0], p[1], p[2], p[3], p[4], p[5], p[6]
	return nil
}

// ParamNames implements DCModel.
func (m *CurticeCubic) ParamNames() []string {
	return []string{"A0", "A1", "A2", "A3", "Beta", "Gamma", "Vds0"}
}

// Bounds implements DCModel.
func (m *CurticeCubic) Bounds() (lo, hi []float64) {
	return []float64{-0.2, -1, -1, -1, -0.2, 0.5, 0.5},
		[]float64{0.2, 1, 1, 1, 0.2, 10, 6}
}

// Statz is the Statz (Raytheon, 1987) model with its polynomial knee below
// Vds = 3/Alpha:
// Ids = Beta (Vgs-Vto)^2 / (1 + B (Vgs-Vto)) * K(Vds) * (1 + Lambda Vds).
type Statz struct {
	Beta, Vto, B, Alpha, Lambda float64
}

var _ DCModel = (*Statz)(nil)

// NewStatz returns the model with neutral starting parameters.
func NewStatz() *Statz {
	return &Statz{Beta: 0.25, Vto: 0.3, B: 1, Alpha: 2.5, Lambda: 0.05}
}

// Name implements DCModel.
func (m *Statz) Name() string { return "Statz" }

// Ids implements DCModel.
func (m *Statz) Ids(vgs, vds float64) float64 {
	v := vgs - m.Vto
	if v <= 0 {
		return 0
	}
	sat := 1.0
	if m.Alpha*vds < 3 {
		u := 1 - m.Alpha*vds/3
		sat = 1 - u*u*u
	}
	den := 1 + m.B*v
	if den <= 1e-9 {
		den = 1e-9
	}
	return m.Beta * v * v / den * sat * (1 + m.Lambda*vds)
}

// Params implements DCModel.
func (m *Statz) Params() []float64 {
	return []float64{m.Beta, m.Vto, m.B, m.Alpha, m.Lambda}
}

// SetParams implements DCModel.
func (m *Statz) SetParams(p []float64) error {
	if err := checkLen(m.Name(), p, 5); err != nil {
		return err
	}
	m.Beta, m.Vto, m.B, m.Alpha, m.Lambda = p[0], p[1], p[2], p[3], p[4]
	return nil
}

// ParamNames implements DCModel.
func (m *Statz) ParamNames() []string {
	return []string{"Beta", "Vto", "B", "Alpha", "Lambda"}
}

// Bounds implements DCModel.
func (m *Statz) Bounds() (lo, hi []float64) {
	return []float64{0.01, -1, 0, 0.5, 0}, []float64{2, 1, 10, 10, 0.5}
}

// TOM is the TriQuint's Own Model (TOM-1, 1990): a power-law current with
// drain-feedback threshold shift and self-heating-like compression:
// Ids0 = Beta (Vgs - Vto + Gamma Vds)^Q tanh(Alpha Vds),
// Ids  = Ids0 / (1 + Delta Vds Ids0).
type TOM struct {
	Beta, Vto, Q, Gamma, Delta, Alpha float64
}

var _ DCModel = (*TOM)(nil)

// NewTOM returns the model with neutral starting parameters.
func NewTOM() *TOM {
	return &TOM{Beta: 0.15, Vto: 0.3, Q: 2, Gamma: 0.02, Delta: 0.1, Alpha: 3}
}

// Name implements DCModel.
func (m *TOM) Name() string { return "TOM" }

// Ids implements DCModel.
func (m *TOM) Ids(vgs, vds float64) float64 {
	v := vgs - m.Vto + m.Gamma*vds
	if v <= 0 {
		return 0
	}
	q := m.Q
	if q < 1 {
		q = 1
	}
	i0 := m.Beta * math.Pow(v, q) * math.Tanh(m.Alpha*vds)
	den := 1 + m.Delta*vds*i0
	if den <= 1e-9 {
		den = 1e-9
	}
	return i0 / den
}

// Params implements DCModel.
func (m *TOM) Params() []float64 {
	return []float64{m.Beta, m.Vto, m.Q, m.Gamma, m.Delta, m.Alpha}
}

// SetParams implements DCModel.
func (m *TOM) SetParams(p []float64) error {
	if err := checkLen(m.Name(), p, 6); err != nil {
		return err
	}
	m.Beta, m.Vto, m.Q, m.Gamma, m.Delta, m.Alpha = p[0], p[1], p[2], p[3], p[4], p[5]
	return nil
}

// ParamNames implements DCModel.
func (m *TOM) ParamNames() []string {
	return []string{"Beta", "Vto", "Q", "Gamma", "Delta", "Alpha"}
}

// Bounds implements DCModel.
func (m *TOM) Bounds() (lo, hi []float64) {
	return []float64{0.01, -1, 1, -0.2, 0, 0.5}, []float64{2, 1, 3, 0.2, 2, 10}
}

// Angelov is the Angelov/Chalmers (1992) model, the de-facto standard for
// pHEMTs thanks to its accurate bell-shaped transconductance:
// Ids = Ipk (1 + tanh(Psi)) (1 + Lambda Vds) tanh(Alpha Vds),
// Psi = P1 (Vgs-Vpk) + P2 (Vgs-Vpk)^2 + P3 (Vgs-Vpk)^3.
type Angelov struct {
	Ipk, Vpk, P1, P2, P3, Lambda, Alpha float64
}

var _ DCModel = (*Angelov)(nil)

// NewAngelov returns the model with neutral starting parameters.
func NewAngelov() *Angelov {
	return &Angelov{Ipk: 0.08, Vpk: 0.5, P1: 2, P2: 0, P3: 0.1, Lambda: 0.05, Alpha: 3}
}

// Name implements DCModel.
func (m *Angelov) Name() string { return "Angelov" }

// Ids implements DCModel.
func (m *Angelov) Ids(vgs, vds float64) float64 {
	dv := vgs - m.Vpk
	psi := dv * (m.P1 + dv*(m.P2+dv*m.P3))
	return m.Ipk * (1 + math.Tanh(psi)) * (1 + m.Lambda*vds) * math.Tanh(m.Alpha*vds)
}

// Params implements DCModel.
func (m *Angelov) Params() []float64 {
	return []float64{m.Ipk, m.Vpk, m.P1, m.P2, m.P3, m.Lambda, m.Alpha}
}

// SetParams implements DCModel.
func (m *Angelov) SetParams(p []float64) error {
	if err := checkLen(m.Name(), p, 7); err != nil {
		return err
	}
	m.Ipk, m.Vpk, m.P1, m.P2, m.P3, m.Lambda, m.Alpha = p[0], p[1], p[2], p[3], p[4], p[5], p[6]
	return nil
}

// ParamNames implements DCModel.
func (m *Angelov) ParamNames() []string {
	return []string{"Ipk", "Vpk", "P1", "P2", "P3", "Lambda", "Alpha"}
}

// Bounds implements DCModel.
func (m *Angelov) Bounds() (lo, hi []float64) {
	return []float64{0.005, -1, 0.2, -2, -2, 0, 0.5}, []float64{0.5, 1.5, 8, 2, 2, 0.5, 10}
}

// AllModels returns fresh instances of every DC model, for the
// model-comparison experiment.
func AllModels() []DCModel {
	return []DCModel{
		NewCurticeQuadratic(),
		NewCurticeCubic(),
		NewStatz(),
		NewTOM(),
		NewAngelov(),
	}
}
