// Package plot renders simple XY line/scatter plots as fixed-width ASCII
// art, so the reproduced paper *figures* (S-parameter sweeps, Pareto
// fronts, noise-figure curves) can be displayed by the command-line tools
// and embedded in EXPERIMENTS.md without any graphics dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one curve of a plot.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Xs and Ys are the sample coordinates (equal length).
	Xs, Ys []float64
	// Marker is the rune drawn for the series (assigned automatically if
	// zero).
	Marker rune
}

// Plot is an ASCII chart.
type Plot struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the canvas size in characters (defaults 64x20).
	Width, Height int
	// Series holds the curves.
	Series []Series
}

var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Add appends a series.
func (p *Plot) Add(name string, xs, ys []float64) {
	p.Series = append(p.Series, Series{Name: name, Xs: xs, Ys: ys})
}

// Render draws the chart.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.Xs {
			if i >= len(s.Ys) {
				break
			}
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return p.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y-range slightly so extremes stay visible.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.Xs {
			if i >= len(s.Ys) {
				break
			}
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	xl := fmt.Sprintf("%.4g", xmin)
	xr := fmt.Sprintf("%.4g", xmax)
	gap := w - len(xl) - len(xr)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), xl, strings.Repeat(" ", gap), xr)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", margin), marker, s.Name)
	}
	return b.String()
}
