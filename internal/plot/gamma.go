package plot

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// GammaSeries is one point set in the reflection-coefficient plane.
type GammaSeries struct {
	// Name labels the series.
	Name string
	// Points are reflection coefficients.
	Points []complex128
	// Marker is the rune used (auto-assigned when zero).
	Marker rune
}

// GammaPlane renders sets of reflection coefficients inside the unit circle
// as ASCII art (a Smith-chart-style view without the impedance grid).
type GammaPlane struct {
	// Title is printed above the chart.
	Title string
	// Size is the canvas height in characters (width is 2*Size for aspect
	// correction; default 21).
	Size int
	// Series holds the point sets.
	Series []GammaSeries
}

// Add appends a point set.
func (g *GammaPlane) Add(name string, pts []complex128) {
	g.Series = append(g.Series, GammaSeries{Name: name, Points: pts})
}

// AddCircle appends a circle sampled as a point set.
func (g *GammaPlane) AddCircle(name string, center complex128, radius float64) {
	n := 64
	pts := make([]complex128, 0, n)
	for k := 0; k < n; k++ {
		th := 2 * math.Pi * float64(k) / float64(n)
		pts = append(pts, center+cmplx.Rect(radius, th))
	}
	g.Add(name, pts)
}

// Render draws the chart.
func (g *GammaPlane) Render() string {
	size := g.Size
	if size <= 0 {
		size = 21
	}
	if size%2 == 0 {
		size++
	}
	w := 2 * size
	grid := make([][]rune, size)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	// Map gamma to canvas: re in [-1.1, 1.1] across width, im down rows.
	put := func(v complex128, marker rune) {
		re, im := real(v), imag(v)
		if math.Abs(re) > 1.15 || math.Abs(im) > 1.15 {
			return
		}
		col := int(math.Round((re + 1.1) / 2.2 * float64(w-1)))
		row := int(math.Round((1.1 - im) / 2.2 * float64(size-1)))
		if col >= 0 && col < w && row >= 0 && row < size {
			grid[row][col] = marker
		}
	}
	// Unit circle outline.
	for k := 0; k < 180; k++ {
		th := 2 * math.Pi * float64(k) / 180
		put(cmplx.Rect(1, th), '.')
	}
	// Axes through the origin.
	put(0, '+')
	for _, s := range []float64{-0.5, 0.5} {
		put(complex(s, 0), '.')
		put(complex(0, s), '.')
	}
	for si, s := range g.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for _, p := range s.Points {
			put(p, marker)
		}
	}
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s\n", g.Title)
	}
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	for si, s := range g.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	return b.String()
}
