package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := Plot{Title: "demo", XLabel: "f", YLabel: "dB", Width: 40, Height: 10}
	p.Add("gain", []float64{1, 2, 3, 4}, []float64{10, 12, 11, 9})
	out := p.Render()
	for _, want := range []string{"demo", "*", "gain", "x: f", "y: dB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestRenderMultiSeriesMarkers(t *testing.T) {
	p := Plot{Width: 30, Height: 8}
	p.Add("a", []float64{0, 1}, []float64{0, 1})
	p.Add("b", []float64{0, 1}, []float64{1, 0})
	out := p.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("distinct markers missing:\n%s", out)
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	p := Plot{Title: "empty"}
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot should say so:\n%s", out)
	}
	// Constant series must not divide by zero.
	p2 := Plot{Width: 20, Height: 5}
	p2.Add("flat", []float64{1, 2, 3}, []float64{5, 5, 5})
	if out := p2.Render(); !strings.Contains(out, "*") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add("s", []float64{0, 1, 2}, []float64{1, math.Inf(1), math.NaN()})
	out := p.Render()
	if out == "" {
		t.Fatal("no output")
	}
	// Only the finite point is drawn; just assert it does not crash and the
	// marker appears once.
	if c := strings.Count(out, "*"); c != 2 { // one on canvas + one in legend
		t.Errorf("marker count = %d, want 2:\n%s", c, out)
	}
}

func TestCornerPlacement(t *testing.T) {
	// Extremes must land on the canvas, not be clipped away.
	p := Plot{Width: 21, Height: 7}
	p.Add("d", []float64{0, 10}, []float64{0, 10})
	out := p.Render()
	rows := strings.Split(out, "\n")
	var first, last string
	for _, r := range rows {
		if strings.Contains(r, "|") {
			if first == "" {
				first = r
			}
			last = r
		}
	}
	// With 5% y padding the extremes sit just inside the first/last rows.
	if !strings.Contains(first, "*") && !strings.Contains(rows[1], "*") {
		t.Errorf("max point missing near top:\n%s", out)
	}
	if !strings.Contains(last, "*") && !strings.Contains(rows[len(rows)-6], "*") {
		t.Errorf("min point missing near bottom:\n%s", out)
	}
}
