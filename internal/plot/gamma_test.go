package plot

import (
	"strings"
	"testing"
)

func TestGammaPlaneRender(t *testing.T) {
	g := GammaPlane{Title: "circles"}
	g.AddCircle("noise 0.1dB", 0.3+0.2i, 0.15)
	g.Add("gamma opt", []complex128{0.3 + 0.2i})
	out := g.Render()
	for _, want := range []string{"circles", "noise 0.1dB", "gamma opt", "*", "o", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGammaPlaneClipsOutside(t *testing.T) {
	g := GammaPlane{Size: 11}
	g.Add("far", []complex128{5 + 5i})
	out := g.Render()
	// The far point is clipped: only axis/outline dots and legend.
	if strings.Count(out, "*") != 1 { // legend only
		t.Errorf("out-of-plane point drawn:\n%s", out)
	}
}

func TestGammaPlaneEvenSizeAdjusted(t *testing.T) {
	g := GammaPlane{Size: 10}
	g.Add("p", []complex128{0})
	if out := g.Render(); out == "" {
		t.Fatal("no output")
	}
}
