package twoport

import (
	"math"
	"math/cmplx"
)

// GammaFromZ returns the reflection coefficient of impedance z against the
// reference z0.
func GammaFromZ(z complex128, z0 float64) complex128 {
	zc := complex(z0, 0)
	return (z - zc) / (z + zc)
}

// ZFromGamma returns the impedance corresponding to reflection coefficient
// gamma against the reference z0.
func ZFromGamma(gamma complex128, z0 float64) complex128 {
	zc := complex(z0, 0)
	return zc * (1 + gamma) / (1 - gamma)
}

// GammaIn returns the input reflection coefficient of a two-port with
// S-parameters s terminated at the output by load reflection gammaL.
func GammaIn(s Mat2, gammaL complex128) complex128 {
	return s[0][0] + s[0][1]*s[1][0]*gammaL/(1-s[1][1]*gammaL)
}

// GammaOut returns the output reflection coefficient of a two-port with
// S-parameters s driven at the input by source reflection gammaS.
func GammaOut(s Mat2, gammaS complex128) complex128 {
	return s[1][1] + s[0][1]*s[1][0]*gammaS/(1-s[0][0]*gammaS)
}

// TransducerGain returns the transducer power gain GT of a two-port with
// S-parameters s between a source with reflection gammaS and a load with
// reflection gammaL (linear power ratio).
func TransducerGain(s Mat2, gammaS, gammaL complex128) float64 {
	gin := GammaIn(s, gammaL)
	num := (1 - abs2(gammaS)) * abs2(s[1][0]) * (1 - abs2(gammaL))
	den := abs2(1-gin*gammaS) * abs2(1-s[1][1]*gammaL)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// AvailableGain returns the available power gain GA for source reflection
// gammaS (load conjugately matched to the output).
func AvailableGain(s Mat2, gammaS complex128) float64 {
	gout := GammaOut(s, gammaS)
	num := abs2(s[1][0]) * (1 - abs2(gammaS))
	den := abs2(1-s[0][0]*gammaS) * (1 - abs2(gout))
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// OperatingGain returns the operating (power) gain GP for load reflection
// gammaL (independent of the source).
func OperatingGain(s Mat2, gammaL complex128) float64 {
	gin := GammaIn(s, gammaL)
	num := abs2(s[1][0]) * (1 - abs2(gammaL))
	den := (1 - abs2(gin)) * abs2(1-s[1][1]*gammaL)
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// MSG returns the maximum stable gain |S21|/|S12| (linear power ratio). It is
// the gain limit for a potentially unstable device resistively stabilized to
// K = 1. Returns +Inf for a unilateral device (S12 == 0).
func MSG(s Mat2) float64 {
	if s[0][1] == 0 {
		return math.Inf(1)
	}
	return cmplx.Abs(s[1][0]) / cmplx.Abs(s[0][1])
}

// MAG returns the maximum available gain for an unconditionally stable
// device (K >= 1): MAG = |S21|/|S12| * (K - sqrt(K^2-1)). For K < 1 it
// returns MSG, the conventional fallback.
func MAG(s Mat2) float64 {
	k := RolletK(s)
	msg := MSG(s)
	if k < 1 || math.IsInf(msg, 1) {
		return msg
	}
	return msg * (k - math.Sqrt(k*k-1))
}

// MasonU returns Mason's unilateral gain U (linear power ratio), a
// figure-of-merit invariant under lossless reciprocal embedding.
func MasonU(s Mat2, z0 float64) (float64, error) {
	y, err := SToY(s, z0)
	if err != nil {
		return 0, err
	}
	num := abs2(y[1][0] - y[0][1])
	den := 4 * (real(y[0][0])*real(y[1][1]) - real(y[0][1])*real(y[1][0]))
	if den <= 0 {
		return math.Inf(1), nil
	}
	return num / den, nil
}

// SimultaneousMatch returns the simultaneous conjugate match reflection
// coefficients (gammaS, gammaL) for an unconditionally stable two-port.
// It returns ErrUnstable if K < 1 where no simultaneous match exists.
func SimultaneousMatch(s Mat2) (gammaS, gammaL complex128, err error) {
	if RolletK(s) < 1 {
		return 0, 0, ErrUnstable
	}
	d := s.Det()
	b1 := 1 + abs2(s[0][0]) - abs2(s[1][1]) - abs2(d)
	b2 := 1 + abs2(s[1][1]) - abs2(s[0][0]) - abs2(d)
	c1 := s[0][0] - d*cmplx.Conj(s[1][1])
	c2 := s[1][1] - d*cmplx.Conj(s[0][0])
	gammaS = matchRoot(b1, c1)
	gammaL = matchRoot(b2, c2)
	return gammaS, gammaL, nil
}

// matchRoot picks the |gamma| <= 1 root of the simultaneous-match quadratic.
func matchRoot(b float64, c complex128) complex128 {
	ac := cmplx.Abs(c)
	if ac == 0 {
		return 0
	}
	disc := b*b - 4*ac*ac
	if disc < 0 {
		disc = 0
	}
	mag := (b - math.Sqrt(disc)) / (2 * ac)
	if b < 0 {
		mag = (b + math.Sqrt(disc)) / (2 * ac)
	}
	return complex(mag, 0) * cmplx.Conj(c) / complex(ac, 0)
}

// VSWR returns the voltage standing-wave ratio for reflection magnitude
// |gamma|.
func VSWR(gamma complex128) float64 {
	g := cmplx.Abs(gamma)
	if g >= 1 {
		return math.Inf(1)
	}
	return (1 + g) / (1 - g)
}

// MismatchLoss returns the linear power loss factor 1-|gamma|^2 of a
// reflective interface.
func MismatchLoss(gamma complex128) float64 {
	return 1 - abs2(gamma)
}

func abs2(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}
