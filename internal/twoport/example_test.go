package twoport_test

import (
	"fmt"
	"math"

	"gnsslna/internal/twoport"
)

// ExampleCascadeS composes a 3 dB matched attenuator with itself: the
// cascade loses 6 dB and stays matched.
func ExampleCascadeS() {
	a := math.Pow(10, 3.0/20)
	r1 := 50 * (a - 1) / (a + 1)
	r2 := 50 * 2 * a / (a*a - 1)
	abcd := twoport.SeriesZ(complex(r1, 0)).
		Mul(twoport.ShuntY(complex(1/r2, 0))).
		Mul(twoport.SeriesZ(complex(r1, 0)))
	s, _ := twoport.ABCDToS(abcd, 50)
	casc, _ := twoport.CascadeS(50, s, s)
	fmt.Printf("|S21| = %.4f (6 dB)\n", real(casc[1][0]))
	fmt.Printf("|S11| = %.4f\n", real(casc[0][0]))
	// Output:
	// |S21| = 0.5012 (6 dB)
	// |S11| = 0.0000
}

// ExampleRolletK checks the stability of a transistor-like S-matrix.
func ExampleRolletK() {
	s := twoport.Mat2{
		{complex(0.3, 0.2), complex(0.05, 0.01)},
		{complex(2.0, 1.0), complex(0.4, -0.3)},
	}
	fmt.Printf("K = %.3f, unconditional = %v\n",
		twoport.RolletK(s), twoport.Unconditional(s))
	// Output:
	// K = 2.782, unconditional = true
}

// ExampleGammaFromZ converts an impedance to a reflection coefficient and
// back.
func ExampleGammaFromZ() {
	g := twoport.GammaFromZ(complex(100, 0), 50)
	z := twoport.ZFromGamma(g, 50)
	fmt.Printf("gamma = %.3f, back to Z = %.0f\n", real(g), real(z))
	// Output:
	// gamma = 0.333, back to Z = 100
}
