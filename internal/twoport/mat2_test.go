package twoport

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestMat2TransposeAndConjTranspose(t *testing.T) {
	m := Mat2{{1 + 2i, 3 - 1i}, {-2i, 4}}
	tr := m.Transpose()
	if tr[0][1] != m[1][0] || tr[1][0] != m[0][1] {
		t.Error("Transpose misplaced entries")
	}
	h := m.ConjTranspose()
	if h[0][1] != cmplx.Conj(m[1][0]) || h[1][0] != cmplx.Conj(m[0][1]) {
		t.Error("ConjTranspose misplaced entries")
	}
	if h[0][0] != cmplx.Conj(m[0][0]) {
		t.Error("ConjTranspose diagonal not conjugated")
	}
}

func TestMat2CongruenceHermitian(t *testing.T) {
	// A congruence transform of a Hermitian matrix stays Hermitian.
	c := Mat2{{2, 1 + 1i}, {1 - 1i, 3}}
	x := Mat2{{0.5 + 0.2i, -1}, {2i, 1 - 0.7i}}
	out := c.Congruence(x)
	if cmplx.Abs(out[0][1]-cmplx.Conj(out[1][0])) > 1e-12 {
		t.Error("congruence broke hermiticity")
	}
	if imag(out[0][0]) > 1e-12 || imag(out[1][1]) > 1e-12 {
		t.Error("congruence produced complex diagonal")
	}
}

func TestMat2InvErrors(t *testing.T) {
	if _, err := (Mat2{{1, 2}, {2, 4}}).Inv(); err == nil {
		t.Error("singular matrix inverted")
	}
	m := Mat2{{3, 1i}, {-1i, 2}}
	inv, err := m.Inv()
	if err != nil {
		t.Fatalf("Inv: %v", err)
	}
	if d := MaxAbsDiff(m.Mul(inv), Identity2()); d > 1e-12 {
		t.Errorf("M*M^-1 off by %g", d)
	}
}

func TestDirectConversionsRoundTrip(t *testing.T) {
	// Exercise the Y<->Z<->ABCD<->Y cycle directly (they are covered
	// indirectly by the S-based tests, but the direct forms carry their
	// own singular-case handling).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		y := Mat2{
			{complex(0.02+0.02*rng.Float64(), 0.01*rng.NormFloat64()),
				complex(-0.01*rng.Float64()-0.001, 0.01*rng.NormFloat64())},
			{complex(0.05*rng.NormFloat64()+0.08, 0.01*rng.NormFloat64()),
				complex(0.02+0.02*rng.Float64(), 0.01*rng.NormFloat64())},
		}
		z, err := YToZ(y)
		if err != nil {
			continue
		}
		yBack, err := ZToY(z)
		if err != nil {
			t.Fatalf("ZToY: %v", err)
		}
		if d := MaxAbsDiff(y, yBack); d > 1e-9 {
			t.Fatalf("Y->Z->Y diff %g", d)
		}
		a, err := YToABCD(y)
		if err != nil {
			continue
		}
		y2, err := ABCDToY(a)
		if err != nil {
			t.Fatalf("ABCDToY: %v", err)
		}
		if d := MaxAbsDiff(y, y2); d > 1e-9 {
			t.Fatalf("Y->A->Y diff %g", d)
		}
		a2, err := ZToABCD(z)
		if err != nil {
			t.Fatalf("ZToABCD: %v", err)
		}
		if d := MaxAbsDiff(a, a2); d > 1e-6*(1+cmplx.Abs(a[0][1])) {
			t.Fatalf("A via Y vs via Z diff %g", d)
		}
		z2, err := ABCDToZ(a)
		if err != nil {
			t.Fatalf("ABCDToZ: %v", err)
		}
		if d := MaxAbsDiff(z, z2); d > 1e-6*(1+cmplx.Abs(z[0][0])) {
			t.Fatalf("A->Z diff %g", d)
		}
	}
}

func TestConversionSingularCases(t *testing.T) {
	// A network with Y21 = 0 has no chain form.
	if _, err := YToABCD(Mat2{{0.1, 0}, {0, 0.1}}); err == nil {
		t.Error("YToABCD with Y21=0 accepted")
	}
	if _, err := ABCDToZ(Mat2{{1, 50}, {0, 1}}); err == nil {
		t.Error("ABCDToZ of a series element (C=0) accepted")
	}
	if _, err := ABCDToY(Mat2{{1, 0}, {0.02, 1}}); err == nil {
		t.Error("ABCDToY of a shunt element (B=0) accepted")
	}
	if _, err := SToT(Mat2{{0.5, 0.1}, {0, 0.5}}); err == nil {
		t.Error("SToT with S21=0 accepted")
	}
	if _, err := TToS(Mat2{{0, 1}, {1, 0}}); err == nil {
		t.Error("TToS with T11=0 accepted")
	}
	if _, err := CascadeS(50); err == nil {
		t.Error("empty cascade accepted")
	}
	if _, err := ZToH(Mat2{{1, 1}, {1, 0}}); err == nil {
		t.Error("ZToH with Z22=0 accepted")
	}
	if _, err := HToZ(Mat2{{1, 1}, {1, 0}}); err == nil {
		t.Error("HToZ with H22=0 accepted")
	}
}

func TestIdealTransformer(t *testing.T) {
	// A 2:1 transformer transforms 50 ohm to 200 ohm (impedance scales by
	// n^2) and is lossless.
	a := IdealTransformer(2)
	// Zin = (A*ZL + B)/(C*ZL + D).
	zl := complex(50, 0)
	zin := (a[0][0]*zl + a[0][1]) / (a[1][0]*zl + a[1][1])
	if cmplx.Abs(zin-200) > 1e-12 {
		t.Errorf("transformed impedance %v, want 200", zin)
	}
	// Cascading n:1 with 1:n gives identity.
	back := a.Mul(IdealTransformer(0.5))
	if d := MaxAbsDiff(back, Identity2()); d > 1e-12 {
		t.Errorf("transformer cascade off identity by %g", d)
	}
}

func TestDeltaAndScale(t *testing.T) {
	s := Mat2{{0.5, 0.1}, {2, 0.3}}
	if Delta(s) != s.Det() {
		t.Error("Delta must equal the determinant")
	}
	sc := s.Scale(2)
	if sc[1][0] != 4 {
		t.Error("Scale wrong")
	}
}
