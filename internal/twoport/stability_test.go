package twoport

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestStabilityOfPassiveNetworkIsUnconditional(t *testing.T) {
	// Any passive attenuator is unconditionally stable with K >= 1.
	for _, db := range []float64{1, 3, 10} {
		s := attenuatorS(db)
		if !Unconditional(s) {
			t.Errorf("%g dB attenuator reported unstable (K=%g, |D|=%g)",
				db, RolletK(s), cmplx.Abs(Delta(s)))
		}
		if MuSource(s) <= 1 || MuLoad(s) <= 1 {
			t.Errorf("%g dB attenuator mu = %g / %g, want > 1",
				db, MuSource(s), MuLoad(s))
		}
	}
}

func TestMuAndKAgree(t *testing.T) {
	// mu > 1 iff (K > 1 and |Delta| < 1): check agreement on random samples.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		s := randomS(rng)
		kd := RolletK(s) > 1 && cmplx.Abs(s.Det()) < 1
		mu := MuSource(s) > 1
		if kd != mu {
			// The equivalence requires |S11|,|S22| < 1; skip pathological
			// actively-reflecting samples.
			if cmplx.Abs(s[0][0]) >= 1 || cmplx.Abs(s[1][1]) >= 1 {
				continue
			}
			t.Fatalf("trial %d: K-Delta says %v, mu says %v (K=%g mu=%g)",
				trial, kd, mu, RolletK(s), MuSource(s))
		}
	}
}

func TestStabilityCirclesSeparateRegions(t *testing.T) {
	// Terminations on a stability circle must yield |GammaOut| = 1 (source
	// circle) or |GammaIn| = 1 (load circle).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		s := randomS(rng)
		sc := SourceStabilityCircle(s)
		if math.IsInf(sc.Radius, 1) {
			continue
		}
		for k := 0; k < 8; k++ {
			th := float64(k) / 8 * 2 * math.Pi
			gs := sc.Center + cmplx.Rect(sc.Radius, th)
			if cmplx.Abs(1-s[0][0]*gs) < 1e-6 {
				continue // pole of GammaOut
			}
			gout := GammaOut(s, gs)
			if math.Abs(cmplx.Abs(gout)-1) > 1e-6 {
				t.Fatalf("trial %d: |GammaOut| on source circle = %g, want 1",
					trial, cmplx.Abs(gout))
			}
		}
		lc := LoadStabilityCircle(s)
		if math.IsInf(lc.Radius, 1) {
			continue
		}
		for k := 0; k < 8; k++ {
			th := float64(k)/8*2*math.Pi + 0.1
			gl := lc.Center + cmplx.Rect(lc.Radius, th)
			if cmplx.Abs(1-s[1][1]*gl) < 1e-6 {
				continue
			}
			gin := GammaIn(s, gl)
			if math.Abs(cmplx.Abs(gin)-1) > 1e-6 {
				t.Fatalf("trial %d: |GammaIn| on load circle = %g, want 1",
					trial, cmplx.Abs(gin))
			}
		}
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Center: 1 + 1i, Radius: 0.5}
	if !c.Contains(1 + 1i) {
		t.Error("center must be inside")
	}
	if !c.Contains(1.5 + 1i) {
		t.Error("boundary must count as inside")
	}
	if c.Contains(2 + 2i) {
		t.Error("distant point must be outside")
	}
}

func TestKOfLosslessLineIsUnity(t *testing.T) {
	// A lossless matched line has K exactly 1 (marginally stable, as any
	// lossless reciprocal network).
	line, err := ABCDToS(LineABCD(50, complex(0, 1.9), 0.4), 50)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	if k := RolletK(line); math.Abs(k-1) > 1e-9 {
		t.Errorf("K of lossless line = %g, want 1", k)
	}
}
