package twoport

import (
	"math/cmplx"
	"testing"
)

func TestNewNetworkValidation(t *testing.T) {
	s := []Mat2{{}, {}}
	if _, err := NewNetwork(50, []float64{1e9, 2e9}, s); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	if _, err := NewNetwork(50, []float64{2e9, 1e9}, s); err == nil {
		t.Error("decreasing frequencies accepted")
	}
	if _, err := NewNetwork(50, []float64{1e9}, s); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewNetwork(-1, []float64{1e9, 2e9}, s); err == nil {
		t.Error("negative Z0 accepted")
	}
	if _, err := NewNetwork(50, nil, nil); err == nil {
		t.Error("empty network accepted")
	}
}

func TestNetworkAtInterpolates(t *testing.T) {
	s := []Mat2{
		{{0, 0}, {complex(1, 0), 0}},
		{{0, 0}, {complex(3, 2), 0}},
	}
	n, err := NewNetwork(50, []float64{1e9, 2e9}, s)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	got := n.At(1.5e9)
	want := complex(2, 1)
	if cmplx.Abs(got[1][0]-want) > 1e-12 {
		t.Errorf("interpolated S21 = %v, want %v", got[1][0], want)
	}
	// Exact at knots.
	if g := n.At(1e9); g[1][0] != s[0][1][0] {
		t.Errorf("knot value = %v, want %v", g[1][0], s[0][1][0])
	}
}

// TestNetworkAtBoundaries pins the documented edge behavior of At: linear
// extrapolation of the boundary segments outside the grid, exactness at both
// end knots, constant single-sample networks, a NaN-free result on a
// degenerate duplicate-frequency grid, and an explicit panic (not an index
// error) on an empty network.
func TestNetworkAtBoundaries(t *testing.T) {
	s := []Mat2{
		{{0, 0}, {complex(1, 0), 0}},
		{{0, 0}, {complex(3, 2), 0}},
	}
	n, err := NewNetwork(50, []float64{1e9, 2e9}, s)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	// Below the grid: the first segment's slope extends leftward.
	if got, want := n.At(0.5e9)[1][0], complex(0, -1); cmplx.Abs(got-want) > 1e-12 {
		t.Errorf("extrapolated S21 below grid = %v, want %v", got, want)
	}
	// Above the grid: the last segment's slope extends rightward.
	if got, want := n.At(2.5e9)[1][0], complex(4, 3); cmplx.Abs(got-want) > 1e-12 {
		t.Errorf("extrapolated S21 above grid = %v, want %v", got, want)
	}
	// Exact at both end knots (SearchFloat64s lands on the knot index).
	if got := n.At(1e9)[1][0]; got != s[0][1][0] {
		t.Errorf("low knot = %v, want %v", got, s[0][1][0])
	}
	if got := n.At(2e9)[1][0]; got != s[1][1][0] {
		t.Errorf("high knot = %v, want %v", got, s[1][1][0])
	}

	// Single-sample network is constant everywhere, including far outside.
	one, err := NewNetwork(50, []float64{1.5e9}, s[:1])
	if err != nil {
		t.Fatalf("NewNetwork single: %v", err)
	}
	for _, f := range []float64{0, 1e6, 1.5e9, 40e9} {
		if got := one.At(f); got != s[0] {
			t.Errorf("single-sample At(%g) = %v, want %v", f, got, s[0])
		}
	}

	// A duplicate-frequency grid (only constructible by bypassing
	// NewNetwork) must not divide by the zero segment slope.
	dup := &Network{Z0: 50, Freqs: []float64{1e9, 1e9}, S: s}
	got := dup.At(1e9)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if cmplx.IsNaN(got[r][c]) {
				t.Fatalf("duplicate-frequency grid produced NaN at [%d][%d]", r, c)
			}
		}
	}
	if got != s[0] {
		t.Errorf("duplicate-frequency At = %v, want left sample %v", got, s[0])
	}

	// Empty network: explicit panic with a diagnosable message.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("At on empty network did not panic")
		}
		if msg, ok := r.(string); !ok || msg != "twoport: Network.At on empty network" {
			t.Errorf("empty-network panic = %v, want explicit message", r)
		}
	}()
	(&Network{Z0: 50}).At(1e9)
}

func TestNetworkCascadeIdentity(t *testing.T) {
	// Cascading with a through (S21 = S12 = 1) leaves the network unchanged.
	thru := Mat2{{0, 1}, {1, 0}}
	freqs := []float64{1e9, 1.5e9, 2e9}
	dev := make([]Mat2, len(freqs))
	th := make([]Mat2, len(freqs))
	for i := range freqs {
		dev[i] = atf54143ish
		th[i] = thru
	}
	n1, err := NewNetwork(50, freqs, dev)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	n2, err := NewNetwork(50, freqs, th)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	casc, err := n1.Cascade(n2)
	if err != nil {
		t.Fatalf("Cascade: %v", err)
	}
	for i := range freqs {
		if d := MaxAbsDiff(casc.S[i], dev[i]); d > 1e-10 {
			t.Errorf("cascade with through changed S at %g Hz by %g", freqs[i], d)
		}
	}
}

func TestNetworkCascadeZ0Mismatch(t *testing.T) {
	s := []Mat2{{{0, 1}, {1, 0}}}
	a, _ := NewNetwork(50, []float64{1e9}, s)
	b, _ := NewNetwork(75, []float64{1e9}, s)
	if _, err := a.Cascade(b); err == nil {
		t.Error("Z0 mismatch accepted")
	}
}
