package twoport

import (
	"math/cmplx"
	"testing"
)

func TestNewNetworkValidation(t *testing.T) {
	s := []Mat2{{}, {}}
	if _, err := NewNetwork(50, []float64{1e9, 2e9}, s); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	if _, err := NewNetwork(50, []float64{2e9, 1e9}, s); err == nil {
		t.Error("decreasing frequencies accepted")
	}
	if _, err := NewNetwork(50, []float64{1e9}, s); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewNetwork(-1, []float64{1e9, 2e9}, s); err == nil {
		t.Error("negative Z0 accepted")
	}
	if _, err := NewNetwork(50, nil, nil); err == nil {
		t.Error("empty network accepted")
	}
}

func TestNetworkAtInterpolates(t *testing.T) {
	s := []Mat2{
		{{0, 0}, {complex(1, 0), 0}},
		{{0, 0}, {complex(3, 2), 0}},
	}
	n, err := NewNetwork(50, []float64{1e9, 2e9}, s)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	got := n.At(1.5e9)
	want := complex(2, 1)
	if cmplx.Abs(got[1][0]-want) > 1e-12 {
		t.Errorf("interpolated S21 = %v, want %v", got[1][0], want)
	}
	// Exact at knots.
	if g := n.At(1e9); g[1][0] != s[0][1][0] {
		t.Errorf("knot value = %v, want %v", g[1][0], s[0][1][0])
	}
}

func TestNetworkCascadeIdentity(t *testing.T) {
	// Cascading with a through (S21 = S12 = 1) leaves the network unchanged.
	thru := Mat2{{0, 1}, {1, 0}}
	freqs := []float64{1e9, 1.5e9, 2e9}
	dev := make([]Mat2, len(freqs))
	th := make([]Mat2, len(freqs))
	for i := range freqs {
		dev[i] = atf54143ish
		th[i] = thru
	}
	n1, err := NewNetwork(50, freqs, dev)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	n2, err := NewNetwork(50, freqs, th)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	casc, err := n1.Cascade(n2)
	if err != nil {
		t.Fatalf("Cascade: %v", err)
	}
	for i := range freqs {
		if d := MaxAbsDiff(casc.S[i], dev[i]); d > 1e-10 {
			t.Errorf("cascade with through changed S at %g Hz by %g", freqs[i], d)
		}
	}
}

func TestNetworkCascadeZ0Mismatch(t *testing.T) {
	s := []Mat2{{{0, 1}, {1, 0}}}
	a, _ := NewNetwork(50, []float64{1e9}, s)
	b, _ := NewNetwork(75, []float64{1e9}, s)
	if _, err := a.Cascade(b); err == nil {
		t.Error("Z0 mismatch accepted")
	}
}
