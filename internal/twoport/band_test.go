package twoport

import (
	"math/rand"
	"testing"
)

func randMat2(rng *rand.Rand) Mat2 {
	c := func() complex128 { return complex(rng.NormFloat64(), rng.NormFloat64()) }
	return Mat2{{c(), c()}, {c(), c()}}
}

// TestMulSeriesShuntExact pins the elementary-product specializations to the
// generic Mul under floating-point equality: the dropped terms are products
// with exact ones and zeros, so for finite operands nothing representable
// may differ.
func TestMulSeriesShuntExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		a := randMat2(rng)
		v := complex(rng.NormFloat64(), rng.NormFloat64())
		if got, want := MulSeriesZ(a, v), a.Mul(SeriesZ(v)); got != want {
			t.Fatalf("MulSeriesZ diverges from generic Mul:\n got %v\nwant %v", got, want)
		}
		if got, want := MulShuntY(a, v), a.Mul(ShuntY(v)); got != want {
			t.Fatalf("MulShuntY diverges from generic Mul:\n got %v\nwant %v", got, want)
		}
	}
}

// TestBandOpsPointwise pins every slab operation to its per-point routine.
func TestBandOpsPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 16
	a := make([]Mat2, n)
	b := make([]Mat2, n)
	for i := range a {
		a[i] = randMat2(rng)
		// Keep the matrices invertible-ish/passive-ish so the S conversions
		// stay well-posed: scale toward small reflection.
		b[i] = randMat2(rng)
	}
	dst := make([]Mat2, n)
	MulBand(dst, a, b)
	for i := range dst {
		if dst[i] != a[i].Mul(b[i]) {
			t.Fatalf("MulBand[%d] diverges from Mul", i)
		}
	}
	if err := CascadeSBand(50, dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		want, err := CascadeS(50, a[i], b[i])
		if err != nil {
			t.Fatal(err)
		}
		if dst[i] != want {
			t.Fatalf("CascadeSBand[%d] diverges from CascadeS", i)
		}
	}
	if err := ABCDToSBand(dst, a, 50); err != nil {
		t.Fatal(err)
	}
	gt := make([]float64, n)
	kf := make([]float64, n)
	mu := make([]float64, n)
	TransducerGainBand(gt, dst)
	RolletKBand(kf, dst)
	MuSourceBand(mu, dst)
	for i := range dst {
		want, err := ABCDToS(a[i], 50)
		if err != nil {
			t.Fatal(err)
		}
		if dst[i] != want {
			t.Fatalf("ABCDToSBand[%d] diverges from ABCDToS", i)
		}
		if gt[i] != TransducerGain(dst[i], 0, 0) || kf[i] != RolletK(dst[i]) || mu[i] != MuSource(dst[i]) {
			t.Fatalf("band metric [%d] diverges from per-point", i)
		}
	}
}

// TestSameGrid exercises the grid-identity predicate the cascade fast path
// keys on.
func TestSameGrid(t *testing.T) {
	mk := func(freqs []float64) *Network {
		mats := make([]Mat2, len(freqs))
		n, err := NewNetwork(50, freqs, mats)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk([]float64{1e9, 2e9, 3e9})
	if !SameGrid(a, mk([]float64{1e9, 2e9, 3e9})) {
		t.Error("identical grids must compare equal")
	}
	if SameGrid(a, mk([]float64{1e9, 2e9})) {
		t.Error("shorter grid must not compare equal")
	}
	if SameGrid(a, mk([]float64{1e9, 2.5e9, 3e9})) {
		t.Error("shifted grid must not compare equal")
	}
}

// TestCascadeSameGridFastPath is the regression test for the Network.Cascade
// fast path: on identical grids the cascade must skip At interpolation and
// reproduce the direct per-point CascadeS bit-for-bit; on differing grids
// the historic interpolating behavior must be untouched.
func TestCascadeSameGridFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	freqs := []float64{1.0e9, 1.2e9, 1.4e9, 1.6e9, 1.8e9}
	mk := func(fs []float64) *Network {
		mats := make([]Mat2, len(fs))
		for i := range mats {
			// Small reflections keep the cascades well-conditioned.
			m := randMat2(rng)
			for r := 0; r < 2; r++ {
				for c := 0; c < 2; c++ {
					m[r][c] *= 0.3
				}
			}
			mats[i] = m
		}
		n, err := NewNetwork(50, fs, mats)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := mk(freqs), mk(freqs)
	got, err := a.Cascade(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		want, err := CascadeS(50, a.S[i], b.S[i])
		if err != nil {
			t.Fatal(err)
		}
		if got.S[i] != want {
			t.Fatalf("same-grid cascade [%d] diverges from direct CascadeS", i)
		}
	}

	// Differing grids: the interpolating path, compared against its own
	// definition (At on the second network).
	c := mk([]float64{0.9e9, 1.3e9, 1.9e9})
	got, err = a.Cascade(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		want, err := CascadeS(50, a.S[i], c.At(f))
		if err != nil {
			t.Fatal(err)
		}
		if got.S[i] != want {
			t.Fatalf("mixed-grid cascade [%d] diverges from interpolating reference", i)
		}
	}
}
