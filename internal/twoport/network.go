package twoport

import (
	"fmt"
	"sort"
)

// Network is a frequency-sampled two-port described by S-parameters at each
// frequency, the interchange format between the synthetic VNA, the
// extraction code and the Touchstone reader/writer.
type Network struct {
	// Z0 is the reference impedance of the S-parameters.
	Z0 float64
	// Freqs holds the sample frequencies in Hz, strictly increasing.
	Freqs []float64
	// S holds one scattering matrix per entry of Freqs.
	S []Mat2
}

// NewNetwork validates and constructs a Network. Frequencies must be
// strictly increasing and match the number of S matrices.
func NewNetwork(z0 float64, freqs []float64, s []Mat2) (*Network, error) {
	if len(freqs) == 0 || len(freqs) != len(s) {
		return nil, fmt.Errorf("twoport: network needs equal, non-empty freqs and S (got %d/%d)", len(freqs), len(s))
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i] <= freqs[i-1] {
			return nil, fmt.Errorf("twoport: network frequencies must be strictly increasing (index %d)", i)
		}
	}
	if z0 <= 0 {
		return nil, fmt.Errorf("twoport: network Z0 must be positive, got %g", z0)
	}
	return &Network{
		Z0:    z0,
		Freqs: append([]float64(nil), freqs...),
		S:     append([]Mat2(nil), s...),
	}, nil
}

// Len returns the number of frequency points.
func (n *Network) Len() int { return len(n.Freqs) }

// At returns the S-matrix at frequency f, linearly interpolating between
// samples (and extrapolating the boundary segments outside the range): for
// f below Freqs[0] the first segment's slope extends leftward, above
// Freqs[k-1] the last segment's slope extends rightward. A single-sample
// network is constant over all frequencies. At panics on an empty network
// (NewNetwork never constructs one).
func (n *Network) At(f float64) Mat2 {
	k := len(n.Freqs)
	if k == 0 {
		panic("twoport: Network.At on empty network")
	}
	if k == 1 {
		return n.S[0]
	}
	i := sort.SearchFloat64s(n.Freqs, f)
	switch {
	case i <= 0:
		i = 1
	case i >= k:
		i = k - 1
	}
	f0, f1 := n.Freqs[i-1], n.Freqs[i]
	if f1 == f0 {
		// Degenerate segment (a grid that bypassed NewNetwork's strict
		// monotonicity check): return the left sample instead of dividing by
		// the zero slope and poisoning the result with NaNs.
		return n.S[i-1]
	}
	t := complex((f-f0)/(f1-f0), 0)
	var out Mat2
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			out[r][c] = n.S[i-1][r][c] + t*(n.S[i][r][c]-n.S[i-1][r][c])
		}
	}
	return out
}

// Cascade returns the cascade of n followed by m, evaluated on n's frequency
// grid (m is interpolated). Both must share the same Z0.
//
// When both networks sample exactly the same grid — the dominant case, e.g.
// cascading stage networks produced by the same sweep — the per-point
// binary-search interpolation is skipped and m's samples are used directly.
// This is also slightly more exact than the general path: At's interpolation
// at a grid point computes S[i-1] + 1*(S[i]-S[i-1]), which need not be
// bitwise equal to S[i].
func (n *Network) Cascade(m *Network) (*Network, error) {
	if n.Z0 != m.Z0 {
		return nil, fmt.Errorf("twoport: cascade Z0 mismatch (%g vs %g)", n.Z0, m.Z0)
	}
	out := make([]Mat2, n.Len())
	if SameGrid(n, m) {
		if err := CascadeSBand(n.Z0, out, n.S, m.S); err != nil {
			return nil, fmt.Errorf("twoport: cascade: %w", err)
		}
		return NewNetwork(n.Z0, n.Freqs, out)
	}
	for i, f := range n.Freqs {
		s, err := CascadeS(n.Z0, n.S[i], m.At(f))
		if err != nil {
			return nil, fmt.Errorf("twoport: cascade at %g Hz: %w", f, err)
		}
		out[i] = s
	}
	return NewNetwork(n.Z0, n.Freqs, out)
}
