package twoport

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// atf54143ish is a plausible LNA-transistor S-matrix at ~1.5 GHz, used as a
// shared fixture (values are representative, not vendor data).
var atf54143ish = Mat2{
	{cmplx.Rect(0.75, 2.4), cmplx.Rect(0.06, 1.1)},
	{cmplx.Rect(4.9, 1.3), cmplx.Rect(0.35, -0.8)},
}

func TestTransducerGainMatchedIsS21Squared(t *testing.T) {
	// With gammaS = gammaL = 0, GT = |S21|^2 exactly.
	got := TransducerGain(atf54143ish, 0, 0)
	want := abs2(atf54143ish[1][0])
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("GT(0,0) = %g, want |S21|^2 = %g", got, want)
	}
}

func TestGainHierarchy(t *testing.T) {
	// For any terminations: GT <= GA(gammaS) and GT <= GP(gammaL).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		s := randomS(rng)
		gs := cmplx.Rect(rng.Float64()*0.8, rng.Float64()*2*math.Pi)
		gl := cmplx.Rect(rng.Float64()*0.8, rng.Float64()*2*math.Pi)
		gt := TransducerGain(s, gs, gl)
		ga := AvailableGain(s, gs)
		gp := OperatingGain(s, gl)
		if math.IsInf(ga, 1) || math.IsInf(gp, 1) || ga <= 0 || gp <= 0 {
			continue // potentially unstable sample: hierarchy not defined
		}
		if gt > ga*(1+1e-9) {
			t.Fatalf("trial %d: GT %g > GA %g", trial, gt, ga)
		}
		if gt > gp*(1+1e-9) {
			t.Fatalf("trial %d: GT %g > GP %g", trial, gt, gp)
		}
	}
}

func TestGammaInMatchedLoad(t *testing.T) {
	// With a matched load, GammaIn = S11.
	if got := GammaIn(atf54143ish, 0); got != atf54143ish[0][0] {
		t.Errorf("GammaIn(0) = %v, want S11", got)
	}
	if got := GammaOut(atf54143ish, 0); got != atf54143ish[1][1] {
		t.Errorf("GammaOut(0) = %v, want S22", got)
	}
}

func TestGammaZRoundTrip(t *testing.T) {
	for _, z := range []complex128{50, 25 + 10i, 100 - 40i, 75} {
		g := GammaFromZ(z, 50)
		back := ZFromGamma(g, 50)
		if cmplx.Abs(back-z) > 1e-9 {
			t.Errorf("Z %v -> gamma %v -> %v", z, g, back)
		}
	}
	if g := GammaFromZ(50, 50); g != 0 {
		t.Errorf("matched gamma = %v, want 0", g)
	}
}

func TestSimultaneousMatchMaximizesGT(t *testing.T) {
	// Build an unconditionally stable device: resistively loaded version of
	// the fixture.
	s := atf54143ish
	// Pad the output with 6 dB attenuation to force stability.
	att := attenuatorS(6)
	stable, err := CascadeS(50, s, att)
	if err != nil {
		t.Fatalf("CascadeS: %v", err)
	}
	if !Unconditional(stable) {
		t.Skip("fixture did not stabilize; adjust attenuator")
	}
	gs, gl, err := SimultaneousMatch(stable)
	if err != nil {
		t.Fatalf("SimultaneousMatch: %v", err)
	}
	if cmplx.Abs(gs) >= 1 || cmplx.Abs(gl) >= 1 {
		t.Fatalf("match coefficients outside unit disc: %v %v", gs, gl)
	}
	gtOpt := TransducerGain(stable, gs, gl)
	mag := MAG(stable)
	if math.Abs(mathLog10(gtOpt)-mathLog10(mag)) > 1e-6 {
		t.Errorf("GT at simultaneous match = %g, MAG = %g (should agree)", gtOpt, mag)
	}
	// Perturbing the terminations must not increase GT.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		p1 := gs + cmplx.Rect(0.05, rng.Float64()*2*math.Pi)
		p2 := gl + cmplx.Rect(0.05, rng.Float64()*2*math.Pi)
		if cmplx.Abs(p1) >= 1 || cmplx.Abs(p2) >= 1 {
			continue
		}
		if g := TransducerGain(stable, p1, p2); g > gtOpt*(1+1e-9) {
			t.Fatalf("perturbed GT %g exceeds optimum %g", g, gtOpt)
		}
	}
}

// attenuatorS returns the S-matrix of a matched resistive attenuator with the
// given loss in dB (tee topology).
func attenuatorS(db float64) Mat2 {
	a := math.Pow(10, db/20)
	// Matched tee attenuator resistor values for Z0 = 50.
	r1 := 50 * (a - 1) / (a + 1)
	r2 := 50 * 2 * a / (a*a - 1)
	abcd := SeriesZ(complex(r1, 0)).
		Mul(ShuntY(complex(1/r2, 0))).
		Mul(SeriesZ(complex(r1, 0)))
	s, err := ABCDToS(abcd, 50)
	if err != nil {
		panic(err)
	}
	return s
}

func TestAttenuatorFixture(t *testing.T) {
	// The tee attenuator must be matched and have exactly its design loss.
	for _, db := range []float64{3, 6, 10, 20} {
		s := attenuatorS(db)
		if cmplx.Abs(s[0][0]) > 1e-10 {
			t.Errorf("%g dB attenuator S11 = %v, want 0", db, s[0][0])
		}
		gotDB := -20 * math.Log10(cmplx.Abs(s[1][0]))
		if math.Abs(gotDB-db) > 1e-9 {
			t.Errorf("attenuator loss = %g dB, want %g", gotDB, db)
		}
	}
}

func TestVSWRAndMismatch(t *testing.T) {
	if v := VSWR(0); v != 1 {
		t.Errorf("VSWR(0) = %g, want 1", v)
	}
	if v := VSWR(complex(1.0/3, 0)); math.Abs(v-2) > 1e-12 {
		t.Errorf("VSWR(1/3) = %g, want 2", v)
	}
	if !math.IsInf(VSWR(1), 1) {
		t.Error("VSWR(1) must be +Inf")
	}
	if m := MismatchLoss(complex(0.5, 0)); math.Abs(m-0.75) > 1e-12 {
		t.Errorf("MismatchLoss(0.5) = %g, want 0.75", m)
	}
}

func TestMSGAndMAG(t *testing.T) {
	s := atf54143ish
	msg := MSG(s)
	want := cmplx.Abs(s[1][0]) / cmplx.Abs(s[0][1])
	if math.Abs(msg-want) > 1e-12 {
		t.Errorf("MSG = %g, want %g", msg, want)
	}
	// Unilateral device: infinite MSG.
	uni := s
	uni[0][1] = 0
	if !math.IsInf(MSG(uni), 1) {
		t.Error("MSG of unilateral device must be +Inf")
	}
	// MAG of a stable device does not exceed MSG.
	att := attenuatorS(8)
	stable, err := CascadeS(50, s, att)
	if err != nil {
		t.Fatalf("CascadeS: %v", err)
	}
	if Unconditional(stable) && MAG(stable) > MSG(stable)+1e-9 {
		t.Errorf("MAG %g exceeds MSG %g", MAG(stable), MSG(stable))
	}
}

func TestMasonUInvariantUnderLosslessEmbedding(t *testing.T) {
	// U is invariant when the device is embedded in lossless reciprocal
	// networks; cascade with a lossless line and compare.
	s := atf54143ish
	u1, err := MasonU(s, 50)
	if err != nil {
		t.Fatalf("MasonU: %v", err)
	}
	line, err := ABCDToS(LineABCD(50, complex(0, 3.7), 0.31), 50)
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	emb, err := CascadeS(50, line, s, line)
	if err != nil {
		t.Fatalf("CascadeS: %v", err)
	}
	u2, err := MasonU(emb, 50)
	if err != nil {
		t.Fatalf("MasonU: %v", err)
	}
	if math.Abs(u1-u2) > 1e-6*u1 {
		t.Errorf("Mason U changed under lossless embedding: %g -> %g", u1, u2)
	}
}

func mathLog10(x float64) float64 { return math.Log10(x) }
