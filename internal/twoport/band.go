package twoport

// Grid-batched Mat2 algebra: structure-of-arrays loops over []Mat2 slabs.
// Every batched function is a pointwise application of the corresponding
// per-point routine, so results are value-exact (==) against the per-point
// path and the differential suite in internal/verify can assert as much.

// MulBand writes a[i].Mul(b[i]) into dst (all slices the common length) and
// returns dst.
func MulBand(dst, a, b []Mat2) []Mat2 {
	for i := range dst {
		dst[i] = a[i].Mul(b[i])
	}
	return dst
}

// CascadeSBand writes the S-parameter cascade of a[i] followed by b[i] at the
// common reference z0 into dst and returns dst. Each point is the exact
// per-point CascadeS.
func CascadeSBand(z0 float64, dst, a, b []Mat2) error {
	for i := range dst {
		s, err := CascadeS(z0, a[i], b[i])
		if err != nil {
			return err
		}
		dst[i] = s
	}
	return nil
}

// ABCDToSBand converts a slab of chain matrices to scattering matrices at
// the common reference z0, writing into dst.
func ABCDToSBand(dst, abcd []Mat2, z0 float64) error {
	for i := range abcd {
		s, err := ABCDToS(abcd[i], z0)
		if err != nil {
			return err
		}
		dst[i] = s
	}
	return nil
}

// MulSeriesZ returns a.Mul(SeriesZ(z)) specialized for the elementary series
// chain matrix [[1, z], [0, 1]]: products against the exact ones and zeros
// drop out, and for finite operands the surviving terms are computed by the
// same operations the generic Mul performs, so the result compares equal
// under ==. Callers must fall back to the generic product when a or z is
// non-finite.
func MulSeriesZ(a Mat2, z complex128) Mat2 {
	return Mat2{
		{a[0][0], a[0][0]*z + a[0][1]},
		{a[1][0], a[1][0]*z + a[1][1]},
	}
}

// MulShuntY returns a.Mul(ShuntY(y)) specialized for the elementary shunt
// chain matrix [[1, 0], [y, 1]], under the same finite-operand contract as
// MulSeriesZ.
func MulShuntY(a Mat2, y complex128) Mat2 {
	return Mat2{
		{a[0][0] + a[0][1]*y, a[0][1]},
		{a[1][0] + a[1][1]*y, a[1][1]},
	}
}

// TransducerGainBand writes the 50-ohm-terminated transducer gain of each
// scattering matrix into dst (gammaS = gammaL = 0) and returns dst.
func TransducerGainBand(dst []float64, s []Mat2) []float64 {
	for i := range s {
		dst[i] = TransducerGain(s[i], 0, 0)
	}
	return dst
}

// RolletKBand writes the Rollet K factor of each scattering matrix into dst.
func RolletKBand(dst []float64, s []Mat2) []float64 {
	for i := range s {
		dst[i] = RolletK(s[i])
	}
	return dst
}

// MuSourceBand writes the mu source-stability factor of each scattering
// matrix into dst.
func MuSourceBand(dst []float64, s []Mat2) []float64 {
	for i := range s {
		dst[i] = MuSource(s[i])
	}
	return dst
}

// SameGrid reports whether the two networks sample exactly the same
// frequency grid (same length, identical values).
func SameGrid(a, b *Network) bool {
	if len(a.Freqs) != len(b.Freqs) {
		return false
	}
	for i, f := range a.Freqs {
		if b.Freqs[i] != f {
			return false
		}
	}
	return true
}
