package twoport

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrUnstable reports that an operation requiring unconditional stability was
// attempted on a potentially unstable two-port.
var ErrUnstable = errors.New("twoport: two-port is not unconditionally stable")

// RolletK returns the Rollet stability factor K. The two-port is
// unconditionally stable iff K > 1 and |Delta| < 1.
func RolletK(s Mat2) float64 {
	d := s.Det()
	num := 1 - abs2(s[0][0]) - abs2(s[1][1]) + abs2(d)
	den := 2 * cmplx.Abs(s[0][1]) * cmplx.Abs(s[1][0])
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// Delta returns the determinant of the scattering matrix, used together with
// K in the classical stability test.
func Delta(s Mat2) complex128 { return s.Det() }

// MuSource returns the mu stability factor (geometric distance from the
// center of the Smith chart to the nearest unstable source termination).
// mu > 1 is a single-parameter test of unconditional stability.
func MuSource(s Mat2) float64 {
	d := s.Det()
	num := 1 - abs2(s[0][0])
	den := cmplx.Abs(s[1][1]-d*cmplx.Conj(s[0][0])) + cmplx.Abs(s[0][1]*s[1][0])
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// MuLoad returns the dual mu' stability factor for load terminations.
func MuLoad(s Mat2) float64 {
	d := s.Det()
	num := 1 - abs2(s[1][1])
	den := cmplx.Abs(s[0][0]-d*cmplx.Conj(s[1][1])) + cmplx.Abs(s[0][1]*s[1][0])
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// Unconditional reports whether the two-port is unconditionally stable using
// the K-Delta test.
func Unconditional(s Mat2) bool {
	return RolletK(s) > 1 && cmplx.Abs(s.Det()) < 1
}

// Circle describes a circle in the reflection-coefficient plane.
type Circle struct {
	Center complex128
	Radius float64
}

// Contains reports whether gamma lies inside (or on) the circle.
func (c Circle) Contains(gamma complex128) bool {
	return cmplx.Abs(gamma-c.Center) <= c.Radius
}

// SourceStabilityCircle returns the locus of source reflection coefficients
// for which |GammaOut| = 1.
func SourceStabilityCircle(s Mat2) Circle {
	d := s.Det()
	den := abs2(s[0][0]) - abs2(d)
	if den == 0 {
		return Circle{Center: 0, Radius: math.Inf(1)}
	}
	c := cmplx.Conj(s[0][0]-d*cmplx.Conj(s[1][1])) / complex(den, 0)
	r := cmplx.Abs(s[0][1]*s[1][0]) / math.Abs(den)
	return Circle{Center: c, Radius: r}
}

// LoadStabilityCircle returns the locus of load reflection coefficients for
// which |GammaIn| = 1.
func LoadStabilityCircle(s Mat2) Circle {
	d := s.Det()
	den := abs2(s[1][1]) - abs2(d)
	if den == 0 {
		return Circle{Center: 0, Radius: math.Inf(1)}
	}
	c := cmplx.Conj(s[1][1]-d*cmplx.Conj(s[0][0])) / complex(den, 0)
	r := cmplx.Abs(s[0][1]*s[1][0]) / math.Abs(den)
	return Circle{Center: c, Radius: r}
}
