package twoport

import "math/cmplx"

// Ideal-element chain matrices. Dispersive, lossy physical components live in
// the rfpassive package; these primitives are the compositional vocabulary.

// SeriesZ returns the ABCD matrix of a series impedance z.
func SeriesZ(z complex128) Mat2 {
	return Mat2{{1, z}, {0, 1}}
}

// ShuntY returns the ABCD matrix of a shunt admittance y.
func ShuntY(y complex128) Mat2 {
	return Mat2{{1, 0}, {y, 1}}
}

// IdealTransformer returns the ABCD matrix of an ideal transformer with
// voltage ratio n:1 (input:output).
func IdealTransformer(n float64) Mat2 {
	nc := complex(n, 0)
	return Mat2{{nc, 0}, {0, 1 / nc}}
}

// LineABCD returns the ABCD matrix of a transmission line with complex
// characteristic impedance zc and complex propagation constant gamma
// (= alpha + j beta, in 1/m) over length l meters.
func LineABCD(zc, gamma complex128, l float64) Mat2 {
	gl := gamma * complex(l, 0)
	ch := cmplx.Cosh(gl)
	sh := cmplx.Sinh(gl)
	return Mat2{{ch, zc * sh}, {sh / zc, ch}}
}

// InputImpedanceOfLine returns the input impedance of a transmission line of
// characteristic impedance zc and propagation constant gamma, length l,
// terminated in zl.
func InputImpedanceOfLine(zc, gamma complex128, l float64, zl complex128) complex128 {
	gl := gamma * complex(l, 0)
	// cosh/sinh form avoids the tanh pole at quarter-wave lengths.
	ch := cmplx.Cosh(gl)
	sh := cmplx.Sinh(gl)
	return zc * (zl*ch + zc*sh) / (zc*ch + zl*sh)
}
