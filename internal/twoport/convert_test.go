package twoport

import (
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomS returns a random "reasonable" scattering matrix with entries inside
// the unit disc scaled to avoid singular conversions.
func randomS(rng *rand.Rand) Mat2 {
	var s Mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s[i][j] = complex(0.6*(rng.Float64()*2-1), 0.6*(rng.Float64()*2-1))
		}
	}
	// Ensure a non-negligible S21 so chain forms exist.
	if cmplx.Abs(s[1][0]) < 0.05 {
		s[1][0] += 0.5
	}
	return s
}

func TestConversionRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const z0 = 50.0
	for trial := 0; trial < 100; trial++ {
		s := randomS(rng)

		z, err := SToZ(s, z0)
		if err != nil {
			t.Fatalf("SToZ: %v", err)
		}
		s2, err := ZToS(z, z0)
		if err != nil {
			t.Fatalf("ZToS: %v", err)
		}
		if d := MaxAbsDiff(s, s2); d > 1e-10 {
			t.Fatalf("trial %d: S->Z->S diff %g", trial, d)
		}

		y, err := SToY(s, z0)
		if err != nil {
			t.Fatalf("SToY: %v", err)
		}
		s3, err := YToS(y, z0)
		if err != nil {
			t.Fatalf("YToS: %v", err)
		}
		if d := MaxAbsDiff(s, s3); d > 1e-10 {
			t.Fatalf("trial %d: S->Y->S diff %g", trial, d)
		}

		a, err := SToABCD(s, z0)
		if err != nil {
			t.Fatalf("SToABCD: %v", err)
		}
		s4, err := ABCDToS(a, z0)
		if err != nil {
			t.Fatalf("ABCDToS: %v", err)
		}
		if d := MaxAbsDiff(s, s4); d > 1e-9 {
			t.Fatalf("trial %d: S->ABCD->S diff %g", trial, d)
		}

		tm, err := SToT(s)
		if err != nil {
			t.Fatalf("SToT: %v", err)
		}
		s5, err := TToS(tm)
		if err != nil {
			t.Fatalf("TToS: %v", err)
		}
		if d := MaxAbsDiff(s, s5); d > 1e-10 {
			t.Fatalf("trial %d: S->T->S diff %g", trial, d)
		}

		h, err := SToH(s, z0)
		if err != nil {
			t.Fatalf("SToH: %v", err)
		}
		zBack, err := HToZ(h)
		if err != nil {
			t.Fatalf("HToZ: %v", err)
		}
		if d := MaxAbsDiff(z, zBack); d > 1e-8*(1+cmplx.Abs(z[0][0])) {
			t.Fatalf("trial %d: Z->H->Z diff %g", trial, d)
		}
	}
}

func TestCrossRepresentationConsistency(t *testing.T) {
	// Y and Z obtained independently from S must be mutual inverses.
	rng := rand.New(rand.NewSource(9))
	const z0 = 50.0
	for trial := 0; trial < 50; trial++ {
		s := randomS(rng)
		y, err1 := SToY(s, z0)
		z, err2 := SToZ(s, z0)
		if err1 != nil || err2 != nil {
			continue
		}
		prod := y.Mul(z)
		if d := MaxAbsDiff(prod, Identity2()); d > 1e-9 {
			t.Fatalf("trial %d: Y*Z differs from I by %g", trial, d)
		}
	}
}

func TestSeriesShuntKnownS(t *testing.T) {
	const z0 = 50.0
	// Series 50-ohm resistor: S11 = z/(z+2z0) = 1/3, S21 = 2/3.
	a := SeriesZ(50)
	s, err := ABCDToS(a, z0)
	if err != nil {
		t.Fatalf("ABCDToS: %v", err)
	}
	if !closeC(s[0][0], complex(1.0/3, 0), 1e-12) {
		t.Errorf("series R S11 = %v, want 1/3", s[0][0])
	}
	if !closeC(s[1][0], complex(2.0/3, 0), 1e-12) {
		t.Errorf("series R S21 = %v, want 2/3", s[1][0])
	}
	// Shunt 50-ohm resistor: S11 = -y z0/(y z0 + 2) = -1/3, S21 = 2/3.
	s, err = ABCDToS(ShuntY(1.0/50), z0)
	if err != nil {
		t.Fatalf("ABCDToS: %v", err)
	}
	if !closeC(s[0][0], complex(-1.0/3, 0), 1e-12) {
		t.Errorf("shunt R S11 = %v, want -1/3", s[0][0])
	}
	if !closeC(s[1][0], complex(2.0/3, 0), 1e-12) {
		t.Errorf("shunt R S21 = %v, want 2/3", s[1][0])
	}
}

func TestCascadeMatchesABCDProduct(t *testing.T) {
	// Cascading via T-parameters must agree with multiplying ABCD matrices.
	rng := rand.New(rand.NewSource(17))
	const z0 = 50.0
	for trial := 0; trial < 40; trial++ {
		s1, s2 := randomS(rng), randomS(rng)
		viaT, err := CascadeS(z0, s1, s2)
		if err != nil {
			t.Fatalf("CascadeS: %v", err)
		}
		a1, err := SToABCD(s1, z0)
		if err != nil {
			t.Fatalf("SToABCD: %v", err)
		}
		a2, err := SToABCD(s2, z0)
		if err != nil {
			t.Fatalf("SToABCD: %v", err)
		}
		viaA, err := ABCDToS(a1.Mul(a2), z0)
		if err != nil {
			t.Fatalf("ABCDToS: %v", err)
		}
		if d := MaxAbsDiff(viaT, viaA); d > 1e-9 {
			t.Fatalf("trial %d: cascade representations disagree by %g", trial, d)
		}
	}
}

func TestQuarterWaveTransformer(t *testing.T) {
	// A lossless quarter-wave line of Zc = sqrt(50*100) matches 100 ohm to
	// 50 ohm: input impedance must be exactly 50.
	const z0 = 50.0
	zc := complex(70.71067811865476, 0)
	// beta*l = pi/2 for quarter wave; gamma = j*beta.
	gamma := complex(0, 1)
	l := 3.14159265358979323846 / 2
	zin := InputImpedanceOfLine(zc, gamma, l, 100)
	if !closeC(zin, 50, 1e-9) {
		t.Errorf("quarter-wave Zin = %v, want 50", zin)
	}
	// The same line terminated in a short looks open.
	zinShort := InputImpedanceOfLine(zc, gamma, l, 1e-9)
	if cmplx.Abs(zinShort) < 1e6 {
		t.Errorf("quarter-wave over short = %v, want very large", zinShort)
	}
	_ = z0
}

func TestLosslessLineSParams(t *testing.T) {
	// A matched lossless line is all-pass: |S21| = 1, S11 = 0.
	const z0 = 50.0
	a := LineABCD(complex(z0, 0), complex(0, 2.5), 0.7)
	s, err := ABCDToS(a, z0)
	if err != nil {
		t.Fatalf("ABCDToS: %v", err)
	}
	if cmplx.Abs(s[0][0]) > 1e-12 {
		t.Errorf("matched line S11 = %v, want 0", s[0][0])
	}
	if d := cmplx.Abs(s[1][0]); d < 1-1e-12 || d > 1+1e-12 {
		t.Errorf("matched line |S21| = %g, want 1", d)
	}
}

func TestReciprocalPropertyPreserved(t *testing.T) {
	// Conversions preserve reciprocity: if S12 == S21 then Z12 == Z21.
	f := func(re, im float64) bool {
		s := Mat2{
			{complex(0.2, 0.1), complex(re/4, im/4)},
			{complex(re/4, im/4), complex(-0.1, 0.3)},
		}
		if cmplx.Abs(s[1][0]) < 1e-3 {
			return true
		}
		z, err := SToZ(s, 50)
		if err != nil {
			return true
		}
		return cmplx.Abs(z[0][1]-z[1][0]) < 1e-9*(1+cmplx.Abs(z[0][1]))
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Float64()*2 - 1)
			vals[1] = reflect.ValueOf(rng.Float64()*2 - 1)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func closeC(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

// TestSeriesElementZParamsSingular is the regression for a bug the verify
// harness found: S->Z of an ideal series element "succeeded" because I-S is
// singular only up to rounding (det ~ 1e-17), returning a ~1e17-ohm garbage
// Z-matrix whose round trip back to S lost every digit. Inv now applies a
// scale-invariant singularity test, so the conversion must report
// ErrSingularNetwork instead.
func TestSeriesElementZParamsSingular(t *testing.T) {
	s, err := ABCDToS(SeriesZ(50), 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SToZ(s, 50); err == nil {
		t.Error("S->Z of a pure series element must be singular")
	}
	// The dual: S->Y of a pure shunt element (I+S singular).
	s, err = ABCDToS(ShuntY(0.02), 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SToY(s, 50); err == nil {
		t.Error("S->Y of a pure shunt element must be singular")
	}
	// Well-conditioned conversions still work.
	att := Mat2{{0.05, 0.5}, {0.5, 0.05}}
	z, err := SToZ(att, 50)
	if err != nil {
		t.Fatalf("attenuator S->Z: %v", err)
	}
	back, err := ZToS(z, 50)
	if err != nil {
		t.Fatalf("attenuator Z->S: %v", err)
	}
	if d := MaxAbsDiff(att, back); d > 1e-12 {
		t.Errorf("attenuator round trip diverges by %g", d)
	}
}
