// Package twoport implements two-port RF network algebra: conversions
// between scattering (S), admittance (Y), impedance (Z), chain (ABCD) and
// hybrid (h) parameters, cascading, power gains, and stability analysis.
//
// All S-parameters are referenced to a real characteristic impedance Z0
// (50 ohm unless stated otherwise). The Mat2 type is the common currency:
// a 2x2 complex matrix whose interpretation (S, Y, Z, ABCD...) is carried by
// the function names operating on it, matching RF engineering practice.
package twoport

import (
	"errors"
	"math/cmplx"
)

// Z0Default is the reference impedance used throughout the project.
const Z0Default = 50.0

// ErrSingularNetwork reports a parameter conversion that does not exist for
// the given network (for example Y-parameters of a series element alone).
var ErrSingularNetwork = errors.New("twoport: conversion is singular for this network")

// Mat2 is a 2x2 complex matrix. M[i][j] follows the usual port ordering:
// index 0 is port 1 (input), index 1 is port 2 (output).
type Mat2 [2][2]complex128

// Mul returns the matrix product m * n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		{m[0][0]*n[0][0] + m[0][1]*n[1][0], m[0][0]*n[0][1] + m[0][1]*n[1][1]},
		{m[1][0]*n[0][0] + m[1][1]*n[1][0], m[1][0]*n[0][1] + m[1][1]*n[1][1]},
	}
}

// Add returns the elementwise sum m + n.
func (m Mat2) Add(n Mat2) Mat2 {
	return Mat2{
		{m[0][0] + n[0][0], m[0][1] + n[0][1]},
		{m[1][0] + n[1][0], m[1][1] + n[1][1]},
	}
}

// Scale returns m with every element multiplied by a.
func (m Mat2) Scale(a complex128) Mat2 {
	return Mat2{
		{a * m[0][0], a * m[0][1]},
		{a * m[1][0], a * m[1][1]},
	}
}

// Det returns the determinant of m.
func (m Mat2) Det() complex128 {
	return m[0][0]*m[1][1] - m[0][1]*m[1][0]
}

// Inv returns the matrix inverse of m. A matrix that is singular to working
// precision — not only an exactly zero determinant — returns
// ErrSingularNetwork: Hadamard's bound gives |det| <= ||row1||*||row2||, so a
// determinant many orders below that bound is pure cancellation noise and the
// cofactor inverse would amplify it into garbage (e.g. S->Z of an ideal
// series element, where I-S is rank one up to rounding).
func (m Mat2) Inv() (Mat2, error) {
	d := m.Det()
	r1 := cmplx.Abs(m[0][0]) + cmplx.Abs(m[0][1])
	r2 := cmplx.Abs(m[1][0]) + cmplx.Abs(m[1][1])
	if cmplx.Abs(d) <= 1e-12*r1*r2 {
		return Mat2{}, ErrSingularNetwork
	}
	return Mat2{
		{m[1][1] / d, -m[0][1] / d},
		{-m[1][0] / d, m[0][0] / d},
	}, nil
}

// ConjTranspose returns the Hermitian transpose of m.
func (m Mat2) ConjTranspose() Mat2 {
	return Mat2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// Transpose returns the (plain) transpose of m.
func (m Mat2) Transpose() Mat2 {
	return Mat2{
		{m[0][0], m[1][0]},
		{m[0][1], m[1][1]},
	}
}

// Congruence returns t * m * t^H, the congruence transform used for noise
// correlation matrices.
func (m Mat2) Congruence(t Mat2) Mat2 {
	return t.Mul(m).Mul(t.ConjTranspose())
}

// Identity2 is the 2x2 identity matrix.
func Identity2() Mat2 {
	return Mat2{{1, 0}, {0, 1}}
}

// MaxAbsDiff returns the largest elementwise magnitude difference between
// two matrices, for tests and verification harnesses.
func MaxAbsDiff(a, b Mat2) float64 {
	var m float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if d := cmplx.Abs(a[i][j] - b[i][j]); d > m {
				m = d
			}
		}
	}
	return m
}
