package twoport

// Parameter conversions follow the standard tables (e.g. Frickey, "Conversion
// between S, Z, Y, h, ABCD and T parameters which are valid for complex
// source and load impedances", IEEE MTT 1994) specialized to a real reference
// impedance z0 at both ports.

// SToZ converts scattering parameters to impedance parameters.
func SToZ(s Mat2, z0 float64) (Mat2, error) {
	zc := complex(z0, 0)
	i := Identity2()
	den := i.Add(s.Scale(-1)) // I - S
	inv, err := den.Inv()
	if err != nil {
		return Mat2{}, err
	}
	return inv.Mul(i.Add(s)).Scale(zc), nil // Z = z0 (I-S)^-1 (I+S)
}

// ZToS converts impedance parameters to scattering parameters.
func ZToS(z Mat2, z0 float64) (Mat2, error) {
	zc := complex(z0, 0)
	zn := z.Scale(1 / zc) // normalized
	i := Identity2()
	den := zn.Add(i)
	inv, err := den.Inv()
	if err != nil {
		return Mat2{}, err
	}
	return zn.Add(i.Scale(-1)).Mul(inv), nil // S = (Zn-I)(Zn+I)^-1
}

// SToY converts scattering parameters to admittance parameters.
func SToY(s Mat2, z0 float64) (Mat2, error) {
	y0 := complex(1/z0, 0)
	i := Identity2()
	den := i.Add(s)
	inv, err := den.Inv()
	if err != nil {
		return Mat2{}, err
	}
	return inv.Mul(i.Add(s.Scale(-1))).Scale(y0), nil // Y = y0 (I+S)^-1 (I-S)
}

// YToS converts admittance parameters to scattering parameters.
func YToS(y Mat2, z0 float64) (Mat2, error) {
	zc := complex(z0, 0)
	yn := y.Scale(zc)
	i := Identity2()
	den := i.Add(yn)
	inv, err := den.Inv()
	if err != nil {
		return Mat2{}, err
	}
	return inv.Mul(i.Add(yn.Scale(-1))), nil // S = (I+Yn)^-1 (I-Yn)
}

// YToZ converts admittance to impedance parameters.
func YToZ(y Mat2) (Mat2, error) { return y.Inv() }

// ZToY converts impedance to admittance parameters.
func ZToY(z Mat2) (Mat2, error) { return z.Inv() }

// ZToABCD converts impedance parameters to chain (ABCD) parameters.
func ZToABCD(z Mat2) (Mat2, error) {
	if z[1][0] == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	d := z.Det()
	return Mat2{
		{z[0][0] / z[1][0], d / z[1][0]},
		{1 / z[1][0], z[1][1] / z[1][0]},
	}, nil
}

// ABCDToZ converts chain parameters to impedance parameters.
func ABCDToZ(a Mat2) (Mat2, error) {
	c := a[1][0]
	if c == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	d := a.Det()
	return Mat2{
		{a[0][0] / c, d / c},
		{1 / c, a[1][1] / c},
	}, nil
}

// YToABCD converts admittance parameters to chain parameters.
func YToABCD(y Mat2) (Mat2, error) {
	if y[1][0] == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	d := y.Det()
	return Mat2{
		{-y[1][1] / y[1][0], -1 / y[1][0]},
		{-d / y[1][0], -y[0][0] / y[1][0]},
	}, nil
}

// ABCDToY converts chain parameters to admittance parameters.
func ABCDToY(a Mat2) (Mat2, error) {
	b := a[0][1]
	if b == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	d := a.Det()
	return Mat2{
		{a[1][1] / b, -d / b},
		{-1 / b, a[0][0] / b},
	}, nil
}

// SToABCD converts scattering parameters to chain parameters.
func SToABCD(s Mat2, z0 float64) (Mat2, error) {
	zc := complex(z0, 0)
	s21 := s[1][0]
	if s21 == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	den := 2 * s21
	return Mat2{
		{((1+s[0][0])*(1-s[1][1]) + s[0][1]*s[1][0]) / den, zc * ((1+s[0][0])*(1+s[1][1]) - s[0][1]*s[1][0]) / den},
		{((1-s[0][0])*(1-s[1][1]) - s[0][1]*s[1][0]) / den / zc, ((1-s[0][0])*(1+s[1][1]) + s[0][1]*s[1][0]) / den},
	}, nil
}

// ABCDToS converts chain parameters to scattering parameters.
func ABCDToS(a Mat2, z0 float64) (Mat2, error) {
	zc := complex(z0, 0)
	A, B, C, D := a[0][0], a[0][1], a[1][0], a[1][1]
	den := A + B/zc + C*zc + D
	if den == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	det := a.Det()
	return Mat2{
		{(A + B/zc - C*zc - D) / den, 2 * det / den},
		{2 / den, (-A + B/zc - C*zc + D) / den},
	}, nil
}

// SToH converts scattering parameters to hybrid (h) parameters.
func SToH(s Mat2, z0 float64) (Mat2, error) {
	z, err := SToZ(s, z0)
	if err != nil {
		return Mat2{}, err
	}
	return ZToH(z)
}

// ZToH converts impedance parameters to hybrid parameters.
func ZToH(z Mat2) (Mat2, error) {
	if z[1][1] == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	d := z.Det()
	return Mat2{
		{d / z[1][1], z[0][1] / z[1][1]},
		{-z[1][0] / z[1][1], 1 / z[1][1]},
	}, nil
}

// HToZ converts hybrid parameters to impedance parameters.
func HToZ(h Mat2) (Mat2, error) {
	if h[1][1] == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	d := h.Det()
	return Mat2{
		{d / h[1][1], h[0][1] / h[1][1]},
		{-h[1][0] / h[1][1], 1 / h[1][1]},
	}, nil
}

// SToT converts scattering parameters to chain-scattering (T) parameters,
// which cascade by plain matrix multiplication like ABCD.
func SToT(s Mat2) (Mat2, error) {
	if s[1][0] == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	return Mat2{
		{1 / s[1][0], -s[1][1] / s[1][0]},
		{s[0][0] / s[1][0], -s.Det() / s[1][0]},
	}, nil
}

// TToS converts chain-scattering parameters back to scattering parameters.
func TToS(t Mat2) (Mat2, error) {
	if t[0][0] == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	return Mat2{
		{t[1][0] / t[0][0], t.Det() / t[0][0]},
		{1 / t[0][0], -t[0][1] / t[0][0]},
	}, nil
}

// CascadeS cascades two-ports given by their S-parameters (both referenced
// to z0) and returns the S-parameters of the combination.
func CascadeS(z0 float64, stages ...Mat2) (Mat2, error) {
	if len(stages) == 0 {
		return Mat2{}, ErrSingularNetwork
	}
	t, err := SToT(stages[0])
	if err != nil {
		return Mat2{}, err
	}
	for _, s := range stages[1:] {
		tn, err := SToT(s)
		if err != nil {
			return Mat2{}, err
		}
		t = t.Mul(tn)
	}
	return TToS(t)
}
