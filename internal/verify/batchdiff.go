package verify

import (
	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/noise"
	"gnsslna/internal/rfpassive"
	"gnsslna/internal/twoport"
)

// Batch-vs-per-point differential checks: the band engine (compiled chains,
// hoisted device state, grid-batched metrics) is required to agree with the
// per-point path under floating-point equality (==) — not within a
// tolerance. The elementary fast ops are constructed to perform the same
// scalar arithmetic in the same order as the generic path, so the only
// representable difference is the sign of a zero, which == treats as equal.
// Any larger divergence is an engine bug, and these checks catch it at
// every entry over the full corpus grid.

// exactMat2 demands a == b elementwise.
func exactMat2(context, name string, a, b twoport.Mat2) []Violation {
	if a == b {
		return nil
	}
	return []Violation{violation("batch-differential", context, twoport.MaxAbsDiff(a, b),
		"%s: batch and per-point %s matrices are not value-identical (max |diff| %.3g)",
		name, name, twoport.MaxAbsDiff(a, b))}
}

// BatchChainEquivalence compiles the chain and demands the batched noisy
// two-port and chain matrix equal (==) the per-point Chain.Noisy/ABCD at
// every frequency.
func BatchChainEquivalence(context string, ch rfpassive.Chain, freqs []float64) []Violation {
	var out []Violation
	cc := rfpassive.CompileChain(ch)
	for i, f := range freqs {
		ref := ch.Noisy(f)
		got := cc.NoisyAt(f)
		ctx := pointContext(context, freqs, i)
		out = append(out, exactMat2(ctx, "A", got.A, ref.A)...)
		out = append(out, exactMat2(ctx, "CA", got.CA, ref.CA)...)
		out = append(out, exactMat2(ctx, "ABCD", cc.ABCDAt(f), ch.ABCD(f))...)
	}
	return out
}

// BatchDeviceEquivalence demands the device band path — hoisted bias state
// for the noisy two-port, and the A-only embedding used by the stability
// scan — equal (==) NoisyAt at every frequency of the grid.
func BatchDeviceEquivalence(context string, dev *device.PHEMT, b device.Bias, freqs []float64) []Violation {
	var out []Violation
	band := make([]noise.TwoPort, len(freqs))
	if err := dev.NoisyBandInto(band, b, freqs); err != nil {
		return []Violation{violation("batch-differential", context, 0,
			"NoisyBandInto failed: %v", err)}
	}
	abcd := make([]twoport.Mat2, len(freqs))
	if err := dev.ABCDBandInto(abcd, b, freqs); err != nil {
		return []Violation{violation("batch-differential", context, 0,
			"ABCDBandInto failed: %v", err)}
	}
	for i, f := range freqs {
		ref, err := dev.NoisyAt(b, f)
		if err != nil {
			out = append(out, violation("batch-differential", pointContext(context, freqs, i), 0,
				"NoisyAt failed: %v", err))
			continue
		}
		ctx := pointContext(context, freqs, i)
		out = append(out, exactMat2(ctx, "A", band[i].A, ref.A)...)
		out = append(out, exactMat2(ctx, "CA", band[i].CA, ref.CA)...)
		out = append(out, exactMat2(ctx, "A-only ABCD", abcd[i], ref.A)...)
	}
	return out
}

// BatchAmplifierEquivalence demands MetricsBand equal (==) MetricsAt at
// every frequency: every field of every PointMetrics must be value-exact.
func BatchAmplifierEquivalence(context string, amp *core.Amplifier, freqs []float64, z0 float64) []Violation {
	var out []Violation
	band, err := amp.MetricsBand(freqs, z0)
	if err != nil {
		return []Violation{violation("batch-differential", context, 0,
			"MetricsBand failed: %v", err)}
	}
	for i, f := range freqs {
		ref, err := amp.MetricsAt(f, z0)
		if err != nil {
			out = append(out, violation("batch-differential", pointContext(context, freqs, i), 0,
				"MetricsAt failed: %v", err))
			continue
		}
		if band[i] != ref {
			out = append(out, violation("batch-differential", pointContext(context, freqs, i), 0,
				"batch and per-point metrics are not value-identical: %+v vs %+v", band[i], ref))
		}
	}
	return out
}
