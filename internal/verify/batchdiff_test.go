package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/optim"
	"gnsslna/internal/rfpassive"
)

// chainCorpus wraps the element corpus as chains and adds the composite
// kinds the batch compiler special-cases: a loaded T-junction and a shunt
// R+L stabilizer branch.
func chainCorpus() map[string]rfpassive.Chain {
	out := make(map[string]rfpassive.Chain)
	for name, e := range elementCorpus() {
		if ch, ok := e.(rfpassive.Chain); ok {
			out[name] = ch
			continue
		}
		out[name] = rfpassive.Chain{e}
	}
	tee := rfpassive.Tee{
		Sub:     rfpassive.RogersRO4350(),
		WMain:   1.7e-3,
		WBranch: 0.55e-3,
		Branch: rfpassive.Chain{
			rfpassive.NewChipInductor(68e-9, rfpassive.Series),
			rfpassive.NewChipCapacitor(100e-12, rfpassive.Shunt),
		},
		BranchLoad: complex(10e3, 0),
	}
	out["loaded tee"] = rfpassive.Chain{tee}
	out["stabilizer R+L"] = rfpassive.Chain{rfpassive.StabilizerRL(75, 3.9e-9)}
	return out
}

// TestBatchChainEquivalence compiles every corpus chain and demands the
// batch path reproduce Chain.Noisy and Chain.ABCD bit-for-bit (==) across
// the full sweep grid.
func TestBatchChainEquivalence(t *testing.T) {
	var r Report
	for name, ch := range chainCorpus() {
		r.Add(BatchChainEquivalence(name, ch, sweepGrid()))
	}
	if !r.OK() {
		t.Error(r.String())
	}
}

// TestBatchDeviceEquivalence sweeps the golden pHEMT over a bias grid and
// demands the hoisted band path (NoisyBandInto, A-only ABCDBandInto) equal
// (==) the per-point NoisyAt at every grid frequency.
func TestBatchDeviceEquivalence(t *testing.T) {
	dev := device.Golden()
	var r Report
	for _, vgs := range []float64{0.40, 0.48, 0.56} {
		for _, vds := range []float64{2, 3, 4} {
			b := device.Bias{Vgs: vgs, Vds: vds}
			ctx := fmt.Sprintf("bias (%.2f, %.2f) V", vgs, vds)
			r.Add(BatchDeviceEquivalence(ctx, dev, b, sweepGrid()))
		}
	}
	if !r.OK() {
		t.Error(r.String())
	}
}

// TestBatchAmplifierEquivalence builds amplifiers across the design box and
// demands MetricsBand equal (==) MetricsAt field-for-field on the in-band
// grid and the wide stability grid.
func TestBatchAmplifierEquivalence(t *testing.T) {
	b := core.NewBuilder(device.Golden())
	lo, hi := core.DesignBounds()
	grid := sweepGrid()
	built := 0
	for k, x := range boxSamples(lo, hi, 6) {
		amp, err := b.Build(core.DesignFromVector(x))
		if err != nil {
			// Some box corners are unbuildable; the differential claim is
			// only about designs the per-point path accepts too.
			continue
		}
		built++
		var r Report
		r.Add(BatchAmplifierEquivalence("amp sample", amp, grid, 50))
		if !r.OK() {
			t.Errorf("sample %d: %s", k, r.String())
		}
	}
	if built == 0 {
		t.Fatal("no box sample was buildable; the differential never ran")
	}
}

// evalsEqual compares two Evaluations field-for-field, including every
// per-point metric, under floating-point equality.
func evalsEqual(a, b core.Evaluation) bool {
	if a.Design != b.Design ||
		a.WorstNFdB != b.WorstNFdB || a.MinGTdB != b.MinGTdB ||
		a.WorstS11dB != b.WorstS11dB || a.WorstS22dB != b.WorstS22dB ||
		a.StabMargin != b.StabMargin ||
		a.IdsA != b.IdsA || a.PdcW != b.PdcW {
		return false
	}
	if len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

// memoDesigns draws a deterministic batch of designs from the box, with
// duplicates so a single pass already exercises memo hits.
func memoDesigns() []core.Design {
	lo, hi := core.DesignBounds()
	rng := rand.New(rand.NewSource(4242))
	xs := make([]core.Design, 0, 24)
	for k := 0; k < 16; k++ {
		x := make([]float64, len(lo))
		for i := range x {
			x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		xs = append(xs, core.DesignFromVector(x))
	}
	// Every third design repeats: hits inside the same batch.
	for k := 0; k < 8; k++ {
		xs = append(xs, xs[k*2])
	}
	return xs
}

// TestMemoBitIdentityThroughEvalPool grades the same design batch through
// the EvalPool four ways — memo disabled, cold memo, warm memo (all hits),
// and warm memo at several worker counts — and demands bit-identical
// Evaluations and identical journal eval tallies from all of them. A memo
// hit must be observationally indistinguishable from recomputation.
func TestMemoBitIdentityThroughEvalPool(t *testing.T) {
	xs := memoDesigns()
	newDesigner := func(memo *core.EvalMemo) *core.Designer {
		d := core.NewDesigner(core.NewBuilder(device.Golden()))
		d.Spec.NPoints = 5
		d.Memo = memo
		return d
	}
	grade := func(d *core.Designer, workers int) []core.Evaluation {
		out := make([]core.Evaluation, len(xs))
		optim.NewEvalPool(workers).Each(len(xs), func(i int) {
			ev, err := d.Evaluate(xs[i])
			if err != nil {
				t.Errorf("evaluate %d: %v", i, err)
				return
			}
			out[i] = ev
		})
		return out
	}

	plain := newDesigner(nil)
	ref := grade(plain, 1)
	if got, want := plain.EvalCount(), int64(len(xs)); got != want {
		t.Fatalf("memo-disabled eval tally = %d, want %d", got, want)
	}

	memo := core.NewEvalMemo(256)
	cached := newDesigner(memo)
	cold := grade(cached, 1) // first misses; the dupes reach the doorkeeper's admission
	warm := grade(cached, 1) // admitted designs hit, the rest are admitted now
	if got, want := cached.EvalCount(), int64(2*len(xs)); got != want {
		t.Fatalf("memo-enabled eval tally = %d, want %d (hits must still be charged)", got, want)
	}
	st := memo.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("memo saw hits=%d misses=%d; the batch must exercise both paths", st.Hits, st.Misses)
	}
	for i := range xs {
		if !evalsEqual(ref[i], cold[i]) {
			t.Fatalf("design %d: cold-memo evaluation differs from memo-disabled", i)
		}
		if !evalsEqual(ref[i], warm[i]) {
			t.Fatalf("design %d: warm-memo evaluation differs from memo-disabled", i)
		}
	}

	// Restart simulation: a fresh designer sharing the same memo (new
	// builder, new caches) must reproduce the identical results, as must
	// parallel grading at several worker counts.
	for _, workers := range []int{2, 4, 8} {
		restarted := newDesigner(memo)
		par := grade(restarted, workers)
		for i := range xs {
			if !evalsEqual(ref[i], par[i]) {
				t.Fatalf("workers=%d design %d: parallel memo evaluation differs", workers, i)
			}
		}
		if got, want := restarted.EvalCount(), int64(len(xs)); got != want {
			t.Fatalf("workers=%d eval tally = %d, want %d", workers, got, want)
		}
	}
}
