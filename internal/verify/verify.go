// Package verify is the reusable correctness harness of the project: a set
// of physics-invariant checkers (passivity, reciprocity, representation
// round-trip closure, noise physicality, grid monotonicity, finiteness) and
// differential cross-checks (MNA vs analytic cascade, serial vs parallel
// evaluation, checkpoint-resume vs straight-through, Touchstone write/read)
// that every numerical layer of the design flow must satisfy.
//
// Checkers return []Violation — empty means the invariant holds — and a
// Report aggregates them with enough context to reproduce each failure.
// The package deliberately has no testing.T dependency: the same checkers
// run from `make verify-invariants` (via the tests in this package), from
// other packages' tests, and can be called ad hoc on freshly measured or
// synthesized data.
//
// Tolerances: every checker takes an explicit absolute tolerance. The
// conventions used by the seed-corpus sweep are TolStrict for algebraic
// identities (round-trip closure, reciprocity of symmetric constructions)
// and TolPhysical for model-level invariants where legitimate floating-point
// accumulation is larger (passivity of long lossy cascades, Fmin near 1).
package verify

import (
	"fmt"
	"strings"
)

// Default tolerances for the two checker classes (see package comment).
const (
	// TolStrict bounds pure-algebra identities: conversions, transposes,
	// analytically equal compositions.
	TolStrict = 1e-9
	// TolPhysical bounds model-level physics invariants where rounding
	// accumulates across many element evaluations.
	TolPhysical = 1e-6
)

// Violation is one invariant breach: which check, on what object, and by
// how much.
type Violation struct {
	// Check names the invariant, e.g. "passivity" or "reciprocity".
	Check string
	// Context identifies the object and operating point, e.g.
	// "chip inductor 6.8nH @ 1.575 GHz".
	Context string
	// Detail is the human-readable description with the observed values.
	Detail string
	// Excess is the magnitude of the breach beyond tolerance (0 when not
	// meaningful for the check).
	Excess float64
}

// String renders the violation on one line.
func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s: %s", v.Check, v.Context, v.Detail)
	if v.Excess > 0 {
		s += fmt.Sprintf(" (excess %.3g)", v.Excess)
	}
	return s
}

// violation builds a Violation with a formatted detail string.
func violation(check, context string, excess float64, format string, args ...any) Violation {
	return Violation{
		Check:   check,
		Context: context,
		Detail:  fmt.Sprintf(format, args...),
		Excess:  excess,
	}
}

// Report aggregates violations from a sweep of checks.
type Report struct {
	violations []Violation
	checks     int
}

// Add appends violations and counts one executed check.
func (r *Report) Add(vs []Violation) {
	r.checks++
	r.violations = append(r.violations, vs...)
}

// Violations returns the collected violations.
func (r *Report) Violations() []Violation { return r.violations }

// Checks returns the number of checks executed (passing or not).
func (r *Report) Checks() int { return r.checks }

// OK reports whether every executed check passed.
func (r *Report) OK() bool { return len(r.violations) == 0 }

// String renders the report: a pass line, or every violation one per line.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("verify: %d checks passed", r.checks)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d violations in %d checks:\n", len(r.violations), r.checks)
	for _, v := range r.violations {
		b.WriteString("  ")
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}
