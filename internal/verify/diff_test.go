package verify

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"gnsslna"
	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/optim"
	"gnsslna/internal/touchstone"
	"gnsslna/internal/twoport"
)

func ladderGrid() []float64 {
	return []float64{0.1e9, 0.5e9, 1.575e9, 3e9, 6e9}
}

// TestDifferentialMNAvsCascade stamps representative ladders into the MNA
// engine and compares the resulting S-parameters against the chain-matrix
// cascade: two independent solvers, one answer.
func TestDifferentialMNAvsCascade(t *testing.T) {
	cases := []struct {
		name  string
		elems []LadderElem
		tol   float64
	}{
		{"series R", []LadderElem{{Series: true, R: 50}}, 1e-9},
		{"pi attenuator", []LadderElem{
			{R: 96}, {Series: true, R: 71}, {R: 96},
		}, 1e-9},
		{"LC lowpass", []LadderElem{
			{Series: true, L: 5.6e-9}, {C: 2.2e-12}, {Series: true, L: 5.6e-9},
		}, 1e-9},
		{"lossy bandpass", []LadderElem{
			{Series: true, R: 0.4, L: 6.8e-9, C: 1.5e-12},
			{R: 1.2e3, L: 12e-9, C: 0.8e-12},
			{Series: true, R: 0.2, C: 8.2e-12},
		}, 1e-9},
		{"shunt-only", []LadderElem{{C: 4.7e-12}, {R: 220}}, 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ana, err := LadderNetworkAnalytic(tc.elems, ladderGrid(), 50)
			if err != nil {
				t.Fatalf("analytic: %v", err)
			}
			num, err := LadderNetworkMNA(tc.elems, ladderGrid(), 50)
			if err != nil {
				t.Fatalf("mna: %v", err)
			}
			if vs := CompareNetworks(tc.name, ana, num, 1e-12, tc.tol); len(vs) != 0 {
				for _, v := range vs {
					t.Error(v)
				}
			}
			// Both solutions must also be physical: the ladders are passive.
			var r Report
			r.Add(NetworkPhysical(tc.name+" (analytic)", ana, TolPhysical))
			r.Add(NetworkPhysical(tc.name+" (mna)", num, TolPhysical))
			if !r.OK() {
				t.Error(r.String())
			}
		})
	}
}

// TestDifferentialSerialVsParallelEval grades the same seeded batch of
// designs through the EvalPool at several worker counts and demands
// bit-identical objective vectors: parallel evaluation must not perturb the
// optimization trajectory.
func TestDifferentialSerialVsParallelEval(t *testing.T) {
	d := core.NewDesigner(core.NewBuilder(device.Golden()))
	d.Spec.NPoints = 5
	lo, hi := core.DesignBounds()
	rng := rand.New(rand.NewSource(99))
	xs := make([][]float64, 24)
	for k := range xs {
		x := make([]float64, len(lo))
		for i := range x {
			x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		xs[k] = x
	}
	objective := func(x []float64) []float64 {
		ev, err := d.Evaluate(core.DesignFromVector(x))
		if err != nil {
			return []float64{99, 99, 99, 99, 99, 99}
		}
		return ev.Objectives()
	}
	grade := func(workers int) [][]float64 {
		out := make([][]float64, len(xs))
		optim.NewEvalPool(workers).MapVector(objective, xs, out)
		return out
	}
	serial := grade(1)
	for _, workers := range []int{2, 4, 8} {
		par := grade(workers)
		for k := range serial {
			for i := range serial[k] {
				if serial[k][i] != par[k][i] {
					t.Fatalf("workers=%d: objective[%d][%d] = %v, serial %v",
						workers, k, i, par[k][i], serial[k][i])
				}
			}
		}
	}
}

// TestDifferentialCheckpointResume runs the full quick design flow three
// ways — straight through, populating a checkpoint, and resuming from that
// checkpoint — and demands the identical design from all three.
func TestDifferentialCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full design flow")
	}
	opts := gnsslna.Options{Seed: 5, Quick: true}
	straight, err := gnsslna.DesignLNA(opts)
	if err != nil {
		t.Fatalf("straight-through: %v", err)
	}
	ck := filepath.Join(t.TempDir(), "design.ckpt")
	opts.Checkpoint = ck
	first, err := gnsslna.DesignLNA(opts)
	if err != nil {
		t.Fatalf("checkpoint-populating run: %v", err)
	}
	resumed, err := gnsslna.DesignLNA(opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for name, r := range map[string]gnsslna.DesignReport{"populating": first, "resumed": resumed} {
		if r.Snapped != straight.Snapped || r.Design != straight.Design {
			t.Errorf("%s run diverged: %+v vs straight %+v", name, r, straight)
		}
		if r.Gamma != straight.Gamma || r.WorstNFdB != straight.WorstNFdB {
			t.Errorf("%s run grades diverged: gamma %v/%v NF %v/%v",
				name, r.Gamma, straight.Gamma, r.WorstNFdB, straight.WorstNFdB)
		}
	}
}

// TestDifferentialTouchstoneRoundTrip writes frequency-sampled networks in
// all three Touchstone formats and reads them back, including the
// zero-magnitude samples that historically encoded as dB(0) = -Inf.
func TestDifferentialTouchstoneRoundTrip(t *testing.T) {
	grid := ladderGrid()
	elems := []LadderElem{
		{Series: true, L: 6.8e-9}, {C: 1.8e-12}, {Series: true, R: 3.3},
	}
	ladder, err := LadderNetworkAnalytic(elems, grid, 50)
	if err != nil {
		t.Fatal(err)
	}
	zero := &twoport.Network{Z0: 50, Freqs: grid, S: make([]twoport.Mat2, len(grid))}
	for i := range zero.S {
		zero.S[i] = twoport.Mat2{{0, complex(1e-12, 0)}, {complex(1e-12, 0), 0}}
	}
	nets := map[string]*twoport.Network{"ladder": ladder, "near-zero": zero}
	for name, n := range nets {
		for _, format := range []touchstone.Format{touchstone.FormatMA, touchstone.FormatDB, touchstone.FormatRI} {
			var buf bytes.Buffer
			if err := touchstone.Write(&buf, n, format, "verify round trip"); err != nil {
				t.Fatalf("%s/%v: write: %v", name, format, err)
			}
			back, err := touchstone.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%v: read back: %v", name, format, err)
			}
			ctx := fmt.Sprintf("touchstone %s %v", name, format)
			if vs := CompareNetworks(ctx, n, back, 1e-9, 1e-6); len(vs) != 0 {
				for _, v := range vs {
					t.Error(v)
				}
			}
		}
	}
}

// TestDifferentialNetworkAtAgainstDirect spot-checks that Network.At linear
// interpolation reproduces an analytically evaluated ladder mid-grid within
// the local linearization error.
func TestDifferentialNetworkAtAgainstDirect(t *testing.T) {
	elems := []LadderElem{{Series: true, L: 4.7e-9}, {C: 1.2e-12}}
	dense, err := LadderNetworkAnalytic(elems, []float64{1.0e9, 1.05e9}, 50)
	if err != nil {
		t.Fatal(err)
	}
	mid := 1.025e9
	direct, err := LadderNetworkAnalytic(elems, []float64{mid}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d := twoport.MaxAbsDiff(dense.At(mid), direct.S[0]); d > 1e-3 || math.IsNaN(d) {
		t.Fatalf("interpolated vs direct at %g Hz differ by %g", mid, d)
	}
}
