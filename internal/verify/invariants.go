package verify

import (
	"math"
	"math/cmplx"
	"strconv"

	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// MaxSingularValue returns the largest singular value of a 2x2 complex
// matrix, computed from the closed-form eigenvalues of S^H S. For an
// S-matrix this is the worst-case power gain over all incident waves: a
// passive network has MaxSingularValue(S) <= 1.
func MaxSingularValue(s twoport.Mat2) float64 {
	h := s.ConjTranspose().Mul(s) // Hermitian PSD
	a := real(h[0][0])
	d := real(h[1][1])
	b := h[0][1]
	tr2 := (a + d) / 2
	disc := math.Sqrt(((a-d)/2)*((a-d)/2) + real(b)*real(b) + imag(b)*imag(b))
	lmax := tr2 + disc
	if lmax < 0 {
		lmax = 0 // rounding on a near-zero PSD matrix
	}
	return math.Sqrt(lmax)
}

// Passivity checks that the S-matrix has no incident wave with power gain:
// its largest singular value stays within 1+tol. Only meaningful for
// networks built from lossy/lossless passives.
func Passivity(context string, s twoport.Mat2, tol float64) []Violation {
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if !finiteC(s[r][c]) {
				return []Violation{violation("passivity", context, 0,
					"S[%d][%d] = %v is not finite", r, c, s[r][c])}
			}
		}
	}
	if sv := MaxSingularValue(s); sv > 1+tol {
		return []Violation{violation("passivity", context, sv-1-tol,
			"max singular value %.12g > 1 (active)", sv)}
	}
	return nil
}

// Reciprocity checks S12 == S21 within tol, the hallmark of any network of
// reciprocal elements (everything passive in this project: no ferrites, no
// active devices).
func Reciprocity(context string, s twoport.Mat2, tol float64) []Violation {
	d := cmplx.Abs(s[0][1] - s[1][0])
	scale := 1 + math.Max(cmplx.Abs(s[0][1]), cmplx.Abs(s[1][0]))
	if d > tol*scale {
		return []Violation{violation("reciprocity", context, d-tol*scale,
			"|S12 - S21| = %.3g (S12 %v, S21 %v)", d, s[0][1], s[1][0])}
	}
	return nil
}

// ConversionClosure checks that every parameter-representation round trip
// supported by twoport returns to the original S-matrix: S->Z->S, S->Y->S,
// S->ABCD->S, S->T->S and S->h->Z->S. Conversions that are legitimately
// singular for the given network (ErrSingularNetwork) are skipped; a
// conversion that succeeds forward but fails or diverges on the way back is
// a violation.
func ConversionClosure(context string, s twoport.Mat2, z0, tol float64) []Violation {
	var out []Violation
	check := func(name string, back twoport.Mat2, err error) {
		if err != nil {
			out = append(out, violation("closure", context, 0,
				"%s round trip failed: %v", name, err))
			return
		}
		if d := twoport.MaxAbsDiff(s, back); d > tol {
			out = append(out, violation("closure", context, d-tol,
				"%s round trip diverges by %.3g", name, d))
		}
	}

	if z, err := twoport.SToZ(s, z0); err == nil {
		back, err := twoport.ZToS(z, z0)
		check("S->Z->S", back, err)

		// S->Z->h->Z->S exercises the hybrid tables on the same sample.
		if h, err := twoport.ZToH(z); err == nil {
			z2, err := twoport.HToZ(h)
			if err != nil {
				out = append(out, violation("closure", context, 0,
					"Z->h->Z round trip failed: %v", err))
			} else {
				back, err := twoport.ZToS(z2, z0)
				check("S->Z->h->Z->S", back, err)
			}
		}
	}
	if y, err := twoport.SToY(s, z0); err == nil {
		back, err := twoport.YToS(y, z0)
		check("S->Y->S", back, err)
	}
	if a, err := twoport.SToABCD(s, z0); err == nil {
		back, err := twoport.ABCDToS(a, z0)
		check("S->ABCD->S", back, err)
	}
	if t, err := twoport.SToT(s); err == nil {
		back, err := twoport.TToS(t)
		check("S->T->S", back, err)
	}
	return out
}

// FrequencyGrid checks a sweep grid: non-empty, every sample finite and
// non-negative, strictly increasing.
func FrequencyGrid(context string, freqs []float64) []Violation {
	if len(freqs) == 0 {
		return []Violation{violation("grid", context, 0, "empty frequency grid")}
	}
	var out []Violation
	for i, f := range freqs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			out = append(out, violation("grid", context, 0, "freqs[%d] = %g is not finite", i, f))
		}
		if f < 0 {
			out = append(out, violation("grid", context, -f, "freqs[%d] = %g is negative", i, f))
		}
		if i > 0 && f <= freqs[i-1] {
			out = append(out, violation("grid", context, freqs[i-1]-f,
				"freqs[%d] = %g does not increase past %g", i, f, freqs[i-1]))
		}
	}
	return out
}

// NoisePhysical checks the four noise parameters are physically realizable:
// Fmin >= 1 (NF >= 0 dB), Rn >= 0, |GammaOpt| <= 1 (the optimum source is
// realizable), and everything finite.
func NoisePhysical(context string, p noise.Params, tol float64) []Violation {
	var out []Violation
	if math.IsNaN(p.Fmin) || math.IsInf(p.Fmin, 0) || !finiteC(p.GammaOpt) ||
		math.IsNaN(p.Rn) || math.IsInf(p.Rn, 0) {
		return []Violation{violation("noise-physical", context, 0,
			"non-finite noise parameters: Fmin %g, Rn %g, GammaOpt %v", p.Fmin, p.Rn, p.GammaOpt)}
	}
	if p.Fmin < 1-tol {
		out = append(out, violation("noise-physical", context, 1-tol-p.Fmin,
			"Fmin = %.12g < 1 (negative minimum noise figure)", p.Fmin))
	}
	if p.Rn < -tol {
		out = append(out, violation("noise-physical", context, -tol-p.Rn,
			"Rn = %.3g ohm is negative", p.Rn))
	}
	if g := cmplx.Abs(p.GammaOpt); g > 1+tol {
		out = append(out, violation("noise-physical", context, g-1-tol,
			"|GammaOpt| = %.6g > 1 (optimum source outside the Smith chart)", g))
	}
	return out
}

// NoiseFigureDominatesFmin samples source reflection coefficients on a polar
// grid inside the Smith chart and checks NF(gammaS) >= Fmin - tol for each:
// the defining property of the four-parameter model. The grid is
// deterministic so a violation names a reproducible gammaS.
func NoiseFigureDominatesFmin(context string, p noise.Params, tol float64) []Violation {
	var out []Violation
	for _, mag := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		for k := 0; k < 8; k++ {
			if mag == 0 && k > 0 {
				break
			}
			phase := 2 * math.Pi * float64(k) / 8
			gs := cmplx.Rect(mag, phase)
			f := p.Figure(gs)
			if math.IsInf(f, 1) {
				continue // source on the chart edge with Re(Ys) <= 0
			}
			if math.IsNaN(f) {
				out = append(out, violation("nf>=nfmin", context, 0,
					"NF(gammaS=%.3g∠%.0f°) is NaN", mag, phase*180/math.Pi))
				continue
			}
			if f < p.Fmin-tol {
				out = append(out, violation("nf>=nfmin", context, p.Fmin-tol-f,
					"NF(gammaS=%.3g∠%.0f°) = %.9g < Fmin = %.9g",
					mag, phase*180/math.Pi, f, p.Fmin))
			}
		}
	}
	return out
}

// Finite checks that every named value is finite (not NaN, not ±Inf) — the
// blanket guarantee the optimizers rely on over the search boxes.
func Finite(context string, named map[string]float64) []Violation {
	var out []Violation
	for name, v := range named {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out = append(out, violation("finite", context, 0, "%s = %g is not finite", name, v))
		}
	}
	return out
}

// NetworkPhysical runs the grid, passivity and reciprocity checks across
// every sample of a frequency-sampled passive network.
func NetworkPhysical(context string, n *twoport.Network, tol float64) []Violation {
	out := FrequencyGrid(context, n.Freqs)
	for i, s := range n.S {
		ctx := pointContext(context, n.Freqs, i)
		out = append(out, Passivity(ctx, s, tol)...)
		out = append(out, Reciprocity(ctx, s, tol)...)
	}
	return out
}

func pointContext(context string, freqs []float64, i int) string {
	if i < len(freqs) {
		return context + " @ " + formatHz(freqs[i])
	}
	return context
}

func formatHz(f float64) string {
	switch {
	case f >= 1e9:
		return strconv.FormatFloat(f/1e9, 'g', 6, 64) + " GHz"
	case f >= 1e6:
		return strconv.FormatFloat(f/1e6, 'g', 6, 64) + " MHz"
	case f >= 1e3:
		return strconv.FormatFloat(f/1e3, 'g', 6, 64) + " kHz"
	default:
		return strconv.FormatFloat(f, 'g', 6, 64) + " Hz"
	}
}

func finiteC(v complex128) bool {
	return !cmplx.IsNaN(v) && !cmplx.IsInf(v)
}
