package verify

import (
	"fmt"
	"math"
	"math/cmplx"

	"gnsslna/internal/mna"
	"gnsslna/internal/twoport"
)

// CompareMat2 checks two matrices agree elementwise within tol (absolute on
// a 1 + max-magnitude scale), reporting the largest deviation.
func CompareMat2(context string, a, b twoport.Mat2, tol float64) []Violation {
	d := twoport.MaxAbsDiff(a, b)
	scale := 1.0
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if m := absC(a[r][c]); m > scale {
				scale = m
			}
		}
	}
	if d > tol*scale {
		return []Violation{violation("differential", context, d-tol*scale,
			"matrices diverge by %.3g (tol %.3g)", d, tol*scale)}
	}
	return nil
}

// CompareNetworks checks two frequency-sampled networks are the same
// measurement: same Z0, same grid (within fTol relative), and S-matrices
// within tol at every sample.
func CompareNetworks(context string, a, b *twoport.Network, fTol, tol float64) []Violation {
	var out []Violation
	if a.Z0 != b.Z0 {
		out = append(out, violation("differential", context, 0,
			"Z0 mismatch: %g vs %g", a.Z0, b.Z0))
	}
	if a.Len() != b.Len() {
		return append(out, violation("differential", context, 0,
			"length mismatch: %d vs %d samples", a.Len(), b.Len()))
	}
	for i := range a.Freqs {
		fa, fb := a.Freqs[i], b.Freqs[i]
		if d := relDiff(fa, fb); d > fTol {
			out = append(out, violation("differential", context, d-fTol,
				"freqs[%d] differ: %g vs %g", i, fa, fb))
			continue
		}
		out = append(out, CompareMat2(pointContext(context, a.Freqs, i), a.S[i], b.S[i], tol)...)
	}
	return out
}

// LadderElem is one rung of an R+L+C ladder network: the three values form
// a series connection (zero L and C terms are omitted, so {R: 50} is a pure
// resistor), inserted in series with the signal path or in shunt to ground.
type LadderElem struct {
	// Series selects in-path insertion; false puts the branch to ground.
	Series bool
	// R, L, C are the branch element values (ohm, henry, farad); zero
	// values are omitted from the branch.
	R, L, C float64
}

// LadderNetworkAnalytic evaluates the ladder by the chain-matrix cascade:
// the product of SeriesZ/ShuntY factors converted to S at each frequency.
// This is the composition path the design flow uses everywhere.
func LadderNetworkAnalytic(elems []LadderElem, freqs []float64, z0 float64) (*twoport.Network, error) {
	mats := make([]twoport.Mat2, len(freqs))
	for k, f := range freqs {
		a := twoport.Identity2()
		for _, e := range elems {
			z := branchZ(e, f)
			if e.Series {
				a = a.Mul(twoport.SeriesZ(z))
			} else {
				a = a.Mul(twoport.ShuntY(1 / z))
			}
		}
		s, err := twoport.ABCDToS(a, z0)
		if err != nil {
			return nil, fmt.Errorf("verify: ladder cascade at %g Hz: %w", f, err)
		}
		mats[k] = s
	}
	return twoport.NewNetwork(z0, freqs, mats)
}

// LadderNetworkMNA evaluates the same ladder through the Modified Nodal
// Analysis engine: each R, L and C is stamped individually (series branches
// through internal nodes) and the dense complex solver computes S directly
// from terminated port drives. Sharing no composition code with the
// chain-matrix path makes the two a true differential pair.
func LadderNetworkMNA(elems []LadderElem, freqs []float64, z0 float64) (*twoport.Network, error) {
	c := mna.New()
	node := "in"
	next := 0
	fresh := func() string {
		next++
		return fmt.Sprintf("n%d", next)
	}
	// stampBranch lays R, L, C in series from a to b through fresh
	// internal nodes, skipping zero-valued parts.
	stampBranch := func(a, b string, e LadderElem) {
		type part struct {
			kind byte
			val  float64
		}
		var parts []part
		if e.R != 0 {
			parts = append(parts, part{'R', e.R})
		}
		if e.L != 0 {
			parts = append(parts, part{'L', e.L})
		}
		if e.C != 0 {
			parts = append(parts, part{'C', e.C})
		}
		cur := a
		for i, p := range parts {
			to := b
			if i < len(parts)-1 {
				to = fresh()
			}
			switch p.kind {
			case 'R':
				c.AddR(cur, to, p.val)
			case 'L':
				c.AddL(cur, to, p.val)
			case 'C':
				c.AddC(cur, to, p.val)
			}
			cur = to
		}
	}
	for _, e := range elems {
		if e.Series {
			to := fresh()
			stampBranch(node, to, e)
			node = to
		} else {
			stampBranch(node, mna.Ground, e)
		}
	}
	// A shunt-only ladder leaves node == "in": both ports land on the same
	// node, which the terminated-drive SParams2 formulation handles exactly.
	return c.SParams2(freqs, "in", node, z0)
}

// branchZ is the series R+L+C branch impedance at f (zero parts omitted).
func branchZ(e LadderElem, f float64) complex128 {
	w := 2 * math.Pi * f
	z := complex(e.R, 0)
	if e.L != 0 {
		z += complex(0, w*e.L)
	}
	if e.C != 0 {
		z += 1 / complex(0, w*e.C)
	}
	return z
}

func absC(v complex128) float64 { return cmplx.Abs(v) }

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d / scale
}
