package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/rfpassive"
	"gnsslna/internal/twoport"
)

// sweepGrid is the deterministic frequency corpus the invariant sweeps run
// on: DC-adjacent through K-band, well past the design band on both sides.
func sweepGrid() []float64 {
	return mathx.Logspace(50e6, 20e9, 24)
}

// elementCorpus enumerates named passive elements spanning the component
// models the design flow composes from.
func elementCorpus() map[string]rfpassive.Element {
	tbl := &rfpassive.DispersionTable{
		F: []float64{100e6, 500e6, 1e9, 2e9, 5e9},
		V: []float64{0.12, 0.28, 0.45, 0.7, 1.3},
	}
	ind := rfpassive.NewChipInductor(6.8e-9, rfpassive.Series)
	ind.ESRTable = tbl
	return map[string]rfpassive.Element{
		"series 2.2nH":        rfpassive.NewChipInductor(2.2e-9, rfpassive.Series),
		"shunt 18nH":          rfpassive.NewChipInductor(18e-9, rfpassive.Shunt),
		"series 6.8nH tab":    ind,
		"series 2.2pF":        rfpassive.NewChipCapacitor(2.2e-12, rfpassive.Series),
		"shunt 10pF":          rfpassive.NewChipCapacitor(10e-12, rfpassive.Shunt),
		"series 50ohm":        rfpassive.NewChipResistor(50, rfpassive.Series),
		"shunt 1kohm":         rfpassive.NewChipResistor(1e3, rfpassive.Shunt),
		"input-match cascade": inputMatchChain(),
	}
}

// inputMatchChain is a representative L-C-R composite like the amplifier's
// matching sections.
func inputMatchChain() rfpassive.Chain {
	return rfpassive.Chain{
		rfpassive.NewChipCapacitor(8.2e-12, rfpassive.Series),
		rfpassive.NewChipInductor(5.6e-9, rfpassive.Series),
		rfpassive.NewChipCapacitor(1.0e-12, rfpassive.Shunt),
		rfpassive.NewChipResistor(560, rfpassive.Shunt),
	}
}

// TestInvariantPassiveElements sweeps the element corpus: every component
// model must stay passive and reciprocal across the whole grid — a lossy
// chip part that amplifies or breaks symmetry is a model bug.
func TestInvariantPassiveElements(t *testing.T) {
	var r Report
	for name, e := range elementCorpus() {
		for _, f := range sweepGrid() {
			s, err := twoport.ABCDToS(e.ABCD(f), 50)
			if err != nil {
				t.Fatalf("%s: ABCD->S at %g Hz: %v", name, f, err)
			}
			ctx := fmt.Sprintf("%s @ %s", name, formatHz(f))
			r.Add(Passivity(ctx, s, TolPhysical))
			r.Add(Reciprocity(ctx, s, TolPhysical))
		}
	}
	if !r.OK() {
		t.Fatal(r.String())
	}
}

// TestInvariantPassiveElementNoise checks the thermal-noise description of
// every corpus element: physical noise parameters and NF >= Fmin over the
// Smith chart, at in-band and out-of-band spot frequencies.
func TestInvariantPassiveElementNoise(t *testing.T) {
	var r Report
	for name, e := range elementCorpus() {
		for _, f := range []float64{0.4e9, 1.575e9, 5e9} {
			p, err := e.Noisy(f).NoiseParams(50)
			if err != nil {
				t.Fatalf("%s: noise params at %g Hz: %v", name, f, err)
			}
			ctx := fmt.Sprintf("%s @ %s", name, formatHz(f))
			r.Add(NoisePhysical(ctx, p, TolPhysical))
			r.Add(NoiseFigureDominatesFmin(ctx, p, TolPhysical))
		}
	}
	if !r.OK() {
		t.Fatal(r.String())
	}
}

// TestInvariantDeviceNoise checks the embedded transistor's two-temperature
// noise model across a bias grid: four physical parameters and the
// NF(gammaS) >= Fmin bound everywhere.
func TestInvariantDeviceNoise(t *testing.T) {
	dev := device.Golden()
	var r Report
	for _, vgs := range []float64{0.35, 0.48, 0.65} {
		for _, vds := range []float64{1.5, 3.0, 4.2} {
			b := device.Bias{Vgs: vgs, Vds: vds}
			for _, f := range []float64{0.8e9, 1.575e9, 3e9, 6e9} {
				p, err := dev.NoiseParamsAt(b, f, 50)
				if err != nil {
					t.Fatalf("noise params at (%.2f, %.2f) V, %g Hz: %v", vgs, vds, f, err)
				}
				ctx := fmt.Sprintf("golden pHEMT (%.2f, %.2f) V @ %s", vgs, vds, formatHz(f))
				r.Add(NoisePhysical(ctx, p, TolPhysical))
				r.Add(NoiseFigureDominatesFmin(ctx, p, TolPhysical))
			}
		}
	}
	if !r.OK() {
		t.Fatal(r.String())
	}
}

// TestInvariantConversionClosure drives the S/Y/Z/h/ABCD/T representation
// round trips over structured samples plus a seeded random corpus, including
// the device's own S-parameters.
func TestInvariantConversionClosure(t *testing.T) {
	var r Report

	structured := map[string]twoport.Mat2{
		"thru":            {{0, 1}, {1, 0}},
		"series 50ohm":    mustS(t, twoport.SeriesZ(50), 50),
		"shunt 20mS":      mustS(t, twoport.ShuntY(0.02), 50),
		"series inductor": mustS(t, twoport.SeriesZ(complex(0.4, 70)), 50),
		"attenuator":      {{0.05, 0.5}, {0.5, 0.05}},
		"mismatched":      {{complex(0.4, -0.3), complex(0.2, 0.6)}, {complex(0.2, 0.6), complex(-0.5, 0.1)}},
	}
	for name, s := range structured {
		r.Add(ConversionClosure(name, s, 50, 1e-8))
	}

	dev := device.Golden()
	for _, f := range []float64{0.5e9, 1.575e9, 6e9} {
		s, err := dev.SAt(device.Bias{Vgs: 0.48, Vds: 3}, f, 50)
		if err != nil {
			t.Fatalf("device S at %g Hz: %v", f, err)
		}
		r.Add(ConversionClosure("golden pHEMT @ "+formatHz(f), s, 50, 1e-8))
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		var s twoport.Mat2
		for rr := 0; rr < 2; rr++ {
			for c := 0; c < 2; c++ {
				s[rr][c] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
				if i%2 == 1 {
					s[rr][c] *= 3 // active-magnitude samples
				}
			}
		}
		r.Add(ConversionClosure(fmt.Sprintf("random #%d", i), s, 50, 1e-7))
	}

	if !r.OK() {
		t.Fatal(r.String())
	}
}

func mustS(t *testing.T, abcd twoport.Mat2, z0 float64) twoport.Mat2 {
	t.Helper()
	s, err := twoport.ABCDToS(abcd, z0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInvariantSweepGrids checks every frequency grid the flow builds —
// linear in-band sweeps, log stability scans, the design band itself — for
// strict monotonicity and finiteness.
func TestInvariantSweepGrids(t *testing.T) {
	var r Report
	lo, hi := core.DesignBand()
	r.Add(FrequencyGrid("design band edges", []float64{lo, hi}))
	r.Add(FrequencyGrid("in-band linspace", mathx.Linspace(lo, hi, 11)))
	r.Add(FrequencyGrid("stability logspace", mathx.Logspace(0.2e9, 6e9, 9)))
	r.Add(FrequencyGrid("sweep corpus", sweepGrid()))
	if !r.OK() {
		t.Fatal(r.String())
	}
}

// TestInvariantFiniteOverDesignBox evaluates the lumped design box — all 64
// corners, the center, and seeded interior samples — and demands every
// graded objective be finite. Unbuildable designs may return an error, but a
// successful evaluation must never hand the optimizer NaN or Inf.
func TestInvariantFiniteOverDesignBox(t *testing.T) {
	d := core.NewDesigner(core.NewBuilder(device.Golden()))
	d.Spec.NPoints = 5
	lo, hi := core.DesignBounds()
	var r Report
	graded, failed := 0, 0
	for _, x := range boxSamples(lo, hi, 24) {
		ev, err := d.Evaluate(core.DesignFromVector(x))
		if err != nil {
			failed++
			continue
		}
		graded++
		ctx := fmt.Sprintf("lumped design %v", x)
		named := map[string]float64{"IdsA": ev.IdsA, "PdcW": ev.PdcW}
		for i, v := range ev.Objectives() {
			named[core.ObjectiveNames()[i]] = v
		}
		r.Add(Finite(ctx, named))
	}
	if graded == 0 {
		t.Fatalf("no design in the box could be evaluated (%d failures)", failed)
	}
	if !r.OK() {
		t.Fatal(r.String())
	}
}

// TestInvariantFiniteOverDistributedBox is the same guarantee over the
// 7-dimensional distributed (microstrip) search box.
func TestInvariantFiniteOverDistributedBox(t *testing.T) {
	d := core.NewDesigner(core.NewBuilder(device.Golden()))
	d.Spec.NPoints = 5
	lo, hi := core.DistributedBounds()
	var r Report
	graded, failed := 0, 0
	for _, x := range boxSamples(lo, hi, 24) {
		ev, err := d.EvaluateDistributed(core.DistributedFromVector(x))
		if err != nil {
			failed++
			continue
		}
		graded++
		ctx := fmt.Sprintf("distributed design %v", x)
		named := map[string]float64{"IdsA": ev.IdsA, "PdcW": ev.PdcW}
		for i, v := range ev.Objectives() {
			named[core.ObjectiveNames()[i]] = v
		}
		r.Add(Finite(ctx, named))
	}
	if graded == 0 {
		t.Fatalf("no design in the box could be evaluated (%d failures)", failed)
	}
	if !r.OK() {
		t.Fatal(r.String())
	}
}

// boxSamples returns every corner of the [lo, hi] box, its center, and
// nRandom seeded interior points.
func boxSamples(lo, hi []float64, nRandom int) [][]float64 {
	n := len(lo)
	var out [][]float64
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for i := range x {
			if mask&(1<<i) != 0 {
				x[i] = hi[i]
			} else {
				x[i] = lo[i]
			}
		}
		out = append(out, x)
	}
	center := make([]float64, n)
	for i := range center {
		center[i] = (lo[i] + hi[i]) / 2
	}
	out = append(out, center)
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < nRandom; k++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		out = append(out, x)
	}
	return out
}
