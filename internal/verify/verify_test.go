package verify

import (
	"math"
	"strings"
	"testing"

	"gnsslna/internal/twoport"
)

func TestMaxSingularValueKnown(t *testing.T) {
	id := twoport.Identity2()
	if sv := MaxSingularValue(id); math.Abs(sv-1) > 1e-12 {
		t.Errorf("sigma_max(I) = %g, want 1", sv)
	}
	if sv := MaxSingularValue(id.Scale(0.5)); math.Abs(sv-0.5) > 1e-12 {
		t.Errorf("sigma_max(0.5 I) = %g, want 0.5", sv)
	}
	// A matched 2:1 "amplifier": S21 = 2, everything else 0. Singular
	// values are {2, 0}.
	amp := twoport.Mat2{{0, 0}, {2, 0}}
	if sv := MaxSingularValue(amp); math.Abs(sv-2) > 1e-12 {
		t.Errorf("sigma_max(gain 2) = %g, want 2", sv)
	}
	// Non-normal upper-triangular sample: singular values of [[1,1],[0,1]]
	// are the golden-ratio pair, sigma_max = (1+sqrt(5))/2.
	tri := twoport.Mat2{{1, 1}, {0, 1}}
	want := (1 + math.Sqrt(5)) / 2
	if sv := MaxSingularValue(tri); math.Abs(sv-want) > 1e-12 {
		t.Errorf("sigma_max(shear) = %g, want %g", sv, want)
	}
}

func TestPassivityFlagsActiveNetwork(t *testing.T) {
	amp := twoport.Mat2{{0, 0}, {2, 0}}
	if vs := Passivity("gain stage", amp, TolStrict); len(vs) != 1 {
		t.Fatalf("active network not flagged: %v", vs)
	}
	att := twoport.Mat2{{0, 0.5}, {0.5, 0}}
	if vs := Passivity("attenuator", att, TolStrict); len(vs) != 0 {
		t.Errorf("passive attenuator flagged: %v", vs)
	}
	nan := twoport.Mat2{{complex(math.NaN(), 0), 0}, {0, 0}}
	if vs := Passivity("NaN", nan, TolStrict); len(vs) != 1 {
		t.Errorf("non-finite S not flagged: %v", vs)
	}
}

func TestReciprocityFlagsAsymmetry(t *testing.T) {
	sym := twoport.Mat2{{0.1, 0.7}, {0.7, 0.2}}
	if vs := Reciprocity("sym", sym, TolStrict); len(vs) != 0 {
		t.Errorf("reciprocal network flagged: %v", vs)
	}
	asym := twoport.Mat2{{0.1, 0.7}, {0.9, 0.2}}
	if vs := Reciprocity("asym", asym, TolStrict); len(vs) != 1 {
		t.Errorf("non-reciprocal network not flagged: %v", vs)
	}
}

func TestFrequencyGridViolations(t *testing.T) {
	if vs := FrequencyGrid("good", []float64{1e9, 2e9}); len(vs) != 0 {
		t.Errorf("good grid flagged: %v", vs)
	}
	if vs := FrequencyGrid("empty", nil); len(vs) != 1 {
		t.Errorf("empty grid not flagged: %v", vs)
	}
	bad := []float64{1e9, 1e9, math.NaN(), -2}
	vs := FrequencyGrid("bad", bad)
	if len(vs) < 3 {
		t.Errorf("degenerate grid under-reported: %v", vs)
	}
}

func TestReportRendering(t *testing.T) {
	var r Report
	r.Add(nil)
	r.Add(Passivity("gain", twoport.Mat2{{0, 0}, {2, 0}}, TolStrict))
	if r.OK() {
		t.Fatal("report with violations claims OK")
	}
	if r.Checks() != 2 {
		t.Errorf("checks = %d, want 2", r.Checks())
	}
	s := r.String()
	if !strings.Contains(s, "passivity") || !strings.Contains(s, "gain") {
		t.Errorf("report rendering lacks context: %q", s)
	}
}
