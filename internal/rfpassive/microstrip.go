// Package rfpassive models the passive elements of the preamplifier with
// the frequency dispersion of their parameters (Q, ESR, effective
// permittivity, ...) that the paper's third contribution emphasizes:
// microstrip transmission lines (Hammerstad-Jensen statics, Kobayashi
// dispersion, conductor and dielectric loss), microstrip T-junction
// splitters, and chip inductors/capacitors/resistors with their parasitic
// networks. Every element can render itself as a noiseless chain matrix or
// as a noisy two-port at its physical temperature.
package rfpassive

import (
	"errors"
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// Physical constants.
const (
	c0    = 299792458.0    // speed of light, m/s
	mu0   = 4e-7 * math.Pi // vacuum permeability, H/m
	eta0  = 376.730313668  // impedance of free space, ohm
	rhoCu = 1.68e-8        // copper resistivity, ohm*m
)

// Substrate describes a microstrip substrate.
type Substrate struct {
	// Er is the relative permittivity of the dielectric.
	Er float64
	// H is the substrate height in meters.
	H float64
	// TanD is the dielectric loss tangent.
	TanD float64
	// Rho is the conductor resistivity in ohm*m (copper if zero).
	Rho float64
	// Temp is the physical temperature in kelvin (290 K if zero).
	Temp float64
}

// FR4 returns a lossy FR-4 substrate typical of a low-cost GNSS preamplifier
// board (1.5 mm core).
func FR4() Substrate {
	return Substrate{Er: 4.4, H: 1.5e-3, TanD: 0.02, Rho: rhoCu, Temp: mathx.T0}
}

// RogersRO4350 returns a low-loss RF substrate (0.762 mm).
func RogersRO4350() Substrate {
	return Substrate{Er: 3.66, H: 0.762e-3, TanD: 0.0037, Rho: rhoCu, Temp: mathx.T0}
}

func (s Substrate) rho() float64 {
	if s.Rho == 0 {
		return rhoCu
	}
	return s.Rho
}

func (s Substrate) temp() float64 {
	if s.Temp == 0 {
		return mathx.T0
	}
	return s.Temp
}

// StaticParams returns the quasi-static effective permittivity and
// characteristic impedance of a microstrip of width w on the substrate,
// using the Hammerstad-Jensen model.
func (s Substrate) StaticParams(w float64) (epsEff, z0 float64) {
	u := w / s.H
	a := 1 +
		math.Log((math.Pow(u, 4)+math.Pow(u/52, 2))/(math.Pow(u, 4)+0.432))/49 +
		math.Log(1+math.Pow(u/18.1, 3))/18.7
	b := 0.564 * math.Pow((s.Er-0.9)/(s.Er+3), 0.053)
	epsEff = (s.Er+1)/2 + (s.Er-1)/2*math.Pow(1+10/u, -a*b)
	f1 := 6 + (2*math.Pi-6)*math.Exp(-math.Pow(30.666/u, 0.7528))
	z01 := eta0 / (2 * math.Pi) * math.Log(f1/u+math.Sqrt(1+4/(u*u)))
	return epsEff, z01 / math.Sqrt(epsEff)
}

// EpsEff returns the dispersive effective permittivity at frequency f using
// the Kobayashi (1988) closed-form model. With dispersion disabled it
// returns the quasi-static value.
func (s Substrate) EpsEff(w, f float64, dispersion bool) float64 {
	e0, _ := s.StaticParams(w)
	if !dispersion || f <= 0 {
		return e0
	}
	u := w / s.H
	// TM0 surface-wave resonance frequency.
	num := math.Atan(s.Er * math.Sqrt((e0-1)/(s.Er-e0)))
	fk := c0 * num / (2 * math.Pi * s.H * math.Sqrt(s.Er-e0))
	f50 := fk / (0.75 + (0.75-0.332/math.Pow(s.Er, 1.73))*u)
	m0 := 1 + 1/(1+math.Sqrt(u)) + 0.32*math.Pow(1/(1+math.Sqrt(u)), 3)
	mc := 1.0
	if u <= 0.7 {
		mc = 1 + 1.4/(1+u)*(0.15-0.235*math.Exp(-0.45*f/f50))
	}
	m := m0 * mc
	if m > 2.32 {
		m = 2.32
	}
	return s.Er - (s.Er-e0)/(1+math.Pow(f/f50, m))
}

// Z0At returns the dispersive characteristic impedance at frequency f,
// scaling the quasi-static impedance with the permittivity dispersion.
func (s Substrate) Z0At(w, f float64, dispersion bool) float64 {
	e0, z0 := s.StaticParams(w)
	if !dispersion {
		return z0
	}
	ef := s.EpsEff(w, f, true)
	// Yamashita-style impedance dispersion: Z scales as sqrt(e0/ef) about
	// the static value.
	return z0 * math.Sqrt(e0/ef)
}

// AlphaConductor returns the conductor attenuation in Np/m at f for a line
// of width w.
func (s Substrate) AlphaConductor(w, f float64) float64 {
	if f <= 0 {
		return 0
	}
	rs := math.Sqrt(math.Pi * f * mu0 * s.rho()) // surface resistance
	_, z0 := s.StaticParams(w)
	return rs / (z0 * w)
}

// AlphaDielectric returns the dielectric attenuation in Np/m at f for a
// line of width w, including the filling-factor correction.
func (s Substrate) AlphaDielectric(w, f float64, dispersion bool) float64 {
	if f <= 0 || s.TanD == 0 {
		return 0
	}
	ef := s.EpsEff(w, f, dispersion)
	if s.Er == 1 {
		return 0
	}
	return math.Pi * f / c0 * s.Er * (ef - 1) * s.TanD / (math.Sqrt(ef) * (s.Er - 1))
}

// WidthForZ0 synthesizes the line width giving characteristic impedance z0
// (quasi-static) on the substrate by bisection.
func (s Substrate) WidthForZ0(z0 float64) (float64, error) {
	if z0 <= 0 {
		return 0, fmt.Errorf("rfpassive: WidthForZ0 requires positive impedance, got %g", z0)
	}
	lo, hi := 0.02*s.H, 30*s.H
	_, zLo := s.StaticParams(lo) // narrow line -> high impedance
	_, zHi := s.StaticParams(hi)
	if z0 > zLo || z0 < zHi {
		return 0, fmt.Errorf("rfpassive: Z0 = %g ohm outside synthesizable range [%.1f, %.1f]", z0, zHi, zLo)
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi)
		_, zm := s.StaticParams(mid)
		if zm > z0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// Line is a microstrip transmission-line element.
type Line struct {
	// Sub is the substrate the line is printed on.
	Sub Substrate
	// W is the strip width in meters.
	W float64
	// Len is the physical length in meters.
	Len float64
	// Dispersion enables the frequency-dispersive permittivity model.
	Dispersion bool
}

var _ Element = Line{}

// NewLine50 builds a line of the given electrical length (degrees at fRef)
// with quasi-static impedance z0 on the substrate.
func NewLine50(sub Substrate, z0, degAtRef, fRef float64) (Line, error) {
	w, err := sub.WidthForZ0(z0)
	if err != nil {
		return Line{}, err
	}
	e0 := sub.EpsEff(w, fRef, true)
	lambda := c0 / (fRef * math.Sqrt(e0))
	return Line{Sub: sub, W: w, Len: degAtRef / 360 * lambda, Dispersion: true}, nil
}

// Gamma returns the complex propagation constant (Np/m, rad/m) at f.
func (l Line) Gamma(f float64) complex128 {
	ef := l.Sub.EpsEff(l.W, f, l.Dispersion)
	beta := 2 * math.Pi * f * math.Sqrt(ef) / c0
	alpha := l.Sub.AlphaConductor(l.W, f) + l.Sub.AlphaDielectric(l.W, f, l.Dispersion)
	return complex(alpha, beta)
}

// Zc returns the characteristic impedance at f.
func (l Line) Zc(f float64) complex128 {
	return complex(l.Sub.Z0At(l.W, f, l.Dispersion), 0)
}

// Q returns the line quality factor beta/(2 alpha) at f.
func (l Line) Q(f float64) float64 {
	g := l.Gamma(f)
	if real(g) == 0 {
		return math.Inf(1)
	}
	return imag(g) / (2 * real(g))
}

// ABCD returns the chain matrix of the line at f.
func (l Line) ABCD(f float64) twoport.Mat2 {
	return twoport.LineABCD(l.Zc(f), l.Gamma(f), l.Len)
}

// Noisy returns the line as a noisy two-port at its substrate temperature.
func (l Line) Noisy(f float64) noise.TwoPort {
	tp, err := noise.PassiveFromABCD(l.ABCD(f), l.Sub.temp())
	if err != nil {
		// A transmission line always has a valid Y matrix except at exact
		// zero length; treat that as a noiseless through.
		return noise.Noiseless(twoport.Identity2())
	}
	return tp
}

// String describes the line.
func (l Line) String() string {
	_, z0 := l.Sub.StaticParams(l.W)
	return fmt.Sprintf("MLIN w=%.3gmm l=%.3gmm (Z0~%.1f)", l.W*1e3, l.Len*1e3, z0)
}

// ErrNotRealizable reports a component request outside the model's valid
// parameter range.
var ErrNotRealizable = errors.New("rfpassive: element not realizable")
