package rfpassive

import (
	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// CompiledChain is a Chain lowered to a flat recipe for grid-batched
// evaluation. Compilation classifies each element once: the lumped chip
// models, tees and shunt branches all reduce to an elementary series-Z or
// shunt-Y factor per frequency, which the band loop applies with the
// specialized noise.CascadeSeries/CascadeShunt ops instead of the generic
// 2x2 cascade-plus-congruence. Anything else (nested Chains, foreign
// Element implementations) keeps the generic per-point path.
//
// The compiled result is value-exact (==) against Chain.Noisy at every
// frequency: the elementary ops reproduce the generic arithmetic for finite
// operands (see internal/noise/band.go), and any non-finite intermediate
// falls back to the generic cascade for the rest of the chain. The
// internal/verify differential suite enforces this over the element corpus.
type CompiledChain struct {
	steps []chainStep
}

// stepKind classifies how a compiled step contributes its two-port factor.
type stepKind uint8

const (
	// stepGeneric cascades elem.Noisy(f) with the generic algebra.
	stepGeneric stepKind = iota
	// stepSeries contributes a noisy series impedance z(f) at temp.
	stepSeries
	// stepShunt contributes a noisy shunt admittance y(f) at temp.
	stepShunt
)

type chainStep struct {
	kind stepKind
	// elem is always retained: generic steps evaluate it directly, and
	// elementary steps fall back to it on non-finite operands.
	elem Element
	// zy yields the series impedance (stepSeries) or shunt admittance
	// (stepShunt) at f.
	zy func(f float64) complex128
	// temp is the resolved physical temperature in kelvin.
	temp float64
}

// CompileChain lowers ch to its batched form. The Chain itself is not
// retained; re-compile after mutating element parameters.
func CompileChain(ch Chain) *CompiledChain {
	cc := &CompiledChain{steps: make([]chainStep, 0, len(ch))}
	for _, e := range ch {
		cc.steps = append(cc.steps, compileElement(e))
	}
	return cc
}

func compileElement(e Element) chainStep {
	switch el := e.(type) {
	case Inductor:
		return lumpedStep(e, el.Orient, el.Impedance, el.Temp)
	case Capacitor:
		return lumpedStep(e, el.Orient, el.Impedance, el.Temp)
	case Resistor:
		return lumpedStep(e, el.Orient, el.Impedance, el.Temp)
	case Tee:
		// Freeze the geometry-only junction capacitance so the band loop
		// skips the Hammerstad fit per point (JunctionCapacitance returns
		// the stored value unchanged, so this is exact).
		el.CJunction = el.JunctionCapacitance()
		return chainStep{kind: stepShunt, elem: el, zy: el.TotalShuntY, temp: el.Sub.temp()}
	case ShuntBranch:
		return chainStep{
			kind: stepShunt,
			elem: el,
			zy:   func(f float64) complex128 { return 1 / el.Impedance(f) },
			temp: resolveTemp(el.Temp),
		}
	default:
		return chainStep{kind: stepGeneric, elem: e}
	}
}

func lumpedStep(e Element, o Orientation, imp func(float64) complex128, temp float64) chainStep {
	t := resolveTemp(temp)
	if o == Shunt {
		return chainStep{
			kind: stepShunt,
			elem: e,
			zy:   func(f float64) complex128 { return 1 / imp(f) },
			temp: t,
		}
	}
	return chainStep{kind: stepSeries, elem: e, zy: imp, temp: t}
}

func resolveTemp(t float64) float64 {
	if t == 0 {
		return mathx.T0
	}
	return t
}

// NoisyAt returns the cascade as a noisy two-port at f, equal (==) to the
// uncompiled Chain.Noisy(f).
func (cc *CompiledChain) NoisyAt(f float64) noise.TwoPort {
	n := noise.Noiseless(twoport.Identity2())
	for i := range cc.steps {
		st := &cc.steps[i]
		if st.kind == stepGeneric || !n.Finite() {
			n = n.Cascade(st.elem.Noisy(f))
			continue
		}
		v := st.zy(f)
		if !finiteC(v) {
			n = n.Cascade(st.elem.Noisy(f))
			continue
		}
		// The normalization mirrors noise.SeriesZ/ShuntY exactly:
		// real(v)*temp/T0 in this operation order.
		w := real(v) * st.temp / mathx.T0
		if st.kind == stepSeries {
			n = n.CascadeSeries(v, w)
		} else {
			n = n.CascadeShunt(v, w)
		}
	}
	return n
}

// NoisyBand writes the cascade's noisy two-port at each frequency into dst
// (same length as freqs) and returns dst.
func (cc *CompiledChain) NoisyBand(dst []noise.TwoPort, freqs []float64) []noise.TwoPort {
	for i, f := range freqs {
		dst[i] = cc.NoisyAt(f)
	}
	return dst
}

// ABCDAt returns the chain matrix of the cascade at f, equal (==) to the
// uncompiled Chain.ABCD(f). Elementary steps use the specialized
// twoport.MulSeriesZ/MulShuntY products.
func (cc *CompiledChain) ABCDAt(f float64) twoport.Mat2 {
	a := twoport.Identity2()
	for i := range cc.steps {
		st := &cc.steps[i]
		if st.kind == stepGeneric || !finiteMat(a) {
			a = a.Mul(st.elem.ABCD(f))
			continue
		}
		v := st.zy(f)
		if !finiteC(v) {
			a = a.Mul(st.elem.ABCD(f))
			continue
		}
		if st.kind == stepSeries {
			a = twoport.MulSeriesZ(a, v)
		} else {
			a = twoport.MulShuntY(a, v)
		}
	}
	return a
}

// ABCDBand writes the cascade's chain matrix at each frequency into dst.
func (cc *CompiledChain) ABCDBand(dst []twoport.Mat2, freqs []float64) []twoport.Mat2 {
	for i, f := range freqs {
		dst[i] = cc.ABCDAt(f)
	}
	return dst
}

func finiteC(v complex128) bool {
	re, im := real(v), imag(v)
	return re-re == 0 && im-im == 0
}

func finiteMat(m twoport.Mat2) bool {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !finiteC(m[i][j]) {
				return false
			}
		}
	}
	return true
}
