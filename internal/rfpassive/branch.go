package rfpassive

import (
	"fmt"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// Impedancer is any one-port element exposing a frequency-dependent
// impedance (chip inductors, capacitors, resistors).
type Impedancer interface {
	Impedance(f float64) complex128
}

// ShuntBranch is a series connection of one-port elements hung from the
// signal path to ground — e.g. the classic R+L low-frequency stabilizing
// load whose inductor lifts the resistor out of the band.
type ShuntBranch struct {
	// Parts are the series-connected one-ports of the branch.
	Parts []Impedancer
	// Temp is the branch physical temperature (290 K if zero).
	Temp float64
}

var _ Element = ShuntBranch{}

// Impedance returns the branch impedance at f.
func (s ShuntBranch) Impedance(f float64) complex128 {
	var z complex128
	for _, p := range s.Parts {
		z += p.Impedance(f)
	}
	return z
}

// ABCD returns the chain matrix of the shunt branch at f.
func (s ShuntBranch) ABCD(f float64) twoport.Mat2 {
	return twoport.ShuntY(1 / s.Impedance(f))
}

// Noisy returns the branch with its thermal noise at f.
func (s ShuntBranch) Noisy(f float64) noise.TwoPort {
	t := s.Temp
	if t == 0 {
		t = mathx.T0
	}
	return noise.ShuntY(1/s.Impedance(f), t)
}

// String describes the branch.
func (s ShuntBranch) String() string {
	return fmt.Sprintf("shunt branch (%d series parts)", len(s.Parts))
}

// StabilizerRL builds the standard low-frequency stabilizing load: r ohms
// in series with l henries, shunted to ground. In band the inductive
// reactance isolates the resistor; below the band the resistor damps the
// stage.
func StabilizerRL(r, l float64) ShuntBranch {
	return ShuntBranch{
		Parts: []Impedancer{
			NewChipResistor(r, Shunt),
			NewChipInductor(l, Shunt),
		},
		Temp: mathx.T0,
	}
}
