package rfpassive

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func TestTeeJunctionCapacitancePositive(t *testing.T) {
	sub := FR4()
	w, _ := sub.WidthForZ0(50)
	tee := Tee{Sub: sub, WMain: w, WBranch: w / 3, BranchLoad: complex(1e9, 0)}
	cj := tee.JunctionCapacitance()
	if cj <= 0 || cj > 1e-12 {
		t.Errorf("junction capacitance = %g F, want small positive (fF range)", cj)
	}
}

func TestBiasFeedIsTransparentInBand(t *testing.T) {
	// A well-designed bias feed perturbs the through path by well under
	// half a dB across the GNSS band.
	sub := RogersRO4350()
	w, _ := sub.WidthForZ0(50)
	feed := NewChipInductor(68e-9, Series) // high impedance at 1.1-1.7 GHz
	bypass := NewChipCapacitor(100e-12, Shunt)
	tee := BiasFeed(sub, w, feed, bypass, 5)
	for _, f := range []float64{1.1e9, 1.4e9, 1.7e9} {
		s, err := twoport.ABCDToS(tee.ABCD(f), 50)
		if err != nil {
			t.Fatalf("f=%g: %v", f, err)
		}
		il := -mathx.DB20(cmplx.Abs(s[1][0]))
		if il > 0.5 {
			t.Errorf("f=%g: bias feed insertion loss %.3f dB too high", f, il)
		}
		if il < 0 {
			t.Errorf("f=%g: negative insertion loss %.3f dB from passive tee", f, il)
		}
	}
}

func TestTeeBranchAdmittanceShortVsOpen(t *testing.T) {
	sub := FR4()
	w, _ := sub.WidthForZ0(50)
	f := 1.575e9
	// Open branch: tiny admittance; shorted branch through nothing: huge.
	open := Tee{Sub: sub, WMain: w, WBranch: w / 3, BranchLoad: complex(1e12, 0)}
	short := Tee{Sub: sub, WMain: w, WBranch: w / 3, BranchLoad: complex(1e-9, 0)}
	if cmplx.Abs(open.BranchAdmittance(f)) > 1e-9 {
		t.Errorf("open branch admittance = %v, want ~0", open.BranchAdmittance(f))
	}
	if cmplx.Abs(short.BranchAdmittance(f)) < 1e6 {
		t.Errorf("short branch admittance = %v, want huge", short.BranchAdmittance(f))
	}
}

func TestBiasFeedNoiseSmall(t *testing.T) {
	// The bias feed's noise contribution in-band must be small (< 0.2 dB)
	// when the feed inductor presents a high impedance.
	sub := RogersRO4350()
	w, _ := sub.WidthForZ0(50)
	feed := NewChipInductor(68e-9, Series)
	bypass := NewChipCapacitor(100e-12, Shunt)
	tee := BiasFeed(sub, w, feed, bypass, 5)
	n := tee.Noisy(1.575e9)
	nf := mathx.DB10(n.FigureY(complex(1.0/50, 0)))
	if nf > 0.2 {
		t.Errorf("bias feed NF = %g dB, want < 0.2", nf)
	}
	if nf < 0 {
		t.Errorf("bias feed NF = %g dB, must be non-negative", nf)
	}
}

func TestDCBlockTransparent(t *testing.T) {
	blk := DCBlock(100e-12)
	s, err := twoport.ABCDToS(blk.ABCD(1.575e9), 50)
	if err != nil {
		t.Fatal(err)
	}
	il := -mathx.DB20(cmplx.Abs(s[1][0]))
	if il > 0.1 {
		t.Errorf("DC block insertion loss = %g dB, want < 0.1", il)
	}
	// At DC it must block: series impedance infinite.
	z := blk.Impedance(0)
	if !math.IsInf(real(z), 1) {
		t.Errorf("DC impedance = %v, want infinite", z)
	}
}
