package rfpassive

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// Orientation selects how a lumped element is inserted in the signal path.
type Orientation int

// Element orientations.
const (
	// Series places the element in series with the signal path.
	Series Orientation = iota + 1
	// Shunt places the element from the signal path to ground.
	Shunt
)

// Element is anything that can present itself as a two-port at a frequency.
type Element interface {
	// ABCD returns the chain matrix at frequency f in Hz.
	ABCD(f float64) twoport.Mat2
	// Noisy returns the element as a noisy two-port at f.
	Noisy(f float64) noise.TwoPort
	// String describes the element for reports.
	String() string
}

// Inductor is a chip (wire-wound or multilayer) inductor with a dispersive
// loss model: DC resistance plus skin-effect resistance growing as sqrt(f),
// and a parallel self-capacitance setting the self-resonant frequency.
type Inductor struct {
	// L is the nominal inductance in henries.
	L float64
	// RDC is the DC winding resistance in ohms.
	RDC float64
	// QRef is the quality factor at FRef (sets the skin-loss coefficient).
	QRef float64
	// FRef is the Q specification frequency in Hz.
	FRef float64
	// Cp is the parallel self-capacitance in farads.
	Cp float64
	// Orient selects series or shunt insertion.
	Orient Orientation
	// Temp is the physical temperature (290 K if zero).
	Temp float64
	// ESRTable, when non-nil, replaces the closed-form dispersive series
	// resistance with a measured/datasheet ESR-vs-frequency curve (clamped
	// outside its grid, per the mathx tabulated-data contract).
	ESRTable *DispersionTable
}

var _ Element = Inductor{}

// NewChipInductor returns a typical 0402 wire-wound chip inductor model for
// the given nominal inductance, in the given orientation.
func NewChipInductor(l float64, o Orientation) Inductor {
	// Representative small-signal data: Q ~ 40 at 800 MHz, SRF set by
	// ~0.12 pF self-capacitance, RDC scaling weakly with L.
	return Inductor{
		L:      l,
		RDC:    0.1 + 8e6*l, // 0.1 ohm + 0.08 ohm/10nH
		QRef:   40,
		FRef:   800e6,
		Cp:     0.12e-12,
		Orient: o,
		Temp:   mathx.T0,
	}
}

// seriesR returns the dispersive series resistance at f: the tabulated ESR
// curve when one is attached, otherwise the RDC + skin-effect closed form.
func (l Inductor) seriesR(f float64) float64 {
	if l.ESRTable != nil {
		return l.ESRTable.At(f)
	}
	if f <= 0 || l.QRef <= 0 || l.FRef <= 0 {
		return l.RDC
	}
	// Choose the skin coefficient so that Q(FRef) = QRef given RDC.
	wRef := 2 * math.Pi * l.FRef
	rAtRef := wRef * l.L / l.QRef
	k := (rAtRef - l.RDC) / math.Sqrt(l.FRef)
	if k < 0 {
		k = 0
	}
	return l.RDC + k*math.Sqrt(f)
}

// Impedance returns the one-port impedance of the inductor at f, including
// the self-capacitance.
func (l Inductor) Impedance(f float64) complex128 {
	w := 2 * math.Pi * f
	zs := complex(l.seriesR(f), w*l.L)
	if l.Cp <= 0 || f <= 0 {
		return zs
	}
	yc := complex(0, w*l.Cp)
	return zs / (1 + zs*yc)
}

// Q returns the quality factor at f.
func (l Inductor) Q(f float64) float64 {
	z := l.Impedance(f)
	if real(z) == 0 {
		return math.Inf(1)
	}
	return math.Abs(imag(z)) / real(z)
}

// SRF returns the self-resonant frequency in Hz (infinite without Cp).
func (l Inductor) SRF() float64 {
	if l.Cp <= 0 || l.L <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * math.Pi * math.Sqrt(l.L*l.Cp))
}

// ESR returns the effective series resistance Re(Z) at f.
func (l Inductor) ESR(f float64) float64 { return real(l.Impedance(f)) }

// ABCD returns the chain matrix at f.
func (l Inductor) ABCD(f float64) twoport.Mat2 {
	z := l.Impedance(f)
	if l.Orient == Shunt {
		return twoport.ShuntY(1 / z)
	}
	return twoport.SeriesZ(z)
}

// Noisy returns the element with its thermal noise at f.
func (l Inductor) Noisy(f float64) noise.TwoPort {
	z := l.Impedance(f)
	t := l.Temp
	if t == 0 {
		t = mathx.T0
	}
	if l.Orient == Shunt {
		return noise.ShuntY(1/z, t)
	}
	return noise.SeriesZ(z, t)
}

// String describes the inductor.
func (l Inductor) String() string {
	return fmt.Sprintf("L=%.3gnH %s (Q%.0f@%.0fMHz)", l.L*1e9, orientName(l.Orient), l.QRef, l.FRef/1e6)
}

// Capacitor is a chip (MLCC) capacitor with ESR from electrode skin loss and
// dielectric loss tangent, plus series parasitic inductance (ESL).
type Capacitor struct {
	// C is the nominal capacitance in farads.
	C float64
	// RS0 is the electrode resistance at FRef in ohms.
	RS0 float64
	// FRef is the ESR specification frequency in Hz.
	FRef float64
	// TanD is the dielectric loss tangent.
	TanD float64
	// ESL is the series parasitic inductance in henries.
	ESL float64
	// Orient selects series or shunt insertion.
	Orient Orientation
	// Temp is the physical temperature (290 K if zero).
	Temp float64
	// ESRTable, when non-nil, replaces the closed-form ESR dispersion with
	// a measured/datasheet ESR-vs-frequency curve (clamped outside its
	// grid, per the mathx tabulated-data contract).
	ESRTable *DispersionTable
}

var _ Element = Capacitor{}

// NewChipCapacitor returns a typical 0402 C0G chip capacitor model for the
// given nominal capacitance, in the given orientation.
func NewChipCapacitor(c float64, o Orientation) Capacitor {
	return Capacitor{
		C:      c,
		RS0:    0.08,
		FRef:   1e9,
		TanD:   0.001, // C0G/NP0 dielectric
		ESL:    0.3e-9,
		Orient: o,
		Temp:   mathx.T0,
	}
}

// ESR returns the dispersive effective series resistance at f: the
// tabulated curve when one is attached, otherwise electrode metal loss
// growing as sqrt(f) plus dielectric loss falling as 1/f.
func (c Capacitor) ESR(f float64) float64 {
	if c.ESRTable != nil {
		return c.ESRTable.At(f)
	}
	if f <= 0 {
		return c.RS0
	}
	rMetal := c.RS0
	if c.FRef > 0 {
		rMetal = c.RS0 * math.Sqrt(f/c.FRef)
	}
	rDiel := 0.0
	if c.C > 0 {
		rDiel = c.TanD / (2 * math.Pi * f * c.C)
	}
	return rMetal + rDiel
}

// Impedance returns the one-port impedance at f.
func (c Capacitor) Impedance(f float64) complex128 {
	if f <= 0 {
		return complex(math.Inf(1), 0)
	}
	w := 2 * math.Pi * f
	return complex(c.ESR(f), w*c.ESL-1/(w*c.C))
}

// Q returns the quality factor at f.
func (c Capacitor) Q(f float64) float64 {
	z := c.Impedance(f)
	if real(z) == 0 {
		return math.Inf(1)
	}
	return math.Abs(imag(z)) / real(z)
}

// SRF returns the series self-resonant frequency in Hz.
func (c Capacitor) SRF() float64 {
	if c.ESL <= 0 || c.C <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * math.Pi * math.Sqrt(c.ESL*c.C))
}

// ABCD returns the chain matrix at f.
func (c Capacitor) ABCD(f float64) twoport.Mat2 {
	z := c.Impedance(f)
	if c.Orient == Shunt {
		return twoport.ShuntY(1 / z)
	}
	return twoport.SeriesZ(z)
}

// Noisy returns the element with its thermal noise at f.
func (c Capacitor) Noisy(f float64) noise.TwoPort {
	z := c.Impedance(f)
	t := c.Temp
	if t == 0 {
		t = mathx.T0
	}
	if c.Orient == Shunt {
		return noise.ShuntY(1/z, t)
	}
	return noise.SeriesZ(z, t)
}

// String describes the capacitor.
func (c Capacitor) String() string {
	return fmt.Sprintf("C=%.3gpF %s", c.C*1e12, orientName(c.Orient))
}

// Resistor is a chip resistor with a small parasitic inductance and parallel
// capacitance.
type Resistor struct {
	// R is the nominal resistance in ohms.
	R float64
	// Lp is the series parasitic inductance in henries.
	Lp float64
	// Cp is the parallel parasitic capacitance in farads.
	Cp float64
	// Orient selects series or shunt insertion.
	Orient Orientation
	// Temp is the physical temperature (290 K if zero).
	Temp float64
}

var _ Element = Resistor{}

// NewChipResistor returns a typical 0402 thick-film resistor model.
func NewChipResistor(r float64, o Orientation) Resistor {
	return Resistor{R: r, Lp: 0.4e-9, Cp: 0.05e-12, Orient: o, Temp: mathx.T0}
}

// Impedance returns the one-port impedance at f.
func (r Resistor) Impedance(f float64) complex128 {
	w := 2 * math.Pi * f
	zs := complex(r.R, w*r.Lp)
	if r.Cp <= 0 || f <= 0 {
		return zs
	}
	return zs / (1 + zs*complex(0, w*r.Cp))
}

// ABCD returns the chain matrix at f.
func (r Resistor) ABCD(f float64) twoport.Mat2 {
	z := r.Impedance(f)
	if r.Orient == Shunt {
		return twoport.ShuntY(1 / z)
	}
	return twoport.SeriesZ(z)
}

// Noisy returns the element with its thermal noise at f.
func (r Resistor) Noisy(f float64) noise.TwoPort {
	z := r.Impedance(f)
	t := r.Temp
	if t == 0 {
		t = mathx.T0
	}
	if r.Orient == Shunt {
		return noise.ShuntY(1/z, t)
	}
	return noise.SeriesZ(z, t)
}

// String describes the resistor.
func (r Resistor) String() string {
	return fmt.Sprintf("R=%.3gohm %s", r.R, orientName(r.Orient))
}

func orientName(o Orientation) string {
	if o == Shunt {
		return "shunt"
	}
	return "series"
}

// Chain is an ordered cascade of elements forming a composite two-port.
type Chain []Element

var _ Element = Chain{}

// ABCD returns the chain matrix of the whole cascade at f.
func (ch Chain) ABCD(f float64) twoport.Mat2 {
	a := twoport.Identity2()
	for _, e := range ch {
		a = a.Mul(e.ABCD(f))
	}
	return a
}

// Noisy returns the cascade as a noisy two-port at f.
func (ch Chain) Noisy(f float64) noise.TwoPort {
	n := noise.Noiseless(twoport.Identity2())
	for _, e := range ch {
		n = n.Cascade(e.Noisy(f))
	}
	return n
}

// String lists the cascade contents.
func (ch Chain) String() string {
	s := ""
	for i, e := range ch {
		if i > 0 {
			s += " -> "
		}
		s += e.String()
	}
	return s
}
