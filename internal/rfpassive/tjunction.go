package rfpassive

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// Tee models a microstrip T-junction used as a splitter for the bias feed:
// a branch hangs off the main line, and the junction itself contributes a
// parasitic shunt susceptance (excess junction capacitance after
// Hammerstad) seen by the through path. As a two-port along the main line,
// the Tee presents the branch's input admittance (plus the junction
// capacitance) in shunt.
type Tee struct {
	// Sub is the substrate the junction is printed on.
	Sub Substrate
	// WMain is the main line width in meters.
	WMain float64
	// WBranch is the branch line width in meters.
	WBranch float64
	// Branch is the element hanging off the junction, evaluated as a
	// two-port terminated by BranchLoad.
	Branch Element
	// BranchLoad terminates the far end of the branch (ohms); use a large
	// value for an open and a small one for a short/decoupled rail.
	BranchLoad complex128
	// CJunction, when positive, is a precomputed junction capacitance in
	// farads that short-circuits the per-call Hammerstad fit. The
	// capacitance depends only on geometry and substrate — never on
	// frequency — so builders that evaluate the tee at many frequencies set
	// it once from JunctionCapacitance (0: compute from geometry on every
	// call, the safe default).
	CJunction float64
}

var _ Element = Tee{}

// JunctionCapacitance returns the Hammerstad excess capacitance of the
// T-junction in farads, an empirical function of geometry and permittivity
// (precomputed when CJunction is set).
func (t Tee) JunctionCapacitance() float64 {
	if t.CJunction > 0 {
		return t.CJunction
	}
	_, z0m := t.Sub.StaticParams(t.WMain)
	// Hammerstad's empirical shunt capacitance for a tee: C/W [pF/m] =
	// sqrt(er)*(100/tan(...)) style fits reduce, for our purposes, to an
	// order-of-magnitude-correct closed form proportional to branch width
	// and permittivity.
	eEff, _ := t.Sub.StaticParams(t.WBranch)
	// ~0.5 fF per (mm width) * sqrt(eps) scaled by 50/Z0main.
	return 0.5e-15 * (t.WBranch * 1e3) * math.Sqrt(eEff) * (50 / z0m) * 2
}

// BranchAdmittance returns the input admittance of the loaded branch at f.
func (t Tee) BranchAdmittance(f float64) complex128 {
	a := twoport.Identity2()
	if t.Branch != nil {
		a = t.Branch.ABCD(f)
	}
	// Zin = (A Zl + B)/(C Zl + D).
	zl := t.BranchLoad
	zin := (a[0][0]*zl + a[0][1]) / (a[1][0]*zl + a[1][1])
	if zin == 0 {
		return complex(math.Inf(1), 0)
	}
	return 1 / zin
}

// TotalShuntY returns the shunt admittance loading the main line at f:
// branch input admittance plus the junction parasitic susceptance.
func (t Tee) TotalShuntY(f float64) complex128 {
	w := 2 * math.Pi * f
	return t.BranchAdmittance(f) + complex(0, w*t.JunctionCapacitance())
}

// ABCD returns the main-line chain matrix at f.
func (t Tee) ABCD(f float64) twoport.Mat2 {
	return twoport.ShuntY(t.TotalShuntY(f))
}

// Noisy returns the junction with the branch's thermal noise at f. The
// branch conductance is assumed to sit at the substrate temperature.
func (t Tee) Noisy(f float64) noise.TwoPort {
	return noise.ShuntY(t.TotalShuntY(f), t.Sub.temp())
}

// String describes the junction.
func (t Tee) String() string {
	return fmt.Sprintf("TEE wm=%.3gmm wb=%.3gmm", t.WMain*1e3, t.WBranch*1e3)
}

// BiasFeed builds the classical bias-injection branch used by the
// preamplifier: a high-impedance quarter-wave-ish feed inductor from the
// rail, decoupled at the rail by a bypass capacitor, attached to the main
// line through a Tee. The branch looks like a high impedance in-band so the
// RF path is minimally disturbed, while DC flows to the drain/gate.
func BiasFeed(sub Substrate, wMain float64, feed Inductor, bypass Capacitor, railResistance float64) Tee {
	feed.Orient = Series
	bypass.Orient = Shunt
	branch := Chain{feed, bypass}
	return Tee{
		Sub:        sub,
		WMain:      wMain,
		WBranch:    wMain / 3,
		Branch:     branch,
		BranchLoad: complex(railResistance, 0),
	}
}

// DCBlock returns a series chip capacitor sized for negligible in-band
// reactance, as used at the amplifier ports.
func DCBlock(c float64) Capacitor {
	blk := NewChipCapacitor(c, Series)
	blk.Temp = mathx.T0
	return blk
}
