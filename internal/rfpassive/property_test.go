package rfpassive

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// randomChain builds a random passive chain of 1-6 elements.
func randomChain(rng *rand.Rand) Chain {
	sub := RogersRO4350()
	n := 1 + rng.Intn(6)
	ch := make(Chain, 0, n)
	for i := 0; i < n; i++ {
		orient := Series
		if rng.Intn(2) == 0 {
			orient = Shunt
		}
		switch rng.Intn(5) {
		case 0:
			ch = append(ch, NewChipInductor(1e-9+rng.Float64()*20e-9, orient))
		case 1:
			ch = append(ch, NewChipCapacitor(0.3e-12+rng.Float64()*50e-12, orient))
		case 2:
			ch = append(ch, NewChipResistor(5+rng.Float64()*500, orient))
		case 3:
			w, err := sub.WidthForZ0(40 + rng.Float64()*50)
			if err != nil {
				continue
			}
			ch = append(ch, Line{Sub: sub, W: w, Len: 1e-3 + rng.Float64()*25e-3, Dispersion: true})
		default:
			ch = append(ch, StabilizerRL(20+rng.Float64()*150, 2e-9+rng.Float64()*20e-9))
		}
	}
	return ch
}

func TestRandomPassiveChainsArePassive(t *testing.T) {
	// Property: any chain of passive elements has no power gain and is
	// reciprocal at any in-band frequency.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ch := randomChain(rng)
		freq := 0.5e9 + rng.Float64()*3e9
		s, err := twoport.ABCDToS(ch.ABCD(freq), 50)
		if err != nil {
			return true // degenerate composition (e.g. ideal series open)
		}
		// Reciprocity.
		if cmplx.Abs(s[0][1]-s[1][0]) > 1e-9 {
			return false
		}
		// Passivity: both column power sums <= 1.
		p1 := abs2(s[0][0]) + abs2(s[1][0])
		p2 := abs2(s[0][1]) + abs2(s[1][1])
		return p1 <= 1+1e-9 && p2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRandomPassiveChainsPhysicalNoise(t *testing.T) {
	// Property: the noise figure of any passive chain at T0 from a matched
	// source equals at least its insertion loss-ish bound: F >= 1, and the
	// extracted noise parameters are physical (Fmin >= 1, Rn >= 0,
	// |GammaOpt| <= 1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ch := randomChain(rng)
		freq := 0.8e9 + rng.Float64()*2e9
		n := ch.Noisy(freq)
		nf := n.FigureY(complex(1.0/50, 0))
		if nf < 1-1e-9 {
			return false
		}
		p, err := n.NoiseParams(50)
		if err != nil {
			return true // degenerate chain
		}
		if p.Fmin < 1-1e-6 || p.Rn < -1e-12 {
			return false
		}
		return cmplx.Abs(p.GammaOpt) <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPassiveNoiseFigureBoundedByLoss(t *testing.T) {
	// Property: for a passive chain at T0, the matched-source noise figure
	// never exceeds 1/(GT) by more than numerical tolerance... in fact for
	// passive networks F <= 1/GT with equality when matched; verify the
	// inequality F <= 1/GT * (mismatch bound) loosely: F - 1 <= (1/GT - 1)
	// within tolerance does NOT hold in general for mismatched networks,
	// but F <= 1/GA always holds at T0. Use GA with a matched source.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ch := randomChain(rng)
		freq := 0.8e9 + rng.Float64()*2e9
		n := ch.Noisy(freq)
		s, err := n.S(50)
		if err != nil {
			return true
		}
		ga := twoport.AvailableGain(s, 0)
		if ga <= 0 || ga > 1+1e-9 {
			// Passive: available gain cannot exceed 1; numerical edge cases
			// with near-singular output match are skipped.
			return ga <= 1+1e-9
		}
		nf := n.FigureY(complex(1.0/50, 0))
		// Thermodynamic identity for passive at T0: F = 1/GA exactly.
		return mathx.CloseRel(nf, 1/ga, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func abs2(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
