package rfpassive

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/twoport"
)

func TestOpenEndExtensionPlausible(t *testing.T) {
	// The textbook rule of thumb: dL between ~0.3h and ~0.6h for common
	// geometries.
	for _, sub := range []Substrate{FR4(), RogersRO4350()} {
		w, err := sub.WidthForZ0(50)
		if err != nil {
			t.Fatal(err)
		}
		dl := sub.OpenEndExtension(w)
		if dl < 0.2*sub.H || dl > 0.8*sub.H {
			t.Errorf("er=%g: dL = %.3g h, want 0.2-0.8 h", sub.Er, dl/sub.H)
		}
	}
}

func TestOpenEndExtensionGrowsWithWidth(t *testing.T) {
	sub := RogersRO4350()
	w50, _ := sub.WidthForZ0(50)
	w30, _ := sub.WidthForZ0(30) // wider
	if sub.OpenEndExtension(w30) <= sub.OpenEndExtension(w50) {
		t.Error("wider line should have larger open-end extension")
	}
}

func TestOpenStubWithEndShortens(t *testing.T) {
	sub := RogersRO4350()
	w, _ := sub.WidthForZ0(50)
	target := 10e-3
	stub := OpenStubWithEnd(sub, w, target)
	if stub.Len >= target {
		t.Errorf("corrected stub %g not shorter than target %g", stub.Len, target)
	}
	if stub.Len <= 0 {
		t.Errorf("corrected stub collapsed to %g", stub.Len)
	}
	// Pathological short target clamps to zero rather than negative.
	tiny := OpenStubWithEnd(sub, w, 1e-6)
	if tiny.Len != 0 {
		t.Errorf("tiny stub length = %g, want 0", tiny.Len)
	}
}

func TestStepInWidthPassiveAndReciprocal(t *testing.T) {
	sub := RogersRO4350()
	w50, _ := sub.WidthForZ0(50)
	w70, _ := sub.WidthForZ0(70)
	step := StepInWidth{Sub: sub, W1: w50, W2: w70}
	for _, f := range []float64{1e9, 1.5e9, 3e9} {
		s, err := twoport.ABCDToS(step.ABCD(f), 50)
		if err != nil {
			t.Fatalf("ABCDToS: %v", err)
		}
		if cmplx.Abs(s[0][1]-s[1][0]) > 1e-12 {
			t.Errorf("f=%g: step not reciprocal", f)
		}
		// Lossless: |S11|^2 + |S21|^2 = 1.
		p := real(s[0][0])*real(s[0][0]) + imag(s[0][0])*imag(s[0][0]) +
			real(s[1][0])*real(s[1][0]) + imag(s[1][0])*imag(s[1][0])
		if math.Abs(p-1) > 1e-9 {
			t.Errorf("f=%g: power sum %g, want 1 (lossless)", f, p)
		}
		// The discontinuity is small: |S11| well below 0.2 at L band.
		if cmplx.Abs(s[0][0]) > 0.2 {
			t.Errorf("f=%g: step reflection %g too large", f, cmplx.Abs(s[0][0]))
		}
	}
	// Order independence.
	flipped := StepInWidth{Sub: sub, W1: w70, W2: w50}
	a1, a2 := step.ABCD(1.5e9), flipped.ABCD(1.5e9)
	if twoport.MaxAbsDiff(a1, a2) > 1e-15 {
		t.Error("step must be order-independent")
	}
	if step.String() == "" {
		t.Error("empty description")
	}
}
