package rfpassive

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func TestHammerstadJensenKnownValues(t *testing.T) {
	// Classic sanity anchors: on er=4.4, h=1.5mm FR-4, a ~2.85mm strip is
	// close to 50 ohm; a w=h strip on er=9.8 alumina is near 50 too.
	sub := FR4()
	w, err := sub.WidthForZ0(50)
	if err != nil {
		t.Fatalf("WidthForZ0: %v", err)
	}
	if w < 2.2e-3 || w > 3.4e-3 {
		t.Errorf("FR4 50-ohm width = %.3g mm, want ~2.9 mm", w*1e3)
	}
	eps, z0 := sub.StaticParams(w)
	if math.Abs(z0-50) > 0.01 {
		t.Errorf("synthesized width gives Z0 = %g, want 50", z0)
	}
	if eps < 1 || eps > sub.Er {
		t.Errorf("epsEff = %g outside (1, er)", eps)
	}
	alumina := Substrate{Er: 9.8, H: 0.635e-3}
	_, z0a := alumina.StaticParams(0.6e-3)
	if z0a < 45 || z0a > 55 {
		t.Errorf("alumina w~h line Z0 = %g, want ~50", z0a)
	}
}

func TestWidthForZ0Monotone(t *testing.T) {
	sub := RogersRO4350()
	var prev float64 = math.Inf(1)
	for _, z := range []float64{30, 50, 70, 90} {
		w, err := sub.WidthForZ0(z)
		if err != nil {
			t.Fatalf("WidthForZ0(%g): %v", z, err)
		}
		if w >= prev {
			t.Errorf("width for %g ohm = %g not decreasing", z, w)
		}
		prev = w
	}
	if _, err := sub.WidthForZ0(-5); err == nil {
		t.Error("negative Z0 accepted")
	}
	if _, err := sub.WidthForZ0(500); err == nil {
		t.Error("unrealizable Z0 accepted")
	}
}

func TestDispersionRaisesEpsEff(t *testing.T) {
	// Kobayashi dispersion: epsEff(f) increases monotonically with f toward
	// er, starting at the static value.
	sub := FR4()
	w, _ := sub.WidthForZ0(50)
	e0 := sub.EpsEff(w, 0, true)
	eStatic, _ := sub.StaticParams(w)
	if !mathx.CloseRel(e0, eStatic, 1e-12) {
		t.Errorf("epsEff(0) = %g, want static %g", e0, eStatic)
	}
	prev := e0
	for _, f := range []float64{0.5e9, 1e9, 2e9, 5e9, 10e9, 30e9} {
		e := sub.EpsEff(w, f, true)
		if e < prev-1e-12 {
			t.Errorf("epsEff not monotone at %g Hz: %g < %g", f, e, prev)
		}
		if e > sub.Er {
			t.Errorf("epsEff(%g) = %g exceeds er", f, e)
		}
		prev = e
	}
	// Dispersion disabled: flat.
	if sub.EpsEff(w, 10e9, false) != eStatic {
		t.Error("dispersion off must return static value")
	}
}

func TestLineLossesPositiveAndGrowing(t *testing.T) {
	sub := FR4()
	w, _ := sub.WidthForZ0(50)
	ac1 := sub.AlphaConductor(w, 1e9)
	ac2 := sub.AlphaConductor(w, 4e9)
	if ac1 <= 0 || ac2 <= ac1 {
		t.Errorf("conductor loss not increasing: %g -> %g", ac1, ac2)
	}
	// Skin effect: doubling f scales alpha_c by sqrt(2).
	if !mathx.CloseRel(sub.AlphaConductor(w, 2e9)/ac1, math.Sqrt2, 1e-9) {
		t.Error("conductor loss does not follow sqrt(f)")
	}
	ad1 := sub.AlphaDielectric(w, 1e9, true)
	ad2 := sub.AlphaDielectric(w, 4e9, true)
	if ad1 <= 0 || ad2 <= ad1 {
		t.Errorf("dielectric loss not increasing: %g -> %g", ad1, ad2)
	}
	if sub.AlphaConductor(w, 0) != 0 || sub.AlphaDielectric(w, 0, true) != 0 {
		t.Error("DC losses must be zero")
	}
}

func TestLinePassivityAndReciprocity(t *testing.T) {
	sub := FR4()
	line, err := NewLine50(sub, 50, 45, 1.575e9)
	if err != nil {
		t.Fatalf("NewLine50: %v", err)
	}
	for _, f := range []float64{1.1e9, 1.4e9, 1.7e9} {
		s, err := twoport.ABCDToS(line.ABCD(f), 50)
		if err != nil {
			t.Fatalf("ABCDToS: %v", err)
		}
		// Passive: |S21| < 1; lossy: strictly.
		if g := cmplx.Abs(s[1][0]); g >= 1 {
			t.Errorf("f=%g: |S21| = %g, want < 1", f, g)
		}
		// Reciprocal: S12 == S21.
		if cmplx.Abs(s[0][1]-s[1][0]) > 1e-12 {
			t.Errorf("f=%g: line not reciprocal", f)
		}
		// Power conservation: |S11|^2 + |S21|^2 <= 1.
		p := real(s[0][0])*real(s[0][0]) + imag(s[0][0])*imag(s[0][0]) +
			real(s[1][0])*real(s[1][0]) + imag(s[1][0])*imag(s[1][0])
		if p > 1 {
			t.Errorf("f=%g: power gain %g > 1 from passive line", f, p)
		}
	}
}

func TestNewLine50ElectricalLength(t *testing.T) {
	sub := RogersRO4350()
	fRef := 1.575e9
	line, err := NewLine50(sub, 50, 90, fRef)
	if err != nil {
		t.Fatalf("NewLine50: %v", err)
	}
	// The phase of S21 at fRef must be ~-90 degrees.
	s, err := twoport.ABCDToS(line.ABCD(fRef), 50)
	if err != nil {
		t.Fatal(err)
	}
	phase := cmplx.Phase(s[1][0]) * 180 / math.Pi
	if math.Abs(phase+90) > 3 {
		t.Errorf("quarter-wave phase = %g deg, want ~-90", phase)
	}
}

func TestLineQReasonable(t *testing.T) {
	sub := RogersRO4350()
	line, err := NewLine50(sub, 50, 45, 1.575e9)
	if err != nil {
		t.Fatal(err)
	}
	q := line.Q(1.575e9)
	// Microstrip on RO4350 at L band: Q of order 100-300.
	if q < 30 || q > 1000 {
		t.Errorf("line Q = %g, want O(100)", q)
	}
	// FR4 is much lossier.
	lineFR4, err := NewLine50(FR4(), 50, 45, 1.575e9)
	if err != nil {
		t.Fatal(err)
	}
	if lineFR4.Q(1.575e9) >= q {
		t.Error("FR4 line should have lower Q than RO4350")
	}
}

func TestLineNoiseMatchesLoss(t *testing.T) {
	// For a well-matched lossy line, NF ~ insertion loss (passive at T0).
	sub := FR4()
	line, err := NewLine50(sub, 50, 90, 1.575e9)
	if err != nil {
		t.Fatal(err)
	}
	f := 1.575e9
	n := line.Noisy(f)
	s, err := n.S(50)
	if err != nil {
		t.Fatal(err)
	}
	lossDB := -mathx.DB20(cmplx.Abs(s[1][0]))
	nfDB := mathx.DB10(n.FigureY(complex(1.0/50, 0)))
	if math.Abs(nfDB-lossDB) > 0.1 {
		t.Errorf("line NF %.3f dB vs loss %.3f dB: should nearly match", nfDB, lossDB)
	}
	if nfDB <= 0 {
		t.Errorf("lossy line NF = %g, want > 0", nfDB)
	}
}
