package rfpassive

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func TestInductorDispersion(t *testing.T) {
	l := NewChipInductor(7.5e-9, Series)
	// Below SRF the reactance is inductive and grows.
	srf := l.SRF()
	if srf < 2e9 {
		t.Fatalf("SRF = %g, expected above L band for 7.5 nH/0.12 pF", srf)
	}
	z1 := l.Impedance(1e9)
	z2 := l.Impedance(1.5e9)
	if imag(z1) <= 0 || imag(z2) <= imag(z1) {
		t.Errorf("inductive reactance not growing: %v -> %v", z1, z2)
	}
	// ESR grows with frequency (skin effect + proximity to SRF).
	if l.ESR(1.5e9) <= l.ESR(0.5e9) {
		t.Errorf("ESR not dispersive: %g -> %g", l.ESR(0.5e9), l.ESR(1.5e9))
	}
	// Q at the reference frequency matches the spec within the Cp detuning.
	q := l.Q(l.FRef)
	if math.Abs(q-l.QRef) > 0.15*l.QRef {
		t.Errorf("Q(FRef) = %g, want ~%g", q, l.QRef)
	}
	// Above SRF the element turns capacitive.
	if imag(l.Impedance(srf*1.5)) >= 0 {
		t.Error("inductor should be capacitive above SRF")
	}
}

func TestCapacitorDispersion(t *testing.T) {
	c := NewChipCapacitor(3.3e-12, Series)
	// ESR has a minimum: dielectric term falls as 1/f, metal term grows as
	// sqrt(f).
	low := c.ESR(10e6)
	mid := c.ESR(1e9)
	if low <= mid {
		t.Errorf("low-frequency ESR %g should exceed mid-band %g (tan d term)", low, mid)
	}
	hi := c.ESR(20e9)
	if hi <= mid {
		t.Errorf("ESR should rise again at high f: %g vs %g", hi, mid)
	}
	// Below SRF: capacitive; above: inductive.
	srf := c.SRF()
	if imag(c.Impedance(srf/2)) >= 0 {
		t.Error("capacitive below SRF expected")
	}
	if imag(c.Impedance(srf*2)) <= 0 {
		t.Error("inductive above SRF expected")
	}
	// Q is high for C0G parts at L band.
	if q := c.Q(1.575e9); q < 50 {
		t.Errorf("C0G cap Q = %g, expected > 50", q)
	}
}

func TestResistorParasitics(t *testing.T) {
	r := NewChipResistor(50, Shunt)
	z0 := r.Impedance(1e6)
	if math.Abs(real(z0)-50) > 0.5 {
		t.Errorf("low-frequency R = %v, want ~50", z0)
	}
	// At microwave frequencies the impedance departs from nominal.
	z := r.Impedance(10e9)
	if cmplx.Abs(z-50) < 1 {
		t.Error("expected visible parasitic effect at 10 GHz")
	}
}

func TestElementOrientations(t *testing.T) {
	f := 1.575e9
	ls := NewChipInductor(5.6e-9, Series)
	lsh := NewChipInductor(5.6e-9, Shunt)
	as := ls.ABCD(f)
	ash := lsh.ABCD(f)
	// Series: A[1][0] == 0; shunt: A[0][1] == 0.
	if as[1][0] != 0 || as[0][1] == 0 {
		t.Error("series inductor chain matrix malformed")
	}
	if ash[0][1] != 0 || ash[1][0] == 0 {
		t.Error("shunt inductor chain matrix malformed")
	}
}

func TestChainComposition(t *testing.T) {
	f := 1.4e9
	l := NewChipInductor(6.8e-9, Series)
	c := NewChipCapacitor(2.2e-12, Shunt)
	ch := Chain{l, c}
	got := ch.ABCD(f)
	want := l.ABCD(f).Mul(c.ABCD(f))
	if d := twoport.MaxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("chain ABCD differs from manual product by %g", d)
	}
	// Noisy version should carry positive noise (lossy elements).
	n := ch.Noisy(f)
	nf := n.FigureY(complex(1.0/50, 0))
	if nf <= 1 {
		t.Errorf("lossy chain NF = %g, want > 1", nf)
	}
	if s := ch.String(); s == "" {
		t.Error("chain description empty")
	}
}

func TestMatchingLOnFR4HasLowLoss(t *testing.T) {
	// A realistic L-match at 1.575 GHz built from chip parts should lose
	// well under 1 dB: guards against wildly pessimistic parasitics.
	f := 1.575e9
	ch := Chain{
		NewChipInductor(5.6e-9, Series),
		NewChipCapacitor(1.5e-12, Shunt),
	}
	n := ch.Noisy(f)
	nfDB := mathx.DB10(n.FigureY(complex(1.0/50, 0)))
	if nfDB > 1.0 {
		t.Errorf("L-match NF = %g dB, model too lossy", nfDB)
	}
	if nfDB <= 0 {
		t.Errorf("L-match NF = %g dB, must be positive", nfDB)
	}
}
