package rfpassive

import (
	"math/cmplx"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func TestDispersionTableValidate(t *testing.T) {
	cases := []struct {
		name string
		tab  DispersionTable
		ok   bool
	}{
		{"good", DispersionTable{F: []float64{1e9, 2e9}, V: []float64{0.1, 0.2}}, true},
		{"single", DispersionTable{F: []float64{1e9}, V: []float64{0.1}}, true},
		{"empty", DispersionTable{}, false},
		{"mismatch", DispersionTable{F: []float64{1e9}, V: []float64{0.1, 0.2}}, false},
		{"unsorted", DispersionTable{F: []float64{2e9, 1e9}, V: []float64{0.1, 0.2}}, false},
		{"duplicate", DispersionTable{F: []float64{1e9, 1e9}, V: []float64{0.1, 0.2}}, false},
	}
	for _, c := range cases {
		if err := c.tab.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestDispersionTableClamps pins the tabulated-data contract: interpolated
// inside the grid, endpoint values held outside — never the extended
// boundary slope, which for a falling ESR curve would go negative.
func TestDispersionTableClamps(t *testing.T) {
	tab := DispersionTable{F: []float64{1e9, 2e9, 3e9}, V: []float64{0.3, 0.1, 0.05}}
	if got := tab.At(1.5e9); !mathx.Close(got, 0.2, 1e-12) {
		t.Errorf("At(1.5 GHz) = %g, want 0.2", got)
	}
	if got := tab.At(0.1e9); got != 0.3 {
		t.Errorf("At below grid = %g, want clamped 0.3", got)
	}
	// The extended first segment would reach 0.3-0.2*... negative well
	// above the grid; clamping keeps the last sample.
	if got := tab.At(30e9); got != 0.05 {
		t.Errorf("At above grid = %g, want clamped 0.05", got)
	}
}

// TestTabulatedESRElementsStayPassive attaches datasheet-style ESR curves to
// a chip inductor and capacitor and checks the elements track the table and
// remain passive over and beyond the tabulated range.
func TestTabulatedESRElementsStayPassive(t *testing.T) {
	ltab := &DispersionTable{
		F: []float64{0.5e9, 1e9, 2e9, 4e9},
		V: []float64{0.4, 0.6, 1.1, 2.4},
	}
	if err := ltab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ind := NewChipInductor(6.8e-9, Series)
	ind.ESRTable = ltab
	// Without the self-capacitance transformation, Re(Z) is exactly the
	// tabulated series resistance.
	bare := ind
	bare.Cp = 0
	if got := bare.ESR(1e9); !mathx.Close(got, 0.6, 1e-9) {
		t.Errorf("tabulated inductor ESR(1 GHz) = %g, want 0.6", got)
	}
	if got := bare.ESR(20e9); !mathx.Close(got, 2.4, 1e-9) {
		t.Errorf("tabulated inductor ESR above grid = %g, want clamped 2.4", got)
	}

	ctab := &DispersionTable{
		F: []float64{0.5e9, 1e9, 3e9},
		V: []float64{0.15, 0.08, 0.12},
	}
	cap := NewChipCapacitor(5.6e-12, Shunt)
	cap.ESRTable = ctab
	if got := cap.ESR(1e9); !mathx.Close(got, 0.08, 1e-9) {
		t.Errorf("tabulated capacitor ESR(1 GHz) = %g, want 0.08", got)
	}

	ch := Chain{ind, cap}
	// Sample inside, between and far beyond the tables: the clamped curves
	// keep resistances positive, so the chain must stay passive and
	// reciprocal everywhere.
	for _, f := range []float64{0.1e9, 0.7e9, 1.575e9, 5e9, 20e9} {
		s, err := twoport.ABCDToS(ch.ABCD(f), 50)
		if err != nil {
			t.Fatalf("ABCDToS at %g: %v", f, err)
		}
		if d := cmplx.Abs(s[0][1] - s[1][0]); d > 1e-9 {
			t.Errorf("tabulated chain not reciprocal at %g Hz (|S12-S21| = %g)", f, d)
		}
		p1 := abs2(s[0][0]) + abs2(s[1][0])
		p2 := abs2(s[0][1]) + abs2(s[1][1])
		if p1 > 1+1e-9 || p2 > 1+1e-9 {
			t.Errorf("tabulated chain not passive at %g Hz (col powers %g, %g)", f, p1, p2)
		}
	}
}
