package rfpassive

import (
	"fmt"

	"gnsslna/internal/mathx"
)

// DispersionTable is a measured or datasheet frequency curve for a component
// parameter: F holds the sample frequencies in Hz (strictly increasing) and
// V the parameter values. Lookups follow the mathx out-of-range contract for
// tabulated data — clamped, never extrapolated: below F[0] the first value
// holds, above F[len-1] the last one. Extending a datasheet ESR curve's
// boundary slope can fabricate a negative resistance and with it an active
// "passive" element; clamping is at worst stale.
type DispersionTable struct {
	// F is the sample frequency grid in Hz, strictly increasing.
	F []float64
	// V holds the parameter value at each frequency.
	V []float64
}

// Validate checks the table shape: equal non-empty lengths and a strictly
// increasing frequency grid.
func (t *DispersionTable) Validate() error {
	if len(t.F) == 0 || len(t.F) != len(t.V) {
		return fmt.Errorf("rfpassive: dispersion table needs equal, non-empty F and V (got %d/%d)", len(t.F), len(t.V))
	}
	for i := 1; i < len(t.F); i++ {
		if t.F[i] <= t.F[i-1] {
			return fmt.Errorf("rfpassive: dispersion table frequencies must be strictly increasing (index %d)", i)
		}
	}
	return nil
}

// At returns the tabulated value at frequency f in Hz, linearly interpolated
// between samples and clamped to the endpoint values outside the grid.
func (t *DispersionTable) At(f float64) float64 {
	return mathx.LinearInterpClamped(t.F, t.V, f)
}
