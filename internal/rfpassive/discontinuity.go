package rfpassive

import (
	"fmt"
	"math"

	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// OpenEndExtension returns the equivalent length extension dL of a
// microstrip open end (Kirschning, Jansen & Koster closed form): the
// fringing field makes an open stub look electrically longer by dL.
func (s Substrate) OpenEndExtension(w float64) float64 {
	e0, _ := s.StaticParams(w)
	u := w / s.H
	x1 := 0.434907 * (math.Pow(e0, 0.81) + 0.26) / (math.Pow(e0, 0.81) - 0.189) *
		(math.Pow(u, 0.8544) + 0.236) / (math.Pow(u, 0.8544) + 0.87)
	x2 := 1 + math.Pow(u, 0.371)/(2.358*s.Er+1)
	x3 := 1 + 0.5274*math.Atan(0.084*math.Pow(u, 1.9413/x2))/math.Pow(e0, 0.9236)
	x4 := 1 + 0.0377*math.Atan(0.067*math.Pow(u, 1.456))*(6-5*math.Exp(0.036*(1-s.Er)))
	x5 := 1 - 0.218*math.Exp(-7.5*u)
	return s.H * x1 * x3 * x5 / x4
}

// StepInWidth models a microstrip width step as the series inductance and
// shunt capacitance discontinuity (first-order closed forms). w1 is the
// wider, w2 the narrower strip.
type StepInWidth struct {
	// Sub is the substrate.
	Sub Substrate
	// W1 and W2 are the two strip widths (order-independent).
	W1, W2 float64
}

var _ Element = StepInWidth{}

// elements returns the equivalent series inductance (H) and shunt
// capacitance (F) of the step.
func (s StepInWidth) elements() (lSeries, cShunt float64) {
	w1, w2 := s.W1, s.W2
	if w1 < w2 {
		w1, w2 = w2, w1
	}
	e1, z1 := s.Sub.StaticParams(w1)
	_, z2 := s.Sub.StaticParams(w2)
	// Series inductance per Gupta/Garg closed form (first order):
	// L ~ h * (z2 - z1)/c0 scaled by the width ratio.
	ratio := w1 / w2
	lSeries = s.Sub.H * (z2 - z1) / c0 * math.Sqrt(ratio-1)
	if lSeries < 0 {
		lSeries = 0
	}
	// Shunt capacitance: excess fringing at the wide side's edge.
	cShunt = math.Sqrt(w1*w2) * math.Sqrt(e1) * (1 - w2/w1) * 40e-12 // ~pF/m scale
	return lSeries, cShunt
}

// ABCD returns the chain matrix of the step at f.
func (s StepInWidth) ABCD(f float64) twoport.Mat2 {
	l, cp := s.elements()
	w := 2 * math.Pi * f
	half := twoport.SeriesZ(complex(0, w*l/2))
	shunt := twoport.ShuntY(complex(0, w*cp))
	return half.Mul(shunt).Mul(half)
}

// Noisy returns the (lossless, noiseless) step discontinuity at f.
func (s StepInWidth) Noisy(f float64) noise.TwoPort {
	return noise.Noiseless(s.ABCD(f))
}

// String describes the step.
func (s StepInWidth) String() string {
	return fmt.Sprintf("STEP %.3g->%.3g mm", s.W1*1e3, s.W2*1e3)
}

// OpenStubWithEnd returns an open-circuited stub Line whose physical length
// is shortened by the open-end extension so its electrical behaviour matches
// the target length — the correction the paper's careful element equations
// apply when cutting real stubs.
func OpenStubWithEnd(sub Substrate, w, targetLen float64) Line {
	l := targetLen - sub.OpenEndExtension(w)
	if l < 0 {
		l = 0
	}
	return Line{Sub: sub, W: w, Len: l, Dispersion: true}
}
