// Package calib models the VNA measurement chain the paper's S-parameter
// measurements pass through: imperfect test-set error boxes (directivity,
// source match, tracking on each port), one-port SOL (short-open-load) and
// two-port SOLT calibration from measurements of known standards, and the
// error correction that recovers the device-under-test S-parameters from
// raw readings. The synthetic VNA can thus be operated either "calibrated"
// (ideal, as in package vna) or "raw + corrected", exercising the same
// calibration mathematics a real measurement campaign depends on.
package calib

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"gnsslna/internal/twoport"
)

// ErrBadStandard reports calibration-standard data that cannot be solved.
var ErrBadStandard = errors.New("calib: calibration standards are degenerate")

// ErrorBox is the one-port three-term error model of a reflectometer port:
// measured = e00 + e01 * G / (1 - e11 * G), where G is the true reflection
// coefficient, e00 the directivity, e11 the port (source) match and e01 the
// reflection tracking.
type ErrorBox struct {
	// E00 is the directivity error term.
	E00 complex128
	// E11 is the source-match error term.
	E11 complex128
	// E01 is the reflection-tracking term (combined e01*e10).
	E01 complex128
}

// Apply maps a true reflection coefficient to the raw measured one.
func (e ErrorBox) Apply(gamma complex128) complex128 {
	return e.E00 + e.E01*gamma/(1-e.E11*gamma)
}

// Correct maps a raw measured reflection coefficient back to the true one.
func (e ErrorBox) Correct(measured complex128) complex128 {
	d := measured - e.E00
	return d / (e.E01 + e.E11*d)
}

// RandomErrorBox draws a realistic uncalibrated test-set port: directivity
// around -30 dB, source match around -25 dB, tracking within +/-1 dB and a
// few degrees of phase.
func RandomErrorBox(rng *rand.Rand) ErrorBox {
	mag := func(db float64) float64 { return math.Pow(10, db/20) }
	return ErrorBox{
		E00: cmplx.Rect(mag(-30+5*rng.NormFloat64()/3), 2*math.Pi*rng.Float64()),
		E11: cmplx.Rect(mag(-25+5*rng.NormFloat64()/3), 2*math.Pi*rng.Float64()),
		E01: cmplx.Rect(mag(rng.NormFloat64()/3), 2*math.Pi/180*5*rng.NormFloat64()),
	}
}

// SOLStandards holds the assumed (model) and measured reflections of the
// short, open and load standards at one frequency.
type SOLStandards struct {
	// ShortG, OpenG, LoadG are the true reflection coefficients of the
	// standards (ideally -1, +1, 0; real kits include offset models).
	ShortG, OpenG, LoadG complex128
	// MShort, MOpen, MLoad are the raw measured reflections.
	MShort, MOpen, MLoad complex128
}

// IdealSOL returns the textbook standard models.
func IdealSOL() SOLStandards {
	return SOLStandards{ShortG: -1, OpenG: 1, LoadG: 0}
}

// SolveSOL computes the three error terms from the three standards.
// Multiplying the model m = e00 + e01 g/(1 - e11 g) through by (1 - e11 g)
// and collecting terms gives the exact linear system
//
//	m_i = e00 + g_i*B + m_i*g_i*e11,  with B = e01 - e00*e11,
//
// in the unknowns (e00, B, e11).
func SolveSOL(s SOLStandards) (ErrorBox, error) {
	g := []complex128{s.ShortG, s.OpenG, s.LoadG}
	m := []complex128{s.MShort, s.MOpen, s.MLoad}
	// Cramer's rule on the 3x3 complex system.
	a := [3][3]complex128{}
	for i := 0; i < 3; i++ {
		a[i][0] = 1
		a[i][1] = g[i]
		a[i][2] = m[i] * g[i]
	}
	det := det3(a)
	if cmplx.Abs(det) < 1e-18 {
		return ErrorBox{}, ErrBadStandard
	}
	col := func(k int) complex128 {
		b := a
		for i := 0; i < 3; i++ {
			b[i][k] = m[i]
		}
		return det3(b) / det
	}
	e00 := col(0)
	bTerm := col(1)
	e11 := col(2)
	e01 := bTerm + e00*e11
	if cmplx.Abs(e01) < 1e-12 {
		return ErrorBox{}, ErrBadStandard
	}
	return ErrorBox{E00: e00, E11: e11, E01: e01}, nil
}

func det3(a [3][3]complex128) complex128 {
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

// TestSet is a two-port measurement chain: an error two-port in front of
// each DUT port. The boxes are modeled as reciprocal adapter networks so
// the raw measurement is simply A1 · DUT · A2 in cascade, the classical
// 8-term error model.
type TestSet struct {
	// PortA and PortB are the adapter S-matrices at the two DUT ports
	// (port 1 of each adapter faces the instrument).
	PortA, PortB twoport.Mat2
}

// RandomTestSet draws an imperfect but well-conditioned pair of adapters.
func RandomTestSet(rng *rand.Rand) TestSet {
	adapter := func() twoport.Mat2 {
		// Near-through with small reflections and ~0.2 dB loss.
		refl := func() complex128 {
			return cmplx.Rect(0.02+0.04*rng.Float64(), 2*math.Pi*rng.Float64())
		}
		thru := cmplx.Rect(0.96+0.02*rng.Float64(), 2*math.Pi/180*(10*rng.NormFloat64()))
		return twoport.Mat2{{refl(), thru}, {thru, refl()}}
	}
	return TestSet{PortA: adapter(), PortB: adapter()}
}

// Raw returns the raw (uncorrected) measurement of a DUT through the test
// set: cascade adapterA -> DUT -> flipped adapterB.
func (t TestSet) Raw(dut twoport.Mat2, z0 float64) (twoport.Mat2, error) {
	flipped := flip(t.PortB)
	return twoport.CascadeS(z0, t.PortA, dut, flipped)
}

// flip reverses a two-port (port 1 <-> port 2).
func flip(s twoport.Mat2) twoport.Mat2 {
	return twoport.Mat2{{s[1][1], s[1][0]}, {s[0][1], s[0][0]}}
}

// SOLTCal holds the solved adapters of an 8-term two-port calibration.
type SOLTCal struct {
	// PortA and PortB are the identified adapter S-matrices.
	PortA, PortB twoport.Mat2
	// Z0 is the reference impedance of the calibration.
	Z0 float64
}

// Calibrate solves the test set from SOL measurements at both ports plus a
// through connection, using the known standards. rawThru is the raw
// measurement with the DUT replaced by an ideal through.
func Calibrate(z0 float64, solA, solB SOLStandards, rawThru twoport.Mat2) (SOLTCal, error) {
	boxA, err := SolveSOL(solA)
	if err != nil {
		return SOLTCal{}, fmt.Errorf("calib: port A: %w", err)
	}
	boxB, err := SolveSOL(solB)
	if err != nil {
		return SOLTCal{}, fmt.Errorf("calib: port B: %w", err)
	}
	// The one-port boxes give each adapter's instrument-side reflection
	// terms: for adapter S (instrument side = port 1): e00 = S11,
	// e11 = S22, e01 = S12*S21. The through measurement fixes the
	// transmission-term split; assuming reciprocal adapters
	// (S12 = S21 = sqrt(e01)) resolves all terms up to a sign chosen to
	// make the through's transmission phase consistent.
	mk := func(b ErrorBox) (twoport.Mat2, twoport.Mat2) {
		t := cmplx.Sqrt(b.E01)
		plus := twoport.Mat2{{b.E00, t}, {t, b.E11}}
		minus := twoport.Mat2{{b.E00, -t}, {-t, b.E11}}
		return plus, minus
	}
	aPlus, aMinus := mk(boxA)
	bPlus, bMinus := mk(boxB)
	best := SOLTCal{Z0: z0}
	bestErr := math.Inf(1)
	for _, pa := range []twoport.Mat2{aPlus, aMinus} {
		for _, pb := range []twoport.Mat2{bPlus, bMinus} {
			cal := SOLTCal{PortA: pa, PortB: pb, Z0: z0}
			thru, err := cal.predictRaw(twoport.Mat2{{0, 1}, {1, 0}})
			if err != nil {
				continue
			}
			if e := twoport.MaxAbsDiff(thru, rawThru); e < bestErr {
				bestErr = e
				best = cal
			}
		}
	}
	if math.IsInf(bestErr, 1) {
		return SOLTCal{}, ErrBadStandard
	}
	return best, nil
}

// predictRaw forward-models a raw measurement through the solved adapters.
func (c SOLTCal) predictRaw(dut twoport.Mat2) (twoport.Mat2, error) {
	return TestSet{PortA: c.PortA, PortB: c.PortB}.Raw(dut, c.Z0)
}

// Correct de-embeds a raw two-port measurement, returning the DUT
// S-parameters.
func (c SOLTCal) Correct(raw twoport.Mat2) (twoport.Mat2, error) {
	// DUT = A^-1 · RAW · B'^-1 in T-parameter space.
	ta, err := twoport.SToT(c.PortA)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("calib: correct: %w", err)
	}
	tb, err := twoport.SToT(flip(c.PortB))
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("calib: correct: %w", err)
	}
	traw, err := twoport.SToT(raw)
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("calib: correct: %w", err)
	}
	taInv, err := ta.Inv()
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("calib: correct: %w", err)
	}
	tbInv, err := tb.Inv()
	if err != nil {
		return twoport.Mat2{}, fmt.Errorf("calib: correct: %w", err)
	}
	return twoport.TToS(taInv.Mul(traw).Mul(tbInv))
}

// MeasureSOL produces the raw one-port standard measurements a port adapter
// yields for the ideal SOL kit. The adapter's port 2 faces the standard.
func MeasureSOL(adapter twoport.Mat2) SOLStandards {
	s := IdealSOL()
	box := BoxFromAdapter(adapter)
	s.MShort = box.Apply(s.ShortG)
	s.MOpen = box.Apply(s.OpenG)
	s.MLoad = box.Apply(s.LoadG)
	return s
}

// BoxFromAdapter views a two-port adapter as a one-port error box for
// reflection measurements through it.
func BoxFromAdapter(adapter twoport.Mat2) ErrorBox {
	return ErrorBox{
		E00: adapter[0][0],
		E11: adapter[1][1],
		E01: adapter[0][1] * adapter[1][0],
	}
}
