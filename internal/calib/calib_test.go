package calib

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/twoport"
)

func TestErrorBoxRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		box := RandomErrorBox(rng)
		gamma := cmplx.Rect(rng.Float64()*0.95, rng.Float64()*6.283)
		raw := box.Apply(gamma)
		back := box.Correct(raw)
		if cmplx.Abs(back-gamma) > 1e-10 {
			t.Fatalf("trial %d: round trip %v -> %v -> %v", trial, gamma, raw, back)
		}
	}
}

func TestSolveSOLRecoversBox(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		box := RandomErrorBox(rng)
		s := IdealSOL()
		s.MShort = box.Apply(s.ShortG)
		s.MOpen = box.Apply(s.OpenG)
		s.MLoad = box.Apply(s.LoadG)
		got, err := SolveSOL(s)
		if err != nil {
			t.Fatalf("trial %d: SolveSOL: %v", trial, err)
		}
		if cmplx.Abs(got.E00-box.E00) > 1e-10 ||
			cmplx.Abs(got.E11-box.E11) > 1e-10 ||
			cmplx.Abs(got.E01-box.E01) > 1e-10 {
			t.Fatalf("trial %d: recovered %+v, want %+v", trial, got, box)
		}
	}
}

func TestSolveSOLOffsetStandards(t *testing.T) {
	// Non-ideal standards (offset short/open, imperfect load) must still
	// solve exactly when the models are known.
	box := ErrorBox{E00: 0.02 + 0.01i, E11: 0.05 - 0.03i, E01: 0.94 + 0.05i}
	s := SOLStandards{
		ShortG: cmplx.Rect(0.98, 3.05), // offset short
		OpenG:  cmplx.Rect(0.97, -0.2), // fringing open
		LoadG:  0.01 + 0.005i,          // 40 dB load
	}
	s.MShort = box.Apply(s.ShortG)
	s.MOpen = box.Apply(s.OpenG)
	s.MLoad = box.Apply(s.LoadG)
	got, err := SolveSOL(s)
	if err != nil {
		t.Fatalf("SolveSOL: %v", err)
	}
	probe := cmplx.Rect(0.6, 1.1)
	if d := cmplx.Abs(got.Correct(box.Apply(probe)) - probe); d > 1e-10 {
		t.Errorf("corrected probe off by %g", d)
	}
}

func TestSolveSOLDegenerate(t *testing.T) {
	s := IdealSOL()
	s.OpenG = s.ShortG // two identical standards: unsolvable
	s.MShort, s.MOpen, s.MLoad = 0.1, 0.1, 0.2
	if _, err := SolveSOL(s); err == nil {
		t.Error("degenerate standards accepted")
	}
}

func TestFullSOLTCalibrationRecoversDUT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ts := RandomTestSet(rng)
		// Calibration standard measurements.
		solA := MeasureSOL(ts.PortA)
		solB := MeasureSOL(ts.PortB)
		thruRaw, err := ts.Raw(twoport.Mat2{{0, 1}, {1, 0}}, 50)
		if err != nil {
			t.Fatalf("trial %d: thru: %v", trial, err)
		}
		cal, err := Calibrate(50, solA, solB, thruRaw)
		if err != nil {
			t.Fatalf("trial %d: Calibrate: %v", trial, err)
		}
		// Measure a real DUT: the golden transistor at 1.575 GHz.
		dut, err := device.Golden().SAt(device.Bias{Vgs: 0.52, Vds: 3}, 1.575e9, 50)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := ts.Raw(dut, 50)
		if err != nil {
			t.Fatal(err)
		}
		// Raw must differ visibly from the DUT (the test set is imperfect).
		if twoport.MaxAbsDiff(raw, dut) < 0.01 {
			t.Fatalf("trial %d: test set too ideal for a meaningful test", trial)
		}
		corrected, err := cal.Correct(raw)
		if err != nil {
			t.Fatalf("trial %d: Correct: %v", trial, err)
		}
		if d := twoport.MaxAbsDiff(corrected, dut); d > 1e-8 {
			t.Fatalf("trial %d: corrected DUT off by %g", trial, d)
		}
	}
}

func TestCalibrationIdempotentOnThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := RandomTestSet(rng)
	thru := twoport.Mat2{{0, 1}, {1, 0}}
	thruRaw, err := ts.Raw(thru, 50)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(50, MeasureSOL(ts.PortA), MeasureSOL(ts.PortB), thruRaw)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	got, err := cal.Correct(thruRaw)
	if err != nil {
		t.Fatal(err)
	}
	if d := twoport.MaxAbsDiff(got, thru); d > 1e-8 {
		t.Errorf("corrected through off by %g", d)
	}
}

func TestBoxFromAdapterConsistent(t *testing.T) {
	// Applying the one-port view of an adapter must equal the exact
	// two-port cascade terminated in the standard.
	rng := rand.New(rand.NewSource(9))
	ts := RandomTestSet(rng)
	box := BoxFromAdapter(ts.PortA)
	for _, g := range []complex128{-1, 1, 0, 0.3 + 0.4i} {
		want := twoport.GammaIn(ts.PortA, g)
		if d := cmplx.Abs(box.Apply(g) - want); d > 1e-12 {
			t.Errorf("gamma %v: box %v vs cascade %v", g, box.Apply(g), want)
		}
	}
}
