package core

import (
	"math"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/optim"
)

var refDistributed = DistributedDesign{
	Vgs: 0.46, Vds: 3, LDegen: 0.5e-9,
	LenIn: 12e-3, StubIn: 8e-3, LenOut: 10e-3, StubOut: 6e-3,
}

func TestBuildDistributedBasics(t *testing.T) {
	b := NewBuilder(device.Golden())
	amp, err := b.BuildDistributed(refDistributed)
	if err != nil {
		t.Fatalf("BuildDistributed: %v", err)
	}
	m, err := amp.MetricsAt(1.4e9, 50)
	if err != nil {
		t.Fatalf("MetricsAt: %v", err)
	}
	if m.GTdB < 8 || m.GTdB > 25 {
		t.Errorf("GT = %g dB, want plausible amplifier gain", m.GTdB)
	}
	if m.NFdB < 0.1 || m.NFdB > 2 {
		t.Errorf("NF = %g dB, want sub-2 dB", m.NFdB)
	}
	// Line/stub lengths must actually matter.
	longer := refDistributed
	longer.StubIn = 16e-3
	amp2, err := b.BuildDistributed(longer)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := amp2.MetricsAt(1.4e9, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.S11dB-m.S11dB) < 0.1 {
		t.Error("stub length change had no visible effect on input match")
	}
}

func TestDistributedVectorRoundTrip(t *testing.T) {
	v := refDistributed.Vector()
	back := DistributedFromVector(v)
	if back != refDistributed {
		t.Errorf("round trip %+v != %+v", back, refDistributed)
	}
	lo, hi := DistributedBounds()
	if len(lo) != len(v) || len(hi) != len(v) {
		t.Fatal("bounds dimension mismatch")
	}
	for i := range lo {
		if lo[i] >= hi[i] {
			t.Errorf("bounds[%d] inverted", i)
		}
	}
}

func TestOptimizeDistributedMeetsMostGoals(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization run skipped in -short mode")
	}
	d := NewDesigner(NewBuilder(device.Golden()))
	d.Spec.NPoints = 7
	res, err := d.OptimizeDistributed(&optim.AttainOptions{Seed: 4, GlobalEvals: 2500, PolishEvals: 1500})
	if err != nil {
		t.Fatalf("OptimizeDistributed: %v", err)
	}
	e := res.Eval
	// The distributed variant carries line loss; require the main goals.
	if e.WorstNFdB > d.Spec.NFMaxDB+0.2 {
		t.Errorf("NF %g well above goal %g", e.WorstNFdB, d.Spec.NFMaxDB)
	}
	if e.MinGTdB < d.Spec.GTMinDB-1 {
		t.Errorf("GT %g well below goal %g", e.MinGTdB, d.Spec.GTMinDB)
	}
	if e.StabMargin <= 0 {
		t.Errorf("stability margin %g, want > 0", e.StabMargin)
	}
	if res.Evals == 0 {
		t.Error("missing eval count")
	}
}

func TestGroupDelayOfAmplifier(t *testing.T) {
	b := NewBuilder(device.Golden())
	amp, err := b.Build(referenceDesign)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := amp.GroupDelay(1.575e9, 50, 0)
	if err != nil {
		t.Fatalf("GroupDelay: %v", err)
	}
	// A single-stage LNA with small matching networks: group delay of
	// order 0.1-3 ns, always positive in-band.
	if gd < 0.01e-9 || gd > 5e-9 {
		t.Errorf("group delay = %g s, want 0.01-5 ns", gd)
	}
	// Ripple across a 24 MHz GNSS channel should be small (< 1 ns).
	gd2, err := amp.GroupDelay(1.575e9+12e6, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gd2-gd) > 1e-9 {
		t.Errorf("group-delay ripple %g s over 12 MHz, want < 1 ns", math.Abs(gd2-gd))
	}
}

func TestQuarterWave(t *testing.T) {
	b := NewBuilder(device.Golden())
	l, err := b.QuarterWaveLength(1.575e9)
	if err != nil {
		t.Fatal(err)
	}
	// RO4350 epsEff ~2.9: lambda/4 ~ 28 mm.
	if l < 20e-3 || l > 40e-3 {
		t.Errorf("quarter wave = %g mm, want ~28", l*1e3)
	}
}
