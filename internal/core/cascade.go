package core

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/optim"
	"gnsslna/internal/twoport"
)

// TwoStage is a cascade of two single-stage amplifiers sharing the same
// transistor type: the topology for receivers that need more gain than one
// stage delivers (e.g. driving a long antenna cable). Friis makes the first
// stage dominate the noise and the second the gain, which is exactly how
// the goal weights are arranged in OptimizeTwoStage.
type TwoStage struct {
	// First and Second are the stages in signal order.
	First, Second *Amplifier
}

// BuildTwoStage materializes both stages from their designs.
func (b *Builder) BuildTwoStage(d1, d2 Design) (*TwoStage, error) {
	first, err := b.Build(d1)
	if err != nil {
		return nil, fmt.Errorf("core: two-stage first: %w", err)
	}
	second, err := b.Build(d2)
	if err != nil {
		return nil, fmt.Errorf("core: two-stage second: %w", err)
	}
	return &TwoStage{First: first, Second: second}, nil
}

// NoisyAt returns the cascade as a noisy two-port at f.
func (t *TwoStage) NoisyAt(f float64) (noise.TwoPort, error) {
	a, err := t.First.NoisyAt(f)
	if err != nil {
		return noise.TwoPort{}, err
	}
	b, err := t.Second.NoisyAt(f)
	if err != nil {
		return noise.TwoPort{}, err
	}
	return a.Cascade(b), nil
}

// MetricsAt evaluates the cascade at one frequency.
func (t *TwoStage) MetricsAt(f, z0 float64) (PointMetrics, error) {
	tp, err := t.NoisyAt(f)
	if err != nil {
		return PointMetrics{}, err
	}
	s, err := tp.S(z0)
	if err != nil {
		return PointMetrics{}, err
	}
	m := PointMetrics{
		Freq:  f,
		NFdB:  mathx.DB10(tp.FigureY(complex(1/z0, 0))),
		GTdB:  mathx.DB10(twoport.TransducerGain(s, 0, 0)),
		S11dB: db20Mag(s[0][0]),
		S22dB: db20Mag(s[1][1]),
		K:     twoport.RolletK(s),
		Mu:    twoport.MuSource(s),
	}
	if p, err := tp.NoiseParams(z0); err == nil {
		m.FminDB = p.FminDB()
	}
	return m, nil
}

// Ids returns the total drain current of both stages.
func (t *TwoStage) Ids() float64 { return t.First.Ids() + t.Second.Ids() }

// PowerDissipation returns the combined DC power of both stages.
func (t *TwoStage) PowerDissipation() float64 {
	return t.First.PowerDissipation() + t.Second.PowerDissipation()
}

// TwoStageSpec extends the single-stage spec with cascade goals.
type TwoStageSpec struct {
	// Spec carries the band and match goals.
	Spec
	// GTMinDB overrides the gain goal for the cascade.
	GTMinDB float64
}

// DefaultTwoStageSpec targets 30 dB cascade gain at under 1 dB noise.
func DefaultTwoStageSpec() TwoStageSpec {
	s := DefaultSpec()
	s.PdcMaxW = 0.5
	return TwoStageSpec{Spec: s, GTMinDB: 30}
}

// TwoStageResult reports the cascade optimization.
type TwoStageResult struct {
	// D1 and D2 are the per-stage designs.
	D1, D2 Design
	// WorstNFdB, MinGTdB, StabMargin, PdcW grade the cascade over the band.
	WorstNFdB, MinGTdB, StabMargin, PdcW float64
	// Gamma is the attainment factor.
	Gamma float64
	// Evals counts band evaluations.
	Evals int
}

// OptimizeTwoStage selects both stages jointly (12 free parameters) with
// the improved goal-attainment method.
func (d *Designer) OptimizeTwoStage(spec TwoStageSpec, opts *optim.AttainOptions) (TwoStageResult, error) {
	lo1, hi1 := DesignBounds()
	lo := append(append([]float64(nil), lo1...), lo1...)
	hi := append(append([]float64(nil), hi1...), hi1...)
	points := spec.points()
	stab := spec.stabPoints()
	evals := 0

	evaluate := func(x []float64) (nf, gt, margin, pdc float64, err error) {
		ts, err := d.Builder.BuildTwoStage(DesignFromVector(x[:6]), DesignFromVector(x[6:]))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		nf, gt, margin = math.Inf(-1), math.Inf(1), math.Inf(1)
		for _, f := range points {
			m, err := ts.MetricsAt(f, d.z0())
			if err != nil {
				return 0, 0, 0, 0, err
			}
			nf = math.Max(nf, m.NFdB)
			gt = math.Min(gt, m.GTdB)
			margin = math.Min(margin, m.Mu-1)
		}
		for _, f := range stab {
			m, err := ts.MetricsAt(f, d.z0())
			if err != nil {
				return 0, 0, 0, 0, err
			}
			margin = math.Min(margin, m.Mu-1)
		}
		return nf, gt, margin, ts.PowerDissipation(), nil
	}

	obj := func(x []float64) []float64 {
		evals++
		nf, gt, margin, pdc, err := evaluate(x)
		if err != nil {
			return []float64{99, 99, 99, 99}
		}
		out := []float64{nf, -gt, -margin, pdc}
		if margin <= 0 {
			pen := 50 * (0.02 - margin)
			for i := range out {
				out[i] += pen
			}
		}
		return out
	}
	goals := []optim.Goal{
		{Name: "NFmax", Target: spec.NFMaxDB, Weight: 0.5},
		{Name: "GTmin", Target: -spec.GTMinDB, Weight: 1},
		{Name: "stability", Target: -0.02, Weight: 0.5},
		{Name: "Pdc", Target: spec.PdcMaxW, Weight: 0.2},
	}
	res, err := optim.GoalAttainImproved(obj, goals, lo, hi, opts)
	if err != nil {
		return TwoStageResult{}, fmt.Errorf("core: optimize two-stage: %w", err)
	}
	nf, gt, margin, pdc, err := evaluate(res.X)
	if err != nil {
		return TwoStageResult{}, err
	}
	return TwoStageResult{
		D1:         DesignFromVector(res.X[:6]),
		D2:         DesignFromVector(res.X[6:]),
		WorstNFdB:  nf,
		MinGTdB:    gt,
		StabMargin: margin,
		PdcW:       pdc,
		Gamma:      res.Gamma,
		Evals:      evals,
	}, nil
}
