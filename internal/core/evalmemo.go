package core

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"gnsslna/internal/device"
	"gnsslna/internal/rfpassive"
)

// EvalMemo is a bounded, content-hashed memo of band evaluations: the PR-4
// geometry cache generalized to whole Designer.Evaluate results. The key is
// an FNV-1a digest of everything the evaluation depends on — the spec grid,
// the system impedance, the substrate, the builder's passive-network values
// and the device variant (every DC, capacitance, parasitic and noise
// parameter) — paired with the exact design vector, so a hit can only occur
// when a bit-identical evaluation would be recomputed. Values are the
// immutable Evaluation structs (callers must not mutate Points — all
// in-tree consumers only read them); hits return the stored value without
// rebuilding the amplifier, which makes repeated-spec traffic (optimizer
// restarts, job-server retries, identical tenant requests) cache hits
// instead of full sweeps.
//
// The memo is safe for concurrent use and shared: NewDesigner attaches the
// process-wide default, so every serve worker attempt, sweep and optimizer
// run in the process shares one LRU. Because evaluations are deterministic,
// a hit is bit-identical to recomputation — worker counts and restarts
// cannot change Results.
//
// Storage is sharded by key so the parallel evaluation fan-out (EvalPool at
// NumCPU width, each evaluation tens of microseconds) does not serialize on
// one mutex: each shard is an independent mutex + map + LRU list, and the
// capacity bound is split across shards.
//
// Admission is gated by a doorkeeper: a key is only stored on its second
// miss. Optimizer populations evaluate almost every design exactly once;
// admitting those single-shot candidates would turn the LRU into a pure
// churn pump (allocate entry, retain Points, evict, collect) whose GC
// pressure measurably slows the parallel fan-out. The doorkeeper records
// only the key's hash on the first miss, so one-shot traffic costs eight
// bytes, while genuinely repeated evaluations (serve retries, identical
// tenant specs, optimizer restarts) are admitted on the second sighting and
// hit from the third on.
type EvalMemo struct {
	shards [memoShardCount]memoShard

	hits, misses, evictions atomic.Int64
}

// memoShardCount is a power of two so shard selection is a mask.
const memoShardCount = 16

type memoShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[memoKey]*list.Element
	order    list.List // front = most recently used

	// seen holds the doorkeeper hashes of keys missed once. Cleared
	// wholesale when it outgrows its bound (a hash collision admits a key
	// one miss early — harmless).
	seen map[uint64]struct{}
}

// memoKey identifies one evaluation: the context digest plus the exact
// design vector. Keeping the design out of the hash (compared with ==)
// removes the dominant collision source — distinct designs under the same
// spec — entirely.
type memoKey struct {
	ctx    uint64
	design Design
}

type memoEntry struct {
	key memoKey
	ev  Evaluation
}

// NewEvalMemo returns a memo bounded to roughly capacity entries (LRU
// eviction per shard, capacity split evenly across shards). Capacity <= 0
// disables storage (every lookup misses).
func NewEvalMemo(capacity int) *EvalMemo {
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + memoShardCount - 1) / memoShardCount
	}
	m := &EvalMemo{}
	for i := range m.shards {
		m.shards[i].capacity = perShard
		m.shards[i].entries = make(map[memoKey]*list.Element, perShard)
		m.shards[i].seen = make(map[uint64]struct{})
	}
	return m
}

// canonBits returns the hashing bit pattern of v with the two IEEE-754
// zeros collapsed onto +0.0. The shard maps and the memoKey comparison use
// Go's ==, which treats -0.0 and +0.0 as equal; the hash must agree, or a
// design touching an optimizer bound at zero would hash (and shard, and
// doorkeep) differently from its +0.0-equal twin — duplicate entries in two
// shards and permanently missed hits. NaN needs no canonicalization here:
// NaN-bearing designs never reach the memo (Evaluate's x == x gate rejects
// them, because NaN keys could never hit) and NaN context fields hash by
// whatever bit pattern the deterministic pipelines propagate, which is
// stable run to run.
func canonBits(v float64) uint64 {
	if v == 0 {
		v = 0 // -0.0 == 0 is true; the assignment rewrites it to +0.0
	}
	return math.Float64bits(v)
}

// keyHash remixes the context digest with the design vector's bits
// (word-granularity FNV-1a, zero-canonicalized). The top bits select the
// shard; the full value feeds the shard's doorkeeper.
func keyHash(key memoKey) uint64 {
	h := key.ctx
	d := key.design
	h = (h ^ canonBits(d.Vgs)) * fnvPrime64
	h = (h ^ canonBits(d.Vds)) * fnvPrime64
	h = (h ^ canonBits(d.LIn)) * fnvPrime64
	h = (h ^ canonBits(d.LDegen)) * fnvPrime64
	h = (h ^ canonBits(d.LOut)) * fnvPrime64
	h = (h ^ canonBits(d.COut)) * fnvPrime64
	return h
}

// shard selects by the hash's top bits (multiplication mixes entropy
// upward), so designs under one context — the common case inside a single
// optimizer run — spread evenly.
func (m *EvalMemo) shard(h uint64) *memoShard {
	return &m.shards[h>>(64-4)]
}

// defaultEvalMemo is the process-wide memo NewDesigner attaches: serve
// workers, experiment suites and CLI runs share it without further wiring.
var defaultEvalMemo = NewEvalMemo(4096)

// DefaultEvalMemo returns the process-wide shared memo.
func DefaultEvalMemo() *EvalMemo { return defaultEvalMemo }

// lookup returns the memoized evaluation for key, refreshing its recency.
func (m *EvalMemo) lookup(key memoKey) (Evaluation, bool) {
	if m == nil {
		return Evaluation{}, false
	}
	s := m.shard(keyHash(key))
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		m.misses.Add(1)
		return Evaluation{}, false
	}
	s.order.MoveToFront(el)
	ev := el.Value.(*memoEntry).ev
	s.mu.Unlock()
	m.hits.Add(1)
	return ev, true
}

// store memoizes a successful evaluation once its key has been missed
// before (doorkeeper admission), evicting the least recently used entry
// beyond the shard's capacity.
func (m *EvalMemo) store(key memoKey, ev Evaluation) {
	if m == nil {
		return
	}
	h := keyHash(key)
	s := m.shard(h)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		// A concurrent evaluation of the same design already landed; keep it
		// (deterministic evaluation makes the two values identical).
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if _, seen := s.seen[h]; !seen {
		// First sighting: record the hash and decline admission. The bound
		// keeps one-shot floods from growing the doorkeeper without limit.
		if len(s.seen) >= 8*s.capacity {
			clear(s.seen)
		}
		s.seen[h] = struct{}{}
		s.mu.Unlock()
		return
	}
	delete(s.seen, h)
	s.entries[key] = s.order.PushFront(&memoEntry{key: key, ev: ev})
	var evicted int64
	for s.order.Len() > s.capacity {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*memoEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		m.evictions.Add(evicted)
	}
}

// MemoStats is a point-in-time snapshot of the memo counters.
type MemoStats struct {
	// Hits and Misses count lookups; Evictions counts LRU removals.
	Hits, Misses, Evictions int64
	// Size is the current number of memoized evaluations.
	Size int
}

// Stats snapshots the counters (nil-safe).
func (m *EvalMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	size := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		size += s.order.Len()
		s.mu.Unlock()
	}
	return MemoStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
		Size:      size,
	}
}

// memoCtx is the comparable snapshot of everything (besides the design
// vector) an evaluation depends on. Comparing snapshots is how the cached
// context digest is invalidated without re-hashing per call; the device is
// keyed by pointer here (swap in a fresh *PHEMT to change parameters, as
// the variant constructors do) while its full content goes into the digest.
type memoCtx struct {
	spec Spec
	z0   float64
	dev  *device.PHEMT
	sub  rfpassive.Substrate

	gateBiasR, drainRailR, gateDampR, drainDampR, stabR, stabL float64

	ideal bool
}

// ctxDigest pairs a snapshot with its FNV-1a digest.
type ctxDigest struct {
	ctx  memoCtx
	hash uint64
}

// snapshotCtx captures the designer's current evaluation context, or false
// when there is no builder/device to key on.
func (d *Designer) snapshotCtx() (memoCtx, bool) {
	b := d.Builder
	if b == nil || b.Dev == nil {
		return memoCtx{}, false
	}
	return memoCtx{
		spec:       d.Spec,
		z0:         d.z0(),
		dev:        b.Dev,
		sub:        b.Sub,
		gateBiasR:  b.GateBiasR,
		drainRailR: b.DrainRailR,
		gateDampR:  b.GateDampR,
		drainDampR: b.DrainDampR,
		stabR:      b.StabR,
		stabL:      b.StabL,
		ideal:      b.IdealPassives,
	}, true
}

// ctxHash returns the FNV-1a digest of the current evaluation context,
// memoized against the comparable snapshot so the memo hit path stays
// allocation-free.
func (d *Designer) ctxHash() (uint64, bool) {
	ctx, ok := d.snapshotCtx()
	if !ok {
		return 0, false
	}
	if c := d.ctxKey.Load(); c != nil && c.ctx == ctx {
		return c.hash, true
	}
	h := hashCtx(ctx)
	d.ctxKey.Store(&ctxDigest{ctx: ctx, hash: h})
	return h, true
}

// FNV-1a, 64 bit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// fnvF64 folds a float64 into the digest with the same zero
// canonicalization as keyHash (see canonBits): context snapshots are
// compared with ==, so -0.0 and +0.0 contexts must share one digest.
func fnvF64(h uint64, v float64) uint64 { return fnvU64(h, canonBits(v)) }

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	// Length terminator keeps concatenated strings from colliding.
	return fnvU64(h, uint64(len(s)))
}

func fnvBool(h uint64, v bool) uint64 {
	if v {
		return fnvByte(h, 1)
	}
	return fnvByte(h, 0)
}

// hashCtx digests the full evaluation context content. Unlike the snapshot,
// the device is hashed by value — name, DC parameter vector, capacitance
// model, intrinsics, extrinsics and noise temperatures — so two builders
// holding identical device content share memo entries.
func hashCtx(c memoCtx) uint64 {
	h := uint64(fnvOffset64)
	// Spec (the grid derives from these fields alone).
	h = fnvF64(h, c.spec.FLow)
	h = fnvF64(h, c.spec.FHigh)
	h = fnvU64(h, uint64(int64(c.spec.NPoints)))
	h = fnvF64(h, c.spec.NFMaxDB)
	h = fnvF64(h, c.spec.GTMinDB)
	h = fnvF64(h, c.spec.S11MaxDB)
	h = fnvF64(h, c.spec.S22MaxDB)
	h = fnvF64(h, c.spec.StabLow)
	h = fnvF64(h, c.spec.StabHigh)
	h = fnvF64(h, c.spec.PdcMaxW)
	h = fnvF64(h, c.z0)
	// Substrate.
	h = fnvF64(h, c.sub.Er)
	h = fnvF64(h, c.sub.H)
	h = fnvF64(h, c.sub.TanD)
	h = fnvF64(h, c.sub.Rho)
	h = fnvF64(h, c.sub.Temp)
	// Builder passives.
	h = fnvF64(h, c.gateBiasR)
	h = fnvF64(h, c.drainRailR)
	h = fnvF64(h, c.gateDampR)
	h = fnvF64(h, c.drainDampR)
	h = fnvF64(h, c.stabR)
	h = fnvF64(h, c.stabL)
	h = fnvBool(h, c.ideal)
	// Device variant.
	dev := c.dev
	h = fnvStr(h, dev.Name)
	for _, p := range dev.DC.Params() {
		h = fnvF64(h, p)
	}
	h = fnvF64(h, dev.Caps.Cgs0)
	h = fnvF64(h, dev.Caps.CgsPinch)
	h = fnvF64(h, dev.Caps.CgsVmid)
	h = fnvF64(h, dev.Caps.CgsVscale)
	h = fnvF64(h, dev.Caps.Cgd0)
	h = fnvF64(h, dev.Caps.CgdVscale)
	h = fnvF64(h, dev.Caps.Cds)
	h = fnvF64(h, dev.Ri)
	h = fnvF64(h, dev.Tau)
	h = fnvF64(h, dev.Ext.Rg)
	h = fnvF64(h, dev.Ext.Rs)
	h = fnvF64(h, dev.Ext.Rd)
	h = fnvF64(h, dev.Ext.Lg)
	h = fnvF64(h, dev.Ext.Ls)
	h = fnvF64(h, dev.Ext.Ld)
	h = fnvF64(h, dev.Ext.Cpg)
	h = fnvF64(h, dev.Ext.Cpd)
	h = fnvF64(h, dev.Noise.Tg)
	h = fnvF64(h, dev.Noise.Td0)
	h = fnvF64(h, dev.Noise.TdSlope)
	h = fnvF64(h, dev.Noise.Ta)
	return h
}
