package core

import (
	"fmt"

	"gnsslna/internal/device"
	"gnsslna/internal/mna"
	"gnsslna/internal/units"
)

// BiasNetwork is the DC side of the amplifier: a gate divider from the
// supply and a drain feed resistor, with the values chosen so the
// transistor lands on the optimized operating point after every resistor
// is snapped to the E24 series.
type BiasNetwork struct {
	// Vcc is the supply voltage.
	Vcc float64
	// R1 (supply to gate) and R2 (gate to ground) form the divider.
	R1, R2 float64
	// RDrain drops the supply to the drain (carries Ids).
	RDrain float64
	// Achieved is the operating point the full nonlinear solve lands on.
	Achieved struct {
		Vgs, Vds, IdsA float64
	}
}

// DesignBiasNetwork synthesizes the DC network for a design and verifies it
// with the nonlinear MNA solve against the actual transistor model. The
// divider current is set to ~50x the (zero) gate current for stiffness,
// i.e. around 100 uA.
func (d *Designer) DesignBiasNetwork(x Design, vcc float64) (BiasNetwork, error) {
	if vcc <= x.Vds {
		return BiasNetwork{}, fmt.Errorf("core: Vcc %.2f V below target Vds %.2f V", vcc, x.Vds)
	}
	if x.Vgs <= 0 || x.Vgs >= vcc {
		return BiasNetwork{}, fmt.Errorf("core: gate target %.2f V not reachable from a %.2f V divider", x.Vgs, vcc)
	}
	dev := d.Builder.Dev
	ids := dev.Ids(device.Bias{Vgs: x.Vgs, Vds: x.Vds})
	if ids < 1e-3 {
		return BiasNetwork{}, fmt.Errorf("core: design draws only %.3g A drain current", ids)
	}
	bn := BiasNetwork{Vcc: vcc}
	// Drain resistor from the voltage headroom.
	bn.RDrain = units.SnapE24((vcc - x.Vds) / ids)
	// Divider: ~100 uA chain current.
	const idiv = 100e-6
	bn.R2 = units.SnapE24(x.Vgs / idiv)
	bn.R1 = units.SnapE24((vcc - x.Vgs) / idiv)

	// Verify with the nonlinear DC solve.
	c := mna.NewDC()
	c.AddV("vcc", "0", vcc)
	c.AddR("vcc", "gate", bn.R1)
	c.AddR("gate", "0", bn.R2)
	c.AddR("vcc", "drain", bn.RDrain)
	c.AddFET(dev.DC, "gate", "drain", "0")
	v, err := c.OperatingPoint()
	if err != nil {
		return BiasNetwork{}, fmt.Errorf("core: bias verification: %w", err)
	}
	bias, gotIds, err := c.FETBias(v, 0)
	if err != nil {
		return BiasNetwork{}, err
	}
	bn.Achieved.Vgs = bias.Vgs
	bn.Achieved.Vds = bias.Vds
	bn.Achieved.IdsA = gotIds
	return bn, nil
}

// BOMLine is one bill-of-materials entry.
type BOMLine struct {
	// Ref is the schematic reference designator.
	Ref string
	// Value is the formatted component value.
	Value string
	// Role describes the component's function.
	Role string
}

// BOM produces the buildable bill of materials for a snapped design plus
// its bias network.
func (d *Designer) BOM(x Design, bn BiasNetwork) []BOMLine {
	b := d.Builder
	return []BOMLine{
		{Ref: "Q1", Value: b.Dev.Name, Role: "low-noise pHEMT"},
		{Ref: "L1", Value: units.Format(x.LIn, "H"), Role: "input series match"},
		{Ref: "L2", Value: units.Format(x.LOut, "H"), Role: "output series match"},
		{Ref: "L3", Value: units.Format(x.LDegen, "H"), Role: "source degeneration (stub/via)"},
		{Ref: "L4", Value: units.Format(68e-9, "H"), Role: "gate bias feed"},
		{Ref: "L5", Value: units.Format(68e-9, "H"), Role: "drain bias feed"},
		{Ref: "L6", Value: units.Format(b.StabL, "H"), Role: "output stabilizer inductor"},
		{Ref: "C1", Value: units.Format(100e-12, "F"), Role: "input DC block"},
		{Ref: "C2", Value: units.Format(x.COut, "F"), Role: "output shunt match"},
		{Ref: "C3", Value: units.Format(100e-12, "F"), Role: "output DC block"},
		{Ref: "C4", Value: units.Format(100e-12, "F"), Role: "gate feed bypass"},
		{Ref: "C5", Value: units.Format(100e-12, "F"), Role: "drain feed bypass"},
		{Ref: "R1", Value: units.Format(bn.R1, "Ohm"), Role: "gate divider (top)"},
		{Ref: "R2", Value: units.Format(bn.R2, "Ohm"), Role: "gate divider (bottom)"},
		{Ref: "R3", Value: units.Format(bn.RDrain, "Ohm"), Role: "drain feed"},
		{Ref: "R4", Value: units.Format(b.GateDampR, "Ohm"), Role: "gate feed damper"},
		{Ref: "R5", Value: units.Format(b.DrainDampR, "Ohm"), Role: "drain feed damper"},
		{Ref: "R6", Value: units.Format(b.StabR, "Ohm"), Role: "output stabilizer resistor"},
	}
}

// PowerUpReport summarizes the supply-ramp transient of the bias network.
type PowerUpReport struct {
	// GatePeak and GateFinal are the peak and settled gate voltages.
	GatePeak, GateFinal float64
	// DrainFinal is the settled drain voltage.
	DrainFinal float64
	// OvershootFrac is (peak-final)/final at the gate (0 = monotone).
	OvershootFrac float64
}

// PowerUpCheck simulates the supply ramping to Vcc over riseTime through
// the designed bias network (including the bypass capacitors and the
// transistor's nonlinear load) and reports the gate transient. A large gate
// overshoot would stress the device beyond its DC ratings even though the
// static design is fine — the check frequency-domain analysis cannot do.
func (d *Designer) PowerUpCheck(bn BiasNetwork, riseTime float64) (PowerUpReport, error) {
	if riseTime <= 0 {
		riseTime = 1e-4
	}
	tr := mna.NewTransient()
	tr.AddV("vcc", "0", mna.RampV(bn.Vcc, riseTime))
	tr.AddR("vcc", "gate", bn.R1)
	tr.AddR("gate", "0", bn.R2)
	tr.AddC("gate", "0", 100e-12) // gate bypass
	tr.AddR("vcc", "drain", bn.RDrain)
	tr.AddC("drain", "0", 100e-12) // drain bypass
	tr.AddFET(d.Builder.Dev.DC, "gate", "drain", "0")
	wf, err := tr.Run(5*riseTime, riseTime/200, []string{"gate", "drain"})
	if err != nil {
		return PowerUpReport{}, fmt.Errorf("core: power-up transient: %w", err)
	}
	rep := PowerUpReport{
		GatePeak:   wf["gate"].Max(),
		GateFinal:  wf["gate"].Final(),
		DrainFinal: wf["drain"].Final(),
	}
	if rep.GateFinal > 0 {
		rep.OvershootFrac = (rep.GatePeak - rep.GateFinal) / rep.GateFinal
		if rep.OvershootFrac < 0 {
			rep.OvershootFrac = 0
		}
	}
	return rep, nil
}

// BiasError reports how far the snapped bias network lands from the design
// target, in volts and relative drain current.
func (bn BiasNetwork) BiasError(x Design) (dVgs, dVds, relIds float64) {
	dVgs = bn.Achieved.Vgs - x.Vgs
	dVds = bn.Achieved.Vds - x.Vds
	// Relative current error needs the target; derive from the headroom.
	target := (bn.Vcc - x.Vds) / bn.RDrain
	if target > 0 {
		relIds = (bn.Achieved.IdsA - target) / target
	}
	return dVgs, dVds, relIds
}
