package core

import (
	"math"
	"testing"
)

// TestSweepsBitIdenticalAcrossWorkers pins the determinism contract of the
// parallel corner / sensitivity / yield sweeps: the serial result and the
// fanned-out result are bit-identical because all randomness and all
// aggregation stay on the driving goroutine.
func TestSweepsBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep parity skipped in -short mode")
	}
	serial := fastDesigner()
	serial.Spec.NPoints = 5
	parallel := fastDesigner()
	parallel.Spec.NPoints = 5
	parallel.Workers = 4

	sc, err := serial.Corners(referenceDesign, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := parallel.Corners(referenceDesign, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Corners) != len(pc.Corners) {
		t.Fatalf("corner count %d != %d", len(pc.Corners), len(sc.Corners))
	}
	for i := range sc.Corners {
		if sc.Corners[i].Label != pc.Corners[i].Label {
			t.Fatalf("corner %d label %q != %q", i, pc.Corners[i].Label, sc.Corners[i].Label)
		}
		if !bitsEqual(sc.Corners[i].Eval.WorstNFdB, pc.Corners[i].Eval.WorstNFdB) {
			t.Fatalf("corner %d NF differs across workers", i)
		}
	}
	if !bitsEqual(sc.WorstNFdB, pc.WorstNFdB) || !bitsEqual(sc.WorstGTdB, pc.WorstGTdB) || sc.AllPass != pc.AllPass {
		t.Fatal("corner aggregates differ across workers")
	}

	ss, err := serial.Sensitivity(referenceDesign, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := parallel.Sensitivity(referenceDesign, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if ss[i].Param != ps[i].Param ||
			!bitsEqual(ss[i].DeltaNFdB, ps[i].DeltaNFdB) ||
			!bitsEqual(ss[i].DeltaGTdB, ps[i].DeltaGTdB) {
			t.Fatalf("sensitivity entry %d differs across workers: %+v vs %+v", i, ss[i], ps[i])
		}
	}

	sy, err := serial.Yield(referenceDesign, 0.05, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	py, err := parallel.Yield(referenceDesign, 0.05, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sy.Trials != py.Trials ||
		!bitsEqual(sy.PassRate, py.PassRate) ||
		!bitsEqual(sy.NF95dB, py.NF95dB) ||
		!bitsEqual(sy.GT5dB, py.GT5dB) {
		t.Fatalf("yield report differs across workers: %+v vs %+v", py, sy)
	}
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
