package core

import (
	"fmt"
	"math"

	"gnsslna/internal/optim"
)

// CornerResult is the band evaluation at one tolerance corner.
type CornerResult struct {
	// Label encodes the corner as a +/- string per toleranced parameter
	// (LIn, LOut, COut, Vgs, Vds), e.g. "+-+OO" (O = nominal).
	Label string
	// Eval grades the corner.
	Eval Evaluation
	// Pass reports whether the corner still meets the spec.
	Pass bool
}

// CornerReport summarizes the exhaustive corner analysis.
type CornerReport struct {
	// Corners holds every evaluated corner.
	Corners []CornerResult
	// WorstNFdB, WorstGTdB are the extreme band values over all corners.
	WorstNFdB, WorstGTdB float64
	// AllPass reports whether every corner met the spec.
	AllPass bool
}

// Corners runs the exhaustive worst-case analysis: every combination of the
// three matching elements at +/- tol and the bias voltages at +/- vtol
// (2^5 = 32 corners). Where the Monte Carlo yield estimates the typical
// spread, the corner analysis bounds it. The 32 independent band
// evaluations fan out across d.Workers goroutines; the corner list,
// aggregate extremes and returned error are assembled serially in corner
// order, so the report is identical for any worker count.
func (d *Designer) Corners(x Design, tol, vtol float64) (CornerReport, error) {
	if tol <= 0 {
		tol = 0.05
	}
	if vtol <= 0 {
		vtol = 0.02
	}
	signs := []float64{-1, 1}
	// Enumerate the corners in the canonical nested-loop order first, then
	// evaluate the batch.
	type corner struct {
		label  string
		design Design
	}
	corners := make([]corner, 0, 32)
	for _, sL1 := range signs {
		for _, sL2 := range signs {
			for _, sC := range signs {
				for _, sVg := range signs {
					for _, sVd := range signs {
						p := x
						p.LIn *= 1 + sL1*tol
						p.LOut *= 1 + sL2*tol
						p.COut *= 1 + sC*tol
						p.Vgs *= 1 + sVg*vtol
						p.Vds *= 1 + sVd*vtol
						corners = append(corners, corner{
							label:  cornerLabel(sL1, sL2, sC, sVg, sVd),
							design: p,
						})
					}
				}
			}
		}
	}
	evs := make([]Evaluation, len(corners))
	errs := make([]error, len(corners))
	optim.NewEvalPool(d.Workers).Each(len(corners), func(i int) {
		evs[i], errs[i] = d.Evaluate(corners[i].design)
	})
	rep := CornerReport{AllPass: true, WorstGTdB: math.Inf(1), WorstNFdB: math.Inf(-1)}
	for i, c := range corners {
		if errs[i] != nil {
			return CornerReport{}, fmt.Errorf("core: corner: %w", errs[i])
		}
		ev := evs[i]
		pass := ev.WorstNFdB <= d.Spec.NFMaxDB &&
			ev.MinGTdB >= d.Spec.GTMinDB &&
			ev.WorstS11dB <= d.Spec.S11MaxDB &&
			ev.WorstS22dB <= d.Spec.S22MaxDB &&
			ev.StabMargin > 0
		rep.Corners = append(rep.Corners, CornerResult{Label: c.label, Eval: ev, Pass: pass})
		rep.WorstNFdB = math.Max(rep.WorstNFdB, ev.WorstNFdB)
		rep.WorstGTdB = math.Min(rep.WorstGTdB, ev.MinGTdB)
		rep.AllPass = rep.AllPass && pass
	}
	return rep, nil
}

func cornerLabel(signs ...float64) string {
	out := make([]byte, len(signs))
	for i, s := range signs {
		if s > 0 {
			out[i] = '+'
		} else {
			out[i] = '-'
		}
	}
	return string(out)
}
