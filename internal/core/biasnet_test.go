package core

import (
	"math"
	"testing"
)

func TestDesignBiasNetworkLandsNearTarget(t *testing.T) {
	d := fastDesigner()
	x := referenceDesign
	bn, err := d.DesignBiasNetwork(x, 5)
	if err != nil {
		t.Fatalf("DesignBiasNetwork: %v", err)
	}
	// The E24-snapped divider must land the gate within ~30 mV and the
	// drain within ~0.4 V of the target (a second iteration would tighten
	// this; the RF sensitivity analysis shows the tolerance is acceptable).
	if math.Abs(bn.Achieved.Vgs-x.Vgs) > 0.03 {
		t.Errorf("achieved Vgs %.3f vs target %.3f", bn.Achieved.Vgs, x.Vgs)
	}
	if math.Abs(bn.Achieved.Vds-x.Vds) > 0.4 {
		t.Errorf("achieved Vds %.2f vs target %.2f", bn.Achieved.Vds, x.Vds)
	}
	if bn.Achieved.IdsA <= 0 {
		t.Error("no drain current at the solved operating point")
	}
	// Resistors must be on the E24 grid and positive.
	for _, r := range []float64{bn.R1, bn.R2, bn.RDrain} {
		if r <= 0 {
			t.Errorf("non-positive resistor %g", r)
		}
	}
	dVgs, dVds, _ := bn.BiasError(x)
	if math.Abs(dVgs) > 0.03 || math.Abs(dVds) > 0.4 {
		t.Errorf("BiasError reports (%.3f, %.3f)", dVgs, dVds)
	}
}

func TestDesignBiasNetworkValidation(t *testing.T) {
	d := fastDesigner()
	if _, err := d.DesignBiasNetwork(referenceDesign, 2); err == nil {
		t.Error("Vcc below Vds accepted")
	}
	pinched := referenceDesign
	pinched.Vgs = -1.5
	if _, err := d.DesignBiasNetwork(pinched, 5); err == nil {
		t.Error("zero-current design accepted")
	}
}

func TestBOMComplete(t *testing.T) {
	d := fastDesigner()
	bn, err := d.DesignBiasNetwork(referenceDesign, 5)
	if err != nil {
		t.Fatal(err)
	}
	bom := d.BOM(d.SnapToE24(referenceDesign), bn)
	if len(bom) < 15 {
		t.Fatalf("BOM has %d lines, want a complete build list", len(bom))
	}
	refs := map[string]bool{}
	for _, l := range bom {
		if l.Ref == "" || l.Value == "" || l.Role == "" {
			t.Errorf("incomplete BOM line %+v", l)
		}
		if refs[l.Ref] {
			t.Errorf("duplicate reference %s", l.Ref)
		}
		refs[l.Ref] = true
	}
	if !refs["Q1"] {
		t.Error("transistor missing from BOM")
	}
}

func TestPowerUpCheckClean(t *testing.T) {
	d := fastDesigner()
	bn, err := d.DesignBiasNetwork(referenceDesign, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.PowerUpCheck(bn, 1e-4)
	if err != nil {
		t.Fatalf("PowerUpCheck: %v", err)
	}
	// The RC divider is monotone: no meaningful overshoot, and the settled
	// values agree with the DC verification.
	if rep.OvershootFrac > 0.02 {
		t.Errorf("gate overshoot %.1f%%", rep.OvershootFrac*100)
	}
	if math.Abs(rep.GateFinal-bn.Achieved.Vgs) > 5e-3 {
		t.Errorf("transient settles at %g, DC says %g", rep.GateFinal, bn.Achieved.Vgs)
	}
	if math.Abs(rep.DrainFinal-bn.Achieved.Vds) > 2e-2 {
		t.Errorf("drain settles at %g, DC says %g", rep.DrainFinal, bn.Achieved.Vds)
	}
}
