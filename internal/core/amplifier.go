package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync/atomic"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/rfpassive"
	"gnsslna/internal/twoport"
)

// Design is the vector of free parameters the optimization selects: the
// operating point plus the essential passive elements of the matching
// networks.
type Design struct {
	// Vgs and Vds set the transistor operating point.
	Vgs, Vds float64
	// LIn is the series input matching inductance in henries.
	LIn float64
	// LDegen is the source-degeneration inductance in henries (series
	// feedback improving simultaneous noise/power match).
	LDegen float64
	// LOut is the series output matching inductance in henries.
	LOut float64
	// COut is the shunt output matching capacitance in farads.
	COut float64
}

// Vector flattens the design for the optimizers.
func (d Design) Vector() []float64 {
	return []float64{d.Vgs, d.Vds, d.LIn, d.LDegen, d.LOut, d.COut}
}

// DesignFromVector rebuilds a Design from an optimizer vector.
func DesignFromVector(x []float64) Design {
	return Design{Vgs: x[0], Vds: x[1], LIn: x[2], LDegen: x[3], LOut: x[4], COut: x[5]}
}

// DesignBounds returns the optimizer search box.
func DesignBounds() (lo, hi []float64) {
	return []float64{0.28, 1.5, 0.5e-9, 0.05e-9, 0.3e-9, 0.2e-12},
		[]float64{0.72, 4.2, 16e-9, 2.5e-9, 14e-9, 6e-12}
}

// Amplifier is a fully materialized preamplifier: the device at its bias
// with its input/output networks, ready for frequency-domain evaluation.
type Amplifier struct {
	// Dev is the transistor (with LDegen already folded into its common
	// lead).
	Dev *device.PHEMT
	// Bias is the operating point.
	Bias device.Bias
	// Input and Output are the matching/bias networks.
	Input, Output rfpassive.Chain
	// Design records the parameter vector that produced the amplifier.
	Design Design
}

// Builder constructs amplifiers from design vectors over a fixed substrate
// and device.
type Builder struct {
	// Dev is the transistor model used for the design.
	Dev *device.PHEMT
	// Sub is the board substrate for lines and tees.
	Sub rfpassive.Substrate
	// GateBiasR is the gate bias network resistance (high, lightly loads
	// the input); DrainRailR the drain feed rail resistance.
	GateBiasR, DrainRailR float64
	// GateDampR and DrainDampR sit in series with the bias-feed inductors,
	// before the bypass capacitors. Below the band the feed inductors are
	// low impedance, so these resistors damp the low-frequency gain peak
	// that would otherwise make the stage potentially unstable; in band
	// the feed inductors isolate them from the signal path.
	GateDampR, DrainDampR float64
	// StabR and StabL form the R+L shunt stabilizer on the drain side.
	StabR, StabL float64
	// IdealPassives, when set, strips every passive of its loss and
	// parasitics (ideal L and C). The dispersion-ablation experiment uses
	// it to quantify what the paper's careful dispersive element equations
	// buy over a textbook lossless design.
	IdealPassives bool

	// geom caches the substrate-derived tee geometry: the 50-ohm line width
	// (a 100-iteration bisection) and the junction capacitance (two static
	// microstrip fits), both functions of Sub alone. Build runs once per
	// candidate evaluation, so recomputing them dominated the sweep hot
	// path. The cache lives behind a plain pointer so Builder values stay
	// copyable (ablation variants copy the builder and share the cache);
	// inside it an atomic pointer keeps concurrent Build calls race-free,
	// and recomputation after a Sub change is idempotent.
	geom *geomCache
}

// geomCache holds the memoized substrate geometry (nil disables memoization,
// for zero-value Builders that bypassed NewBuilder).
type geomCache struct {
	p atomic.Pointer[builderGeom]
}

// builderGeom is the memoized substrate geometry keyed by the (comparable)
// substrate value it was derived from.
type builderGeom struct {
	sub rfpassive.Substrate
	w50 float64
	cj  float64
	err error
}

// NewBuilder returns a builder on the default low-loss substrate.
func NewBuilder(dev *device.PHEMT) *Builder {
	return &Builder{
		Dev:        dev,
		Sub:        rfpassive.RogersRO4350(),
		GateBiasR:  3300,
		DrainRailR: 10,
		GateDampR:  47,
		DrainDampR: 12,
		StabR:      68,
		StabL:      12e-9,
		geom:       &geomCache{},
	}
}

// inductor and capacitor dispatch between realistic chip models and the
// idealized variants of the ablation study.
func (b *Builder) inductor(l float64, o rfpassive.Orientation) rfpassive.Inductor {
	el := rfpassive.NewChipInductor(l, o)
	if b.IdealPassives {
		el.RDC, el.QRef, el.Cp = 0, 0, 0
	}
	return el
}

func (b *Builder) capacitor(c float64, o rfpassive.Orientation) rfpassive.Capacitor {
	el := rfpassive.NewChipCapacitor(c, o)
	if b.IdealPassives {
		el.RS0, el.TanD, el.ESL = 0, 0, 0
	}
	return el
}

// geometry returns the memoized 50-ohm width and tee junction capacitance
// for the builder's current substrate, computing them on first use (or after
// Sub changed).
func (b *Builder) geometry() (w50, cj float64, err error) {
	if b.geom != nil {
		if g := b.geom.p.Load(); g != nil && g.sub == b.Sub {
			return g.w50, g.cj, g.err
		}
	}
	g := &builderGeom{sub: b.Sub}
	g.w50, g.err = b.Sub.WidthForZ0(50)
	if g.err == nil {
		t := rfpassive.Tee{Sub: b.Sub, WMain: g.w50, WBranch: g.w50 / 3}
		g.cj = t.JunctionCapacitance()
	}
	if b.geom != nil {
		b.geom.p.Store(g)
	}
	return g.w50, g.cj, g.err
}

// Build materializes the amplifier for a design vector.
func (b *Builder) Build(d Design) (*Amplifier, error) {
	if b.Dev == nil {
		return nil, fmt.Errorf("core: builder has no device")
	}
	w50, cj, err := b.geometry()
	if err != nil {
		return nil, fmt.Errorf("core: substrate: %w", err)
	}
	// The degeneration inductance joins the device's common source lead.
	dev := *b.Dev
	dev.Ext.Ls += d.LDegen

	// Input: DC block, series matching inductor, gate bias tee. The feed
	// branch is L(feed) -> R(damp) -> C(bypass) -> bias resistor: in band
	// the 68 nH feed isolates; below the band the damping resistor loads
	// the gate and stabilizes the stage.
	inputTee := rfpassive.Tee{
		Sub:       b.Sub,
		WMain:     w50,
		WBranch:   w50 / 3,
		CJunction: cj,
		Branch: rfpassive.Chain{
			rfpassive.NewChipInductor(68e-9, rfpassive.Series),
			rfpassive.NewChipResistor(b.GateDampR, rfpassive.Series),
			rfpassive.NewChipCapacitor(100e-12, rfpassive.Shunt),
		},
		BranchLoad: complex(b.GateBiasR, 0),
	}
	input := rfpassive.Chain{
		rfpassive.DCBlock(100e-12),
		b.inductor(d.LIn, rfpassive.Series),
		inputTee,
	}

	// Output: drain bias tee (same damped-feed structure), series
	// inductor, shunt capacitor, DC block.
	outputTee := rfpassive.Tee{
		Sub:       b.Sub,
		WMain:     w50,
		WBranch:   w50 / 3,
		CJunction: cj,
		Branch: rfpassive.Chain{
			rfpassive.NewChipInductor(68e-9, rfpassive.Series),
			rfpassive.NewChipResistor(b.DrainDampR, rfpassive.Series),
			rfpassive.NewChipCapacitor(100e-12, rfpassive.Shunt),
		},
		BranchLoad: complex(b.DrainRailR, 0),
	}
	// The R+L shunt stabilizer loads the drain below the band (where the
	// device gain peaks) and is lifted out of the way in band by its
	// inductor; being on the output it costs gain margin, not noise.
	output := rfpassive.Chain{
		rfpassive.StabilizerRL(b.StabR, b.StabL),
		outputTee,
		b.inductor(d.LOut, rfpassive.Series),
		b.capacitor(d.COut, rfpassive.Shunt),
		rfpassive.DCBlock(100e-12),
	}

	return &Amplifier{
		Dev:    &dev,
		Bias:   device.Bias{Vgs: d.Vgs, Vds: d.Vds},
		Input:  input,
		Output: output,
		Design: d,
	}, nil
}

// NoisyAt returns the complete amplifier as a noisy two-port at f.
func (a *Amplifier) NoisyAt(f float64) (noise.TwoPort, error) {
	devTP, err := a.Dev.NoisyAt(a.Bias, f)
	if err != nil {
		return noise.TwoPort{}, err
	}
	return a.Input.Noisy(f).Cascade(devTP).Cascade(a.Output.Noisy(f)), nil
}

// SAt returns the amplifier S-parameters at f referenced to z0.
func (a *Amplifier) SAt(f, z0 float64) (twoport.Mat2, error) {
	tp, err := a.NoisyAt(f)
	if err != nil {
		return twoport.Mat2{}, err
	}
	return tp.S(z0)
}

// PointMetrics summarizes the amplifier at one frequency.
type PointMetrics struct {
	// Freq is the evaluation frequency in Hz.
	Freq float64
	// NFdB is the 50-ohm noise figure in dB.
	NFdB float64
	// FminDB is the minimum possible noise figure in dB at this frequency.
	FminDB float64
	// GTdB is the 50-ohm transducer gain in dB.
	GTdB float64
	// S11dB and S22dB are the port return losses in dB (negative good).
	S11dB, S22dB float64
	// K is the Rollet stability factor; Mu the mu source stability factor.
	K, Mu float64
}

// MetricsAt evaluates the amplifier at one frequency — the per-point view
// of the band engine (see band.go): both paths reduce a noisy two-port to
// PointMetrics with the same pointMetricsOf.
func (a *Amplifier) MetricsAt(f, z0 float64) (PointMetrics, error) {
	tp, err := a.NoisyAt(f)
	if err != nil {
		return PointMetrics{}, err
	}
	return pointMetricsOf(tp, f, z0)
}

// pointMetricsOf reduces the amplifier's noisy two-port at f to its metric
// summary; the single definition both the per-point and batch paths share.
func pointMetricsOf(tp noise.TwoPort, f, z0 float64) (PointMetrics, error) {
	s, err := tp.S(z0)
	if err != nil {
		return PointMetrics{}, err
	}
	m := PointMetrics{
		Freq:  f,
		NFdB:  mathx.DB10(tp.FigureY(complex(1/z0, 0))),
		GTdB:  mathx.DB10(twoport.TransducerGain(s, 0, 0)),
		S11dB: db20Mag(s[0][0]),
		S22dB: db20Mag(s[1][1]),
		K:     twoport.RolletK(s),
		Mu:    twoport.MuSource(s),
	}
	if p, err := tp.NoiseParams(z0); err == nil {
		m.FminDB = p.FminDB()
	}
	return m, nil
}

// Sweep evaluates the amplifier over a frequency list, riding the band
// engine. On a band-path error it falls back to the per-point loop so the
// error carries the historic per-frequency wrapping.
func (a *Amplifier) Sweep(freqs []float64, z0 float64) ([]PointMetrics, error) {
	out := make([]PointMetrics, len(freqs))
	ws := getBandWorkspace()
	err := a.MetricsBandInto(ws, out, freqs, z0)
	putBandWorkspace(ws)
	if err == nil {
		return out, nil
	}
	for i, f := range freqs {
		m, err := a.MetricsAt(f, z0)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at %g Hz: %w", f, err)
		}
		out[i] = m
	}
	return out, nil
}

// GroupDelay returns the transmission group delay -d(phase S21)/d(omega) in
// seconds at f, by central difference with relative step rel (1e-4 when
// zero). GNSS receivers are sensitive to group-delay ripple across the
// signal bandwidth, so the verification sweep reports it.
func (a *Amplifier) GroupDelay(f, z0, rel float64) (float64, error) {
	if rel <= 0 {
		rel = 1e-4
	}
	df := f * rel
	freqs := [2]float64{f - df, f + df}
	var s [2]twoport.Mat2
	ws := getBandWorkspace()
	err := a.sBandInto(ws, s[:], freqs[:], z0)
	putBandWorkspace(ws)
	if err != nil {
		return 0, err
	}
	sLo, sHi := s[0], s[1]
	// Unwrapped phase difference via the quotient avoids 2*pi ambiguities
	// for small steps.
	dphi := cmplx.Phase(sHi[1][0] / sLo[1][0])
	return -dphi / (2 * math.Pi * 2 * df), nil
}

// Network renders the amplifier S-parameters over freqs as a Network for
// Touchstone export or VNA comparison.
func (a *Amplifier) Network(freqs []float64, z0 float64) (*twoport.Network, error) {
	mats := make([]twoport.Mat2, len(freqs))
	ws := getBandWorkspace()
	err := a.sBandInto(ws, mats, freqs, z0)
	putBandWorkspace(ws)
	if err != nil {
		return nil, err
	}
	return twoport.NewNetwork(z0, freqs, mats)
}

// Ids returns the drain bias current of the amplifier.
func (a *Amplifier) Ids() float64 { return a.Dev.Ids(a.Bias) }

// PowerDissipation returns the DC power drawn from the drain supply in
// watts.
func (a *Amplifier) PowerDissipation() float64 {
	return a.Ids() * a.Bias.Vds
}

func db20Mag(v complex128) float64 {
	m := math.Hypot(real(v), imag(v))
	if m <= 0 {
		return math.Inf(-1)
	}
	return mathx.DB20(m)
}
