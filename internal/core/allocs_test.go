package core

import (
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
)

// Allocation fences for the band engine and the evaluation memo: the whole
// point of the stamp-once/solve-many design is that the steady state runs
// out of reused slabs, so any new allocation on these paths is a
// performance regression the benchmarks would only show as noise. Pinned to
// exactly zero; run under `make verify` (the race pass skips them — the
// detector instruments allocations).

func allocFixture(t *testing.T) (*Amplifier, []float64) {
	t.Helper()
	b := NewBuilder(device.Golden())
	amp, err := b.Build(Design{Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12})
	if err != nil {
		t.Fatal(err)
	}
	return amp, mathx.Linspace(1.1e9, 1.7e9, 11)
}

// TestMetricsBandIntoZeroAllocSteadyState pins the warmed band evaluation —
// compiled chains bound, slabs sized — to zero allocations per grid pass.
func TestMetricsBandIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	amp, freqs := allocFixture(t)
	ws := getBandWorkspace()
	defer putBandWorkspace(ws)
	dst := make([]PointMetrics, len(freqs))
	if err := amp.MetricsBandInto(ws, dst, freqs, 50); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := amp.MetricsBandInto(ws, dst, freqs, 50); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("MetricsBandInto steady state allocates %.1f times per pass, want 0", n)
	}
}

// TestMuBandIntoZeroAllocSteadyState pins the A-only stability scan the
// same way.
func TestMuBandIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	amp, freqs := allocFixture(t)
	ws := getBandWorkspace()
	defer putBandWorkspace(ws)
	mus := make([]float64, len(freqs))
	if err := amp.muBandInto(ws, mus, freqs, 50); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := amp.muBandInto(ws, mus, freqs, 50); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("muBandInto steady state allocates %.1f times per pass, want 0", n)
	}
}

// TestEvaluateMemoHitZeroAlloc pins the memo hit path: once a design is
// cached, re-evaluating it must not allocate — the serve workers lean on
// this for repeated-spec attempts.
func TestEvaluateMemoHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	d := NewDesigner(NewBuilder(device.Golden()))
	d.Memo = NewEvalMemo(64)
	x := Design{Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12}
	// Two warm-up evaluations: the doorkeeper admits a key on its second
	// miss, so the design is cached only after the second pass.
	for i := 0; i < 2; i++ {
		if _, err := d.Evaluate(x); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := d.Evaluate(x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("memo-hit Evaluate allocates %.1f times per call, want 0", n)
	}
}
