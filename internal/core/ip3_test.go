package core

import (
	"math"
	"testing"

	"gnsslna/internal/device"
)

func TestAmplifierOIP3Plausible(t *testing.T) {
	amp := buildRef(t)
	r, err := amp.TwoToneOIP3(1.4e9)
	if err != nil {
		t.Fatalf("TwoToneOIP3: %v", err)
	}
	if r.OIP3DBm < 10 || r.OIP3DBm > 45 {
		t.Errorf("OIP3 = %g dBm, implausible", r.OIP3DBm)
	}
	if r.IIP3DBm >= r.OIP3DBm {
		t.Errorf("IIP3 %g must sit below OIP3 %g for a gain stage", r.IIP3DBm, r.OIP3DBm)
	}
	// The matching networks make the intercept band-dependent — the whole
	// point of the amplifier-level analysis.
	r2, err := amp.TwoToneOIP3(1.175e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.OIP3DBm-r.OIP3DBm) < 0.05 {
		t.Errorf("OIP3 frequency-flat (%g vs %g): networks not captured", r2.OIP3DBm, r.OIP3DBm)
	}
}

func TestAmplifierOIP3SweepMonotoneBookkeeping(t *testing.T) {
	amp := buildRef(t)
	freqs := []float64{1.2e9, 1.4e9, 1.6e9}
	rs, err := amp.IP3Sweep(freqs)
	if err != nil {
		t.Fatalf("IP3Sweep: %v", err)
	}
	if len(rs) != len(freqs) {
		t.Fatalf("reports = %d", len(rs))
	}
	for _, r := range rs {
		if r.Freq == 0 || math.IsNaN(r.OIP3DBm) {
			t.Errorf("bad report %+v", r)
		}
	}
}

func TestAmplifierOIP3SweetSpotError(t *testing.T) {
	// Exactly at the gm3 zero crossing the analysis must refuse rather
	// than emit infinity. Find the crossing by bisection.
	d := device.Golden()
	lo, hi := 0.40, 0.70
	g3 := func(v float64) float64 {
		_, _, g := d.GmCoefficients(device.Bias{Vgs: v, Vds: 3})
		return g
	}
	if g3(lo)*g3(hi) > 0 {
		t.Skip("no sign change in range; device retuned")
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if g3(lo)*g3(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	// gm3 there is ~0; the device-level formula diverges while the
	// amplifier API returns an explicit error for exactly zero.
	if g := g3((lo + hi) / 2); math.Abs(g) > 1e-3 {
		t.Logf("gm3 at crossing = %g (bisection tolerance)", g)
	}
}

func TestDeviceCurrentOIP3MatchesVNABench(t *testing.T) {
	// The internal closed form used for the amplifier referral must agree
	// with the public vna.AnalyticOIP3.
	d := device.Golden()
	b := device.Bias{Vgs: 0.5, Vds: 3}
	got := deviceOIP3Current(d, b)
	// vna.AnalyticOIP3 uses the identical formula; avoid the import cycle
	// by recomputing here.
	gm1, _, gm3 := d.GmCoefficients(b)
	a2 := 8 * gm1 / math.Abs(gm3)
	iF := gm1 * math.Sqrt(a2)
	want := 10*math.Log10(iF*iF*50/2) + 30
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("closed forms diverged: %g vs %g", got, want)
	}
}
