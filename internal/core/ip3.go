package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// IP3Report is the amplifier-level two-tone intercept analysis at one
// frequency.
type IP3Report struct {
	// Freq is the tone frequency in Hz.
	Freq float64
	// OIP3DBm is the output-referred intercept at the 50-ohm load.
	OIP3DBm float64
	// IIP3DBm is the input-referred intercept (OIP3 - transducer gain).
	IIP3DBm float64
	// GateTransferDB is the source-to-gate voltage transfer of the input
	// network in dB (drive scaling).
	GateTransferDB float64
	// OutputTransferDB is the drain-current-to-load power transfer relative
	// to driving 50 ohms directly, in dB.
	OutputTransferDB float64
}

// TwoToneOIP3 estimates the complete amplifier's third-order intercept at
// f0 with a quasi-static power-series analysis: the input network scales
// the drive reaching the gate, the transistor's gm power series generates
// the intermodulation currents, and the output network transforms the
// drain currents into load power. Compared with the device-level test this
// captures the band dependence the matching networks introduce. The
// approximation is memoryless within the tone spacing (valid for
// closely spaced tones) and uses the pad voltage as the gate drive.
func (a *Amplifier) TwoToneOIP3(f0 float64) (IP3Report, error) {
	gm1, _, gm3 := a.Dev.GmCoefficients(a.Bias)
	if gm1 <= 0 {
		return IP3Report{}, fmt.Errorf("core: no transconductance at this bias")
	}
	if gm3 == 0 {
		return IP3Report{}, fmt.Errorf("core: vanishing gm3 (exact sweet spot); intercept unbounded")
	}

	// Device terminal impedances at f0 with matched far terminations.
	sDev, err := a.Dev.SAt(a.Bias, f0, 50)
	if err != nil {
		return IP3Report{}, err
	}
	zInDev := twoport.ZFromGamma(sDev[0][0], 50)
	zOutDev := twoport.ZFromGamma(sDev[1][1], 50)

	// Input network: source EMF (50-ohm source) to gate-pad voltage.
	aIn := a.Input.ABCD(f0)
	denIn := aIn[0][0] + aIn[0][1]/zInDev + complex(50, 0)*(aIn[1][0]+aIn[1][1]/zInDev)
	if denIn == 0 {
		return IP3Report{}, fmt.Errorf("core: singular input transfer at %g Hz", f0)
	}
	hIn := 1 / denIn // Vgate per volt of source EMF

	// Output network: drain current to load power. The drain current
	// divides between the device output impedance and the network input;
	// the surviving network input voltage reaches the load through the
	// loaded voltage transfer.
	aOut := a.Output.ABCD(f0)
	zInNet := (aOut[0][0]*50 + aOut[0][1]) / (aOut[1][0]*50 + aOut[1][1])
	zNode := zOutDev * zInNet / (zOutDev + zInNet)
	hOut := 1 / (aOut[0][0] + aOut[0][1]/50) // Vload per volt at the network input
	// Transfer impedance: load voltage per ampere of drain current.
	zt := zNode * hOut

	// Tone bookkeeping: for source EMF amplitude e per tone, the gate sees
	// a = |hIn| e; fundamental drain current gm1*a; IM3 current gm3 a^3/8.
	// Intercept: gm1 a* = |gm3| a*^3/8 -> a*^2 = 8 gm1/|gm3|.
	aStar2 := 8 * gm1 / math.Abs(gm3)
	iFund := gm1 * math.Sqrt(aStar2)
	pLoad := iFund * iFund * sqAbsC(zt) / (2 * 50)
	oip3 := mathx.WattsToDBm(pLoad)

	// Transducer gain for input referral.
	tp, err := a.NoisyAt(f0)
	if err != nil {
		return IP3Report{}, err
	}
	sAmp, err := tp.S(50)
	if err != nil {
		return IP3Report{}, err
	}
	gt := mathx.DB10(twoport.TransducerGain(sAmp, 0, 0))

	return IP3Report{
		Freq:             f0,
		OIP3DBm:          oip3,
		IIP3DBm:          oip3 - gt,
		GateTransferDB:   mathx.DB20(cmplx.Abs(hIn)) + mathx.DB20(2), // vs. matched source reference
		OutputTransferDB: mathx.DB10(sqAbsC(zt) / (50 * 50)),
	}, nil
}

// IP3Sweep evaluates the amplifier intercept across frequencies.
func (a *Amplifier) IP3Sweep(freqs []float64) ([]IP3Report, error) {
	out := make([]IP3Report, 0, len(freqs))
	for _, f := range freqs {
		r, err := a.TwoToneOIP3(f)
		if err != nil {
			return nil, fmt.Errorf("core: IP3 at %g Hz: %w", f, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func sqAbsC(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// VerifyAgainstDevice cross-checks the quasi-static analysis: with ideal
// through networks the amplifier intercept must collapse to the device
// value computed by the vna bench formula.
func deviceOIP3Current(d *device.PHEMT, b device.Bias) float64 {
	gm1, _, gm3 := d.GmCoefficients(b)
	a2 := 8 * gm1 / math.Abs(gm3)
	iFund := gm1 * math.Sqrt(a2)
	return mathx.WattsToDBm(iFund * iFund * 50 / 2)
}
