package core

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
)

// LinkBudget captures the receive chain around the antenna preamplifier:
// the antenna noise temperature, the cable run between the antenna and the
// receiver, and the receiver's own front-end noise. It quantifies what the
// low-noise preamplifier buys in carrier-to-noise density — the system-level
// reason the paper optimizes tenths of a dB.
type LinkBudget struct {
	// AntennaTempK is the antenna noise temperature in kelvin (~100 K for
	// a sky-pointing GNSS patch including ground spillover).
	AntennaTempK float64
	// CableLossDB is the coax loss between antenna and receiver in dB.
	CableLossDB float64
	// ReceiverNFdB is the receiver front-end noise figure in dB.
	ReceiverNFdB float64
}

// DefaultLinkBudget returns a typical rooftop GNSS installation: 100 K
// antenna, 4 dB of RG-58 to the receiver, 8 dB receiver NF.
func DefaultLinkBudget() LinkBudget {
	return LinkBudget{AntennaTempK: 100, CableLossDB: 4, ReceiverNFdB: 8}
}

// chainTe returns the equivalent input noise temperature of the post-antenna
// chain, optionally led by the preamplifier.
func (lb LinkBudget) chainTe(withLNA bool, lnaNFdB, lnaGainDB float64) float64 {
	l := mathx.FromDB10(lb.CableLossDB) // cable loss (linear >= 1)
	fRx := mathx.FromDB10(lb.ReceiverNFdB)
	// Cable at T0 followed by receiver: F = L * fRx (cable F = L, gain 1/L).
	fTail := l * fRx
	if !withLNA {
		return mathx.NFToTemp(fTail)
	}
	fLNA := mathx.FromDB10(lnaNFdB)
	gLNA := mathx.FromDB10(lnaGainDB)
	f := fLNA + (fTail-1)/gLNA
	return mathx.NFToTemp(f)
}

// SystemNoiseTemp returns the receive-system noise temperature (antenna +
// chain) in kelvin.
func (lb LinkBudget) SystemNoiseTemp(withLNA bool, lnaNFdB, lnaGainDB float64) float64 {
	return lb.AntennaTempK + lb.chainTe(withLNA, lnaNFdB, lnaGainDB)
}

// CN0ImprovementDB returns the carrier-to-noise-density gain (dB-Hz) the
// preamplifier provides over the bare cable-plus-receiver chain.
func (lb LinkBudget) CN0ImprovementDB(lnaNFdB, lnaGainDB float64) float64 {
	without := lb.SystemNoiseTemp(false, 0, 0)
	with := lb.SystemNoiseTemp(true, lnaNFdB, lnaGainDB)
	return 10 * math.Log10(without/with)
}

// CN0DBHz returns the absolute carrier-to-noise density for a received
// signal power (dBm) with the given system configuration.
func (lb LinkBudget) CN0DBHz(signalDBm float64, withLNA bool, lnaNFdB, lnaGainDB float64) float64 {
	tsys := lb.SystemNoiseTemp(withLNA, lnaNFdB, lnaGainDB)
	n0DBm := 10*math.Log10(mathx.Boltzmann*tsys) + 30
	return signalDBm - n0DBm
}

// Describe renders a one-line summary for reports.
func (lb LinkBudget) Describe() string {
	return fmt.Sprintf("Tant=%.0fK cable=%.1fdB RxNF=%.1fdB",
		lb.AntennaTempK, lb.CableLossDB, lb.ReceiverNFdB)
}
