package core

import (
	"testing"

	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
)

// TestOptimizeStoppedReturnsBestSoFar proves that an over-budget design
// run still yields a usable partial result with the typed stop reason.
func TestOptimizeStoppedReturnsBestSoFar(t *testing.T) {
	d := fastDesigner()
	ctrl := resilience.NewController(resilience.ControllerOptions{MaxEvals: 300})
	res, err := d.Optimize(&optim.AttainOptions{
		Seed: 3, GlobalEvals: 2500, PolishEvals: 1500, Control: ctrl,
	})
	st, ok := resilience.AsStopped(err)
	if !ok {
		t.Fatalf("want Stopped error, got %v", err)
	}
	if st.Reason != resilience.StopBudget {
		t.Fatalf("reason = %v, want %v", st.Reason, resilience.StopBudget)
	}
	if res.Evals == 0 {
		t.Error("partial result carries no evaluations")
	}
	if res.Design == (Design{}) {
		t.Error("partial result carries no design")
	}
	if res.Eval.Points == nil {
		t.Error("partial result was not graded")
	}
}

// TestOptimizeQuarantinesPanickingObjective proves a panicking band
// evaluation cannot crash the design search: the SafeVector wrapper turns
// it into the uniform unusable-region penalty.
func TestOptimizeQuarantinesPanickingObjective(t *testing.T) {
	d := fastDesigner()
	// A nil builder device panics inside Evaluate on the first call; the
	// design search must survive long enough for the breaker (K=64) to
	// trip the controller rather than crash the process.
	d.Builder.Dev.DC = nil
	ctrl := resilience.NewController(resilience.ControllerOptions{})
	_, err := d.Optimize(&optim.AttainOptions{
		Seed: 3, GlobalEvals: 400, PolishEvals: 200, Control: ctrl,
	})
	st, ok := resilience.AsStopped(err)
	if !ok {
		t.Fatalf("want Stopped error from the breaker, got %v", err)
	}
	if st.Reason != resilience.StopBreaker {
		t.Errorf("reason = %v, want %v", st.Reason, resilience.StopBreaker)
	}
}
