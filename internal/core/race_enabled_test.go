//go:build race

package core

// raceEnabled gates the allocation pins: the race detector instruments
// allocations, so the zero-alloc guarantees only hold for uninstrumented
// builds.
const raceEnabled = true
