package core

import (
	"sync"

	"gnsslna/internal/noise"
	"gnsslna/internal/rfpassive"
	"gnsslna/internal/twoport"
)

// The band engine evaluates an amplifier over a whole frequency grid in
// structure-of-arrays slabs: the matching networks are compiled once
// (rfpassive.CompiledChain), the device's bias-dependent small-signal model
// is hoisted out of the grid loop (device.BandState), and the per-point
// arithmetic that remains is exactly the per-point path's, so every number
// is equal (==) to what MetricsAt produces (enforced by internal/verify).
// Sweep, Network, GroupDelay and Designer.Evaluate all ride this path; the
// per-point methods remain as thin views.

// BandWorkspace holds the reusable slabs of one band evaluation. A zero
// workspace is ready to use; reusing one across calls with the same
// amplifier and grid size makes the steady state allocation-free. Not safe
// for concurrent use.
type BandWorkspace struct {
	// forAmp keys the compiled chains: compilation reruns when the
	// workspace is pointed at a different amplifier.
	forAmp      *Amplifier
	ccIn, ccOut *rfpassive.CompiledChain

	in, out, dev []noise.TwoPort
	abcd         []twoport.Mat2
}

var bandPool = sync.Pool{New: func() any { return new(BandWorkspace) }}

func getBandWorkspace() *BandWorkspace   { return bandPool.Get().(*BandWorkspace) }
func putBandWorkspace(ws *BandWorkspace) { bandPool.Put(ws) }

// ensure binds the workspace to a and sizes the noisy-two-port slabs for n
// points.
func (ws *BandWorkspace) ensure(a *Amplifier, n int) {
	if ws.forAmp != a {
		ws.forAmp = a
		ws.ccIn = rfpassive.CompileChain(a.Input)
		ws.ccOut = rfpassive.CompileChain(a.Output)
	}
	if cap(ws.in) < n {
		ws.in = make([]noise.TwoPort, n)
		ws.out = make([]noise.TwoPort, n)
		ws.dev = make([]noise.TwoPort, n)
	}
	ws.in = ws.in[:n]
	ws.out = ws.out[:n]
	ws.dev = ws.dev[:n]
}

// ensureABCD additionally sizes the chain-matrix slabs used by the A-only
// stability path (three consecutive sections of one backing slab).
func (ws *BandWorkspace) ensureABCD(a *Amplifier, n int) {
	if ws.forAmp != a {
		ws.ensure(a, 0)
	}
	if cap(ws.abcd) < 3*n {
		ws.abcd = make([]twoport.Mat2, 3*n)
	}
	ws.abcd = ws.abcd[:3*n]
}

// MetricsBandInto evaluates the amplifier at every frequency of the grid,
// writing into dst (same length as freqs). Each point equals (==) the
// MetricsAt result at that frequency.
func (a *Amplifier) MetricsBandInto(ws *BandWorkspace, dst []PointMetrics, freqs []float64, z0 float64) error {
	ws.ensure(a, len(freqs))
	if err := a.Dev.NoisyBandInto(ws.dev, a.Bias, freqs); err != nil {
		return err
	}
	ws.ccIn.NoisyBand(ws.in, freqs)
	ws.ccOut.NoisyBand(ws.out, freqs)
	for i, f := range freqs {
		tp := ws.in[i].Cascade(ws.dev[i]).Cascade(ws.out[i])
		m, err := pointMetricsOf(tp, f, z0)
		if err != nil {
			return err
		}
		dst[i] = m
	}
	return nil
}

// MetricsBand evaluates the amplifier over the grid, allocating the result
// (the Into variant reuses workspaces for allocation-free steady state).
func (a *Amplifier) MetricsBand(freqs []float64, z0 float64) ([]PointMetrics, error) {
	ws := getBandWorkspace()
	defer putBandWorkspace(ws)
	out := make([]PointMetrics, len(freqs))
	if err := a.MetricsBandInto(ws, out, freqs, z0); err != nil {
		return nil, err
	}
	return out, nil
}

// sBandInto writes the amplifier S-parameters at every grid frequency into
// dst, riding the same batch path as MetricsBandInto (each point equals the
// per-point SAt).
func (a *Amplifier) sBandInto(ws *BandWorkspace, dst []twoport.Mat2, freqs []float64, z0 float64) error {
	ws.ensure(a, len(freqs))
	if err := a.Dev.NoisyBandInto(ws.dev, a.Bias, freqs); err != nil {
		return err
	}
	ws.ccIn.NoisyBand(ws.in, freqs)
	ws.ccOut.NoisyBand(ws.out, freqs)
	for i := range freqs {
		tp := ws.in[i].Cascade(ws.dev[i]).Cascade(ws.out[i])
		s, err := tp.S(z0)
		if err != nil {
			return err
		}
		dst[i] = s
	}
	return nil
}

// muBandInto writes the mu source-stability factor at every grid frequency
// into dst via the A-only fast path: S (hence mu) depends only on the chain
// matrices, so the noise-correlation congruences — most of the full path's
// cost — are skipped. device.EmbedABCD and the compiled chains replay the
// full path's A-side arithmetic exactly, so each mu equals (==) the
// MetricsAt Mu at that frequency.
func (a *Amplifier) muBandInto(ws *BandWorkspace, dst []float64, freqs []float64, z0 float64) error {
	n := len(freqs)
	ws.ensureABCD(a, n)
	aIn, aDev, aOut := ws.abcd[:n], ws.abcd[n:2*n], ws.abcd[2*n:]
	if err := a.Dev.ABCDBandInto(aDev, a.Bias, freqs); err != nil {
		return err
	}
	ws.ccIn.ABCDBand(aIn, freqs)
	ws.ccOut.ABCDBand(aOut, freqs)
	for i := range freqs {
		s, err := twoport.ABCDToS(aIn[i].Mul(aDev[i]).Mul(aOut[i]), z0)
		if err != nil {
			return err
		}
		dst[i] = twoport.MuSource(s)
	}
	return nil
}
