package core

import (
	"math"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/optim"
)

func fastDesigner() *Designer {
	d := NewDesigner(NewBuilder(device.Golden()))
	d.Spec.NPoints = 7
	return d
}

func TestEvaluateAggregatesExtremes(t *testing.T) {
	d := fastDesigner()
	ev, err := d.Evaluate(referenceDesign)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ev.Points) != d.Spec.NPoints {
		t.Fatalf("points = %d, want %d", len(ev.Points), d.Spec.NPoints)
	}
	for _, p := range ev.Points {
		if p.NFdB > ev.WorstNFdB+1e-12 {
			t.Errorf("WorstNFdB %g misses point %g", ev.WorstNFdB, p.NFdB)
		}
		if p.GTdB < ev.MinGTdB-1e-12 {
			t.Errorf("MinGTdB %g misses point %g", ev.MinGTdB, p.GTdB)
		}
	}
	obj := ev.Objectives()
	if len(obj) != len(ObjectiveNames()) {
		t.Fatal("objective vector/name mismatch")
	}
	if obj[0] != ev.WorstNFdB || obj[1] != -ev.MinGTdB {
		t.Error("objective packing wrong")
	}
}

func TestOptimizeMeetsGoals(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization run skipped in -short mode")
	}
	d := fastDesigner()
	res, err := d.Optimize(&optim.AttainOptions{Seed: 3, GlobalEvals: 2500, PolishEvals: 1500})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Gamma > 0 {
		t.Errorf("gamma = %g: goals not met (eval %+v)", res.Gamma, res.Eval)
	}
	e := res.Eval
	if e.WorstNFdB > d.Spec.NFMaxDB {
		t.Errorf("NF %g exceeds goal %g", e.WorstNFdB, d.Spec.NFMaxDB)
	}
	if e.MinGTdB < d.Spec.GTMinDB {
		t.Errorf("GT %g below goal %g", e.MinGTdB, d.Spec.GTMinDB)
	}
	if e.WorstS11dB > d.Spec.S11MaxDB || e.WorstS22dB > d.Spec.S22MaxDB {
		t.Errorf("matching goals missed: S11 %g, S22 %g", e.WorstS11dB, e.WorstS22dB)
	}
	if e.StabMargin <= 0 {
		t.Errorf("stability margin %g, want > 0", e.StabMargin)
	}
	if e.PdcW > d.Spec.PdcMaxW {
		t.Errorf("Pdc %g W exceeds budget %g", e.PdcW, d.Spec.PdcMaxW)
	}
	// Snapping must not catastrophically break the design.
	s := res.SnappedEval
	if s.WorstNFdB > e.WorstNFdB+0.15 {
		t.Errorf("E24 snapping degraded NF too much: %g -> %g", e.WorstNFdB, s.WorstNFdB)
	}
	if s.StabMargin <= 0 {
		t.Errorf("snapped design unstable: margin %g", s.StabMargin)
	}
	if res.Evals == 0 {
		t.Error("evaluation count missing")
	}
}

func TestSnapToE24(t *testing.T) {
	d := fastDesigner()
	x := Design{Vgs: 0.5, Vds: 3, LIn: 5.3e-9, LDegen: 0.77e-9, LOut: 2.1e-9, COut: 0.93e-12}
	s := d.SnapToE24(x)
	// Chip elements snapped, continuous parameters untouched.
	if s.Vgs != x.Vgs || s.Vds != x.Vds || s.LDegen != x.LDegen {
		t.Error("snapping touched continuous parameters")
	}
	if s.LIn == x.LIn && s.LOut == x.LOut && s.COut == x.COut {
		t.Error("snapping changed nothing")
	}
	if math.Abs(s.LIn-5.1e-9) > 1e-12 {
		t.Errorf("LIn snapped to %g, want 5.1n", s.LIn)
	}
}

func TestSensitivityReportsAllParams(t *testing.T) {
	d := fastDesigner()
	sens, err := d.Sensitivity(referenceDesign, 0.05)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if len(sens) != 6 {
		t.Fatalf("entries = %d, want 6", len(sens))
	}
	var anyEffect bool
	for _, s := range sens {
		if s.Param == "" {
			t.Error("unnamed sensitivity entry")
		}
		if s.DeltaNFdB < 0 || s.DeltaGTdB < 0 {
			t.Error("negative sensitivity magnitude")
		}
		if s.DeltaNFdB > 0 || s.DeltaGTdB > 0 {
			anyEffect = true
		}
	}
	if !anyEffect {
		t.Error("no parameter shows any effect: sensitivity broken")
	}
	// Vgs should matter more for NF than COut does.
	if sens[0].DeltaNFdB < sens[5].DeltaNFdB {
		t.Logf("warning: Vgs NF sensitivity (%g) below COut (%g)", sens[0].DeltaNFdB, sens[5].DeltaNFdB)
	}
}

func TestYieldReasonable(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo skipped in -short mode")
	}
	d := fastDesigner()
	// Use a known-good design meeting goals with margin.
	res, err := d.Optimize(&optim.AttainOptions{Seed: 5, GlobalEvals: 2000, PolishEvals: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Yield(res.Design, 0.05, 60, 9)
	if err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if rep.Trials != 60 {
		t.Errorf("trials = %d", rep.Trials)
	}
	if rep.PassRate < 0.5 {
		t.Errorf("yield = %g, expect a robust optimum (>= 0.5)", rep.PassRate)
	}
	if rep.NF95dB < res.Eval.WorstNFdB-1e-9 {
		t.Errorf("95th percentile NF %g below nominal %g", rep.NF95dB, res.Eval.WorstNFdB)
	}
	if rep.GT5dB > res.Eval.MinGTdB+1e-9 {
		t.Errorf("5th percentile GT %g above nominal %g", rep.GT5dB, res.Eval.MinGTdB)
	}
}

func TestDefaultSpecSane(t *testing.T) {
	s := DefaultSpec()
	if s.FLow >= s.FHigh || s.NFMaxDB <= 0 || s.GTMinDB <= 0 {
		t.Error("default spec malformed")
	}
	if s.S11MaxDB >= 0 || s.S22MaxDB >= 0 {
		t.Error("return-loss goals must be negative dB")
	}
	if len(s.points()) != s.NPoints {
		t.Error("points() length mismatch")
	}
	if len(s.stabPoints()) == 0 {
		t.Error("stability scan empty")
	}
}

func TestCornersBoundYield(t *testing.T) {
	if testing.Short() {
		t.Skip("corner sweep skipped in -short mode")
	}
	d := fastDesigner()
	d.Spec.NPoints = 5
	rep, err := d.Corners(referenceDesign, 0.05, 0.02)
	if err != nil {
		t.Fatalf("Corners: %v", err)
	}
	if len(rep.Corners) != 32 {
		t.Fatalf("corners = %d, want 32", len(rep.Corners))
	}
	nominal, err := d.Evaluate(referenceDesign)
	if err != nil {
		t.Fatal(err)
	}
	// The worst corner must bound the nominal design.
	if rep.WorstNFdB < nominal.WorstNFdB-1e-9 {
		t.Errorf("corner NF bound %g below nominal %g", rep.WorstNFdB, nominal.WorstNFdB)
	}
	if rep.WorstGTdB > nominal.MinGTdB+1e-9 {
		t.Errorf("corner GT bound %g above nominal %g", rep.WorstGTdB, nominal.MinGTdB)
	}
	for _, c := range rep.Corners {
		if len(c.Label) != 5 {
			t.Errorf("bad corner label %q", c.Label)
		}
	}
}
