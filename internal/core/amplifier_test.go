package core

import (
	"math"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// referenceDesign is a hand-tuned reasonable design used as a fixture.
var referenceDesign = Design{
	Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12,
}

func buildRef(t *testing.T) *Amplifier {
	t.Helper()
	amp, err := NewBuilder(device.Golden()).Build(referenceDesign)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return amp
}

func TestGNSSBandsCoverage(t *testing.T) {
	bands := GNSSBands()
	if len(bands) < 10 {
		t.Fatalf("bands = %d, want >= 10 signals", len(bands))
	}
	lo, hi := DesignBand()
	if lo >= hi {
		t.Fatal("design band inverted")
	}
	names := map[string]bool{}
	for _, b := range bands {
		if b.Center < lo || b.Center > hi {
			t.Errorf("%s center %g outside the design band [%g, %g]", b.Name, b.Center, lo, hi)
		}
		if b.Width <= 0 {
			t.Errorf("%s has no width", b.Name)
		}
		if names[b.Name] {
			t.Errorf("duplicate band %s", b.Name)
		}
		names[b.Name] = true
	}
	// The four constellations of the paper must all appear.
	for _, c := range []string{"GPS", "GLONASS", "Galileo", "Compass"} {
		found := false
		for n := range names {
			if len(n) >= len(c) && n[:len(c)] == c {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("constellation %s missing", c)
		}
	}
}

func TestAmplifierMeetsBasicExpectations(t *testing.T) {
	amp := buildRef(t)
	m, err := amp.MetricsAt(1.575e9, 50)
	if err != nil {
		t.Fatalf("MetricsAt: %v", err)
	}
	if m.NFdB < 0.1 || m.NFdB > 1.5 {
		t.Errorf("NF = %g dB, want sub-dB LNA range", m.NFdB)
	}
	if m.GTdB < 10 || m.GTdB > 25 {
		t.Errorf("GT = %g dB, want 10-25", m.GTdB)
	}
	if m.NFdB < m.FminDB {
		t.Errorf("NF %g below Fmin %g: impossible", m.NFdB, m.FminDB)
	}
	if amp.Ids() <= 0 || amp.PowerDissipation() <= 0 {
		t.Error("bias bookkeeping broken")
	}
}

func TestAmplifierUnconditionallyStableWideband(t *testing.T) {
	amp := buildRef(t)
	for _, f := range mathx.Logspace(0.2e9, 6e9, 25) {
		m, err := amp.MetricsAt(f, 50)
		if err != nil {
			t.Fatalf("MetricsAt(%g): %v", f, err)
		}
		if m.Mu <= 1 {
			t.Errorf("f = %.3g GHz: mu = %.3f <= 1 (potential instability)", f/1e9, m.Mu)
		}
	}
}

func TestDegenerationTradesGainForMatch(t *testing.T) {
	b := NewBuilder(device.Golden())
	small := referenceDesign
	small.LDegen = 0.1e-9
	big := referenceDesign
	big.LDegen = 1.5e-9
	ampS, err := b.Build(small)
	if err != nil {
		t.Fatal(err)
	}
	ampB, err := b.Build(big)
	if err != nil {
		t.Fatal(err)
	}
	f := 1.4e9
	mS, err := ampS.MetricsAt(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := ampB.MetricsAt(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if mB.GTdB >= mS.GTdB {
		t.Errorf("degeneration should cost gain: %g -> %g dB", mS.GTdB, mB.GTdB)
	}
}

func TestDesignVectorRoundTrip(t *testing.T) {
	v := referenceDesign.Vector()
	back := DesignFromVector(v)
	if back != referenceDesign {
		t.Errorf("vector round trip: %+v != %+v", back, referenceDesign)
	}
	lo, hi := DesignBounds()
	if len(lo) != len(v) || len(hi) != len(v) {
		t.Fatal("bounds dimension mismatch with design vector")
	}
	for i := range lo {
		if lo[i] >= hi[i] {
			t.Errorf("bounds[%d] inverted", i)
		}
	}
}

func TestAmplifierNetworkExport(t *testing.T) {
	amp := buildRef(t)
	freqs := mathx.Linspace(1.1e9, 1.7e9, 7)
	net, err := amp.Network(freqs, 50)
	if err != nil {
		t.Fatalf("Network: %v", err)
	}
	if net.Len() != len(freqs) {
		t.Fatalf("network length %d, want %d", net.Len(), len(freqs))
	}
	// The network's S21 must match MetricsAt's gain.
	m, err := amp.MetricsAt(freqs[3], 50)
	if err != nil {
		t.Fatal(err)
	}
	gt := mathx.DB10(twoport.TransducerGain(net.S[3], 0, 0))
	if math.Abs(gt-m.GTdB) > 1e-9 {
		t.Errorf("network S21 gain %g disagrees with metrics %g", gt, m.GTdB)
	}
}

func TestNoiseFigureDominatedByFirstElements(t *testing.T) {
	// Removing the input network loss must reduce the amplifier NF: the
	// input chain contributes directly per Friis.
	amp := buildRef(t)
	f := 1.575e9
	full, err := amp.NoisyAt(f)
	if err != nil {
		t.Fatal(err)
	}
	devOnly, err := amp.Dev.NoisyAt(amp.Bias, f)
	if err != nil {
		t.Fatal(err)
	}
	nfFull := mathx.DB10(full.FigureY(complex(1.0/50, 0)))
	nfDev := mathx.DB10(devOnly.FigureY(complex(1.0/50, 0)))
	// Full amp NF should exceed the bare device's 50-ohm NF minus the
	// matching improvement; at minimum it must exceed the device Fmin.
	pDev, err := devOnly.NoiseParams(50)
	if err != nil {
		t.Fatal(err)
	}
	if nfFull < pDev.FminDB() {
		t.Errorf("amplifier NF %g below device Fmin %g", nfFull, pDev.FminDB())
	}
	_ = nfDev
}

func TestBuilderValidation(t *testing.T) {
	b := &Builder{}
	if _, err := b.Build(referenceDesign); err == nil {
		t.Error("builder without device accepted")
	}
}
