package core

import (
	"math"
	"testing"

	"gnsslna/internal/mathx"
)

func TestSystemNoiseTempWithoutLNA(t *testing.T) {
	lb := LinkBudget{AntennaTempK: 100, CableLossDB: 3, ReceiverNFdB: 6}
	// Cable F = 2 (3 dB), receiver F ~ 3.981: chain F = 7.962,
	// Te = (7.962-1)*290 = 2019 K; Tsys = 2119 K.
	got := lb.SystemNoiseTemp(false, 0, 0)
	f := mathx.FromDB10(3.0) * mathx.FromDB10(6.0)
	want := 100 + (f-1)*290
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Tsys = %g, want %g", got, want)
	}
}

func TestLNADominatesSystemNoise(t *testing.T) {
	lb := DefaultLinkBudget()
	// A 0.5 dB / 17 dB preamp: system temperature near Tant + Te(LNA) +
	// small tail contribution.
	tsys := lb.SystemNoiseTemp(true, 0.5, 17)
	teLNA := mathx.NFToTemp(mathx.FromDB10(0.5))
	if tsys < lb.AntennaTempK+teLNA {
		t.Errorf("Tsys %g below floor %g", tsys, lb.AntennaTempK+teLNA)
	}
	if tsys > lb.AntennaTempK+teLNA+200 {
		t.Errorf("Tsys %g: tail not suppressed by the LNA gain", tsys)
	}
}

func TestCN0ImprovementShapes(t *testing.T) {
	lb := DefaultLinkBudget()
	imp := lb.CN0ImprovementDB(0.5, 17)
	// A good preamp in front of 4 dB cable + 8 dB receiver buys ~8-12 dB.
	if imp < 6 || imp > 15 {
		t.Errorf("C/N0 improvement = %g dB, want ~8-12", imp)
	}
	// More cable loss -> more improvement from the LNA.
	lbLong := lb
	lbLong.CableLossDB = 10
	if lbLong.CN0ImprovementDB(0.5, 17) <= imp {
		t.Error("longer cable should make the LNA more valuable")
	}
	// A better (lower NF) LNA improves C/N0.
	if lb.CN0ImprovementDB(0.3, 17) <= lb.CN0ImprovementDB(0.9, 17) {
		t.Error("lower LNA noise figure must increase the improvement")
	}
	// More gain helps until the tail is fully suppressed.
	if lb.CN0ImprovementDB(0.5, 25) < lb.CN0ImprovementDB(0.5, 12) {
		t.Error("more gain should not hurt")
	}
}

func TestCN0Absolute(t *testing.T) {
	lb := DefaultLinkBudget()
	// GPS L1 C/A at the antenna: about -128.5 dBm. With a good front end
	// C/N0 lands in the classic 40-50 dB-Hz window.
	cn0 := lb.CN0DBHz(-128.5, true, 0.5, 17)
	if cn0 < 38 || cn0 > 52 {
		t.Errorf("C/N0 = %g dB-Hz, want the 40-50 window", cn0)
	}
	// Without the LNA the receiver loses several dB.
	bare := lb.CN0DBHz(-128.5, false, 0, 0)
	if bare >= cn0 {
		t.Error("removing the preamplifier should cost C/N0")
	}
	if lb.Describe() == "" {
		t.Error("empty description")
	}
}
