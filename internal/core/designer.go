package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"gnsslna/internal/mathx"
	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/units"
)

// Spec captures the design requirements the goal attainment drives toward.
type Spec struct {
	// FLow and FHigh bound the operating band in Hz.
	FLow, FHigh float64
	// NPoints is the number of in-band evaluation frequencies (default 11).
	NPoints int
	// NFMaxDB is the worst-case in-band noise-figure goal in dB.
	NFMaxDB float64
	// GTMinDB is the minimum in-band transducer gain goal in dB.
	GTMinDB float64
	// S11MaxDB and S22MaxDB are the worst-case return-loss goals in dB.
	S11MaxDB, S22MaxDB float64
	// StabLow and StabHigh bound the out-of-band stability scan in Hz.
	StabLow, StabHigh float64
	// PdcMaxW is the DC power budget goal in watts (0 disables the goal).
	PdcMaxW float64
}

// DefaultSpec returns the multi-constellation requirement set: all GNSS
// bands, sub-0.9 dB noise, at least 14 dB gain, 10 dB return losses,
// unconditional stability from 100 MHz to 6 GHz.
func DefaultSpec() Spec {
	lo, hi := DesignBand()
	return Spec{
		FLow: lo, FHigh: hi, NPoints: 11,
		NFMaxDB: 0.9, GTMinDB: 14, S11MaxDB: -10, S22MaxDB: -10,
		StabLow: 0.2e9, StabHigh: 6e9,
		PdcMaxW: 0.25,
	}
}

func (s Spec) points() []float64 {
	n := s.NPoints
	if n < 2 {
		n = 11
	}
	return mathx.Linspace(s.FLow, s.FHigh, n)
}

func (s Spec) stabPoints() []float64 {
	if s.StabHigh <= s.StabLow {
		return nil
	}
	return mathx.Logspace(s.StabLow, s.StabHigh, 9)
}

// Evaluation aggregates the band-level objectives of one design.
type Evaluation struct {
	// Design echoes the evaluated parameters.
	Design Design
	// Points holds the per-frequency metrics.
	Points []PointMetrics
	// WorstNFdB, MinGTdB, WorstS11dB, WorstS22dB are the in-band extremes.
	WorstNFdB, MinGTdB, WorstS11dB, WorstS22dB float64
	// StabMargin is min(mu) - 1 over the wide scan (positive = stable).
	StabMargin float64
	// IdsA is the bias current in amperes; PdcW the DC power in watts.
	IdsA, PdcW float64
}

// Objectives returns the minimization vector used by the multi-objective
// solvers: [worst NF, -min GT, worst S11, worst S22, -stability margin,
// Pdc].
func (e Evaluation) Objectives() []float64 {
	return []float64{
		e.WorstNFdB,
		-e.MinGTdB,
		e.WorstS11dB,
		e.WorstS22dB,
		-e.StabMargin,
		e.PdcW,
	}
}

// ObjectiveNames aligns with Objectives.
func ObjectiveNames() []string {
	return []string{"NFmax[dB]", "-GTmin[dB]", "S11max[dB]", "S22max[dB]", "-stab", "Pdc[W]"}
}

// Designer runs the paper's design flow on a device.
type Designer struct {
	// Builder materializes candidate amplifiers.
	Builder *Builder
	// Spec holds the requirements.
	Spec Spec
	// Z0 is the system impedance (default 50).
	Z0 float64
	// Workers bounds the goroutines used to fan out the independent band
	// evaluations of the corner, sensitivity and yield sweeps, and is
	// forwarded to the optimizer when Optimize's options leave it unset
	// (<= 1: serial, today's exact behavior). Evaluate itself is safe for
	// concurrent calls.
	Workers int

	// Memo, when non-nil, caches successful Evaluate results keyed by the
	// full evaluation context (spec, substrate, builder, device content) and
	// the exact design vector. NewDesigner attaches the process-wide
	// DefaultEvalMemo so all designers in the process — including every
	// serve worker — share hits. Evaluations are deterministic, so a hit is
	// bit-identical to recomputation; the eval tally still counts every
	// call.
	Memo *EvalMemo

	// evals is atomic: Optimize can evaluate candidates from concurrent
	// worker goroutines while keeping the reported tally exact.
	evals atomic.Int64

	// freqs caches the spec-derived sweep grids so each of the thousands of
	// candidate evaluations doesn't rebuild them.
	freqs atomic.Pointer[specFreqs]

	// ctxKey caches the memo context digest against a comparable snapshot
	// of the evaluation context (see evalmemo.go).
	ctxKey atomic.Pointer[ctxDigest]
}

// specFreqs is the memoized frequency grid keyed by the (comparable) spec
// value it was derived from.
type specFreqs struct {
	spec Spec
	pts  []float64
	stab []float64
}

// sweepGrids returns the in-band and stability frequency lists for the
// current spec, memoized until the spec changes. The returned slices alias
// the memoized arrays shared by every concurrent Evaluate call: this
// internal path is zero-copy and strictly read-only. Code outside the
// evaluation hot path — anything that hands grids to goroutines it does not
// control, like the campaign engine — must use SweepGrids, which copies.
func (d *Designer) sweepGrids() (pts, stab []float64) {
	if g := d.freqs.Load(); g != nil && g.spec == d.Spec {
		return g.pts, g.stab
	}
	g := &specFreqs{spec: d.Spec, pts: d.Spec.points(), stab: d.Spec.stabPoints()}
	d.freqs.Store(g)
	return g.pts, g.stab
}

// SweepGrids returns defensive copies of the in-band and stability
// frequency grids derived from the current spec. Unlike the internal
// sweepGrids, the returned slices are owned by the caller: mutating them
// cannot corrupt the memoized grids that concurrent evaluations read.
func (d *Designer) SweepGrids() (pts, stab []float64) {
	p, s := d.sweepGrids()
	pts = append([]float64(nil), p...)
	stab = append([]float64(nil), s...)
	return pts, stab
}

// NewDesigner wires a designer with the default spec and the process-wide
// shared evaluation memo.
func NewDesigner(b *Builder) *Designer {
	return &Designer{Builder: b, Spec: DefaultSpec(), Z0: 50, Memo: DefaultEvalMemo()}
}

// EvalCount reports the number of Evaluate calls charged so far. The tally
// is charged before the memo lookup, so cached and recomputed evaluations
// journal identically — a memo hit is indistinguishable in the eval count.
func (d *Designer) EvalCount() int64 { return d.evals.Load() }

func (d *Designer) z0() float64 {
	if d.Z0 <= 0 {
		return 50
	}
	return d.Z0
}

// Evaluate computes the band evaluation of one design. It is safe for
// concurrent calls (the eval tally is atomic and the builder caches are
// race-free), which is what lets the optimizers and sweeps fan candidate
// evaluations across workers.
func (d *Designer) Evaluate(x Design) (Evaluation, error) {
	// The tally charges every call — before the memo lookup — so eval
	// counts (and the journal records derived from them) are identical
	// whether a design hits the memo or is recomputed.
	d.evals.Add(1)
	var key memoKey
	useMemo := false
	// x == x rejects NaN-bearing designs, which could never hit (NaN keys
	// compare unequal to themselves) and would only pollute the LRU.
	if d.Memo != nil && x == x {
		if h, ok := d.ctxHash(); ok {
			key = memoKey{ctx: h, design: x}
			useMemo = true
			if ev, ok := d.Memo.lookup(key); ok {
				return ev, nil
			}
		}
	}
	amp, err := d.Builder.Build(x)
	if err != nil {
		return Evaluation{}, err
	}
	ev, err := d.evaluateAmp(amp, x)
	if err == nil && useMemo {
		d.Memo.store(key, ev)
	}
	return ev, err
}

// evaluateAmp aggregates the band objectives of an already-built amplifier.
func (d *Designer) evaluateAmp(amp *Amplifier, x Design) (Evaluation, error) {
	grid, stabGrid := d.sweepGrids()
	pts, err := amp.Sweep(grid, d.z0())
	if err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{
		Design:     x,
		Points:     pts,
		WorstNFdB:  math.Inf(-1),
		MinGTdB:    math.Inf(1),
		WorstS11dB: math.Inf(-1),
		WorstS22dB: math.Inf(-1),
		StabMargin: math.Inf(1),
		IdsA:       amp.Ids(),
		PdcW:       amp.PowerDissipation(),
	}
	for _, p := range pts {
		ev.WorstNFdB = math.Max(ev.WorstNFdB, p.NFdB)
		ev.MinGTdB = math.Min(ev.MinGTdB, p.GTdB)
		ev.WorstS11dB = math.Max(ev.WorstS11dB, p.S11dB)
		ev.WorstS22dB = math.Max(ev.WorstS22dB, p.S22dB)
		ev.StabMargin = math.Min(ev.StabMargin, p.Mu-1)
	}
	if len(stabGrid) > 0 {
		// The wide stability scan only consumes Mu, which depends on the
		// chain matrices alone: the A-only band path skips all the
		// noise-correlation work. Its values equal (==) the per-point Mu;
		// on error, the per-point loop reproduces the historic behavior.
		mus := make([]float64, len(stabGrid))
		ws := getBandWorkspace()
		err := amp.muBandInto(ws, mus, stabGrid, d.z0())
		putBandWorkspace(ws)
		if err == nil {
			for _, mu := range mus {
				ev.StabMargin = math.Min(ev.StabMargin, mu-1)
			}
		} else {
			for _, f := range stabGrid {
				m, err := amp.MetricsAt(f, d.z0())
				if err != nil {
					return Evaluation{}, err
				}
				ev.StabMargin = math.Min(ev.StabMargin, m.Mu-1)
			}
		}
	}
	return ev, nil
}

// penalizeInstability returns the objective vector with a steep uniform
// penalty when the design is potentially unstable: stability is a hard
// constraint, and adding the violation to every objective keeps the
// goal-attainment surface pointing back into the feasible region
// regardless of the adaptive weight normalization.
func penalizeInstability(ev Evaluation) []float64 {
	obj := ev.Objectives()
	if ev.StabMargin <= 0 {
		pen := 50 * (0.02 - ev.StabMargin)
		for i := range obj {
			obj[i] += pen
		}
	}
	return obj
}

// goals renders the spec as goal-attainment goals matching Objectives().
func (d *Designer) goals() []optim.Goal {
	pdc := d.Spec.PdcMaxW
	if pdc <= 0 {
		pdc = 10 // effectively unconstrained
	}
	return []optim.Goal{
		{Name: "NFmax", Target: d.Spec.NFMaxDB, Weight: 0.5},
		{Name: "GTmin", Target: -d.Spec.GTMinDB, Weight: 1},
		{Name: "S11max", Target: d.Spec.S11MaxDB, Weight: 2},
		{Name: "S22max", Target: d.Spec.S22MaxDB, Weight: 2},
		{Name: "stability", Target: -0.02, Weight: 0.5},
		{Name: "Pdc", Target: pdc, Weight: 0.2},
	}
}

// DesignResult reports a finished optimization.
type DesignResult struct {
	// Design is the continuous optimum.
	Design Design
	// Snapped is the optimum with L/C values snapped to the E24 series.
	Snapped Design
	// Eval and SnappedEval grade both.
	Eval, SnappedEval Evaluation
	// Gamma is the attainment factor (<= 0: all goals met).
	Gamma float64
	// Evals counts band evaluations.
	Evals int
}

// Optimize selects the operating point and passive elements with the
// improved goal-attainment method (the paper's step 4). The objective is
// quarantined: a panicking or non-finite band evaluation scores the same
// uniform penalty as an unbuildable design instead of poisoning the
// search, and a long streak of such faults trips the breaker of
// opts.Control (when set). A stopped run (cancellation, deadline, budget
// or breaker) returns the best design found so far alongside the wrapped
// *resilience.Stopped error.
func (d *Designer) Optimize(opts *optim.AttainOptions) (DesignResult, error) {
	d.evals.Store(0)
	lo, hi := DesignBounds()
	raw := func(x []float64) []float64 {
		ev, err := d.Evaluate(DesignFromVector(x))
		if err != nil {
			// Penalize unusable regions uniformly.
			return []float64{99, 99, 99, 99, 99, 99}
		}
		return penalizeInstability(ev)
	}
	var o optim.AttainOptions
	if opts != nil {
		o = *opts
	}
	if o.Workers <= 1 && d.Workers > 1 {
		o.Workers = d.Workers
		opts = &o
	}
	safe := resilience.NewSafeVector(raw, 6, &resilience.SafeOptions{
		Penalty: 99, BreakerK: 64,
		Control: o.Control, Observer: o.Observer, Scope: "core.design",
	})
	res, err := optim.GoalAttainImproved(safe.Objective(), d.goals(), lo, hi, opts)
	var stopErr error
	if err != nil {
		if _, stopped := resilience.AsStopped(err); !stopped || len(res.X) == 0 {
			return DesignResult{}, fmt.Errorf("core: optimize: %w", err)
		}
		stopErr = fmt.Errorf("core: optimize: %w", err)
	}
	best := DesignFromVector(res.X)
	ev, err := d.evaluateGuarded(best)
	if err != nil {
		if stopErr != nil {
			// The search was stopped and even the best point cannot be
			// graded (e.g. the fault that tripped the breaker persists):
			// return the ungraded design with the stop reason.
			return DesignResult{Design: best, Gamma: res.Gamma, Evals: int(d.evals.Load())}, stopErr
		}
		return DesignResult{}, err
	}
	snapped := d.SnapToE24(best)
	sev, err := d.evaluateGuarded(snapped)
	if err != nil {
		if stopErr != nil {
			return DesignResult{Design: best, Eval: ev, Gamma: res.Gamma, Evals: int(d.evals.Load())}, stopErr
		}
		return DesignResult{}, err
	}
	return DesignResult{
		Design:      best,
		Snapped:     snapped,
		Eval:        ev,
		SnappedEval: sev,
		Gamma:       res.Gamma,
		Evals:       int(d.evals.Load()),
	}, stopErr
}

// evaluateGuarded is Evaluate with panic containment, for grading points
// that may sit in a faulty region of a quarantined objective.
func (d *Designer) evaluateGuarded(x Design) (ev Evaluation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: evaluation panicked: %v", r)
		}
	}()
	return d.Evaluate(x)
}

// SnapToE24 rounds the chip-element values to the E24 preferred series (the
// degeneration inductance stays continuous: it is realized as a microstrip
// stub cut to length).
func (d *Designer) SnapToE24(x Design) Design {
	x.LIn = units.SnapE24(x.LIn)
	x.LOut = units.SnapE24(x.LOut)
	x.COut = units.SnapE24(x.COut)
	return x
}
