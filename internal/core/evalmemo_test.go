package core

import (
	"math"
	"sync"
	"testing"

	"gnsslna/internal/device"
)

// negZero is -0.0 spelled so the compiler cannot fold it to +0.0.
var negZero = math.Copysign(0, -1)

// TestKeyHashNegativeZeroCanonical pins the hashing contract the shard maps
// rely on: memoKey comparison uses Go's ==, which treats -0.0 and +0.0 as
// equal, so keyHash must agree for every design field. Before the
// canonicalization this failed — math.Float64bits(-0.0) differs from
// math.Float64bits(0) — splitting equal keys across shards.
func TestKeyHashNegativeZeroCanonical(t *testing.T) {
	fields := []func(*Design, float64){
		func(d *Design, v float64) { d.Vgs = v },
		func(d *Design, v float64) { d.Vds = v },
		func(d *Design, v float64) { d.LIn = v },
		func(d *Design, v float64) { d.LDegen = v },
		func(d *Design, v float64) { d.LOut = v },
		func(d *Design, v float64) { d.COut = v },
	}
	base := Design{Vgs: 0.4, Vds: 2, LIn: 5e-9, LDegen: 0.5e-9, LOut: 3e-9, COut: 1e-12}
	for i, set := range fields {
		pos, neg := base, base
		set(&pos, 0)
		set(&neg, negZero)
		if pos != neg {
			t.Fatalf("field %d: fixture broken, designs compare unequal", i)
		}
		kp := memoKey{ctx: 0x9e3779b97f4a7c15, design: pos}
		kn := memoKey{ctx: 0x9e3779b97f4a7c15, design: neg}
		if keyHash(kp) != keyHash(kn) {
			t.Errorf("field %d: keyHash splits +0.0/-0.0 twins: %#x vs %#x",
				i, keyHash(kp), keyHash(kn))
		}
	}
}

// TestEvalMemoNegativeZeroSharesEntry is the behavioral regression: a
// design with a -0.0 field (reachable when an optimizer bound touches zero)
// must share one shard entry with its +0.0-equal twin — stored once, hit by
// both spellings.
func TestEvalMemoNegativeZeroSharesEntry(t *testing.T) {
	m := NewEvalMemo(64)
	pos := Design{Vgs: 0.4, Vds: 2, LIn: 0, LDegen: 0.5e-9, LOut: 3e-9, COut: 1e-12}
	neg := pos
	neg.LIn = negZero
	ctx := uint64(12345)
	kp := memoKey{ctx: ctx, design: pos}
	kn := memoKey{ctx: ctx, design: neg}

	// Two stores pass the doorkeeper (admitted on the second sighting).
	ev := Evaluation{Design: pos, WorstNFdB: 0.5}
	m.store(kp, ev)
	m.store(kp, ev)
	if got, ok := m.lookup(kp); !ok || got.WorstNFdB != 0.5 {
		t.Fatalf("+0.0 key not admitted: ok=%v", ok)
	}
	if _, ok := m.lookup(kn); !ok {
		t.Fatalf("-0.0 twin misses the entry its +0.0 spelling stored")
	}
	// Storing the -0.0 spelling must not duplicate the entry.
	m.store(kn, ev)
	m.store(kn, ev)
	if st := m.Stats(); st.Size != 1 {
		t.Fatalf("memo holds %d entries for one logical key, want 1", st.Size)
	}
}

// TestSweepGridsPublicCopyDoesNotAlias pins the Designer grid contract: the
// exported SweepGrids returns caller-owned copies, so mutating them (as a
// campaign cell goroutine legitimately might) cannot corrupt the memoized
// grids that concurrent Evaluate calls read. Run under -race this also
// proves the internal path stays read-only while copies are scribbled on.
func TestSweepGridsPublicCopyDoesNotAlias(t *testing.T) {
	d := NewDesigner(NewBuilder(device.Golden()))
	d.Spec.NPoints = 5
	d.Memo = nil // exercise the full evaluation path every time

	ref, err := d.Evaluate(referenceDesign)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				pts, stab := d.SweepGrids()
				for j := range pts {
					pts[j] = -1 // scribble on the copy
				}
				for j := range stab {
					stab[j] = -1
				}
				ev, err := d.Evaluate(referenceDesign)
				if err != nil {
					t.Errorf("Evaluate: %v", err)
					return
				}
				if ev.WorstNFdB != ref.WorstNFdB || ev.MinGTdB != ref.MinGTdB ||
					ev.StabMargin != ref.StabMargin {
					t.Errorf("evaluation drifted after SweepGrids mutation: %+v vs %+v", ev, ref)
					return
				}
			}
		}()
	}
	wg.Wait()

	pts, stab := d.SweepGrids()
	if len(pts) != 5 || pts[0] != d.Spec.FLow || pts[len(pts)-1] != d.Spec.FHigh {
		t.Fatalf("band grid corrupted: %v", pts)
	}
	for _, f := range stab {
		if f <= 0 {
			t.Fatalf("stability grid corrupted: %v", stab)
		}
	}
}
