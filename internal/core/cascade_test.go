package core

import (
	"math"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/noise"
	"gnsslna/internal/optim"
	"gnsslna/internal/twoport"
)

func TestTwoStageGainAndNoiseComposition(t *testing.T) {
	b := NewBuilder(device.Golden())
	ts, err := b.BuildTwoStage(referenceDesign, referenceDesign)
	if err != nil {
		t.Fatalf("BuildTwoStage: %v", err)
	}
	f := 1.4e9
	m1, err := ts.First.MetricsAt(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ts.MetricsAt(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Cascade gain within a few dB of the stage-gain sum (interstage
	// mismatch accounts for the difference).
	if d := math.Abs(mc.GTdB - 2*m1.GTdB); d > 4 {
		t.Errorf("cascade GT %g vs 2x stage %g: interstage mismatch %g dB too large",
			mc.GTdB, 2*m1.GTdB, d)
	}
	// Friis: cascade NF must exceed stage-1 NF but stay well below the sum.
	if mc.NFdB < m1.NFdB-1e-9 {
		t.Errorf("cascade NF %g below first-stage NF %g", mc.NFdB, m1.NFdB)
	}
	if mc.NFdB > m1.NFdB+0.5 {
		t.Errorf("cascade NF %g too far above first stage %g (Friis should protect it)",
			mc.NFdB, m1.NFdB)
	}
	// Power bookkeeping.
	if got, want := ts.PowerDissipation(), 2*ts.First.PowerDissipation(); math.Abs(got-want) > 1e-12 {
		t.Errorf("cascade power %g, want %g", got, want)
	}
}

func TestTwoStageFriisQuantitative(t *testing.T) {
	// The exact correlation-matrix cascade must agree with the Friis
	// formula evaluated with available gains when the interstage is
	// matched. We verify the cascade's F sits between stage-1 F and the
	// naive Friis bound computed with transducer gain (a lower gain than
	// GA, so the bound is conservative).
	b := NewBuilder(device.Golden())
	ts, err := b.BuildTwoStage(referenceDesign, referenceDesign)
	if err != nil {
		t.Fatal(err)
	}
	f := 1.4e9
	tp1, err := ts.First.NoisyAt(f)
	if err != nil {
		t.Fatal(err)
	}
	tpc, err := ts.NoisyAt(f)
	if err != nil {
		t.Fatal(err)
	}
	ys := complex(1.0/50, 0)
	f1 := tp1.FigureY(ys)
	fc := tpc.FigureY(ys)
	s1, err := tp1.S(50)
	if err != nil {
		t.Fatal(err)
	}
	ga1 := twoport.AvailableGain(s1, 0)
	bound := noise.Friis([]float64{f1, f1}, []float64{ga1, 1})
	if fc < f1 {
		t.Errorf("cascade F %g below stage F %g", fc, f1)
	}
	if fc > bound*1.05 {
		t.Errorf("cascade F %g exceeds Friis bound %g", fc, bound)
	}
}

func TestOptimizeTwoStageReaches30dB(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization run skipped in -short mode")
	}
	d := NewDesigner(NewBuilder(device.Golden()))
	d.Spec.NPoints = 5
	spec := DefaultTwoStageSpec()
	spec.Spec.NPoints = 5
	res, err := d.OptimizeTwoStage(spec, &optim.AttainOptions{Seed: 6, GlobalEvals: 2000, PolishEvals: 1200})
	if err != nil {
		t.Fatalf("OptimizeTwoStage: %v", err)
	}
	if res.MinGTdB < 28 {
		t.Errorf("cascade gain %g dB, want >= 28", res.MinGTdB)
	}
	if res.WorstNFdB > 1.1 {
		t.Errorf("cascade NF %g dB, want ~< 1", res.WorstNFdB)
	}
	if res.StabMargin <= 0 {
		t.Errorf("cascade stability margin %g", res.StabMargin)
	}
	if res.Evals == 0 {
		t.Error("missing eval count")
	}
}
