// Package core implements the paper's contribution: multi-objective design
// of a low-noise antenna preamplifier covering every principal
// satellite-navigation constellation (GPS, GLONASS, Galileo and
// Compass/BeiDou, roughly 1.1-1.7 GHz) around a low-noise pHEMT. The
// designer evaluates a realistic amplifier topology — dispersive matching
// elements, bias-feed T-splitters, source degeneration — with exact
// noise-correlation bookkeeping, and selects the operating point and the
// essential passive elements with the improved goal-attainment method.
package core

// Band is one navigation signal band.
type Band struct {
	// Name identifies the constellation and signal (e.g. "GPS L1").
	Name string
	// Center is the carrier frequency in Hz.
	Center float64
	// Width is the main-lobe bandwidth in Hz used for in-band checks.
	Width float64
}

// GNSSBands returns the principal signals of the four constellations the
// paper targets. Compass is the pre-2012 name of BeiDou used by the paper.
func GNSSBands() []Band {
	return []Band{
		{Name: "GPS L5", Center: 1.17645e9, Width: 24e6},
		{Name: "Galileo E5a", Center: 1.17645e9, Width: 24e6},
		{Name: "Galileo E5b", Center: 1.20714e9, Width: 24e6},
		{Name: "Compass B2", Center: 1.207e9, Width: 24e6},
		{Name: "GLONASS G3", Center: 1.202025e9, Width: 8e6},
		{Name: "GPS L2", Center: 1.2276e9, Width: 24e6},
		{Name: "GLONASS G2", Center: 1.246e9, Width: 8e6},
		{Name: "Compass B3", Center: 1.26852e9, Width: 24e6},
		{Name: "Galileo E6", Center: 1.27875e9, Width: 40e6},
		{Name: "Compass B1", Center: 1.561098e9, Width: 4e6},
		{Name: "GPS L1", Center: 1.57542e9, Width: 24e6},
		{Name: "Galileo E1", Center: 1.57542e9, Width: 24e6},
		{Name: "GLONASS G1", Center: 1.602e9, Width: 8e6},
	}
}

// DesignBand returns the contiguous frequency range covering all GNSS
// signals with guard margins, the paper's "roughly 1.1 to 1.7 GHz".
func DesignBand() (lo, hi float64) {
	return 1.15e9, 1.65e9
}
