package core

import (
	"fmt"
	"math"

	"gnsslna/internal/device"
	"gnsslna/internal/optim"
	"gnsslna/internal/rfpassive"
)

// DistributedDesign is the parameter vector of the transmission-line
// matching variant: instead of chip L/C, series microstrip line sections
// and open-circuited shunt stubs (attached through T-junctions) form the
// matching networks — the element family the paper's passive equations
// target.
type DistributedDesign struct {
	// Vgs and Vds set the transistor operating point.
	Vgs, Vds float64
	// LDegen is the source-degeneration inductance (realized as a shorted
	// stub / via inductance).
	LDegen float64
	// LenIn and StubIn are the input series-line and open-stub lengths in
	// meters.
	LenIn, StubIn float64
	// LenOut and StubOut are the output series-line and open-stub lengths.
	LenOut, StubOut float64
}

// Vector flattens the design for the optimizers.
func (d DistributedDesign) Vector() []float64 {
	return []float64{d.Vgs, d.Vds, d.LDegen, d.LenIn, d.StubIn, d.LenOut, d.StubOut}
}

// DistributedFromVector rebuilds a DistributedDesign from a vector.
func DistributedFromVector(x []float64) DistributedDesign {
	return DistributedDesign{
		Vgs: x[0], Vds: x[1], LDegen: x[2],
		LenIn: x[3], StubIn: x[4], LenOut: x[5], StubOut: x[6],
	}
}

// DistributedBounds returns the optimizer search box. Stub and line lengths
// stay below a quarter wave at the band top.
func DistributedBounds() (lo, hi []float64) {
	return []float64{0.28, 1.5, 0.05e-9, 0.5e-3, 0.5e-3, 0.5e-3, 0.5e-3},
		[]float64{0.72, 4.2, 2.5e-9, 30e-3, 24e-3, 30e-3, 24e-3}
}

// openStub builds an open-circuited shunt stub hanging off a T-junction,
// with the physical length corrected for the open-end fringing extension so
// the electrical length matches the requested one.
func openStub(sub rfpassive.Substrate, wMain, wStub, length float64) rfpassive.Tee {
	return rfpassive.Tee{
		Sub:        sub,
		WMain:      wMain,
		WBranch:    wStub,
		Branch:     rfpassive.OpenStubWithEnd(sub, wStub, length),
		BranchLoad: complex(1e9, 0), // open end
	}
}

// BuildDistributed materializes the transmission-line variant of the
// amplifier.
func (b *Builder) BuildDistributed(d DistributedDesign) (*Amplifier, error) {
	if b.Dev == nil {
		return nil, fmt.Errorf("core: builder has no device")
	}
	w50, err := b.Sub.WidthForZ0(50)
	if err != nil {
		return nil, fmt.Errorf("core: substrate: %w", err)
	}
	// Series sections use a narrow high-impedance line (a distributed
	// inductor, the hi-lo stepped-impedance idiom); stubs a moderate 70 ohm.
	wSeries, err := b.Sub.WidthForZ0(90)
	if err != nil {
		return nil, fmt.Errorf("core: substrate: %w", err)
	}
	wStub, err := b.Sub.WidthForZ0(70)
	if err != nil {
		return nil, fmt.Errorf("core: substrate: %w", err)
	}
	dev := *b.Dev
	dev.Ext.Ls += d.LDegen

	inputTee := rfpassive.Tee{
		Sub:     b.Sub,
		WMain:   w50,
		WBranch: w50 / 3,
		Branch: rfpassive.Chain{
			rfpassive.NewChipInductor(68e-9, rfpassive.Series),
			rfpassive.NewChipResistor(b.GateDampR, rfpassive.Series),
			rfpassive.NewChipCapacitor(100e-12, rfpassive.Shunt),
		},
		BranchLoad: complex(b.GateBiasR, 0),
	}
	input := rfpassive.Chain{
		rfpassive.DCBlock(100e-12),
		rfpassive.Line{Sub: b.Sub, W: wSeries, Len: d.LenIn, Dispersion: true},
		openStub(b.Sub, w50, wStub, d.StubIn),
		inputTee,
	}

	outputTee := rfpassive.Tee{
		Sub:     b.Sub,
		WMain:   w50,
		WBranch: w50 / 3,
		Branch: rfpassive.Chain{
			rfpassive.NewChipInductor(68e-9, rfpassive.Series),
			rfpassive.NewChipResistor(b.DrainDampR, rfpassive.Series),
			rfpassive.NewChipCapacitor(100e-12, rfpassive.Shunt),
		},
		BranchLoad: complex(b.DrainRailR, 0),
	}
	output := rfpassive.Chain{
		rfpassive.StabilizerRL(b.StabR, b.StabL),
		outputTee,
		rfpassive.Line{Sub: b.Sub, W: wSeries, Len: d.LenOut, Dispersion: true},
		openStub(b.Sub, w50, wStub, d.StubOut),
		rfpassive.DCBlock(100e-12),
	}

	return &Amplifier{
		Dev:    &dev,
		Bias:   device.Bias{Vgs: d.Vgs, Vds: d.Vds},
		Input:  input,
		Output: output,
		Design: Design{Vgs: d.Vgs, Vds: d.Vds, LDegen: d.LDegen},
	}, nil
}

// EvaluateDistributed computes the band evaluation of a distributed design.
func (d *Designer) EvaluateDistributed(x DistributedDesign) (Evaluation, error) {
	d.evals.Add(1)
	amp, err := d.Builder.BuildDistributed(x)
	if err != nil {
		return Evaluation{}, err
	}
	return d.evaluateAmp(amp, Design{Vgs: x.Vgs, Vds: x.Vds, LDegen: x.LDegen})
}

// DistributedResult reports the distributed-topology optimization.
type DistributedResult struct {
	// Design is the optimized distributed design.
	Design DistributedDesign
	// Eval grades it over the band.
	Eval Evaluation
	// Gamma is the attainment factor.
	Gamma float64
	// Evals counts band evaluations.
	Evals int
}

// OptimizeDistributed selects the operating point and line/stub lengths
// with the improved goal-attainment method.
func (d *Designer) OptimizeDistributed(opts *optim.AttainOptions) (DistributedResult, error) {
	d.evals.Store(0)
	lo, hi := DistributedBounds()
	obj := func(x []float64) []float64 {
		ev, err := d.EvaluateDistributed(DistributedFromVector(x))
		if err != nil {
			return []float64{99, 99, 99, 99, 99, 99}
		}
		return penalizeInstability(ev)
	}
	res, err := optim.GoalAttainImproved(obj, d.goals(), lo, hi, opts)
	if err != nil {
		return DistributedResult{}, fmt.Errorf("core: optimize distributed: %w", err)
	}
	best := DistributedFromVector(res.X)
	ev, err := d.EvaluateDistributed(best)
	if err != nil {
		return DistributedResult{}, err
	}
	return DistributedResult{
		Design: best,
		Eval:   ev,
		Gamma:  res.Gamma,
		Evals:  int(d.evals.Load()),
	}, nil
}

// QuarterWaveLength returns the quarter wavelength on the builder substrate
// at f for a 50-ohm line, a convenience for reports.
func (b *Builder) QuarterWaveLength(f float64) (float64, error) {
	w50, err := b.Sub.WidthForZ0(50)
	if err != nil {
		return 0, err
	}
	e := b.Sub.EpsEff(w50, f, true)
	const c0 = 299792458.0
	return c0 / (4 * f * math.Sqrt(e)), nil
}
