package core

import (
	"fmt"
	"math/rand"

	"gnsslna/internal/mathx"
	"gnsslna/internal/optim"
)

// SensitivityEntry reports the effect of perturbing one design parameter.
type SensitivityEntry struct {
	// Param names the perturbed parameter.
	Param string
	// DeltaNFdB and DeltaGTdB are the worst-case changes of the band
	// extremes for a +/- RelStep perturbation.
	DeltaNFdB, DeltaGTdB float64
}

// Sensitivity perturbs each design parameter by +/- relStep (e.g. 0.05 for
// component tolerance) and reports the worst-case movement of the band
// noise figure and gain — the robustness table of the final design. The
// 2 * dim perturbed evaluations fan out across d.Workers goroutines and
// are folded into the table in a fixed (parameter, sign) order, so the
// result is identical for any worker count.
func (d *Designer) Sensitivity(x Design, relStep float64) ([]SensitivityEntry, error) {
	if relStep <= 0 {
		relStep = 0.05
	}
	base, err := d.Evaluate(x)
	if err != nil {
		return nil, fmt.Errorf("core: sensitivity base: %w", err)
	}
	names := []string{"Vgs", "Vds", "LIn", "LDegen", "LOut", "COut"}
	vec := x.Vector()
	signs := []float64{-1, 1}
	// Perturbation j covers parameter j/2 with sign j%2.
	perturbed := make([]Design, len(vec)*len(signs))
	p := make([]float64, len(vec))
	for i := range vec {
		for s, sign := range signs {
			copy(p, vec)
			p[i] *= 1 + sign*relStep
			perturbed[i*len(signs)+s] = DesignFromVector(p)
		}
	}
	evs := make([]Evaluation, len(perturbed))
	errs := make([]error, len(perturbed))
	optim.NewEvalPool(d.Workers).Each(len(perturbed), func(j int) {
		evs[j], errs[j] = d.Evaluate(perturbed[j])
	})
	out := make([]SensitivityEntry, len(vec))
	for i := range vec {
		e := SensitivityEntry{Param: names[i]}
		for s := range signs {
			j := i*len(signs) + s
			if errs[j] != nil {
				// An unbuildable perturbation contributes nothing, as in the
				// serial sweep.
				continue
			}
			ev := evs[j]
			if dn := abs(ev.WorstNFdB - base.WorstNFdB); dn > e.DeltaNFdB {
				e.DeltaNFdB = dn
			}
			if dg := abs(ev.MinGTdB - base.MinGTdB); dg > e.DeltaGTdB {
				e.DeltaGTdB = dg
			}
		}
		out[i] = e
	}
	return out, nil
}

// YieldReport summarizes a Monte Carlo tolerance analysis.
type YieldReport struct {
	// Trials is the number of sampled builds.
	Trials int
	// PassRate is the fraction meeting the spec goals.
	PassRate float64
	// NF95dB and GT5dB are the 95th percentile NF and 5th percentile gain.
	NF95dB, GT5dB float64
}

// Yield Monte-Carlo-samples component tolerances (uniform +/- tol on the
// three chip elements, +/- 2% on bias voltages) and reports the
// specification yield of the design. All random draws happen up front on
// the caller's goroutine in trial order; only the independent band
// evaluations fan out across d.Workers goroutines, so the report is
// bit-identical for any worker count.
func (d *Designer) Yield(x Design, tol float64, trials int, seed int64) (YieldReport, error) {
	if tol <= 0 {
		tol = 0.05
	}
	if trials <= 0 {
		trials = 100
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Design, trials)
	for t := range samples {
		p := x
		p.LIn *= 1 + tol*(2*rng.Float64()-1)
		p.LOut *= 1 + tol*(2*rng.Float64()-1)
		p.COut *= 1 + tol*(2*rng.Float64()-1)
		p.Vgs *= 1 + 0.02*(2*rng.Float64()-1)
		p.Vds *= 1 + 0.02*(2*rng.Float64()-1)
		samples[t] = p
	}
	evs := make([]Evaluation, trials)
	errs := make([]error, trials)
	optim.NewEvalPool(d.Workers).Each(trials, func(t int) {
		evs[t], errs[t] = d.Evaluate(samples[t])
	})
	nfs := make([]float64, 0, trials)
	gts := make([]float64, 0, trials)
	pass := 0
	for t := 0; t < trials; t++ {
		if errs[t] != nil {
			return YieldReport{}, fmt.Errorf("core: yield trial %d: %w", t, errs[t])
		}
		ev := evs[t]
		nfs = append(nfs, ev.WorstNFdB)
		gts = append(gts, ev.MinGTdB)
		if ev.WorstNFdB <= d.Spec.NFMaxDB &&
			ev.MinGTdB >= d.Spec.GTMinDB &&
			ev.WorstS11dB <= d.Spec.S11MaxDB &&
			ev.WorstS22dB <= d.Spec.S22MaxDB &&
			ev.StabMargin > 0 {
			pass++
		}
	}
	return YieldReport{
		Trials:   trials,
		PassRate: float64(pass) / float64(trials),
		NF95dB:   mathx.Percentile(nfs, 95),
		GT5dB:    mathx.Percentile(gts, 5),
	}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
