// Package chaostest provides deterministic fault injection for exercising
// the resilience layer: wrappers that make an objective panic, return
// non-finite values, or stall on a fixed schedule keyed to the global call
// count. The schedule is deterministic for a single-threaded solver and
// merely well-defined (atomically counted) under concurrency, so the same
// harness drives both the unit tests and the -race chaos suite.
package chaostest

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Injector schedules faults by call ordinal (1-based). The zero value
// injects nothing and passes every call through.
type Injector struct {
	// FailFirst makes the first N calls return NaN — a transient startup
	// fault that a restart policy should survive (0: disabled).
	FailFirst int64
	// PanicEvery makes every Nth call panic (0: disabled).
	PanicEvery int64
	// NaNEvery makes every Nth call return NaN (0: disabled).
	NaNEvery int64
	// InfEvery makes every Nth call return +Inf (0: disabled).
	InfEvery int64
	// SlowEvery makes every Nth call sleep for SlowFor (0: disabled).
	SlowEvery int64
	// SlowFor is the stall duration for slow calls.
	SlowFor time.Duration

	calls atomic.Int64
}

// Calls reports how many evaluations passed through the injector.
func (in *Injector) Calls() int64 { return in.calls.Load() }

// Reset zeroes the call counter (between restart attempts the schedule
// keeps advancing unless the test resets it).
func (in *Injector) Reset() { in.calls.Store(0) }

// step advances the call counter and executes the side-effect faults
// (stall, panic). It reports whether the call must return a non-finite
// value instead of the real objective, and which one.
func (in *Injector) step() (bad float64, inject bool) {
	n := in.calls.Add(1)
	if in.SlowEvery > 0 && n%in.SlowEvery == 0 {
		time.Sleep(in.SlowFor)
	}
	if in.PanicEvery > 0 && n%in.PanicEvery == 0 {
		panic(fmt.Sprintf("chaostest: injected panic at call %d", n))
	}
	if in.FailFirst > 0 && n <= in.FailFirst {
		return math.NaN(), true
	}
	if in.NaNEvery > 0 && n%in.NaNEvery == 0 {
		return math.NaN(), true
	}
	if in.InfEvery > 0 && n%in.InfEvery == 0 {
		return math.Inf(1), true
	}
	return 0, false
}

// Wrap returns f with the injector's fault schedule applied.
func (in *Injector) Wrap(f func([]float64) float64) func([]float64) float64 {
	return func(x []float64) float64 {
		if bad, inject := in.step(); inject {
			return bad
		}
		return f(x)
	}
}

// WrapVector returns the m-objective f with the fault schedule applied; an
// injected fault poisons every component of the returned vector.
func (in *Injector) WrapVector(f func([]float64) []float64, m int) func([]float64) []float64 {
	return func(x []float64) []float64 {
		if bad, inject := in.step(); inject {
			out := make([]float64, m)
			for i := range out {
				out[i] = bad
			}
			return out
		}
		return f(x)
	}
}
