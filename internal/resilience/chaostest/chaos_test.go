package chaostest_test

import (
	"math"
	"testing"
	"time"

	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/resilience/chaostest"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func box(dim int) (lo, hi []float64) {
	lo, hi = make([]float64, dim), make([]float64, dim)
	for i := range lo {
		lo[i], hi[i] = -5, 5
	}
	return lo, hi
}

func TestInjectorSchedule(t *testing.T) {
	in := &chaostest.Injector{NaNEvery: 3, InfEvery: 5}
	f := in.Wrap(sphere)
	x := []float64{1, 2}
	for n := int64(1); n <= 15; n++ {
		v := f(x)
		switch {
		case n%3 == 0:
			if !math.IsNaN(v) {
				t.Errorf("call %d: want NaN, got %v", n, v)
			}
		case n%5 == 0:
			if !math.IsInf(v, 1) {
				t.Errorf("call %d: want +Inf, got %v", n, v)
			}
		default:
			if v != 5 {
				t.Errorf("call %d: want 5, got %v", n, v)
			}
		}
	}
	if in.Calls() != 15 {
		t.Errorf("calls = %d, want 15", in.Calls())
	}
	in.Reset()
	if in.Calls() != 0 {
		t.Error("Reset did not zero the counter")
	}
}

func TestSafeQuarantinesChaos(t *testing.T) {
	in := &chaostest.Injector{PanicEvery: 7, NaNEvery: 3}
	safe := resilience.NewSafe(in.Wrap(sphere), &resilience.SafeOptions{Penalty: 1e6})
	obj := safe.Objective()
	for i := 0; i < 100; i++ {
		if v := obj([]float64{1, 1}); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("eval %d leaked a non-finite value: %v", i, v)
		}
	}
	if safe.Panics() == 0 {
		t.Error("no injected panic was recovered")
	}
	if safe.NonFinite() == 0 {
		t.Error("no injected NaN was quarantined")
	}
}

func TestBreakerTripsUnderSustainedFaults(t *testing.T) {
	in := &chaostest.Injector{NaNEvery: 1}
	ctrl := resilience.NewController(resilience.ControllerOptions{})
	safe := resilience.NewSafe(in.Wrap(sphere), &resilience.SafeOptions{
		BreakerK: 10, Control: ctrl,
	})
	obj := safe.Objective()
	for i := 0; i < 10; i++ {
		obj([]float64{1})
	}
	st, ok := resilience.AsStopped(ctrl.Check())
	if !ok || st.Reason != resilience.StopBreaker {
		t.Fatalf("controller not tripped after 10 sustained faults: %v", ctrl.Check())
	}
	if safe.BreakerTrips() != 1 {
		t.Errorf("trips = %d, want 1", safe.BreakerTrips())
	}
}

func TestDeadlineStopsSlowEvals(t *testing.T) {
	in := &chaostest.Injector{SlowEvery: 1, SlowFor: 2 * time.Millisecond}
	ctrl := resilience.NewController(resilience.ControllerOptions{
		Deadline: time.Now().Add(25 * time.Millisecond),
	})
	lo, hi := box(3)
	start := time.Now()
	res, err := optim.DifferentialEvolution(in.Wrap(sphere), lo, hi, &optim.DEOptions{
		Pop: 20, Generations: 10000, Seed: 1, Control: ctrl,
	})
	st, ok := resilience.AsStopped(err)
	if !ok || st.Reason != resilience.StopDeadline {
		t.Fatalf("want deadline stop, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
	if len(res.X) == 0 {
		t.Error("no best-so-far point returned")
	}
}

func TestRestartPolicyHealsTransientChaos(t *testing.T) {
	// The first 40 evaluations all fault; the breaker (K=20) trips on the
	// first attempt, the restart policy resets it, and a later attempt
	// runs on the healed objective.
	in := &chaostest.Injector{FailFirst: 40}
	ctrl := resilience.NewController(resilience.ControllerOptions{})
	safe := resilience.NewSafe(in.Wrap(sphere), &resilience.SafeOptions{
		BreakerK: 20, Control: ctrl,
	})
	lo, hi := box(2)
	policy := resilience.RestartPolicy{Seed: 3, MaxRestarts: 3, Control: ctrl}
	attempt, best, err := policy.Run(func(seed int64) (float64, error) {
		res, err := optim.DifferentialEvolution(safe.Objective(), lo, hi, &optim.DEOptions{
			Pop: 20, Generations: 30, Seed: seed, Control: ctrl,
		})
		return res.F, err
	})
	if err != nil {
		t.Fatalf("restart policy did not recover: %v", err)
	}
	if attempt == 0 {
		t.Error("recovery reported on attempt 0: breaker never tripped")
	}
	if best > 1e-3 {
		t.Errorf("healed run did not converge: best %g", best)
	}
	if safe.BreakerTrips() == 0 {
		t.Error("breaker never tripped")
	}
}

// TestParallelSolversSurviveChaos drives the population solvers with the
// evaluation fan-out enabled over a panicking, NaN-spewing objective behind
// the quarantine wrapper: every fault must be quarantined in whichever
// worker goroutine evaluates it, no panic may escape, no batch may be lost,
// and the run must terminate (no deadlock).
func TestParallelSolversSurviveChaos(t *testing.T) {
	lo, hi := box(3)
	const workers = 4
	solvers := []struct {
		name string
		run  func(obj func([]float64) float64) (optim.Result, error)
	}{
		{"de", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.DifferentialEvolution(obj, lo, hi, &optim.DEOptions{
				Pop: 20, Generations: 30, Seed: 1, Workers: workers,
			})
		}},
		{"pso", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.ParticleSwarm(obj, lo, hi, &optim.PSOOptions{
				Pop: 20, Iterations: 30, Seed: 1, Workers: workers,
			})
		}},
		{"cmaes", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.CMAES(obj, lo, hi, &optim.CMAESOptions{
				Generations: 60, Seed: 1, Workers: workers,
			})
		}},
	}
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			in := &chaostest.Injector{PanicEvery: 11, NaNEvery: 7}
			safe := resilience.NewSafe(in.Wrap(sphere), &resilience.SafeOptions{Penalty: 1e6})
			res, err := s.run(safe.Objective())
			if err != nil {
				t.Fatalf("solver failed under parallel chaos: %v", err)
			}
			if len(res.X) == 0 || math.IsNaN(res.F) || math.IsInf(res.F, 0) {
				t.Fatalf("unusable result under parallel chaos: %+v", res)
			}
			if safe.Panics() == 0 && safe.NonFinite() == 0 {
				t.Error("injector never fired: parallel chaos sweep vacuous")
			}
		})
	}
}

// TestParallelPanicPropagatesUnwrapped pins the worker-pool contract for an
// objective with no quarantine wrapper: a panic in a worker is re-raised on
// the driving goroutine after the batch drains — never a deadlock, never a
// silently lost batch.
func TestParallelPanicPropagatesUnwrapped(t *testing.T) {
	lo, hi := box(2)
	in := &chaostest.Injector{PanicEvery: 13}
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		_, _ = optim.DifferentialEvolution(in.Wrap(sphere), lo, hi, &optim.DEOptions{
			Pop: 20, Generations: 50, Seed: 1, Workers: 4,
		})
		done <- nil
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("injected panic vanished: neither propagated nor deadlocked")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel solver deadlocked on a panicking objective")
	}
}

// TestParallelDeadlineStopsStalledWorkers verifies the controller still
// stops a run whose evaluations stall inside worker goroutines.
func TestParallelDeadlineStopsStalledWorkers(t *testing.T) {
	in := &chaostest.Injector{SlowEvery: 1, SlowFor: 2 * time.Millisecond}
	ctrl := resilience.NewController(resilience.ControllerOptions{
		Deadline: time.Now().Add(25 * time.Millisecond),
	})
	lo, hi := box(3)
	start := time.Now()
	res, err := optim.DifferentialEvolution(in.Wrap(sphere), lo, hi, &optim.DEOptions{
		Pop: 20, Generations: 10000, Seed: 1, Control: ctrl, Workers: 4,
	})
	st, ok := resilience.AsStopped(err)
	if !ok || st.Reason != resilience.StopDeadline {
		t.Fatalf("want deadline stop, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
	if len(res.X) == 0 {
		t.Error("no best-so-far point returned")
	}
}

// TestAllSolversSurviveChaos sweeps every scalar solver over a panicking,
// NaN-spewing objective behind the quarantine wrapper: no panic may escape
// and every solver must return a usable point.
func TestAllSolversSurviveChaos(t *testing.T) {
	lo, hi := box(3)
	x0 := []float64{3, -2, 4}
	solvers := []struct {
		name string
		run  func(obj func([]float64) float64) (optim.Result, error)
	}{
		{"de", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.DifferentialEvolution(obj, lo, hi, &optim.DEOptions{Pop: 20, Generations: 30, Seed: 1})
		}},
		{"pso", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.ParticleSwarm(obj, lo, hi, &optim.PSOOptions{Pop: 20, Iterations: 30, Seed: 1})
		}},
		{"sa", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.SimulatedAnnealing(obj, lo, hi, &optim.SAOptions{Iterations: 600, Seed: 1})
		}},
		{"cmaes", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.CMAES(obj, lo, hi, &optim.CMAESOptions{Generations: 60, Seed: 1})
		}},
		{"nm", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.NelderMead(obj, x0, &optim.NMOptions{MaxEvals: 600})
		}},
		{"hj", func(obj func([]float64) float64) (optim.Result, error) {
			return optim.HookeJeeves(obj, x0, &optim.HJOptions{MaxEvals: 600})
		}},
	}
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			in := &chaostest.Injector{PanicEvery: 11, NaNEvery: 7}
			safe := resilience.NewSafe(in.Wrap(sphere), &resilience.SafeOptions{Penalty: 1e6})
			res, err := s.run(safe.Objective())
			if err != nil {
				t.Fatalf("solver failed under chaos: %v", err)
			}
			if len(res.X) == 0 || math.IsNaN(res.F) || math.IsInf(res.F, 0) {
				t.Fatalf("unusable result under chaos: %+v", res)
			}
			if safe.Panics() == 0 && safe.NonFinite() == 0 {
				t.Error("injector never fired: chaos sweep vacuous")
			}
		})
	}
}
