package chaostest

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// TruncateTail chops the final n bytes off path, reproducing a crash that
// tore the last append mid-write. It refuses to truncate past the start.
func TruncateTail(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("chaostest: truncate tail: %w", err)
	}
	keep := st.Size() - n
	if keep < 0 {
		keep = 0
	}
	if err := os.Truncate(path, keep); err != nil {
		return fmt.Errorf("chaostest: truncate tail: %w", err)
	}
	return nil
}

// CorruptByte XORs the byte at offset with mask (offset counts from the end
// when negative), reproducing silent bit rot inside a journal segment.
func CorruptByte(path string, offset int64, mask byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("chaostest: corrupt byte: %w", err)
	}
	defer f.Close()
	if offset < 0 {
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("chaostest: corrupt byte: %w", err)
		}
		offset += st.Size()
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return fmt.Errorf("chaostest: corrupt byte: %w", err)
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return fmt.Errorf("chaostest: corrupt byte: %w", err)
	}
	return nil
}

// SkewClock is a deterministic misbehaving clock: each Now call consumes the
// next delta from the schedule (negative deltas are backwards jumps — NTP
// steps, VM migrations) and after the schedule drains it ticks forward by
// Tick per read. The zero Tick defaults to one millisecond so time never
// stalls silently.
type SkewClock struct {
	mu       sync.Mutex
	t        time.Time
	schedule []time.Duration
	// Tick advances the clock per read once the schedule is consumed.
	Tick time.Duration
}

// NewSkewClock starts a skewing clock at base with the given per-read
// deltas.
func NewSkewClock(base time.Time, schedule ...time.Duration) *SkewClock {
	return &SkewClock{t: base, schedule: schedule}
}

// Now returns the next reading of the skewing clock.
func (c *SkewClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.schedule) > 0 {
		c.t = c.t.Add(c.schedule[0])
		c.schedule = c.schedule[1:]
	} else {
		tick := c.Tick
		if tick <= 0 {
			tick = time.Millisecond
		}
		c.t = c.t.Add(tick)
	}
	return c.t
}
