package resilience

import (
	"gnsslna/internal/obs"
)

// JitterSeed derives the seed of restart attempt k from the base seed with a
// splitmix64-style mix, so attempts explore decorrelated streams while
// remaining fully deterministic: the same (seed, k) always yields the same
// attempt.
func JitterSeed(seed int64, k int) int64 {
	if k == 0 {
		return seed
	}
	z := uint64(seed) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// Attempt is one restart-policy invocation: the callback runs the underlying
// solve with the attempt's jittered seed and returns the attempt's best
// objective value plus any error (typically a *Stopped).
type Attempt func(seed int64) (best float64, err error)

// RestartPolicy reruns a solve with jittered re-seeding when an attempt is
// cut short by the circuit breaker: a breaker trip usually means the solver
// wandered into a pathological region, and a fresh decorrelated start is the
// standard recovery. Stops for external reasons (cancellation, deadline,
// eval budget) abort immediately — restarting would ignore the caller's
// limits.
type RestartPolicy struct {
	// Seed is the base seed; attempt k runs with JitterSeed(Seed, k).
	Seed int64
	// MaxRestarts bounds the number of restarts after the first attempt
	// (0: single attempt, no restarts).
	MaxRestarts int
	// Control is the shared run controller; its breaker is reset between
	// attempts so a new attempt starts clean (nil: allowed).
	Control *RunController
	// Observer receives a KindRestart event per restart attempt (nil:
	// disabled).
	Observer obs.Observer
	// Scope labels restart events (default "resilience.restart").
	Scope string
}

// Run executes attempts until one finishes without a breaker stop or the
// restart budget is exhausted. It reports the index of the best attempt, the
// best objective across attempts, and the error of the last attempt (nil
// when the last attempt completed).
func (p RestartPolicy) Run(attempt Attempt) (bestAttempt int, best float64, err error) {
	scope := p.Scope
	if scope == "" {
		scope = "resilience.restart"
	}
	bestAttempt = -1
	for k := 0; ; k++ {
		if k > 0 {
			p.Control.ResetBreaker()
			if p.Observer != nil {
				p.Observer.Observe(obs.Event{Kind: obs.KindRestart, Scope: scope, Gen: k, Best: best})
			}
		}
		f, aerr := attempt(JitterSeed(p.Seed, k))
		if bestAttempt < 0 || f < best {
			bestAttempt, best = k, f
		}
		err = aerr
		if aerr == nil {
			return bestAttempt, best, nil
		}
		st, ok := AsStopped(aerr)
		if !ok || st.Reason != StopBreaker || k >= p.MaxRestarts {
			return bestAttempt, best, err
		}
	}
}
