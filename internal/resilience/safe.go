package resilience

import (
	"math"
	"sync/atomic"

	"gnsslna/internal/obs"
)

// DefaultPenalty is the objective value substituted for quarantined
// evaluations: large enough that no optimizer keeps a quarantined point,
// finite so the surrogate surface stays usable.
const DefaultPenalty = 1e12

// SafeOptions configures Safe and SafeVector.
type SafeOptions struct {
	// Penalty is the substituted objective value for quarantined
	// evaluations (default DefaultPenalty).
	Penalty float64
	// BreakerK trips the circuit breaker after this many consecutive
	// quarantined evaluations (0: breaker disabled).
	BreakerK int
	// Control receives the breaker trip so polling solvers stop with
	// Stopped{StopBreaker} (nil: the breaker only counts).
	Control *RunController
	// Observer receives a KindFault event per quarantined evaluation and a
	// KindBreaker event per trip (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "resilience.safe").
	Scope string
}

// faultGate is the shared quarantine/breaker state behind Safe and
// SafeVector. Counters are atomic so chaos tests can hammer a gate from
// racing goroutines.
type faultGate struct {
	penalty float64
	k       int64
	ctrl    *RunController
	o       obs.Observer
	scope   string

	consec    atomic.Int64
	panics    atomic.Int64
	nonFinite atomic.Int64
	trips     atomic.Int64
}

func newGate(opts *SafeOptions) *faultGate {
	g := &faultGate{penalty: DefaultPenalty, scope: "resilience.safe"}
	if opts != nil {
		if opts.Penalty != 0 {
			g.penalty = opts.Penalty
		}
		g.k = int64(opts.BreakerK)
		g.ctrl = opts.Control
		g.o = opts.Observer
		if opts.Scope != "" {
			g.scope = opts.Scope
		}
	}
	return g
}

// good resets the consecutive-fault streak.
func (g *faultGate) good() { g.consec.Store(0) }

// bad quarantines one evaluation: it bumps the fault counters, emits the
// fault event, and trips the breaker when the consecutive streak reaches K.
func (g *faultGate) bad(panicked bool) float64 {
	if panicked {
		g.panics.Add(1)
	} else {
		g.nonFinite.Add(1)
	}
	if g.o != nil {
		g.o.Observe(obs.Event{Kind: obs.KindFault, Scope: g.scope, Value: g.penalty})
	}
	n := g.consec.Add(1)
	if g.k > 0 && n >= g.k {
		g.ctrl.TripBreaker()
		if n == g.k {
			g.trips.Add(1)
			if g.o != nil {
				g.o.Observe(obs.Event{Kind: obs.KindBreaker, Scope: g.scope, Value: float64(n)})
			}
		}
	}
	return g.penalty
}

// Safe wraps a scalar objective so user-code faults cannot corrupt or kill
// a run: panics are recovered and NaN/±Inf returns are quarantined, both
// substituted with the penalty value, counted, and reported to the
// observer; K consecutive faults trip the controller's circuit breaker.
type Safe struct {
	f func([]float64) float64
	g *faultGate
}

// NewSafe wraps f. A nil opts uses the defaults (penalty substitution only,
// no breaker).
func NewSafe(f func([]float64) float64, opts *SafeOptions) *Safe {
	return &Safe{f: f, g: newGate(opts)}
}

// Eval evaluates the wrapped objective with quarantine.
func (s *Safe) Eval(x []float64) (out float64) {
	defer func() {
		if r := recover(); r != nil {
			out = s.g.bad(true)
		}
	}()
	v := s.f(x)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return s.g.bad(false)
	}
	s.g.good()
	return v
}

// Objective returns the wrapped objective as a plain function, assignable
// to optim.Objective.
func (s *Safe) Objective() func([]float64) float64 { return s.Eval }

// Panics returns the number of recovered panics.
func (s *Safe) Panics() int64 { return s.g.panics.Load() }

// NonFinite returns the number of quarantined NaN/±Inf returns.
func (s *Safe) NonFinite() int64 { return s.g.nonFinite.Load() }

// BreakerTrips returns the number of circuit-breaker trips.
func (s *Safe) BreakerTrips() int64 { return s.g.trips.Load() }

// SafeVector is Safe for vector objectives: an evaluation is quarantined
// when the function panics or when any component is NaN/±Inf, substituting
// a uniform penalty vector of the declared length.
type SafeVector struct {
	f func([]float64) []float64
	m int
	g *faultGate
}

// NewSafeVector wraps f, whose healthy return has m components.
func NewSafeVector(f func([]float64) []float64, m int, opts *SafeOptions) *SafeVector {
	return &SafeVector{f: f, m: m, g: newGate(opts)}
}

func (s *SafeVector) penaltyVec() []float64 {
	out := make([]float64, s.m)
	for i := range out {
		out[i] = s.g.penalty
	}
	return out
}

// Eval evaluates the wrapped vector objective with quarantine.
func (s *SafeVector) Eval(x []float64) (out []float64) {
	defer func() {
		if r := recover(); r != nil {
			s.g.bad(true)
			out = s.penaltyVec()
		}
	}()
	v := s.f(x)
	for _, c := range v {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			s.g.bad(false)
			return s.penaltyVec()
		}
	}
	s.g.good()
	return v
}

// Objective returns the wrapped objective as a plain function, assignable
// to optim.VectorObjective.
func (s *SafeVector) Objective() func([]float64) []float64 { return s.Eval }

// Panics returns the number of recovered panics.
func (s *SafeVector) Panics() int64 { return s.g.panics.Load() }

// NonFinite returns the number of quarantined non-finite returns.
func (s *SafeVector) NonFinite() int64 { return s.g.nonFinite.Load() }

// BreakerTrips returns the number of circuit-breaker trips.
func (s *SafeVector) BreakerTrips() int64 { return s.g.trips.Load() }
