package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Seed: 42}
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := b.Delay(attempt)
		d2 := b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: non-deterministic delay %v vs %v", attempt, d1, d2)
		}
		if d1 < 0 || d1 > 2*time.Second {
			t.Fatalf("attempt %d: delay %v outside [0, Max]", attempt, d1)
		}
		// Jitter scales into [0.5, 1.0): the delay never falls below half
		// the grown base and never exceeds the cap.
		grown := float64(100*time.Millisecond) * float64(int(1)<<(attempt-1))
		if grown > float64(2*time.Second) {
			grown = float64(2 * time.Second)
		}
		if float64(d1) < 0.5*grown-1 {
			t.Fatalf("attempt %d: delay %v below jitter floor of %v", attempt, d1, time.Duration(grown/2))
		}
		if d1 > prevCap && attempt > 6 {
			prevCap = d1
		}
	}
	// Different seeds decorrelate.
	b2 := b
	b2.Seed = 43
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if b.Delay(attempt) == b2.Delay(attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("two seeds produced identical schedules")
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d := b.Delay(1)
	if d <= 0 || d > 30*time.Second {
		t.Fatalf("zero-value Delay(1) = %v, want within (0, 30s]", d)
	}
	if got := b.Delay(0); got <= 0 {
		t.Fatalf("Delay(0) = %v, want clamped to attempt 1", got)
	}
}

func TestRetryPolicyRetriesTransientOnly(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 4,
		Backoff:     Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 1},
		Sleep:       func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	}

	// Transient errors retry up to the cap.
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		return Transient(errors.New("blip"))
	})
	if calls != 4 {
		t.Fatalf("transient: %d calls, want 4", calls)
	}
	if err == nil || !IsTransient(err) {
		t.Fatalf("transient: err = %v, want wrapped transient", err)
	}
	if len(slept) != 3 {
		t.Fatalf("transient: slept %d times, want 3", len(slept))
	}

	// Permanent errors fail immediately.
	calls = 0
	err = p.Do(context.Background(), func(int) error {
		calls++
		return errors.New("permanent")
	})
	if calls != 1 || err == nil {
		t.Fatalf("permanent: %d calls err=%v, want 1 call + error", calls, err)
	}

	// Success after a transient failure stops retrying.
	calls = 0
	err = p.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt < 2 {
			return Transient(errors.New("blip"))
		}
		return nil
	})
	if calls != 2 || err != nil {
		t.Fatalf("recover: %d calls err=%v, want 2 calls + nil", calls, err)
	}
}

func TestRetryPolicyNeverRetriesStops(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 5,
		Classify:    func(error) bool { return true }, // everything "transient"…
		Sleep:       func(context.Context, time.Duration) {},
	}
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		return &Stopped{Reason: StopDeadline} // …except a budget stop
	})
	if calls != 1 {
		t.Fatalf("stopped error retried: %d calls, want 1", calls)
	}
	if _, ok := AsStopped(err); !ok {
		t.Fatalf("err = %v, want Stopped", err)
	}
}

func TestRetryPolicyHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{
		MaxAttempts: 100,
		Sleep:       func(context.Context, time.Duration) { cancel() },
	}
	calls := 0
	err := p.Do(ctx, func(int) error {
		calls++
		return Transient(errors.New("blip"))
	})
	if calls != 1 {
		t.Fatalf("%d calls, want 1 (context canceled during backoff)", calls)
	}
	if err == nil {
		t.Fatal("want last attempt error after cancellation")
	}
}

func TestRetryPolicyZeroValueSingleAttempt(t *testing.T) {
	var p RetryPolicy
	calls := 0
	err := p.Do(nil, func(int) error { calls++; return Transient(errors.New("x")) })
	if calls != 1 || err == nil {
		t.Fatalf("zero policy: %d calls err=%v, want exactly 1 attempt", calls, err)
	}
}
