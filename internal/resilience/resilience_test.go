package resilience

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"gnsslna/internal/obs"
)

func TestNilControllerIsInert(t *testing.T) {
	var c *RunController
	if err := c.Check(); err != nil {
		t.Fatalf("nil controller Check: %v", err)
	}
	c.AddEvals(5)
	c.TripBreaker()
	c.ResetBreaker()
	if c.Evals() != 0 || c.BreakerTripped() {
		t.Fatalf("nil controller mutated: evals=%d tripped=%v", c.Evals(), c.BreakerTripped())
	}
}

func TestControllerStopReasons(t *testing.T) {
	t.Run("budget", func(t *testing.T) {
		c := NewController(ControllerOptions{MaxEvals: 10})
		if err := c.Check(); err != nil {
			t.Fatalf("fresh controller: %v", err)
		}
		c.AddEvals(9)
		if err := c.Check(); err != nil {
			t.Fatalf("under budget: %v", err)
		}
		c.AddEvals(1)
		assertStop(t, c.Check(), StopBudget)
	})
	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		c := NewController(ControllerOptions{Context: ctx})
		if err := c.Check(); err != nil {
			t.Fatalf("before cancel: %v", err)
		}
		cancel()
		assertStop(t, c.Check(), StopCanceled)
	})
	t.Run("deadline", func(t *testing.T) {
		now := time.Unix(1000, 0)
		clock := func() time.Time { return now }
		c := NewController(ControllerOptions{Deadline: now.Add(time.Second), Clock: clock})
		if err := c.Check(); err != nil {
			t.Fatalf("before deadline: %v", err)
		}
		now = now.Add(time.Second)
		assertStop(t, c.Check(), StopDeadline)
	})
	t.Run("breaker", func(t *testing.T) {
		c := NewController(ControllerOptions{})
		c.TripBreaker()
		assertStop(t, c.Check(), StopBreaker)
		c.ResetBreaker()
		if err := c.Check(); err != nil {
			t.Fatalf("after reset: %v", err)
		}
	})
	t.Run("breaker wins over budget", func(t *testing.T) {
		c := NewController(ControllerOptions{MaxEvals: 1})
		c.AddEvals(5)
		c.TripBreaker()
		assertStop(t, c.Check(), StopBreaker)
	})
}

func assertStop(t *testing.T, err error, want StopReason) {
	t.Helper()
	st, ok := AsStopped(err)
	if !ok {
		t.Fatalf("want Stopped{%v}, got %v", want, err)
	}
	if st.Reason != want {
		t.Fatalf("stop reason = %v, want %v", st.Reason, want)
	}
}

func TestAsStoppedWrapped(t *testing.T) {
	inner := &Stopped{Reason: StopDeadline}
	wrapped := errors.Join(errors.New("outer"), inner)
	st, ok := AsStopped(wrapped)
	if !ok || st.Reason != StopDeadline {
		t.Fatalf("AsStopped(wrapped) = %v, %v", st, ok)
	}
	if _, ok := AsStopped(errors.New("plain")); ok {
		t.Fatal("AsStopped matched a plain error")
	}
}

func TestStopReasonStrings(t *testing.T) {
	cases := map[StopReason]string{
		StopBreaker:   "breaker",
		StopCanceled:  "canceled",
		StopDeadline:  "deadline",
		StopBudget:    "eval-budget",
		StopReason(0): "unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("StopReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestSafeQuarantinesNonFinite(t *testing.T) {
	vals := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), 2}
	i := 0
	s := NewSafe(func([]float64) float64 { v := vals[i]; i++; return v }, nil)
	got := make([]float64, len(vals))
	for j := range vals {
		got[j] = s.Eval(nil)
	}
	want := []float64{1, DefaultPenalty, DefaultPenalty, DefaultPenalty, 2}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("eval %d = %g, want %g", j, got[j], want[j])
		}
	}
	if s.NonFinite() != 3 || s.Panics() != 0 {
		t.Fatalf("counts: nonfinite=%d panics=%d", s.NonFinite(), s.Panics())
	}
}

func TestSafeRecoversPanics(t *testing.T) {
	n := 0
	s := NewSafe(func([]float64) float64 {
		n++
		if n%2 == 1 {
			panic("boom")
		}
		return 7
	}, &SafeOptions{Penalty: 1e6})
	if v := s.Eval(nil); v != 1e6 {
		t.Fatalf("panicked eval = %g, want penalty", v)
	}
	if v := s.Eval(nil); v != 7 {
		t.Fatalf("healthy eval = %g, want 7", v)
	}
	if s.Panics() != 1 {
		t.Fatalf("panics = %d", s.Panics())
	}
}

func TestSafeBreakerTripsController(t *testing.T) {
	ctrl := NewController(ControllerOptions{})
	var faults, trips int
	o := obs.Func(func(e obs.Event) {
		switch e.Kind {
		case obs.KindFault:
			faults++
		case obs.KindBreaker:
			trips++
		}
	})
	s := NewSafe(func([]float64) float64 { return math.NaN() },
		&SafeOptions{BreakerK: 3, Control: ctrl, Observer: o})
	for i := 0; i < 5; i++ {
		s.Eval(nil)
	}
	if !ctrl.BreakerTripped() {
		t.Fatal("breaker did not trip the controller")
	}
	assertStop(t, ctrl.Check(), StopBreaker)
	if faults != 5 {
		t.Fatalf("fault events = %d, want 5", faults)
	}
	if trips != 1 || s.BreakerTrips() != 1 {
		t.Fatalf("breaker events = %d, trips = %d, want 1 each", trips, s.BreakerTrips())
	}
}

func TestSafeGoodEvalResetsStreak(t *testing.T) {
	ctrl := NewController(ControllerOptions{})
	n := 0
	s := NewSafe(func([]float64) float64 {
		n++
		if n%3 == 0 {
			return 1 // every third eval is healthy: streak never reaches 3
		}
		return math.NaN()
	}, &SafeOptions{BreakerK: 3, Control: ctrl})
	for i := 0; i < 30; i++ {
		s.Eval(nil)
	}
	if ctrl.BreakerTripped() {
		t.Fatal("breaker tripped despite interleaved healthy evals")
	}
}

func TestSafeVector(t *testing.T) {
	n := 0
	sv := NewSafeVector(func([]float64) []float64 {
		n++
		switch n {
		case 1:
			return []float64{1, 2, 3}
		case 2:
			return []float64{1, math.NaN(), 3}
		default:
			panic("boom")
		}
	}, 3, nil)
	if got := sv.Eval(nil); got[1] != 2 {
		t.Fatalf("healthy vector = %v", got)
	}
	for i := 0; i < 2; i++ {
		got := sv.Eval(nil)
		if len(got) != 3 {
			t.Fatalf("penalty vector length = %d", len(got))
		}
		for _, c := range got {
			if c != DefaultPenalty {
				t.Fatalf("penalty vector = %v", got)
			}
		}
	}
	if sv.NonFinite() != 1 || sv.Panics() != 1 {
		t.Fatalf("counts: nonfinite=%d panics=%d", sv.NonFinite(), sv.Panics())
	}
}

func TestCountedSourceMatchesStdStream(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	cs := NewCountedSource(42)
	got := rand.New(cs)
	for i := 0; i < 1000; i++ {
		if a, b := ref.Float64(), got.Float64(); a != b {
			t.Fatalf("draw %d: counted %v != std %v", i, b, a)
		}
	}
}

func TestCountedSourceFastForward(t *testing.T) {
	// Run a mixed-draw sequence, snapshot mid-way, then prove a fresh source
	// fast-forwarded to the snapshot position continues bit-identically.
	full := rand.New(NewCountedSource(7))
	var tail []float64
	var pos uint64
	src := NewCountedSource(7)
	r := rand.New(src)
	for i := 0; i < 100; i++ {
		switch i % 3 {
		case 0:
			r.Float64()
			full.Float64()
		case 1:
			r.Intn(10)
			full.Intn(10)
		default:
			r.NormFloat64()
			full.NormFloat64()
		}
	}
	pos = src.Draws()
	for i := 0; i < 50; i++ {
		tail = append(tail, full.Float64())
	}
	_ = r

	src2 := NewCountedSource(7)
	src2.FastForward(pos)
	if src2.Draws() != pos {
		t.Fatalf("fast-forward position = %d, want %d", src2.Draws(), pos)
	}
	r2 := rand.New(src2)
	for i, want := range tail {
		if got := r2.Float64(); got != want {
			t.Fatalf("resumed draw %d = %v, want %v", i, got, want)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	type state struct {
		Gen  int       `json:"gen"`
		Best float64   `json:"best"`
		X    []float64 `json:"x"`
	}
	// Earlier record is superseded by the later one for the same key.
	if err := SaveCheckpoint(path, "de", 42, true, state{Gen: 3, Best: 1.5, X: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	want := state{Gen: 9, Best: 0.25, X: []float64{0.1, math.Nextafter(0.2, 1)}}
	if err := SaveCheckpoint(path, "de", 42, true, want); err != nil {
		t.Fatal(err)
	}
	// Different stage / seed / quick records must not match.
	if err := SaveCheckpoint(path, "pso", 42, true, state{Gen: 99}); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, "de", 43, true, state{Gen: 98}); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, "de", 42, false, state{Gen: 97}); err != nil {
		t.Fatal(err)
	}

	var got state
	ok, err := RestoreCheckpoint(path, "de", 42, true, &got)
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if got.Gen != want.Gen || got.Best != want.Best ||
		len(got.X) != 2 || got.X[0] != want.X[0] || got.X[1] != want.X[1] {
		t.Fatalf("restored %+v, want %+v", got, want)
	}

	ok, err = RestoreCheckpoint(path, "nm", 42, true, &got)
	if err != nil || ok {
		t.Fatalf("missing stage: ok=%v err=%v", ok, err)
	}
}

func TestRestoreCheckpointMissingFile(t *testing.T) {
	var v struct{}
	ok, err := RestoreCheckpoint(filepath.Join(t.TempDir(), "absent.jsonl"), "x", 1, false, &v)
	if err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
}

func TestCheckpointFloatBitExact(t *testing.T) {
	// JSON must round-trip arbitrary float64 values bit-for-bit — the basis
	// of bit-identical resume.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	vals := []float64{math.Pi, 1.0 / 3.0, math.SmallestNonzeroFloat64, -math.MaxFloat64, 6.02214076e23}
	if err := SaveCheckpoint(path, "f", 1, false, vals); err != nil {
		t.Fatal(err)
	}
	var got []float64
	if ok, err := RestoreCheckpoint(path, "f", 1, false, &got); err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

func TestJitterSeedDeterministicAndDistinct(t *testing.T) {
	if JitterSeed(42, 0) != 42 {
		t.Fatal("attempt 0 must use the base seed")
	}
	seen := map[int64]bool{}
	for k := 0; k < 100; k++ {
		s := JitterSeed(42, k)
		if s < 0 {
			t.Fatalf("negative jittered seed %d", s)
		}
		if seen[s] {
			t.Fatalf("seed collision at attempt %d", k)
		}
		seen[s] = true
		if s != JitterSeed(42, k) {
			t.Fatal("JitterSeed is not deterministic")
		}
	}
}

func TestRestartPolicyRecoversFromBreaker(t *testing.T) {
	ctrl := NewController(ControllerOptions{})
	var restarts int
	o := obs.Func(func(e obs.Event) {
		if e.Kind == obs.KindRestart {
			restarts++
		}
	})
	calls := 0
	var seeds []int64
	p := RestartPolicy{Seed: 42, MaxRestarts: 3, Control: ctrl, Observer: o}
	attempt, best, err := p.Run(func(seed int64) (float64, error) {
		seeds = append(seeds, seed)
		calls++
		if calls <= 2 {
			ctrl.TripBreaker()
			return float64(100 - calls), &Stopped{Reason: StopBreaker}
		}
		return 1.0, nil
	})
	if err != nil {
		t.Fatalf("final attempt errored: %v", err)
	}
	if calls != 3 || restarts != 2 {
		t.Fatalf("calls=%d restarts=%d, want 3 and 2", calls, restarts)
	}
	if attempt != 2 || best != 1.0 {
		t.Fatalf("best attempt=%d best=%g, want 2 and 1.0", attempt, best)
	}
	if seeds[0] != 42 || seeds[1] == 42 || seeds[2] == seeds[1] {
		t.Fatalf("seeds not jittered: %v", seeds)
	}
	if ctrl.BreakerTripped() {
		t.Fatal("breaker left tripped after successful attempt")
	}
}

func TestRestartPolicyAbortsOnExternalStop(t *testing.T) {
	calls := 0
	p := RestartPolicy{Seed: 1, MaxRestarts: 5}
	_, best, err := p.Run(func(int64) (float64, error) {
		calls++
		return 3.5, &Stopped{Reason: StopDeadline}
	})
	if calls != 1 {
		t.Fatalf("restarted %d times on deadline stop", calls-1)
	}
	assertStop(t, err, StopDeadline)
	if best != 3.5 {
		t.Fatalf("best = %g, want best-so-far 3.5", best)
	}
}

func TestRestartPolicyExhaustsBudget(t *testing.T) {
	ctrl := NewController(ControllerOptions{})
	calls := 0
	p := RestartPolicy{Seed: 1, MaxRestarts: 2, Control: ctrl}
	_, best, err := p.Run(func(int64) (float64, error) {
		calls++
		ctrl.TripBreaker()
		return float64(calls), &Stopped{Reason: StopBreaker}
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (1 + 2 restarts)", calls)
	}
	assertStop(t, err, StopBreaker)
	if best != 1 {
		t.Fatalf("best = %g, want 1 (lowest across attempts)", best)
	}
}
