package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Backoff computes retry delays: exponential growth from Base capped at Max,
// scaled by a deterministic jitter derived from (Seed, attempt) with the
// same splitmix mix JitterSeed uses. Determinism matters here for the same
// reason it does everywhere else in this repository: a retry schedule that
// can be replayed exactly is one the chaos tests can assert on.
type Backoff struct {
	// Base is the first delay (attempt 1). Zero defaults to 100ms.
	Base time.Duration
	// Max caps the grown delay before jitter. Zero defaults to 30s.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. Values below 1 default
	// to 2.
	Factor float64
	// Seed drives the deterministic jitter stream; the same (Seed, attempt)
	// always yields the same delay.
	Seed int64
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 100 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 30 * time.Second
	}
	return b.Max
}

func (b Backoff) factor() float64 {
	if b.Factor < 1 {
		return 2
	}
	return b.Factor
}

// Delay returns the wait before retry `attempt` (1-based: Delay(1) follows
// the first failure). The grown delay is scaled into [0.5, 1.0) by the
// jitter so concurrent retriers with different seeds decorrelate while each
// individual schedule stays replayable. Attempts below 1 are treated as 1.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.base())
	f := b.factor()
	max := float64(b.max())
	for i := 1; i < attempt; i++ {
		d *= f
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	// JitterSeed(seed, k) is a full-period splitmix mix; the top bits give a
	// uniform fraction in [0, 1), mapped to a [0.5, 1.0) scale.
	u := uint64(JitterSeed(b.Seed, attempt))
	frac := float64(u%(1<<20)) / float64(1<<20)
	return time.Duration(d * (0.5 + 0.5*frac))
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so IsTransient reports it retryable. A nil err returns
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// retryable with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// RetryPolicy retries an operation on transient failure with Backoff delays.
// The zero value performs a single attempt with no retries.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts (minimum 1; zero means 1).
	MaxAttempts int
	// Backoff schedules the inter-attempt delays.
	Backoff Backoff
	// Classify reports whether an error is worth retrying. Nil defaults to
	// IsTransient. A *Stopped error is never retried regardless: stops are
	// the caller's budget speaking, not the operation failing.
	Classify func(error) bool
	// Sleep overrides the inter-attempt wait (tests). Nil uses a
	// context-aware timer sleep.
	Sleep func(ctx context.Context, d time.Duration)
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) retryable(err error) bool {
	if _, stopped := AsStopped(err); stopped {
		return false
	}
	if p.Classify != nil {
		return p.Classify(err)
	}
	return IsTransient(err)
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Do runs f until it succeeds, exhausts the attempt budget, fails
// permanently, or ctx is canceled. f receives the 1-based attempt ordinal.
// The returned error is the last attempt's, annotated with the attempt
// count when retries were consumed.
func (p RetryPolicy) Do(ctx context.Context, f func(attempt int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	max := p.attempts()
	for attempt := 1; ; attempt++ {
		err = f(attempt)
		if err == nil {
			return nil
		}
		if attempt >= max || !p.retryable(err) {
			if attempt > 1 {
				return fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return err
		}
		p.sleep(ctx, p.Backoff.Delay(attempt))
		if ctx.Err() != nil {
			return fmt.Errorf("after %d attempts: %w", attempt, err)
		}
	}
}
