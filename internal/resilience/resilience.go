// Package resilience hardens the long-running optimization and extraction
// pipelines against interruption and bad inputs. It provides the
// RunController — a cooperative stop token carrying context cancellation, a
// wall-clock deadline and a hard evaluation budget that every solver polls
// once per generation — the typed Stopped error that lets a halted run hand
// back its best-so-far result instead of losing it, panic/non-finite
// quarantine with a consecutive-failure circuit breaker (SafeObjective),
// JSONL stage checkpoints with deterministic bit-identical resume, and a
// jittered multi-start restart policy for stalled or breaker-tripped runs.
//
// Everything is nil-safe by design: a nil *RunController never stops and
// costs one branch per poll, so the solvers poll unconditionally.
package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// StopReason names why a controller halted a run.
type StopReason uint8

// Stop reasons, in the priority order Check reports them.
const (
	// StopBreaker: the circuit breaker tripped after too many consecutive
	// quarantined evaluations.
	StopBreaker StopReason = iota + 1
	// StopCanceled: the run's context was canceled.
	StopCanceled
	// StopDeadline: the wall-clock deadline passed.
	StopDeadline
	// StopBudget: the hard evaluation budget is exhausted.
	StopBudget
)

// String names the reason as it appears in errors and CLI output.
func (r StopReason) String() string {
	switch r {
	case StopBreaker:
		return "breaker"
	case StopCanceled:
		return "canceled"
	case StopDeadline:
		return "deadline"
	case StopBudget:
		return "eval-budget"
	}
	return "unknown"
}

// Stopped reports an early, controlled halt. Solvers return it alongside
// their best-so-far Result, so a Stopped error means the work up to the stop
// is valid — callers decide whether a partial result is usable.
type Stopped struct {
	// Reason names what halted the run.
	Reason StopReason
}

// Error implements error.
func (s *Stopped) Error() string { return "resilience: run stopped: " + s.Reason.String() }

// AsStopped unwraps err to a *Stopped, if one is in the chain.
func AsStopped(err error) (*Stopped, bool) {
	var s *Stopped
	if errors.As(err, &s) {
		return s, true
	}
	return nil, false
}

// RunController is the cooperative stop token shared by every stage of a
// run: context cancellation, wall-clock deadline, hard evaluation budget and
// the circuit breaker all funnel into Check. Solvers account evaluations
// with AddEvals and poll Check once per generation (so a budget or deadline
// can overshoot by at most one generation of evaluations). All methods are
// safe on a nil receiver and for concurrent use.
type RunController struct {
	ctx      context.Context
	deadline time.Time
	maxEvals int64
	now      func() time.Time
	evals    atomic.Int64
	tripped  atomic.Bool
}

// ControllerOptions configures NewController.
type ControllerOptions struct {
	// Context cancels the run when done (nil: never).
	Context context.Context
	// Deadline is the wall-clock stop time (zero: none).
	Deadline time.Time
	// MaxEvals is the hard evaluation budget (0: unlimited).
	MaxEvals int64
	// Clock overrides time.Now for deadline checks (tests).
	Clock func() time.Time
}

// NewController builds a controller; a zero ControllerOptions yields one
// that never stops (except through TripBreaker).
func NewController(o ControllerOptions) *RunController {
	c := &RunController{
		ctx:      o.Context,
		deadline: o.Deadline,
		maxEvals: o.MaxEvals,
		now:      o.Clock,
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// AddEvals accounts n objective evaluations against the budget.
func (c *RunController) AddEvals(n int) {
	if c == nil {
		return
	}
	c.evals.Add(int64(n))
}

// Evals returns the evaluations accounted so far.
func (c *RunController) Evals() int64 {
	if c == nil {
		return 0
	}
	return c.evals.Load()
}

// TripBreaker forces every later Check to report StopBreaker (until
// ResetBreaker). SafeObjective trips it after K consecutive bad evals.
func (c *RunController) TripBreaker() {
	if c == nil {
		return
	}
	c.tripped.Store(true)
}

// BreakerTripped reports whether the breaker is currently tripped.
func (c *RunController) BreakerTripped() bool {
	return c != nil && c.tripped.Load()
}

// ResetBreaker re-arms a tripped breaker, as the multi-start restart policy
// does between attempts.
func (c *RunController) ResetBreaker() {
	if c == nil {
		return
	}
	c.tripped.Store(false)
}

// HealthState is a point-in-time report of a controller for health
// endpoints: whether the run may still continue, the stop reason when it
// may not, and the evaluations accounted so far.
type HealthState struct {
	// OK is true while the run may continue.
	OK bool `json:"ok"`
	// Reason names the stop condition when OK is false ("" otherwise).
	Reason string `json:"reason,omitempty"`
	// Evals is the number of objective evaluations accounted so far.
	Evals int64 `json:"evals"`
}

// Health summarizes the controller for the telemetry /healthz endpoint. It
// is safe on a nil receiver, which reports a healthy, unbounded run.
func (c *RunController) Health() HealthState {
	h := HealthState{OK: true, Evals: c.Evals()}
	if err := c.Check(); err != nil {
		h.OK = false
		if st, ok := AsStopped(err); ok {
			h.Reason = st.Reason.String()
		}
	}
	return h
}

// Check returns nil while the run may continue, or a *Stopped naming the
// first matching stop condition. It never allocates on the happy path.
func (c *RunController) Check() error {
	if c == nil {
		return nil
	}
	if c.tripped.Load() {
		return &Stopped{Reason: StopBreaker}
	}
	if c.ctx != nil {
		select {
		case <-c.ctx.Done():
			return &Stopped{Reason: StopCanceled}
		default:
		}
	}
	if !c.deadline.IsZero() && !c.now().Before(c.deadline) {
		return &Stopped{Reason: StopDeadline}
	}
	if c.maxEvals > 0 && c.evals.Load() >= c.maxEvals {
		return &Stopped{Reason: StopBudget}
	}
	return nil
}
