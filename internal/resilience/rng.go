package resilience

import "math/rand"

// CountedSource wraps the standard math/rand source with a draw counter so
// a checkpoint can record the exact RNG stream position and a resume can
// fast-forward to it. Delegation preserves the stream bit-for-bit: a solver
// built on rand.New(NewCountedSource(seed)) produces exactly the values of
// rand.New(rand.NewSource(seed)).
//
// Every Int63 or Uint64 call advances the underlying generator by exactly
// one step, so FastForward can replay any mix of draws with Int63 alone.
type CountedSource struct {
	src rand.Source64
	n   uint64
}

// NewCountedSource seeds a counted source (seed 0 is used as-is, matching
// rand.NewSource).
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *CountedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountedSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *CountedSource) Seed(seed int64) {
	s.n = 0
	s.src.Seed(seed)
}

// Draws returns the stream position: the number of draws made so far.
func (s *CountedSource) Draws() uint64 { return s.n }

// FastForward advances the stream to position n (a no-op when already at or
// past it).
func (s *CountedSource) FastForward(n uint64) {
	for s.n < n {
		s.Int63()
	}
}
