package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type stageState struct {
	X int     `json:"x"`
	Y float64 `json:"y"`
}

// TestSaveCheckpointAtomicKilledMidWrite simulates a writer killed halfway
// through a save: the temp file the atomic writer uses is left holding a
// torn, unparseable prefix. The existing good checkpoint must stay fully
// readable, and a subsequent save must overwrite the debris and succeed.
func TestSaveCheckpointAtomicKilledMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stages.jsonl")

	want := stageState{X: 7, Y: 3.25}
	if err := SaveCheckpoint(path, "extraction", 1, true, want); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	// Kill a second save halfway: the atomic writer stages into path+".tmp"
	// and renames only after a complete, synced write, so a crash mid-write
	// leaves exactly this — a partial temp file and the untouched original.
	if err := os.WriteFile(path+".tmp", []byte(`{"stage":"design","seed":1,"st`), 0o644); err != nil {
		t.Fatalf("plant torn temp: %v", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint after simulated crash: %v", err)
	}
	if string(after) != string(good) {
		t.Fatalf("checkpoint corrupted by torn write:\n got %q\nwant %q", after, good)
	}
	var got stageState
	ok, err := RestoreCheckpoint(path, "extraction", 1, true, &got)
	if err != nil || !ok {
		t.Fatalf("RestoreCheckpoint after crash: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("restored state = %+v, want %+v", got, want)
	}

	// The next save must clobber the debris and leave both records intact.
	if err := SaveCheckpoint(path, "design", 1, true, stageState{X: 9}); err != nil {
		t.Fatalf("SaveCheckpoint over debris: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived a successful save: %v", err)
	}
	recs, err := LoadCheckpoints(path)
	if err != nil {
		t.Fatalf("LoadCheckpoints: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

// TestSaveCheckpointCrashBeforeRename covers the other crash window: a
// complete temp file written but the rename never executed. The original
// checkpoint must win, and restore must not see the unrenamed record.
func TestSaveCheckpointCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stages.jsonl")
	if err := SaveCheckpoint(path, "extraction", 1, false, stageState{X: 1}); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	// A fully written temp that never renamed: readers must ignore it.
	if err := os.WriteFile(path+".tmp",
		[]byte(`{"stage":"design","seed":1,"state":{"x":5,"y":0}}`+"\n"), 0o644); err != nil {
		t.Fatalf("plant complete temp: %v", err)
	}
	var got stageState
	ok, err := RestoreCheckpoint(path, "design", 1, false, &got)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	if ok {
		t.Fatalf("restored a stage that was never durably committed: %+v", got)
	}
}

// TestSaveCheckpointHealsTornTail proves that a torn tail left by a
// pre-atomic append (no trailing newline, partial JSON) does not corrupt
// records appended after it: the new record lands on its own line.
func TestSaveCheckpointHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stages.jsonl")
	if err := os.WriteFile(path, []byte(`{"stage":"extraction","seed":1,"st`), 0o644); err != nil {
		t.Fatalf("plant torn tail: %v", err)
	}
	if err := SaveCheckpoint(path, "design", 1, false, stageState{X: 3}); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want torn line + new record:\n%s", len(lines), data)
	}
	var got stageState
	ok, err := RestoreCheckpoint(path, "design", 1, false, &got)
	// LoadCheckpoints stops at the torn first line, so the design record is
	// unreachable — but crucially the save itself did not fuse the two into
	// one garbage line. Both outcomes of the degradation contract hold.
	if ok && got.X != 3 {
		t.Fatalf("restored wrong state: %+v", got)
	}
	_ = err
}
