package resilience

import "testing"

func TestHealthNilController(t *testing.T) {
	var c *RunController
	h := c.Health()
	if !h.OK || h.Reason != "" || h.Evals != 0 {
		t.Fatalf("nil controller health = %+v, want healthy zero state", h)
	}
}

func TestHealthReportsStopReasonAndEvals(t *testing.T) {
	c := NewController(ControllerOptions{MaxEvals: 10})
	c.AddEvals(4)
	if h := c.Health(); !h.OK || h.Evals != 4 {
		t.Fatalf("health under budget = %+v, want OK with 4 evals", h)
	}
	c.AddEvals(6)
	h := c.Health()
	if h.OK || h.Reason != "eval-budget" || h.Evals != 10 {
		t.Fatalf("health at budget = %+v, want stopped eval-budget with 10 evals", h)
	}

	c2 := NewController(ControllerOptions{})
	c2.TripBreaker()
	if h := c2.Health(); h.OK || h.Reason != "breaker" {
		t.Fatalf("tripped health = %+v, want stopped breaker", h)
	}
	c2.ResetBreaker()
	if h := c2.Health(); !h.OK {
		t.Fatalf("re-armed health = %+v, want OK", h)
	}
}
