package resilience

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// CheckpointRecord is one line of a JSONL checkpoint file, mirroring the
// obs run-journal convention: one self-describing JSON object per line,
// flushed per append, so the file is valid up to its last record even after
// a crash. Records append; on load, the latest record per stage (matching
// seed and quick mode) wins, so re-running a pipeline safely supersedes
// stale stages.
type CheckpointRecord struct {
	// Stage names the checkpointed pipeline stage, e.g. "extraction".
	Stage string `json:"stage"`
	// Seed and Quick fingerprint the run configuration; a resume only
	// accepts records from an identically configured run, which is what
	// makes resumed results bit-identical.
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick,omitempty"`
	// State is the stage-specific payload.
	State json.RawMessage `json:"state"`
}

// SaveCheckpoint appends one stage record to the JSONL checkpoint at path,
// creating the file when missing. The write is atomic: the existing records
// plus the new one are written to a temp file in the same directory, synced,
// and renamed over path, so a crash at any instant leaves either the old
// complete checkpoint or the new complete checkpoint — never a torn file.
// An abandoned temp file from a killed write is ignored by readers (they
// only open path) and overwritten by the next save.
func SaveCheckpoint(path, stage string, seed int64, quick bool, state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	line, err := json.Marshal(CheckpointRecord{Stage: stage, Seed: seed, Quick: quick, State: raw})
	if err != nil {
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	prev, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	if len(prev) > 0 && prev[len(prev)-1] != '\n' {
		// A pre-atomic writer could have left a torn tail; terminating it
		// keeps the appended record on its own line (readers degrade on the
		// torn line itself).
		prev = append(prev, '\n')
	}
	buf := append(prev, line...)
	buf = append(buf, '\n')

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: checkpoint %s: %w", stage, err)
	}
	return nil
}

// LoadCheckpoints parses every record of the checkpoint file at path. A
// missing file yields no records and no error.
func LoadCheckpoints(path string) ([]CheckpointRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: read checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []CheckpointRecord
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec CheckpointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return out, fmt.Errorf("resilience: checkpoint line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("resilience: read checkpoint: %w", err)
	}
	return out, nil
}

// RestoreCheckpoint unmarshals the latest record of the given stage whose
// seed and quick mode match into `into`, reporting whether one was found.
func RestoreCheckpoint(path, stage string, seed int64, quick bool, into any) (bool, error) {
	recs, err := LoadCheckpoints(path)
	if err != nil {
		return false, err
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Stage != stage || r.Seed != seed || r.Quick != quick {
			continue
		}
		if err := json.Unmarshal(r.State, into); err != nil {
			return false, fmt.Errorf("resilience: restore %s: %w", stage, err)
		}
		return true, nil
	}
	return false, nil
}
