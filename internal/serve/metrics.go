package serve

import (
	"gnsslna/internal/core"
	"gnsslna/internal/obs"
)

// Metrics lands the fleet's health in the shared obs registry, where the
// export server renders it as the per-tenant gnsslna_jobs_* Prometheus
// families: counters "jobs.<outcome>.<tenant>", the queue gauges
// "jobs.queue.depth"/"jobs.running"/"jobs.queue.oldest_age_ms"/
// "jobs.deadletter", and the latency and queue-wait histograms (per tenant
// plus the all-tenant aggregate). A nil *Metrics is a no-op, so the queue
// and fleet never branch on observability being configured.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics wraps a registry (nil registry yields a no-op Metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{reg: reg}
}

// inc bumps the per-tenant outcome counter plus the all-tenant total.
func (m *Metrics) inc(name, tenant string) {
	if m == nil {
		return
	}
	m.reg.Counter(name + "." + tenant).Inc()
	m.reg.Counter(name).Inc()
}

// observeQueue refreshes the queue-shape gauges: depth, running, the age of
// the oldest queued job (backlog growth is visible here before shedding
// fires) and the dead-letter count (st may be nil).
func (m *Metrics) observeQueue(q *Queue, st *Store) {
	if m == nil || q == nil {
		return
	}
	m.reg.Gauge("jobs.queue.depth").Set(float64(q.Depth()))
	m.reg.Gauge("jobs.running").Set(float64(q.RunningCount()))
	age := float64(0)
	if oldest := q.OldestQueuedMS(); oldest > 0 {
		if a := float64(nowMS(q.opts.Now) - oldest); a > 0 {
			age = a
		}
	}
	m.reg.Gauge("jobs.queue.oldest_age_ms").Set(age)
	if st != nil {
		m.reg.Gauge("jobs.deadletter").Set(float64(st.DeadLetterCount()))
	}
	m.observeEvalMemo()
}

// observeEvalMemo lands the shared evaluation-memo counters on the metrics
// plane: worker attempts for repeated specs resolve as cache hits, and
// these gauges are how that shows up in gnsslna_jobs_* scrapes
// ("evalmemo.hits"/"evalmemo.misses"/"evalmemo.evictions"/"evalmemo.size").
func (m *Metrics) observeEvalMemo() {
	if m == nil {
		return
	}
	st := core.DefaultEvalMemo().Stats()
	m.reg.Gauge("evalmemo.hits").Set(float64(st.Hits))
	m.reg.Gauge("evalmemo.misses").Set(float64(st.Misses))
	m.reg.Gauge("evalmemo.evictions").Set(float64(st.Evictions))
	m.reg.Gauge("evalmemo.size").Set(float64(st.Size))
}

// observeLatency records one job's end-to-end latency (submit to terminal,
// milliseconds) in the tenant histogram and the all-tenant aggregate — the
// quantity the per-tenant p99 SLO is defined over.
func (m *Metrics) observeLatency(tenant string, ms float64) {
	if m == nil {
		return
	}
	m.reg.Histogram("jobs.latency_ms." + tenant).Observe(ms)
	m.reg.Histogram("jobs.latency_ms").Observe(ms)
}

// observeQueueWait records how long a job waited before a worker claimed it,
// per tenant plus the all-tenant aggregate (mirroring the inc pattern, so
// fleet-wide percentiles never require summing buckets client-side).
func (m *Metrics) observeQueueWait(tenant string, ms float64) {
	if m == nil {
		return
	}
	m.reg.Histogram("jobs.queue_wait_ms." + tenant).Observe(ms)
	m.reg.Histogram("jobs.queue_wait_ms").Observe(ms)
}
