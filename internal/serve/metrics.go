package serve

import "gnsslna/internal/obs"

// Metrics lands the fleet's health in the shared obs registry, where the
// export server renders it as the per-tenant gnsslna_jobs_* Prometheus
// families: counters "jobs.<outcome>.<tenant>", the queue gauges
// "jobs.queue.depth"/"jobs.running", and the per-tenant latency and
// queue-wait histograms. A nil *Metrics is a no-op, so the queue and fleet
// never branch on observability being configured.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics wraps a registry (nil registry yields a no-op Metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{reg: reg}
}

// inc bumps the per-tenant outcome counter plus the all-tenant total.
func (m *Metrics) inc(name, tenant string) {
	if m == nil {
		return
	}
	m.reg.Counter(name + "." + tenant).Inc()
	m.reg.Counter(name).Inc()
}

// setGauges refreshes the queue-shape gauges.
func (m *Metrics) setGauges(q *Queue) {
	if m == nil || q == nil {
		return
	}
	m.reg.Gauge("jobs.queue.depth").Set(float64(q.Depth()))
	m.reg.Gauge("jobs.running").Set(float64(q.RunningCount()))
}

// observeLatency records one job's wall time (milliseconds) for the tenant.
func (m *Metrics) observeLatency(tenant string, ms float64) {
	if m == nil {
		return
	}
	m.reg.Histogram("jobs.latency_ms." + tenant).Observe(ms)
}

// observeQueueWait records how long a job waited before a worker claimed it.
func (m *Metrics) observeQueueWait(tenant string, ms float64) {
	if m == nil {
		return
	}
	m.reg.Histogram("jobs.queue_wait_ms." + tenant).Observe(ms)
}
