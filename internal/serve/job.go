// Package serve is the design-as-a-service layer: a durable, crash-safe job
// queue with per-tenant admission control, a retrying worker fleet, a
// filesystem artifact store and an HTTP/JSON API, assembled into the
// lnaservd server. Jobs — full design runs, model extractions, Monte-Carlo
// yield sweeps — enter through a JSONL write-ahead journal, so a SIGKILL at
// any instant loses no acknowledged work: queued jobs are recovered as
// queued, running jobs are re-queued and resume from their resilience
// checkpoints bit-identically, and terminal jobs stay terminal (the dedupe
// key guarantees an acknowledged job never runs twice to completion).
//
// The shape — queue → admission → worker fleet → artifact store, observed
// through the existing export server — follows the studio-go-runner
// lineage: the queue is the unit of durability, the runner is stateless and
// restartable, and everything the operator needs to trust the fleet
// (depth, retries, quarantines, per-tenant rates) is a gnsslna_jobs_*
// metric family.
package serve

import (
	"encoding/json"
	"fmt"
	"time"
)

// JobType names what a job runs.
type JobType string

// The job types the standard runner understands.
const (
	// TypeDesign runs the complete paper design flow (extraction +
	// goal-attainment design) and returns the design report.
	TypeDesign JobType = "design"
	// TypeExtract runs the synthetic measurement campaign and three-step
	// extraction of the named model class.
	TypeExtract JobType = "extract"
	// TypeSweep runs a Monte-Carlo component-tolerance yield sweep over the
	// designed amplifier.
	TypeSweep JobType = "sweep"
)

// JobState is a job's lifecycle position. Terminal states never transition
// again.
type JobState string

// Job lifecycle states.
const (
	// StateQueued: accepted, journaled, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: claimed by a worker.
	StateRunning JobState = "running"
	// StateSucceeded: terminal; the result artifact is readable.
	StateSucceeded JobState = "succeeded"
	// StateFailed: terminal; the retry budget was exhausted or the failure
	// was permanent.
	StateFailed JobState = "failed"
	// StateQuarantined: terminal; the job poisoned its workers (panics,
	// persistent faults) and was moved to the dead-letter directory with
	// its journals.
	StateQuarantined JobState = "quarantined"
	// StateCanceled: terminal; canceled by the client before completion.
	StateCanceled JobState = "canceled"
	// StateShed: terminal; evicted from a full queue to admit
	// higher-priority work.
	StateShed JobState = "shed"
)

// Terminal reports whether s is a final state.
func (s JobState) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateQuarantined, StateCanceled, StateShed:
		return true
	}
	return false
}

// JobSpec is the client-provided description of one job.
type JobSpec struct {
	// Type selects the workload (design, extract, sweep).
	Type JobType `json:"type"`
	// Tenant names the submitting tenant for admission control and
	// metrics. Empty maps to "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue (higher runs first; load shedding evicts
	// the lowest first). Zero is the normal priority.
	Priority int `json:"priority,omitempty"`
	// Seed drives the run deterministically (0 means 1, matching the
	// facade).
	Seed int64 `json:"seed,omitempty"`
	// Quick trims optimization budgets.
	Quick bool `json:"quick,omitempty"`
	// MaxEvals bounds the job's objective evaluations; admission clamps it
	// to the tenant's per-job budget (0: the tenant budget applies as-is).
	MaxEvals int64 `json:"max_evals,omitempty"`
	// TimeoutMS bounds the job's wall-clock run time in milliseconds
	// (0: the server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Model names the DC model class for extract jobs (default "Angelov").
	Model string `json:"model,omitempty"`
	// Trials is the Monte-Carlo trial count for sweep jobs (default 200).
	Trials int `json:"trials,omitempty"`
	// DedupeKey, when set, makes submission idempotent: a resubmission with
	// the same key returns the existing job instead of enqueuing a second
	// run, and recovery never re-runs a key that already reached a terminal
	// state.
	DedupeKey string `json:"dedupe_key,omitempty"`
}

// tenant returns the effective tenant name.
func (s JobSpec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// Validate rejects specs the runner could never execute.
func (s JobSpec) Validate() error {
	switch s.Type {
	case TypeDesign, TypeExtract, TypeSweep:
	default:
		return fmt.Errorf("serve: unknown job type %q (want design, extract or sweep)", s.Type)
	}
	if s.MaxEvals < 0 || s.TimeoutMS < 0 || s.Trials < 0 {
		return fmt.Errorf("serve: negative budget in job spec")
	}
	return nil
}

// Job is one unit of queued work plus its full lifecycle so far. The queue
// owns the canonical copy; API handlers and workers operate on snapshots.
type Job struct {
	// ID is the queue-assigned identifier ("j" + submit sequence).
	ID string `json:"id"`
	// Spec is the admitted spec (post admission clamping).
	Spec JobSpec `json:"spec"`
	// State is the lifecycle position.
	State JobState `json:"state"`
	// Attempt counts executions started (1 on the first run; a retry or a
	// crash-recovery resume increments it).
	Attempt int `json:"attempt,omitempty"`
	// Error holds the last failure message for failed/quarantined jobs.
	Error string `json:"error,omitempty"`
	// Result is the terminal result document for succeeded jobs.
	Result json.RawMessage `json:"result,omitempty"`
	// Seq is the submit sequence number, the FIFO order within a priority.
	Seq uint64 `json:"seq"`
	// Trace is the durable causal-trace identity assigned at submission and
	// persisted with the job, so the trace survives restarts: every process
	// that touches the job (submit handler, each worker attempt, even after
	// a SIGKILL) emits its spans under the same trace ID. Zero for jobs
	// journaled before the trace model.
	Trace uint64 `json:"trace,omitempty"`
	// SubmittedMS/StartedMS/DoneMS are unix-milli lifecycle timestamps.
	SubmittedMS int64 `json:"submitted_ms,omitempty"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	DoneMS      int64 `json:"done_ms,omitempty"`
	// QueuedMS is when the job last (re)entered the pending queue — the
	// submission for a fresh job, the requeue for a resumed one — the anchor
	// the queue-wait measurement and the oldest-age gauge use.
	QueuedMS int64 `json:"queued_ms,omitempty"`
	// Resumed marks a run that was recovered from the journal after a
	// crash and re-queued to resume from its checkpoints.
	Resumed bool `json:"resumed,omitempty"`
}

// clone returns a deep-enough copy for handing outside the queue lock
// (Result is never mutated in place, so sharing the backing array is safe).
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// nowMS is the job-lifecycle clock, injectable for tests.
func nowMS(now func() time.Time) int64 {
	if now == nil {
		now = time.Now
	}
	return now().UnixMilli()
}
