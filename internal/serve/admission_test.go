package serve

import (
	"testing"
	"time"
)

// fakeClock is a manually stepped clock for admission tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time           { return c.t }
func (c *fakeClock) advance(d time.Duration)  { c.t = c.t.Add(d) }
func (c *fakeClock) stepBack(d time.Duration) { c.t = c.t.Add(-d) }
func newFakeClock() *fakeClock                { return &fakeClock{t: time.UnixMilli(1_700_000_000_000)} }

func TestAdmissionRateLimitAndRefill(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(map[string]TenantPolicy{
		"a": {RatePerSec: 1, Burst: 2},
	}, TenantPolicy{}, nil, clk.now)

	spec := quickSpec("a")
	for i := 0; i < 2; i++ {
		if err := a.Admit(&spec); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := a.Admit(&spec)
	oq, ok := AsOverQuota(err)
	if !ok || oq.Quota != "rate" || oq.Tenant != "a" {
		t.Fatalf("over-burst admit: err=%v, want rate OverQuota for tenant a", err)
	}
	if oq.RetryAfter <= 0 || oq.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %s, want a positive horizon near 1s", oq.RetryAfter)
	}

	// One token refills after one second at rate 1/s.
	clk.advance(time.Second)
	if err := a.Admit(&spec); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}

	// A different tenant is untouched by tenant a's exhaustion.
	other := quickSpec("b")
	if err := a.Admit(&other); err != nil {
		t.Fatalf("independent tenant rejected: %v", err)
	}
}

func TestAdmissionDeterministicRetryAfter(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(map[string]TenantPolicy{"a": {RatePerSec: 2, Burst: 1}}, TenantPolicy{}, nil, clk.now)
	spec := quickSpec("a")
	if err := a.Admit(&spec); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := a.Admit(&spec)
	oq, ok := AsOverQuota(err)
	if !ok {
		t.Fatalf("err = %v, want OverQuota", err)
	}
	// Empty bucket at 2 tokens/s: exactly 500ms to the next token. The
	// horizon is computed, not guessed, so it is exact under a fake clock.
	if oq.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter = %s, want 500ms", oq.RetryAfter)
	}
}

func TestAdmissionClockSkewFreezesRefill(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(map[string]TenantPolicy{"a": {RatePerSec: 1, Burst: 1}}, TenantPolicy{}, nil, clk.now)
	spec := quickSpec("a")
	if err := a.Admit(&spec); err != nil {
		t.Fatalf("first admit: %v", err)
	}

	// The clock steps backwards an hour (NTP slew). A naive bucket would
	// compute a negative or giant dt; ours must neither panic nor grant.
	clk.stepBack(time.Hour)
	if err := a.Admit(&spec); err == nil {
		t.Fatal("backwards clock granted a token")
	}

	// Refill resumes from the new (earlier) time base.
	clk.advance(time.Second)
	if err := a.Admit(&spec); err != nil {
		t.Fatalf("refill after re-anchor: %v", err)
	}
}

func TestAdmissionInFlightQuota(t *testing.T) {
	inflight := 0
	a := NewAdmission(map[string]TenantPolicy{
		"a": {RatePerSec: 100, Burst: 1, MaxInFlight: 2},
	}, TenantPolicy{}, func(string) int { return inflight }, newFakeClock().now)

	spec := quickSpec("a")
	inflight = 2
	err := a.Admit(&spec)
	oq, ok := AsOverQuota(err)
	if !ok || oq.Quota != "in-flight" {
		t.Fatalf("at quota: err=%v, want in-flight OverQuota", err)
	}

	// The in-flight rejection must not have consumed a rate token: the
	// bucket still holds its single burst token.
	inflight = 1
	if err := a.Admit(&spec); err != nil {
		t.Fatalf("below quota after rejection: %v", err)
	}
}

func TestAdmissionClampsEvalBudget(t *testing.T) {
	a := NewAdmission(map[string]TenantPolicy{"a": {MaxEvalsPerJob: 1000}}, TenantPolicy{}, nil, nil)

	// Unset budget inherits the tenant cap.
	spec := quickSpec("a")
	if err := a.Admit(&spec); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if spec.MaxEvals != 1000 {
		t.Fatalf("unset MaxEvals = %d, want tenant cap 1000", spec.MaxEvals)
	}

	// An over-cap request is clamped down.
	spec = quickSpec("a")
	spec.MaxEvals = 50_000
	_ = a.Admit(&spec)
	if spec.MaxEvals != 1000 {
		t.Fatalf("over-cap MaxEvals = %d, want clamped 1000", spec.MaxEvals)
	}

	// An under-cap request is the client's to make.
	spec = quickSpec("a")
	spec.MaxEvals = 10
	_ = a.Admit(&spec)
	if spec.MaxEvals != 10 {
		t.Fatalf("under-cap MaxEvals = %d, want 10 preserved", spec.MaxEvals)
	}
}

func TestAdmissionDefaultPolicyAdmitsUnknownTenants(t *testing.T) {
	a := NewAdmission(map[string]TenantPolicy{"a": {RatePerSec: 0.001, Burst: 1}}, TenantPolicy{}, nil, nil)
	spec := quickSpec("nobody-configured-me")
	for i := 0; i < 100; i++ {
		if err := a.Admit(&spec); err != nil {
			t.Fatalf("zero default policy rejected submit %d: %v", i, err)
		}
	}
}
