package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/obs/export"
	"gnsslna/internal/resilience"
)

// Options assembles a Server.
type Options struct {
	// Dir is the data root: the queue journal lives in Dir/queue, artifacts
	// in Dir/artifacts (jobs/ + deadletter/).
	Dir string
	// Workers sizes the fleet (minimum 1).
	Workers int
	// Queue tunes the durable queue (depth bound, compaction, clock).
	Queue QueueOptions
	// Tenants maps tenant name to admission policy; DefaultPolicy covers
	// the rest. A zero DefaultPolicy admits everything.
	Tenants       map[string]TenantPolicy
	DefaultPolicy TenantPolicy
	// Runner executes jobs (nil: the standard design/extract/sweep runner).
	Runner Runner
	// Retry is the per-job transient-failure policy (zero: one attempt).
	Retry resilience.RetryPolicy
	// MaxPanics quarantines a job after this many panicking attempts
	// (0: first panic is poison).
	MaxPanics int
	// DefaultTimeout bounds attempts for specs without one (0: 5 minutes).
	DefaultTimeout time.Duration
	// Registry lands the jobs.* metrics and backs /metrics (nil: a fresh
	// private registry).
	Registry *obs.Registry
	// Observer receives the durable job-trace events and the solver spans
	// nested under them (nil: disabled). Pass a raw sink — a Hub, a
	// Broadcaster, or obs.Multi of both — not a Traced: the serve layer
	// stamps each event with the owning job's persisted trace identity, and
	// a Traced wrapper would overwrite it.
	Observer obs.Observer
	// Broadcast feeds /events (nil: endpoint disabled).
	Broadcast *export.Broadcaster
}

// Server glues queue, admission, fleet, store and the HTTP surface into
// the design-as-a-service endpoint.
type Server struct {
	q        *Queue
	store    *Store
	fleet    *Fleet
	adm      *Admission
	reg      *obs.Registry
	metrics  *Metrics
	sink     obs.Observer
	slo      *sloPlane
	handler  http.Handler
	draining atomic.Bool
}

// healthPayload is the /healthz document.
type healthPayload struct {
	OK         bool   `json:"ok"`
	State      string `json:"state"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	// OldestAgeMS is the age of the longest-waiting queued job; DeadLetter
	// counts quarantined jobs in the dead-letter directory.
	OldestAgeMS int64 `json:"oldest_age_ms"`
	DeadLetter  int   `json:"deadletter"`
	Recovered   struct {
		Queued     int `json:"queued"`
		Resumed    int `json:"resumed"`
		Terminal   int `json:"terminal"`
		TailLosses int `json:"tail_losses"`
	} `json:"recovered"`
	// SLO carries each configured tenant objective's current standing (only
	// present when the tenants policy defines SLOs). A burning SLO does not
	// flip OK — readiness is about serving, not about meeting targets — but
	// orchestration and alerting read the burn rates from here.
	SLO []TenantSLO `json:"slo,omitempty"`
}

// New opens the durable queue under the data root (recovering any previous
// state), builds the admission gate and worker fleet, and wires the HTTP
// handler. Call Start to begin draining the queue and Shutdown to stop.
func New(o Options) (*Server, error) {
	if o.Dir == "" {
		return nil, errors.New("serve: Options.Dir required")
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	q, err := OpenQueue(filepath.Join(o.Dir, "queue"), o.Queue)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(filepath.Join(o.Dir, "artifacts"))
	if err != nil {
		q.Close()
		return nil, err
	}
	runner := o.Runner
	if runner == nil {
		runner = StdRunner()
	}
	s := &Server{
		q:       q,
		store:   store,
		adm:     NewAdmission(o.Tenants, o.DefaultPolicy, q.InFlight, o.Queue.Now),
		reg:     reg,
		metrics: NewMetrics(reg),
		sink:    o.Observer,
		slo:     newSLOPlane(reg, o.Tenants, o.DefaultPolicy),
	}
	s.fleet = NewFleet(q, store, runner, FleetOptions{
		Workers:        o.Workers,
		Retry:          o.Retry,
		MaxPanics:      o.MaxPanics,
		DefaultTimeout: o.DefaultTimeout,
		Observer:       o.Observer,
		Metrics:        s.metrics,
	})
	s.metrics.observeQueue(q, store)
	rep := q.Recovery()
	if reg != nil {
		reg.Counter("jobs.recovered.queued").Add(int64(rep.Queued))
		reg.Counter("jobs.recovered.resumed").Add(int64(rep.Resumed))
		reg.Counter("jobs.recovered.tail_losses").Add(int64(len(rep.TailLosses)))
	}
	s.handler = s.buildMux(export.NewHandler(export.Options{
		Registry:  reg,
		Broadcast: o.Broadcast,
		Health:    func() resilience.HealthState { return resilience.HealthState{OK: !s.draining.Load()} },
		RunsDir:   o.Dir,
	}))
	return s, nil
}

// Start launches the worker fleet.
func (s *Server) Start() { s.fleet.Start() }

// Queue exposes the underlying queue (tests, load tooling).
func (s *Server) Queue() *Queue { return s.q }

// Store exposes the artifact store.
func (s *Server) Store() *Store { return s.store }

// Registry exposes the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown degrades gracefully: /healthz flips to draining (orchestrators
// stop routing), new submissions get 503, in-flight jobs are canceled
// cooperatively and re-queued with their checkpoints, and the journal
// closes cleanly. Bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.fleet.Stop(ctx)
	return s.q.Close()
}

// Handler returns the full HTTP surface: the job API plus the telemetry
// endpoints of the export server (/metrics, /events, /runs, /debug/pprof).
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) buildMux(telemetry http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// /metrics refreshes the derived gauges (queue age, dead-letter, SLO
	// burn rates) on the way in, so every scrape is self-consistent without
	// a background refresher.
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.refreshDerived()
		telemetry.ServeHTTP(w, r)
	}))
	mux.Handle("GET /events", telemetry)
	mux.Handle("GET /runs", telemetry)
	mux.Handle("/debug/pprof/", telemetry)
	return mux
}

// refreshDerived recomputes the scrape-time gauges: queue shape (depth,
// running, oldest age, dead-letter count) and the SLO plane.
func (s *Server) refreshDerived() []TenantSLO {
	s.metrics.observeQueue(s.q, s.store)
	return s.slo.refresh()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error document.
type apiError struct {
	Error string `json:"error"`
	// RetryAfterMS mirrors the Retry-After header for JSON-only clients.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	tenant := spec.tenant()
	if err := s.adm.Admit(&spec); err != nil {
		if oq, ok := AsOverQuota(err); ok {
			s.metrics.inc("jobs.rejected", tenant)
			secs := int64(oq.RetryAfter.Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeJSON(w, http.StatusTooManyRequests, apiError{
				Error:        err.Error(),
				RetryAfterMS: oq.RetryAfter.Milliseconds(),
			})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	res, err := s.q.Submit(spec)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.metrics.inc("jobs.rejected", tenant)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error(), RetryAfterMS: 1000})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if res.Shed != nil {
		s.metrics.inc("jobs.shed", res.Shed.Spec.tenant())
		emitJobDone(s.sink, res.Shed)
	}
	if res.Deduped {
		s.metrics.inc("jobs.deduped", tenant)
		writeJSON(w, http.StatusOK, res.Job)
		return
	}
	s.metrics.inc("jobs.submitted", tenant)
	emitJobSubmitted(s.sink, res.Job)
	s.metrics.observeQueue(s.q, s.store)
	writeJSON(w, http.StatusAccepted, res.Job)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.q.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.q.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.q.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	if j.State != StateSucceeded {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job %s is %s, not succeeded", id, j.State)})
		return
	}
	data, err := s.store.ReadResult(id)
	if err != nil {
		if os.IsNotExist(err) && j.Result != nil {
			// The journal carries the result even if the artifact vanished.
			data = j.Result
		} else if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.q.Cancel(id)
	if err != nil {
		code := http.StatusNotFound
		if errors.Is(err, ErrNotCancelable) {
			code = http.StatusConflict
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	s.fleet.CancelJob(id)
	s.metrics.inc("jobs.canceled", j.Spec.tenant())
	emitJobDone(s.sink, j)
	writeJSON(w, http.StatusOK, j)
}

// handleHealthz reports readiness: 200 while serving, 503 with state
// "draining" once Shutdown begins — the degradation orchestration probes
// key off.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var p healthPayload
	p.OK = !s.draining.Load()
	p.State = "ready"
	if !p.OK {
		p.State = "draining"
	}
	p.SLO = s.refreshDerived()
	p.QueueDepth = s.q.Depth()
	p.Running = s.q.RunningCount()
	if oldest := s.q.OldestQueuedMS(); oldest > 0 {
		if age := nowMS(s.q.opts.Now) - oldest; age > 0 {
			p.OldestAgeMS = age
		}
	}
	p.DeadLetter = s.store.DeadLetterCount()
	rep := s.q.Recovery()
	p.Recovered.Queued = rep.Queued
	p.Recovered.Resumed = rep.Resumed
	p.Recovered.Terminal = rep.Terminal
	p.Recovered.TailLosses = len(rep.TailLosses)
	code := http.StatusOK
	if !p.OK {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, p)
}
