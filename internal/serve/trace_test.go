package serve

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// eventSink records every observed event (fleet workers emit concurrently).
type eventSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *eventSink) Observe(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *eventSink) snapshot() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Event(nil), s.events...)
}

// waitForEvent polls until pred matches one recorded event.
func (s *eventSink) waitForEvent(t *testing.T, what string, pred func(obs.Event) bool) obs.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, e := range s.snapshot() {
			if pred(e) {
				return e
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no %s event arrived; have %d events", what, len(s.snapshot()))
	return obs.Event{}
}

func TestSubmitAssignsDurableTrace(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(filepath.Join(dir, "queue"), QueueOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j := mustSubmit(t, q, quickSpec("a"))
	if j.Trace == 0 {
		t.Fatal("submitted job has no trace ID")
	}
	if j.QueuedMS == 0 {
		t.Fatal("submitted job has no QueuedMS")
	}
	q.Close()

	// The trace identity is in the WAL: a fresh process sees the same ID.
	q2, err := OpenQueue(filepath.Join(dir, "queue"), QueueOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	got, err := q2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != j.Trace {
		t.Fatalf("trace after reopen = %d, want %d", got.Trace, j.Trace)
	}
}

func TestJobTraceSpansOneAttempt(t *testing.T) {
	sink := &eventSink{}
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		// The runner's own solver span must nest under the attempt span.
		span, end := obs.StartSpan(o, "solver.fake")
		span.Observe(obs.Event{Kind: obs.KindGeneration, Gen: 1, Best: -1})
		end(3)
		return json.RawMessage(`{}`), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Observer: sink})
	j := mustSubmit(t, h.q, quickSpec("a"))
	waitTerminal(t, h.q, j.ID)

	done := sink.waitForEvent(t, "job.done", func(e obs.Event) bool {
		return e.Kind == obs.KindSample && e.Scope == "job.done.succeeded"
	})
	if uint64(done.Trace) != j.Trace || done.Span != jobRootSpan {
		t.Errorf("done sample identity = (%d,%d), want (%d,%d)", done.Trace, done.Span, j.Trace, jobRootSpan)
	}

	const base = uint64(1) << jobClaimShift
	var wait, attemptBegin, attemptEnd, solverEnd, rootEnd *obs.Event
	for _, e := range sink.snapshot() {
		if uint64(e.Trace) != j.Trace {
			continue
		}
		e := e
		switch {
		case e.Kind == obs.KindSpanEnd && e.Scope == scopeJobWait:
			wait = &e
		case e.Kind == obs.KindSpanBegin && e.Scope == scopeJobAttempt:
			attemptBegin = &e
		case e.Kind == obs.KindSpanEnd && e.Scope == scopeJobAttempt:
			attemptEnd = &e
		case e.Kind == obs.KindSpanEnd && e.Scope == "solver.fake":
			solverEnd = &e
		case e.Kind == obs.KindSpanEnd && e.Scope == jobScope(j):
			rootEnd = &e
		}
	}
	if wait == nil || attemptBegin == nil || attemptEnd == nil || solverEnd == nil || rootEnd == nil {
		t.Fatalf("missing spans: wait=%v attempt=%v/%v solver=%v root=%v",
			wait != nil, attemptBegin != nil, attemptEnd != nil, solverEnd != nil, rootEnd != nil)
	}
	if uint64(wait.Span) != base+1 || wait.Parent != jobRootSpan {
		t.Errorf("wait span = (%d,%d), want (%d,%d)", wait.Span, wait.Parent, base+1, jobRootSpan)
	}
	attBase := base | uint64(1)<<jobRetryShift
	if uint64(attemptBegin.Span) != attBase+1 || attemptBegin.Parent != jobRootSpan {
		t.Errorf("attempt span = (%d,%d), want (%d,%d)", attemptBegin.Span, attemptBegin.Parent, attBase+1, jobRootSpan)
	}
	if solverEnd.Parent != attemptBegin.Span {
		t.Errorf("solver span parent = %d, want the attempt span %d", solverEnd.Parent, attemptBegin.Span)
	}
	if rootEnd.Span != jobRootSpan || rootEnd.Parent != 0 {
		t.Errorf("root end identity = (%d,%d), want (%d,0)", rootEnd.Span, rootEnd.Parent, jobRootSpan)
	}
	if rootEnd.Value < 0 {
		t.Errorf("root end wall = %g, want >= 0", rootEnd.Value)
	}
}

func TestJobTraceRetriesAreSiblingSpans(t *testing.T) {
	sink := &eventSink{}
	var calls int
	var mu sync.Mutex
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, resilience.Transient(errors.New("flaky first attempt"))
		}
		return json.RawMessage(`{}`), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Observer: sink, Retry: tinyRetry(2)})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded", done.State, done.Error)
	}
	sink.waitForEvent(t, "job.done", func(e obs.Event) bool {
		return e.Kind == obs.KindSample && e.Scope == "job.done.succeeded"
	})

	var attempts []uint64
	backoffs := 0
	for _, e := range sink.snapshot() {
		if uint64(e.Trace) != j.Trace {
			continue
		}
		if e.Kind == obs.KindSpanEnd && e.Scope == scopeJobAttempt {
			attempts = append(attempts, uint64(e.Span))
		}
		if e.Kind == obs.KindSample && e.Scope == scopeJobBackoff {
			backoffs++
			if e.Span != jobRootSpan {
				t.Errorf("backoff sample span = %d, want root %d", e.Span, jobRootSpan)
			}
			if e.Value <= 0 {
				t.Errorf("backoff sample = %g ms, want > 0", e.Value)
			}
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("attempt spans = %d, want 2 sibling spans", len(attempts))
	}
	if attempts[0] == attempts[1] {
		t.Fatalf("retry reused span %d; retries must be distinct sibling spans", attempts[0])
	}
	base := uint64(1) << jobClaimShift
	if want := base | 1<<jobRetryShift | 1; attempts[0] != want {
		t.Errorf("first attempt span = %d, want %d", attempts[0], want)
	}
	if want := base | 2<<jobRetryShift | 1; attempts[1] != want {
		t.Errorf("second attempt span = %d, want %d", attempts[1], want)
	}
	if backoffs != 1 {
		t.Errorf("backoff samples = %d, want 1", backoffs)
	}
}
