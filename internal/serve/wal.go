package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// walRecord is one line of the queue's write-ahead journal. Op "submit"
// carries the full job at admission, "state" a lifecycle transition, and
// "snapshot" opens a compacted segment: it resets replay state and carries
// one live job per following "submit" record.
type walRecord struct {
	Op string `json:"op"`
	// Job is the full job for submit records (and recovery snapshots).
	Job *Job `json:"job,omitempty"`
	// ID/State/Attempt/Error/Result/TMS describe a state transition.
	ID      string          `json:"id,omitempty"`
	State   JobState        `json:"state,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	TMS     int64           `json:"t_ms,omitempty"`
}

// TailError reports a journal segment whose tail could not be parsed —
// typically a crash mid-append or a truncated file. Records before Line
// were recovered; the loss is bounded to the torn tail. It mirrors the
// replay.TailError contract so queue recovery degrades exactly the way
// journal analytics do.
type TailError struct {
	// Segment is the base name of the damaged segment file.
	Segment string
	// Line is the 1-based line number of the first unparseable line.
	Line int
	// Err is the underlying parse error.
	Err error
}

// Error implements error.
func (e *TailError) Error() string {
	return fmt.Sprintf("serve: queue segment %s tail corrupt at line %d: %v", e.Segment, e.Line, e.Err)
}

// Unwrap exposes the underlying parse error.
func (e *TailError) Unwrap() error { return e.Err }

// AsTailError unwraps err to a *TailError, if one is in the chain.
func AsTailError(err error) (*TailError, bool) {
	var te *TailError
	if errors.As(err, &te) {
		return te, true
	}
	return nil, false
}

const (
	segPrefix = "queue-"
	segSuffix = ".jsonl"
	// defaultMaxSegBytes triggers compaction: once the active segment
	// outgrows this, the live set is snapshotted into a fresh segment.
	defaultMaxSegBytes = 4 << 20
)

// segName formats the canonical segment file name for ordinal n.
func segName(n int) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

// segOrdinal parses a segment file name, reporting ok=false for foreign
// files.
func segOrdinal(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// wal is the queue's segmented write-ahead journal. Appends go to the
// highest-ordinal segment and are flushed (and optionally fsynced) before
// Submit acknowledges, which is what "acknowledged jobs are never lost"
// means mechanically. Rotation writes a compacted snapshot segment via
// temp-file+rename — atomic on POSIX — then deletes the older segments, so
// a crash during rotation leaves either the old segment chain or the new
// snapshot plus possibly-stale older segments that replay harmlessly (the
// snapshot record resets replay state).
type wal struct {
	dir     string
	f       *os.File
	seg     int
	size    int64
	maxSeg  int64
	noSync  bool
	tainted error
}

// openWAL opens (creating if needed) the journal under dir and replays
// every segment in ordinal order. Torn tails degrade: complete records are
// returned along with the accumulated []*TailError naming each loss.
func openWAL(dir string, maxSegBytes int64, noSync bool) (*wal, []walRecord, []*TailError, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("serve: queue dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: queue dir: %w", err)
	}
	var ordinals []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := segOrdinal(e.Name()); ok {
			ordinals = append(ordinals, n)
		}
	}
	sort.Ints(ordinals)

	var recs []walRecord
	var losses []*TailError
	var activeGood int64
	var activeTorn bool
	for i, n := range ordinals {
		segRecs, good, terr := readSegment(filepath.Join(dir, segName(n)))
		if terr != nil {
			losses = append(losses, terr)
		}
		if i == len(ordinals)-1 {
			activeGood, activeTorn = good, terr != nil
		}
		for _, r := range segRecs {
			if r.Op == "snapshot" {
				// A compaction point: everything before it is superseded.
				recs = recs[:0]
			}
			recs = append(recs, r)
		}
	}

	seg := 1
	if len(ordinals) > 0 {
		seg = ordinals[len(ordinals)-1]
	}
	path := filepath.Join(dir, segName(seg))
	if activeTorn {
		// Cut the torn tail off the active segment so the next append never
		// fuses with it into one garbage line. The loss is already recorded;
		// truncation just makes the on-disk bytes match what replay kept.
		if err := os.Truncate(path, activeGood); err != nil {
			return nil, nil, nil, fmt.Errorf("serve: queue segment: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: queue segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("serve: queue segment: %w", err)
	}
	if maxSegBytes <= 0 {
		maxSegBytes = defaultMaxSegBytes
	}
	w := &wal{dir: dir, f: f, seg: seg, size: st.Size(), maxSeg: maxSegBytes, noSync: noSync}
	if st.Size() > 0 && !endsWithNewline(path, st.Size()) {
		// A complete final record without its newline (write torn exactly at
		// the boundary): terminate it so the next append starts a fresh line.
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("serve: queue segment: %w", err)
		}
		w.size++
	}
	return w, recs, losses, nil
}

// endsWithNewline reads back the final byte of path.
func endsWithNewline(path string, size int64) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], size-1); err != nil {
		return false
	}
	return b[0] == '\n'
}

// readSegment parses one JSONL segment, returning every complete record,
// the byte length of the complete-record prefix, and a *TailError when the
// tail is torn — never failing the whole recovery for a bounded tail loss.
func readSegment(path string) ([]walRecord, int64, *TailError) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, &TailError{Segment: filepath.Base(path), Line: 0, Err: err}
	}
	var out []walRecord
	var good int64
	line := 0
	for off := 0; off < len(data); {
		line++
		raw := data[off:]
		next := len(data)
		if nl := bytes.IndexByte(raw, '\n'); nl >= 0 {
			raw = raw[:nl]
			next = off + nl + 1
		}
		if len(bytes.TrimSpace(raw)) > 0 {
			var rec walRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return out, good, &TailError{Segment: filepath.Base(path), Line: line, Err: err}
			}
			out = append(out, rec)
		}
		off, good = next, int64(next)
	}
	return out, good, nil
}

// append writes one record durably. The append is acknowledged only after
// the OS write (and fsync unless noSync) succeeds; a failed append taints
// the WAL so the queue stops acknowledging work it cannot make durable.
func (w *wal) append(rec walRecord) error {
	if w.tainted != nil {
		return w.tainted
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		w.tainted = fmt.Errorf("serve: journal append: %w", err)
		return w.tainted
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			w.tainted = fmt.Errorf("serve: journal sync: %w", err)
			return w.tainted
		}
	}
	w.size += int64(len(line))
	return nil
}

// shouldRotate reports whether the active segment outgrew the cap.
func (w *wal) shouldRotate() bool { return w.size >= w.maxSeg }

// rotate compacts the journal: the caller passes every job worth keeping
// (live jobs plus recent terminals for status queries) and rotate writes
// them as a snapshot segment with ordinal seg+1 via temp-file+rename, then
// retires the older segments. A crash anywhere in between is safe:
//   - before the rename: the temp file is ignored by recovery (wrong name);
//   - after the rename, before the deletes: the old segments replay first
//     and the snapshot record then resets replay state.
func (w *wal) rotate(keep []*Job) error {
	if w.tainted != nil {
		return w.tainted
	}
	next := w.seg + 1
	final := filepath.Join(w.dir, segName(next))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: rotate: %w", err)
	}
	bw := bufio.NewWriter(f)
	write := func(rec walRecord) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		_, err = bw.Write(line)
		return err
	}
	werr := write(walRecord{Op: "snapshot"})
	for _, j := range keep {
		if werr != nil {
			break
		}
		werr = write(walRecord{Op: "submit", Job: j})
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: rotate: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: rotate: %w", err)
	}

	// The snapshot is durable; switch appends over and retire the old chain.
	old, oldSeg := w.f, w.seg
	nf, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: rotate: %w", err)
	}
	st, err := nf.Stat()
	if err != nil {
		nf.Close()
		return fmt.Errorf("serve: rotate: %w", err)
	}
	w.f, w.seg, w.size = nf, next, st.Size()
	old.Close()
	for n := oldSeg; n >= 1; n-- {
		p := filepath.Join(w.dir, segName(n))
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			break // best effort; stale segments replay harmlessly
		}
	}
	return nil
}

// close releases the active segment handle.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
