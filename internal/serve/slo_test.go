package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gnsslna/internal/obs"
)

func TestSLOPlaneNilWithoutTargets(t *testing.T) {
	reg := obs.NewRegistry()
	if p := newSLOPlane(reg, map[string]TenantPolicy{"a": {RatePerSec: 5}}, TenantPolicy{}); p != nil {
		t.Fatal("plane built with no SLO targets configured")
	}
	var p *sloPlane
	if got := p.refresh(); got != nil {
		t.Fatalf("nil plane refresh = %v, want nil", got)
	}
}

func TestSLOPlaneRefresh(t *testing.T) {
	reg := obs.NewRegistry()
	tenants := map[string]TenantPolicy{
		"alpha": {SLOTargetP99MS: 10, SLOErrorRate: 0.10},
		"beta":  {SLOTargetP99MS: 1000},
	}
	plane := newSLOPlane(reg, tenants, TenantPolicy{})
	if plane == nil {
		t.Fatal("plane is nil despite configured targets")
	}

	// No traffic yet: every objective is vacuously OK with zeroed standings.
	for _, st := range plane.refresh() {
		if !st.OK || st.Samples != 0 || st.P99Burn != 0 || st.ErrorBurn != 0 {
			t.Fatalf("idle standing = %+v, want vacuously OK zeros", st)
		}
	}

	// alpha burns both objectives: slow jobs against a 10ms target, and 1
	// failure out of 4 terminal jobs against a 10%% budget.
	h := reg.Histogram("jobs.latency_ms.alpha")
	for i := 0; i < 20; i++ {
		h.Observe(500)
	}
	reg.Counter("jobs.succeeded.alpha").Add(3)
	reg.Counter("jobs.failed.alpha").Add(1)
	// beta stays comfortably inside its latency target.
	reg.Histogram("jobs.latency_ms.beta").Observe(5)
	reg.Counter("jobs.succeeded.beta").Add(1)

	out := plane.refresh()
	if len(out) != 2 || out[0].Tenant != "alpha" || out[1].Tenant != "beta" {
		t.Fatalf("standings = %+v, want [alpha beta]", out)
	}
	alpha, beta := out[0], out[1]
	if alpha.OK {
		t.Errorf("alpha.OK = true, want burning")
	}
	if alpha.Samples != 20 || alpha.P99MS <= 10 || alpha.P99Burn <= 1 {
		t.Errorf("alpha latency standing = %+v", alpha)
	}
	if alpha.ErrorRate != 0.25 || alpha.ErrorBurn != 2.5 {
		t.Errorf("alpha error standing: rate=%g burn=%g, want 0.25 / 2.5", alpha.ErrorRate, alpha.ErrorBurn)
	}
	if !beta.OK || beta.P99Burn >= 1 || beta.ErrorBurn != 0 {
		t.Errorf("beta standing = %+v, want OK", beta)
	}

	// The standings land as gauges for /metrics.
	if v := reg.Gauge("jobs.slo.ok.alpha").Value(); v != 0 {
		t.Errorf("jobs.slo.ok.alpha = %g, want 0", v)
	}
	if v := reg.Gauge("jobs.slo.ok.beta").Value(); v != 1 {
		t.Errorf("jobs.slo.ok.beta = %g, want 1", v)
	}
	if v := reg.Gauge("jobs.slo.error_burn.alpha").Value(); v != 2.5 {
		t.Errorf("jobs.slo.error_burn.alpha = %g, want 2.5", v)
	}
	if v := reg.Gauge("jobs.slo.p99_burn.alpha").Value(); v <= 1 {
		t.Errorf("jobs.slo.p99_burn.alpha = %g, want > 1", v)
	}
}

func TestServerHealthzCarriesSLOAndQueueGauges(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Options{
		Workers:  1,
		Registry: reg,
		Tenants: map[string]TenantPolicy{
			"acme": {SLOTargetP99MS: 60_000, SLOErrorRate: 0.5},
		},
	}, echoRunner(`{}`))

	resp, j := postJob(t, ts.URL, quickSpec("acme"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	var cur Job
	for {
		getJSON(t, ts.URL+"/jobs/"+j.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The latency observation happens right after the terminal transition;
	// poll /healthz until the SLO plane has seen it.
	var hp healthPayload
	for {
		getJSON(t, ts.URL+"/healthz", &hp)
		if len(hp.SLO) == 1 && hp.SLO[0].Samples >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never carried the SLO sample: %+v", hp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := hp.SLO[0]
	if st.Tenant != "acme" || !st.OK {
		t.Fatalf("SLO standing = %+v, want OK acme", st)
	}
	if st.TargetP99MS != 60_000 || st.TargetErrorRate != 0.5 {
		t.Fatalf("SLO targets = %+v", st)
	}
	if st.ErrorRate != 0 || st.ErrorBurn != 0 {
		t.Fatalf("SLO error standing = %+v, want clean", st)
	}
	if hp.OldestAgeMS != 0 || hp.DeadLetter != 0 {
		t.Fatalf("queue gauges = age %d deadletter %d, want zeros on a drained queue", hp.OldestAgeMS, hp.DeadLetter)
	}

	// /metrics exposes the SLO gauges, queue-age gauge, dead-letter gauge
	// and the all-tenant aggregate latency histogram.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	text := string(body)
	for _, want := range []string{
		"gnsslna_jobs_slo_ok_acme",
		"gnsslna_jobs_slo_p99_burn_acme",
		"gnsslna_jobs_queue_oldest_age_ms",
		"gnsslna_jobs_deadletter",
		`gnsslna_jobs_latency_ms_count{name="jobs.latency_ms"}`,
		`gnsslna_jobs_queue_wait_ms_count{name="jobs.queue_wait_ms"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestQueueOldestQueuedMS(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if got := q.OldestQueuedMS(); got != 0 {
		t.Fatalf("empty queue oldest = %d, want 0", got)
	}
	a := mustSubmit(t, q, quickSpec("a"))
	time.Sleep(2 * time.Millisecond)
	mustSubmit(t, q, quickSpec("b"))
	if got := q.OldestQueuedMS(); got != a.QueuedMS {
		t.Fatalf("oldest = %d, want first submission %d", got, a.QueuedMS)
	}
	// Claiming the oldest advances the gauge to the next-in-line.
	claimed, err := q.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if claimed.ID != a.ID {
		t.Fatalf("claimed %s, want FIFO head %s", claimed.ID, a.ID)
	}
	if got := q.OldestQueuedMS(); got < a.QueuedMS {
		t.Fatalf("oldest after claim = %d, want the remaining job's stamp", got)
	}
}
