package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
	"gnsslna/internal/resilience/chaostest"
)

// TestServdChaosChild is not a test: it is the server process the SIGKILL
// chaos proof below re-executes and murders. It opens a durable (fsync on)
// server over SERVD_CHAOS_DIR, submits 24 jobs, prints each acknowledged ID,
// and then idles until the parent kills it mid-fleet.
func TestServdChaosChild(t *testing.T) {
	if os.Getenv("SERVD_CHAOS_CHILD") != "1" {
		t.Skip("helper process for TestChaosSIGKILLRecoversAllAcknowledgedJobs")
	}
	dir := os.Getenv("SERVD_CHAOS_DIR")
	slow := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, job.Spec.Seed)), nil
	})
	s, err := New(Options{Dir: dir, Workers: 3, Runner: slow})
	if err != nil {
		fmt.Printf("CHILD-ERROR %v\n", err)
		os.Exit(1)
	}
	s.Start()
	for i := 0; i < 24; i++ {
		res, err := s.Queue().Submit(JobSpec{
			Type: TypeDesign, Quick: true, Seed: int64(i + 1),
			DedupeKey: fmt.Sprintf("chaos-%d", i),
		})
		if err != nil {
			fmt.Printf("CHILD-ERROR submit %d: %v\n", i, err)
			os.Exit(1)
		}
		// The printed ID is the durability acknowledgment: the record was
		// fsynced before Submit returned.
		fmt.Printf("ACK %s\n", res.Job.ID)
	}
	fmt.Println("READY")
	time.Sleep(time.Hour) // the parent SIGKILLs us long before this
}

// TestChaosSIGKILLRecoversAllAcknowledgedJobs is the crash-recovery proof:
// a server process with 24 acknowledged jobs in flight (some succeeded, some
// running, most queued) is SIGKILLed; a fresh process over the same data
// directory must bring every acknowledged job to a terminal state, and no
// job that already reached a terminal state may run again.
func TestChaosSIGKILLRecoversAllAcknowledgedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos proof skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestServdChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(), "SERVD_CHAOS_CHILD=1", "SERVD_CHAOS_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	defer cmd.Process.Kill()

	var acked []string
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "ACK "):
			acked = append(acked, strings.TrimSpace(strings.TrimPrefix(line, "ACK ")))
		case strings.HasPrefix(line, "CHILD-ERROR"):
			t.Fatalf("child failed: %s", line)
		case line == "READY":
			ready = true
		}
		if ready {
			break
		}
	}
	if !ready || len(acked) < 20 {
		t.Fatalf("child acknowledged %d jobs (ready=%v), want >= 20", len(acked), ready)
	}

	// Let the fleet chew: some jobs finish, some are mid-run when the SIGKILL
	// lands. 150ms into a 24-job/3-worker/100ms-each run is mid-burn.
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	// Restart over the same directory. The runner records every job it
	// executes so we can prove terminal jobs never re-run.
	var mu sync.Mutex
	ran := map[string]bool{}
	recorder := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		mu.Lock()
		ran[job.ID] = true
		mu.Unlock()
		return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, job.Spec.Seed)), nil
	})
	s, err := New(Options{Dir: dir, Workers: 4, Runner: recorder})
	if err != nil {
		t.Fatalf("recovery New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	rep := s.Queue().Recovery()
	if got := rep.Queued + rep.Resumed + rep.Terminal; got != len(acked) {
		t.Fatalf("recovered %d jobs (%d queued, %d resumed, %d terminal), want all %d acknowledged",
			got, rep.Queued, rep.Resumed, rep.Terminal, len(acked))
	}
	alreadyDone := map[string]bool{}
	for _, j := range s.Queue().List("") {
		if j.State.Terminal() {
			if j.State != StateSucceeded {
				t.Fatalf("pre-crash job %s recovered as %s (%s)", j.ID, j.State, j.Error)
			}
			alreadyDone[j.ID] = true
		}
	}

	s.Start()
	for _, id := range acked {
		deadline := time.Now().Add(15 * time.Second)
		for {
			j, err := s.Queue().Get(id)
			if err != nil {
				t.Fatalf("acknowledged job %s lost: %v", id, err)
			}
			if j.State.Terminal() {
				if j.State != StateSucceeded {
					t.Fatalf("job %s = %s (%s), want succeeded", id, j.State, j.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never reached terminal after recovery (state %s)", id, j.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// No double-run: nothing that survived the crash already-terminal was
	// handed to a worker again.
	mu.Lock()
	defer mu.Unlock()
	for id := range alreadyDone {
		if ran[id] {
			t.Fatalf("terminal job %s was re-run after recovery", id)
		}
	}

	// And the dedupe keys still bind: resubmitting the whole batch enqueues
	// nothing.
	for i := 0; i < 24; i++ {
		res, err := s.Queue().Submit(JobSpec{
			Type: TypeDesign, Quick: true, Seed: int64(i + 1),
			DedupeKey: fmt.Sprintf("chaos-%d", i),
		})
		if err != nil || !res.Deduped {
			t.Fatalf("post-recovery resubmit %d: deduped=%v err=%v", i, res.Deduped, err)
		}
	}
	if d := s.Queue().Depth(); d != 0 {
		t.Fatalf("resubmission enqueued %d duplicate runs", d)
	}
}

// TestChaosResumeBitIdentical interrupts a real design job mid-run (graceful
// drain, checkpoints intact), restarts the server over the same directory,
// and requires the resumed result to be byte-for-byte the result of an
// uninterrupted run with the same spec.
func TestChaosResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runner chaos proof skipped in -short")
	}
	spec := JobSpec{Type: TypeDesign, Quick: true, Seed: 7}

	runToSuccess := func(t *testing.T, s *Server, id string) []byte {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			j, err := s.Queue().Get(id)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if j.State.Terminal() {
				if j.State != StateSucceeded {
					t.Fatalf("job = %s (%s), want succeeded", j.State, j.Error)
				}
				return j.Result
			}
			if time.Now().After(deadline) {
				t.Fatal("design job never finished")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Reference: one uninterrupted run.
	ref, err := New(Options{Dir: t.TempDir(), Workers: 1, Queue: QueueOptions{NoSync: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref.Start()
	refRes, err := ref.Queue().Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := runToSuccess(t, ref, refRes.Job.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	ref.Shutdown(ctx)
	cancel()

	// Interrupted: drain the fleet mid-run, then restart and resume.
	dir := t.TempDir()
	s1, err := New(Options{Dir: dir, Workers: 1, Queue: QueueOptions{NoSync: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s1.Start()
	res, err := s1.Queue().Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(120 * time.Millisecond) // mid-run for a quick design (~0.5s)
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	err = s1.Shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	j, err2 := OpenQueue(filepath.Join(dir, "queue"), QueueOptions{NoSync: true})
	if err2 != nil {
		t.Fatalf("inspect queue: %v", err2)
	}
	interrupted, _ := j.Get(res.Job.ID)
	j.Close()
	if interrupted == nil || interrupted.State.Terminal() {
		t.Skipf("drain landed after the run finished (state %v); nothing to resume", interrupted)
	}

	s2, err := New(Options{Dir: dir, Workers: 1, Queue: QueueOptions{NoSync: true}})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	s2.Start()
	got := runToSuccess(t, s2, res.Job.ID)
	if string(got) != string(want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n  resumed: %s\n  want:    %s", got, want)
	}
}

// TestChaosSegmentCorruptionBoundedLoss flips one byte inside a journal
// record: recovery must keep every record before the corruption, report the
// loss, and the queue must keep accepting work.
func TestChaosSegmentCorruptionBoundedLoss(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustSubmit(t, q, quickSpec("a"))
	}
	q.Close()

	// Bit-rot the opening brace of record 4 of 5. (A flipped byte inside a
	// string value would be absorbed — encoding/json replaces invalid UTF-8
	// rather than rejecting it — so structural damage is the detectable kind.)
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(data), "\n")
	offset := int64(len(lines[0]) + len(lines[1]) + len(lines[2]))
	if err := chaostest.CorruptByte(seg, offset, 0xFF); err != nil {
		t.Fatalf("CorruptByte: %v", err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer q2.Close()
	rep := q2.Recovery()
	if rep.Queued != 3 {
		t.Fatalf("recovered %d jobs, want the 3 before the corrupted record", rep.Queued)
	}
	if len(rep.TailLosses) != 1 || rep.TailLosses[0].Line != 4 {
		t.Fatalf("losses = %+v, want one at line 4", rep.TailLosses)
	}
	// The queue is still serviceable after the amputation.
	j := mustSubmit(t, q2, quickSpec("post-rot"))
	if j.ID == "" {
		t.Fatal("submit after corruption recovery failed")
	}
}

// TestChaosInjectedPanicsQuarantine drives the serve layer with a chaostest
// injector that panics on every objective call: the job must land in
// quarantine, not loop forever.
func TestChaosInjectedPanicsQuarantine(t *testing.T) {
	inj := &chaostest.Injector{PanicEvery: 1}
	obj := inj.Wrap(func(x []float64) float64 { return x[0] })
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		v := obj([]float64{1})
		return json.RawMessage(fmt.Sprintf(`{"v":%g}`, v)), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(4), MaxPanics: 2})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateQuarantined {
		t.Fatalf("state = %s, want quarantined after repeated injected panics", done.State)
	}
	if inj.Calls() != 2 {
		t.Fatalf("injector saw %d calls, want MaxPanics=2 then quarantine", inj.Calls())
	}
}

// TestChaosNaNObjectiveFailsCleanly: a runner whose objective returns NaN
// must fail the job with a diagnosable error, never hang or succeed.
func TestChaosNaNObjectiveFailsCleanly(t *testing.T) {
	inj := &chaostest.Injector{NaNEvery: 1}
	obj := inj.Wrap(func(x []float64) float64 { return x[0] })
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		if v := obj([]float64{1}); v != v {
			return nil, fmt.Errorf("objective returned NaN")
		}
		return json.RawMessage(`{}`), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(3)})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "NaN") {
		t.Fatalf("state=%s error=%q, want failed with NaN diagnosis", done.State, done.Error)
	}
}

// TestChaosClockSkewAdmissionInvariant hammers admission under a clock that
// jumps backwards repeatedly: the admitted count must never exceed the
// tokens genuinely available (burst plus forward progress only — backwards
// jumps grant nothing), and admission must keep working afterwards.
func TestChaosClockSkewAdmissionInvariant(t *testing.T) {
	base := time.UnixMilli(1_700_000_000_000)
	// 100 reads: every 3rd jumps back an hour, the others tick +100ms.
	var schedule []time.Duration
	forward := 0.0
	for i := 0; i < 100; i++ {
		if i%3 == 2 {
			schedule = append(schedule, -time.Hour)
		} else {
			schedule = append(schedule, 100*time.Millisecond)
			forward += 0.1
		}
	}
	clk := chaostest.NewSkewClock(base, schedule...)
	a := NewAdmission(map[string]TenantPolicy{"a": {RatePerSec: 2, Burst: 5}}, TenantPolicy{}, nil, clk.Now)

	admitted := 0
	for i := 0; i < 100; i++ {
		spec := quickSpec("a")
		if err := a.Admit(&spec); err == nil {
			admitted++
		}
	}
	// Upper bound: the burst plus rate * forward-only elapsed time. The
	// backwards jumps must not have minted tokens.
	maxTokens := 5 + int(2*forward) + 1
	if admitted > maxTokens {
		t.Fatalf("admitted %d jobs, want <= %d: backwards clock jumps minted tokens", admitted, maxTokens)
	}
	if admitted == 0 {
		t.Fatal("skewed clock starved admission entirely")
	}
}

// TestChaosDeadlineUnderSkewStillTerminates: a job whose RunController
// deadline is computed against a skewed clock must still terminate (the
// worker's context timeout is the backstop).
func TestChaosDeadlineUnderSkewStillTerminates(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		ctl := resilience.NewController(resilience.ControllerOptions{
			Context:  ctx,
			Deadline: time.UnixMilli(1_700_000_000_000).Add(50 * time.Millisecond),
			// A frozen clock: the controller's own deadline never appears to
			// pass, simulating skew hiding the timeout.
			Clock: func() time.Time { return time.UnixMilli(1_700_000_000_000) },
		})
		for {
			if err := ctl.Check(); err != nil {
				return nil, err
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, DefaultTimeout: 200 * time.Millisecond})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed via the worker timeout backstop", done.State)
	}
}
