package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustSubmit(t *testing.T, q *Queue, spec JobSpec) *Job {
	t.Helper()
	res, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return res.Job
}

func quickSpec(tenant string) JobSpec {
	return JobSpec{Type: TypeDesign, Tenant: tenant, Quick: true}
}

// TestWALTruncatedTailRecoversPrefix is the queue-reader half of the
// replay.TailError contract: a segment ending in a partial record yields
// every complete record plus a typed *TailError naming the loss.
func TestWALTruncatedTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustSubmit(t, q, quickSpec("a"))
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Truncate the active segment mid-record, as a crash mid-append would.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("segment has %d lines, want >= 5", len(lines))
	}
	// Keep 3 complete records and half of the 4th.
	torn := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(seg, []byte(torn), 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	rep := q2.Recovery()
	if rep.Queued != 3 {
		t.Fatalf("recovered %d queued jobs, want 3 (the complete prefix)", rep.Queued)
	}
	if len(rep.TailLosses) != 1 {
		t.Fatalf("got %d tail losses, want exactly 1: %v", len(rep.TailLosses), rep.TailLosses)
	}
	loss := rep.TailLosses[0]
	if loss.Segment != segName(1) || loss.Line != 4 {
		t.Fatalf("tail loss = segment %q line %d, want %q line 4", loss.Segment, loss.Line, segName(1))
	}
	if _, ok := AsTailError(loss); !ok {
		t.Fatal("loss does not unwrap as *TailError")
	}
}

// TestWALTornTailDoesNotFuseWithNextAppend: reopening a torn segment and
// appending must not glue the new record onto the torn line.
func TestWALTornTailDoesNotFuseWithNextAppend(t *testing.T) {
	dir := t.TempDir()
	q, _ := OpenQueue(dir, QueueOptions{})
	mustSubmit(t, q, quickSpec("a"))
	q.Close()

	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	// Drop the trailing half of the final record including its newline.
	if err := os.WriteFile(seg, data[:len(data)-10], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	j := mustSubmit(t, q2, quickSpec("b"))
	q2.Close()

	q3, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("re-reopen: %v", err)
	}
	defer q3.Close()
	got, err := q3.Get(j.ID)
	if err != nil {
		t.Fatalf("the append after the torn tail was lost: %v", err)
	}
	if got.Spec.Tenant != "b" {
		t.Fatalf("recovered wrong job: %+v", got)
	}
}

// TestWALRotationCompactsAndSurvivesReplay drives enough traffic through a
// tiny segment cap to force several rotations, then proves a cold reopen
// reconstructs exactly the retained set.
func TestWALRotationCompactsAndSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{MaxSegBytes: 4096, KeepTerminal: 5, NoSync: true})
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	ctx := testContext(t)
	var ids []string
	for i := 0; i < 40; i++ {
		j := mustSubmit(t, q, quickSpec("a"))
		ids = append(ids, j.ID)
		claimed, err := q.Claim(ctx)
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if _, err := q.Complete(claimed.ID, json.RawMessage(`{"ok":true}`)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	// Rotation must have retired early segments.
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatal("segment 1 still present after rotations")
	}
	q.Close()

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	rep := q2.Recovery()
	if rep.Queued != 0 || rep.Resumed != 0 {
		t.Fatalf("phantom live jobs after compaction: %+v", rep)
	}
	if rep.Terminal == 0 || rep.Terminal > 20 {
		t.Fatalf("retained %d terminal jobs, want bounded near KeepTerminal=5 plus the in-segment tail", rep.Terminal)
	}
	// The newest job must still be queryable; the oldest must have aged out.
	if _, err := q2.Get(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job lost: %v", err)
	}
	if _, err := q2.Get(ids[0]); err == nil {
		t.Fatal("oldest job survived past KeepTerminal retention")
	}
}

// TestWALRotationCrashBetweenRenameAndDelete simulates the rotation crash
// window: the snapshot segment landed but the old segments were never
// deleted. Replay must prefer the snapshot (the "snapshot" record resets
// state) and not duplicate jobs.
func TestWALRotationCrashBetweenRenameAndDelete(t *testing.T) {
	dir := t.TempDir()
	q, _ := OpenQueue(dir, QueueOptions{})
	j := mustSubmit(t, q, quickSpec("a"))
	q.Close()

	// Hand-write a snapshot segment 2 as rotate would, leaving segment 1 in
	// place (the crash-before-delete state). The snapshot claims the job
	// completed.
	done := *j
	done.State = StateSucceeded
	rec1, _ := json.Marshal(walRecord{Op: "snapshot"})
	rec2, _ := json.Marshal(walRecord{Op: "submit", Job: &done})
	body := string(rec1) + "\n" + string(rec2) + "\n"
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte(body), 0o644); err != nil {
		t.Fatalf("write snapshot segment: %v", err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	got, err := q2.Get(j.ID)
	if err != nil {
		t.Fatalf("job lost across rotation crash: %v", err)
	}
	if got.State != StateSucceeded {
		t.Fatalf("stale pre-snapshot state won: %s", got.State)
	}
	if q2.Depth() != 0 {
		t.Fatalf("queue depth %d after snapshot replay, want 0", q2.Depth())
	}
}
