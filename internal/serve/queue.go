package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrQueueFull is returned by Submit when the queue is at depth and the new
// job's priority does not beat the lowest queued work (load shedding only
// ever evicts strictly lower-priority jobs).
var ErrQueueFull = errors.New("serve: queue full")

// ErrUnknownJob is returned for operations on job IDs the queue has never
// seen (or has compacted away).
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrNotCancelable is returned by Cancel for jobs already terminal.
var ErrNotCancelable = errors.New("serve: job already terminal")

// QueueOptions configures OpenQueue.
type QueueOptions struct {
	// MaxDepth bounds the queued (not running) jobs; 0 defaults to 1024.
	MaxDepth int
	// KeepTerminal bounds the terminal jobs retained for status queries
	// across compactions; 0 defaults to 512.
	KeepTerminal int
	// MaxSegBytes triggers journal compaction; 0 defaults to 4 MiB.
	MaxSegBytes int64
	// NoSync skips the per-append fsync (tests and load benchmarks; the
	// durability proof runs with sync on).
	NoSync bool
	// Now overrides the lifecycle clock (tests).
	Now func() time.Time
}

// RecoveryReport summarizes what OpenQueue reconstructed from the journal.
type RecoveryReport struct {
	// Queued and Resumed count jobs recovered into the pending queue:
	// Resumed were running at the crash and will restart from their
	// checkpoints; Queued never started.
	Queued, Resumed int
	// Terminal counts completed jobs whose state (and dedupe key) was
	// retained.
	Terminal int
	// TailLosses names each journal segment whose torn tail dropped
	// records, in segment order. Losses are bounded to unacknowledged
	// appends: an acknowledged record was flushed before the client saw
	// its job ID.
	TailLosses []*TailError
}

// Queue is the durable job queue: every transition is journaled before it
// is acknowledged, and the in-memory index (jobs by ID, pending heap,
// dedupe map) is a pure function of the journal, which is what makes
// crash recovery a replay.
type Queue struct {
	mu      sync.Mutex
	wal     *wal
	jobs    map[string]*Job
	dedupe  map[string]string
	pending pendingHeap
	running int
	seq     uint64
	opts    QueueOptions
	notify  chan struct{}
	report  RecoveryReport
	closed  bool
}

// pendingHeap orders queued jobs: highest priority first, FIFO within a
// priority.
type pendingHeap []*Job

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].Seq < h[j].Seq
}
func (h pendingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *pendingHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h pendingHeap) lowest() (int, bool) {
	// The heap root is the best job; the worst is any leaf — scan.
	if len(h) == 0 {
		return 0, false
	}
	worst := 0
	for i := 1; i < len(h); i++ {
		if h[i].Spec.Priority < h[worst].Spec.Priority ||
			(h[i].Spec.Priority == h[worst].Spec.Priority && h[i].Seq > h[worst].Seq) {
			worst = i
		}
	}
	return worst, true
}

// OpenQueue opens (or creates) the durable queue under dir and recovers its
// state from the journal: queued jobs re-enter the pending heap, jobs that
// were running at the crash are re-queued with Resumed set (their artifact
// checkpoints make the rerun bit-identical), and terminal jobs — with their
// dedupe keys — are retained so no acknowledged completion ever re-runs.
func OpenQueue(dir string, opts QueueOptions) (*Queue, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 1024
	}
	if opts.KeepTerminal <= 0 {
		opts.KeepTerminal = 512
	}
	w, recs, losses, err := openWAL(dir, opts.MaxSegBytes, opts.NoSync)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		wal:    w,
		jobs:   make(map[string]*Job),
		dedupe: make(map[string]string),
		opts:   opts,
		notify: make(chan struct{}, 1),
		report: RecoveryReport{TailLosses: losses},
	}
	for _, rec := range recs {
		q.replay(rec)
	}
	// Rebuild the derived structures from the replayed job set.
	for _, j := range q.jobs {
		if j.Seq > q.seq {
			q.seq = j.Seq
		}
		if j.Spec.DedupeKey != "" {
			q.dedupe[j.Spec.DedupeKey] = j.ID
		}
		switch {
		case j.State.Terminal():
			q.report.Terminal++
		case j.State == StateRunning:
			// The worker died with the job; resume it.
			j.State = StateQueued
			j.Resumed = true
			heap.Push(&q.pending, j)
			q.report.Resumed++
		default:
			j.State = StateQueued
			heap.Push(&q.pending, j)
			q.report.Queued++
		}
	}
	return q, nil
}

// replay applies one journal record to the in-memory state (no journaling,
// no notifications — recovery only).
func (q *Queue) replay(rec walRecord) {
	switch rec.Op {
	case "snapshot":
		q.jobs = make(map[string]*Job)
	case "submit":
		if rec.Job != nil && rec.Job.ID != "" {
			j := rec.Job.clone()
			q.jobs[j.ID] = j
		}
	case "state":
		j := q.jobs[rec.ID]
		if j == nil || j.State.Terminal() {
			return // a terminal state never transitions, even on replay
		}
		j.State = rec.State
		if rec.Attempt > 0 {
			j.Attempt = rec.Attempt
		}
		if rec.Error != "" {
			j.Error = rec.Error
		}
		if rec.Result != nil {
			j.Result = rec.Result
		}
		switch rec.State {
		case StateQueued:
			j.QueuedMS = rec.TMS
		case StateRunning:
			j.StartedMS = rec.TMS
		case StateSucceeded, StateFailed, StateQuarantined, StateCanceled, StateShed:
			j.DoneMS = rec.TMS
		}
	}
}

// Recovery returns the report of the open-time journal replay.
func (q *Queue) Recovery() RecoveryReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.report
}

// SubmitResult reports what Submit did.
type SubmitResult struct {
	// Job is the accepted (or deduplicated) job snapshot.
	Job *Job
	// Deduped is true when an existing job with the same dedupe key was
	// returned instead of enqueuing a new one.
	Deduped bool
	// Shed is the lower-priority job evicted to make room, when load
	// shedding fired (nil otherwise).
	Shed *Job
}

// Submit journals and enqueues a job. The returned job ID is the
// acknowledgment: once Submit returns nil, the job survives any crash.
// A full queue either sheds the lowest-priority queued job (when the new
// job outranks it) or rejects with ErrQueueFull.
func (q *Queue) Submit(spec JobSpec) (SubmitResult, error) {
	if err := spec.Validate(); err != nil {
		return SubmitResult{}, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return SubmitResult{}, errors.New("serve: queue closed")
	}
	if spec.DedupeKey != "" {
		if id, ok := q.dedupe[spec.DedupeKey]; ok {
			if j := q.jobs[id]; j != nil {
				return SubmitResult{Job: j.clone(), Deduped: true}, nil
			}
		}
	}
	var shed *Job
	if len(q.pending) >= q.opts.MaxDepth {
		worst, ok := q.pending.lowest()
		if !ok || q.pending[worst].Spec.Priority >= spec.Priority {
			return SubmitResult{}, fmt.Errorf("%w (depth %d)", ErrQueueFull, len(q.pending))
		}
		victim := q.pending[worst]
		heap.Remove(&q.pending, worst)
		if err := q.transitionLocked(victim, StateShed, 0, "shed: queue full, preempted by higher priority", nil); err != nil {
			// Journaling the shed failed; put the victim back and refuse.
			heap.Push(&q.pending, victim)
			return SubmitResult{}, err
		}
		shed = victim.clone()
	}
	q.seq++
	now := nowMS(q.opts.Now)
	j := &Job{
		ID:          fmt.Sprintf("j%08d", q.seq),
		Spec:        spec,
		State:       StateQueued,
		Seq:         q.seq,
		SubmittedMS: now,
		QueuedMS:    now,
	}
	j.Trace = assignTrace(j)
	if err := q.wal.append(walRecord{Op: "submit", Job: j}); err != nil {
		q.seq--
		return SubmitResult{}, err
	}
	q.jobs[j.ID] = j
	if spec.DedupeKey != "" {
		q.dedupe[spec.DedupeKey] = j.ID
	}
	heap.Push(&q.pending, j)
	q.maybeRotateLocked()
	q.wake()
	return SubmitResult{Job: j.clone(), Shed: shed}, nil
}

// wake nudges one Claim waiter without blocking (callers hold the lock).
func (q *Queue) wake() {
	if q.closed {
		return
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Claim blocks until a queued job is available (or ctx ends), marks it
// running, journals the transition and returns a snapshot for the worker.
func (q *Queue) Claim(ctx context.Context) (*Job, error) {
	for {
		// A dead context never claims: a draining worker that just re-queued
		// its job must not immediately claim it back.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, errors.New("serve: queue closed")
		}
		if len(q.pending) > 0 {
			j := heap.Pop(&q.pending).(*Job)
			if err := q.transitionLocked(j, StateRunning, j.Attempt+1, "", nil); err != nil {
				heap.Push(&q.pending, j)
				q.mu.Unlock()
				return nil, err
			}
			q.running++
			snap := j.clone()
			if len(q.pending) > 0 {
				q.wake() // more work: pass the baton to the next waiter
			}
			q.mu.Unlock()
			return snap, nil
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-q.notify:
		}
	}
}

// transitionLocked journals and applies one state transition. Attempt 0
// leaves the attempt count unchanged.
func (q *Queue) transitionLocked(j *Job, to JobState, attempt int, errMsg string, result []byte) error {
	rec := walRecord{Op: "state", ID: j.ID, State: to, Attempt: attempt, Error: errMsg, Result: result, TMS: nowMS(q.opts.Now)}
	if err := q.wal.append(rec); err != nil {
		return err
	}
	j.State = to
	if attempt > 0 {
		j.Attempt = attempt
	}
	if errMsg != "" {
		j.Error = errMsg
	}
	if result != nil {
		j.Result = result
	}
	switch to {
	case StateQueued:
		j.QueuedMS = rec.TMS
	case StateRunning:
		j.StartedMS = rec.TMS
	case StateSucceeded, StateFailed, StateQuarantined, StateCanceled, StateShed:
		j.DoneMS = rec.TMS
	}
	return nil
}

// finish moves a running job to a terminal state.
func (q *Queue) finish(id string, to JobState, errMsg string, result []byte) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return nil, ErrUnknownJob
	}
	if j.State.Terminal() {
		return j.clone(), nil // idempotent: replays and races settle on the first terminal
	}
	wasRunning := j.State == StateRunning
	if err := q.transitionLocked(j, to, 0, errMsg, result); err != nil {
		return nil, err
	}
	if wasRunning {
		q.running--
	}
	q.maybeRotateLocked()
	return j.clone(), nil
}

// Complete marks a running job succeeded with its result document.
func (q *Queue) Complete(id string, result []byte) (*Job, error) {
	return q.finish(id, StateSucceeded, "", result)
}

// Fail marks a job failed (retries exhausted or permanent error).
func (q *Queue) Fail(id, errMsg string) (*Job, error) {
	return q.finish(id, StateFailed, errMsg, nil)
}

// Quarantine marks a job poisoned; the worker moves its artifacts to the
// dead-letter directory.
func (q *Queue) Quarantine(id, errMsg string) (*Job, error) {
	return q.finish(id, StateQuarantined, errMsg, nil)
}

// Cancel terminates a queued or running job. A running job's worker
// observes the cancellation through its context; the state is final either
// way.
func (q *Queue) Cancel(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return nil, ErrUnknownJob
	}
	if j.State.Terminal() {
		return nil, ErrNotCancelable
	}
	wasRunning := j.State == StateRunning
	if j.State == StateQueued {
		for i, p := range q.pending {
			if p.ID == id {
				heap.Remove(&q.pending, i)
				break
			}
		}
	}
	if err := q.transitionLocked(j, StateCanceled, 0, "canceled by client", nil); err != nil {
		return nil, err
	}
	if wasRunning {
		q.running--
	}
	return j.clone(), nil
}

// Requeue returns a running job to the pending queue (graceful worker
// shutdown): the next claim resumes it from its checkpoints.
func (q *Queue) Requeue(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return ErrUnknownJob
	}
	if j.State != StateRunning {
		return nil
	}
	j.Resumed = true
	if err := q.transitionLocked(j, StateQueued, 0, "", nil); err != nil {
		return err
	}
	q.running--
	heap.Push(&q.pending, j)
	q.wake()
	return nil
}

// Get returns a snapshot of the job, or ErrUnknownJob.
func (q *Queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return nil, ErrUnknownJob
	}
	return j.clone(), nil
}

// List snapshots every retained job, optionally filtered by tenant, newest
// submission first.
func (q *Queue) List(tenant string) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		if tenant != "" && j.Spec.tenant() != tenant {
			continue
		}
		out = append(out, j.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq > out[k].Seq })
	return out
}

// Depth returns the queued (not running) job count.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// RunningCount returns the jobs currently claimed by workers.
func (q *Queue) RunningCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}

// OldestQueuedMS returns the queue-entry timestamp of the longest-waiting
// pending job (unix milliseconds), or 0 when nothing is queued. The metrics
// plane turns it into the jobs.queue.oldest_age_ms gauge — the first signal
// of backlog growth, visible well before load shedding fires.
func (q *Queue) OldestQueuedMS() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var oldest int64
	for _, j := range q.pending {
		at := j.QueuedMS
		if at == 0 {
			at = j.SubmittedMS // jobs journaled before QueuedMS existed
		}
		if at != 0 && (oldest == 0 || at < oldest) {
			oldest = at
		}
	}
	return oldest
}

// InFlight counts a tenant's non-terminal jobs (queued + running), the
// quantity the admission concurrent-job quota bounds.
func (q *Queue) InFlight(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, j := range q.jobs {
		if !j.State.Terminal() && j.Spec.tenant() == tenant {
			n++
		}
	}
	return n
}

// maybeRotateLocked compacts the journal when the active segment outgrew
// its cap: live jobs plus the most recent KeepTerminal terminal jobs are
// snapshotted; older terminal jobs (and their dedupe keys) age out.
func (q *Queue) maybeRotateLocked() {
	if !q.wal.shouldRotate() {
		return
	}
	var live, terminal []*Job
	for _, j := range q.jobs {
		if j.State.Terminal() {
			terminal = append(terminal, j)
		} else {
			live = append(live, j)
		}
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].Seq > terminal[k].Seq })
	if len(terminal) > q.opts.KeepTerminal {
		for _, j := range terminal[q.opts.KeepTerminal:] {
			delete(q.jobs, j.ID)
			if j.Spec.DedupeKey != "" && q.dedupe[j.Spec.DedupeKey] == j.ID {
				delete(q.dedupe, j.Spec.DedupeKey)
			}
		}
		terminal = terminal[:q.opts.KeepTerminal]
	}
	keep := append(live, terminal...)
	sort.Slice(keep, func(i, k int) bool { return keep[i].Seq < keep[k].Seq })
	_ = q.wal.rotate(keep) // best effort: rotation failure never loses state
}

// Close flushes and closes the journal. Pending and running jobs stay
// durable; a later OpenQueue resumes them.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	close(q.notify)
	return q.wal.close()
}
