package serve

import (
	"math"
	"sort"

	"gnsslna/internal/obs"
)

// TenantSLO is one tenant's service-level standing, computed on demand from
// the metrics registry (refreshed before every /metrics and /healthz
// response, so scrapes always see current burn rates without a background
// goroutine). Burn rates read as "fraction of the budget consumed": 1.0 is
// exactly on target, above 1.0 the SLO is burning.
type TenantSLO struct {
	// Tenant names the tenant the objectives belong to.
	Tenant string `json:"tenant"`
	// OK is true while every configured objective is within target (an SLO
	// with no samples yet is vacuously OK).
	OK bool `json:"ok"`
	// Samples counts the terminal jobs the latency histogram has seen.
	Samples int64 `json:"samples"`
	// P99MS / TargetP99MS / P99Burn describe the latency objective
	// (all zero when the tenant has no latency SLO or no samples).
	P99MS       float64 `json:"p99_ms"`
	TargetP99MS float64 `json:"target_p99_ms,omitempty"`
	P99Burn     float64 `json:"p99_burn"`
	// ErrorRate / TargetErrorRate / ErrorBurn describe the error objective:
	// failed+quarantined over terminal outcomes.
	ErrorRate       float64 `json:"error_rate"`
	TargetErrorRate float64 `json:"target_error_rate,omitempty"`
	ErrorBurn       float64 `json:"error_burn"`
}

// sloPlane evaluates the configured tenant SLOs against the live registry
// and lands the results as gauges:
//
//	jobs.slo.p99_ms.<tenant>      observed p99 end-to-end latency
//	jobs.slo.p99_burn.<tenant>    observed p99 / target p99
//	jobs.slo.error_rate.<tenant>  failed+quarantined / terminal
//	jobs.slo.error_burn.<tenant>  observed rate / target rate
//	jobs.slo.ok.<tenant>          1 while every objective holds, else 0
type sloPlane struct {
	reg     *obs.Registry
	targets map[string]TenantPolicy
}

// newSLOPlane collects the tenants that define SLOs. The default policy,
// when it defines one, applies to the "default" tenant (the bucket jobs
// without an explicit tenant land in).
func newSLOPlane(reg *obs.Registry, tenants map[string]TenantPolicy, def TenantPolicy) *sloPlane {
	targets := make(map[string]TenantPolicy)
	for name, p := range tenants {
		if p.HasSLO() {
			targets[name] = p
		}
	}
	if def.HasSLO() {
		if _, ok := targets["default"]; !ok {
			targets["default"] = def
		}
	}
	if reg == nil || len(targets) == 0 {
		return nil
	}
	return &sloPlane{reg: reg, targets: targets}
}

// refresh recomputes every tenant's standing and updates the gauges. It
// returns the standings sorted by tenant name (the /healthz "slo" array).
// A nil plane returns nil.
func (s *sloPlane) refresh() []TenantSLO {
	if s == nil {
		return nil
	}
	out := make([]TenantSLO, 0, len(s.targets))
	for tenant, p := range s.targets {
		st := TenantSLO{
			Tenant:          tenant,
			OK:              true,
			TargetP99MS:     p.SLOTargetP99MS,
			TargetErrorRate: p.SLOErrorRate,
		}
		h := s.reg.Histogram("jobs.latency_ms." + tenant)
		st.Samples = h.Snapshot().Count
		if st.Samples > 0 {
			if p99 := h.Quantile(0.99); !math.IsNaN(p99) {
				st.P99MS = p99
			}
		}
		if p.SLOTargetP99MS > 0 && st.Samples > 0 {
			st.P99Burn = st.P99MS / p.SLOTargetP99MS
			if st.P99Burn > 1 {
				st.OK = false
			}
		}
		errs := s.reg.Counter("jobs.failed."+tenant).Value() +
			s.reg.Counter("jobs.quarantined."+tenant).Value()
		total := errs + s.reg.Counter("jobs.succeeded."+tenant).Value() +
			s.reg.Counter("jobs.canceled."+tenant).Value()
		if total > 0 {
			st.ErrorRate = float64(errs) / float64(total)
		}
		if p.SLOErrorRate > 0 && total > 0 {
			st.ErrorBurn = st.ErrorRate / p.SLOErrorRate
			if st.ErrorBurn > 1 {
				st.OK = false
			}
		}
		s.reg.Gauge("jobs.slo.p99_ms." + tenant).Set(st.P99MS)
		s.reg.Gauge("jobs.slo.p99_burn." + tenant).Set(st.P99Burn)
		s.reg.Gauge("jobs.slo.error_rate." + tenant).Set(st.ErrorRate)
		s.reg.Gauge("jobs.slo.error_burn." + tenant).Set(st.ErrorBurn)
		ok := 1.0
		if !st.OK {
			ok = 0
		}
		s.reg.Gauge("jobs.slo.ok." + tenant).Set(ok)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
