package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gnsslna/internal/obs"
)

// newTestServer builds a Server over a fake runner and an httptest frontend.
func newTestServer(t *testing.T, o Options, runner Runner) (*Server, *httptest.Server) {
	t.Helper()
	if o.Dir == "" {
		o.Dir = t.TempDir()
	}
	o.Queue.NoSync = true
	if runner != nil {
		o.Runner = runner
	}
	s, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func echoRunner(doc string) Runner {
	return RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		return json.RawMessage(doc), nil
	})
}

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, *Job) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var j Job
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &j)
	return resp, &j
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, data, err)
		}
	}
	return resp
}

func TestServerSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2}, echoRunner(`{"gamma":-0.2}`))

	resp, j := postJob(t, ts.URL, quickSpec("acme"))
	if resp.StatusCode != http.StatusAccepted || j.ID == "" {
		t.Fatalf("submit: status=%d job=%+v, want 202", resp.StatusCode, j)
	}

	deadline := time.Now().Add(10 * time.Second)
	var cur Job
	for {
		getJSON(t, ts.URL+"/jobs/"+j.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cur.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded", cur.State, cur.Error)
	}

	var result map[string]float64
	rr := getJSON(t, ts.URL+"/jobs/"+j.ID+"/result", &result)
	if rr.StatusCode != http.StatusOK || result["gamma"] != -0.2 {
		t.Fatalf("result: status=%d body=%v", rr.StatusCode, result)
	}

	// The listing shows the job under its tenant.
	var list []Job
	getJSON(t, ts.URL+"/jobs?tenant=acme", &list)
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("tenant listing = %+v", list)
	}
}

func TestServerResultConflictBeforeDone(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	_, ts := newTestServer(t, Options{Workers: 1}, runner)
	_, j := postJob(t, ts.URL, quickSpec("a"))
	resp := getJSON(t, ts.URL+"/jobs/"+j.ID+"/result", &struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of unfinished job: status=%d, want 409", resp.StatusCode)
	}
}

func TestServerDedupeReturns200(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1}, echoRunner(`{}`))
	spec := quickSpec("a")
	spec.DedupeKey = "design-42"
	r1, j1 := postJob(t, ts.URL, spec)
	r2, j2 := postJob(t, ts.URL, spec)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	if r2.StatusCode != http.StatusOK || j2.ID != j1.ID {
		t.Fatalf("dup submit: status=%d id=%s, want 200 with id %s", r2.StatusCode, j2.ID, j1.ID)
	}
}

func TestServerRateQuota429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Tenants: map[string]TenantPolicy{
			"greedy": {RatePerSec: 0.5, Burst: 1},
		},
	}, echoRunner(`{}`))

	r1, _ := postJob(t, ts.URL, quickSpec("greedy"))
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	r2, _ := postJob(t, ts.URL, quickSpec("greedy"))
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", r2.StatusCode)
	}
	if ra := r2.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive horizon", ra)
	}

	// Another tenant sails through: quota exhaustion is isolated.
	r3, _ := postJob(t, ts.URL, quickSpec("patient"))
	if r3.StatusCode != http.StatusAccepted {
		t.Fatalf("unaffected tenant: %d, want 202", r3.StatusCode)
	}
}

func TestServerQueueFull503AndPrioritySheds(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	_, ts := newTestServer(t, Options{Workers: 1, Queue: QueueOptions{MaxDepth: 1}}, runner)

	postJob(t, ts.URL, quickSpec("a")) // claimed by the blocked worker
	time.Sleep(20 * time.Millisecond)
	r2, victim := postJob(t, ts.URL, quickSpec("a")) // fills the single queue slot
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("fill submit: %d", r2.StatusCode)
	}

	r3, _ := postJob(t, ts.URL, quickSpec("a"))
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("equal-priority on full queue: %d, want 503", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	urgent := quickSpec("a")
	urgent.Priority = 9
	r4, j4 := postJob(t, ts.URL, urgent)
	if r4.StatusCode != http.StatusAccepted {
		t.Fatalf("priority submit on full queue: %d, want 202 via shedding", r4.StatusCode)
	}
	var shed Job
	getJSON(t, ts.URL+"/jobs/"+victim.ID, &shed)
	if shed.State != StateShed {
		t.Fatalf("victim state = %s, want shed", shed.State)
	}
	var kept Job
	getJSON(t, ts.URL+"/jobs/"+j4.ID, &kept)
	if kept.State.Terminal() {
		t.Fatalf("urgent job unexpectedly terminal: %s", kept.State)
	}
}

func TestServerCancelEndpoint(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t, Options{Workers: 1}, runner)
	_, j := postJob(t, ts.URL, quickSpec("a"))

	resp, err := http.Post(ts.URL+"/jobs/"+j.ID+"/cancel", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status=%v err=%v", resp.Status, err)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/jobs/"+j.ID+"/cancel", "application/json", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestServerBadSpec400(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1}, echoRunner(`{}`))
	resp, _ := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"type":"mine-bitcoin"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-JSON body: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestServerHealthzDegradesToDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1}, echoRunner(`{}`))

	var h healthPayload
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || !h.OK || h.State != "ready" {
		t.Fatalf("healthz before drain: status=%d payload=%+v", resp.StatusCode, h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	resp = getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusServiceUnavailable || h.OK || h.State != "draining" {
		t.Fatalf("healthz during drain: status=%d payload=%+v, want 503 draining", resp.StatusCode, h)
	}

	// New submissions are refused while draining.
	body, _ := json.Marshal(quickSpec("a"))
	sr, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST while draining: %v", err)
	}
	defer sr.Body.Close()
	if sr.StatusCode != http.StatusServiceUnavailable || sr.Header.Get("Retry-After") == "" {
		t.Fatalf("submit while draining: status=%d Retry-After=%q, want 503 with horizon", sr.StatusCode, sr.Header.Get("Retry-After"))
	}
}

func TestServerMetricsExported(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1}, echoRunner(`{}`))
	_, j := postJob(t, ts.URL, quickSpec("acme"))

	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur Job
		getJSON(t, ts.URL+"/jobs/"+j.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"gnsslna_jobs_submitted_acme",
		"gnsslna_jobs_succeeded_acme",
		"gnsslna_jobs_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}

func TestServerRecoversQueueAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})

	s1, err := New(Options{Dir: dir, Workers: 1, Runner: runner, Queue: QueueOptions{NoSync: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s1.Start()
	var ids []string
	for i := 0; i < 5; i++ {
		res, err := s1.Queue().Submit(JobSpec{Type: TypeDesign, Quick: true, DedupeKey: fmt.Sprintf("k%d", i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, res.Job.ID)
	}
	time.Sleep(30 * time.Millisecond) // let the single worker claim one
	// Crash: close the journal handle without draining.
	s1.Queue().wal.f.Close()
	close(block)

	s2, err := New(Options{Dir: dir, Workers: 1, Runner: echoRunner(`{}`), Queue: QueueOptions{NoSync: true}})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	rep := s2.Queue().Recovery()
	if rep.Queued+rep.Resumed != 5 {
		t.Fatalf("recovered %d queued + %d resumed, want all 5 acknowledged jobs", rep.Queued, rep.Resumed)
	}
	if rep.Resumed != 1 {
		t.Fatalf("resumed = %d, want exactly the claimed job", rep.Resumed)
	}
	s2.Start()
	for _, id := range ids {
		deadline := time.Now().Add(10 * time.Second)
		for {
			j, err := s2.Queue().Get(id)
			if err != nil {
				t.Fatalf("Get %s: %v", id, err)
			}
			if j.State.Terminal() {
				if j.State != StateSucceeded {
					t.Fatalf("job %s = %s (%s), want succeeded", id, j.State, j.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished after restart", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
