package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// Runner executes one claimed job attempt. dir is the job's artifact
// directory; implementations persist their resilience checkpoints there so
// a crashed or canceled attempt resumes bit-identically. A transient error
// (resilience.Transient / IsTransient) is retried with backoff; any other
// error fails the job permanently; a panic counts toward quarantine.
type Runner interface {
	Run(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
	return f(ctx, job, dir, o)
}

// FleetOptions configures the worker fleet.
type FleetOptions struct {
	// Workers is the claim-loop goroutine count (minimum 1).
	Workers int
	// Retry is the per-job retry policy; zero value means one attempt.
	Retry resilience.RetryPolicy
	// MaxPanics quarantines a job after this many panicking attempts
	// (0 defaults to 1: one panic is poison unless configured otherwise).
	MaxPanics int
	// DefaultTimeout bounds a job attempt when the spec carries none
	// (0: 5 minutes).
	DefaultTimeout time.Duration
	// Observer receives the durable job-trace events (nil: disabled). It
	// must be a raw sink (hub, broadcaster, a Multi of both): the fleet
	// stamps each event with the job's own persisted trace identity, so a
	// Traced wrapper here would overwrite it.
	Observer obs.Observer
	// Metrics receives fleet counters (nil: disabled).
	Metrics *Metrics
}

// Fleet is the worker pool draining the queue: each worker claims a job,
// opens its job span, runs it under the retry policy with its own
// RunController-backed context, and lands it in a terminal state. Workers
// hold no state a crash could lose — every transition they make is
// journaled by the queue first.
type Fleet struct {
	q      *Queue
	store  *Store
	runner Runner
	opts   FleetOptions
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	running map[string]context.CancelFunc
}

// NewFleet assembles a fleet over the queue, store and runner.
func NewFleet(q *Queue, store *Store, runner Runner, opts FleetOptions) *Fleet {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxPanics < 1 {
		opts.MaxPanics = 1
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = 5 * time.Minute
	}
	return &Fleet{q: q, store: store, runner: runner, opts: opts, running: make(map[string]context.CancelFunc)}
}

// Start launches the claim loops.
func (f *Fleet) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	for i := 1; i <= f.opts.Workers; i++ {
		f.wg.Add(1)
		go func(worker int) {
			defer f.wg.Done()
			for {
				job, err := f.q.Claim(ctx)
				if err != nil {
					return // fleet stopping or queue closed
				}
				f.execute(ctx, job, worker)
			}
		}(i)
	}
}

// Stop drains the fleet: claim loops stop, in-flight jobs are canceled
// cooperatively (their solvers return best-so-far and checkpoint), and each
// interrupted job is re-queued so a later start resumes it. Bounded by ctx.
func (f *Fleet) Stop(ctx context.Context) {
	if f.cancel != nil {
		f.cancel()
	}
	done := make(chan struct{})
	go func() { f.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// CancelJob cancels a running job's attempt context (client-driven cancel).
func (f *Fleet) CancelJob(id string) {
	f.mu.Lock()
	cancel := f.running[id]
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// execute runs one claimed job to a terminal state (or re-queues it on
// fleet shutdown). Every phase lands in the job's durable trace: the queue
// wait as a child span, each retry attempt as a sibling span the runner's
// solver spans nest under, the scheduled backoff between attempts as samples,
// and the root span-end when the job goes terminal.
func (f *Fleet) execute(fleetCtx context.Context, job *Job, worker int) {
	m := f.opts.Metrics
	tenant := job.Spec.tenant()
	queuedAt := job.QueuedMS
	if queuedAt == 0 {
		queuedAt = job.SubmittedMS
	}
	queueWait := float64(nowMS(f.q.opts.Now) - queuedAt)
	if queueWait < 0 {
		queueWait = 0
	}
	m.observeQueueWait(tenant, queueWait)
	m.observeQueue(f.q, f.store)

	trace := newJobTrace(f.opts.Observer, job)
	trace.waitSpan(queueWait)

	timeout := f.opts.DefaultTimeout
	if job.Spec.TimeoutMS > 0 {
		timeout = time.Duration(job.Spec.TimeoutMS) * time.Millisecond
	}
	jobCtx, cancel := context.WithTimeout(fleetCtx, timeout)
	f.mu.Lock()
	f.running[job.ID] = cancel
	f.mu.Unlock()
	defer func() {
		cancel()
		f.mu.Lock()
		delete(f.running, job.ID)
		f.mu.Unlock()
		m.observeQueue(f.q, f.store)
	}()

	dir, err := f.store.JobDir(job.ID)
	if err != nil {
		done, _ := f.q.Fail(job.ID, err.Error())
		emitJobDone(f.opts.Observer, done)
		m.inc("jobs.failed", tenant)
		return
	}

	var result json.RawMessage
	panics := 0
	retry := f.opts.Retry
	retry.Backoff.Seed = resilience.JitterSeed(job.Spec.Seed, int(job.Seq))
	// Record the exact (deterministic) backoff the policy is about to sleep,
	// then delegate to the caller's sleep (or the default timer).
	innerSleep := retry.Sleep
	retry.Sleep = func(ctx context.Context, d time.Duration) {
		trace.backoff(d)
		if innerSleep != nil {
			innerSleep(ctx, d)
			return
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-t.C:
		}
	}
	runErr := retry.Do(jobCtx, func(attempt int) (err error) {
		span, endSpan := trace.attempt(attempt)
		defer func() {
			if r := recover(); r != nil {
				panics++
				trace.fault("serve.job." + job.ID)
				if panics >= f.opts.MaxPanics {
					err = &poisonError{msg: fmt.Sprintf("panic in attempt %d: %v", attempt, r)}
				} else {
					err = resilience.Transient(fmt.Errorf("panic in attempt %d: %v", attempt, r))
				}
			}
			endSpan(0)
		}()
		m.inc("jobs.attempts", tenant)
		if attempt > 1 {
			m.inc("jobs.retried", tenant)
		}
		result, err = f.runner.Run(jobCtx, job, dir, span)
		return err
	})

	var done *Job
	switch {
	case runErr == nil:
		if result == nil {
			result = json.RawMessage(`{}`)
		}
		if err := f.store.WriteResult(job.ID, result); err != nil {
			done, _ = f.q.Fail(job.ID, err.Error())
			emitJobDone(f.opts.Observer, done)
			m.inc("jobs.failed", tenant)
			return
		}
		done, _ = f.q.Complete(job.ID, result)
		m.inc("jobs.succeeded", tenant)
	case isPoison(runErr):
		done, _ = f.q.Quarantine(job.ID, runErr.Error())
		_ = f.store.Quarantine(job.ID, runErr.Error())
		m.inc("jobs.quarantined", tenant)
	case fleetCtx.Err() != nil:
		// Fleet shutdown (not the job's own deadline): park the job for the
		// next start; its checkpoints carry the completed stages and the open
		// root span waits for the process that finishes it.
		_ = f.q.Requeue(job.ID)
		m.inc("jobs.requeued", tenant)
		return
	default:
		if cur, err := f.q.Get(job.ID); err == nil && cur.State.Terminal() {
			// A client cancel raced us to a terminal state; the queue's
			// first-terminal-wins rule already settled it (and the cancel
			// handler closed the trace).
			return
		}
		done, _ = f.q.Fail(job.ID, runErr.Error())
		m.inc("jobs.failed", tenant)
	}
	emitJobDone(f.opts.Observer, done)
	if done != nil {
		m.observeLatency(tenant, float64(done.DoneMS-done.SubmittedMS))
	}
}

// poisonError short-circuits the retry loop (Classify and IsTransient both
// reject it) and routes the job to quarantine rather than plain failure.
type poisonError struct{ msg string }

func (p *poisonError) Error() string { return "poisoned: " + p.msg }

func isPoison(err error) bool {
	for err != nil {
		if _, ok := err.(*poisonError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
