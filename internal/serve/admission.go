package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// TenantPolicy is one tenant's admission contract.
type TenantPolicy struct {
	// RatePerSec refills the tenant's token bucket (jobs per second).
	// Zero or negative disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity (minimum 1 when rate limiting is on).
	Burst float64 `json:"burst"`
	// MaxInFlight bounds the tenant's queued+running jobs (0: unlimited).
	MaxInFlight int `json:"max_in_flight"`
	// MaxEvalsPerJob caps the evaluation budget any single job may request;
	// admission clamps the spec's MaxEvals onto it, and the clamped value
	// becomes the job's RunController budget (0: server default applies).
	MaxEvalsPerJob int64 `json:"max_evals_per_job"`
	// SLOTargetP99MS is the tenant's target p99 end-to-end job latency in
	// milliseconds. When set, the server exposes the observed p99 and the
	// burn rate observed/target as jobs.slo.* gauges on /metrics and in the
	// /healthz document (0: no latency SLO for the tenant).
	SLOTargetP99MS float64 `json:"slo_p99_ms,omitempty"`
	// SLOErrorRate is the tenant's error-rate budget — the tolerated
	// fraction of terminal jobs landing failed or quarantined. When set, the
	// observed rate and its burn rate are exposed alongside the latency SLO
	// (0: no error-rate SLO).
	SLOErrorRate float64 `json:"slo_error_rate,omitempty"`
}

// HasSLO reports whether the policy defines any service-level objective.
func (p TenantPolicy) HasSLO() bool {
	return p.SLOTargetP99MS > 0 || p.SLOErrorRate > 0
}

// OverQuota is the admission rejection: the HTTP layer maps it to
// 429 Too Many Requests with a Retry-After header.
type OverQuota struct {
	// Tenant is the rejected tenant.
	Tenant string
	// Quota names the exhausted quota ("rate" or "in-flight").
	Quota string
	// RetryAfter estimates when the tenant will be admitted again.
	RetryAfter time.Duration
}

// Error implements error.
func (o *OverQuota) Error() string {
	return fmt.Sprintf("serve: tenant %q over %s quota (retry after %s)", o.Tenant, o.Quota, o.RetryAfter)
}

// AsOverQuota unwraps err to an *OverQuota, if one is in the chain.
func AsOverQuota(err error) (*OverQuota, bool) {
	var o *OverQuota
	if errors.As(err, &o) {
		return o, true
	}
	return nil, false
}

// Admission is the per-tenant gate in front of the queue: a token bucket
// bounds each tenant's submission rate, an in-flight quota bounds its
// standing load, and the per-job evaluation cap maps tenant fairness onto
// the RunController budget every job runs under. All methods are safe for
// concurrent use.
type Admission struct {
	mu       sync.Mutex
	policies map[string]TenantPolicy
	def      TenantPolicy
	buckets  map[string]*bucket
	inflight func(tenant string) int
	now      func() time.Time
}

// bucket is a standard token bucket with a monotonic-enough clock guard:
// a backwards clock jump (skew, NTP step) freezes refill instead of
// granting a negative or unbounded token delta.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds the gate. policies maps tenant name to policy; def
// applies to tenants not in the map. inflight reports a tenant's current
// queued+running jobs (the queue's InFlight method); nil disables the
// in-flight quota.
func NewAdmission(policies map[string]TenantPolicy, def TenantPolicy, inflight func(string) int, now func() time.Time) *Admission {
	if now == nil {
		now = time.Now
	}
	cp := make(map[string]TenantPolicy, len(policies))
	for k, v := range policies {
		cp[k] = v
	}
	return &Admission{
		policies: cp,
		def:      def,
		buckets:  make(map[string]*bucket),
		inflight: inflight,
		now:      now,
	}
}

// Policy returns the effective policy for a tenant.
func (a *Admission) Policy(tenant string) TenantPolicy {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.policyLocked(tenant)
}

func (a *Admission) policyLocked(tenant string) TenantPolicy {
	if p, ok := a.policies[tenant]; ok {
		return p
	}
	return a.def
}

// Admit charges one job against the tenant's quotas and clamps the spec's
// budgets onto the tenant policy. On rejection it returns an *OverQuota
// carrying the retry horizon; the spec is unmodified.
func (a *Admission) Admit(spec *JobSpec) error {
	tenant := spec.tenant()
	a.mu.Lock()
	p := a.policyLocked(tenant)

	// In-flight quota first: it is cheaper to check and rejecting on it
	// must not consume a rate token.
	if p.MaxInFlight > 0 && a.inflight != nil {
		// The queue lock is never held while Admission runs (the server
		// admits before submitting), so calling out under a.mu is safe.
		if n := a.inflight(tenant); n >= p.MaxInFlight {
			a.mu.Unlock()
			return &OverQuota{Tenant: tenant, Quota: "in-flight", RetryAfter: time.Second}
		}
	}

	if p.RatePerSec > 0 {
		burst := math.Max(p.Burst, 1)
		b := a.buckets[tenant]
		now := a.now()
		if b == nil {
			b = &bucket{tokens: burst, last: now}
			a.buckets[tenant] = b
		} else {
			dt := now.Sub(b.last).Seconds()
			if dt > 0 {
				b.tokens = math.Min(burst, b.tokens+dt*p.RatePerSec)
			}
			// dt <= 0: a skewed clock stepped backwards; hold tokens and
			// re-anchor so refill resumes from the new time base.
			b.last = now
		}
		if b.tokens < 1 {
			need := (1 - b.tokens) / p.RatePerSec
			a.mu.Unlock()
			return &OverQuota{
				Tenant:     tenant,
				Quota:      "rate",
				RetryAfter: time.Duration(math.Ceil(need*1000)) * time.Millisecond,
			}
		}
		b.tokens--
	}
	a.mu.Unlock()

	// Map the tenant's evaluation budget onto the job's RunController.
	if p.MaxEvalsPerJob > 0 && (spec.MaxEvals == 0 || spec.MaxEvals > p.MaxEvalsPerJob) {
		spec.MaxEvals = p.MaxEvalsPerJob
	}
	return nil
}
