package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/obs/replay"
)

// TestServdTraceChaosChild is not a test: it is process 1 of the
// trace-continuity chaos proof. It serves over SERVD_TRACE_CHAOS_DIR with a
// journal anchored by an epoch record, submits jobs through the HTTP handler
// (so the root span-begin is journaled exactly as production would), prints
// each job's acknowledged ID and durable trace ID, and idles mid-burn until
// the parent SIGKILLs it.
func TestServdTraceChaosChild(t *testing.T) {
	if os.Getenv("SERVD_TRACE_CHAOS_CHILD") != "1" {
		t.Skip("helper process for TestChaosTraceContinuityAcrossSIGKILL")
	}
	dir := os.Getenv("SERVD_TRACE_CHAOS_DIR")
	j, err := obs.OpenJournal(filepath.Join(dir, "journal1.jsonl"))
	if err != nil {
		fmt.Printf("CHILD-ERROR %v\n", err)
		os.Exit(1)
	}
	if err := j.AppendEpoch(); err != nil {
		fmt.Printf("CHILD-ERROR %v\n", err)
		os.Exit(1)
	}
	slow := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		span, end := obs.StartSpan(o, "solver.chaos")
		_ = span
		defer end(1)
		select {
		case <-time.After(400 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return json.RawMessage(`{}`), nil
	})
	s, err := New(Options{
		Dir:      filepath.Join(dir, "data"),
		Workers:  2,
		Runner:   slow,
		Observer: obs.NewHub(nil, j),
	})
	if err != nil {
		fmt.Printf("CHILD-ERROR %v\n", err)
		os.Exit(1)
	}
	s.Start()
	h := s.Handler()
	for i := 0; i < 4; i++ {
		body, _ := json.Marshal(JobSpec{
			Type: TypeDesign, Tenant: "chaos", Quick: true, Seed: int64(i + 1),
			DedupeKey: fmt.Sprintf("trace-chaos-%d", i),
		})
		req := httptest.NewRequest("POST", "/jobs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var job Job
		if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil || job.ID == "" || job.Trace == 0 {
			fmt.Printf("CHILD-ERROR submit %d: status %d body %s\n", i, rec.Code, rec.Body.String())
			os.Exit(1)
		}
		fmt.Printf("ACK %s %d\n", job.ID, job.Trace)
	}
	fmt.Println("READY")
	time.Sleep(time.Hour) // the parent SIGKILLs us long before this
}

// loadChaosJournal parses a journal tolerating the torn tail a SIGKILL
// mid-append leaves behind.
func loadChaosJournal(t *testing.T, path string) *replay.Run {
	t.Helper()
	r, err := replay.ParseFile(path)
	if err != nil {
		if _, ok := replay.AsTailError(err); ok && r != nil {
			return r
		}
		t.Fatalf("parse %s: %v", path, err)
	}
	return r
}

// TestChaosTraceContinuityAcrossSIGKILL is the trace-durability proof behind
// the durable job traces: jobs are submitted to a server, the process is
// SIGKILLed mid-attempt, a fresh process over the same data directory
// finishes the work into a second journal — and merging the two journals
// must reconstruct exactly one causal trace per job, rooted at the submit,
// with the killed process's attempt and the restart's attempt as distinct
// sibling spans under the same root.
func TestChaosTraceContinuityAcrossSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos proof skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestServdTraceChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(), "SERVD_TRACE_CHAOS_CHILD=1", "SERVD_TRACE_CHAOS_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	defer cmd.Process.Kill()

	traces := map[string]uint64{} // job ID -> durable trace ID
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "ACK "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				t.Fatalf("bad ACK line %q", line)
			}
			id, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil || id == 0 {
				t.Fatalf("bad trace in ACK line %q", line)
			}
			traces[fields[1]] = id
		case strings.HasPrefix(line, "CHILD-ERROR"):
			t.Fatalf("child failed: %s", line)
		case line == "READY":
			ready = true
		}
		if ready {
			break
		}
	}
	if !ready || len(traces) != 4 {
		t.Fatalf("child acknowledged %d traced jobs (ready=%v), want 4", len(traces), ready)
	}

	// Kill only once an attempt span has hit journal 1, so at least one job
	// is mid-attempt — its trace must span both processes.
	journal1 := filepath.Join(dir, "journal1.jsonl")
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, _ := os.ReadFile(journal1)
		if strings.Contains(string(data), scopeJobAttempt) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no attempt span reached journal1 before the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	// Process 2: a fresh server over the same queue, journaling to its own
	// epoch-anchored file, drains everything the child acknowledged.
	j2, err := obs.OpenJournal(filepath.Join(dir, "journal2.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendEpoch(); err != nil {
		t.Fatal(err)
	}
	quick := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	s, err := New(Options{
		Dir:      filepath.Join(dir, "data"),
		Workers:  2,
		Runner:   quick,
		Observer: obs.NewHub(nil, j2),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for id := range traces {
		waitTerminal(t, s.Queue(), id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Stitch the two process journals and reconstruct: one tree per job.
	merged := replay.Merge(
		loadChaosJournal(t, journal1),
		loadChaosJournal(t, filepath.Join(dir, "journal2.jsonl")),
	)
	trees := map[uint64]*replay.TraceTree{}
	for _, tree := range replay.BuildTraces(merged) {
		trees[tree.TraceID] = tree
	}
	crossProcess := 0
	for id, trace := range traces {
		tree := trees[trace]
		if tree == nil {
			t.Fatalf("job %s: no reconstructed trace %d", id, trace)
		}
		if len(tree.Roots) != 1 {
			t.Fatalf("job %s: %d roots, want one causal trace", id, len(tree.Roots))
		}
		root := tree.Roots[0]
		if root.Scope != "job.design.chaos" || root.ID != 1 {
			t.Fatalf("job %s: root = %q span %d", id, root.Scope, root.ID)
		}
		claims := map[uint64]bool{}
		attempts := map[uint64]bool{}
		for _, c := range root.Children {
			if c.Scope == scopeJobAttempt {
				attempts[c.ID] = true
				claims[c.ID>>jobClaimShift] = true
			}
		}
		if len(attempts) == 0 {
			t.Fatalf("job %s: no attempt spans under the root", id)
		}
		if len(claims) > 1 {
			crossProcess++
		}
	}
	if crossProcess == 0 {
		t.Fatalf("no job carries attempt spans from both processes; the kill landed outside the attempt window")
	}

	// The serve analytics agree: every acknowledged job completed exactly once.
	rep := replay.ServeSummary(merged)
	if rep.Jobs != 4 || rep.Done != 4 || rep.Succeeded != 4 {
		t.Fatalf("serve summary = %+v, want 4 jobs succeeded", rep)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "chaos" {
		t.Fatalf("tenants = %+v", rep.Tenants)
	}
}
