package serve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func testContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestQueueLifecycleAndDurability(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	ctx := testContext(t)

	j := mustSubmit(t, q, quickSpec("acme"))
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job = %+v", j)
	}
	claimed, err := q.Claim(ctx)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if claimed.ID != j.ID || claimed.Attempt != 1 {
		t.Fatalf("claimed = %+v", claimed)
	}
	if _, err := q.Complete(j.ID, json.RawMessage(`{"gamma":-0.1}`)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateSucceeded || string(got.Result) != `{"gamma":-0.1}` {
		t.Fatalf("terminal job = %+v", got)
	}
	q.Close()

	// Cold restart: the terminal state survives.
	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	got, err = q2.Get(j.ID)
	if err != nil || got.State != StateSucceeded {
		t.Fatalf("after restart: job=%+v err=%v", got, err)
	}
}

func TestQueueRecoveryResumesRunning(t *testing.T) {
	dir := t.TempDir()
	q, _ := OpenQueue(dir, QueueOptions{})
	ctx := testContext(t)
	j := mustSubmit(t, q, quickSpec("a"))
	if _, err := q.Claim(ctx); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// Crash: no Close, no terminal transition. Reopen the journal.
	q.wal.f.Close()

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	rep := q2.Recovery()
	if rep.Resumed != 1 || rep.Queued != 0 {
		t.Fatalf("recovery = %+v, want 1 resumed", rep)
	}
	re, err := q2.Claim(ctx)
	if err != nil {
		t.Fatalf("re-Claim: %v", err)
	}
	if re.ID != j.ID || !re.Resumed || re.Attempt != 2 {
		t.Fatalf("resumed job = %+v, want same ID, Resumed, attempt 2", re)
	}
}

func TestQueuePriorityOrderAndFIFO(t *testing.T) {
	q, _ := OpenQueue(t.TempDir(), QueueOptions{})
	defer q.Close()
	ctx := testContext(t)
	low1 := mustSubmit(t, q, JobSpec{Type: TypeDesign, Priority: 0})
	low2 := mustSubmit(t, q, JobSpec{Type: TypeDesign, Priority: 0})
	high := mustSubmit(t, q, JobSpec{Type: TypeDesign, Priority: 5})
	order := []string{}
	for i := 0; i < 3; i++ {
		j, err := q.Claim(ctx)
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		order = append(order, j.ID)
	}
	want := []string{high.ID, low1.ID, low2.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("claim order %v, want %v", order, want)
		}
	}
}

func TestQueueBoundedDepthShedsLowestPriority(t *testing.T) {
	q, _ := OpenQueue(t.TempDir(), QueueOptions{MaxDepth: 3})
	defer q.Close()
	a := mustSubmit(t, q, JobSpec{Type: TypeDesign, Priority: 1})
	mustSubmit(t, q, JobSpec{Type: TypeDesign, Priority: 2})
	b := mustSubmit(t, q, JobSpec{Type: TypeDesign, Priority: 0})

	// Same priority as the lowest queued: reject, never shed an equal.
	if _, err := q.Submit(JobSpec{Type: TypeDesign, Priority: 0}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("equal-priority submit on full queue: err=%v, want ErrQueueFull", err)
	}

	// Higher priority: the lowest-priority newest job is shed to make room.
	res, err := q.Submit(JobSpec{Type: TypeDesign, Priority: 3})
	if err != nil {
		t.Fatalf("priority submit on full queue: %v", err)
	}
	if res.Shed == nil || res.Shed.ID != b.ID {
		t.Fatalf("shed = %+v, want job %s (lowest priority, newest)", res.Shed, b.ID)
	}
	shed, _ := q.Get(b.ID)
	if shed.State != StateShed {
		t.Fatalf("victim state = %s, want shed", shed.State)
	}
	if q.Depth() != 3 {
		t.Fatalf("depth = %d, want 3 (still bounded)", q.Depth())
	}
	// Un-shed jobs unaffected.
	if got, _ := q.Get(a.ID); got.State != StateQueued {
		t.Fatalf("bystander state = %s", got.State)
	}
}

func TestQueueDedupeKeyIdempotent(t *testing.T) {
	dir := t.TempDir()
	q, _ := OpenQueue(dir, QueueOptions{})
	ctx := testContext(t)
	spec := JobSpec{Type: TypeDesign, DedupeKey: "design-seed-1"}
	first := mustSubmit(t, q, spec)
	res, err := q.Submit(spec)
	if err != nil || !res.Deduped || res.Job.ID != first.ID {
		t.Fatalf("dup submit: res=%+v err=%v, want dedupe to %s", res, err, first.ID)
	}

	// Run it to completion, crash, recover: the key still maps to the
	// terminal job, so a resubmission cannot run it twice.
	if _, err := q.Claim(ctx); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if _, err := q.Complete(first.ID, json.RawMessage(`{}`)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	q.wal.f.Close() // crash

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	res, err = q2.Submit(spec)
	if err != nil || !res.Deduped || res.Job.ID != first.ID || res.Job.State != StateSucceeded {
		t.Fatalf("post-crash dup submit = %+v err=%v, want dedupe to terminal %s", res.Job, err, first.ID)
	}
	if q2.Depth() != 0 {
		t.Fatal("deduped submit enqueued a second run")
	}
}

func TestQueueCancelQueuedAndRunning(t *testing.T) {
	q, _ := OpenQueue(t.TempDir(), QueueOptions{})
	defer q.Close()
	ctx := testContext(t)

	j1 := mustSubmit(t, q, quickSpec("a"))
	if _, err := q.Cancel(j1.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if got, _ := q.Get(j1.ID); got.State != StateCanceled {
		t.Fatalf("state = %s", got.State)
	}
	if q.Depth() != 0 {
		t.Fatal("canceled job still pending")
	}

	j2 := mustSubmit(t, q, quickSpec("a"))
	if _, err := q.Claim(ctx); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if _, err := q.Cancel(j2.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if _, err := q.Cancel(j2.ID); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("double cancel err = %v, want ErrNotCancelable", err)
	}
	// Terminal states never transition, even via Complete.
	if got, _ := q.Complete(j2.ID, json.RawMessage(`{}`)); got.State != StateCanceled {
		t.Fatalf("Complete after cancel flipped state to %s", got.State)
	}
}

func TestQueueClaimBlocksUntilSubmit(t *testing.T) {
	q, _ := OpenQueue(t.TempDir(), QueueOptions{})
	defer q.Close()
	ctx := testContext(t)
	done := make(chan *Job, 1)
	go func() {
		j, err := q.Claim(ctx)
		if err != nil {
			done <- nil
			return
		}
		done <- j
	}()
	time.Sleep(20 * time.Millisecond)
	want := mustSubmit(t, q, quickSpec("a"))
	select {
	case got := <-done:
		if got == nil || got.ID != want.ID {
			t.Fatalf("claimed %+v, want %s", got, want.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Claim never woke up")
	}
}

func TestQueueRequeueForResume(t *testing.T) {
	q, _ := OpenQueue(t.TempDir(), QueueOptions{})
	defer q.Close()
	ctx := testContext(t)
	j := mustSubmit(t, q, quickSpec("a"))
	if _, err := q.Claim(ctx); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := q.Requeue(j.ID); err != nil {
		t.Fatalf("Requeue: %v", err)
	}
	if q.RunningCount() != 0 || q.Depth() != 1 {
		t.Fatalf("running=%d depth=%d after requeue", q.RunningCount(), q.Depth())
	}
	re, err := q.Claim(ctx)
	if err != nil || re.ID != j.ID || !re.Resumed {
		t.Fatalf("re-claim = %+v err=%v", re, err)
	}
}
