package serve

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is the filesystem artifact store: one directory per job holding its
// resilience checkpoints, run journal and result document, plus a
// dead-letter area quarantined jobs are moved into with everything they
// wrote — the forensic record a poisoned job leaves behind.
type Store struct {
	root string
}

// NewStore roots the artifact store at dir, creating the layout.
func NewStore(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, d := range []string{s.jobsDir(), s.DeadLetterDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: artifact store: %w", err)
		}
	}
	return s, nil
}

func (s *Store) jobsDir() string { return filepath.Join(s.root, "jobs") }

// DeadLetterDir is where quarantined jobs' artifacts land.
func (s *Store) DeadLetterDir() string { return filepath.Join(s.root, "deadletter") }

// JobDir returns (creating) the artifact directory of one job. The
// checkpoint file inside it is what makes a crash-resumed run bit-identical:
// the rerun restores every completed stage instead of recomputing it.
func (s *Store) JobDir(id string) (string, error) {
	d := filepath.Join(s.jobsDir(), id)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return "", fmt.Errorf("serve: job dir: %w", err)
	}
	return d, nil
}

// CheckpointPath names the job's resilience checkpoint file.
func (s *Store) CheckpointPath(id string) (string, error) {
	d, err := s.JobDir(id)
	if err != nil {
		return "", err
	}
	return filepath.Join(d, "checkpoint.jsonl"), nil
}

// WriteResult atomically persists the job's result document
// (temp-file+rename, same discipline as the checkpoints).
func (s *Store) WriteResult(id string, result []byte) error {
	d, err := s.JobDir(id)
	if err != nil {
		return err
	}
	final := filepath.Join(d, "result.json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, result, 0o644); err != nil {
		return fmt.Errorf("serve: write result: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: write result: %w", err)
	}
	return nil
}

// ReadResult returns the persisted result document.
func (s *Store) ReadResult(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.jobsDir(), id, "result.json"))
}

// DeadLetterCount returns the number of quarantined jobs resting in the
// dead-letter directory (0 on a read error: the gauge built on this must
// never make observability a failure mode).
func (s *Store) DeadLetterCount() int {
	entries, err := os.ReadDir(s.DeadLetterDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// Quarantine moves the job's artifact directory into the dead-letter area
// and records the reason alongside, so the poisoned run's checkpoints and
// journals travel with it.
func (s *Store) Quarantine(id, reason string) error {
	src := filepath.Join(s.jobsDir(), id)
	dst := filepath.Join(s.DeadLetterDir(), id)
	if _, err := os.Stat(src); os.IsNotExist(err) {
		if err := os.MkdirAll(dst, 0o755); err != nil {
			return fmt.Errorf("serve: quarantine: %w", err)
		}
	} else if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("serve: quarantine: %w", err)
	}
	reasonPath := filepath.Join(dst, "reason.txt")
	if err := os.WriteFile(reasonPath, []byte(reason+"\n"), 0o644); err != nil {
		return fmt.Errorf("serve: quarantine: %w", err)
	}
	return nil
}
