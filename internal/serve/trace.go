package serve

import (
	"hash/fnv"
	"strconv"
	"time"

	"gnsslna/internal/obs"
)

// Durable job tracing. A job's causal trace must survive the two things that
// kill an in-memory tracer: process restarts and worker retries. Both are
// solved by deriving every span ID from state the queue already persists,
// so any process that observes the job emits into the same trace without
// coordination:
//
//   - the trace ID is assigned at submission (assignTrace) and stored on the
//     Job, which the WAL's submit record carries to every future process;
//   - the job's root span is always span 1 of its trace: the submit handler
//     emits its span-begin, whichever process lands the job terminal emits
//     its span-end;
//   - each claim of the job gets the span base attempt<<48 (Attempt is
//     journaled with the claim transition), and each in-process retry within
//     that claim shifts by retry<<32 — so the queue-wait span, every attempt
//     span and every solver span the runner allocates underneath live in
//     disjoint ID ranges across crashes, restarts and retries.
//
// internal/obs/replay stitches the per-process journals back into one tree
// (see replay.Merge and replay.BuildTraces).
const (
	// jobRootSpan is the reserved span ID of a job's root span.
	jobRootSpan = 1
	// jobClaimShift positions the journaled claim attempt in the span base.
	jobClaimShift = 48
	// jobRetryShift positions the in-process retry ordinal in the span base,
	// leaving 2^32 span IDs for the solver spans of one attempt.
	jobRetryShift = 32
)

// Scopes of the serve-emitted trace records. The root span's scope is
// jobScope's "job.<type>.<tenant>".
const (
	scopeJobWait    = "job.wait"
	scopeJobAttempt = "job.attempt"
	scopeJobBackoff = "job.backoff_ms"
	scopeJobDone    = "job.done." // + terminal state
)

// assignTrace derives the job's durable trace ID from its identity at
// submission. Deterministic (FNV-1a over ID and submit time) so a replayed
// WAL reconstructs the same ID, and never zero (zero means untraced).
func assignTrace(j *Job) uint64 {
	h := fnv.New64a()
	h.Write([]byte(j.ID))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.FormatInt(j.SubmittedMS, 10)))
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return id
}

// jobScope is the root span's scope: "job.<type>.<tenant>". The tenant goes
// last so replay can split on the first two dots and keep dotted tenant
// names intact.
func jobScope(j *Job) string {
	return "job." + string(j.Spec.Type) + "." + j.Spec.tenant()
}

// emitJobSubmitted writes the root span-begin for a freshly accepted job.
// The event carries explicit identity, so the sink must be a raw observer
// (hub, broadcaster), not a Traced that would restamp it.
func emitJobSubmitted(sink obs.Observer, j *Job) {
	if sink == nil || j == nil || j.Trace == 0 {
		return
	}
	sink.Observe(obs.Event{
		Kind:  obs.KindSpanBegin,
		Scope: jobScope(j),
		Trace: obs.TraceID(j.Trace),
		Span:  jobRootSpan,
	})
}

// emitJobDone closes the root span of a terminal job and records its outcome
// as a job.done.<state> sample, from whichever process landed the terminal
// transition. The span-end's wall time is the full submit→done latency, so a
// reconstruction that never saw the begin (journal rotated away) still bounds
// the root correctly.
func emitJobDone(sink obs.Observer, j *Job) {
	if sink == nil || j == nil || j.Trace == 0 || !j.State.Terminal() {
		return
	}
	wall := float64(j.DoneMS - j.SubmittedMS)
	if wall < 0 {
		wall = 0
	}
	root := obs.AdoptSpan(sink, obs.NewTracerID(obs.TraceID(j.Trace)), jobRootSpan, 0)
	root.Observe(obs.Event{Kind: obs.KindSpanEnd, Scope: jobScope(j), Value: wall})
	root.Observe(obs.Event{Kind: obs.KindSample, Scope: scopeJobDone + string(j.State), Value: wall})
}

// jobTrace emits one claim's share of a job's durable trace. A nil *jobTrace
// (no sink configured, or a pre-trace job) is a no-op on every method.
type jobTrace struct {
	sink  obs.Observer
	trace obs.TraceID
	base  uint64      // claim-attempt span base (attempt << jobClaimShift)
	root  *obs.Traced // the adopted root span, tracer based at this claim
}

// newJobTrace opens the claim's view of the job trace. job.Attempt is the
// just-journaled claim ordinal, which makes the span base crash-unique.
func newJobTrace(sink obs.Observer, job *Job) *jobTrace {
	if sink == nil || job.Trace == 0 {
		return nil
	}
	trace := obs.TraceID(job.Trace)
	base := uint64(job.Attempt) << jobClaimShift
	tr := obs.NewTracerAt(trace, base)
	return &jobTrace{
		sink:  sink,
		trace: trace,
		base:  base,
		root:  obs.AdoptSpan(sink, tr, jobRootSpan, 0),
	}
}

// waitSpan records the time the job spent queued before this claim as a
// child span of the root (span-end only; replay bounds it from its wall).
func (t *jobTrace) waitSpan(waitMS float64) {
	if t == nil {
		return
	}
	t.root.Observe(obs.Event{
		Kind:  obs.KindSpanEnd,
		Scope: scopeJobWait,
		Span:  t.root.Tracer().NewSpan(),
		Value: waitMS,
	})
}

// attempt opens the span for one retry attempt of this claim and returns the
// observer the runner should emit into (solver spans nest under it) plus the
// span closer. Each retry gets a disjoint span base, so sibling attempts —
// and their whole solver subtrees — never collide.
func (t *jobTrace) attempt(retry int) (obs.Observer, func(evals int64)) {
	if t == nil {
		return nil, func(int64) {}
	}
	base := t.base | uint64(retry)<<jobRetryShift
	tr := obs.NewTracerAt(t.trace, base)
	root := obs.AdoptSpan(t.sink, tr, jobRootSpan, 0)
	return obs.StartSpan(root, scopeJobAttempt)
}

// backoff records the deterministic delay scheduled before the next retry as
// a sample on the root span, so the reconstructed trace attributes the gap
// between sibling attempts.
func (t *jobTrace) backoff(d time.Duration) {
	if t == nil {
		return
	}
	t.root.Observe(obs.Event{
		Kind:  obs.KindSample,
		Scope: scopeJobBackoff,
		Value: float64(d) / float64(time.Millisecond),
	})
}

// fault records one panicking attempt on the root span.
func (t *jobTrace) fault(scope string) {
	if t == nil {
		return
	}
	t.root.Observe(obs.Event{Kind: obs.KindFault, Scope: scope})
}
