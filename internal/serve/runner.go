package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/experiments"
	"gnsslna/internal/extract"
	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
	"gnsslna/internal/vna"
)

// DesignResultDoc is the JSON result of a design job (the facade
// DesignReport, flattened for the wire).
type DesignResultDoc struct {
	Gamma      float64     `json:"gamma"`
	WorstNFdB  float64     `json:"worst_nf_db"`
	MinGTdB    float64     `json:"min_gt_db"`
	StabMargin float64     `json:"stab_margin"`
	IdsA       float64     `json:"ids_a"`
	PdcW       float64     `json:"pdc_w"`
	Design     core.Design `json:"design"`
	Snapped    core.Design `json:"snapped"`
}

// ExtractResultDoc is the JSON result of an extract job.
type ExtractResultDoc struct {
	Model     string  `json:"model"`
	DCRelRMSE float64 `json:"dc_rel_rmse"`
	SRMSE     float64 `json:"s_rmse"`
}

// SweepResultDoc is the JSON result of a Monte-Carlo yield sweep job.
type SweepResultDoc struct {
	Trials   int     `json:"trials"`
	PassRate float64 `json:"pass_rate"`
	NF95dB   float64 `json:"nf95_db"`
	GT5dB    float64 `json:"gt5_db"`
}

// stdRunner executes design/extract/sweep jobs through the same pipelines
// the facade workflows use, with the job's artifact directory holding the
// resilience checkpoint file. That file is the crash contract: a re-claimed
// job restores every completed stage and recomputes only the interrupted
// one, bit-identically (the PR-2 resume guarantee).
type stdRunner struct{}

// StdRunner returns the production Runner.
func StdRunner() Runner { return stdRunner{} }

// controller builds the job's RunController: the worker's attempt context
// carries the wall-clock bound, MaxEvals is the admission-clamped tenant
// budget.
func jobController(ctx context.Context, job *Job) *resilience.RunController {
	return resilience.NewController(resilience.ControllerOptions{
		Context:  ctx,
		MaxEvals: job.Spec.MaxEvals,
	})
}

func jobSeed(job *Job) int64 {
	if job.Spec.Seed == 0 {
		return 1
	}
	return job.Spec.Seed
}

// Run implements Runner.
func (stdRunner) Run(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
	checkpoint := filepath.Join(dir, "checkpoint.jsonl")
	suite := experiments.NewSuite(experiments.Config{
		Seed:       jobSeed(job),
		Quick:      job.Spec.Quick,
		Observer:   o,
		Control:    jobController(ctx, job),
		Checkpoint: checkpoint,
	})
	switch job.Spec.Type {
	case TypeDesign:
		res, err := suite.Design()
		if err != nil {
			return nil, fmt.Errorf("design: %w", err)
		}
		return marshalDoc(DesignResultDoc{
			Gamma:      res.Gamma,
			WorstNFdB:  res.SnappedEval.WorstNFdB,
			MinGTdB:    res.SnappedEval.MinGTdB,
			StabMargin: res.SnappedEval.StabMargin,
			IdsA:       res.SnappedEval.IdsA,
			PdcW:       res.SnappedEval.PdcW,
			Design:     res.Design,
			Snapped:    res.Snapped,
		})
	case TypeExtract:
		return runExtract(ctx, job, checkpoint, o)
	case TypeSweep:
		res, err := suite.Design()
		if err != nil {
			return nil, fmt.Errorf("sweep: design stage: %w", err)
		}
		designer, err := suite.Designer()
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		trials := job.Spec.Trials
		if trials <= 0 {
			trials = 200
		}
		rep, err := designer.Yield(res.Snapped, 0.05, trials, jobSeed(job))
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		return marshalDoc(SweepResultDoc{
			Trials: rep.Trials, PassRate: rep.PassRate, NF95dB: rep.NF95dB, GT5dB: rep.GT5dB,
		})
	}
	return nil, fmt.Errorf("serve: unknown job type %q", job.Spec.Type)
}

// runExtract extracts the named model class. The finished extraction is
// checkpointed under a model-specific stage, so a crash after completion
// resumes by restoring rather than recomputing.
func runExtract(ctx context.Context, job *Job, checkpoint string, o obs.Observer) (json.RawMessage, error) {
	model := job.Spec.Model
	if model == "" {
		model = "Angelov"
	}
	var dc device.DCModel
	for _, m := range device.AllModels() {
		if m.Name() == model {
			dc = m
			break
		}
	}
	if dc == nil {
		return nil, fmt.Errorf("extract: unknown model %q", model)
	}
	stage := "serve.extract." + model
	seed := jobSeed(job)
	var doc ExtractResultDoc
	if ok, err := resilience.RestoreCheckpoint(checkpoint, stage, seed, job.Spec.Quick, &doc); err == nil && ok {
		return marshalDoc(doc)
	}
	campaign := vna.DefaultCampaign(seed)
	campaign.Observer = o
	ds, err := vna.RunCampaign(device.Golden(), campaign)
	if err != nil {
		return nil, fmt.Errorf("extract: campaign: %w", err)
	}
	cfg := extract.Config{Seed: seed, Observer: o, Control: jobController(ctx, job)}
	if job.Spec.Quick {
		cfg.DCEvals, cfg.GlobalEvals, cfg.RefineIters = 6000, 2500, 20
	}
	res, err := extract.ThreeStep(ds, dc, cfg)
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	doc = ExtractResultDoc{Model: dc.Name(), DCRelRMSE: res.DC.RelRMSE, SRMSE: res.SRMSE}
	if err := resilience.SaveCheckpoint(checkpoint, stage, seed, job.Spec.Quick, doc); err != nil {
		return nil, fmt.Errorf("extract: checkpoint: %w", err)
	}
	return marshalDoc(doc)
}

func marshalDoc(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(b), nil
}
