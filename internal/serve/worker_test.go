package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// fleetHarness is a queue+store+fleet over a fake runner.
type fleetHarness struct {
	q     *Queue
	store *Store
	fleet *Fleet
}

func newFleetHarness(t *testing.T, runner Runner, opts FleetOptions) *fleetHarness {
	t.Helper()
	dir := t.TempDir()
	q, err := OpenQueue(filepath.Join(dir, "queue"), QueueOptions{NoSync: true})
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	store, err := NewStore(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	f := NewFleet(q, store, runner, opts)
	f.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		f.Stop(ctx)
		q.Close()
	})
	return &fleetHarness{q: q, store: store, fleet: f}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, q *Queue, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, err := q.Get(id)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

func tinyRetry(attempts int) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: attempts,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}
}

func TestFleetRunsJobToSuccess(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		return json.RawMessage(`{"gamma":-0.123}`), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 2})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded", done.State, done.Error)
	}
	// The result artifact landed in the store as well as the journal.
	data, err := h.store.ReadResult(j.ID)
	if err != nil || string(data) != `{"gamma":-0.123}` {
		t.Fatalf("stored result = %q err=%v", data, err)
	}
}

func TestFleetRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		if calls.Add(1) < 3 {
			return nil, resilience.Transient(errors.New("solver hiccup"))
		}
		return json.RawMessage(`{}`), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(5)})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded after retries", done.State, done.Error)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("runner ran %d times, want 3 (2 transient failures + 1 success)", got)
	}
}

func TestFleetPermanentErrorFailsWithoutRetry(t *testing.T) {
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("unknown model class")
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(5)})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if !strings.Contains(done.Error, "unknown model class") {
		t.Fatalf("error = %q, want the runner's message", done.Error)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("permanent error ran %d times, want 1 (no retry)", got)
	}
}

func TestFleetStoppedErrorNeverRetried(t *testing.T) {
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		calls.Add(1)
		return nil, &resilience.Stopped{Reason: resilience.StopBudget}
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(5)})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("budget stop ran %d times, want 1: stops are verdicts, not faults", got)
	}
}

func TestFleetPanicQuarantinesToDeadLetter(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		// Leave a forensic artifact so quarantine has something to move.
		os.WriteFile(filepath.Join(dir, "partial.txt"), []byte("x"), 0o644)
		panic("NaN objective escaped the solver")
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(5), MaxPanics: 1})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateQuarantined {
		t.Fatalf("state = %s (%s), want quarantined", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "panic") {
		t.Fatalf("error = %q, want the panic recorded", done.Error)
	}
	// The artifacts moved to the dead-letter area with the reason alongside.
	dl := filepath.Join(h.store.DeadLetterDir(), j.ID)
	if _, err := os.Stat(filepath.Join(dl, "partial.txt")); err != nil {
		t.Fatalf("dead-letter artifacts missing: %v", err)
	}
	reason, err := os.ReadFile(filepath.Join(dl, "reason.txt"))
	if err != nil || !strings.Contains(string(reason), "panic") {
		t.Fatalf("reason.txt = %q err=%v", reason, err)
	}
}

func TestFleetPanicBelowCapRetries(t *testing.T) {
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		if calls.Add(1) == 1 {
			panic("one-off fault")
		}
		return json.RawMessage(`{}`), nil
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1, Retry: tinyRetry(3), MaxPanics: 2})
	j := mustSubmit(t, h.q, quickSpec("a"))
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded: one panic under MaxPanics=2 is transient", done.State, done.Error)
	}
}

func TestFleetStopRequeuesInFlightJob(t *testing.T) {
	started := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		close(started)
		<-ctx.Done() // cooperative: run until told to stop
		return nil, ctx.Err()
	})
	dir := t.TempDir()
	q, err := OpenQueue(filepath.Join(dir, "queue"), QueueOptions{NoSync: true})
	if err != nil {
		t.Fatalf("OpenQueue: %v", err)
	}
	defer q.Close()
	store, _ := NewStore(filepath.Join(dir, "artifacts"))
	fleet := NewFleet(q, store, runner, FleetOptions{Workers: 1})
	fleet.Start()
	j := mustSubmit(t, q, quickSpec("a"))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fleet.Stop(ctx)

	got, err := q.Get(j.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.State != StateQueued || !got.Resumed {
		t.Fatalf("after drain: state=%s resumed=%v, want queued+resumed for the next start", got.State, got.Resumed)
	}
}

func TestFleetClientCancelWinsTheRace(t *testing.T) {
	started := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, job *Job, dir string, o obs.Observer) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	h := newFleetHarness(t, runner, FleetOptions{Workers: 1})
	j := mustSubmit(t, h.q, quickSpec("a"))
	<-started
	if _, err := h.q.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	h.fleet.CancelJob(j.ID)
	done := waitTerminal(t, h.q, j.ID)
	if done.State != StateCanceled {
		t.Fatalf("state = %s, want canceled (first terminal wins)", done.State)
	}
	// Give the worker a beat to finish its failure path, then confirm the
	// canceled verdict stuck.
	time.Sleep(50 * time.Millisecond)
	if got, _ := h.q.Get(j.ID); got.State != StateCanceled {
		t.Fatalf("worker overwrote the cancel with %s", got.State)
	}
}
