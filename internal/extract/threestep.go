package extract

import (
	"fmt"

	"gnsslna/internal/device"
	"gnsslna/internal/obs"
	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/vna"
)

// Config budgets the extraction.
type Config struct {
	// Seed drives the deterministic global searches.
	Seed int64
	// DCEvals budgets the DC-model fit (default 20000).
	DCEvals int
	// GlobalEvals budgets the step-2 differential evolution on the RF
	// parameters (default 8000).
	GlobalEvals int
	// RefineIters budgets the step-3 Levenberg-Marquardt iterations
	// (default 60).
	RefineIters int
	// Workers bounds the goroutines the global DE stages use to fan out
	// residual evaluations (<= 1: serial). The search trajectory is
	// identical for any worker count.
	Workers int
	// NoiseModel, when set, is attached to the extracted device (the S and
	// I-V data do not constrain it; callers supply datasheet-style noise
	// temperatures).
	NoiseModel device.NoiseModel
	// Observer receives per-step spans ("extract.step1.coldfet",
	// "extract.step2.dcfit", "extract.step2.sfit", "extract.step3") and
	// the nested optimizers' convergence events under sub-scopes such as
	// "extract.step2.dcfit.de" and "extract.step3.lm" (nil: disabled).
	Observer obs.Observer
	// Control, when set, is polled by every nested optimizer; a stopped
	// run surfaces as a wrapped *resilience.Stopped error (nil: run to
	// completion).
	Control *resilience.RunController
}

func (c Config) defaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DCEvals <= 0 {
		c.DCEvals = 20000
	}
	if c.GlobalEvals <= 0 {
		c.GlobalEvals = 8000
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 60
	}
	if c.NoiseModel == (device.NoiseModel{}) {
		c.NoiseModel = device.NoiseModel{Tg: 300, Td0: 850, TdSlope: 14000, Ta: 290}
	}
	return c
}

// Result reports a complete extraction.
type Result struct {
	// Device is the fully extracted transistor.
	Device *device.PHEMT
	// Cold holds the step-1 parasitic extraction.
	Cold ColdFETResult
	// DC holds the step-2 DC fit.
	DC DCFitResult
	// SRMSE is the final normalized S-parameter residual.
	SRMSE float64
	// SRMSEAfterDE is the residual after step 2, before refinement
	// (diagnostic for the method-comparison experiment).
	SRMSEAfterDE float64
	// SEvals counts S-residual evaluations across steps 2-3.
	SEvals int
}

// ThreeStep runs the full three-step identification of the given DC model
// class against the dataset and returns the extracted device.
func ThreeStep(ds *vna.Dataset, dc device.DCModel, cfg Config) (Result, error) {
	cfg = cfg.defaults()
	var res Result

	// Step 1: direct parasitic extraction from the cold sweeps.
	_, endCold := obs.StartSpan(cfg.Observer, "extract.step1.coldfet")
	cold, err := ColdFET(ds.ColdPinched, ds.ColdOpen)
	if err != nil {
		return Result{}, fmt.Errorf("extract: step 1: %w", err)
	}
	res.Cold = cold
	endCold(0)

	// Step 2a: global DC-model fit. The nested optimizers emit through the
	// step's span observer so their runs parent under the step in a trace.
	dcObs, endDC := obs.StartSpan(cfg.Observer, "extract.step2.dcfit")
	dcRes, err := fitDC(dc, ds, cfg.Seed, cfg.DCEvals, dcObs, cfg.Control)
	if err != nil {
		return Result{}, fmt.Errorf("extract: step 2 (DC): %w", err)
	}
	res.DC = dcRes
	endDC(int64(dcRes.Evals))

	// Step 2b: global RF fit with parasitics frozen.
	sObs, endS := obs.StartSpan(cfg.Observer, "extract.step2.sfit")
	sres, err := NewSResidual(ds, dc, cold.Ext, false)
	if err != nil {
		return Result{}, fmt.Errorf("extract: step 2 (RF): %w", err)
	}
	lo, hi := sres.Bounds()
	pop := 6 * sres.Dim()
	gens := cfg.GlobalEvals / pop
	if gens < 5 {
		gens = 5
	}
	de, err := optim.DifferentialEvolution(sres.RMSE, lo, hi, &optim.DEOptions{
		Pop: pop, Generations: gens, Seed: cfg.Seed,
		Observer: sObs, Scope: "extract.step2.sfit.de",
		Control: cfg.Control, Workers: cfg.Workers,
	})
	if err != nil {
		return Result{}, fmt.Errorf("extract: step 2 (RF DE): %w", err)
	}
	res.SRMSEAfterDE = de.F
	endS(int64(sres.Evals()))

	// Step 3: Levenberg-Marquardt joint refinement of the RF vector AND
	// the parasitics, warm-started from the DE solution and the step-1
	// estimates. The step-1 values carry small structural biases (Ri
	// dilution, pad loading) that the joint refinement absorbs.
	lmObs, endLM := obs.StartSpan(cfg.Observer, "extract.step3")
	sresJoint, err := NewSResidual(ds, dc, cold.Ext, true)
	if err != nil {
		return Result{}, fmt.Errorf("extract: step 3: %w", err)
	}
	sresJoint.evals.Store(int64(sres.Evals()))
	loJ, hiJ := sresJoint.Bounds()
	x0 := append(append([]float64(nil), de.X...),
		cold.Ext.Rg, cold.Ext.Rs, cold.Ext.Rd,
		cold.Ext.Lg, cold.Ext.Ls, cold.Ext.Ld)
	lm, err := optim.LevenbergMarquardt(sresJoint.Residuals, x0, &optim.LMOptions{
		MaxIter: cfg.RefineIters, Lower: loJ, Upper: hiJ,
		Observer: lmObs, Scope: "extract.step3.lm",
		Control: cfg.Control,
	})
	if err != nil {
		return Result{}, fmt.Errorf("extract: step 3: %w", err)
	}
	endLM(int64(sresJoint.Evals() - sres.Evals()))

	d := sresJoint.device(lm.X)
	d.Name = "extracted-" + dc.Name()
	d.Noise = cfg.NoiseModel
	res.Device = d
	res.SRMSE = sresJoint.RMSE(lm.X)
	res.SEvals = sresJoint.Evals()
	return res, nil
}

// Method identifies an extraction strategy in the comparison experiment.
type Method string

// Extraction strategies compared by experiment E2.
const (
	MethodThreeStep Method = "three-step"
	MethodDEOnly    Method = "DE-only"
	MethodLMOnly    Method = "LM-only"
	MethodNMOnly    Method = "NM-only"
)

// MethodResult reports one strategy run of the comparison.
type MethodResult struct {
	// Method names the strategy.
	Method Method
	// SRMSE is the final normalized S residual.
	SRMSE float64
	// Evals counts S-residual evaluations.
	Evals int
}

// RunMethod runs one extraction strategy on the dataset with the given
// (already DC-fitted) model. The three-step strategy uses the cold sweep;
// the baselines must manage without it, exactly the handicap the paper's
// procedure removes.
func RunMethod(ds *vna.Dataset, dc device.DCModel, m Method, cfg Config) (MethodResult, error) {
	cfg = cfg.defaults()
	switch m {
	case MethodThreeStep:
		res, err := ThreeStep(ds, dc, cfg)
		if err != nil {
			return MethodResult{}, err
		}
		return MethodResult{Method: m, SRMSE: res.SRMSE, Evals: res.SEvals}, nil

	case MethodDEOnly:
		// No step 1: the six series parasitics join the search space.
		sres, err := NewSResidual(ds, dc, device.Extrinsics{}, true)
		if err != nil {
			return MethodResult{}, err
		}
		lo, hi := sres.Bounds()
		pop := 6 * sres.Dim()
		gens := (cfg.GlobalEvals + cfg.RefineIters*sres.Dim()) / pop
		if gens < 5 {
			gens = 5
		}
		de, err := optim.DifferentialEvolution(sres.RMSE, lo, hi, &optim.DEOptions{
			Pop: pop, Generations: gens, Seed: cfg.Seed,
			Observer: cfg.Observer, Scope: "extract.method.de",
			Control: cfg.Control, Workers: cfg.Workers,
		})
		if err != nil {
			return MethodResult{}, err
		}
		return MethodResult{Method: m, SRMSE: de.F, Evals: sres.Evals()}, nil

	case MethodLMOnly, MethodNMOnly:
		// Local method from a random start inside the box (parasitics
		// included: no cold-FET step).
		sres, err := NewSResidual(ds, dc, device.Extrinsics{}, true)
		if err != nil {
			return MethodResult{}, err
		}
		lo, hi := sres.Bounds()
		rng := randFrom(cfg.Seed)
		x0 := make([]float64, len(lo))
		for i := range x0 {
			x0[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		if m == MethodLMOnly {
			lm, err := optim.LevenbergMarquardt(sres.Residuals, x0, &optim.LMOptions{
				MaxIter: cfg.RefineIters * 4, Lower: lo, Upper: hi,
				Observer: cfg.Observer, Scope: "extract.method.lm",
				Control: cfg.Control,
			})
			if err != nil {
				return MethodResult{}, err
			}
			return MethodResult{Method: m, SRMSE: sres.RMSE(lm.X), Evals: sres.Evals()}, nil
		}
		nm, err := optim.NelderMead(sres.RMSE, x0, &optim.NMOptions{
			MaxEvals: cfg.GlobalEvals,
			Observer: cfg.Observer, Scope: "extract.method.nm",
			Control: cfg.Control,
		})
		if err != nil {
			return MethodResult{}, err
		}
		return MethodResult{Method: m, SRMSE: nm.F, Evals: sres.Evals()}, nil
	}
	return MethodResult{}, fmt.Errorf("extract: unknown method %q", m)
}
