package extract

import "math/rand"

// randFrom returns a deterministic RNG for the given seed (0 maps to 1 so a
// zero-value config still behaves deterministically).
func randFrom(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}
