package extract

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/vna"
)

func TestFitNoiseParamsExactRecovery(t *testing.T) {
	// Noiseless source pull must recover the device noise parameters to
	// numerical precision.
	d := device.Golden()
	b := device.Bias{Vgs: 0.52, Vds: 3}
	f := 1.575e9
	tp, err := d.NoisyAt(b, f)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := tp.NoiseParams(50)
	if err != nil {
		t.Fatal(err)
	}
	bench := &vna.SourcePullBench{SigmaDB: 0, Seed: 1}
	pts, err := bench.Measure(tp, vna.DefaultTunerStates())
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	got, err := FitNoiseParams(pts, 50)
	if err != nil {
		t.Fatalf("FitNoiseParams: %v", err)
	}
	if math.Abs(got.Fmin-truth.Fmin) > 1e-9 {
		t.Errorf("Fmin = %.9f, want %.9f", got.Fmin, truth.Fmin)
	}
	if math.Abs(got.Rn-truth.Rn) > 1e-7 {
		t.Errorf("Rn = %g, want %g", got.Rn, truth.Rn)
	}
	if cmplx.Abs(got.GammaOpt-truth.GammaOpt) > 1e-8 {
		t.Errorf("GammaOpt = %v, want %v", got.GammaOpt, truth.GammaOpt)
	}
}

func TestFitNoiseParamsNoisyRecovery(t *testing.T) {
	// With 0.05 dB repeatability the recovery must stay within practical
	// tolerances (Fmin within ~0.05 dB, GammaOpt within 0.1).
	d := device.Golden()
	b := device.Bias{Vgs: 0.52, Vds: 3}
	tp, err := d.NoisyAt(b, 1.575e9)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := tp.NoiseParams(50)
	if err != nil {
		t.Fatal(err)
	}
	bench := &vna.SourcePullBench{SigmaDB: 0.05, Seed: 5}
	pts, err := bench.Measure(tp, vna.DefaultTunerStates())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FitNoiseParams(pts, 50)
	if err != nil {
		t.Fatalf("FitNoiseParams: %v", err)
	}
	dFminDB := math.Abs(got.FminDB() - truth.FminDB())
	if dFminDB > 0.08 {
		t.Errorf("Fmin off by %.3f dB under 0.05 dB noise", dFminDB)
	}
	if cmplx.Abs(got.GammaOpt-truth.GammaOpt) > 0.12 {
		t.Errorf("GammaOpt %v, want near %v", got.GammaOpt, truth.GammaOpt)
	}
}

func TestFitNoiseParamsValidation(t *testing.T) {
	if _, err := FitNoiseParams(nil, 50); err == nil {
		t.Error("empty data accepted")
	}
	// A source state outside the chart (negative conductance) must be
	// rejected.
	bad := []vna.SourcePullPoint{
		{GammaS: 0, FLinear: 1.2},
		{GammaS: 0.1, FLinear: 1.3},
		{GammaS: 0.2i, FLinear: 1.3},
		{GammaS: complex(1.5, 0), FLinear: 1.4}, // |gamma| > 1
	}
	if _, err := FitNoiseParams(bad, 50); err == nil {
		t.Error("unphysical source state accepted")
	}
}

func TestSourcePullBenchValidation(t *testing.T) {
	d := device.Golden()
	tp, err := d.NoisyAt(device.Bias{Vgs: 0.5, Vds: 3}, 1.4e9)
	if err != nil {
		t.Fatal(err)
	}
	bench := &vna.SourcePullBench{Seed: 1}
	if _, err := bench.Measure(tp, []complex128{0, 0.1}); err == nil {
		t.Error("too few tuner states accepted")
	}
}

func TestDefaultTunerStatesWellConditioned(t *testing.T) {
	states := vna.DefaultTunerStates()
	if len(states) < 10 {
		t.Fatalf("states = %d, want a rich set", len(states))
	}
	for _, g := range states {
		if cmplx.Abs(g) >= 1 {
			t.Errorf("state %v outside the unit disc", g)
		}
	}
}
