package extract

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
	"gnsslna/internal/vna"
)

// FitNoiseParams recovers the four noise parameters from source-pull data
// with Lane's linearization (Lane 1969): writing
//
//	F(Ys) = Fmin + Rn/Gs * ((Gs-Gopt)^2 + (Bs-Bopt)^2)
//
// as F = a + b*(Gs^2+Bs^2)/Gs + c/Gs + d*Bs/Gs turns the fit into ordinary
// least squares in (a, b, c, d), from which
//
//	Rn = b, Bopt = -d/(2b), Gopt = sqrt(c/b - Bopt^2), Fmin = a + 2*b*Gopt.
func FitNoiseParams(points []vna.SourcePullPoint, z0 float64) (noise.Params, error) {
	if len(points) < 4 {
		return noise.Params{}, fmt.Errorf("%w: need >= 4 source-pull points", ErrInsufficientData)
	}
	a := mathx.NewMatrix(len(points), 4)
	rhs := make([]float64, len(points))
	for i, p := range points {
		ys := 1 / twoport.ZFromGamma(p.GammaS, z0)
		gs, bs := real(ys), imag(ys)
		if gs <= 0 {
			return noise.Params{}, fmt.Errorf("extract: source state %v has non-positive conductance", p.GammaS)
		}
		a.Set(i, 0, 1)
		a.Set(i, 1, (gs*gs+bs*bs)/gs)
		a.Set(i, 2, 1/gs)
		a.Set(i, 3, bs/gs)
		rhs[i] = p.FLinear
	}
	c, err := mathx.LeastSquares(a, rhs)
	if err != nil {
		return noise.Params{}, fmt.Errorf("extract: Lane fit: %w", err)
	}
	b := c[1]
	if b <= 0 {
		return noise.Params{}, fmt.Errorf("extract: Lane fit produced non-physical Rn = %g", b)
	}
	bopt := -c[3] / (2 * b)
	g2 := c[2]/b - bopt*bopt
	if g2 < 0 {
		g2 = 0
	}
	gopt := math.Sqrt(g2)
	fmin := c[0] + 2*b*gopt
	yopt := complex(gopt, bopt)
	if yopt == 0 {
		return noise.Params{}, fmt.Errorf("extract: Lane fit produced zero optimum admittance")
	}
	return noise.Params{
		Fmin:     fmin,
		Rn:       b,
		GammaOpt: twoport.GammaFromZ(1/yopt, z0),
		Z0:       z0,
	}, nil
}
