package extract

import (
	"fmt"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/obs"
	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/vna"
)

// DCFitResult reports the DC-model fit of step 2.
type DCFitResult struct {
	// Model is the fitted model (the same instance passed in, mutated).
	Model device.DCModel
	// RMSE is the root-mean-square current error in amperes.
	RMSE float64
	// RelRMSE is the RMSE normalized by the maximum measured current.
	RelRMSE float64
	// Evals counts model evaluations consumed by the fit.
	Evals int
}

// dcResiduals builds the residual vector (model - measurement, normalized)
// for the I-V grid.
func dcResiduals(m device.DCModel, ds *vna.Dataset, scale float64) []float64 {
	r := make([]float64, 0, len(ds.VgsGrid)*len(ds.VdsGrid))
	for i, vgs := range ds.VgsGrid {
		for j, vds := range ds.VdsGrid {
			r = append(r, (m.Ids(vgs, vds)-ds.IV[i][j])/scale)
		}
	}
	return r
}

func maxCurrent(ds *vna.Dataset) float64 {
	var m float64
	for _, row := range ds.IV {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	if m <= 0 {
		m = 1e-3
	}
	return m
}

// FitDC fits the DC model to the dataset's I-V grid: differential evolution
// over the model's parameter bounds followed by a Levenberg-Marquardt
// polish. The model instance is mutated to the fitted parameters.
func FitDC(m device.DCModel, ds *vna.Dataset, seed int64, budget int) (DCFitResult, error) {
	return FitDCObserved(m, ds, seed, budget, nil)
}

// FitDCObserved is FitDC with progress events: the global and refinement
// stages emit convergence records under "extract.step2.dcfit.de" and
// "extract.step2.dcfit.lm".
func FitDCObserved(m device.DCModel, ds *vna.Dataset, seed int64, budget int, o obs.Observer) (DCFitResult, error) {
	return fitDC(m, ds, seed, budget, o, nil)
}

// FitDCControlled is FitDCObserved with a run controller: ctrl (may be
// nil) is polled by the nested DE and LM stages, and a stopped fit
// surfaces as a wrapped *resilience.Stopped error.
func FitDCControlled(m device.DCModel, ds *vna.Dataset, seed int64, budget int, o obs.Observer, ctrl *resilience.RunController) (DCFitResult, error) {
	return fitDC(m, ds, seed, budget, o, ctrl)
}

// fitDC is the controllable core of FitDCObserved: ctrl (may be nil) is
// polled by the nested DE and LM stages.
func fitDC(m device.DCModel, ds *vna.Dataset, seed int64, budget int, o obs.Observer, ctrl *resilience.RunController) (DCFitResult, error) {
	if ds == nil || len(ds.IV) == 0 {
		return DCFitResult{}, fmt.Errorf("%w: no I-V grid", ErrInsufficientData)
	}
	if budget <= 0 {
		budget = 20000
	}
	scale := maxCurrent(ds)
	lo, hi := m.Bounds()
	evals := 0
	obj := func(p []float64) float64 {
		evals++
		if err := m.SetParams(p); err != nil {
			return 1e9
		}
		r := dcResiduals(m, ds, scale)
		return mathx.RMS(r)
	}
	pop := 10 * len(lo)
	if pop < 20 {
		pop = 20
	}
	gens := budget / pop
	if gens < 10 {
		gens = 10
	}
	de, err := optim.DifferentialEvolution(obj, lo, hi, &optim.DEOptions{
		Pop: pop, Generations: gens, Seed: seed,
		Observer: o, Scope: "extract.step2.dcfit.de",
		Control: ctrl,
	})
	if err != nil {
		return DCFitResult{}, fmt.Errorf("extract: DC global fit: %w", err)
	}
	resid := func(p []float64) []float64 {
		evals++
		if err := m.SetParams(p); err != nil {
			big := make([]float64, len(ds.IV)*len(ds.IV[0]))
			for i := range big {
				big[i] = 1e6
			}
			return big
		}
		return dcResiduals(m, ds, scale)
	}
	lm, err := optim.LevenbergMarquardt(resid, de.X, &optim.LMOptions{
		MaxIter: 100, Lower: lo, Upper: hi,
		Observer: o, Scope: "extract.step2.dcfit.lm",
		Control: ctrl,
	})
	if err != nil {
		return DCFitResult{}, fmt.Errorf("extract: DC refinement: %w", err)
	}
	if err := m.SetParams(lm.X); err != nil {
		return DCFitResult{}, err
	}
	rel := mathx.RMS(dcResiduals(m, ds, scale))
	return DCFitResult{
		Model:   m,
		RMSE:    rel * scale,
		RelRMSE: rel,
		Evals:   evals,
	}, nil
}
