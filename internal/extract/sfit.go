package extract

import (
	"fmt"
	"math"
	"sync/atomic"

	"gnsslna/internal/device"
	"gnsslna/internal/vna"
)

// rfParamCount is the dimension of the RF (capacitance/charging) parameter
// vector fitted in steps 2-3.
const rfParamCount = 11

// rfParamNames documents the RF parameter vector layout.
var rfParamNames = []string{
	"Cgs0", "CgsPinch", "CgsVmid", "CgsVscale",
	"Cgd0", "CgdVscale", "Cds", "Ri", "Tau", "Cpg", "Cpd",
}

// RFBounds returns the search box for the RF parameter vector.
func RFBounds() (lo, hi []float64) {
	lo = []float64{
		0.5e-12, 0.1e-12, 0.0, 0.05,
		0.05e-12, 0.5, 0.1e-12, 0.1, 0, 0.05e-12, 0.05e-12,
	}
	hi = []float64{
		3e-12, 1.5e-12, 0.6, 0.5,
		0.6e-12, 5, 1.5e-12, 5, 6e-12, 0.6e-12, 0.6e-12,
	}
	return lo, hi
}

// applyRF writes an RF parameter vector into a device.
func applyRF(d *device.PHEMT, p []float64) {
	d.Caps.Cgs0 = p[0]
	d.Caps.CgsPinch = p[1]
	d.Caps.CgsVmid = p[2]
	d.Caps.CgsVscale = p[3]
	d.Caps.Cgd0 = p[4]
	d.Caps.CgdVscale = p[5]
	d.Caps.Cds = p[6]
	d.Ri = p[7]
	d.Tau = p[8]
	d.Ext.Cpg = p[9]
	d.Ext.Cpd = p[10]
}

// rfVector reads the RF parameter vector out of a device.
func rfVector(d *device.PHEMT) []float64 {
	return []float64{
		d.Caps.Cgs0, d.Caps.CgsPinch, d.Caps.CgsVmid, d.Caps.CgsVscale,
		d.Caps.Cgd0, d.Caps.CgdVscale, d.Caps.Cds, d.Ri, d.Tau,
		d.Ext.Cpg, d.Ext.Cpd,
	}
}

// SResidualBuilder precomputes everything needed to evaluate the S-parameter
// residual of a candidate device against a dataset quickly and repeatedly.
type SResidualBuilder struct {
	ds    *vna.Dataset
	dc    device.DCModel
	ext   device.Extrinsics
	norms [2][2]float64
	// fitExt, when true, appends the six series parasitics to the parameter
	// vector (used by the DE-only baseline which has no step 1).
	fitExt bool
	// resLen is the precomputed residual-vector length, so Residuals can
	// allocate its output exactly once.
	resLen int
	// evals is atomic: the optimizers may evaluate residuals from
	// concurrent worker goroutines.
	evals atomic.Int64
}

// NewSResidual builds a residual evaluator for the dataset with the DC model
// fixed (already fitted) and parasitics frozen to ext.
func NewSResidual(ds *vna.Dataset, dc device.DCModel, ext device.Extrinsics, fitExt bool) (*SResidualBuilder, error) {
	if ds == nil || len(ds.Hot) == 0 {
		return nil, fmt.Errorf("%w: no hot S-parameter sweeps", ErrInsufficientData)
	}
	b := &SResidualBuilder{ds: ds, dc: dc, ext: ext, fitExt: fitExt}
	// Normalize each S-parameter entry by its maximum magnitude over the
	// dataset so S21 (magnitude ~5) does not drown S12 (~0.05).
	for _, set := range ds.Hot {
		for _, s := range set.Net.S {
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					if m := absC(s[i][j]); m > b.norms[i][j] {
						b.norms[i][j] = m
					}
				}
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if b.norms[i][j] <= 0 {
				b.norms[i][j] = 1
			}
		}
	}
	for _, set := range ds.Hot {
		b.resLen += 8 * len(set.Net.Freqs)
	}
	return b, nil
}

// Dim returns the length of the parameter vector the evaluator expects.
func (b *SResidualBuilder) Dim() int {
	if b.fitExt {
		return rfParamCount + 6
	}
	return rfParamCount
}

// Bounds returns the search box matching Dim.
func (b *SResidualBuilder) Bounds() (lo, hi []float64) {
	lo, hi = RFBounds()
	if b.fitExt {
		lo = append(lo, 0, 0, 0, 0, 0, 0)
		hi = append(hi, 5, 3, 5, 2e-9, 1.5e-9, 2e-9) // Rg Rs Rd Lg Ls Ld
	}
	return lo, hi
}

// Evals returns the number of residual evaluations so far.
func (b *SResidualBuilder) Evals() int { return int(b.evals.Load()) }

// device materializes a candidate device from a parameter vector.
func (b *SResidualBuilder) device(p []float64) *device.PHEMT {
	d := &device.PHEMT{Name: "candidate", DC: b.dc, Ext: b.ext}
	applyRF(d, p[:rfParamCount])
	if b.fitExt {
		d.Ext.Rg, d.Ext.Rs, d.Ext.Rd = p[11], p[12], p[13]
		d.Ext.Lg, d.Ext.Ls, d.Ext.Ld = p[14], p[15], p[16]
		d.Ext.Cpg, d.Ext.Cpd = p[9], p[10]
	}
	return d
}

// Residuals returns the normalized residual vector (real and imaginary part
// of every S-parameter entry at every frequency and bias).
func (b *SResidualBuilder) Residuals(p []float64) []float64 {
	b.evals.Add(1)
	d := b.device(p)
	out := make([]float64, 0, b.resLen)
	for _, set := range b.ds.Hot {
		ss := d.SmallSignalAt(set.Bias)
		for k, f := range set.Net.Freqs {
			got, err := device.SFromSmallSignal(ss, d.Ext, f, b.ds.Z0)
			if err != nil {
				// Unusable candidate: huge flat residual.
				out = append(out,
					1e3, 1e3, 1e3, 1e3, 1e3, 1e3, 1e3, 1e3)
				continue
			}
			want := set.Net.S[k]
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					dv := (got[i][j] - want[i][j]) / complex(b.norms[i][j], 0)
					out = append(out, real(dv), imag(dv))
				}
			}
		}
	}
	return out
}

// RMSE returns the scalar root-mean-square of the normalized residuals.
func (b *SResidualBuilder) RMSE(p []float64) float64 {
	r := b.Residuals(p)
	var s float64
	for _, v := range r {
		s += v * v
	}
	return math.Sqrt(s / float64(len(r)))
}

// SRMSEOfDevice grades an arbitrary device against a dataset with the same
// normalized metric (used to compare extracted devices to the golden one).
func SRMSEOfDevice(d *device.PHEMT, ds *vna.Dataset) (float64, error) {
	b, err := NewSResidual(ds, d.DC, d.Ext, false)
	if err != nil {
		return 0, err
	}
	return b.RMSE(rfVector(d)), nil
}

func absC(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}
