package extract

import (
	"encoding/json"
	"fmt"

	"gnsslna/internal/device"
)

// deviceJSON is the serializable form of a *device.PHEMT: the DC model
// interface is flattened to its registered name plus parameter vector and
// rebuilt through device.AllModels on load.
type deviceJSON struct {
	Name        string            `json:"name"`
	Model       string            `json:"model"`
	ModelParams []float64         `json:"model_params"`
	Caps        device.CapModel   `json:"caps"`
	Ri          float64           `json:"ri"`
	Tau         float64           `json:"tau"`
	Ext         device.Extrinsics `json:"ext"`
	Noise       device.NoiseModel `json:"noise"`
}

// resultJSON is the serializable form of Result used by checkpointing.
type resultJSON struct {
	Device       *deviceJSON   `json:"device"`
	Cold         ColdFETResult `json:"cold"`
	DCRMSE       float64       `json:"dc_rmse"`
	DCRelRMSE    float64       `json:"dc_rel_rmse"`
	DCEvals      int           `json:"dc_evals"`
	SRMSE        float64       `json:"srmse"`
	SRMSEAfterDE float64       `json:"srmse_after_de"`
	SEvals       int           `json:"sevals"`
}

func modelByName(name string) (device.DCModel, error) {
	for _, m := range device.AllModels() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("extract: checkpoint references unknown DC model %q", name)
}

// MarshalJSON serializes the extraction result, including the embedded
// device, so a Result survives a checkpoint/resume round trip.
func (r Result) MarshalJSON() ([]byte, error) {
	s := resultJSON{
		Cold:         r.Cold,
		DCRMSE:       r.DC.RMSE,
		DCRelRMSE:    r.DC.RelRMSE,
		DCEvals:      r.DC.Evals,
		SRMSE:        r.SRMSE,
		SRMSEAfterDE: r.SRMSEAfterDE,
		SEvals:       r.SEvals,
	}
	if r.Device != nil {
		s.Device = &deviceJSON{
			Name:        r.Device.Name,
			Model:       r.Device.DC.Name(),
			ModelParams: r.Device.DC.Params(),
			Caps:        r.Device.Caps,
			Ri:          r.Device.Ri,
			Tau:         r.Device.Tau,
			Ext:         r.Device.Ext,
			Noise:       r.Device.Noise,
		}
	}
	return json.Marshal(s)
}

// UnmarshalJSON rebuilds a Result (and its device, including the DC model
// instance) from the checkpoint form produced by MarshalJSON.
func (r *Result) UnmarshalJSON(b []byte) error {
	var s resultJSON
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*r = Result{
		Cold:         s.Cold,
		DC:           DCFitResult{RMSE: s.DCRMSE, RelRMSE: s.DCRelRMSE, Evals: s.DCEvals},
		SRMSE:        s.SRMSE,
		SRMSEAfterDE: s.SRMSEAfterDE,
		SEvals:       s.SEvals,
	}
	if s.Device == nil {
		return nil
	}
	m, err := modelByName(s.Device.Model)
	if err != nil {
		return err
	}
	if err := m.SetParams(s.Device.ModelParams); err != nil {
		return fmt.Errorf("extract: checkpoint device params: %w", err)
	}
	r.Device = &device.PHEMT{
		Name:  s.Device.Name,
		DC:    m,
		Caps:  s.Device.Caps,
		Ri:    s.Device.Ri,
		Tau:   s.Device.Tau,
		Ext:   s.Device.Ext,
		Noise: s.Device.Noise,
	}
	r.DC.Model = m
	return nil
}
