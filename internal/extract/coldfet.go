// Package extract implements the paper's first contribution: a three-step
// robust identification of pHEMT model parameters combining direct and
// meta-heuristic optimization:
//
//	step 1 — direct (regression) extraction of the extrinsic parasitics
//	         from cold-FET measurements (Dambrine's method): an
//	         open-channel Vds = 0 sweep exposes the terminal inductances
//	         and the source resistance, a pinched sweep exposes the
//	         remaining resistances;
//	step 2 — global fits by differential evolution: the nonlinear DC model
//	         against the measured I-V grid, then the bias-dependent
//	         small-signal/capacitance parameters against the multi-bias
//	         S-parameter sweeps with parasitics frozen;
//	step 3 — joint local refinement of all parameters (including the
//	         parasitics) with Levenberg-Marquardt.
//
// The package also provides the single-method baselines (DE-only, LM-only,
// Nelder-Mead-only) the method-comparison experiment grades against.
package extract

import (
	"errors"
	"fmt"
	"math"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// ErrInsufficientData reports a dataset too small for the requested step.
var ErrInsufficientData = errors.New("extract: insufficient measurement data")

// ColdFETResult holds the step-1 output.
type ColdFETResult struct {
	// Ext holds the extracted extrinsic parasitics (pad capacitances are
	// not observable in this step and stay zero).
	Ext device.Extrinsics
	// PinchCaps reports the effective pinched branch capacitances from the
	// pinched sweep (diagnostic only).
	PinchCaps [3]float64
	// Residual is the RMS fit residual of the linear regressions.
	Residual float64
}

// zEntry is one regression of a Z-parameter entry: omega*Im(Z) =
// omega^2 * L - 1/C, plus the averaged real part over a frequency window.
type zEntry struct {
	re, l, invC, resid float64
}

// fitZEntry regresses one Z-matrix entry of the network. reLo/reHi select
// the fraction of the band (by index) used for the real-part average.
func fitZEntry(net *twoport.Network, pick func(z twoport.Mat2) complex128, reLo, reHi float64) (zEntry, error) {
	n := net.Len()
	a := mathx.NewMatrix(n, 2)
	b := make([]float64, n)
	var reSum float64
	var reCount int
	iLo, iHi := int(reLo*float64(n)), int(reHi*float64(n))
	for i := 0; i < n; i++ {
		z, err := twoport.SToZ(net.S[i], net.Z0)
		if err != nil {
			return zEntry{}, fmt.Errorf("extract: cold-FET S->Z at %g Hz: %w", net.Freqs[i], err)
		}
		v := pick(z)
		w := 2 * math.Pi * net.Freqs[i]
		a.Set(i, 0, w*w)
		a.Set(i, 1, -1)
		b[i] = w * imag(v)
		if i >= iLo && i < iHi {
			reSum += real(v)
			reCount++
		}
	}
	c, err := mathx.LeastSquares(a, b)
	if err != nil {
		return zEntry{}, fmt.Errorf("extract: cold-FET regression: %w", err)
	}
	var ss float64
	for i := 0; i < n; i++ {
		r := b[i] - (a.At(i, 0)*c[0] + a.At(i, 1)*c[1])
		ss += r * r
	}
	if reCount == 0 {
		reCount = 1
	}
	return zEntry{
		re:    reSum / float64(reCount),
		l:     c[0],
		invC:  c[1],
		resid: math.Sqrt(ss / float64(n)),
	}, nil
}

// ColdFET performs the direct step-1 extraction from the two cold-FET
// sweeps. The open-channel sweep (low channel resistance) exposes the
// terminal inductances in the Z-parameter imaginary parts and the source
// resistance in Re(Z12); the pinched sweep (purely capacitive intrinsic,
// upper band where impedances are moderate) exposes the gate and drain
// resistances.
func ColdFET(pinched, open *twoport.Network) (ColdFETResult, error) {
	if pinched == nil || pinched.Len() < 4 || open == nil || open.Len() < 4 {
		return ColdFETResult{}, fmt.Errorf("%w: cold-FET sweeps need >= 4 points each", ErrInsufficientData)
	}
	z11 := func(z twoport.Mat2) complex128 { return z[0][0] }
	z12 := func(z twoport.Mat2) complex128 { return (z[0][1] + z[1][0]) / 2 }
	z22 := func(z twoport.Mat2) complex128 { return z[1][1] }

	// Open channel: inductances plus Rs.
	o11, err := fitZEntry(open, z11, 0, 1)
	if err != nil {
		return ColdFETResult{}, err
	}
	o12, err := fitZEntry(open, z12, 0, 1)
	if err != nil {
		return ColdFETResult{}, err
	}
	o22, err := fitZEntry(open, z22, 0, 1)
	if err != nil {
		return ColdFETResult{}, err
	}

	// Pinched: resistances from the upper half of the band where the
	// capacitive impedances are low enough for Re(Z) to be readable
	// through the VNA trace noise.
	p11, err := fitZEntry(pinched, z11, 0.5, 1)
	if err != nil {
		return ColdFETResult{}, err
	}
	p22, err := fitZEntry(pinched, z22, 0.5, 1)
	if err != nil {
		return ColdFETResult{}, err
	}

	pos := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	rs := pos(o12.re)
	ls := pos(o12.l)
	res := ColdFETResult{
		Ext: device.Extrinsics{
			Rs: rs,
			// Pinched Re(Z11) = Rg + Rs (+ a diluted share of Ri, an
			// accepted small positive bias refined away in step 3).
			Rg: pos(p11.re - rs),
			Rd: pos(p22.re - rs),
			Ls: ls,
			Lg: pos(o11.l - ls),
			Ld: pos(o22.l - ls),
		},
		Residual: (o11.resid + o12.resid + o22.resid) / 3,
	}
	for i, e := range []zEntry{p11, {invC: 0}, p22} {
		if e.invC > 0 {
			res.PinchCaps[i] = 1 / e.invC
		}
	}
	return res, nil
}
