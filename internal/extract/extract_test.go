package extract

import (
	"math"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/vna"
)

// testDataset builds a small, fast measurement campaign of the golden
// device shared by the extraction tests.
func testDataset(t *testing.T, seed int64) *vna.Dataset {
	t.Helper()
	cfg := vna.DefaultCampaign(seed)
	ds, err := vna.RunCampaign(device.Golden(), cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	return ds
}

func TestColdFETRecoversParasitics(t *testing.T) {
	ds := testDataset(t, 11)
	golden := device.Golden()
	res, err := ColdFET(ds.ColdPinched, ds.ColdOpen)
	if err != nil {
		t.Fatalf("ColdFET: %v", err)
	}
	// The direct method is approximate (pads, trace noise, Ri dilution in
	// Re(Z11)); require the resistances within ~1 ohm and inductances
	// within ~50%.
	checks := []struct {
		name       string
		got, want  float64
		absTol     float64
		relTolFrac float64
	}{
		{"Rs", res.Ext.Rs, golden.Ext.Rs, 0.8, 0},
		{"Rg", res.Ext.Rg, golden.Ext.Rg, 1.3, 0}, // Ri share biases Rg high
		{"Rd", res.Ext.Rd, golden.Ext.Rd, 1.0, 0},
		{"Ls", res.Ext.Ls, golden.Ext.Ls, 0.15e-9, 0.5},
		{"Lg", res.Ext.Lg, golden.Ext.Lg, 0.25e-9, 0.5},
		{"Ld", res.Ext.Ld, golden.Ext.Ld, 0.25e-9, 0.5},
	}
	for _, c := range checks {
		tol := c.absTol + c.relTolFrac*math.Abs(c.want)
		if math.Abs(c.got-c.want) > tol {
			t.Errorf("%s = %.4g, want %.4g (+/- %.2g)", c.name, c.got, c.want, tol)
		}
	}
	if _, err := ColdFET(nil, ds.ColdOpen); err == nil {
		t.Error("nil pinched network accepted")
	}
	if _, err := ColdFET(ds.ColdPinched, nil); err == nil {
		t.Error("nil open network accepted")
	}
}

func TestFitDCAngelovRecoversCurve(t *testing.T) {
	ds := testDataset(t, 21)
	m := device.NewAngelov()
	res, err := FitDC(m, ds, 3, 15000)
	if err != nil {
		t.Fatalf("FitDC: %v", err)
	}
	// With 1% current noise the relative RMSE should land near the noise
	// floor.
	if res.RelRMSE > 0.03 {
		t.Errorf("Angelov DC fit RelRMSE = %g, want < 0.03", res.RelRMSE)
	}
	// The fitted model must track the golden curve at unseen points.
	golden := device.Golden().DC
	for _, vgs := range []float64{0.42, 0.55, 0.67} {
		want := golden.Ids(vgs, 2.5)
		got := m.Ids(vgs, 2.5)
		if math.Abs(got-want) > 0.05*want+0.5e-3 {
			t.Errorf("fitted Ids(%g, 2.5) = %g, golden %g", vgs, got, want)
		}
	}
	if res.Evals == 0 {
		t.Error("eval count missing")
	}
}

func TestFitDCModelRanking(t *testing.T) {
	// The Angelov class (which generated the data) must fit at least as
	// well as the quadratic Curtice model — the E1 expectation.
	ds := testDataset(t, 31)
	ang := device.NewAngelov()
	resA, err := FitDC(ang, ds, 5, 15000)
	if err != nil {
		t.Fatal(err)
	}
	c2 := device.NewCurticeQuadratic()
	resC, err := FitDC(c2, ds, 5, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if resA.RelRMSE > resC.RelRMSE {
		t.Errorf("Angelov fit (%g) worse than Curtice-2 (%g)", resA.RelRMSE, resC.RelRMSE)
	}
}

func TestThreeStepExtractionEndToEnd(t *testing.T) {
	ds := testDataset(t, 41)
	cfg := Config{Seed: 7, DCEvals: 12000, GlobalEvals: 6000, RefineIters: 40}
	res, err := ThreeStep(ds, device.NewAngelov(), cfg)
	if err != nil {
		t.Fatalf("ThreeStep: %v", err)
	}
	// The normalized S residual after refinement should approach the VNA
	// noise floor (sigma 0.002 against norms of order 1-7 -> ~1e-3..1e-2).
	if res.SRMSE > 0.05 {
		t.Errorf("final SRMSE = %g, want < 0.05", res.SRMSE)
	}
	// Refinement must not worsen the DE solution.
	if res.SRMSE > res.SRMSEAfterDE*1.01 {
		t.Errorf("LM refinement degraded the fit: %g -> %g", res.SRMSEAfterDE, res.SRMSE)
	}
	// Capacitance recovery within 25% (the observable band limits
	// identifiability).
	golden := device.Golden()
	if g, w := res.Device.Caps.Cgs0, golden.Caps.Cgs0; math.Abs(g-w) > 0.25*w {
		t.Errorf("Cgs0 = %g, golden %g", g, w)
	}
	if res.Device.Name == "" || res.SEvals == 0 {
		t.Error("result metadata incomplete")
	}
}

func TestThreeStepBeatsLocalBaselines(t *testing.T) {
	// The paper's claim (E2): the combined method is more robust than a
	// single local method from a random start.
	ds := testDataset(t, 51)
	dc := device.NewAngelov()
	if _, err := FitDC(dc, ds, 9, 12000); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 9, DCEvals: 1, GlobalEvals: 5000, RefineIters: 30}
	three, err := RunMethod(ds, dc, MethodThreeStep, cfg)
	if err != nil {
		t.Fatalf("three-step: %v", err)
	}
	nm, err := RunMethod(ds, dc, MethodNMOnly, cfg)
	if err != nil {
		t.Fatalf("NM-only: %v", err)
	}
	if three.SRMSE >= nm.SRMSE {
		t.Errorf("three-step (%g) not better than NM-only (%g)", three.SRMSE, nm.SRMSE)
	}
	lm, err := RunMethod(ds, dc, MethodLMOnly, cfg)
	if err != nil {
		t.Fatalf("LM-only: %v", err)
	}
	if three.SRMSE >= lm.SRMSE {
		t.Errorf("three-step (%g) not better than LM-only (%g)", three.SRMSE, lm.SRMSE)
	}
	if _, err := RunMethod(ds, dc, Method("bogus"), cfg); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSResidualNormalization(t *testing.T) {
	ds := testDataset(t, 61)
	b, err := NewSResidual(ds, device.Golden().DC, device.Golden().Ext, false)
	if err != nil {
		t.Fatalf("NewSResidual: %v", err)
	}
	if b.Dim() != rfParamCount {
		t.Errorf("dim = %d, want %d", b.Dim(), rfParamCount)
	}
	lo, hi := b.Bounds()
	if len(lo) != b.Dim() || len(hi) != b.Dim() {
		t.Error("bounds dimension mismatch")
	}
	// Golden parameters must give a near-noise-floor residual. The floor is
	// set by the trace noise divided by the smallest normalization (S12):
	// ~0.002/0.05 per part, ~0.015 RMS over all entries.
	rmse := b.RMSE(rfVector(device.Golden()))
	if rmse > 0.025 {
		t.Errorf("golden-parameter residual = %g, want ~noise floor (~0.015)", rmse)
	}
	// A wrong candidate must score much worse.
	bad := append([]float64(nil), rfVector(device.Golden())...)
	bad[0] *= 2 // double Cgs0
	if worse := b.RMSE(bad); worse < 3*rmse {
		t.Errorf("distorted candidate too cheap: %g vs golden %g", worse, rmse)
	}
	if len(rfParamNames) != rfParamCount {
		t.Error("rfParamNames out of sync")
	}
}

func TestSRMSEOfDevice(t *testing.T) {
	ds := testDataset(t, 71)
	v, err := SRMSEOfDevice(device.Golden(), ds)
	if err != nil {
		t.Fatalf("SRMSEOfDevice: %v", err)
	}
	if v <= 0 || v > 0.025 {
		t.Errorf("golden SRMSE = %g, want small positive (noise floor)", v)
	}
}

func TestThreeStepOnProcessVariants(t *testing.T) {
	// Extraction must converge on process-shifted devices, not just the
	// nominal golden one.
	for _, seed := range []int64{101, 202} {
		dev, err := device.GoldenVariant(seed)
		if err != nil {
			t.Fatalf("variant %d: %v", seed, err)
		}
		cfg := vna.DefaultCampaign(seed)
		ds, err := vna.RunCampaign(dev, cfg)
		if err != nil {
			t.Fatalf("variant %d: campaign: %v", seed, err)
		}
		res, err := ThreeStep(ds, device.NewAngelov(), Config{
			Seed: seed, DCEvals: 8000, GlobalEvals: 3500, RefineIters: 25,
		})
		if err != nil {
			t.Fatalf("variant %d: ThreeStep: %v", seed, err)
		}
		if res.SRMSE > 0.06 {
			t.Errorf("variant %d: SRMSE %g, want < 0.06", seed, res.SRMSE)
		}
		if res.DC.RelRMSE > 0.04 {
			t.Errorf("variant %d: DC rel RMSE %g, want < 0.04", seed, res.DC.RelRMSE)
		}
	}
}

func TestRunMethodDEOnlySearchesParasitics(t *testing.T) {
	// The DE-only baseline has no cold-FET step: it must still reach a
	// decent fit by searching the parasitics itself (at higher dimension).
	ds := testDataset(t, 81)
	dc := device.NewAngelov()
	if _, err := FitDC(dc, ds, 13, 10000); err != nil {
		t.Fatal(err)
	}
	res, err := RunMethod(ds, dc, MethodDEOnly, Config{
		Seed: 13, DCEvals: 1, GlobalEvals: 6000, RefineIters: 20,
	})
	if err != nil {
		t.Fatalf("DE-only: %v", err)
	}
	if res.SRMSE > 0.08 {
		t.Errorf("DE-only SRMSE = %g, want < 0.08", res.SRMSE)
	}
	if res.Evals == 0 {
		t.Error("missing eval count")
	}
}
