package obs

import (
	"errors"
	"testing"
)

// failingWriter succeeds for the first n writes, then fails every call.
type failingWriter struct {
	n   int
	err error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestJournalCloseSurfacesStickyWriteError pins the journal's error
// contract: the first append/flush failure sticks, every later Append
// returns it, and Close surfaces it instead of swallowing it — so a caller
// that only checks Close still learns the journal on disk is incomplete.
func TestJournalCloseSurfacesStickyWriteError(t *testing.T) {
	boom := errors.New("disk full")
	j := NewJournal(&failingWriter{n: 1, err: boom})

	if err := j.Append(Record{Event: "generation", Scope: "s"}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := j.Append(Record{Event: "generation", Scope: "s"}); !errors.Is(err, boom) {
		t.Fatalf("second append err = %v, want %v", err, boom)
	}
	// The error sticks: later appends fail fast without writing.
	if err := j.Append(Record{Event: "done", Scope: "s"}); !errors.Is(err, boom) {
		t.Fatalf("third append err = %v, want sticky %v", err, boom)
	}
	if err := j.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
	if err := j.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the first write error %v", err, boom)
	}
}

// TestJournalCloseFlushError covers the complementary path: every write
// fails, so the very first Append already surfaces the flush error and
// Close repeats it.
func TestJournalCloseFlushError(t *testing.T) {
	boom := errors.New("short write")
	j := NewJournal(&failingWriter{n: 0, err: boom})
	if err := j.Append(Record{Event: "sample", Scope: "x", WallMs: 1}); !errors.Is(err, boom) {
		t.Fatalf("append err = %v, want %v", err, boom)
	}
	if err := j.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want %v", err, boom)
	}
}
