package replay

import (
	"sort"

	"gnsslna/internal/obs"
)

// EpochUnixMS returns the wall-clock anchor of the journal: the unix time (in
// milliseconds) of its t=0, derived from the first epoch record as
// unix_ms - t_ms. Zero when the journal carries no epoch record (written
// before the epoch model, or by a process that never called AppendEpoch).
func EpochUnixMS(r *Run) float64 {
	for _, rec := range r.Records {
		if rec.Event == obs.EpochEvent {
			if u, ok := rec.Fields["unix_ms"]; ok && u > 0 {
				return u - rec.TMs
			}
		}
	}
	return 0
}

// Merge stitches journals from different processes onto one timeline — the
// serve journals of a crashed lnaservd and its restart become a single run a
// trace reconstruction can span. Each journal's relative clock is re-anchored
// on the earliest epoch among the inputs (journals without an epoch keep
// their own t=0 on the merged timeline), records are ordered by the shifted
// timestamp with input order breaking ties, and sequence numbers are
// re-stamped to the merged order. The inputs are not modified.
func Merge(runs ...*Run) *Run {
	base := 0.0
	for _, r := range runs {
		if t0 := EpochUnixMS(r); t0 > 0 && (base == 0 || t0 < base) {
			base = t0
		}
	}
	var total int
	for _, r := range runs {
		total += len(r.Records)
	}
	merged := &Run{Records: make([]obs.Record, 0, total)}
	for _, r := range runs {
		offset := 0.0
		if t0 := EpochUnixMS(r); t0 > 0 && base > 0 {
			offset = t0 - base
		}
		for _, rec := range r.Records {
			rec.TMs += offset
			merged.Records = append(merged.Records, rec)
		}
	}
	sort.SliceStable(merged.Records, func(a, b int) bool {
		return merged.Records[a].TMs < merged.Records[b].TMs
	})
	for i := range merged.Records {
		merged.Records[i].Seq = int64(i + 1)
	}
	return merged
}
