package replay

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gnsslna/internal/obs"
	"gnsslna/internal/optim"
)

// tracedRun produces a journal from a real traced, parallel DE run bracketed
// by a root run span — the same shape obscli sessions write.
func tracedRun(t *testing.T) *Run {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	hub := obs.NewHub(nil, j)
	tr := obs.NewTracerID(99)
	tr.SetOutliers(obs.NewOutlierDetector())
	root := obs.NewTraced(hub, tr)

	root.Observe(obs.Event{Kind: obs.KindSpanBegin, Scope: "run.test"})
	sphere := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v * v
		}
		return s
	}
	if _, err := optim.DifferentialEvolution(sphere, []float64{-2, -2}, []float64{2, 2}, &optim.DEOptions{
		Pop: 20, Generations: 6, Seed: 1, Workers: 2, Observer: root,
	}); err != nil {
		t.Fatal(err)
	}
	root.Observe(obs.Event{Kind: obs.KindSpanEnd, Scope: "run.test", Value: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestBuildTraceGolden is the structural golden test of the acceptance
// criteria: the reconstructed tree must be root run span → solver run →
// per-generation spans → per-worker eval spans.
func TestBuildTraceGolden(t *testing.T) {
	run := tracedRun(t)
	tree := BuildTrace(run)

	if tree.TraceID != 99 {
		t.Errorf("trace ID = %d, want 99", tree.TraceID)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("got %d roots, want exactly the run span", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Scope != "run.test" || root.Kind != "phase" {
		t.Fatalf("root = %s/%s, want run.test/phase", root.Scope, root.Kind)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want the one solver run", len(root.Children))
	}
	solver := root.Children[0]
	if solver.Scope != "optim.de" || solver.Kind != "run" {
		t.Fatalf("solver span = %s/%s, want optim.de/run", solver.Scope, solver.Kind)
	}
	if solver.Evals <= 0 || solver.Best.IsNaN() {
		t.Errorf("solver span evals=%d best=%v", solver.Evals, solver.Best)
	}

	var gens, workers int
	for _, c := range solver.Children {
		switch c.Kind {
		case "generation":
			gens++
			if c.Dur() < 0 {
				t.Errorf("generation %d has negative duration %g", c.Gen, c.Dur())
			}
			for _, w := range c.Children {
				if w.Kind != "worker" {
					t.Errorf("generation child kind = %s", w.Kind)
				}
				workers++
			}
		case "worker":
			// Initial-population batch workers parent under the run itself.
			workers++
		default:
			t.Errorf("unexpected solver child kind %s (%s)", c.Kind, c.Scope)
		}
	}
	if gens != 6 {
		t.Errorf("reconstructed %d generation spans, want 6", gens)
	}
	if workers == 0 {
		t.Error("no worker spans reconstructed")
	}

	// Span intervals nest inside the journal horizon.
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.StartMs > s.EndMs {
			t.Errorf("span %d (%s) inverted: %g..%g", s.ID, s.Scope, s.StartMs, s.EndMs)
		}
		if s.EndMs > tree.EndMs+1e-9 {
			t.Errorf("span %d ends at %g beyond horizon %g", s.ID, s.EndMs, tree.EndMs)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
}

// TestWriteTraceTreeText smoke-checks the ASCII rendering.
func TestWriteTraceTreeText(t *testing.T) {
	run := tracedRun(t)
	var out bytes.Buffer
	if err := WriteTraceTree(&out, run); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"run.test", "optim.de", "gen 0", ".worker"} {
		if !strings.Contains(text, want) {
			t.Errorf("tree output missing %q:\n%s", want, text)
		}
	}
}

// TestWritePerfettoTrace validates the Chrome trace-event export: the JSON
// must unmarshal, carry one complete event per span on the right lanes, and
// name the worker threads.
func TestWritePerfettoTrace(t *testing.T) {
	run := tracedRun(t)
	tree := BuildTrace(run)
	var out bytes.Buffer
	if err := WritePerfettoTrace(&out, run); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var complete, workerLane int
	threadNames := map[string]bool{}
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Pid != 1 || e.Tid < 1 {
				t.Errorf("complete event %q on pid %d tid %d", e.Name, e.Pid, e.Tid)
			}
			if e.Dur < 0 {
				t.Errorf("complete event %q has negative dur %g", e.Name, e.Dur)
			}
			if e.Tid > 1 {
				workerLane++
			}
		case "M":
			if e.Name == "thread_name" {
				threadNames[e.Args["name"].(string)] = true
			}
		}
	}
	if complete != tree.Count {
		t.Errorf("%d complete events for %d spans", complete, tree.Count)
	}
	if workerLane == 0 {
		t.Error("no events on worker lanes")
	}
	// Which worker ordinals appear depends on claim scheduling (a fast
	// worker can drain a small batch alone), but at least one worker lane
	// must be named alongside the driver.
	anyWorker := false
	for name := range threadNames {
		if strings.HasPrefix(name, "worker ") {
			anyWorker = true
		}
	}
	if !threadNames["driver"] || !anyWorker {
		t.Errorf("thread names = %v, want driver and at least one worker lane", threadNames)
	}
}

// TestPerfettoRejectsUntracedJournal pins the smoke-check contract: a
// journal without trace identity (a pre-trace journal or an untraced run)
// is an explicit error, not an empty file.
func TestPerfettoRejectsUntracedJournal(t *testing.T) {
	run := &Run{Records: []obs.Record{
		{Seq: 1, Event: "generation", Scope: "optim.de", Gen: 0, Evals: 10, Best: 1},
		{Seq: 2, Event: "done", Scope: "optim.de", Evals: 100, Best: 0.5},
	}}
	var out bytes.Buffer
	if err := WritePerfettoTrace(&out, run); err == nil {
		t.Fatal("untraced journal exported without error")
	}
	// The tree writer degrades to a notice instead.
	out.Reset()
	if err := WriteTraceTree(&out, run); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no trace spans") {
		t.Errorf("tree output for untraced journal: %q", out.String())
	}
}

// TestBuildTraceSerialGenPoints checks the degradation for solvers that
// iterate on their run span without per-generation spans (LM): the
// generation records become flat convergence points, not bogus spans.
func TestBuildTraceSerialGenPoints(t *testing.T) {
	run := &Run{Records: []obs.Record{
		{Seq: 1, TMs: 1, Event: "generation", Scope: "optim.lm", Gen: 1, Trace: 3, Span: 2, Parent: 1, Best: 5},
		{Seq: 2, TMs: 2, Event: "generation", Scope: "optim.lm", Gen: 2, Trace: 3, Span: 2, Parent: 1, Best: 4},
		{Seq: 3, TMs: 3, Event: "done", Scope: "optim.lm", Evals: 30, Trace: 3, Span: 2, Parent: 1, Best: 4, WallMs: 3},
	}}
	tree := BuildTrace(run)
	if tree.Count != 1 {
		t.Fatalf("reconstructed %d spans, want 1 run span", tree.Count)
	}
	s := tree.Roots[0]
	if s.Kind != "run" || len(s.Points) != 2 {
		t.Fatalf("span kind %s with %d points, want run with 2", s.Kind, len(s.Points))
	}
	if s.Points[1].Gen != 2 || s.Points[1].Best != 4 {
		t.Errorf("second point = %+v", s.Points[1])
	}
}
