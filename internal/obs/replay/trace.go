package replay

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"gnsslna/internal/obs"
)

// Span is one node of a reconstructed trace tree: a solver run, a pipeline
// phase, one generation's evaluation batch, or one pool worker's share of a
// batch. Spans are rebuilt purely from journal records — the write side
// never journals span lifecycles separately, spans exist through the records
// emitted into them.
type Span struct {
	// ID and Parent are the causal identifiers stamped by obs.Traced.
	ID     uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	// Scope names the instrumented loop or phase.
	Scope string `json:"scope"`
	// Kind classifies the reconstruction source: "phase" (span-begin/end
	// pair), "run" (done record), "generation" (per-generation span) or
	// "worker" (worker-attributed span-end).
	Kind string `json:"kind"`
	// Gen is the generation ordinal (generation spans).
	Gen int `json:"gen,omitempty"`
	// Worker is the 1-based pool-worker ordinal (worker spans).
	Worker int `json:"worker,omitempty"`
	// StartMs and EndMs bound the span, milliseconds on the journal clock.
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	// Evals is the evaluation count attributed to the span.
	Evals int64 `json:"evals,omitempty"`
	// Best is the best objective the span reported (NaN — JSON null — when
	// it reported none).
	Best OptFloat `json:"best"`
	// Points holds flat per-generation convergence points for serial solvers
	// that report generations on the run span itself rather than allocating
	// per-generation spans (LM's accepted iterations, SA's strided samples).
	Points []GenPoint `json:"points,omitempty"`
	// Outliers holds slow-evaluation flags attributed to the span.
	Outliers []Outlier `json:"outliers,omitempty"`
	// Children are the causally enclosed spans, ordered by start time.
	Children []*Span `json:"children,omitempty"`

	open   bool    // span-begin seen, no close yet
	firstT float64 // first record referencing the span (fallback bound)
}

// Dur returns the span duration in milliseconds.
func (s *Span) Dur() float64 { return s.EndMs - s.StartMs }

// GenPoint is one flat convergence point attached to a run span.
type GenPoint struct {
	TMs   float64 `json:"t_ms"`
	Gen   int     `json:"gen"`
	Evals int64   `json:"evals"`
	Best  float64 `json:"best"`
}

// Outlier is one slow-evaluation flag from the latency outlier detector:
// candidate Index in its batch took Ms, beyond the scope's p99 gate.
type Outlier struct {
	TMs   float64 `json:"t_ms"`
	Scope string  `json:"scope"`
	Index int     `json:"index"`
	Ms    float64 `json:"ms"`
}

// TraceTree is the reconstructed causal view of one journal.
type TraceTree struct {
	// TraceID is the run identity shared by the traced records (zero when
	// the journal mixes traces; the first seen wins for display).
	TraceID uint64 `json:"trace"`
	// Roots are the top-level spans (usually one run.<tool> span).
	Roots []*Span `json:"roots"`
	// Count is the total number of reconstructed spans.
	Count int `json:"count"`
	// EndMs is the last journal timestamp, the trace's horizon.
	EndMs float64 `json:"end_ms"`
}

// BuildTrace reconstructs the span tree from the run's records. Journals
// written before the trace model (or from untraced runs) yield an empty tree
// rather than an error: every record without span identity is skipped.
//
// Reconstruction rules mirror the write side:
//
//   - span-begin/span-end pairs sharing a Span bound a "phase" span;
//   - a done record is a "run" span covering [t_ms - wall_ms, t_ms];
//   - a span-end with no begin (the pool's worker spans) is bounded the same
//     way from its own wall time;
//   - a generation record with a dedicated span gets its duration from the
//     delta of successive cumulative wall times under the same parent;
//   - generation records reusing the run's own span (serial solvers that
//     never open per-generation spans) become flat Points on the run span;
//   - ".outlier" samples attach to the span they were attributed to.
func BuildTrace(r *Run) *TraceTree {
	return buildSpans(r.Records, horizonOf(r.Records))
}

// BuildTraces reconstructs one span tree per trace identity in the journal,
// in order of first appearance. Multi-process serve journals carry one trace
// per job; grouping by trace ID keeps each job's causal tree separate where
// BuildTrace would lump them into one forest. All trees share the journal's
// global horizon, so a single-trace journal reconstructs identically through
// either entry point. Records without span identity belong to no trace and
// are skipped (they still extend the horizon).
func BuildTraces(r *Run) []*TraceTree {
	horizon := horizonOf(r.Records)
	groups := map[uint64][]int{}
	var order []uint64
	for i, rec := range r.Records {
		if rec.Span == 0 {
			continue
		}
		if _, ok := groups[rec.Trace]; !ok {
			order = append(order, rec.Trace)
		}
		groups[rec.Trace] = append(groups[rec.Trace], i)
	}
	trees := make([]*TraceTree, 0, len(order))
	for _, id := range order {
		recs := make([]obs.Record, 0, len(groups[id]))
		for _, i := range groups[id] {
			recs = append(recs, r.Records[i])
		}
		trees = append(trees, buildSpans(recs, horizon))
	}
	return trees
}

// horizonOf is the last timestamp any record carries — the trace horizon
// truncated spans are closed at.
func horizonOf(records []obs.Record) float64 {
	var h float64
	for _, rec := range records {
		if rec.TMs > h {
			h = rec.TMs
		}
	}
	return h
}

func buildSpans(records []obs.Record, horizon float64) *TraceTree {
	// First pass: find span IDs used by exactly one generation record and
	// nothing else — those become dedicated generation spans. IDs reused
	// across records (LM iterating on its run span) collect Points instead.
	genOnly := map[uint64]int{}
	for _, rec := range records {
		if rec.Span == 0 {
			continue
		}
		switch rec.Event {
		case "generation":
			genOnly[rec.Span]++
		case "span-begin", "span-end", "done":
			genOnly[rec.Span] = -1 << 30
		}
	}

	t := &TraceTree{EndMs: horizon}
	spans := map[uint64]*Span{}
	var order []*Span
	get := func(id uint64, tms float64) *Span {
		s := spans[id]
		if s == nil {
			s = &Span{ID: id, Best: OptFloat(math.NaN()), firstT: tms}
			spans[id] = s
			order = append(order, s)
		}
		return s
	}
	setParent := func(s *Span, parent uint64) {
		if s.Parent == 0 && parent != s.ID {
			s.Parent = parent
		}
	}
	genPrev := map[uint64]float64{} // run span -> cumulative wall at last gen

	for _, rec := range records {
		if rec.TMs > t.EndMs {
			t.EndMs = rec.TMs
		}
		if rec.Span == 0 {
			continue
		}
		if t.TraceID == 0 {
			t.TraceID = rec.Trace
		}
		switch rec.Event {
		case "span-begin":
			s := get(rec.Span, rec.TMs)
			s.Scope, s.Kind = rec.Scope, "phase"
			s.StartMs, s.open = rec.TMs, true
			setParent(s, rec.Parent)
		case "span-end":
			s := get(rec.Span, rec.TMs)
			if s.Scope == "" {
				s.Scope = rec.Scope
			}
			s.EndMs = rec.TMs
			s.Evals = rec.Evals
			if !s.open {
				s.StartMs = rec.TMs - rec.WallMs
			}
			s.open = false
			if rec.Worker > 0 {
				s.Kind, s.Worker = "worker", rec.Worker
			} else if s.Kind == "" {
				s.Kind = "phase"
			}
			setParent(s, rec.Parent)
		case "done":
			s := get(rec.Span, rec.TMs)
			s.Scope, s.Kind = rec.Scope, "run"
			s.StartMs, s.EndMs = rec.TMs-rec.WallMs, rec.TMs
			s.Evals, s.Best = rec.Evals, OptFloat(rec.Best)
			s.open = false
			setParent(s, rec.Parent)
		case "generation":
			if genOnly[rec.Span] == 1 {
				s := get(rec.Span, rec.TMs)
				s.Scope, s.Kind = rec.Scope, "generation"
				s.Gen, s.Evals, s.Best = rec.Gen, rec.Evals, OptFloat(rec.Best)
				d := rec.WallMs - genPrev[rec.Parent]
				if d < 0 {
					d = 0
				}
				genPrev[rec.Parent] = rec.WallMs
				s.StartMs, s.EndMs = rec.TMs-d, rec.TMs
				setParent(s, rec.Parent)
			} else {
				s := get(rec.Span, rec.TMs)
				if s.Scope == "" {
					s.Scope = rec.Scope
				}
				s.Points = append(s.Points, GenPoint{
					TMs: rec.TMs, Gen: rec.Gen, Evals: rec.Evals, Best: rec.Best,
				})
			}
		case "sample":
			if strings.HasSuffix(rec.Scope, ".outlier") {
				s := get(rec.Span, rec.TMs)
				s.Outliers = append(s.Outliers, Outlier{
					TMs: rec.TMs, Scope: rec.Scope, Index: rec.Gen, Ms: rec.WallMs,
				})
			}
		}
	}

	// Close spans truncated by a crash and bound spans only ever referenced
	// by membership events at the trace horizon.
	for _, s := range order {
		if s.Kind == "" {
			s.Kind = "phase"
		}
		if s.open || s.EndMs < s.StartMs {
			s.EndMs = t.EndMs
		}
		if s.EndMs == 0 && s.StartMs == 0 {
			s.StartMs, s.EndMs = s.firstT, t.EndMs
		}
	}

	for _, s := range order {
		if p := spans[s.Parent]; p != nil && p != s {
			p.Children = append(p.Children, s)
		} else {
			t.Roots = append(t.Roots, s)
		}
	}
	sortSpans(t.Roots)
	for _, s := range order {
		sortSpans(s.Children)
	}
	t.Count = len(order)
	return t
}

// sortSpans orders siblings by start time, breaking ties on span ID (which
// is allocation order, i.e. causal order on the driver).
func sortSpans(ss []*Span) {
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].StartMs != ss[b].StartMs {
			return ss[a].StartMs < ss[b].StartMs
		}
		return ss[a].ID < ss[b].ID
	})
}

// label renders a span's display name for the tree and flame views.
func (s *Span) label() string {
	switch s.Kind {
	case "generation":
		return fmt.Sprintf("%s gen %d", s.Scope, s.Gen)
	case "worker":
		return fmt.Sprintf("%s %d", s.Scope, s.Worker)
	}
	return s.Scope
}

// WriteTraceTree renders the reconstructed traces as indented ASCII trees:
// one tree per trace identity (a serve journal carries one per job), one line
// per span with its interval, duration, evaluation count and best objective,
// flat convergence points summarized, outlier flags called out. Single-trace
// journals render exactly as they always have.
func WriteTraceTree(w io.Writer, r *Run) error {
	trees := BuildTraces(r)
	if len(trees) == 0 {
		_, err := fmt.Fprintln(w, "journal carries no trace spans (untraced run or pre-trace journal)")
		return err
	}
	for i, t := range trees {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "trace %d: %d spans over %.1f ms\n", t.TraceID, t.Count, t.EndMs); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-52s %10s %10s %10s %10s\n",
			"span", "start_ms", "dur_ms", "evals", "best"); err != nil {
			return err
		}
		for _, root := range t.Roots {
			if err := writeSpanTree(w, root, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSpanTree(w io.Writer, s *Span, depth int) error {
	label := strings.Repeat("  ", depth) + s.label()
	if n := len(s.Points); n > 0 {
		label += fmt.Sprintf(" (%d gens)", n)
	}
	if n := len(s.Outliers); n > 0 {
		label += fmt.Sprintf(" !%d outliers", n)
	}
	if _, err := fmt.Fprintf(w, "%-52s %10.1f %10.1f %10d %10s\n",
		label, s.StartMs, s.Dur(), s.Evals, fmtBest(float64(s.Best))); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeSpanTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// perfettoEvent is one Chrome trace-event ("X" complete span, "i" instant,
// "M" metadata) as consumed by chrome://tracing and ui.perfetto.dev.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON object format of the trace-event spec.
type perfettoFile struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// WritePerfettoTrace renders the reconstructed trace as Chrome trace-event
// JSON (the Perfetto/chrome://tracing interchange format): every span is a
// complete "X" event with microsecond timestamps, driver-side spans on tid 1
// and each pool worker on its own lane, outlier flags as instant events. A
// journal with no trace spans is an error — this is the smoke check `make
// trace-smoke` relies on.
func WritePerfettoTrace(w io.Writer, r *Run) error {
	trees := BuildTraces(r)
	if len(trees) == 0 {
		return errors.New("replay: journal carries no trace spans (untraced run or pre-trace journal)")
	}
	var evs []perfettoEvent
	for i, t := range trees {
		pid := 1 + i
		evs = append(evs, perfettoEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 1,
			Args: map[string]any{"name": fmt.Sprintf("gnsslna trace %d", t.TraceID)},
		})
		lanes := map[int]string{1: "driver"}

		var walk func(s *Span)
		walk = func(s *Span) {
			tid := 1
			if s.Worker > 0 {
				tid = 1 + s.Worker
				lanes[tid] = fmt.Sprintf("worker %d", s.Worker)
			}
			args := map[string]any{"span": s.ID}
			if s.Parent != 0 {
				args["parent"] = s.Parent
			}
			if s.Evals > 0 {
				args["evals"] = s.Evals
			}
			if !s.Best.IsNaN() {
				args["best"] = float64(s.Best)
			}
			if s.Kind == "generation" {
				args["gen"] = s.Gen
			}
			if len(s.Points) > 0 {
				args["gens"] = len(s.Points)
			}
			evs = append(evs, perfettoEvent{
				Name: s.label(), Cat: s.Kind, Ph: "X",
				Ts: s.StartMs * 1000, Dur: s.Dur() * 1000,
				Pid: pid, Tid: tid, Args: args,
			})
			for _, o := range s.Outliers {
				evs = append(evs, perfettoEvent{
					Name: o.Scope, Cat: "outlier", Ph: "i", S: "t",
					Ts: o.TMs * 1000, Pid: pid, Tid: tid,
					Args: map[string]any{"index": o.Index, "ms": o.Ms},
				})
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		for _, root := range t.Roots {
			walk(root)
		}

		tids := make([]int, 0, len(lanes))
		for tid := range lanes {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			evs = append(evs, perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": lanes[tid]},
			}, perfettoEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"sort_index": tid},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(perfettoFile{DisplayTimeUnit: "ms", TraceEvents: evs})
}
