package replay

import (
	"bytes"
	"strings"
	"testing"

	"gnsslna/internal/obs"
)

// serveJournals builds the two journals a SIGKILLed lnaservd and its restart
// would leave behind: job trace 7 (tenant alpha) is claimed in process 1,
// killed mid-attempt, reclaimed in process 2 where it retries once in-process
// and succeeds; job trace 9 (tenant beta) completes entirely in process 1.
// Timestamps are fixed so the analytics are exactly assertable.
func serveJournals() (*Run, *Run) {
	const (
		claim1 = uint64(1) << 48
		claim2 = uint64(2) << 48
		retry  = uint64(1) << 32
	)
	p1 := &Run{Records: []obs.Record{
		{TMs: 1, Event: obs.EpochEvent, Fields: map[string]float64{"unix_ms": 1_000_001}},
		{TMs: 1, Event: "span-begin", Scope: "job.design.alpha", Trace: 7, Span: 1},
		{TMs: 2, Event: "span-begin", Scope: "job.design.beta", Trace: 9, Span: 1},
		{TMs: 6, Event: "span-end", Scope: "job.wait", Trace: 9, Span: claim1 + 1, Parent: 1, WallMs: 3},
		{TMs: 6, Event: "span-begin", Scope: "job.attempt", Trace: 9, Span: claim1 | retry | 1, Parent: 1},
		{TMs: 10, Event: "span-end", Scope: "job.wait", Trace: 7, Span: claim1 + 1, Parent: 1, WallMs: 5},
		{TMs: 10, Event: "span-begin", Scope: "job.attempt", Trace: 7, Span: claim1 | retry | 1, Parent: 1},
		{TMs: 16, Event: "span-end", Scope: "job.attempt", Trace: 9, Span: claim1 | retry | 1, Parent: 1, WallMs: 10},
		{TMs: 17, Event: "span-end", Scope: "job.design.beta", Trace: 9, Span: 1, WallMs: 15},
		{TMs: 17, Event: "sample", Scope: "job.done.succeeded", Trace: 9, Span: 1, WallMs: 15},
		// SIGKILL: trace 7's first attempt never ends.
	}}
	p2 := &Run{Records: []obs.Record{
		{TMs: 1, Event: obs.EpochEvent, Fields: map[string]float64{"unix_ms": 1_000_101}},
		{TMs: 5, Event: "span-end", Scope: "job.wait", Trace: 7, Span: claim2 + 1, Parent: 1, WallMs: 105},
		{TMs: 6, Event: "span-begin", Scope: "job.attempt", Trace: 7, Span: claim2 | retry | 1, Parent: 1},
		{TMs: 26, Event: "span-end", Scope: "job.attempt", Trace: 7, Span: claim2 | retry | 1, Parent: 1, WallMs: 20},
		{TMs: 26, Event: "sample", Scope: "job.backoff_ms", Trace: 7, Span: 1, WallMs: 2},
		{TMs: 28, Event: "span-begin", Scope: "job.attempt", Trace: 7, Span: claim2 | 2<<32 | 1, Parent: 1},
		{TMs: 56, Event: "span-end", Scope: "job.attempt", Trace: 7, Span: claim2 | 2<<32 | 1, Parent: 1, WallMs: 28},
		{TMs: 60, Event: "span-end", Scope: "job.design.alpha", Trace: 7, Span: 1, WallMs: 160},
		{TMs: 60, Event: "sample", Scope: "job.done.succeeded", Trace: 7, Span: 1, WallMs: 160},
	}}
	return p1, p2
}

func TestEpochUnixMS(t *testing.T) {
	p1, p2 := serveJournals()
	if got := EpochUnixMS(p1); got != 1_000_000 {
		t.Errorf("p1 epoch = %g, want 1000000", got)
	}
	if got := EpochUnixMS(p2); got != 1_000_100 {
		t.Errorf("p2 epoch = %g, want 1000100", got)
	}
	if got := EpochUnixMS(&Run{}); got != 0 {
		t.Errorf("epoch of empty run = %g, want 0", got)
	}
}

func TestMergeAlignsOnEpoch(t *testing.T) {
	p1, p2 := serveJournals()
	m := Merge(p1, p2)
	if len(m.Records) != len(p1.Records)+len(p2.Records) {
		t.Fatalf("merged %d records, want %d", len(m.Records), len(p1.Records)+len(p2.Records))
	}
	// Process 2 opened 100ms after process 1: its records shift by +100.
	var gotWait2 float64
	for _, rec := range m.Records {
		if rec.Event == "span-end" && rec.Scope == "job.wait" && rec.WallMs == 105 {
			gotWait2 = rec.TMs
		}
	}
	if gotWait2 != 105 {
		t.Errorf("restart wait span at t=%g, want 105 (5 + 100ms offset)", gotWait2)
	}
	// Timestamps are ordered and Seq re-stamped to the merged order.
	for i, rec := range m.Records {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d has Seq %d", i, rec.Seq)
		}
		if i > 0 && rec.TMs < m.Records[i-1].TMs {
			t.Fatalf("record %d out of order: %g after %g", i, rec.TMs, m.Records[i-1].TMs)
		}
	}
	// The inputs keep their original clocks.
	if p2.Records[1].TMs != 5 {
		t.Errorf("Merge mutated its input: %g", p2.Records[1].TMs)
	}
}

func TestBuildTracesSplitsJobs(t *testing.T) {
	p1, p2 := serveJournals()
	trees := BuildTraces(Merge(p1, p2))
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want one per job trace", len(trees))
	}
	byID := map[uint64]*TraceTree{}
	for _, tr := range trees {
		byID[tr.TraceID] = tr
	}
	alpha, beta := byID[7], byID[9]
	if alpha == nil || beta == nil {
		t.Fatalf("trace IDs = %v", []uint64{trees[0].TraceID, trees[1].TraceID})
	}
	// Trace 7 spans both processes: root + 2 waits + 3 attempts.
	if alpha.Count != 6 {
		t.Errorf("alpha span count = %d, want 6", alpha.Count)
	}
	if len(alpha.Roots) != 1 || alpha.Roots[0].Scope != "job.design.alpha" {
		t.Fatalf("alpha roots = %+v", alpha.Roots)
	}
	attempts := 0
	for _, c := range alpha.Roots[0].Children {
		if c.Scope == "job.attempt" {
			attempts++
		}
	}
	if attempts != 3 {
		t.Errorf("alpha attempt spans = %d, want 3 (killed + retry pair)", attempts)
	}
	if beta.Count != 3 {
		t.Errorf("beta span count = %d, want 3", beta.Count)
	}
}

func TestServeSummary(t *testing.T) {
	p1, p2 := serveJournals()
	rep := ServeSummary(Merge(p1, p2))
	if rep.Jobs != 2 || rep.Done != 2 || rep.Succeeded != 2 {
		t.Fatalf("headline = %+v", rep)
	}
	if rep.Attempts != 4 || rep.Retries != 2 {
		t.Errorf("attempts/retries = %d/%d, want 4/2", rep.Attempts, rep.Retries)
	}
	if rep.BackoffMS != 2 {
		t.Errorf("backoff = %g, want 2", rep.BackoffMS)
	}
	if rep.ElapsedMS != 160 || rep.ThroughputPerSec != 12.5 {
		t.Errorf("elapsed/throughput = %g/%g, want 160/12.5", rep.ElapsedMS, rep.ThroughputPerSec)
	}
	if len(rep.Tenants) != 2 || rep.Tenants[0].Tenant != "alpha" || rep.Tenants[1].Tenant != "beta" {
		t.Fatalf("tenants = %+v", rep.Tenants)
	}
	a, b := rep.Tenants[0], rep.Tenants[1]
	if a.WaitP50 != 5 || a.WaitP95 != 105 || a.WaitP99 != 105 {
		t.Errorf("alpha waits = %g/%g/%g, want 5/105/105", a.WaitP50, a.WaitP95, a.WaitP99)
	}
	if a.P50 != 160 || a.P99 != 160 {
		t.Errorf("alpha latency = %g/%g, want 160", a.P50, a.P99)
	}
	if a.Retries != 2 || a.BackoffMS != 2 {
		t.Errorf("alpha retry stats = %+v", a)
	}
	if b.P50 != 15 || b.WaitP50 != 3 || b.Retries != 0 {
		t.Errorf("beta stats = %+v", b)
	}
}

func TestWriteServeText(t *testing.T) {
	p1, p2 := serveJournals()
	var buf bytes.Buffer
	if err := WriteServeText(&buf, ServeSummary(Merge(p1, p2))); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"serve journal: 2 jobs, 2 done (2 succeeded, 0 failed, 0 quarantined, 0 canceled)",
		"attempts: 4 (2 retries, 2.0 ms backoff)",
		"alpha", "beta",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serve text missing %q:\n%s", want, out)
		}
	}

	var empty bytes.Buffer
	if err := WriteServeText(&empty, ServeSummary(&Run{})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no job traces") {
		t.Errorf("empty report = %q", empty.String())
	}
}

func TestPercentileExact(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}, {1, 10},
	} {
		if got := percentile(s, tc.q); got != tc.want {
			t.Errorf("p%g = %g, want %g", tc.q*100, got, tc.want)
		}
	}
}
