package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// OptFloat is a float64 that marshals NaN (and infinities) as JSON null, so
// analytics over journals with absent objectives stay JSON-encodable for
// obsreport's -json mode. It unmarshals null back to NaN.
type OptFloat float64

// MarshalJSON implements json.Marshaler.
func (v OptFloat) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *OptFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*v = OptFloat(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*v = OptFloat(f)
	return nil
}

// IsNaN reports whether the value is NaN.
func (v OptFloat) IsNaN() bool { return math.IsNaN(float64(v)) }

// TracePoint is one step of a best-objective-vs-evals convergence trace,
// taken from "generation" and "done" records.
type TracePoint struct {
	// Seq is the journal sequence number of the source record.
	Seq int64 `json:"seq"`
	// TMs is the emission time, milliseconds since the journal opened.
	TMs float64 `json:"t_ms"`
	// Scope names the emitting optimizer loop.
	Scope string `json:"scope,omitempty"`
	// Gen is the generation ordinal.
	Gen int `json:"gen"`
	// Evals is the cumulative evaluation count at the point.
	Evals int64 `json:"evals"`
	// Best is the best (lowest) objective value so far.
	Best float64 `json:"best"`
}

// Trace extracts the convergence trace for one scope ("" keeps every scope)
// in journal order.
func (r *Run) Trace(scope string) []TracePoint {
	var out []TracePoint
	for _, rec := range r.Records {
		if rec.Event != "generation" && rec.Event != "done" {
			continue
		}
		if scope != "" && rec.Scope != scope {
			continue
		}
		out = append(out, TracePoint{
			Seq: rec.Seq, TMs: rec.TMs, Scope: rec.Scope,
			Gen: rec.Gen, Evals: rec.Evals, Best: rec.Best,
		})
	}
	return out
}

// ScopeStat attributes work to one journal scope. Wall time and evaluations
// come from span-end records when the scope emitted spans, and from its
// done records otherwise (the hub's scope naming keeps the two disjoint, so
// this avoids double counting a run enclosed by its own span).
type ScopeStat struct {
	// Scope names the loop or phase.
	Scope string `json:"scope"`
	// Spans counts completed span-end records.
	Spans int `json:"spans,omitempty"`
	// Gens counts generation records.
	Gens int `json:"gens,omitempty"`
	// Runs counts done records.
	Runs int `json:"runs,omitempty"`
	// WallMs is the wall time attributed to the scope, milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Evals is the evaluation count attributed to the scope.
	Evals int64 `json:"evals"`
	// Faults counts quarantined evaluations reported under the scope.
	Faults int `json:"faults,omitempty"`
	// Best is the lowest objective reported by the scope's generation and
	// done records (NaN — JSON null — when the scope reported none).
	Best OptFloat `json:"best"`
}

// ScopeStats aggregates the journal per scope, sorted by scope name.
func (r *Run) ScopeStats() []ScopeStat {
	type acc struct {
		ScopeStat
		spanWall, doneWall   float64
		spanEvals, doneEvals int64
		best                 float64
		hasBest              bool
	}
	byScope := map[string]*acc{}
	order := []string{}
	get := func(scope string) *acc {
		a := byScope[scope]
		if a == nil {
			a = &acc{ScopeStat: ScopeStat{Scope: scope}}
			byScope[scope] = a
			order = append(order, scope)
		}
		return a
	}
	for _, rec := range r.Records {
		switch rec.Event {
		case "generation":
			a := get(rec.Scope)
			a.Gens++
			if !a.hasBest || rec.Best < a.best {
				a.best, a.hasBest = rec.Best, true
			}
		case "span-end":
			a := get(rec.Scope)
			a.Spans++
			a.spanWall += rec.WallMs
			a.spanEvals += rec.Evals
		case "done":
			a := get(rec.Scope)
			a.Runs++
			a.doneWall += rec.WallMs
			a.doneEvals += rec.Evals
			if !a.hasBest || rec.Best < a.best {
				a.best, a.hasBest = rec.Best, true
			}
		case "fault":
			get(rec.Scope).Faults++
		}
	}
	sort.Strings(order)
	out := make([]ScopeStat, 0, len(order))
	for _, scope := range order {
		a := byScope[scope]
		if a.Spans > 0 {
			a.WallMs, a.Evals = a.spanWall, a.spanEvals
		} else {
			a.WallMs, a.Evals = a.doneWall, a.doneEvals
		}
		a.Best = OptFloat(math.NaN())
		if a.hasBest {
			a.Best = OptFloat(a.best)
		}
		out = append(out, a.ScopeStat)
	}
	return out
}

// Summary condenses one journal.
type Summary struct {
	// Records is the number of complete records parsed.
	Records int `json:"records"`
	// DurationMs is the last record's timestamp.
	DurationMs float64 `json:"duration_ms"`
	// Events counts records by event kind.
	Events map[string]int `json:"events"`
	// TotalEvals sums the evaluations of every done record.
	TotalEvals int64 `json:"total_evals"`
	// Best is the lowest objective over generation/done records (NaN —
	// JSON null — when the journal has none) and BestScope the scope that
	// reported it.
	Best      OptFloat `json:"best"`
	BestScope string   `json:"best_scope,omitempty"`
	// Scopes is the per-scope attribution table.
	Scopes []ScopeStat `json:"scopes"`
}

// Summarize condenses the run.
func (r *Run) Summarize() Summary {
	s := Summary{
		Records: len(r.Records),
		Events:  map[string]int{},
		Best:    OptFloat(math.NaN()),
	}
	for _, rec := range r.Records {
		s.Events[rec.Event]++
		if rec.TMs > s.DurationMs {
			s.DurationMs = rec.TMs
		}
		if rec.Event == "done" {
			s.TotalEvals += rec.Evals
		}
		if rec.Event == "generation" || rec.Event == "done" {
			if s.Best.IsNaN() || rec.Best < float64(s.Best) {
				s.Best, s.BestScope = OptFloat(rec.Best), rec.Scope
			}
		}
	}
	s.Scopes = r.ScopeStats()
	return s
}

// ScopeDelta is one row of a run-to-run diff: how a scope's wall time and
// evaluation count moved between run A and run B. Percentages are relative
// to A; a scope present in only one run reports OnlyIn "a" or "b".
type ScopeDelta struct {
	Scope    string   `json:"scope"`
	WallAMs  float64  `json:"wall_a_ms"`
	WallBMs  float64  `json:"wall_b_ms"`
	WallPct  OptFloat `json:"wall_pct"`
	EvalsA   int64    `json:"evals_a"`
	EvalsB   int64    `json:"evals_b"`
	EvalsPct OptFloat `json:"evals_pct"`
	OnlyIn   string   `json:"only_in,omitempty"`
}

// pctDelta returns 100*(b-a)/a, NaN when a is zero and b differs.
func pctDelta(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.NaN()
	}
	return 100 * (b - a) / a
}

// Compare diffs two runs scope by scope, sorted by scope name over the
// union of both runs' scopes.
func Compare(a, b *Run) []ScopeDelta {
	sa, sb := a.ScopeStats(), b.ScopeStats()
	byScope := map[string]*ScopeDelta{}
	order := []string{}
	get := func(scope string) *ScopeDelta {
		d := byScope[scope]
		if d == nil {
			d = &ScopeDelta{Scope: scope}
			byScope[scope] = d
			order = append(order, scope)
		}
		return d
	}
	inA := map[string]bool{}
	for _, st := range sa {
		d := get(st.Scope)
		d.WallAMs, d.EvalsA = st.WallMs, st.Evals
		inA[st.Scope] = true
	}
	inB := map[string]bool{}
	for _, st := range sb {
		d := get(st.Scope)
		d.WallBMs, d.EvalsB = st.WallMs, st.Evals
		inB[st.Scope] = true
	}
	sort.Strings(order)
	out := make([]ScopeDelta, 0, len(order))
	for _, scope := range order {
		d := byScope[scope]
		switch {
		case !inB[scope]:
			d.OnlyIn = "a"
		case !inA[scope]:
			d.OnlyIn = "b"
		}
		d.WallPct = OptFloat(pctDelta(d.WallAMs, d.WallBMs))
		d.EvalsPct = OptFloat(pctDelta(float64(d.EvalsA), float64(d.EvalsB)))
		out = append(out, *d)
	}
	return out
}

// fmtBest renders an objective value, "-" for NaN (scope reported none).
func fmtBest(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.6g", v)
}

// fmtPct renders a percentage delta, "new" for NaN (zero baseline).
func fmtPct(v OptFloat) string {
	if v.IsNaN() {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", float64(v))
}

// WriteSummaryText renders a run summary as an aligned text table.
func WriteSummaryText(w io.Writer, label string, r *Run) error {
	s := r.Summarize()
	if _, err := fmt.Fprintf(w, "journal %s: %d records, %.1f ms, %d evals, best %s",
		label, s.Records, s.DurationMs, s.TotalEvals, fmtBest(float64(s.Best))); err != nil {
		return err
	}
	if s.BestScope != "" {
		if _, err := fmt.Fprintf(w, " (%s)", s.BestScope); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	kinds := make([]string, 0, len(s.Events))
	for k := range s.Events {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "  %-12s %d\n", k, s.Events[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-34s %6s %6s %6s %12s %10s %10s\n",
		"scope", "spans", "gens", "runs", "wall_ms", "evals", "best"); err != nil {
		return err
	}
	for _, st := range s.Scopes {
		if _, err := fmt.Fprintf(w, "%-34s %6d %6d %6d %12.1f %10d %10s\n",
			st.Scope, st.Spans, st.Gens, st.Runs, st.WallMs, st.Evals, fmtBest(float64(st.Best))); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceText renders a convergence trace as aligned text.
func WriteTraceText(w io.Writer, scope string, r *Run) error {
	pts := r.Trace(scope)
	if _, err := fmt.Fprintf(w, "%8s %10s %8s %10s %12s  %s\n",
		"seq", "t_ms", "gen", "evals", "best", "scope"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%8d %10.1f %8d %10d %12s  %s\n",
			p.Seq, p.TMs, p.Gen, p.Evals, fmtBest(p.Best), p.Scope); err != nil {
			return err
		}
	}
	return nil
}

// OnlyScopes splits a diff into the scopes present in exactly one run: the
// scopes removed going A→B (only in A) and the scopes added (only in B).
// Campaign and run diffs use it to report disjoint run sets explicitly
// instead of leaving additions and removals implicit in per-row markers.
func OnlyScopes(deltas []ScopeDelta) (onlyA, onlyB []string) {
	for _, d := range deltas {
		switch d.OnlyIn {
		case "a":
			onlyA = append(onlyA, d.Scope)
		case "b":
			onlyB = append(onlyB, d.Scope)
		}
	}
	return onlyA, onlyB
}

// WriteCompareText renders a run-to-run diff as an aligned text table with
// per-scope wall-time and evaluation deltas (percentages relative to A).
// Scopes present in only one run are additionally listed explicitly after
// the table — a pair of journals with no overlap at all (say, two different
// tools' runs) diffs to pure added/removed listings instead of silently
// empty percentages.
func WriteCompareText(w io.Writer, labelA, labelB string, a, b *Run) error {
	deltas := Compare(a, b)
	if _, err := fmt.Fprintf(w, "comparing A=%s vs B=%s\n", labelA, labelB); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-34s %12s %12s %8s %10s %10s %8s %6s\n",
		"scope", "wall_a_ms", "wall_b_ms", "wall", "evals_a", "evals_b", "evals", "only"); err != nil {
		return err
	}
	for _, d := range deltas {
		if _, err := fmt.Fprintf(w, "%-34s %12.1f %12.1f %8s %10d %10d %8s %6s\n",
			d.Scope, d.WallAMs, d.WallBMs, fmtPct(d.WallPct),
			d.EvalsA, d.EvalsB, fmtPct(d.EvalsPct), d.OnlyIn); err != nil {
			return err
		}
	}
	onlyA, onlyB := OnlyScopes(deltas)
	if len(onlyA) > 0 {
		if _, err := fmt.Fprintf(w, "removed in B (only in A): %s\n", strings.Join(onlyA, ", ")); err != nil {
			return err
		}
	}
	if len(onlyB) > 0 {
		if _, err := fmt.Fprintf(w, "added in B (only in B): %s\n", strings.Join(onlyB, ", ")); err != nil {
			return err
		}
	}
	if len(deltas) > 0 && len(onlyA)+len(onlyB) == len(deltas) {
		if _, err := fmt.Fprintln(w, "note: the runs share no scopes — every row is an addition or removal"); err != nil {
			return err
		}
	}
	return nil
}
