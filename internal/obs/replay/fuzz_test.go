package replay

import (
	"bytes"
	"testing"

	"gnsslna/internal/obs"
)

// FuzzParse drives the journal reader with arbitrary bytes and cross-checks
// it against obs.ReadJournal, the independent read path the checkpoints use.
// Properties: Parse never panics; the two readers accept exactly the same
// streams; on success they agree record for record; and on a corrupt tail
// Parse still returns every record the strict reader saw before failing.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"seq":1,"t_ms":0.5,"event":"generation","scope":"de","gen":1,"evals":40,"best":1.5}` + "\n"))
	f.Add([]byte(`{"seq":1,"event":"metrics","fields":{"a":1,"b":-2.5}}` + "\n\n" +
		`{"seq":2,"event":"done","evals":100}` + "\n"))
	f.Add([]byte(`{"seq":1,"event":"span-begin","scope":"extract"}` + "\n" + `{"truncated`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("not json at all\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := Parse(bytes.NewReader(data))
		recs, jerr := obs.ReadJournal(bytes.NewReader(data))
		if (err == nil) != (jerr == nil) {
			t.Fatalf("readers disagree: replay err %v, obs err %v", err, jerr)
		}
		if run == nil {
			t.Fatal("Parse returned a nil run")
		}
		if err != nil {
			if _, ok := AsTailError(err); !ok {
				t.Fatalf("Parse error is not a TailError: %v", err)
			}
		}
		// Both readers stop at the same line, so the parsed prefixes match.
		if len(run.Records) != len(recs) {
			t.Fatalf("record counts diverge: replay %d, obs %d", len(run.Records), len(recs))
		}
		for i := range recs {
			a, b := run.Records[i], recs[i]
			if a.Seq != b.Seq || a.Event != b.Event || a.Scope != b.Scope ||
				a.Gen != b.Gen || a.Evals != b.Evals ||
				!sameFloat(a.Best, b.Best) || !sameFloat(a.TMs, b.TMs) ||
				!sameFloat(a.WallMs, b.WallMs) || len(a.Fields) != len(b.Fields) {
				t.Fatalf("record %d diverges: %+v vs %+v", i, a, b)
			}
		}
	})
}

// sameFloat compares floats treating NaN as equal to itself (JSON numbers
// cannot encode NaN, but both readers must still agree on whatever they
// produced).
func sameFloat(a, b float64) bool { return a == b || (a != a && b != b) }
