package replay

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// TenantServeStats is one tenant's share of a serve journal: job outcomes,
// attempt/retry behaviour and the exact latency percentiles of its completed
// jobs. Latency is submit→done wall time (the root span's wall), wait is the
// queue time recorded before each claim.
type TenantServeStats struct {
	Tenant      string  `json:"tenant"`
	Jobs        int     `json:"jobs"`
	Done        int     `json:"done"`
	Succeeded   int     `json:"succeeded"`
	Failed      int     `json:"failed"`
	Quarantined int     `json:"quarantined"`
	Canceled    int     `json:"canceled"`
	Attempts    int     `json:"attempts"`
	Retries     int     `json:"retries"`
	BackoffMS   float64 `json:"backoff_ms"`
	WaitP50     float64 `json:"wait_p50_ms"`
	WaitP95     float64 `json:"wait_p95_ms"`
	WaitP99     float64 `json:"wait_p99_ms"`
	P50         float64 `json:"p50_ms"`
	P95         float64 `json:"p95_ms"`
	P99         float64 `json:"p99_ms"`
}

// ServeReport is the analytics view of a (possibly merged) serve journal.
type ServeReport struct {
	// Jobs counts the distinct job traces the journal carries.
	Jobs int `json:"jobs"`
	// Done counts the jobs that reached a terminal state in the journal.
	Done int `json:"done"`
	// Succeeded/Failed/Quarantined/Canceled split Done by outcome.
	Succeeded   int `json:"succeeded"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"`
	Canceled    int `json:"canceled"`
	// Attempts counts worker attempt spans; Retries is the share beyond each
	// job's first, BackoffMS the total retry delay scheduled between them.
	Attempts  int     `json:"attempts"`
	Retries   int     `json:"retries"`
	BackoffMS float64 `json:"backoff_ms"`
	// ElapsedMS is the journal horizon; ThroughputPerSec is Done over it.
	ElapsedMS        float64 `json:"elapsed_ms"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Tenants is the per-tenant breakdown, sorted by tenant name.
	Tenants []TenantServeStats `json:"tenants"`
}

// serveAccum is one tenant's in-flight accumulation during the scan.
type serveAccum struct {
	stats    TenantServeStats
	attempts map[uint64]map[uint64]bool // trace -> distinct attempt span IDs
	waits    []float64
	lats     []float64
}

// ServeSummary scans a serve journal (one process's, or several processes'
// merged with Merge) and computes the job-server analytics: throughput,
// outcome and retry counts, total backoff, and per-tenant exact latency and
// queue-wait percentiles. Root spans carry the tenant in their
// "job.<type>.<tenant>" scope; records of traces whose root never appears
// (rotated away) are attributed to the pseudo-tenant "unknown".
func ServeSummary(r *Run) *ServeReport {
	rep := &ServeReport{ElapsedMS: horizonOf(r.Records)}

	// First pass: map each trace to its tenant via the root span's scope.
	tenantOf := map[uint64]string{}
	for _, rec := range r.Records {
		if rec.Span != jobRootSpanID || rec.Trace == 0 {
			continue
		}
		// Only the root's own span-begin/span-end carry the job scope; the
		// job.done.* and job.backoff_ms samples ride the root span too.
		if rec.Event != "span-begin" && rec.Event != "span-end" {
			continue
		}
		rest, ok := strings.CutPrefix(rec.Scope, "job.")
		if !ok {
			continue
		}
		if _, tenant, ok := strings.Cut(rest, "."); ok {
			tenantOf[rec.Trace] = tenant
		}
	}

	accums := map[string]*serveAccum{}
	acc := func(trace uint64) *serveAccum {
		tenant := tenantOf[trace]
		if tenant == "" {
			tenant = "unknown"
		}
		a := accums[tenant]
		if a == nil {
			a = &serveAccum{attempts: map[uint64]map[uint64]bool{}}
			a.stats.Tenant = tenant
			accums[tenant] = a
		}
		return a
	}
	jobs := map[uint64]bool{}

	for _, rec := range r.Records {
		if rec.Trace == 0 || rec.Span == 0 {
			continue
		}
		if !jobs[rec.Trace] {
			jobs[rec.Trace] = true
			acc(rec.Trace).stats.Jobs++
		}
		a := acc(rec.Trace)
		switch {
		case rec.Event == "span-end" && rec.Span == jobRootSpanID:
			a.lats = append(a.lats, rec.WallMs)
		case rec.Event == "span-end" && rec.Scope == "job.wait":
			a.waits = append(a.waits, rec.WallMs)
		case rec.Scope == "job.attempt" && (rec.Event == "span-begin" || rec.Event == "span-end"):
			// Distinct span IDs, not span-ends: an attempt cut short by
			// SIGKILL leaves only its begin behind, and it still happened.
			set := a.attempts[rec.Trace]
			if set == nil {
				set = map[uint64]bool{}
				a.attempts[rec.Trace] = set
			}
			set[rec.Span] = true
		case rec.Event == "sample" && rec.Scope == "job.backoff_ms":
			a.stats.BackoffMS += rec.WallMs
		case rec.Event == "sample" && strings.HasPrefix(rec.Scope, "job.done."):
			a.stats.Done++
			switch strings.TrimPrefix(rec.Scope, "job.done.") {
			case "succeeded":
				a.stats.Succeeded++
			case "failed":
				a.stats.Failed++
			case "quarantined":
				a.stats.Quarantined++
			case "canceled":
				a.stats.Canceled++
			}
		}
	}

	for _, a := range accums {
		for _, set := range a.attempts {
			a.stats.Attempts += len(set)
			if len(set) > 1 {
				a.stats.Retries += len(set) - 1
			}
		}
		sort.Float64s(a.waits)
		sort.Float64s(a.lats)
		a.stats.WaitP50 = percentile(a.waits, 0.50)
		a.stats.WaitP95 = percentile(a.waits, 0.95)
		a.stats.WaitP99 = percentile(a.waits, 0.99)
		a.stats.P50 = percentile(a.lats, 0.50)
		a.stats.P95 = percentile(a.lats, 0.95)
		a.stats.P99 = percentile(a.lats, 0.99)

		rep.Jobs += a.stats.Jobs
		rep.Done += a.stats.Done
		rep.Succeeded += a.stats.Succeeded
		rep.Failed += a.stats.Failed
		rep.Quarantined += a.stats.Quarantined
		rep.Canceled += a.stats.Canceled
		rep.Attempts += a.stats.Attempts
		rep.Retries += a.stats.Retries
		rep.BackoffMS += a.stats.BackoffMS
		rep.Tenants = append(rep.Tenants, a.stats)
	}
	sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].Tenant < rep.Tenants[j].Tenant })
	if rep.ElapsedMS > 0 {
		rep.ThroughputPerSec = float64(rep.Done) / (rep.ElapsedMS / 1000)
	}
	return rep
}

// jobRootSpanID mirrors the serve layer's reserved root span ID.
const jobRootSpanID = 1

// percentile is the exact nearest-rank percentile of an already-sorted
// sample set (0 when empty — analytics over no data report zeros, not NaN).
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// WriteServeText renders the serve analytics as the `obsreport serve` report:
// a headline with throughput and outcome counts, then one row per tenant with
// its exact wait and end-to-end latency percentiles.
func WriteServeText(w io.Writer, rep *ServeReport) error {
	if rep.Jobs == 0 {
		_, err := fmt.Fprintln(w, "journal carries no job traces (not a serve journal, or pre-trace)")
		return err
	}
	if _, err := fmt.Fprintf(w,
		"serve journal: %d jobs, %d done (%d succeeded, %d failed, %d quarantined, %d canceled) over %.1f ms (%.2f done/s)\n",
		rep.Jobs, rep.Done, rep.Succeeded, rep.Failed, rep.Quarantined, rep.Canceled,
		rep.ElapsedMS, rep.ThroughputPerSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "attempts: %d (%d retries, %.1f ms backoff)\n",
		rep.Attempts, rep.Retries, rep.BackoffMS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-20s %6s %6s %9s %8s %11s %11s %11s %9s %9s %9s\n",
		"tenant", "jobs", "done", "attempts", "retries",
		"wait_p50_ms", "wait_p95_ms", "wait_p99_ms", "p50_ms", "p95_ms", "p99_ms"); err != nil {
		return err
	}
	for _, t := range rep.Tenants {
		if _, err := fmt.Fprintf(w, "%-20s %6d %6d %9d %8d %11.1f %11.1f %11.1f %9.1f %9.1f %9.1f\n",
			t.Tenant, t.Jobs, t.Done, t.Attempts, t.Retries,
			t.WaitP50, t.WaitP95, t.WaitP99, t.P50, t.P95, t.P99); err != nil {
			return err
		}
	}
	return nil
}
