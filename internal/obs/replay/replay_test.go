package replay

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnsslna/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func parseFixture(t *testing.T, name string) *Run {
	t.Helper()
	r, err := ParseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("ParseFile(%s): %v", name, err)
	}
	return r
}

func TestParseCompleteJournal(t *testing.T) {
	r := parseFixture(t, "run_a.jsonl")
	if len(r.Records) != 7 {
		t.Fatalf("records = %d, want 7", len(r.Records))
	}
	if r.Records[5].Event != "done" || r.Records[5].Best != 0.42 {
		t.Fatalf("record 6 = %+v", r.Records[5])
	}
	m := r.FinalMetrics()
	if m["counter.design.attain.de.evals"] != 120 {
		t.Fatalf("final metrics = %v", m)
	}
}

// A journal truncated by a crash mid-line must yield every complete record
// plus a typed tail error — the same degradation contract as the resilience
// checkpoints' corrupt-file handling.
func TestParseTruncatedTail(t *testing.T) {
	r, err := ParseFile(filepath.Join("testdata", "truncated.jsonl"))
	te, ok := AsTailError(err)
	if !ok {
		t.Fatalf("err = %v, want *TailError", err)
	}
	if te.Line != 2 {
		t.Errorf("tail line = %d, want 2", te.Line)
	}
	if r == nil || len(r.Records) != 1 {
		t.Fatalf("records = %+v, want the 1 complete record", r)
	}
	if r.Records[0].Scope != "extract.step1.coldfet" {
		t.Errorf("surviving record = %+v", r.Records[0])
	}
	if !strings.Contains(te.Error(), "line 2") {
		t.Errorf("error text %q does not name the line", te.Error())
	}
}

func TestParseCorruptMiddleLine(t *testing.T) {
	in := `{"seq":1,"event":"generation","scope":"s","gen":1,"evals":1,"best":1,"t_ms":1,"wall_ms":1}
not json at all
{"seq":3,"event":"done","scope":"s","gen":1,"evals":2,"best":1,"t_ms":2,"wall_ms":2}
`
	r, err := Parse(strings.NewReader(in))
	te, ok := AsTailError(err)
	if !ok || te.Line != 2 {
		t.Fatalf("err = %v, want TailError at line 2", err)
	}
	if len(r.Records) != 1 {
		t.Fatalf("records = %d, want 1 (parse stops at the corrupt line)", len(r.Records))
	}
}

func TestParseEmptyAndBlankLines(t *testing.T) {
	r, err := Parse(strings.NewReader("\n\n"))
	if err != nil || len(r.Records) != 0 {
		t.Fatalf("blank journal: records=%d err=%v", len(r.Records), err)
	}
}

func TestTrace(t *testing.T) {
	r := parseFixture(t, "run_a.jsonl")
	pts := r.Trace("design.attain.de")
	if len(pts) != 3 {
		t.Fatalf("trace points = %d, want 3 (2 generations + done)", len(pts))
	}
	if pts[0].Best != 1.5 || pts[2].Best != 0.42 || pts[2].Evals != 120 {
		t.Fatalf("trace = %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Best > pts[i-1].Best {
			t.Errorf("best regressed at point %d: %g > %g", i, pts[i].Best, pts[i-1].Best)
		}
	}
	if got := len(r.Trace("")); got != 3 {
		t.Errorf("unfiltered trace = %d points, want 3", got)
	}
	if got := len(r.Trace("no.such.scope")); got != 0 {
		t.Errorf("unknown scope trace = %d points, want 0", got)
	}
}

func TestScopeStatsAttribution(t *testing.T) {
	r := parseFixture(t, "run_a.jsonl")
	stats := r.ScopeStats()
	byScope := map[string]ScopeStat{}
	for _, s := range stats {
		byScope[s.Scope] = s
	}
	de := byScope["design.attain.de"]
	// No spans: wall and evals come from the done record, not the sum of
	// generation wall times (which would double count).
	if de.WallMs != 9.0 || de.Evals != 120 || de.Gens != 2 || de.Runs != 1 || de.Faults != 1 {
		t.Fatalf("design scope = %+v", de)
	}
	if de.Best != 0.42 {
		t.Errorf("design best = %g, want 0.42", de.Best)
	}
	cf := byScope["extract.step1.coldfet"]
	// Spans present: wall and evals come from span-end records.
	if cf.WallMs != 4.9 || cf.Evals != 120 || cf.Spans != 1 {
		t.Fatalf("coldfet scope = %+v", cf)
	}
	if !cf.Best.IsNaN() {
		t.Errorf("coldfet best = %g, want NaN (no objective reported)", float64(cf.Best))
	}
	// Sorted by scope name.
	for i := 1; i < len(stats); i++ {
		if stats[i].Scope < stats[i-1].Scope {
			t.Errorf("scopes out of order: %q after %q", stats[i].Scope, stats[i-1].Scope)
		}
	}
}

func TestSummarize(t *testing.T) {
	r := parseFixture(t, "run_a.jsonl")
	s := r.Summarize()
	if s.Records != 7 || s.DurationMs != 11.0 || s.TotalEvals != 120 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Best != 0.42 || s.BestScope != "design.attain.de" {
		t.Fatalf("best = %g (%s), want 0.42 (design.attain.de)", s.Best, s.BestScope)
	}
	if s.Events["generation"] != 2 || s.Events["span-end"] != 1 || s.Events["metrics"] != 1 {
		t.Fatalf("event counts = %v", s.Events)
	}
}

func TestCompareDeltas(t *testing.T) {
	a := parseFixture(t, "run_a.jsonl")
	b := parseFixture(t, "run_b.jsonl")
	deltas := Compare(a, b)
	byScope := map[string]ScopeDelta{}
	for _, d := range deltas {
		byScope[d.Scope] = d
	}
	de := byScope["design.attain.de"]
	if de.WallAMs != 9.0 || de.WallBMs != 18.0 || de.WallPct != 100.0 {
		t.Fatalf("design wall delta = %+v", de)
	}
	if de.EvalsA != 120 || de.EvalsB != 240 || de.EvalsPct != 100.0 {
		t.Fatalf("design evals delta = %+v", de)
	}
	cf := byScope["extract.step1.coldfet"]
	if math.Abs(float64(cf.WallPct)-22.448979591836736) > 1e-9 || cf.EvalsPct != 0 {
		t.Fatalf("coldfet delta = %+v", cf)
	}
	vna := byScope["vna.campaign"]
	if vna.OnlyIn != "b" || !vna.EvalsPct.IsNaN() {
		t.Fatalf("vna delta = %+v, want only_in=b with NaN pct", vna)
	}
	// Symmetric: comparing b to a flips the only-in marker.
	rev := Compare(b, a)
	for _, d := range rev {
		if d.Scope == "vna.campaign" && d.OnlyIn != "a" {
			t.Fatalf("reversed vna delta = %+v, want only_in=a", d)
		}
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -update): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("%s mismatch:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// The compare report is pinned byte for byte: obsreport compare must keep
// reporting per-scope wall-time and eval deltas in this exact shape.
func TestCompareGolden(t *testing.T) {
	a := parseFixture(t, "run_a.jsonl")
	b := parseFixture(t, "run_b.jsonl")
	var out strings.Builder
	if err := WriteCompareText(&out, "run_a.jsonl", "run_b.jsonl", a, b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "compare_golden.txt", []byte(out.String()))
}

func TestSummaryGolden(t *testing.T) {
	r := parseFixture(t, "run_a.jsonl")
	var out strings.Builder
	if err := WriteSummaryText(&out, "run_a.jsonl", r); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary_golden.txt", []byte(out.String()))
}

func TestTraceGolden(t *testing.T) {
	r := parseFixture(t, "run_a.jsonl")
	var out strings.Builder
	if err := WriteTraceText(&out, "design.attain.de", r); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_golden.txt", []byte(out.String()))
}

// Round-trip sanity: a journal written by obs.Journal parses back with
// identical analytics inputs.
func TestParseMatchesObsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := obs.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.NewHub(nil, j)
	hub.Observe(obs.Event{Kind: obs.KindGeneration, Scope: "x", Gen: 1, Evals: 10, Best: 2})
	hub.Observe(obs.Event{Kind: obs.KindDone, Scope: "x", Gen: 1, Evals: 20, Best: 1, Value: 3})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(r.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(r.Records))
	}
	s := r.Summarize()
	if s.TotalEvals != 20 || s.Best != 1 || s.BestScope != "x" {
		t.Fatalf("summary = %+v", s)
	}
}

// Two journals with completely disjoint scope sets must diff cleanly: no
// panic, every row marked only_in, and the text report listing the added
// and removed scopes explicitly (the campaign-diff reuse contract).
func TestCompareDisjointRunSets(t *testing.T) {
	mk := func(scopes ...string) *Run {
		r := &Run{}
		for i, s := range scopes {
			r.Records = append(r.Records, obs.Record{
				Seq: int64(i + 1), TMs: float64(i), Event: "done",
				Scope: s, Evals: int64(10 * (i + 1)), Best: 1,
			})
		}
		return r
	}
	cases := []struct {
		name                     string
		a, b                     *Run
		wantADeltas, wantBDeltas int
	}{
		{"zero overlap", mk("alpha.x", "alpha.y"), mk("beta.z"), 2, 1},
		{"empty A", mk(), mk("beta.z"), 0, 1},
		{"empty B", mk("alpha.x"), mk(), 1, 0},
		{"both empty", mk(), mk(), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltas := Compare(tc.a, tc.b)
			onlyA, onlyB := OnlyScopes(deltas)
			if len(onlyA) != tc.wantADeltas || len(onlyB) != tc.wantBDeltas {
				t.Fatalf("only_a=%v only_b=%v, want %d/%d", onlyA, onlyB, tc.wantADeltas, tc.wantBDeltas)
			}
			for _, d := range deltas {
				if d.OnlyIn == "" {
					t.Errorf("disjoint scope %q lacks only_in marker", d.Scope)
				}
			}
			var out strings.Builder
			if err := WriteCompareText(&out, "a", "b", tc.a, tc.b); err != nil {
				t.Fatalf("WriteCompareText: %v", err)
			}
			text := out.String()
			if len(onlyA) > 0 && !strings.Contains(text, "removed in B (only in A): "+strings.Join(onlyA, ", ")) {
				t.Errorf("removed scopes not listed:\n%s", text)
			}
			if len(onlyB) > 0 && !strings.Contains(text, "added in B (only in B): "+strings.Join(onlyB, ", ")) {
				t.Errorf("added scopes not listed:\n%s", text)
			}
			if len(deltas) > 0 && !strings.Contains(text, "share no scopes") {
				t.Errorf("disjoint note missing:\n%s", text)
			}
		})
	}
}
