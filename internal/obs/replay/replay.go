// Package replay is the read side of the run journal: it parses Record
// JSONL streams written by internal/obs back into typed runs and computes
// convergence analytics — best-objective-vs-evals traces, per-scope wall and
// evaluation attribution, and run-to-run diffs. The cmd/obsreport CLI is a
// thin shell over this package.
//
// Parsing degrades the same way the resilience checkpoints do: a journal
// truncated by a crash mid-line (or otherwise corrupt) yields every complete
// record plus a typed *TailError, so analytics still run on the valid
// prefix.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"gnsslna/internal/obs"
)

// TailError reports a journal whose tail could not be parsed — typically a
// crash mid-append. Records before Line were parsed successfully and are
// returned alongside the error.
type TailError struct {
	// Line is the 1-based line number of the first unparseable line.
	Line int
	// Err is the underlying parse error.
	Err error
}

// Error implements error.
func (e *TailError) Error() string {
	return fmt.Sprintf("replay: journal tail corrupt at line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the underlying parse error.
func (e *TailError) Unwrap() error { return e.Err }

// AsTailError unwraps err to a *TailError, if one is in the chain.
func AsTailError(err error) (*TailError, bool) {
	var te *TailError
	if errors.As(err, &te) {
		return te, true
	}
	return nil, false
}

// Run is one parsed journal.
type Run struct {
	// Records holds every complete record in journal order.
	Records []obs.Record
}

// Parse reads a JSONL journal stream. On a corrupt or truncated tail it
// returns the Run holding every record before the bad line together with a
// *TailError; the Run is non-nil whenever any complete records were read.
func Parse(r io.Reader) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	run := &Run{}
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return run, &TailError{Line: line, Err: err}
		}
		run.Records = append(run.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return run, &TailError{Line: line + 1, Err: err}
	}
	return run, nil
}

// ParseFile parses the JSONL journal at path (see Parse for tail handling).
func ParseFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// FinalMetrics returns the flattened metrics snapshot from the last
// "metrics" record, or nil when the journal has none.
func (r *Run) FinalMetrics() map[string]float64 {
	for i := len(r.Records) - 1; i >= 0; i-- {
		if r.Records[i].Event == "metrics" {
			return r.Records[i].Fields
		}
	}
	return nil
}
