package obs

import (
	"bytes"
	"context"
	"runtime/pprof"
	"sync"
	"testing"
	"time"
)

// TestTracerConcurrentSpans allocates spans from many goroutines; run under
// -race this proves the allocator is lock-free safe, and the uniqueness
// check proves no ID is handed out twice.
func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracerID(7)
	const workers = 8
	const perWorker = 1000
	ids := make([][]SpanID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]SpanID, perWorker)
			for i := range ids[w] {
				ids[w][i] = tr.NewSpan()
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[SpanID]bool, workers*perWorker)
	for _, chunk := range ids {
		for _, id := range chunk {
			if id == 0 {
				t.Fatal("NewSpan returned the reserved zero ID")
			}
			if seen[id] {
				t.Fatalf("span ID %d allocated twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("allocated %d unique IDs, want %d", len(seen), workers*perWorker)
	}
}

// TestTracedStamping pins the two stamping rules: events without a span are
// attributed to the Traced's own span (membership), events carrying their
// own span but no parent are parented under it (child-span records).
func TestTracedStamping(t *testing.T) {
	var got []Event
	sink := Func(func(e Event) { got = append(got, e) })
	tr := NewTracerID(42)
	root := NewTraced(sink, tr)
	child := root.NewChild()

	root.Observe(Event{Kind: KindSample, Scope: "a"}) // membership on root
	child.Observe(Event{Kind: KindDone, Scope: "b"})  // membership on child
	own := tr.NewSpan()                               // explicit child-span record
	child.Observe(Event{Kind: KindSpanEnd, Scope: "c", Span: own})
	child.Observe(Event{Kind: KindGeneration, Scope: "d", Span: own, Parent: root.Span()})

	if len(got) != 4 {
		t.Fatalf("forwarded %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Trace != 42 {
			t.Errorf("event %d trace = %d, want 42", i, e.Trace)
		}
	}
	if got[0].Span != root.Span() || got[0].Parent != 0 {
		t.Errorf("membership on root = span %d parent %d, want %d/0", got[0].Span, got[0].Parent, root.Span())
	}
	if got[1].Span != child.Span() || got[1].Parent != root.Span() {
		t.Errorf("membership on child = span %d parent %d, want %d/%d",
			got[1].Span, got[1].Parent, child.Span(), root.Span())
	}
	if got[2].Span != own || got[2].Parent != child.Span() {
		t.Errorf("child-span record = span %d parent %d, want %d/%d",
			got[2].Span, got[2].Parent, own, child.Span())
	}
	if got[3].Parent != root.Span() {
		t.Errorf("explicit parent overwritten: %d, want %d", got[3].Parent, root.Span())
	}
}

// TestStartSpanTraced checks that a span opened on a traced observer is a
// real child span: begin and end share a fresh span ID parented under the
// opener, and work emitted through the returned observer nests under it.
func TestStartSpanTraced(t *testing.T) {
	var got []Event
	root := NewTraced(Func(func(e Event) { got = append(got, e) }), NewTracerID(1))

	inner, end := StartSpan(root, "phase.x")
	inner.Observe(Event{Kind: KindSample, Scope: "probe"})
	end(17)

	if len(got) != 3 {
		t.Fatalf("forwarded %d events, want 3", len(got))
	}
	begin, probe, done := got[0], got[1], got[2]
	if begin.Kind != KindSpanBegin || done.Kind != KindSpanEnd {
		t.Fatalf("event kinds = %v/%v", begin.Kind, done.Kind)
	}
	if begin.Span == 0 || begin.Span == root.Span() {
		t.Fatalf("span-begin span = %d, want a fresh child of root %d", begin.Span, root.Span())
	}
	if begin.Span != done.Span {
		t.Errorf("begin/end spans differ: %d vs %d", begin.Span, done.Span)
	}
	if begin.Parent != root.Span() || done.Parent != root.Span() {
		t.Errorf("span parents = %d/%d, want root %d", begin.Parent, done.Parent, root.Span())
	}
	if probe.Span != begin.Span {
		t.Errorf("work inside the span attributed to %d, want %d", probe.Span, begin.Span)
	}
	if done.Evals != 17 {
		t.Errorf("span-end evals = %d, want 17", done.Evals)
	}
}

// TestStartSpanUntracedFlat pins compatibility: on a plain observer the
// begin/end records carry no span identity, exactly the pre-trace protocol.
func TestStartSpanUntracedFlat(t *testing.T) {
	var got []Event
	inner, end := StartSpan(Func(func(e Event) { got = append(got, e) }), "phase.y")
	inner.Observe(Event{Kind: KindSample})
	end(1)
	for i, e := range got {
		if e.Trace != 0 || e.Span != 0 || e.Parent != 0 {
			t.Errorf("event %d carries trace identity %d/%d/%d on an untraced observer",
				i, e.Trace, e.Span, e.Parent)
		}
	}
}

// TestTracedNopZeroAlloc is the satellite regression pin: stamping trace
// identity onto an event and discarding it must not allocate, and neither
// must a Nop observer fed an event that already carries the new trace
// fields — the properties that keep tracing permanently enabled in the hot
// loops.
func TestTracedNopZeroAlloc(t *testing.T) {
	traced := NewTraced(nil, NewTracerID(9))
	allocs := testing.AllocsPerRun(1000, func() {
		traced.Observe(Event{Kind: KindGeneration, Scope: "optim.de", Gen: 1, Evals: 10, Best: 0.5})
	})
	if allocs != 0 {
		t.Errorf("Traced->Nop observer allocates %.1f/op, want 0", allocs)
	}
	o := OrNop(nil)
	allocs = testing.AllocsPerRun(1000, func() {
		o.Observe(Event{
			Kind: KindGeneration, Scope: "optim.de", Gen: 1, Evals: 10, Best: 0.5,
			Trace: 7, Span: 3, Parent: 2, Worker: 4,
		})
	})
	if allocs != 0 {
		t.Errorf("Nop observer with trace fields allocates %.1f/op, want 0", allocs)
	}
}

// TestProfDoLabels asserts the pprof label plumbing: ProfDo's ctx carries
// phase and solver, and WorkerCtx composes worker on top without losing
// them.
func TestProfDoLabels(t *testing.T) {
	ran := false
	ProfDo("optim", "de", func(ctx context.Context) {
		ran = true
		want := map[string]string{"phase": "optim", "solver": "de"}
		for k, v := range want {
			if got, ok := pprof.Label(ctx, k); !ok || got != v {
				t.Errorf("label %s = %q (ok=%v), want %q", k, got, ok, v)
			}
		}
		wctx := WorkerCtx(ctx, 3)
		want["worker"] = "3"
		for k, v := range want {
			if got, ok := pprof.Label(wctx, k); !ok || got != v {
				t.Errorf("worker ctx label %s = %q (ok=%v), want %q", k, got, ok, v)
			}
		}
	})
	if !ran {
		t.Fatal("ProfDo did not run the body")
	}
}

func TestWorkerLabelNoAlloc(t *testing.T) {
	if got := WorkerLabel(0); got != "0" {
		t.Errorf("WorkerLabel(0) = %q", got)
	}
	if got := WorkerLabel(31); got != "31" {
		t.Errorf("WorkerLabel(31) = %q", got)
	}
	if got := WorkerLabel(99); got != "many" {
		t.Errorf("WorkerLabel(99) = %q", got)
	}
	allocs := testing.AllocsPerRun(1000, func() { _ = WorkerLabel(5) })
	if allocs != 0 {
		t.Errorf("WorkerLabel allocates %.1f/op, want 0", allocs)
	}
}

// TestOutlierDetector drives a stable latency population past warmup and
// checks that only a far-beyond-p99 sample is flagged.
func TestOutlierDetector(t *testing.T) {
	d := NewOutlierDetector()
	for i := 0; i < 200; i++ {
		if d.Observe("optim.de", 1.0) {
			t.Fatalf("uniform sample %d flagged as outlier", i)
		}
	}
	if p := d.P99("optim.de"); p <= 0 {
		t.Fatalf("p99 = %g after 200 samples", p)
	}
	if !d.Observe("optim.de", 1000) {
		t.Error("1000ms sample not flagged against a ~1ms population")
	}
	if d.Observe("optim.de", 1.5) {
		t.Error("near-median sample flagged")
	}
	// A different scope is still warming up: nothing flags.
	if d.Observe("optim.pso", 1000) {
		t.Error("cold scope flagged during warmup")
	}
	// Nil receiver is inert (untraced pools).
	var nilD *OutlierDetector
	if nilD.Observe("x", 1e9) || nilD.P99("x") != 0 {
		t.Error("nil detector not inert")
	}
}

// TestRuntimeSampler checks a sampling cycle fills the runtime gauges and
// mirrors them to the attached observer as samples.
func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	var mu sync.Mutex
	seen := map[string]bool{}
	o := Func(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Kind == KindSample {
			seen[e.Scope] = true
		}
	})
	s := StartRuntimeSampler(reg, o, time.Hour) // one initial + one final sample
	s.Stop()

	snap := reg.Snapshot()
	if g := snap.Gauges["runtime.goroutines"]; g < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", g)
	}
	if g := snap.Gauges["runtime.heap_bytes"]; g <= 0 {
		t.Errorf("runtime.heap_bytes = %g, want > 0", g)
	}
	mu.Lock()
	defer mu.Unlock()
	if !seen["runtime.goroutines"] || !seen["runtime.heap_bytes"] {
		t.Errorf("observer samples missing: %v", seen)
	}
}

// TestJournalKeepsCallerTMs pins the satellite contract: the journal stamps
// t_ms only when the caller left it zero, so the hub's emission-time stamps
// survive and stay monotonic with the run rather than the file.
func TestJournalKeepsCallerTMs(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append(Record{Event: "sample", TMs: 123.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Event: "sample"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].TMs != 123.5 {
		t.Errorf("preset t_ms overwritten: %g", recs[0].TMs)
	}
	if recs[1].TMs < 0 {
		t.Errorf("stamped t_ms negative: %g", recs[1].TMs)
	}
}

// TestHubStampsTraceFields drives traced events through a hub and checks the
// journal mirror carries the causal identity.
func TestHubStampsTraceFields(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	h := NewHub(nil, j)
	root := NewTraced(h, NewTracerID(77))
	root.Observe(Event{Kind: KindDone, Scope: "optim.de", Evals: 10, Worker: 0})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
	if recs[0].Trace != 77 || recs[0].Span != uint64(root.Span()) {
		t.Errorf("journal record identity = trace %d span %d, want 77/%d",
			recs[0].Trace, recs[0].Span, root.Span())
	}
	if recs[0].TMs <= 0 {
		t.Errorf("hub-stamped t_ms = %g, want > 0", recs[0].TMs)
	}
}
