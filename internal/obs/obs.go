// Package obs is the observability layer of the repository: lightweight
// counters, gauges and histograms in a goroutine-safe Registry, a
// structured JSONL run Journal, and a span/event Observer protocol that the
// optimization, extraction, measurement and experiment pipelines emit into.
//
// The design constraint is that instrumentation must be safe to leave in
// the hot loops permanently: Event is a flat value type, observers are
// nil-able (nil means disabled, checked with a single branch), and the
// provided no-op observer performs zero allocations per event — proven by
// the benchmarks in this package and internal/optim.
package obs

import "time"

// EventKind classifies an Event.
type EventKind uint8

// Event kinds emitted by the instrumented pipelines.
const (
	// KindGeneration is a per-generation (or per-iteration) convergence
	// record from an optimizer loop: Gen, Evals, Best and the wall time
	// since the loop started (Value, milliseconds).
	KindGeneration EventKind = iota + 1
	// KindSpanBegin marks the start of a named phase (Scope).
	KindSpanBegin
	// KindSpanEnd closes a phase: Value carries the elapsed milliseconds
	// and Evals the objective/measurement evaluations attributed to it.
	KindSpanEnd
	// KindDone closes an instrumented run: Evals is the total evaluation
	// count, Best the final objective, Value the wall milliseconds.
	KindDone
	// KindSample is a generic scalar observation (Value) under Scope.
	KindSample
	// KindFault is one quarantined objective evaluation (a recovered panic
	// or a non-finite return): Value carries the substituted penalty.
	KindFault
	// KindBreaker marks a circuit-breaker trip after too many consecutive
	// faults: Value carries the consecutive-fault count at the trip.
	KindBreaker
	// KindRestart marks one jittered multi-start restart attempt: Gen is
	// the attempt ordinal, Best the best objective across attempts so far.
	KindRestart
)

// String names the kind as it appears in journal records.
func (k EventKind) String() string {
	switch k {
	case KindGeneration:
		return "generation"
	case KindSpanBegin:
		return "span-begin"
	case KindSpanEnd:
		return "span-end"
	case KindDone:
		return "done"
	case KindSample:
		return "sample"
	case KindFault:
		return "fault"
	case KindBreaker:
		return "breaker"
	case KindRestart:
		return "restart"
	}
	return "unknown"
}

// Event is a single observation from an instrumented loop. It is a flat
// value type on purpose: emitting one through a nil or no-op Observer must
// not allocate.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Scope names the instrumented loop or phase, e.g. "optim.cmaes" or
	// "extract.step1.coldfet".
	Scope string
	// Gen is the generation / iteration ordinal (KindGeneration).
	Gen int
	// Evals is the cumulative evaluation count at emission time.
	Evals int64
	// Best is the best (lowest) objective value so far.
	Best float64
	// Value is the kind-specific payload: wall milliseconds for
	// generation/span/done events, the sample for KindSample.
	Value float64
	// Trace identifies the run this event belongs to (zero when the
	// emitting pipeline is untraced).
	Trace TraceID
	// Span is the span the event describes: span-begin/end pairs share one,
	// a generation record carries its generation's span, a done record its
	// run's. Zero when untraced.
	Span SpanID
	// Parent is the span that causally encloses Span (zero for a root span
	// or an untraced event).
	Parent SpanID
	// Worker is the 1-based pool-worker ordinal for worker-attributed spans
	// (zero for driver-side events).
	Worker int
}

// Observer receives events from instrumented loops. Implementations must be
// safe for concurrent use; the pipelines may emit from parallel workers.
type Observer interface {
	Observe(Event)
}

type nopObserver struct{}

func (nopObserver) Observe(Event) {}

// Nop is an Observer that discards every event without allocating.
var Nop Observer = nopObserver{}

// OrNop returns o, or Nop when o is nil, so callers can emit
// unconditionally.
func OrNop(o Observer) Observer {
	if o == nil {
		return Nop
	}
	return o
}

// Func adapts a plain function to the Observer interface.
type Func func(Event)

// Observe implements Observer.
func (f Func) Observe(e Event) { f(e) }

type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi fans events out to every non-nil observer. Nil entries are dropped;
// zero or one survivor collapses to the survivor (or nil).
func Multi(os ...Observer) Observer {
	kept := make(multi, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// StartSpan emits KindSpanBegin under scope and returns the observer the
// phase's work should emit into plus the closer; calling the closer emits
// KindSpanEnd with the elapsed milliseconds and the evaluation count the
// caller attributes to the phase.
//
// For a *Traced observer the span is a real child span: begin and end carry
// its identity, and the returned observer parents everything emitted during
// the phase under it. For any other observer the begin/end records are flat
// (exactly the pre-trace behavior) and the inner observer is o itself. A nil
// observer costs one branch and no allocation.
func StartSpan(o Observer, scope string) (Observer, func(evals int64)) {
	if o == nil {
		return nil, endNothing
	}
	inner := o
	if tr, ok := o.(*Traced); ok {
		inner = tr.NewChild()
	}
	inner.Observe(Event{Kind: KindSpanBegin, Scope: scope})
	start := time.Now()
	return inner, func(evals int64) {
		inner.Observe(Event{
			Kind:  KindSpanEnd,
			Scope: scope,
			Evals: evals,
			Value: float64(time.Since(start)) / float64(time.Millisecond),
		})
	}
}

func endNothing(int64) {}
