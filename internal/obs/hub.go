package obs

import (
	"sync/atomic"
	"time"
)

// Hub is the standard Observer behind the -journal/-metrics CLI flags: it
// folds every event into a Registry and, when a Journal is attached,
// appends the structured record. It is safe for concurrent emitters.
//
// Metric naming convention (scope is the emitting loop or phase):
//
//	<scope>.gen     gauge    last generation ordinal
//	<scope>.best    gauge    best objective so far / final
//	<scope>.evals   counter  evaluations accumulated at span/done events
//	<scope>.runs    counter  completed instrumented runs
//	<scope>.count   counter  completed spans
//	<scope>.ms      hist     span / run durations, milliseconds
type Hub struct {
	reg   *Registry
	j     *Journal
	start time.Time
}

// NewHub wires a registry (nil allocates a fresh one) and an optional
// journal into an observer.
func NewHub(reg *Registry, j *Journal) *Hub {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Hub{reg: reg, j: j, start: time.Now()}
}

// Registry exposes the hub's metric store.
func (h *Hub) Registry() *Registry { return h.reg }

// Journal exposes the attached journal (may be nil).
func (h *Hub) Journal() *Journal { return h.j }

// Observe implements Observer.
func (h *Hub) Observe(e Event) {
	switch e.Kind {
	case KindGeneration:
		h.reg.Gauge(e.Scope + ".gen").Set(float64(e.Gen))
		h.reg.Gauge(e.Scope + ".best").Set(e.Best)
	case KindSpanEnd:
		h.reg.Counter(e.Scope + ".count").Inc()
		h.reg.Histogram(e.Scope + ".ms").Observe(e.Value)
		if e.Evals > 0 {
			h.reg.Counter(e.Scope + ".evals").Add(e.Evals)
		}
	case KindDone:
		h.reg.Counter(e.Scope + ".runs").Inc()
		h.reg.Counter(e.Scope + ".evals").Add(e.Evals)
		h.reg.Gauge(e.Scope + ".best").Set(e.Best)
		h.reg.Histogram(e.Scope + ".ms").Observe(e.Value)
	case KindSample:
		h.reg.Histogram(e.Scope).Observe(e.Value)
	case KindFault:
		h.reg.Counter(e.Scope + ".faults").Inc()
	case KindBreaker:
		h.reg.Counter(e.Scope + ".breaker_trips").Inc()
	case KindRestart:
		h.reg.Counter(e.Scope + ".restarts").Inc()
	}
	if h.j != nil && e.Kind != 0 {
		h.j.Append(Record{
			TMs:    float64(time.Since(h.start)) / float64(time.Millisecond),
			Event:  e.Kind.String(),
			Scope:  e.Scope,
			Gen:    e.Gen,
			Evals:  e.Evals,
			Best:   e.Best,
			WallMs: e.Value,
			Trace:  uint64(e.Trace),
			Span:   uint64(e.Span),
			Parent: uint64(e.Parent),
			Worker: e.Worker,
		})
	}
}

// Tally forwards every event to an inner observer (which may be nil) while
// accumulating the evaluation totals reported by KindDone events (span-end
// evals are excluded: spans usually enclose instrumented runs and would
// double-count). The experiment suite uses deltas of this total for its
// per-experiment eval-budget accounting.
type Tally struct {
	inner Observer
	evals atomic.Int64
}

// NewTally wraps inner (nil is allowed: the tally then only counts).
func NewTally(inner Observer) *Tally {
	return &Tally{inner: inner}
}

// Observe implements Observer.
func (t *Tally) Observe(e Event) {
	if e.Kind == KindDone {
		t.evals.Add(e.Evals)
	}
	if t.inner != nil {
		t.inner.Observe(e)
	}
}

// Evals returns the evaluations accumulated so far.
func (t *Tally) Evals() int64 { return t.evals.Load() }
