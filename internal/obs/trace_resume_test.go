package obs

import (
	"bytes"
	"math"
	"testing"
)

// collect is a minimal recording observer.
type collect struct{ events []Event }

func (c *collect) Observe(e Event) { c.events = append(c.events, e) }

func TestNewTracerAtAllocatesAboveBase(t *testing.T) {
	const base = uint64(3) << 48
	tr := NewTracerAt(42, base)
	if got := tr.ID(); got != 42 {
		t.Fatalf("ID = %d, want 42", got)
	}
	if s := tr.NewSpan(); uint64(s) != base+1 {
		t.Fatalf("first span = %d, want %d", s, base+1)
	}
	if s := tr.NewSpan(); uint64(s) != base+2 {
		t.Fatalf("second span = %d, want %d", s, base+2)
	}
}

func TestAdoptSpanStampsDurableIdentity(t *testing.T) {
	sink := &collect{}
	tr := NewTracerAt(7, 1<<48)
	root := AdoptSpan(sink, tr, 1, 0)

	// Membership event: inherits the adopted span and parent.
	root.Observe(Event{Kind: KindSample, Scope: "job.backoff_ms", Value: 5})
	// Child-span record: explicit span, parented under the adopted span.
	root.Observe(Event{Kind: KindSpanEnd, Scope: "job.wait", Span: tr.NewSpan(), Value: 9})
	// A StartSpan child nests under the adopted root too.
	child, end := StartSpan(root, "job.attempt")
	child.Observe(Event{Kind: KindGeneration, Gen: 1})
	end(0)

	es := sink.events
	if len(es) != 5 {
		t.Fatalf("got %d events, want 5", len(es))
	}
	if es[0].Trace != 7 || es[0].Span != 1 || es[0].Parent != 0 {
		t.Errorf("membership event identity = (%d,%d,%d), want (7,1,0)", es[0].Trace, es[0].Span, es[0].Parent)
	}
	if want := SpanID(1<<48 + 1); es[1].Span != want || es[1].Parent != 1 {
		t.Errorf("wait span identity = (%d,%d), want (%d,1)", es[1].Span, es[1].Parent, want)
	}
	if want := SpanID(1<<48 + 2); es[2].Kind != KindSpanBegin || es[2].Span != want || es[2].Parent != 1 {
		t.Errorf("attempt begin = kind %d span %d parent %d, want begin %d 1", es[2].Kind, es[2].Span, es[2].Parent, want)
	}
	if es[3].Span != es[2].Span {
		t.Errorf("generation not attributed to the attempt span: %d vs %d", es[3].Span, es[2].Span)
	}
	if es[4].Kind != KindSpanEnd || es[4].Span != es[2].Span {
		t.Errorf("attempt end span = %d, want %d", es[4].Span, es[2].Span)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if v := empty.Quantile(0.99); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %g, want NaN", v)
	}

	var one Histogram
	one.Observe(37.5)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if v := one.Quantile(q); v != 37.5 {
			t.Errorf("single-observation Quantile(%g) = %g, want 37.5", q, v)
		}
	}

	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("quantiles out of order: p50=%g p99=%g", p50, p99)
	}
	// Log-bucket estimate: within one bucket factor (2x) of the exact rank.
	if p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %g, implausible for uniform 1..1000", p50)
	}
	if q := h.Quantile(2); q != h.Quantile(1) {
		t.Errorf("Quantile clamps q>1: got %g want %g", q, h.Quantile(1))
	}
}

func TestAppendEpoch(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.AppendEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Event != EpochEvent {
		t.Fatalf("records = %+v, want one epoch record", recs)
	}
	if recs[0].Fields["unix_ms"] <= 0 {
		t.Errorf("epoch unix_ms = %g, want > 0", recs[0].Fields["unix_ms"])
	}
}
