package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one line of the JSONL run journal. Seq is strictly increasing
// within a journal and TMs is the emission time in milliseconds since the
// journal was opened, so a journal is replayable and sortable on its own.
type Record struct {
	// Seq is the 1-based sequence number stamped by the journal.
	Seq int64 `json:"seq"`
	// TMs is the emission time, milliseconds since the journal opened.
	TMs float64 `json:"t_ms"`
	// Event names the record kind: "generation", "span-begin", "span-end",
	// "done", "sample", "metrics" or a caller-defined label.
	Event string `json:"event"`
	// Scope names the emitting loop or phase.
	Scope string `json:"scope,omitempty"`
	// Gen is the generation / iteration ordinal (generation records).
	Gen int `json:"gen"`
	// Evals is the cumulative evaluation count at emission time.
	Evals int64 `json:"evals"`
	// Best is the best objective value so far (generation/done records).
	Best float64 `json:"best"`
	// WallMs is the wall time attributed to the record, milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Trace identifies the run the record belongs to; Span and Parent carry
	// the causal span identity stamped by a Traced observer. All three are
	// omitted for untraced records and tolerated as absent on replay, so
	// journals written before the trace model still parse.
	Trace uint64 `json:"trace,omitempty"`
	// Span is the span this record describes.
	Span uint64 `json:"span,omitempty"`
	// Parent is the enclosing span.
	Parent uint64 `json:"parent,omitempty"`
	// Worker is the 1-based pool-worker ordinal for worker-attributed spans.
	Worker int `json:"worker,omitempty"`
	// Fields carries free-form numeric payloads (the metrics record).
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Journal is a goroutine-safe JSONL event log. Every Append stamps the
// sequence number and relative timestamp and flushes the line, so a journal
// is valid up to its last record even after a crash.
type Journal struct {
	mu    sync.Mutex
	w     *bufio.Writer
	close io.Closer
	seq   int64
	start time.Time
	err   error
}

// NewJournal writes records to w (the caller keeps ownership of w).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w), start: time.Now()}
}

// OpenJournal creates (or truncates) a JSONL journal file at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	j := NewJournal(f)
	j.close = f
	return j, nil
}

// Append stamps rec's Seq and writes it as one JSON line. TMs is stamped
// relative to the journal's open time only when the caller left it zero —
// the Hub stamps emission time itself, which survives journal rotation and
// keeps t_ms monotonic with the emitting run rather than the file. The
// first write error sticks and is returned by every later call and by Close.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.seq++
	rec.Seq = j.seq
	if rec.TMs == 0 {
		rec.TMs = float64(time.Since(j.start)) / float64(time.Millisecond)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return err
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// EpochEvent names the record anchoring a journal's relative clock to the
// wall clock, written by AppendEpoch and consumed by replay.Merge.
const EpochEvent = "epoch"

// AppendEpoch appends an "epoch" record carrying the current wall-clock time
// ("unix_ms"). Together with the record's own relative t_ms this anchors the
// journal's t=0 on the shared wall clock, which is what lets replay.Merge
// stitch journals from different processes (a crashed lnaservd and its
// restart) onto one timeline.
func (j *Journal) AppendEpoch() error {
	return j.Append(Record{
		Event:  EpochEvent,
		Fields: map[string]float64{"unix_ms": float64(time.Now().UnixMilli())},
	})
}

// AppendSnapshot appends the registry's flattened metrics as a final
// "metrics" record.
func (j *Journal) AppendSnapshot(r *Registry) error {
	return j.Append(Record{Event: "metrics", Fields: r.Snapshot().Flatten()})
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and, for file-backed journals, closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	ferr := j.w.Flush()
	if j.err == nil {
		j.err = ferr
	}
	if j.close != nil {
		cerr := j.close.Close()
		j.close = nil
		if j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}

// ReadJournal parses a JSONL journal stream back into records.
func ReadJournal(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return out, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: read journal: %w", err)
	}
	return out, nil
}

// ReadJournalFile parses the JSONL journal at path.
func ReadJournalFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}
