package obs

import (
	"math"
	"sync"
)

// OutlierDetector flags individual evaluations whose latency is far beyond
// the scope's own p99. Each scope keeps a log2 latency histogram (the same
// base-2 grid the Registry histograms use); once a scope has seen a warmup's
// worth of samples, an observation slower than Factor times the current p99
// estimate is reported as an outlier. The EvalPool's traced workers feed it
// per-candidate latencies and emit a flagged KindSample event (scope
// "<scope>.outlier", Gen carrying the offending candidate index) for every
// hit, so one pathological bias point in a ten-thousand-candidate sweep is
// visible in the journal without logging every evaluation.
type OutlierDetector struct {
	// Factor is the p99 multiplier above which a sample is an outlier
	// (default 4).
	Factor float64
	// Warmup is the per-scope sample count before detection arms
	// (default 64).
	Warmup int

	mu     sync.Mutex
	scopes map[string]*latencyDist
}

type latencyDist struct {
	count   int64
	buckets [histBuckets]int64
}

// NewOutlierDetector returns a detector with the default factor (4x p99)
// and warmup (64 samples per scope).
func NewOutlierDetector() *OutlierDetector {
	return &OutlierDetector{Factor: 4, Warmup: 64}
}

// Observe records one latency (milliseconds) under scope and reports
// whether it is an outlier against the distribution seen so far (excluding
// this sample). Safe for concurrent use from pool workers.
func (d *OutlierDetector) Observe(scope string, ms float64) bool {
	if d == nil || math.IsNaN(ms) {
		return false
	}
	d.mu.Lock()
	if d.scopes == nil {
		d.scopes = make(map[string]*latencyDist)
	}
	dist := d.scopes[scope]
	if dist == nil {
		dist = &latencyDist{}
		d.scopes[scope] = dist
	}
	out := false
	if dist.count >= int64(d.warmup()) {
		out = ms > d.factor()*dist.p99Locked()
	}
	dist.count++
	dist.buckets[bucketOf(ms)]++
	d.mu.Unlock()
	return out
}

// P99 returns the current p99 latency estimate for scope (0 when the scope
// has no samples yet).
func (d *OutlierDetector) P99(scope string) float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dist := d.scopes[scope]
	if dist == nil || dist.count == 0 {
		return 0
	}
	return dist.p99Locked()
}

func (d *OutlierDetector) factor() float64 {
	if d.Factor > 0 {
		return d.Factor
	}
	return 4
}

func (d *OutlierDetector) warmup() int {
	if d.Warmup > 0 {
		return d.Warmup
	}
	return 64
}

// p99Locked estimates the 99th percentile as the upper bound of the bucket
// holding the target rank — deliberately the bound, not the midpoint, so the
// outlier threshold is conservative against bucket quantization.
func (dist *latencyDist) p99Locked() float64 {
	target := int64(math.Ceil(0.99 * float64(dist.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range dist.buckets {
		seen += n
		if seen >= target {
			return math.Exp2(float64(i - histShift + 1))
		}
	}
	return math.Inf(1)
}
