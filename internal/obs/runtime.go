package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples maps the runtime/metrics names the sampler reads to the
// registry gauges it writes. Histogram-shaped metrics are reduced to a p99
// estimate; counters and gauges pass through. Missing names (older or newer
// runtimes) are skipped, never fatal.
var runtimeSamples = []struct {
	metric string
	gauge  string
	// scale converts the runtime unit into the exported one.
	scale float64
}{
	{"/sched/goroutines:goroutines", "runtime.goroutines", 1},
	{"/memory/classes/heap/objects:bytes", "runtime.heap_bytes", 1},
	{"/memory/classes/total:bytes", "runtime.mem_total_bytes", 1},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles", 1},
	{"/gc/pauses:seconds", "runtime.gc_pause_p99_ms", 1e3},
	{"/sched/latencies:seconds", "runtime.sched_latency_p99_ms", 1e3},
}

// RuntimeSampler periodically reads process health from runtime/metrics —
// goroutine count, heap and total memory, GC cycles, GC pause and scheduler
// latency p99s — into "runtime.*" registry gauges (exported as the
// gnsslna_runtime_* Prometheus families) and, when an observer is attached,
// emits each sample as a KindSample event so the SSE stream carries live
// process health next to solver progress.
type RuntimeSampler struct {
	reg      *Registry
	o        Observer
	interval time.Duration

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler begins sampling every interval (default 500ms) until
// Stop. The observer may be nil (gauges only).
func StartRuntimeSampler(reg *Registry, o Observer, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	s := &RuntimeSampler{
		reg: reg, o: o, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	s.SampleOnce()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.SampleOnce()
		}
	}
}

// Stop halts the sampler after taking one final sample, so short runs still
// export a health snapshot. Safe to call more than once.
func (s *RuntimeSampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
	s.SampleOnce()
}

// SampleOnce reads every configured runtime metric into its gauge.
func (s *RuntimeSampler) SampleOnce() {
	batch := make([]metrics.Sample, len(runtimeSamples))
	for i := range batch {
		batch[i].Name = runtimeSamples[i].metric
	}
	metrics.Read(batch)
	for i, sm := range batch {
		var v float64
		switch sm.Value.Kind() {
		case metrics.KindUint64:
			v = float64(sm.Value.Uint64())
		case metrics.KindFloat64:
			v = sm.Value.Float64()
		case metrics.KindFloat64Histogram:
			v = histP99(sm.Value.Float64Histogram())
		default:
			continue
		}
		v *= runtimeSamples[i].scale
		if s.reg != nil {
			s.reg.Gauge(runtimeSamples[i].gauge).Set(v)
		}
		if s.o != nil {
			s.o.Observe(Event{Kind: KindSample, Scope: runtimeSamples[i].gauge, Value: v})
		}
	}
}

// histP99 estimates the 99th percentile of a runtime/metrics histogram
// (cumulative over the process lifetime) as the upper bound of the bucket
// holding the target rank.
func histP99(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(0.99 * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			// Buckets[i+1] is bucket i's upper bound; the last bucket may
			// be +Inf, where the lower bound is the best finite answer.
			up := h.Buckets[i+1]
			if math.IsInf(up, 1) {
				up = h.Buckets[i]
			}
			return up
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
