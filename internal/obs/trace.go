package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// TraceID identifies one run of an instrumented process. All events emitted
// through the same Tracer share it, so journals from many runs can be merged
// and still pulled apart.
type TraceID uint64

// SpanID identifies one span (a solver run, a generation, one worker's share
// of a batch) inside a trace. Zero means "no span": events from untraced
// observers keep zero IDs and the journal omits the fields entirely.
type SpanID uint64

// Tracer allocates span IDs for one trace. Allocation is a single atomic
// increment — no locks, no allocation — so it is safe to call from the
// EvalPool's worker goroutines in the middle of a batch.
type Tracer struct {
	id       TraceID
	next     atomic.Uint64
	outliers *OutlierDetector
}

// NewTracer returns a tracer with a run-unique TraceID derived from the wall
// clock at nanosecond resolution (unique across the runs of one machine,
// which is the merge domain journals care about).
func NewTracer() *Tracer {
	return NewTracerID(TraceID(time.Now().UnixNano()))
}

// NewTracerID returns a tracer with an explicit TraceID (tests, replays).
func NewTracerID(id TraceID) *Tracer {
	return &Tracer{id: id}
}

// NewTracerAt returns a tracer with an explicit TraceID whose span counter
// starts at base: the first NewSpan yields base+1. The serve layer uses this
// to resume a durable trace in a fresh process without colliding with span
// IDs the previous process already allocated — each attempt gets a disjoint
// base derived from journaled counters, so stitched journals never alias.
func NewTracerAt(id TraceID, base uint64) *Tracer {
	t := &Tracer{id: id}
	t.next.Store(base)
	return t
}

// ID returns the trace identifier.
func (t *Tracer) ID() TraceID { return t.id }

// NewSpan allocates the next span ID. Safe for concurrent use.
func (t *Tracer) NewSpan() SpanID { return SpanID(t.next.Add(1)) }

// SetOutliers attaches a latency outlier detector consulted by the EvalPool's
// traced workers (nil disables detection).
func (t *Tracer) SetOutliers(d *OutlierDetector) { t.outliers = d }

// Outliers returns the attached outlier detector (may be nil).
func (t *Tracer) Outliers() *OutlierDetector { return t.outliers }

// Traced is an Observer that stamps causal identity onto every event before
// forwarding it to a sink: the tracer's TraceID always, and span/parent IDs
// according to two rules that keep emitters trivial —
//
//   - an event with no Span is a membership event (generation progress,
//     samples, faults, done): it is attributed to this Traced's own span,
//     with this span's parent;
//   - an event that carries its own Span but no Parent is a child span
//     record: it is parented under this Traced's span.
//
// Traced is itself a value-shaped wrapper (three words); NewChild allocates
// one small node per span, never per event, so the per-event path stays
// allocation-free.
type Traced struct {
	sink   Observer
	tracer *Tracer
	span   SpanID
	parent SpanID
}

// NewTraced returns the root traced observer for a run: a fresh root span
// allocated from tr, forwarding to sink. A nil sink discards events (the
// identity stamping still happens, which keeps span allocation deterministic
// whether or not a journal is attached).
func NewTraced(sink Observer, tr *Tracer) *Traced {
	return &Traced{sink: OrNop(sink), tracer: tr, span: tr.NewSpan()}
}

// AdoptSpan returns a Traced that re-opens an existing span identity: events
// emitted through it are stamped with tr's trace and the given span/parent
// instead of a freshly allocated span. This is how a restarted process keeps
// appending to a span a previous process began — the identity lives in
// durable state (the job queue's WAL), not in the tracer.
func AdoptSpan(sink Observer, tr *Tracer, span, parent SpanID) *Traced {
	return &Traced{sink: OrNop(sink), tracer: tr, span: span, parent: parent}
}

// Observe implements Observer.
func (t *Traced) Observe(e Event) {
	e.Trace = t.tracer.id
	if e.Span == 0 {
		e.Span = t.span
		e.Parent = t.parent
	} else if e.Parent == 0 {
		e.Parent = t.span
	}
	t.sink.Observe(e)
}

// NewChild allocates a child span of this one and returns the observer that
// emits into it. No record is written: spans appear in the journal through
// the events emitted into them (span-begin/end pairs, or single done /
// generation / worker records carrying their duration).
func (t *Traced) NewChild() *Traced {
	return &Traced{sink: t.sink, tracer: t.tracer, span: t.tracer.NewSpan(), parent: t.span}
}

// Span returns this observer's span identity.
func (t *Traced) Span() SpanID { return t.span }

// Parent returns the enclosing span (zero for a root).
func (t *Traced) Parent() SpanID { return t.parent }

// Tracer returns the allocator shared by the whole trace.
func (t *Traced) Tracer() *Tracer { return t.tracer }

// Sink returns the observer events are forwarded to.
func (t *Traced) Sink() Observer { return t.sink }

// WithSink returns a copy of t forwarding to sink while keeping the same
// trace/span identity. The experiment suite uses this to splice a Tally
// between the trace stamping and the hub without hiding the Traced type
// from StartSpan.
func (t *Traced) WithSink(sink Observer) *Traced {
	c := *t
	c.sink = OrNop(sink)
	return &c
}

// ProfDo runs f with pprof labels phase and solver set on the current
// goroutine, so CPU profiles captured during a run segment by pipeline stage
// and algorithm. Goroutines started inside f (the EvalPool's workers)
// inherit the labels. The ctx passed to f carries the label set for
// composition with WorkerCtx and for assertions via pprof.ForLabels.
func ProfDo(phase, solver string, f func(ctx context.Context)) {
	pprof.Do(context.Background(), pprof.Labels("phase", phase, "solver", solver), f)
}

// workerLabels pre-renders the small worker ordinals so labeling a pool
// worker does not format strings in the batch hot path.
var workerLabels = [...]string{
	"0", "1", "2", "3", "4", "5", "6", "7",
	"8", "9", "10", "11", "12", "13", "14", "15",
	"16", "17", "18", "19", "20", "21", "22", "23",
	"24", "25", "26", "27", "28", "29", "30", "31",
}

// WorkerLabel renders a worker ordinal for pprof labels without allocating
// for the worker counts a pool actually runs.
func WorkerLabel(g int) string {
	if g >= 0 && g < len(workerLabels) {
		return workerLabels[g]
	}
	return "many"
}

// WorkerCtx derives a ctx labeled worker=g from ctx (which should carry the
// phase/solver labels from ProfDo), for pprof.SetGoroutineLabels-style
// attribution of one pool worker. The labels in ctx are preserved, so a
// profile sample inside a worker carries phase, solver and worker together.
func WorkerCtx(ctx context.Context, g int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return pprof.WithLabels(ctx, pprof.Labels("worker", WorkerLabel(g)))
}
