package benchjson

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gnsslna
cpu: Some CPU @ 2.40GHz
BenchmarkE1ModelComparison-8   	     100	  11873456 ns/op	  524288 B/op	    1024 allocs/op
BenchmarkE2ExtractionMethods-8 	       2	 612345678 ns/op
BenchmarkDeviceSParams-8       	  500000	      2210 ns/op	       0 B/op	       0 allocs/op
some stray log line
BenchmarkComplexLUSolve16      	   10000	    105000 ns/op	   16384 B/op	       3 allocs/op
PASS
ok  	gnsslna	12.345s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	want := []Result{
		{Name: "BenchmarkComplexLUSolve16", Iterations: 10000, NsPerOp: 105000, BytesPerOp: 16384, AllocsPerOp: 3},
		{Name: "BenchmarkDeviceSParams", Iterations: 500000, NsPerOp: 2210},
		{Name: "BenchmarkE1ModelComparison", Iterations: 100, NsPerOp: 11873456, BytesPerOp: 524288, AllocsPerOp: 1024},
		{Name: "BenchmarkE2ExtractionMethods", Iterations: 2, NsPerOp: 612345678},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed = %+v\nwant %+v", got, want)
	}
}

func TestParseBenchKeepsFastestOfRepeats(t *testing.T) {
	in := "BenchmarkX-4 100 300 ns/op\nBenchmarkX-4 100 200 ns/op\nBenchmarkX-4 100 250 ns/op\n"
	got, err := ParseBench(strings.NewReader(in))
	if err != nil || len(got) != 1 || got[0].NsPerOp != 200 {
		t.Fatalf("got %+v err %v, want single BenchmarkX at 200 ns/op", got, err)
	}
}

func TestStripProcs(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkFoo-8", "BenchmarkFoo"},
		{"BenchmarkFoo", "BenchmarkFoo"},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar"},
		{"BenchmarkTwo-Stage-16", "BenchmarkTwo-Stage"},
	}
	for _, c := range cases {
		if got := stripProcs(c.in); got != c.want {
			t.Errorf("stripProcs(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := File{
		Schema: Schema, Commit: "abc1234", Date: "2026-08-05", GoVersion: "go1.24.0",
		Note:       "re-anchor after machine change",
		Benchmarks: []Result{{Name: "BenchmarkX", Iterations: 10, NsPerOp: 1.5}},
	}
	path := filepath.Join(dir, "BENCH_0.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Fatalf("round trip: %+v != %+v", back, f)
	}
}

func TestListAndNextPathNumericOrder(t *testing.T) {
	dir := t.TempDir()
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_0.json" {
		t.Fatalf("empty dir NextPath = %s, %v", next, err)
	}
	for _, name := range []string{"BENCH_0.json", "BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range paths {
		names = append(names, filepath.Base(p))
	}
	want := []string{"BENCH_0.json", "BENCH_2.json", "BENCH_10.json"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v (numeric order, junk skipped)", names, want)
	}
	next, err = NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_11.json" {
		t.Fatalf("NextPath = %s, %v, want BENCH_11.json", next, err)
	}
}

func point(ns map[string]float64) File {
	f := File{Schema: Schema}
	for name, v := range ns {
		f.Benchmarks = append(f.Benchmarks, Result{Name: name, NsPerOp: v, Iterations: 1})
	}
	return f
}

// The gate must fail a synthetic 50% ns/op regression and pass noise within
// the threshold.
func TestCompareGateRegression(t *testing.T) {
	old := point(map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 2000})
	slow := point(map[string]float64{"BenchmarkA": 1500, "BenchmarkB": 2000}) // A +50%
	rep := Compare(old, slow, 10)
	if !rep.Failed() {
		t.Fatal("50% regression passed the gate")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkA" || regs[0].Pct != 50 {
		t.Fatalf("regressions = %+v, want BenchmarkA at +50%%", regs)
	}

	noisy := point(map[string]float64{"BenchmarkA": 1080, "BenchmarkB": 1900}) // +8%, -5%
	rep = Compare(old, noisy, 10)
	if rep.Failed() {
		t.Fatalf("noise within threshold failed the gate: %+v", rep.Regressions())
	}

	// An improvement never trips the gate, however large.
	fast := point(map[string]float64{"BenchmarkA": 10, "BenchmarkB": 20})
	if rep = Compare(old, fast, 10); rep.Failed() {
		t.Fatal("speedup failed the gate")
	}
}

func TestCompareMissingAndAdded(t *testing.T) {
	old := point(map[string]float64{"BenchmarkA": 1000, "BenchmarkGone": 500})
	new := point(map[string]float64{"BenchmarkA": 1000, "BenchmarkNew": 100})
	rep := Compare(old, new, 10)
	if !reflect.DeepEqual(rep.Missing, []string{"BenchmarkGone"}) ||
		!reflect.DeepEqual(rep.Added, []string{"BenchmarkNew"}) {
		t.Fatalf("missing=%v added=%v", rep.Missing, rep.Added)
	}
	if !rep.Failed() {
		t.Fatal("dropped benchmark passed the gate")
	}
}

func TestCompareDefaultThreshold(t *testing.T) {
	old := point(map[string]float64{"BenchmarkA": 1000})
	new := point(map[string]float64{"BenchmarkA": 1090})
	if rep := Compare(old, new, 0); rep.Failed() || rep.ThresholdPct != 10 {
		t.Fatalf("default threshold report = %+v", rep)
	}
}

func TestWriteReportText(t *testing.T) {
	old := point(map[string]float64{"BenchmarkA": 1000, "BenchmarkGone": 1})
	new := point(map[string]float64{"BenchmarkA": 1500, "BenchmarkNew": 2})
	var b strings.Builder
	if err := WriteReportText(&b, "BENCH_0.json", "BENCH_1.json", Compare(old, new, 10)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"+50.0%", "REGRESSION", "BenchmarkGone", "missing", "BenchmarkNew", "new benchmark"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
