// Package benchjson is the benchmark-trajectory harness: it parses `go test
// -bench` output, persists each run as a numbered BENCH_<n>.json file (the
// repo's perf trajectory), and gates on ns/op regressions between
// consecutive points. The library is pure — the commit id and date are
// caller-supplied, never sampled here — so results are reproducible and
// testable; cmd/benchgate is the CLI shell.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the BENCH_<n>.json layout version.
const Schema = 1

// Result is one parsed benchmark measurement.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, so
	// trajectories compare across machines.
	Name string `json:"name"`
	// Iterations is the b.N the measurement settled on.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the measured nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are reported with -benchmem (0 otherwise).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// File is one point of the benchmark trajectory.
type File struct {
	// Schema is the layout version (see Schema).
	Schema int `json:"schema"`
	// Commit identifies the measured revision (caller-supplied).
	Commit string `json:"commit,omitempty"`
	// Date is the measurement date, caller-supplied (the library never
	// reads the clock).
	Date string `json:"date,omitempty"`
	// GoVersion records the toolchain that produced the numbers.
	GoVersion string `json:"go_version,omitempty"`
	// Note is free-form provenance for this point — e.g. marking a
	// re-anchor measurement after a machine change, since timings are only
	// comparable between points from the same machine.
	Note string `json:"note,omitempty"`
	// Benchmarks holds the measurements, sorted by name.
	Benchmarks []Result `json:"benchmarks"`
}

// stripProcs removes the trailing -N GOMAXPROCS suffix of a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// ParseBench extracts benchmark results from `go test -bench` output.
// Non-benchmark lines (test logs, PASS/ok trailers) are ignored, so the
// stream can be a full verbose test run. A benchmark appearing several
// times (e.g. -count > 1) keeps its fastest measurement: the minimum over
// repetitions estimates the quiet-machine floor, which is the quantity a
// regression gate can actually compare on shared hosts where any single
// sample may absorb a scheduler-noise spike.
func ParseBench(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	byName := map[string]Result{}
	for sc.Scan() {
		res, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := byName[res.Name]; seen && prev.NsPerOp <= res.NsPerOp {
			continue
		}
		byName[res.Name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: scan: %w", err)
	}
	out := make([]Result, 0, len(byName))
	for _, res := range byName {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// parseBenchLine parses one `BenchmarkName-8  100  123 ns/op  4 B/op  1
// allocs/op` line, reporting ok=false for anything else.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: stripProcs(fields[0]), Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, sawNs
}

// WriteFile writes the trajectory point to path as indented JSON.
func WriteFile(path string, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return nil
}

// ReadFile parses the trajectory point at path.
func ReadFile(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("benchjson: %w", err)
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("benchjson: parse %s: %w", path, err)
	}
	return f, nil
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// List returns the BENCH_<n>.json paths under dir in ascending numeric
// order (BENCH_2 before BENCH_10).
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if e.IsDir() || m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		found = append(found, numbered{n: n, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	out := make([]string, len(found))
	for i, f := range found {
		out[i] = f.path
	}
	return out, nil
}

// NextPath returns the path the next trajectory point should be written to:
// BENCH_<n+1>.json after the highest existing index, or BENCH_0.json in an
// empty directory.
func NextPath(dir string) (string, error) {
	existing, err := List(dir)
	if err != nil {
		return "", err
	}
	next := 0
	if len(existing) > 0 {
		last := filepath.Base(existing[len(existing)-1])
		m := benchFileRe.FindStringSubmatch(last)
		n, err := strconv.Atoi(m[1])
		if err != nil {
			return "", fmt.Errorf("benchjson: bad index in %s", last)
		}
		next = n + 1
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// Delta is one benchmark's movement between two trajectory points.
type Delta struct {
	// Name is the benchmark name.
	Name string `json:"name"`
	// OldNs and NewNs are the two ns/op measurements.
	OldNs float64 `json:"old_ns"`
	NewNs float64 `json:"new_ns"`
	// Pct is the relative ns/op change, 100*(new-old)/old.
	Pct float64 `json:"pct"`
	// Regression is true when Pct exceeds the gate threshold.
	Regression bool `json:"regression,omitempty"`
}

// Report is the outcome of comparing two trajectory points.
type Report struct {
	// ThresholdPct is the regression gate applied, percent.
	ThresholdPct float64 `json:"threshold_pct"`
	// Deltas covers every benchmark present in both points, sorted by name.
	Deltas []Delta `json:"deltas"`
	// Missing names benchmarks in the old point absent from the new one;
	// Added the reverse.
	Missing []string `json:"missing,omitempty"`
	Added   []string `json:"added,omitempty"`
}

// Regressions returns the deltas beyond the threshold.
func (r Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Failed reports whether the gate should fail: any ns/op regression beyond
// the threshold, or a benchmark that disappeared (a silently dropped
// benchmark must not pass the gate).
func (r Report) Failed() bool {
	return len(r.Regressions()) > 0 || len(r.Missing) > 0
}

// Compare gates the new trajectory point against the old one: a benchmark
// whose ns/op grew by more than thresholdPct percent is marked a
// regression. A non-positive threshold applies the 10% default.
func Compare(old, new File, thresholdPct float64) Report {
	if thresholdPct <= 0 {
		thresholdPct = 10
	}
	rep := Report{ThresholdPct: thresholdPct}
	oldBy := map[string]Result{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]Result{}
	for _, b := range new.Benchmarks {
		newBy[b.Name] = b
		if _, ok := oldBy[b.Name]; !ok {
			rep.Added = append(rep.Added, b.Name)
		}
	}
	for _, ob := range old.Benchmarks {
		nb, ok := newBy[ob.Name]
		if !ok {
			rep.Missing = append(rep.Missing, ob.Name)
			continue
		}
		d := Delta{Name: ob.Name, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp}
		if ob.NsPerOp > 0 {
			d.Pct = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		d.Regression = d.Pct > thresholdPct
		rep.Deltas = append(rep.Deltas, d)
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	return rep
}

// WriteReportText renders the comparison as an aligned text table, flagging
// regressions.
func WriteReportText(w io.Writer, labelOld, labelNew string, r Report) error {
	if _, err := fmt.Fprintf(w, "bench gate: %s -> %s (threshold %+.1f%% ns/op)\n",
		labelOld, labelNew, r.ThresholdPct); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old_ns/op", "new_ns/op", "delta"); err != nil {
		return err
	}
	for _, d := range r.Deltas {
		flag := ""
		if d.Regression {
			flag = "  REGRESSION"
		}
		if _, err := fmt.Fprintf(w, "%-40s %14.1f %14.1f %+8.1f%%%s\n",
			d.Name, d.OldNs, d.NewNs, d.Pct, flag); err != nil {
			return err
		}
	}
	for _, name := range r.Missing {
		if _, err := fmt.Fprintf(w, "%-40s missing from new run  REGRESSION\n", name); err != nil {
			return err
		}
	}
	for _, name := range r.Added {
		if _, err := fmt.Fprintf(w, "%-40s new benchmark\n", name); err != nil {
			return err
		}
	}
	return nil
}
