package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of base-2 logarithmic histogram buckets;
// bucket i covers [2^(i-histShift), 2^(i-histShift+1)), which spans
// roughly 1 microsecond to 12 days when observing milliseconds.
const (
	histBuckets = 40
	histShift   = 10
)

// Histogram accumulates scalar observations (span durations in
// milliseconds, typically) into logarithmic buckets plus running
// count/sum/min/max. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) + histShift
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Bucket is one cumulative histogram bucket: Count samples were observed at
// values <= Le (the last bucket has Le = +Inf and Count equal to the total
// sample count). The bounds follow the internal base-2 grid, so converting a
// Histogram to Prometheus exposition format is pure formatting.
type Bucket struct {
	// Le is the inclusive upper bound of the bucket.
	Le float64
	// Count is the cumulative number of samples observed at values <= Le.
	Count int64
}

// Cumulative returns the histogram's buckets in cumulative ("le") form,
// smallest bound first. It always returns the full fixed grid, including
// empty buckets, so the output shape is deterministic.
func (h *Histogram) Cumulative() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Bucket, histBuckets)
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i]
		// Bucket i covers [2^(i-histShift), 2^(i-histShift+1)), so its
		// upper bound is 2^(i-histShift+1); the top bucket is unbounded.
		le := math.Exp2(float64(i - histShift + 1))
		if i == histBuckets-1 {
			le = math.Inf(1)
		}
		out[i] = Bucket{Le: le, Count: cum}
	}
	return out
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	// Count, Sum, Min, Max and Mean summarize the raw samples.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// P50, P90 and P99 are quantiles estimated from the log buckets
	// (geometric bucket midpoints; exact at the recorded min/max).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the log buckets, the
// same estimate the snapshot's P50/P90/P99 use: the geometric midpoint of the
// bucket holding the target rank, clamped into [min, max] so a histogram with
// one observation answers that observation exactly. An empty histogram has no
// quantiles and returns NaN (Prometheus spells it out as a NaN sample). q
// values outside (0, 1] are clamped.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	if q > 1 {
		q = 1
	}
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			// Geometric midpoint of bucket i, clamped into [min, max].
			mid := math.Exp2(float64(i-histShift) + 0.5)
			return math.Min(math.Max(mid, h.min), h.max)
		}
	}
	return h.max
}

// Registry is a goroutine-safe, get-or-create store of named metrics. It
// implements expvar.Var, so a process can expose it on /debug/vars with
// expvar.Publish(name, registry).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric: counters as int64, gauges as float64 and
// histograms as HistogramSnapshot, keyed by kind.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Flatten lowers the snapshot to a flat numeric map — counters under
// "counter.", gauges under "gauge." and histogram count/mean/max under
// "hist." — the form embedded in the journal's final metrics record.
func (s Snapshot) Flatten() map[string]float64 {
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+3*len(s.Histograms))
	for name, v := range s.Counters {
		out["counter."+name] = float64(v)
	}
	for name, v := range s.Gauges {
		out["gauge."+name] = v
	}
	for name, h := range s.Histograms {
		out["hist."+name+".count"] = float64(h.Count)
		out["hist."+name+".mean"] = h.Mean
		out["hist."+name+".max"] = h.Max
	}
	return out
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// WriteText dumps the snapshot as sorted "kind name value" lines, the
// human-readable form behind the -metrics CLI flag.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %-42s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-42s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf(
			"hist    %-42s count=%d mean=%.3f p50=%.3f p90=%.3f max=%.3f",
			name, h.Count, h.Mean, h.P50, h.P90, h.Max))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
