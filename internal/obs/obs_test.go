package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race this proves the counters, gauges and histograms are safe for
// the parallel emitters the pipelines use.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("evals").Add(2)
				r.Gauge("best").Set(float64(w*perWorker + i))
				r.Histogram("ms").Observe(float64(i%17) + 0.5)
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	if got, want := s.Counters["evals"], int64(2*workers*perWorker); got != want {
		t.Errorf("counter evals = %d, want %d", got, want)
	}
	h := s.Histograms["ms"]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	if h.Min != 0.5 || h.Max != 16.5 {
		t.Errorf("histogram min/max = %g/%g, want 0.5/16.5", h.Min, h.Max)
	}
	if h.Mean <= h.Min || h.Mean >= h.Max {
		t.Errorf("histogram mean %g outside (%g, %g)", h.Mean, h.Min, h.Max)
	}
	if h.P50 < h.Min || h.P50 > h.Max || h.P90 < h.P50 {
		t.Errorf("quantiles out of order: p50=%g p90=%g min=%g max=%g", h.P50, h.P90, h.Min, h.Max)
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	h.Observe(3)
	if s := h.Snapshot(); s.Count != 1 || s.Min != 3 || s.Max != 3 {
		t.Errorf("snapshot after NaN = %+v, want count 1 min/max 3", s)
	}
}

// TestRegistryString checks the expvar.Var rendering is valid JSON.
func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.evals").Add(7)
	r.Gauge("a.best").Set(1.25)
	r.Histogram("a.ms").Observe(2)
	var s Snapshot
	if err := json.Unmarshal([]byte(r.String()), &s); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if s.Counters["a.evals"] != 7 || s.Gauges["a.best"] != 1.25 {
		t.Errorf("round-tripped snapshot = %+v", s)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("optim.de.evals").Add(100)
	r.Gauge("optim.de.best").Set(0.5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter optim.de.evals", "gauge   optim.de.best", "100", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestJournalRoundTrip writes a journal (concurrently, for the race
// detector), reads it back, and verifies sequence numbering and content
// survive the trip.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := j.Append(Record{
					Event: "generation",
					Scope: "optim.test",
					Gen:   i,
					Evals: int64(10 * (i + 1)),
					Best:  1.0 / float64(i+1),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Append(Record{Event: "done", Scope: "optim.test", Evals: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := workers*perWorker + 1; len(recs) != want {
		t.Fatalf("read %d records, want %d", len(recs), want)
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d, want strictly increasing from 1", i, rec.Seq)
		}
		if rec.TMs < 0 {
			t.Fatalf("record %d has negative t_ms %g", i, rec.TMs)
		}
	}
	last := recs[len(recs)-1]
	if last.Event != "done" || last.Evals != 1000 {
		t.Errorf("last record = %+v, want the done record", last)
	}
}

// TestHubRouting drives one of each event kind through a hub and checks the
// metric naming convention and the journal mirror.
func TestHubRouting(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	h := NewHub(nil, j)

	h.Observe(Event{Kind: KindGeneration, Scope: "optim.de", Gen: 3, Evals: 120, Best: 0.25})
	h.Observe(Event{Kind: KindDone, Scope: "optim.de", Evals: 400, Best: 0.125, Value: 12})
	_, end := StartSpan(h, "extract.step1")
	end(42)
	h.Observe(Event{Kind: KindSample, Scope: "probe", Value: 7})

	s := h.Registry().Snapshot()
	if got := s.Gauges["optim.de.gen"]; got != 3 {
		t.Errorf("optim.de.gen = %g, want 3", got)
	}
	if got := s.Gauges["optim.de.best"]; got != 0.125 {
		t.Errorf("optim.de.best = %g, want 0.125 (done overwrites)", got)
	}
	if got := s.Counters["optim.de.evals"]; got != 400 {
		t.Errorf("optim.de.evals = %d, want 400", got)
	}
	if got := s.Counters["optim.de.runs"]; got != 1 {
		t.Errorf("optim.de.runs = %d, want 1", got)
	}
	if got := s.Counters["extract.step1.evals"]; got != 42 {
		t.Errorf("extract.step1.evals = %d, want 42", got)
	}
	if got := s.Counters["extract.step1.count"]; got != 1 {
		t.Errorf("extract.step1.count = %d, want 1", got)
	}
	if got := s.Histograms["probe"].Count; got != 1 {
		t.Errorf("probe histogram count = %d, want 1", got)
	}

	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	for _, r := range recs {
		events = append(events, r.Event)
	}
	want := []string{"generation", "done", "span-begin", "span-end", "sample"}
	if len(events) != len(want) {
		t.Fatalf("journal events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("journal events = %v, want %v", events, want)
		}
	}
}

// TestTally checks the eval accounting forwards events and only counts
// KindDone totals.
func TestTally(t *testing.T) {
	var forwarded int
	tally := NewTally(Func(func(Event) { forwarded++ }))
	tally.Observe(Event{Kind: KindGeneration, Evals: 50})
	tally.Observe(Event{Kind: KindSpanEnd, Evals: 50})
	tally.Observe(Event{Kind: KindDone, Evals: 100})
	tally.Observe(Event{Kind: KindDone, Evals: 25})
	if got := tally.Evals(); got != 125 {
		t.Errorf("tally evals = %d, want 125 (done events only)", got)
	}
	if forwarded != 4 {
		t.Errorf("forwarded %d events, want 4", forwarded)
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should collapse to nil")
	}
	var a, b int
	oa := Func(func(Event) { a++ })
	if got := Multi(nil, oa); got == nil {
		t.Error("Multi with one survivor should collapse to it")
	} else {
		got.Observe(Event{})
		if a != 1 {
			t.Error("collapsed Multi did not forward")
		}
	}
	m := Multi(oa, Func(func(Event) { b++ }))
	m.Observe(Event{Kind: KindSample})
	if a != 2 || b != 1 {
		t.Errorf("fan-out reached a=%d b=%d, want 2/1", a, b)
	}
}

// TestNopZeroAlloc proves an enabled-but-discarding observer costs no
// allocations per event — the property that lets instrumentation stay in
// hot loops.
func TestNopZeroAlloc(t *testing.T) {
	o := OrNop(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		o.Observe(Event{Kind: KindGeneration, Scope: "optim.de", Gen: 1, Evals: 10, Best: 0.5})
	})
	if allocs != 0 {
		t.Errorf("Nop observer allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		_, end := StartSpan(nil, "x")
		end(1)
	})
	if allocs != 0 {
		t.Errorf("nil-observer span allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkNopObserve(b *testing.B) {
	b.ReportAllocs()
	o := Nop
	for i := 0; i < b.N; i++ {
		o.Observe(Event{Kind: KindGeneration, Scope: "optim.de", Gen: i, Evals: int64(i), Best: 1})
	}
}

func BenchmarkHubGeneration(b *testing.B) {
	b.ReportAllocs()
	h := NewHub(nil, nil)
	for i := 0; i < b.N; i++ {
		h.Observe(Event{Kind: KindGeneration, Scope: "optim.de", Gen: i, Evals: int64(i), Best: 1})
	}
}
