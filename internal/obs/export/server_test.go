package export

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

func TestBroadcasterFanOutAndDrop(t *testing.T) {
	b := NewBroadcaster()
	ch1, cancel1 := b.Subscribe()
	ch2, cancel2 := b.Subscribe()
	defer cancel2()
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("subscribers = %d, want 2", n)
	}
	b.Observe(obs.Event{Kind: obs.KindGeneration, Scope: "s", Gen: 1})
	for _, ch := range []<-chan obs.Event{ch1, ch2} {
		e := <-ch
		if e.Kind != obs.KindGeneration || e.Gen != 1 {
			t.Fatalf("event = %+v", e)
		}
	}
	cancel1()
	if _, ok := <-ch1; ok {
		t.Fatal("canceled subscriber channel not closed")
	}

	// Overfill the remaining subscriber: events past its buffer drop
	// instead of blocking the emitter.
	for i := 0; i < subBuffer+10; i++ {
		b.Observe(obs.Event{Kind: obs.KindSample, Scope: "x", Value: float64(i)})
	}
	if d := b.Dropped(); d != 10 {
		t.Fatalf("dropped = %d, want 10", d)
	}

	b.Close()
	b.Close() // idempotent
	ch3, cancel3 := b.Subscribe()
	defer cancel3()
	if _, ok := <-ch3; ok {
		t.Fatal("post-close Subscribe returned an open channel")
	}
}

func startServer(t *testing.T, o Options) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("run.evals").Add(7)
	reg.Histogram("run.ms").Observe(3)
	s := startServer(t, Options{Registry: reg})
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, `gnsslna_run_evals_total{name="run.evals"} 7`) {
		t.Errorf("metrics body missing counter:\n%s", body)
	}
	if !strings.Contains(body, `gnsslna_run_ms_bucket{name="run.ms",le="+Inf"} 1`) {
		t.Errorf("metrics body missing histogram:\n%s", body)
	}
}

func TestServerHealthz(t *testing.T) {
	ctrl := resilience.NewController(resilience.ControllerOptions{MaxEvals: 5})
	s := startServer(t, Options{Health: ctrl.Health})
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("healthy: status %d body %s", code, body)
	}
	ctrl.AddEvals(5)
	code, body = get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stopped status = %d, want 503 (body %s)", code, body)
	}
	var h resilience.HealthState
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.OK || h.Reason != "eval-budget" || h.Evals != 5 {
		t.Fatalf("health = %+v, want stopped eval-budget with 5 evals", h)
	}
}

func TestServerRunsListing(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "b.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.jsonl"), []byte("{}\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Options{RunsDir: dir})
	code, body := get(t, "http://"+s.Addr()+"/runs")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var runs []RunInfo
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("runs JSON: %v (%s)", err, body)
	}
	if len(runs) != 2 || runs[0].Name != "a.jsonl" || runs[1].Name != "b.jsonl" {
		t.Fatalf("runs = %+v, want a.jsonl then b.jsonl", runs)
	}
	if runs[0].Bytes != 6 || runs[0].Modified == "" {
		t.Fatalf("run info incomplete: %+v", runs[0])
	}
}

// sseClient reads one SSE event (event: + data: lines) from the stream.
func readSSE(t *testing.T, r *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			return event, data
		}
	}
}

func TestServerEventsStreamAndGracefulShutdown(t *testing.T) {
	bc := NewBroadcaster()
	s := startServer(t, Options{Broadcast: bc})

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// The subscription races the handler goroutine; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for bc.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	bc.Observe(obs.Event{Kind: obs.KindGeneration, Scope: "design.attain", Gen: 3, Evals: 120, Best: -0.5})

	br := bufio.NewReader(resp.Body)
	event, data := readSSE(t, br)
	if event != "generation" {
		t.Fatalf("event = %q, want generation", event)
	}
	var e eventJSON
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		t.Fatalf("event data %q: %v", data, err)
	}
	if e.Scope != "design.attain" || e.Gen != 3 || e.Evals != 120 || e.Best != -0.5 {
		t.Fatalf("event = %+v", e)
	}

	// Graceful shutdown drains the SSE stream: the body reaches EOF
	// rather than hanging, and Shutdown returns without force-closing.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("draining body after shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestServerEventsDisabled(t *testing.T) {
	s := startServer(t, Options{})
	code, _ := get(t, "http://"+s.Addr()+"/events")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", code)
	}
}
