package export

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary for dashboards and bug reports:
// the module version, the VCS commit it was built from, and the Go
// toolchain. Unknown fields report "unknown" rather than emptying the label.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Commit is the vcs.revision build setting, when stamped.
	Commit string `json:"commit"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuildInfo extracts the binary's build identity from the runtime's
// embedded build information. The result is cached: the information cannot
// change while the process runs.
func ReadBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", Commit: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				buildInfo.Commit = s.Value
			}
		}
	})
	return buildInfo
}

// WriteBuildInfoProm appends the conventional build-info gauge — constant 1,
// identity in the labels — to a Prometheus exposition:
//
//	gnsslna_build_info{version="(devel)",commit="abc123",goversion="go1.22.1"} 1
//
// The registry's own writer cannot produce it (registry metrics carry only a
// name label), so the /metrics handler emits this family separately.
func WriteBuildInfoProm(w io.Writer, namespace string, bi BuildInfo) error {
	if namespace == "" {
		namespace = DefaultNamespace
	}
	fam := namespace + "_build_info"
	if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, `%s{version="%s",commit="%s",goversion="%s"} 1`+"\n",
		fam, EscapeLabel(bi.Version), EscapeLabel(bi.Commit), EscapeLabel(bi.GoVersion))
	return err
}
