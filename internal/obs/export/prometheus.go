// Package export is the read/serve side of the observability stack: it
// renders the obs metrics registry in Prometheus text exposition format and
// embeds a small HTTP server exposing /metrics, /healthz, /runs, a live
// /events SSE stream and /debug/pprof — the endpoints behind the CLIs'
// -serve flag.
package export

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gnsslna/internal/obs"
)

// DefaultNamespace prefixes every exposed metric family.
const DefaultNamespace = "gnsslna"

// SanitizeName lowers an internal dotted metric name ("design.attain.de.ms")
// to a legal Prometheus metric-name fragment: every rune outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_' prefix. The
// empty name becomes "_".
func SanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// EscapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote and newline become \\, \" and \n.
func EscapeLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value; Prometheus spells non-finite values
// NaN, +Inf and -Inf.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series is one labeled series within a family: its sample lines stay in
// emission order (histogram buckets must keep increasing le), while series
// within a family sort by the registry name carried in the name label.
type series struct {
	key   string
	lines []string
}

// family is one exposition family: a TYPE header plus its series, keyed and
// sorted by the sanitized family name.
type family struct {
	name   string
	typ    string
	series []series
}

// WritePrometheus renders every metric in the registry in Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families are
// sorted by exposed name and series within a family by their name label.
//
// Naming: a registry metric "design.attain.de.evals" becomes the family
// <namespace>_design_attain_de_evals (counters gain the conventional _total
// suffix) and keeps its exact registry name in the name="..." label, escaped
// per the text format. Two registry names that sanitize identically (e.g.
// "a.b" and "a_b") legally share a family, distinguished by the name label;
// a histogram whose family would collide with a gauge family gains a _hist
// suffix so no family is typed twice.
//
// Histogram buckets come from obs.Histogram.Cumulative, so the le bounds are
// cumulative and the +Inf bucket equals the sample count, as the format
// requires.
func WritePrometheus(w io.Writer, reg *obs.Registry, namespace string) error {
	if reg == nil {
		return nil
	}
	if namespace == "" {
		namespace = DefaultNamespace
	}
	s := reg.Snapshot()

	fams := map[string]*family{}
	get := func(name, typ string) *family {
		f := fams[name]
		if f == nil {
			f = &family{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	gaugeFams := map[string]bool{}
	for name := range s.Gauges {
		gaugeFams[namespace+"_"+SanitizeName(name)] = true
	}

	for name, v := range s.Counters {
		fam := namespace + "_" + SanitizeName(name) + "_total"
		f := get(fam, "counter")
		f.series = append(f.series, series{key: name, lines: []string{
			fmt.Sprintf(`%s{name="%s"} %d`, fam, EscapeLabel(name), v),
		}})
	}
	for name, v := range s.Gauges {
		fam := namespace + "_" + SanitizeName(name)
		f := get(fam, "gauge")
		f.series = append(f.series, series{key: name, lines: []string{
			fmt.Sprintf(`%s{name="%s"} %s`, fam, EscapeLabel(name), formatValue(v)),
		}})
	}
	for name := range s.Histograms {
		fam := namespace + "_" + SanitizeName(name)
		if gaugeFams[fam] {
			fam += "_hist"
		}
		f := get(fam, "histogram")
		h := s.Histograms[name]
		label := EscapeLabel(name)
		se := series{key: name}
		for _, b := range reg.Histogram(name).Cumulative() {
			se.lines = append(se.lines,
				fmt.Sprintf(`%s_bucket{name="%s",le="%s"} %d`, fam, label, formatValue(b.Le), b.Count))
		}
		se.lines = append(se.lines,
			fmt.Sprintf(`%s_sum{name="%s"} %s`, fam, label, formatValue(h.Sum)),
			fmt.Sprintf(`%s_count{name="%s"} %d`, fam, label, h.Count))
		f.series = append(f.series, se)
	}

	// Every histogram additionally exposes a gauge-typed _quantile family
	// with estimated p50/p90/p95/p99 — the SLO dashboards' latency families.
	// An empty histogram reports NaN (the format's spelling of "no data"),
	// never a misleading zero. In the rare case the _quantile name lands on a
	// family of another type (a registry histogram literally named
	// "*_quantile"), the quantile family yields with a _gauge suffix.
	for name := range s.Histograms {
		fam := namespace + "_" + SanitizeName(name)
		if gaugeFams[fam] {
			fam += "_hist"
		}
		qfam := fam + "_quantile"
		if f := fams[qfam]; f != nil && f.typ != "gauge" {
			qfam += "_gauge"
		}
		f := get(qfam, "gauge")
		h := reg.Histogram(name)
		label := EscapeLabel(name)
		se := series{key: name}
		for _, q := range [...]float64{0.5, 0.9, 0.95, 0.99} {
			se.lines = append(se.lines,
				fmt.Sprintf(`%s{name="%s",quantile="%s"} %s`,
					qfam, label, formatValue(q), formatValue(h.Quantile(q))))
		}
		f.series = append(f.series, se)
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, se := range f.series {
			for _, l := range se.lines {
				if _, err := fmt.Fprintln(w, l); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
