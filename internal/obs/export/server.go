package export

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// Options configures the telemetry handler and server.
type Options struct {
	// Registry backs /metrics (nil: endpoint serves an empty exposition).
	Registry *obs.Registry
	// Namespace prefixes metric families ("" uses DefaultNamespace).
	Namespace string
	// Broadcast feeds the /events SSE stream (nil: the endpoint reports
	// 503, events unavailable).
	Broadcast *Broadcaster
	// Health backs /healthz; nil reports a healthy, unbounded run. The
	// obscli session wires the run controller's Health method in here.
	Health func() resilience.HealthState
	// RunsDir is the directory /runs lists *.jsonl journals from
	// ("" uses the current directory).
	RunsDir string
}

// eventJSON is the SSE data payload, mirroring the public ProgressEvent.
type eventJSON struct {
	Event  string  `json:"event"`
	Scope  string  `json:"scope,omitempty"`
	Gen    int     `json:"gen"`
	Evals  int64   `json:"evals"`
	Best   float64 `json:"best"`
	Value  float64 `json:"value"`
	Trace  uint64  `json:"trace,omitempty"`
	Span   uint64  `json:"span,omitempty"`
	Parent uint64  `json:"parent,omitempty"`
	Worker int     `json:"worker,omitempty"`
}

// RunInfo is one /runs listing entry.
type RunInfo struct {
	// Name is the journal file name within the runs directory.
	Name string `json:"name"`
	// Bytes is the current file size.
	Bytes int64 `json:"bytes"`
	// Modified is the file's last-modified time, RFC 3339.
	Modified string `json:"modified"`
}

// NewHandler builds the telemetry mux: /metrics (Prometheus text format),
// /healthz (run-controller state as JSON), /runs (journal listing as JSON),
// /events (live SSE event stream) and /debug/pprof.
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteBuildInfoProm(w, o.Namespace, ReadBuildInfo())
		_ = WritePrometheus(w, o.Registry, o.Namespace)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := resilience.HealthState{OK: true}
		if o.Health != nil {
			h = o.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			// The process still serves, but the run has been stopped:
			// surface that to orchestration probes.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			resilience.HealthState
			Build BuildInfo `json:"build"`
		}{h, ReadBuildInfo()})
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		runs, err := listRuns(o.RunsDir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(runs)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, r, o.Broadcast)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// listRuns enumerates the *.jsonl journals under dir, sorted by name.
func listRuns(dir string) ([]RunInfo, error) {
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	runs := make([]RunInfo, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		runs = append(runs, RunInfo{
			Name:     e.Name(),
			Bytes:    info.Size(),
			Modified: info.ModTime().UTC().Format(time.RFC3339),
		})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Name < runs[j].Name })
	return runs, nil
}

// serveEvents streams broadcaster events as server-sent events until the
// client disconnects or the broadcaster closes (server shutdown).
func serveEvents(w http.ResponseWriter, r *http.Request, b *Broadcaster) {
	if b == nil {
		http.Error(w, "event stream disabled", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := b.Subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write([]byte("event: " + e.Kind.String() + "\ndata: ")); err != nil {
				return
			}
			if err := enc.Encode(eventJSON{
				Event: e.Kind.String(), Scope: e.Scope, Gen: e.Gen,
				Evals: e.Evals, Best: e.Best, Value: e.Value,
				Trace: uint64(e.Trace), Span: uint64(e.Span),
				Parent: uint64(e.Parent), Worker: e.Worker,
			}); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// Server is a running telemetry endpoint bound to a listener.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	bc   *Broadcaster
	once sync.Once
	err  error
}

// Serve binds addr (host:port; port 0 picks a free port) and serves the
// telemetry handler on it until Shutdown.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{Handler: NewHandler(o)},
		ln:  ln,
		bc:  o.Broadcast,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (the resolved port for ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains the server gracefully: the broadcaster is closed first so
// every SSE stream ends, then the listener closes and in-flight requests
// finish (bounded by ctx). Shutdown is idempotent; later calls return the
// first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.once.Do(func() {
		if s.bc != nil {
			s.bc.Close()
		}
		s.err = s.srv.Shutdown(ctx)
	})
	return s.err
}
