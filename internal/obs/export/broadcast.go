package export

import (
	"sync"

	"gnsslna/internal/obs"
)

// subBuffer is each subscriber's channel capacity; a subscriber that falls
// further behind than this loses events rather than stalling the emitting
// optimizer loop.
const subBuffer = 256

// Broadcaster is an obs.Observer that fans events out to any number of
// subscribers (the SSE handlers). Sends never block: a full subscriber
// buffer drops the event and counts it, so instrumented hot loops pay at
// most a mutex and a channel send per event.
type Broadcaster struct {
	mu      sync.Mutex
	subs    map[chan obs.Event]struct{}
	closed  bool
	dropped int64
	dropCtr *obs.Counter
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[chan obs.Event]struct{})}
}

// Observe implements obs.Observer.
func (b *Broadcaster) Observe(e obs.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for ch := range b.subs {
		select {
		case ch <- e:
		default:
			b.dropped++
			if b.dropCtr != nil {
				b.dropCtr.Inc()
			}
		}
	}
}

// CountDrops mirrors every slow-subscriber discard into c (typically the
// registry counter behind gnsslna_sse_dropped_total), making the loss
// visible on /metrics instead of silently degrading the SSE stream.
func (b *Broadcaster) CountDrops(c *obs.Counter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropCtr = c
}

// Subscribe registers a new subscriber and returns its event channel plus a
// cancel function. The channel is closed by cancel or by Close; after Close,
// Subscribe returns an already-closed channel so late subscribers terminate
// immediately.
func (b *Broadcaster) Subscribe() (<-chan obs.Event, func()) {
	ch := make(chan obs.Event, subBuffer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() { b.unsubscribe(ch) }
}

func (b *Broadcaster) unsubscribe(ch chan obs.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
}

// Subscribers reports the current subscriber count.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped reports how many events were lost to slow subscribers.
func (b *Broadcaster) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close drains the broadcaster: every subscriber channel is closed (ending
// its SSE stream) and later events are discarded. Close is idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}
