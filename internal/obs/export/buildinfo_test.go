package export

import (
	"bytes"
	"strings"
	"testing"

	"gnsslna/internal/obs"
)

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" || !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("go version = %q", bi.GoVersion)
	}
	if bi.Version == "" || bi.Commit == "" {
		t.Errorf("build identity has empty fields: %+v", bi)
	}
	if again := ReadBuildInfo(); again != bi {
		t.Error("ReadBuildInfo not stable across calls")
	}
}

func TestWriteBuildInfoProm(t *testing.T) {
	var buf bytes.Buffer
	bi := BuildInfo{Version: "v1.2.3", Commit: "abc\"def", GoVersion: "go1.22.1"}
	if err := WriteBuildInfoProm(&buf, "", bi); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gnsslna_build_info gauge",
		`version="v1.2.3"`,
		`commit="abc\"def"`, // label escaping
		`goversion="go1.22.1"`,
		"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestBroadcasterSlowClientDrops pins the satellite fix: a subscriber that
// stops reading loses events without blocking the emitter, and every loss is
// counted both on the broadcaster and in the attached registry counter (the
// gnsslna_sse_dropped_total family) instead of disappearing silently.
func TestBroadcasterSlowClientDrops(t *testing.T) {
	b := NewBroadcaster()
	reg := obs.NewRegistry()
	b.CountDrops(reg.Counter("sse.dropped"))

	ch, cancel := b.Subscribe()
	defer cancel()

	const extra = 37
	for i := 0; i < subBuffer+extra; i++ {
		b.Observe(obs.Event{Kind: obs.KindGeneration, Gen: i})
	}
	if got := b.Dropped(); got != extra {
		t.Errorf("broadcaster dropped %d, want %d", got, extra)
	}
	if got := reg.Counter("sse.dropped").Value(); got != extra {
		t.Errorf("registry sse.dropped = %d, want %d", got, extra)
	}
	// The buffered prefix is intact for the slow client: drops discard the
	// newest events, never corrupt the queued ones.
	first := <-ch
	if first.Gen != 0 {
		t.Errorf("first buffered event gen = %d, want 0", first.Gen)
	}
	// Once the client drains a slot, delivery resumes.
	b.Observe(obs.Event{Kind: obs.KindSample, Scope: "after-drain"})
	for i := 0; i < subBuffer; i++ {
		if e := <-ch; e.Scope == "after-drain" {
			return
		}
	}
	t.Error("event after drain never delivered")
}
