package export

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"gnsslna/internal/obs"
)

func render(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheus(&b, reg, ""); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"design.attain.de.ms", "design_attain_de_ms"},
		{"already_legal:name", "already_legal:name"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"sp ace-dash/slash", "sp_ace_dash_slash"},
		{"", "_"},
		{"ünïcode", "_n_code"},
	}
	for _, c := range cases {
		if got := SanitizeName(c.in); got != c.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := EscapeLabel(in); got != want {
		t.Fatalf("EscapeLabel = %q, want %q", got, want)
	}
}

func TestWritePrometheusCounterAndGauge(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("design.attain.evals").Add(42)
	reg.Gauge("design.attain.best").Set(-0.125)
	out := render(t, reg)

	for _, want := range []string{
		"# TYPE gnsslna_design_attain_evals_total counter\n",
		`gnsslna_design_attain_evals_total{name="design.attain.evals"} 42` + "\n",
		"# TYPE gnsslna_design_attain_best gauge\n",
		`gnsslna_design_attain_best{name="design.attain.best"} -0.125` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Non-finite gauge values must render with Prometheus's exact spellings.
func TestWritePrometheusNonFiniteGauges(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g.nan").Set(math.NaN())
	reg.Gauge("g.posinf").Set(math.Inf(1))
	reg.Gauge("g.neginf").Set(math.Inf(-1))
	out := render(t, reg)
	for _, want := range []string{
		`gnsslna_g_nan{name="g.nan"} NaN`,
		`gnsslna_g_posinf{name="g.posinf"} +Inf`,
		`gnsslna_g_neginf{name="g.neginf"} -Inf`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// An empty histogram still exposes its full bucket grid with zero counts,
// a zero sum and a zero count, ending in the +Inf bucket.
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("empty.ms")
	out := render(t, reg)
	if !strings.Contains(out, "# TYPE gnsslna_empty_ms histogram\n") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `gnsslna_empty_ms_bucket{name="empty.ms",le="+Inf"} 0`+"\n") {
		t.Errorf("missing zero +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `gnsslna_empty_ms_sum{name="empty.ms"} 0`+"\n") ||
		!strings.Contains(out, `gnsslna_empty_ms_count{name="empty.ms"} 0`+"\n") {
		t.Errorf("missing zero sum/count:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gnsslna_empty_ms_bucket") && !strings.HasSuffix(line, " 0") {
			t.Errorf("empty histogram has non-zero bucket: %s", line)
		}
	}
}

// parseHistogram pulls the bucket counts (in emission order), the final
// +Inf count and the _count value for one histogram family out of the text.
func parseHistogram(t *testing.T, out, fam string) (buckets []int64, inf, count int64) {
	t.Helper()
	inf, count = -1, -1
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, fam+"_bucket{"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, n)
			if strings.Contains(line, `le="+Inf"`) {
				inf = n
			}
		case strings.HasPrefix(line, fam+"_count{"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = n
		}
	}
	return buckets, inf, count
}

// Histogram buckets must be cumulative and ordered: non-decreasing counts,
// +Inf bucket equal to the total count.
func TestWritePrometheusHistogramCumulative(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("span.ms")
	for _, v := range []float64{0.5, 0.6, 3, 100, 1e9} {
		h.Observe(v)
	}
	out := render(t, reg)
	buckets, inf, count := parseHistogram(t, out, "gnsslna_span_ms")
	if len(buckets) == 0 {
		t.Fatalf("no bucket lines:\n%s", out)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("bucket %d count %d < previous %d: not cumulative", i, buckets[i], buckets[i-1])
		}
	}
	if inf != 5 || count != 5 {
		t.Fatalf("+Inf bucket = %d, _count = %d, want both 5", inf, count)
	}
	if buckets[0] != 0 {
		t.Fatalf("first bucket = %d, want 0 (all samples >= 0.5)", buckets[0])
	}
}

// Registry names that collide after sanitization legally share one family
// (one TYPE line, two series told apart by the name label); a histogram
// whose family would collide with a gauge gains the _hist suffix so no
// family is declared with two types.
func TestWritePrometheusCollisions(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Counter("a_b").Add(2)
	reg.Gauge("mixed").Set(1)
	reg.Histogram("mixed").Observe(1)
	out := render(t, reg)

	if got := strings.Count(out, "# TYPE gnsslna_a_b_total counter\n"); got != 1 {
		t.Errorf("counter family declared %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `gnsslna_a_b_total{name="a.b"} 1`+"\n") ||
		!strings.Contains(out, `gnsslna_a_b_total{name="a_b"} 2`+"\n") {
		t.Errorf("collided counters missing distinct series:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE gnsslna_mixed gauge\n") ||
		!strings.Contains(out, "# TYPE gnsslna_mixed_hist histogram\n") {
		t.Errorf("gauge/histogram name collision not disambiguated:\n%s", out)
	}
}

// Label values keep the exact registry name, escaped per the text format.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("weird\"name\\with\nstuff").Inc()
	out := render(t, reg)
	want := `{name="weird\"name\\with\nstuff"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("output missing escaped label %q:\n%s", want, out)
	}
}

// Rendering the same registry twice yields byte-identical output, and every
// registry metric appears exactly once as a family.
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.mid", "m.mid2", "b.c", "q.r"} {
		reg.Counter(n).Inc()
		reg.Gauge(n + ".g").Set(1)
		reg.Histogram(n + ".ms").Observe(2)
	}
	first := render(t, reg)
	for i := 0; i < 5; i++ {
		if got := render(t, reg); got != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Families are sorted.
	var fams []string
	for _, line := range strings.Split(first, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i] < fams[i-1] {
			t.Fatalf("families out of order: %q after %q", fams[i], fams[i-1])
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil, ""); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q, want empty success", err, b.String())
	}
}

// Every histogram exposes a companion gauge-typed _quantile family carrying
// the estimated p50/p90/p95/p99, pinned line-for-line here so the exposition
// shape the SLO dashboards scrape cannot drift silently.
func TestWritePrometheusQuantileFamily(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("lat.ms").Observe(7)
	out := render(t, reg)

	// A single observation pins every quantile to the observed value exactly
	// (the estimator clamps its bucket midpoint into [min, max]).
	want := "# TYPE gnsslna_lat_ms_quantile gauge\n" +
		"gnsslna_lat_ms_quantile{name=\"lat.ms\",quantile=\"0.5\"} 7\n" +
		"gnsslna_lat_ms_quantile{name=\"lat.ms\",quantile=\"0.9\"} 7\n" +
		"gnsslna_lat_ms_quantile{name=\"lat.ms\",quantile=\"0.95\"} 7\n" +
		"gnsslna_lat_ms_quantile{name=\"lat.ms\",quantile=\"0.99\"} 7\n"
	if !strings.Contains(out, want) {
		t.Fatalf("output missing pinned quantile block:\n%s\nwant:\n%s", out, want)
	}
}

// An empty histogram reports NaN quantiles — the format's "no data" — never
// a misleading zero.
func TestWritePrometheusQuantileEmptyHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("empty.ms")
	out := render(t, reg)
	for _, q := range []string{"0.5", "0.9", "0.95", "0.99"} {
		want := `gnsslna_empty_ms_quantile{name="empty.ms",quantile="` + q + `"} NaN`
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Quantile estimates are monotonic in q and bracketed by the observed range.
func TestWritePrometheusQuantileOrdering(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("spread.ms")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	out := render(t, reg)
	var got []float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gnsslna_spread_ms_quantile{") {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad quantile line %q: %v", line, err)
			}
			got = append(got, v)
		}
	}
	if len(got) != 4 {
		t.Fatalf("got %d quantile lines, want 4:\n%s", len(got), out)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("quantiles not monotonic: %v", got)
		}
	}
	if got[0] < 1 || got[3] > 1000 {
		t.Fatalf("quantiles outside observed range [1,1000]: %v", got)
	}
}

// A histogram whose family collides with a gauge carries its quantiles under
// the _hist_quantile name, mirroring the histogram family's own suffix.
func TestWritePrometheusQuantileCollision(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("mixed").Set(1)
	reg.Histogram("mixed").Observe(4)
	out := render(t, reg)
	if !strings.Contains(out, "# TYPE gnsslna_mixed_hist_quantile gauge\n") {
		t.Fatalf("collided histogram's quantile family missing:\n%s", out)
	}
	if !strings.Contains(out, `gnsslna_mixed_hist_quantile{name="mixed",quantile="0.99"} 4`+"\n") {
		t.Fatalf("collided quantile series missing:\n%s", out)
	}
}
