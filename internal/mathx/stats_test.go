package mathx

import (
	"math"
	"testing"
)

func TestMeanStdDevRMS(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !Close(got, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", got)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if got := StdDev(xs); !Close(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, math.Sqrt(32.0/7.0))
	}
	if got := RMS([]float64{3, 4}); !Close(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %g", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || RMS(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4}
	if got := Median(xs); !Close(got, 3, 1e-12) {
		t.Errorf("Median = %g, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %g, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %g, want 5", got)
	}
	if got := Percentile(xs, 25); !Close(got, 2, 1e-12) {
		t.Errorf("P25 = %g, want 2", got)
	}
}

func TestMinMaxClamp(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-5, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestLinspaceLogspace(t *testing.T) {
	ls := Linspace(1, 2, 5)
	want := []float64{1, 1.25, 1.5, 1.75, 2}
	for i := range want {
		if !Close(ls[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %g, want %g", i, ls[i], want[i])
		}
	}
	lg := Logspace(1, 1000, 4)
	wantLg := []float64{1, 10, 100, 1000}
	for i := range wantLg {
		if !CloseRel(lg[i], wantLg[i], 1e-12) {
			t.Errorf("Logspace[%d] = %g, want %g", i, lg[i], wantLg[i])
		}
	}
}

func TestDBHelpers(t *testing.T) {
	if !Close(DB10(100), 20, 1e-12) || !Close(DB20(10), 20, 1e-12) {
		t.Error("DB conversion wrong")
	}
	if !Close(FromDB10(30), 1000, 1e-9) || !Close(FromDB20(6.0205999), 2, 1e-6) {
		t.Error("FromDB conversion wrong")
	}
	if !Close(WattsToDBm(0.001), 0, 1e-12) {
		t.Error("1 mW must be 0 dBm")
	}
	if !Close(DBmToWatts(30), 1, 1e-12) {
		t.Error("30 dBm must be 1 W")
	}
	if !Close(NFToTemp(2), 290, 1e-9) || !Close(TempToNF(290), 2, 1e-12) {
		t.Error("noise temperature conversion wrong")
	}
}
