package mathx

import (
	"math"
	"math/cmplx"
)

// Goertzel computes the single-bin DFT of the real-valued samples x at the
// (possibly fractional) bin k = f/fs * N, returning the complex spectral
// amplitude normalized so that a pure tone A*cos(2*pi*f*t + phi) sampled
// coherently yields magnitude A.
func Goertzel(x []float64, freq, sampleRate float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * freq / sampleRate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Standard Goertzel finalization yields the DFT bin value; normalize to
	// single-tone amplitude (x2/N accounts for the split between +f and -f).
	re := s1 - s2*math.Cos(w)
	im := s2 * math.Sin(w)
	return complex(re, im) * complex(2/float64(n), 0)
}

// ToneAmplitude returns the amplitude of the tone at freq in the coherently
// sampled real signal x.
func ToneAmplitude(x []float64, freq, sampleRate float64) float64 {
	return cmplx.Abs(Goertzel(x, freq, sampleRate))
}

// CoherentSampling picks a sample rate and sample count such that every
// frequency in freqs completes an integer number of cycles in the record,
// which makes Goertzel bins leakage-free. All freqs must be integer multiples
// of resolution. It returns the sample rate fs = oversample * maxFreq rounded
// to a multiple of resolution, and the record length N = fs / resolution.
func CoherentSampling(freqs []float64, resolution float64, oversample int) (sampleRate float64, n int) {
	var fmax float64
	for _, f := range freqs {
		if f > fmax {
			fmax = f
		}
	}
	fs := float64(oversample) * fmax
	cycles := math.Ceil(fs / resolution)
	fs = cycles * resolution
	return fs, int(cycles)
}
