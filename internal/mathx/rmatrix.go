package mathx

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-initialized rows x cols real matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices of equal length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mathx: MatrixFromRows requires at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mathx: MatrixFromRows rows have unequal lengths")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of src, letting hot loops reuse a
// preallocated matrix instead of cloning. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mathx: CopyFrom shape mismatch %dx%d vs %dx%d",
			m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m * n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mathx: Matrix.Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.data[i*n.cols+j] += a * n.data[k*n.cols+j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic("mathx: Matrix.MulVec dimension mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// SolveR solves the dense real linear system A x = b using LU with partial
// pivoting. A and b are not modified.
func SolveR(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mathx: SolveR requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("mathx: SolveR rhs length %d does not match matrix order %d", len(b), n)
	}
	lu := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		p, pm := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if m := math.Abs(lu.At(r, col)); m > pm {
				p, pm = r, m
			}
		}
		if pm == 0 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[col*n+j] = lu.data[col*n+j], lu.data[p*n+j]
			}
			x[p], x[col] = x[col], x[p]
		}
		pivot := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / pivot
			if f == 0 {
				continue
			}
			x[r] -= f * x[col]
			for j := col; j < n; j++ {
				lu.data[r*n+j] -= f * lu.data[col*n+j]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= lu.data[i*n+j] * x[j]
		}
		x[i] /= lu.data[i*n+i]
	}
	return x, nil
}

// LeastSquares solves the overdetermined system A x ~= b in the least-squares
// sense via column-equilibrated normal equations with a tiny Tikhonov
// regularization for numerical robustness. A must have at least as many rows
// as columns.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.rows < a.cols {
		return nil, fmt.Errorf("mathx: LeastSquares requires rows >= cols, got %dx%d", a.rows, a.cols)
	}
	if len(b) != a.rows {
		return nil, fmt.Errorf("mathx: LeastSquares rhs length %d does not match row count %d", len(b), a.rows)
	}
	// Equilibrate: scale each column to unit 2-norm. This tames the squared
	// condition number of the normal equations for fits mixing very
	// different magnitudes (e.g. Lane's noise-parameter regression).
	scaled := a.Clone()
	scale := make([]float64, a.cols)
	for j := 0; j < a.cols; j++ {
		var n2 float64
		for i := 0; i < a.rows; i++ {
			v := a.At(i, j)
			n2 += v * v
		}
		s := math.Sqrt(n2)
		if s == 0 {
			s = 1
		}
		scale[j] = s
		for i := 0; i < a.rows; i++ {
			scaled.Set(i, j, a.At(i, j)/s)
		}
	}
	at := scaled.Transpose()
	ata := at.Mul(scaled)
	// Scale-aware ridge term keeps near-rank-deficient fits stable.
	var trace float64
	for i := 0; i < ata.rows; i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-14 * trace / float64(ata.rows)
	for i := 0; i < ata.rows; i++ {
		ata.Add(i, i, ridge)
	}
	x, err := SolveR(ata, at.MulVec(b))
	if err != nil {
		return nil, err
	}
	for j := range x {
		x[j] /= scale[j]
	}
	return x, nil
}
