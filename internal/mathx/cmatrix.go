package mathx

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("mathx: matrix is singular to working precision")

// CMatrix is a dense, row-major matrix of complex128 values.
type CMatrix struct {
	rows, cols int
	data       []complex128
}

// NewCMatrix returns a zero-initialized rows x cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid complex matrix dimensions %dx%d", rows, cols))
	}
	return &CMatrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// CMatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func CMatrixFromRows(rows [][]complex128) *CMatrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mathx: CMatrixFromRows requires at least one non-empty row")
	}
	m := NewCMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mathx: CMatrixFromRows rows have unequal lengths")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// CIdentity returns the n x n identity matrix.
func CIdentity(n int) *CMatrix {
	m := NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *CMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CMatrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.data[i*m.cols+j] = v }

// Add accumulates v into the element at row i, column j. It is the stamping
// primitive used by the MNA assembler.
func (m *CMatrix) Add(i, j int, v complex128) { m.data[i*m.cols+j] += v }

// Zero resets every element to zero, retaining the backing storage.
func (m *CMatrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy of the matrix.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Mul returns the matrix product m * n.
func (m *CMatrix) Mul(n *CMatrix) *CMatrix {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mathx: CMatrix.Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewCMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.data[i*n.cols+j] += a * n.data[k*n.cols+j]
			}
		}
	}
	return out
}

// ConjTranspose returns the Hermitian transpose of m.
func (m *CMatrix) ConjTranspose() *CMatrix {
	out := NewCMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *CMatrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .4e%+.4ei ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CLU is an LU factorization with partial pivoting of a square complex
// matrix, suitable for repeated solves against different right-hand sides.
type CLU struct {
	lu   *CMatrix
	piv  []int
	sign int
}

// LUFactorize computes the LU factorization of a square matrix with partial
// pivoting. The input matrix is not modified.
func LUFactorize(a *CMatrix) (*CLU, error) {
	f := &CLU{}
	if err := f.Factorize(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factorize recomputes the factorization for a new matrix, reusing the
// receiver's working storage when the order matches. The input matrix is
// not modified. It is the workspace variant of LUFactorize for per-frequency
// solver loops that refactor matrices of a fixed order.
func (f *CLU) Factorize(a *CMatrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("mathx: LUFactorize requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := f.lu
	if lu == nil || lu.rows != n || lu.cols != n {
		lu = NewCMatrix(n, n)
		f.piv = make([]int, n)
	}
	copy(lu.data, a.data)
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest magnitude element in this column.
		p, pm := col, cmplx.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if m := cmplx.Abs(lu.At(r, col)); m > pm {
				p, pm = r, m
			}
		}
		if pm == 0 {
			return ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[col*n+j] = lu.data[col*n+j], lu.data[p*n+j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		pivot := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			fac := lu.At(r, col) / pivot
			lu.Set(r, col, fac)
			if fac == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.data[r*n+j] -= fac * lu.data[col*n+j]
			}
		}
	}
	f.lu, f.piv, f.sign = lu, piv, sign
	return nil
}

// Solve solves A x = b for x given the factorization of A. b is unmodified.
func (f *CLU) Solve(b []complex128) ([]complex128, error) {
	x := make([]complex128, f.lu.rows)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A x = b into the caller-provided x (len n). b is
// unmodified; x and b must not alias.
func (f *CLU) SolveInto(x, b []complex128) error {
	n := f.lu.rows
	if len(b) != n {
		return fmt.Errorf("mathx: CLU.Solve rhs length %d does not match matrix order %d", len(b), n)
	}
	if len(x) != n {
		return fmt.Errorf("mathx: CLU.Solve solution length %d does not match matrix order %d", len(x), n)
	}
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.data[i*n+j] * x[j]
		}
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.data[i*n+j] * x[j]
		}
		x[i] /= f.lu.data[i*n+i]
	}
	return nil
}

// Det returns the determinant of the factorized matrix.
func (f *CLU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveC solves the dense complex linear system A x = b.
func SolveC(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := LUFactorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// InverseC returns the inverse of a square complex matrix.
func InverseC(a *CMatrix) (*CMatrix, error) {
	f, err := LUFactorize(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := NewCMatrix(n, n)
	e := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// MaxAbsDiff returns the largest elementwise magnitude difference between two
// equally sized matrices. It is primarily a test helper but is exported for
// use in the verification harnesses.
func MaxAbsDiff(a, b *CMatrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mathx: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for i := range a.data {
		if d := cmplx.Abs(a.data[i] - b.data[i]); d > m {
			m = d
		}
	}
	return m
}

// CloseC reports whether two complex values agree within tol in absolute
// terms.
func CloseC(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// Close reports whether two floats agree within tol in absolute terms.
func Close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// CloseRel reports whether two floats agree within rel relative tolerance
// (with an absolute floor of rel for values near zero).
func CloseRel(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= rel*scale
}
