package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveRKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{4, 1},
		{1, 3},
	})
	b := []float64{1, 2}
	x, err := SolveR(a, b)
	if err != nil {
		t.Fatalf("SolveR: %v", err)
	}
	// Solved by hand: x = (1/11)[1, 7]
	if !Close(x[0], 1.0/11, 1e-12) || !Close(x[1], 7.0/11, 1e-12) {
		t.Errorf("x = %v, want [1/11 7/11]", x)
	}
}

func TestSolveRSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveR(a, []float64{1, 1}); err == nil {
		t.Fatal("want error on singular system")
	}
}

func TestSolveRRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		got, err := SolveR(a, a.MulVec(want))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if !Close(got[i], want[i], 1e-9) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Overdetermined but consistent: y = 2 + 3x sampled at 5 points.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	c, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !Close(c[0], 2, 1e-8) || !Close(c[1], 3, 1e-8) {
		t.Errorf("coefficients = %v, want [2 3]", c)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be (nearly) orthogonal to the column space.
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(20, 3)
	b := make([]float64, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	ax := a.MulVec(x)
	r := make([]float64, len(b))
	for i := range b {
		r[i] = b[i] - ax[i]
	}
	atr := a.Transpose().MulVec(r)
	for j, v := range atr {
		if math.Abs(v) > 1e-6 {
			t.Errorf("A^T r [%d] = %g, want ~0", j, v)
		}
	}
}

func TestMatrixTransposeInvolution(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := a.Transpose().Transpose()
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != tt.At(i, j) {
				t.Fatalf("transpose involution broken at (%d,%d)", i, j)
			}
		}
	}
}
