package mathx

import "fmt"

// PolyEval evaluates the polynomial with coefficients c (c[0] + c[1] x +
// c[2] x^2 + ...) at x using Horner's scheme.
func PolyEval(c []float64, x float64) float64 {
	var y float64
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// PolyDeriv returns the coefficients of the derivative of the polynomial c.
func PolyDeriv(c []float64) []float64 {
	if len(c) <= 1 {
		return []float64{0}
	}
	d := make([]float64, len(c)-1)
	for i := 1; i < len(c); i++ {
		d[i-1] = float64(i) * c[i]
	}
	return d
}

// PolyFit fits a polynomial of the given degree to the points (xs, ys) in the
// least-squares sense and returns its coefficients, lowest order first.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("mathx: PolyFit degree must be non-negative, got %d", degree)
	}
	if len(xs) != len(ys) || len(xs) < degree+1 {
		return nil, fmt.Errorf("mathx: PolyFit needs >= %d equal-length points, got %d/%d", degree+1, len(xs), len(ys))
	}
	a := NewMatrix(len(xs), degree+1)
	for i, x := range xs {
		p := 1.0
		for j := 0; j <= degree; j++ {
			a.Set(i, j, p)
			p *= x
		}
	}
	return LeastSquares(a, ys)
}

// Derivative computes a central-difference numerical derivative of f at x
// with a scale-aware step.
func Derivative(f func(float64) float64, x float64) float64 {
	h := 1e-6 * (1 + abs(x))
	return (f(x+h) - f(x-h)) / (2 * h)
}

// Derivative2 computes a central-difference numerical second derivative of f
// at x.
func Derivative2(f func(float64) float64, x float64) float64 {
	h := 1e-4 * (1 + abs(x))
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Derivative3 computes a numerical third derivative of f at x.
func Derivative3(f func(float64) float64, x float64) float64 {
	h := 1e-3 * (1 + abs(x))
	return (f(x+2*h) - 2*f(x+h) + 2*f(x-h) - f(x-2*h)) / (2 * h * h * h)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Jacobian computes the numerical Jacobian of a vector function f at x using
// forward differences: J[i][j] = df_i/dx_j. The returned matrix has one row
// per component of f(x).
func Jacobian(f func([]float64) []float64, x []float64) *Matrix {
	fx := f(x)
	j := NewMatrix(len(fx), len(x))
	xp := append([]float64(nil), x...)
	for col := range x {
		h := 1e-7 * (1 + abs(x[col]))
		xp[col] = x[col] + h
		fp := f(xp)
		xp[col] = x[col]
		for row := range fp {
			j.Set(row, col, (fp[row]-fx[row])/h)
		}
	}
	return j
}
