package mathx

import "math"

// Physical constants used throughout the RF analysis.
const (
	// Boltzmann is the Boltzmann constant in J/K.
	Boltzmann = 1.380649e-23
	// T0 is the IEEE standard noise reference temperature in kelvin.
	T0 = 290.0
)

// DB10 converts a power ratio to decibels (10 log10).
func DB10(ratio float64) float64 { return 10 * math.Log10(ratio) }

// DB20 converts an amplitude ratio to decibels (20 log10).
func DB20(ratio float64) float64 { return 20 * math.Log10(ratio) }

// FromDB10 converts decibels to a power ratio.
func FromDB10(db float64) float64 { return math.Pow(10, db/10) }

// FromDB20 converts decibels to an amplitude ratio.
func FromDB20(db float64) float64 { return math.Pow(10, db/20) }

// WattsToDBm converts a power in watts to dBm.
func WattsToDBm(w float64) float64 { return 10*math.Log10(w) + 30 }

// DBmToWatts converts a power in dBm to watts.
func DBmToWatts(dbm float64) float64 { return math.Pow(10, (dbm-30)/10) }

// NFToTemp converts a noise figure (linear ratio, F >= 1) to an equivalent
// noise temperature in kelvin.
func NFToTemp(f float64) float64 { return (f - 1) * T0 }

// TempToNF converts an equivalent noise temperature in kelvin to a linear
// noise figure.
func TempToNF(te float64) float64 { return 1 + te/T0 }
