package mathx

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveCKnownSystem(t *testing.T) {
	a := CMatrixFromRows([][]complex128{
		{2, 1i},
		{-1i, 3},
	})
	// x = [1, 2i] => b = A x
	x := []complex128{1, 2i}
	b := []complex128{
		a.At(0, 0)*x[0] + a.At(0, 1)*x[1],
		a.At(1, 0)*x[0] + a.At(1, 1)*x[1],
	}
	got, err := SolveC(a, b)
	if err != nil {
		t.Fatalf("SolveC: %v", err)
	}
	for i := range x {
		if !CloseC(got[i], x[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestSolveCSingular(t *testing.T) {
	a := CMatrixFromRows([][]complex128{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveC(a, []complex128{1, 2}); err == nil {
		t.Fatal("SolveC on singular matrix: want error, got nil")
	}
}

func TestLUSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
			a.Add(i, i, complex(float64(n), 0)) // diagonally dominant => well conditioned
		}
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * want[j]
			}
		}
		got, err := SolveC(a, b)
		if err != nil {
			t.Fatalf("trial %d: SolveC: %v", trial, err)
		}
		for i := range want {
			if !CloseC(got[i], want[i], 1e-9) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestInverseC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5
	a := NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		a.Add(i, i, complex(float64(n), 0))
	}
	inv, err := InverseC(a)
	if err != nil {
		t.Fatalf("InverseC: %v", err)
	}
	prod := a.Mul(inv)
	if d := MaxAbsDiff(prod, CIdentity(n)); d > 1e-10 {
		t.Errorf("A * A^-1 differs from I by %g", d)
	}
}

func TestDetProperty(t *testing.T) {
	// det(A B) == det(A) det(B) for random well-conditioned 3x3 matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *CMatrix {
			m := NewCMatrix(3, 3)
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
				m.Add(i, i, 3)
			}
			return m
		}
		a, b := mk(), mk()
		fa, err1 := LUFactorize(a)
		fb, err2 := LUFactorize(b)
		fab, err3 := LUFactorize(a.Mul(b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		want := fa.Det() * fb.Det()
		got := fab.Det()
		return cmplx.Abs(got-want) <= 1e-8*(1+cmplx.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConjTranspose(t *testing.T) {
	a := CMatrixFromRows([][]complex128{
		{1 + 2i, 3},
		{4i, 5 - 1i},
		{6, 7i},
	})
	h := a.ConjTranspose()
	if h.Rows() != 2 || h.Cols() != 3 {
		t.Fatalf("ConjTranspose dims = %dx%d, want 2x3", h.Rows(), h.Cols())
	}
	if h.At(0, 1) != -4i || h.At(1, 0) != 1-2i+1i-1i { // 3 conj is 3? explicit below
		// recompute expectations explicitly
	}
	if got, want := h.At(0, 0), complex128(1-2i); got != want {
		t.Errorf("h[0,0] = %v, want %v", got, want)
	}
	if got, want := h.At(0, 1), complex128(-4i); got != want {
		t.Errorf("h[0,1] = %v, want %v", got, want)
	}
	if got, want := h.At(1, 2), complex128(-7i); got != want {
		t.Errorf("h[1,2] = %v, want %v", got, want)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(seed%5)
		if n < 1 {
			n = 1
		}
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
		return MaxAbsDiff(a.Mul(CIdentity(n)), a) == 0 &&
			MaxAbsDiff(CIdentity(n).Mul(a), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
