package mathx

import (
	"errors"
	"fmt"
	"sort"
)

// errUnsortedKnots reports interpolation knots that are not strictly
// increasing.
var errUnsortedKnots = errors.New("mathx: interpolation knots must be strictly increasing")

// Out-of-range contract. The package offers both behaviors explicitly and
// callers choose by name — never by accident:
//
//   - LinearInterp and Spline.Eval EXTRAPOLATE: outside the knot range the
//     boundary segment (or boundary cubic piece) is extended. Use these for
//     smooth physical models where the trend is trustworthy slightly past
//     the fitted range (e.g. small-signal parameter fits).
//   - LinearInterpClamped CLAMPS: outside the knot range the nearest
//     endpoint value holds. Use this for measured/datasheet tables
//     (dispersion curves, Q tables) where extending the boundary slope
//     fabricates data — a clamped table is at worst stale, an extrapolated
//     one can go negative or non-passive.
//
// rfpassive's tabulated dispersion data uses the clamped form throughout.

// LinearInterp evaluates a piecewise-linear interpolant through (xs, ys) at
// x. Outside the knot range the boundary segments are extrapolated (see the
// out-of-range contract above; LinearInterpClamped is the clamping variant).
func LinearInterp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		panic("mathx: LinearInterp requires equal, non-empty xs and ys")
	}
	if n == 1 {
		return ys[0]
	}
	i := sort.SearchFloat64s(xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return y0
	}
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// LinearInterpClamped evaluates the piecewise-linear interpolant through
// (xs, ys) at x, holding the endpoint values outside the knot range instead
// of extrapolating (see the out-of-range contract above).
func LinearInterpClamped(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		panic("mathx: LinearInterpClamped requires equal, non-empty xs and ys")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	return LinearInterp(xs, ys, x)
}

// Spline is a natural cubic spline interpolant.
type Spline struct {
	xs, ys []float64
	m      []float64 // second derivatives at the knots
}

// NewSpline constructs a natural cubic spline through the given knots, which
// must be strictly increasing in x.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return nil, fmt.Errorf("mathx: NewSpline requires >= 2 equal-length knots, got %d/%d", len(xs), len(ys))
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, errUnsortedKnots
		}
	}
	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		m:  make([]float64, n),
	}
	if n == 2 {
		return s, nil // linear segment; second derivatives stay zero
	}
	// Tridiagonal system for natural spline second derivatives (Thomas
	// algorithm).
	a := make([]float64, n) // sub-diagonal
	b := make([]float64, n) // diagonal
	c := make([]float64, n) // super-diagonal
	d := make([]float64, n) // rhs
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		h0 := xs[i] - xs[i-1]
		h1 := xs[i+1] - xs[i]
		a[i] = h0
		b[i] = 2 * (h0 + h1)
		c[i] = h1
		d[i] = 6 * ((ys[i+1]-ys[i])/h1 - (ys[i]-ys[i-1])/h0)
	}
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	s.m[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
	}
	return s, nil
}

// Eval evaluates the spline at x. Outside the knot range the boundary cubic
// pieces are extrapolated.
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	i := sort.SearchFloat64s(s.xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	h := s.xs[i] - s.xs[i-1]
	t := (x - s.xs[i-1]) / h
	u := 1 - t
	return u*s.ys[i-1] + t*s.ys[i] +
		h*h/6*((u*u*u-u)*s.m[i-1]+(t*t*t-t)*s.m[i])
}
