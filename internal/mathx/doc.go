// Package mathx provides the numerical substrate shared by all gnsslna
// packages: dense real and complex matrices with LU factorization, numerical
// differentiation, interpolation, polynomial utilities, a Goertzel DFT for
// single-bin spectral measurements, descriptive statistics, and decibel
// conversion helpers.
//
// Everything is written against the standard library only. The matrix types
// are deliberately small and allocation-conscious rather than general: the
// largest systems solved in this project are modified-nodal-analysis
// matrices with a few dozen nodes.
package mathx
