package mathx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownTone(t *testing.T) {
	n := 256
	fs := 256.0
	f0 := 16.0 // exactly bin 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*f0*float64(i)/fs), 0)
	}
	y, err := FFT(x)
	if err != nil {
		t.Fatalf("FFT: %v", err)
	}
	// Bin 16 and bin 240 carry n/2 each.
	if got := cmplx.Abs(y[16]); math.Abs(got-128) > 1e-9 {
		t.Errorf("bin 16 magnitude = %g, want 128", got)
	}
	if got := cmplx.Abs(y[240]); math.Abs(got-128) > 1e-9 {
		t.Errorf("bin 240 magnitude = %g, want 128", got)
	}
	for k, v := range y {
		if k != 16 && k != 240 && cmplx.Abs(v) > 1e-9 {
			t.Fatalf("leakage at bin %d: %g", k, cmplx.Abs(v))
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-12 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestFFTMatchesGoertzel(t *testing.T) {
	// The two independent spectral paths must agree on a multi-tone signal.
	n := 1024
	fs := 1024.0
	tones := map[float64]float64{32: 1.0, 100: 0.25, 333: 0.05}
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		for f, a := range tones {
			x[i] += a * math.Cos(2*math.Pi*f*ti)
		}
	}
	spec, err := RealSpectrum(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	for f, a := range tones {
		bin := spec[int(f)]
		if math.Abs(bin.Amplitude-a) > 1e-9 {
			t.Errorf("FFT amp at %g = %g, want %g", f, bin.Amplitude, a)
		}
		if g := ToneAmplitude(x, f, fs); math.Abs(g-bin.Amplitude) > 1e-9 {
			t.Errorf("Goertzel %g vs FFT %g at %g Hz", g, bin.Amplitude, f)
		}
	}
}

func TestFFTRejectsBadLength(t *testing.T) {
	if _, err := FFT(make([]complex128, 100)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := make([]complex128, 256)
	var tSum float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		tSum += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	var fSum float64
	for _, v := range y {
		fSum += real(v)*real(v) + imag(v)*imag(v)
	}
	fSum /= float64(len(x))
	if math.Abs(tSum-fSum) > 1e-9*tSum {
		t.Errorf("Parseval violated: time %g vs freq %g", tSum, fSum)
	}
}

func TestTHDOfDistortedSine(t *testing.T) {
	// y = sin + 0.1 sin(2x): THD = 0.1.
	fs := 4096.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*64*ti) + 0.1*math.Sin(2*math.Pi*128*ti)
	}
	if got := THD(x, 64, fs, 5); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("THD = %g, want 0.1", got)
	}
	// A pure sine has zero THD.
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2 * math.Pi * 64 * ti)
	}
	if got := THD(x, 64, fs, 5); got > 1e-9 {
		t.Errorf("pure-tone THD = %g, want 0", got)
	}
}
