package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearInterpExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 3, 7}
	ys := []float64{5, -1, 2, 2}
	for i := range xs {
		if got := LinearInterp(xs, ys, xs[i]); !Close(got, ys[i], 1e-12) {
			t.Errorf("LinearInterp at knot %d = %g, want %g", i, got, ys[i])
		}
	}
}

func TestLinearInterpMidpoint(t *testing.T) {
	xs := []float64{0, 2}
	ys := []float64{0, 10}
	if got := LinearInterp(xs, ys, 1); !Close(got, 5, 1e-12) {
		t.Errorf("midpoint = %g, want 5", got)
	}
	// Extrapolation continues the boundary segment.
	if got := LinearInterp(xs, ys, 3); !Close(got, 15, 1e-12) {
		t.Errorf("extrapolated = %g, want 15", got)
	}
}

// TestLinearInterpClampedContract pins the out-of-range contract: the
// clamped variant holds the endpoint values where the plain variant extends
// the boundary segments, and both agree exactly inside the knot range.
func TestLinearInterpClampedContract(t *testing.T) {
	xs := []float64{1, 2, 4}
	ys := []float64{10, 30, 20}
	// Below and above the range: endpoint values, not extended slopes.
	if got := LinearInterpClamped(xs, ys, 0); got != 10 {
		t.Errorf("clamped below range = %g, want 10", got)
	}
	if got := LinearInterpClamped(xs, ys, 100); got != 20 {
		t.Errorf("clamped above range = %g, want 20", got)
	}
	// The extrapolating variant genuinely differs out of range.
	if got := LinearInterp(xs, ys, 0); !Close(got, -10, 1e-12) {
		t.Errorf("extrapolated below range = %g, want -10", got)
	}
	// Inside the range the two variants agree exactly.
	for _, x := range Linspace(1, 4, 13) {
		a, b := LinearInterp(xs, ys, x), LinearInterpClamped(xs, ys, x)
		if a != b {
			t.Errorf("variants disagree in range at %g: %g vs %g", x, a, b)
		}
	}
	// Single-knot table is constant everywhere.
	if got := LinearInterpClamped([]float64{2}, []float64{7}, -5); got != 7 {
		t.Errorf("single-knot clamp = %g, want 7", got)
	}
}

func TestSplineReproducesLine(t *testing.T) {
	// A natural cubic spline through collinear points is exactly the line.
	xs := Linspace(0, 10, 8)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatalf("NewSpline: %v", err)
	}
	for _, x := range Linspace(0, 10, 41) {
		if got := s.Eval(x); !Close(got, 3*x-2, 1e-9) {
			t.Errorf("spline(%g) = %g, want %g", x, got, 3*x-2)
		}
	}
}

func TestSplineInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 4, 5}
	ys := []float64{1, 3, 2, -1, 0}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatalf("NewSpline: %v", err)
	}
	for i := range xs {
		if got := s.Eval(xs[i]); !Close(got, ys[i], 1e-10) {
			t.Errorf("spline at knot %g = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestSplineApproximatesSine(t *testing.T) {
	xs := Linspace(0, math.Pi, 20)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatalf("NewSpline: %v", err)
	}
	for _, x := range Linspace(0.1, math.Pi-0.1, 50) {
		if got := s.Eval(x); math.Abs(got-math.Sin(x)) > 1e-4 {
			t.Errorf("spline(%g) = %g, want sin = %g", x, got, math.Sin(x))
		}
	}
}

func TestSplineRejectsUnsorted(t *testing.T) {
	if _, err := NewSpline([]float64{0, 2, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error for unsorted knots")
	}
	if _, err := NewSpline([]float64{0}, []float64{1}); err == nil {
		t.Fatal("want error for single knot")
	}
}

func TestSplineMonotoneDataStaysBounded(t *testing.T) {
	// Property: spline through random monotone data stays within a modest
	// overshoot factor of the data range on the knot interval.
	f := func(seed int64) bool {
		xs := Linspace(0, 1, 6)
		ys := make([]float64, 6)
		acc := 0.0
		for i := range ys {
			acc += 0.1 + math.Abs(math.Sin(float64(seed)+float64(i)))
			ys[i] = acc
		}
		s, err := NewSpline(xs, ys)
		if err != nil {
			return false
		}
		lo, hi := ys[0], ys[5]
		span := hi - lo
		for _, x := range Linspace(0, 1, 51) {
			v := s.Eval(x)
			if v < lo-span || v > hi+span {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
