package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or 0
// when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// RMS returns the root-mean-square of xs, or 0 for an empty slice.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from start to stop inclusive.
// n must be at least 2.
func Linspace(start, stop float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace requires n >= 2")
	}
	out := make([]float64, n)
	step := (stop - start) / float64(n-1)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	out[n-1] = stop
	return out
}

// Logspace returns n logarithmically spaced values from start to stop
// inclusive (both must be positive). n must be at least 2.
func Logspace(start, stop float64, n int) []float64 {
	if start <= 0 || stop <= 0 {
		panic("mathx: Logspace requires positive endpoints")
	}
	ls := Linspace(math.Log10(start), math.Log10(stop), n)
	for i, v := range ls {
		ls[i] = math.Pow(10, v)
	}
	_ = ls[n-1]
	ls[n-1] = stop
	return ls
}
