package mathx

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-order radix-2 fast Fourier transform of x, whose
// length must be a power of two. The input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("mathx: FFT length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		out[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Rect(1, step*float64(k))
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	return out, nil
}

// IFFT computes the inverse FFT (normalized by 1/N).
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	y, err := FFT(conj)
	if err != nil {
		return nil, err
	}
	inv := complex(1/float64(n), 0)
	for i, v := range y {
		y[i] = cmplx.Conj(v) * inv
	}
	return y, nil
}

// SpectrumBin describes one tone found in a real signal's spectrum.
type SpectrumBin struct {
	// Freq is the bin center frequency in Hz.
	Freq float64
	// Amplitude is the single-sided tone amplitude.
	Amplitude float64
}

// RealSpectrum returns the single-sided amplitude spectrum of the real
// signal x sampled at sampleRate. The length of x must be a power of two.
func RealSpectrum(x []float64, sampleRate float64) ([]SpectrumBin, error) {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	y, err := FFT(cx)
	if err != nil {
		return nil, err
	}
	n := len(x)
	out := make([]SpectrumBin, n/2)
	for k := 0; k < n/2; k++ {
		amp := 2 * cmplx.Abs(y[k]) / float64(n)
		if k == 0 {
			amp /= 2 // DC is not doubled
		}
		out[k] = SpectrumBin{
			Freq:      float64(k) * sampleRate / float64(n),
			Amplitude: amp,
		}
	}
	return out, nil
}

// THD returns the total harmonic distortion (ratio, not dB) of the real
// signal x with fundamental f0: sqrt(sum of harmonic powers)/fundamental.
// Harmonics are read off the coherent spectrum up to Nyquist.
func THD(x []float64, f0, sampleRate float64, maxHarmonic int) float64 {
	fund := ToneAmplitude(x, f0, sampleRate)
	if fund == 0 {
		return math.Inf(1)
	}
	var p float64
	for h := 2; h <= maxHarmonic; h++ {
		f := float64(h) * f0
		if f >= sampleRate/2 {
			break
		}
		a := ToneAmplitude(x, f, sampleRate)
		p += a * a
	}
	return math.Sqrt(p) / fund
}
