package mathx

import (
	"math"
	"testing"
)

func TestPolyEval(t *testing.T) {
	// p(x) = 1 + 2x + 3x^2
	c := []float64{1, 2, 3}
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 6}, {2, 17}, {-1, 2},
	}
	for _, tc := range cases {
		if got := PolyEval(c, tc.x); !Close(got, tc.want, 1e-12) {
			t.Errorf("PolyEval(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (1 + 2x + 3x^2 + 4x^3) = 2 + 6x + 12x^2
	d := PolyDeriv([]float64{1, 2, 3, 4})
	want := []float64{2, 6, 12}
	if len(d) != len(want) {
		t.Fatalf("deriv len = %d, want %d", len(d), len(want))
	}
	for i := range want {
		if !Close(d[i], want[i], 1e-12) {
			t.Errorf("deriv[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	if d := PolyDeriv([]float64{5}); len(d) != 1 || d[0] != 0 {
		t.Errorf("deriv of constant = %v, want [0]", d)
	}
}

func TestPolyFitRecoversCubic(t *testing.T) {
	want := []float64{0.5, -1, 2, 0.25}
	xs := Linspace(-2, 2, 15)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = PolyEval(want, x)
	}
	got, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	for i := range want {
		if !Close(got[i], want[i], 1e-8) {
			t.Errorf("coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("want error when points < degree+1")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("want error for negative degree")
	}
}

func TestNumericalDerivatives(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(0.5 * x) }
	x := 1.3
	want1 := 0.5 * math.Exp(0.5*x)
	want2 := 0.25 * math.Exp(0.5*x)
	want3 := 0.125 * math.Exp(0.5*x)
	if got := Derivative(f, x); math.Abs(got-want1) > 1e-6 {
		t.Errorf("Derivative = %g, want %g", got, want1)
	}
	if got := Derivative2(f, x); math.Abs(got-want2) > 1e-5 {
		t.Errorf("Derivative2 = %g, want %g", got, want2)
	}
	if got := Derivative3(f, x); math.Abs(got-want3) > 1e-4 {
		t.Errorf("Derivative3 = %g, want %g", got, want3)
	}
}

func TestJacobianLinearMap(t *testing.T) {
	// f(x) = A x has Jacobian exactly A.
	a := MatrixFromRows([][]float64{
		{1, -2, 0.5},
		{3, 4, -1},
	})
	f := func(x []float64) []float64 { return a.MulVec(x) }
	j := Jacobian(f, []float64{0.3, -0.7, 2})
	for i := 0; i < 2; i++ {
		for k := 0; k < 3; k++ {
			if math.Abs(j.At(i, k)-a.At(i, k)) > 1e-5 {
				t.Errorf("J[%d][%d] = %g, want %g", i, k, j.At(i, k), a.At(i, k))
			}
		}
	}
}
