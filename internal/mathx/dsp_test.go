package mathx

import (
	"math"
	"testing"
)

func TestGoertzelSingleTone(t *testing.T) {
	fs := 1e6
	n := 1000 // 1 kHz resolution
	freq := 50e3
	amp := 0.7
	phase := 0.3
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = amp * math.Cos(2*math.Pi*freq*ti+phase)
	}
	got := ToneAmplitude(x, freq, fs)
	if math.Abs(got-amp) > 1e-9 {
		t.Errorf("amplitude = %g, want %g", got, amp)
	}
	// A bin with no tone must read (nearly) zero.
	if off := ToneAmplitude(x, 60e3, fs); off > 1e-9 {
		t.Errorf("off-bin amplitude = %g, want ~0", off)
	}
}

func TestGoertzelTwoTonesSeparation(t *testing.T) {
	fs := 2e6
	n := 2000
	f1, f2 := 100e3, 103e3
	a1, a2 := 1.0, 0.01
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = a1*math.Cos(2*math.Pi*f1*ti) + a2*math.Cos(2*math.Pi*f2*ti)
	}
	if got := ToneAmplitude(x, f1, fs); math.Abs(got-a1) > 1e-9 {
		t.Errorf("tone1 = %g, want %g", got, a1)
	}
	if got := ToneAmplitude(x, f2, fs); math.Abs(got-a2) > 1e-9 {
		t.Errorf("tone2 = %g, want %g", got, a2)
	}
}

func TestGoertzelDCAndEmpty(t *testing.T) {
	if got := Goertzel(nil, 1, 10); got != 0 {
		t.Errorf("Goertzel(nil) = %v, want 0", got)
	}
}

func TestCoherentSampling(t *testing.T) {
	freqs := []float64{1.5748e9, 1.5758e9, 1.5768e9}
	res := 100e3
	fs, n := CoherentSampling(freqs, res, 8)
	if fs < 8*1.5768e9 {
		t.Errorf("fs = %g below 8x max tone", fs)
	}
	// Every tone must fall on an exact bin: f/fs*N integer.
	for _, f := range freqs {
		bins := f / fs * float64(n)
		if math.Abs(bins-math.Round(bins)) > 1e-6 {
			t.Errorf("tone %g not on an exact bin (%g)", f, bins)
		}
	}
}
