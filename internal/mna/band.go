package mna

import (
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// Stamping is split into a frequency-independent symbolic pass and a cheap
// per-point numeric refresh. The symbolic pass (compiled lazily, re-run only
// when elements are added) resolves every element to its scatter targets —
// the (row, col, sign) cells it touches — and freezes the values of
// frequency-independent elements (resistors, delay-free VCCS). The numeric
// refresh then walks the flat plan: no interface dispatch for the common
// element kinds, no node resolution, no closure indirection for static
// values. The plan preserves element insertion order and each element's
// cell-visit order, so the assembled matrix is bit-identical to the direct
// per-element stamping (same floating-point accumulation order).

// planKind classifies a compiled stamp.
type planKind uint8

const (
	// planGeneric falls back to element.stamp (transmission lines, future
	// element kinds).
	planGeneric planKind = iota
	// planStatic scatters a frozen frequency-independent value.
	planStatic
	// planTwoNode scatters a per-frequency branch admittance.
	planTwoNode
	// planVCCS scatters the delayed transconductance gm*exp(-jw tau).
	planVCCS
)

// target is one matrix cell a stamp scatters into.
type target struct {
	i, j int
	neg  bool
}

// compiledStamp is one element lowered to scatter form.
type compiledStamp struct {
	kind    planKind
	el      element // planGeneric only
	val     func(w float64) complex128
	staticV complex128
	gm, tau float64
	targets [4]target
	n       int
}

func (s *compiledStamp) add(i, j int, neg bool) {
	if i >= 0 && j >= 0 {
		s.targets[s.n] = target{i: i, j: j, neg: neg}
		s.n++
	}
}

// scatter accumulates v into the planned cells, in plan order, negating
// where the symbolic pass recorded a minus — the exact cell-visit sequence
// (and therefore accumulation order) of the direct stamp methods.
func (s *compiledStamp) scatter(y *mathx.CMatrix, v complex128) {
	for k := 0; k < s.n; k++ {
		t := s.targets[k]
		if t.neg {
			y.Add(t.i, t.j, -v)
		} else {
			y.Add(t.i, t.j, v)
		}
	}
}

func (s *compiledStamp) stamp(y *mathx.CMatrix, w float64) {
	switch s.kind {
	case planStatic:
		s.scatter(y, s.staticV)
	case planTwoNode:
		s.scatter(y, s.val(w))
	case planVCCS:
		g := complex(s.gm, 0)
		if s.tau != 0 {
			sn, cs := math.Sincos(-w * s.tau)
			g *= complex(cs, sn)
		}
		s.scatter(y, g)
	default:
		s.el.stamp(y, w)
	}
}

// compileElement lowers one element to its scatter form.
func compileElement(e element) compiledStamp {
	switch el := e.(type) {
	case twoNode:
		s := compiledStamp{kind: planTwoNode, val: el.y}
		// Cell order mirrors twoNode.stamp: (a,a), (b,b), (a,b,-), (b,a,-).
		s.add(el.a, el.a, false)
		s.add(el.b, el.b, false)
		if el.a >= 0 && el.b >= 0 {
			s.add(el.a, el.b, true)
			s.add(el.b, el.a, true)
		}
		if el.static {
			s.kind = planStatic
			s.staticV = el.y(0)
		}
		return s
	case vccs:
		s := compiledStamp{kind: planVCCS, gm: el.gm, tau: el.tau}
		// Cell order mirrors vccs.stamp.
		s.add(el.dp, el.cp, false)
		s.add(el.dp, el.cm, true)
		s.add(el.dm, el.cp, true)
		s.add(el.dm, el.cm, false)
		if el.tau == 0 {
			s.kind = planStatic
			s.staticV = complex(el.gm, 0)
		}
		return s
	default:
		return compiledStamp{kind: planGeneric, el: e}
	}
}

// ensurePlan (re)compiles the stamp plan when elements were added since the
// last compile (elements are append-only, so a length check suffices).
func (c *Circuit) ensurePlan() {
	if len(c.plan) == len(c.elems) {
		return
	}
	if cap(c.plan) < len(c.elems) {
		plan := make([]compiledStamp, len(c.plan), len(c.elems))
		copy(plan, c.plan)
		c.plan = plan
	}
	for _, e := range c.elems[len(c.plan):] {
		c.plan = append(c.plan, compileElement(e))
	}
}

// SParamsBandInto computes two-port S-parameters between the two named port
// nodes over the frequency grid, referenced to z0, writing one scattering
// matrix per frequency into dst (same length as freqs). The ports are
// resolved and the stamp plan compiled once; each grid point then costs one
// numeric refresh, one LU factorization and two solves against the reusable
// workspace — no maps, node resolution or matrix allocation in the loop.
func (c *Circuit) SParamsBandInto(dst []twoport.Mat2, freqs []float64, portIn, portOut string, z0 float64) error {
	if len(dst) != len(freqs) {
		return fmt.Errorf("mna: SParamsBandInto needs len(dst)=len(freqs), got %d/%d", len(dst), len(freqs))
	}
	in, ok := c.nodeIndex[portIn]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, portIn)
	}
	out, ok := c.nodeIndex[portOut]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, portOut)
	}
	ports := [2]int{in, out}
	g0 := complex(1/z0, 0)
	c.ensureScratch()
	c.ensurePlan()
	for k, f := range freqs {
		c.y.Zero()
		w := 2 * math.Pi * f
		for i := range c.plan {
			c.plan[i].stamp(c.y, w)
		}
		for _, p := range ports {
			c.y.Add(p, p, g0)
		}
		if err := c.lu.Factorize(c.y); err != nil {
			return fmt.Errorf("mna: solve at %g Hz: %w", f, err)
		}
		var s twoport.Mat2
		for j := 0; j < 2; j++ {
			for i := range c.rhs {
				c.rhs[i] = 0
			}
			c.rhs[ports[j]] += g0 // Norton equivalent of 1 V behind z0
			if err := c.lu.SolveInto(c.sol, c.rhs); err != nil {
				return fmt.Errorf("mna: solve at %g Hz: %w", f, err)
			}
			for i := 0; i < 2; i++ {
				s[i][j] = 2 * c.sol[ports[i]]
				if i == j {
					s[i][j] -= 1
				}
			}
		}
		dst[k] = s
	}
	return nil
}

// SParamsBand is SParamsBandInto with the result slab allocated and wrapped
// as a Network.
func (c *Circuit) SParamsBand(freqs []float64, portIn, portOut string, z0 float64) (*twoport.Network, error) {
	mats := make([]twoport.Mat2, len(freqs))
	if err := c.SParamsBandInto(mats, freqs, portIn, portOut, z0); err != nil {
		return nil, err
	}
	return twoport.NewNetwork(z0, freqs, mats)
}
