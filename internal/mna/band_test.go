package mna

import (
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// bandTestCircuit builds a representative amplifier-shaped netlist hitting
// every plan kind: static resistors, reactive two-nodes, a delay-free VCCS
// (frozen), a delayed VCCS, and a transmission line (generic fallback).
func bandTestCircuit() *Circuit {
	c := New()
	c.AddR("in", "g", 5)
	c.AddC("g", "0", 0.4e-12)
	c.AddC("g", "d", 0.05e-12)
	c.AddVCCS("g", "0", "d", "0", 0.08, 1.5e-12)
	c.AddVCCS("d", "0", "0", "d", 1e-4, 0) // static output conductance
	c.AddR("d", "out", 3)
	c.AddL("out", "0", 8e-9)
	zc := func(float64) complex128 { return complex(50, 0) }
	gamma := func(f float64) complex128 { return complex(0.1, 2*3.141592653589793*f/3e8) }
	c.AddLine("out", "p2", zc, gamma, 2e-3)
	return c
}

func bandGrid() []float64 { return mathx.Logspace(100e6, 10e9, 17) }

// TestSParamsBandMatchesFresh demands that one batched grid pass over a
// reused circuit — static values frozen, scratch and plan reused across
// points — equal (==) per-point computes on fresh circuits.
func TestSParamsBandMatchesFresh(t *testing.T) {
	grid := bandGrid()
	c := bandTestCircuit()
	band := make([]twoport.Mat2, len(grid))
	if err := c.SParamsBandInto(band, grid, "in", "p2", 50); err != nil {
		t.Fatal(err)
	}
	for i, f := range grid {
		fresh := bandTestCircuit()
		one := make([]twoport.Mat2, 1)
		if err := fresh.SParamsBandInto(one, []float64{f}, "in", "p2", 50); err != nil {
			t.Fatalf("fresh solve at %g Hz: %v", f, err)
		}
		if band[i] != one[0] {
			t.Fatalf("at %g Hz: reused-circuit batch S %v != fresh S %v", f, band[i], one[0])
		}
	}
}

// TestSParamsBandPlanInvalidation adds an element after a grid pass and
// demands the next pass see it: the compiled plan must recompile, and the
// result must equal a fresh circuit built with the full netlist.
func TestSParamsBandPlanInvalidation(t *testing.T) {
	grid := bandGrid()
	c := bandTestCircuit()
	before := make([]twoport.Mat2, len(grid))
	if err := c.SParamsBandInto(before, grid, "in", "p2", 50); err != nil {
		t.Fatal(err)
	}
	c.AddR("p2", "0", 200)
	after := make([]twoport.Mat2, len(grid))
	if err := c.SParamsBandInto(after, grid, "in", "p2", 50); err != nil {
		t.Fatal(err)
	}
	fresh := bandTestCircuit()
	fresh.AddR("p2", "0", 200)
	want := make([]twoport.Mat2, len(grid))
	if err := fresh.SParamsBandInto(want, grid, "in", "p2", 50); err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range grid {
		if after[i] != want[i] {
			t.Fatalf("point %d: stale plan — incremental circuit %v != fresh %v", i, after[i], want[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("added shunt resistor left every S-parameter bit-identical; plan not recompiled")
	}
}

// TestSParamsBandErrors covers the argument contracts.
func TestSParamsBandErrors(t *testing.T) {
	c := bandTestCircuit()
	if err := c.SParamsBandInto(make([]twoport.Mat2, 2), []float64{1e9}, "in", "p2", 50); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.SParamsBandInto(make([]twoport.Mat2, 1), []float64{1e9}, "nosuch", "p2", 50); err == nil {
		t.Error("unknown input port accepted")
	}
	if err := c.SParamsBandInto(make([]twoport.Mat2, 1), []float64{1e9}, "in", "nosuch", 50); err == nil {
		t.Error("unknown output port accepted")
	}
}

// TestSParams2Delegates pins the legacy per-grid API to the band engine.
func TestSParams2Delegates(t *testing.T) {
	grid := bandGrid()
	c := bandTestCircuit()
	net, err := c.SParams2(grid, "in", "p2", 50)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]twoport.Mat2, len(grid))
	if err := bandTestCircuit().SParamsBandInto(want, grid, "in", "p2", 50); err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		if net.S[i] != want[i] {
			t.Fatalf("point %d: SParams2 %v != SParamsBandInto %v", i, net.S[i], want[i])
		}
	}
}
