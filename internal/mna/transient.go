package mna

import (
	"errors"
	"fmt"
	"math"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
)

// TransientCircuit is a nonlinear time-domain circuit: resistors,
// capacitors, inductors, FETs and time-dependent sources, integrated with
// the trapezoidal rule and a Newton solve per step. The design flow uses it
// to check the bias network's power-up behaviour (supply ramp, decoupling
// charge, gate overshoot) that no frequency-domain view can show.
type TransientCircuit struct {
	nodeIndex map[string]int
	nodeNames []string

	resistors []dcResistor
	caps      []trCap
	inds      []trInd
	fets      []dcFET
	vsources  []trVSource
	isources  []trISource
}

type trCap struct {
	a, b   int
	farads float64
	// state: voltage and current at the previous accepted step
	vPrev, iPrev float64
}

type trInd struct {
	a, b    int
	henries float64
	vPrev   float64
	iPrev   float64
}

type trVSource struct {
	plus, minus int
	volts       func(t float64) float64
}

type trISource struct {
	a, b int
	amps func(t float64) float64
}

// NewTransient returns an empty transient circuit.
func NewTransient() *TransientCircuit {
	return &TransientCircuit{nodeIndex: make(map[string]int)}
}

func (c *TransientCircuit) node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// AddR places a resistor between a and b.
func (c *TransientCircuit) AddR(a, b string, ohms float64) {
	c.resistors = append(c.resistors, dcResistor{c.node(a), c.node(b), 1 / ohms})
}

// AddC places a capacitor between a and b (initially discharged).
func (c *TransientCircuit) AddC(a, b string, farads float64) {
	c.caps = append(c.caps, trCap{a: c.node(a), b: c.node(b), farads: farads})
}

// AddL places an inductor between a and b (initially currentless).
func (c *TransientCircuit) AddL(a, b string, henries float64) {
	c.inds = append(c.inds, trInd{a: c.node(a), b: c.node(b), henries: henries})
}

// AddFET places a transistor with the given DC model.
func (c *TransientCircuit) AddFET(m device.DCModel, gate, drain, src string) {
	c.fets = append(c.fets, dcFET{m, c.node(gate), c.node(drain), c.node(src)})
}

// AddV places a time-dependent voltage source.
func (c *TransientCircuit) AddV(plus, minus string, volts func(t float64) float64) {
	c.vsources = append(c.vsources, trVSource{c.node(plus), c.node(minus), volts})
}

// AddI places a time-dependent current source driving from a to b.
func (c *TransientCircuit) AddI(a, b string, amps func(t float64) float64) {
	c.isources = append(c.isources, trISource{c.node(a), c.node(b), amps})
}

// Step is the proposal the per-timestep Newton solves: node voltages plus
// voltage-source currents.
//
// Trapezoidal companion models:
//
//	capacitor: i = Geq*v - (Geq*vPrev + iPrev), Geq = 2C/h
//	inductor:  i = Geq*v + (iPrev + Geq*vPrev), Geq = h/(2L)
//
// RampV returns a supply that ramps linearly from 0 to v over rise seconds.
func RampV(v, rise float64) func(t float64) float64 {
	return func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		if t >= rise {
			return v
		}
		return v * t / rise
	}
}

// StepV returns an ideal step to v at t = 0.
func StepV(v float64) func(t float64) float64 {
	return func(t float64) float64 {
		if t < 0 {
			return 0
		}
		return v
	}
}

// Waveform is one node's sampled response.
type Waveform struct {
	// Times holds the sample instants.
	Times []float64
	// V holds the node voltage at each instant.
	V []float64
}

// ErrTransientDiverged reports a Newton failure during integration.
var ErrTransientDiverged = errors.New("mna: transient Newton diverged")

// Run integrates from 0 to tEnd with fixed step h and returns the waveform
// of every requested node.
func (c *TransientCircuit) Run(tEnd, h float64, watch []string) (map[string]*Waveform, error) {
	n := len(c.nodeNames)
	if n == 0 {
		return nil, errors.New("mna: empty transient circuit")
	}
	if h <= 0 || tEnd <= 0 {
		return nil, fmt.Errorf("mna: invalid transient window (%g, %g)", tEnd, h)
	}
	for _, w := range watch {
		if _, ok := c.nodeIndex[w]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, w)
		}
	}
	nv := len(c.vsources)
	dim := n + nv
	x := make([]float64, dim)
	out := make(map[string]*Waveform, len(watch))
	for _, w := range watch {
		out[w] = &Waveform{}
	}
	record := func(t float64) {
		for _, w := range watch {
			wf := out[w]
			wf.Times = append(wf.Times, t)
			wf.V = append(wf.V, x[c.nodeIndex[w]])
		}
	}
	record(0)

	vAt := func(xv []float64, idx int) float64 {
		if idx < 0 {
			return 0
		}
		return xv[idx]
	}

	steps := int(math.Ceil(tEnd / h))
	for s := 1; s <= steps; s++ {
		t := float64(s) * h
		// Newton solve for this step, warm-started from the previous one.
		converged := false
		for iter := 0; iter < 80; iter++ {
			j := mathx.NewMatrix(dim, dim)
			f := make([]float64, dim)
			stampG := func(a, b int, g float64) {
				if a >= 0 {
					j.Add(a, a, g)
				}
				if b >= 0 {
					j.Add(b, b, g)
				}
				if a >= 0 && b >= 0 {
					j.Add(a, b, -g)
					j.Add(b, a, -g)
				}
			}
			addCur := func(node int, i float64) {
				if node >= 0 {
					f[node] += i
				}
			}
			for _, r := range c.resistors {
				i := r.g * (vAt(x, r.a) - vAt(x, r.b))
				addCur(r.a, i)
				addCur(r.b, -i)
				stampG(r.a, r.b, r.g)
			}
			for k := range c.caps {
				cp := &c.caps[k]
				geq := 2 * cp.farads / h
				v := vAt(x, cp.a) - vAt(x, cp.b)
				i := geq*v - (geq*cp.vPrev + cp.iPrev)
				addCur(cp.a, i)
				addCur(cp.b, -i)
				stampG(cp.a, cp.b, geq)
			}
			for k := range c.inds {
				ld := &c.inds[k]
				geq := h / (2 * ld.henries)
				v := vAt(x, ld.a) - vAt(x, ld.b)
				i := geq*v + ld.iPrev + geq*ld.vPrev
				addCur(ld.a, i)
				addCur(ld.b, -i)
				stampG(ld.a, ld.b, geq)
			}
			for _, t2 := range c.fets {
				vg, vd, vs := vAt(x, t2.gate), vAt(x, t2.drain), vAt(x, t2.src)
				vgs, vds := vg-vs, vd-vs
				ids := t2.model.Ids(vgs, vds)
				gm := device.Gm(t2.model, vgs, vds)
				gds := device.Gds(t2.model, vgs, vds)
				addCur(t2.drain, ids)
				addCur(t2.src, -ids)
				stamp := func(row int, sign float64) {
					if row < 0 {
						return
					}
					if t2.gate >= 0 {
						j.Add(row, t2.gate, sign*gm)
					}
					if t2.drain >= 0 {
						j.Add(row, t2.drain, sign*gds)
					}
					if t2.src >= 0 {
						j.Add(row, t2.src, -sign*(gm+gds))
					}
				}
				stamp(t2.drain, 1)
				stamp(t2.src, -1)
			}
			for _, s2 := range c.isources {
				i := s2.amps(t)
				addCur(s2.a, i)
				addCur(s2.b, -i)
			}
			for k, s2 := range c.vsources {
				row := n + k
				i := x[row]
				addCur(s2.plus, i)
				addCur(s2.minus, -i)
				if s2.plus >= 0 {
					j.Add(s2.plus, row, 1)
					j.Add(row, s2.plus, 1)
				}
				if s2.minus >= 0 {
					j.Add(s2.minus, row, -1)
					j.Add(row, s2.minus, -1)
				}
				f[row] = vAt(x, s2.plus) - vAt(x, s2.minus) - s2.volts(t)
			}
			var rn float64
			for _, v := range f {
				rn += v * v
			}
			if math.Sqrt(rn) < 1e-9 {
				converged = true
				break
			}
			rhs := make([]float64, dim)
			for i := range f {
				rhs[i] = -f[i]
			}
			dx, err := mathx.SolveR(j, rhs)
			if err != nil {
				return nil, fmt.Errorf("mna: transient Jacobian at t=%g: %w", t, err)
			}
			scale := 1.0
			for i := 0; i < n; i++ {
				if s := math.Abs(dx[i]); s > 1.0 {
					scale = math.Min(scale, 1.0/s)
				}
			}
			for i := range x {
				x[i] += scale * dx[i]
			}
		}
		if !converged {
			return nil, fmt.Errorf("%w at t=%g", ErrTransientDiverged, t)
		}
		// Commit reactive states (trapezoidal current at the new point).
		for k := range c.caps {
			cp := &c.caps[k]
			geq := 2 * cp.farads / h
			v := vAt(x, cp.a) - vAt(x, cp.b)
			i := geq*v - (geq*cp.vPrev + cp.iPrev)
			cp.vPrev, cp.iPrev = v, i
		}
		for k := range c.inds {
			ld := &c.inds[k]
			geq := h / (2 * ld.henries)
			v := vAt(x, ld.a) - vAt(x, ld.b)
			i := geq*v + ld.iPrev + geq*ld.vPrev
			ld.vPrev, ld.iPrev = v, i
		}
		record(t)
	}
	return out, nil
}

// Final returns the last sample of a waveform.
func (w *Waveform) Final() float64 {
	if len(w.V) == 0 {
		return math.NaN()
	}
	return w.V[len(w.V)-1]
}

// Max returns the largest sample of a waveform.
func (w *Waveform) Max() float64 {
	m := math.Inf(-1)
	for _, v := range w.V {
		m = math.Max(m, v)
	}
	return m
}
