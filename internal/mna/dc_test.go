package mna

import (
	"math"
	"testing"

	"gnsslna/internal/device"
)

func TestDCVoltageDivider(t *testing.T) {
	c := NewDC()
	c.AddV("vcc", "0", 5)
	c.AddR("vcc", "mid", 10e3)
	c.AddR("mid", "0", 10e3)
	v, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	if math.Abs(v["vcc"]-5) > 1e-9 {
		t.Errorf("V(vcc) = %g, want 5", v["vcc"])
	}
	if math.Abs(v["mid"]-2.5) > 1e-9 {
		t.Errorf("V(mid) = %g, want 2.5", v["mid"])
	}
}

func TestDCCurrentSourceIntoResistor(t *testing.T) {
	c := NewDC()
	c.AddI("0", "n", 1e-3) // 1 mA into n
	c.AddR("n", "0", 2.2e3)
	v, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	if math.Abs(v["n"]-2.2) > 1e-9 {
		t.Errorf("V(n) = %g, want 2.2", v["n"])
	}
}

func TestDCSelfBiasedFET(t *testing.T) {
	// Classic self-bias: gate grounded through a resistor (no gate
	// current), source resistor sets Vgs = -Ids*Rs... with an
	// enhancement-mode device use a divider instead: verify the full bias
	// network the amplifier actually uses.
	golden := device.Golden()
	c := NewDC()
	c.AddV("vcc", "0", 5)
	// Gate divider targeting ~0.48 V.
	c.AddR("vcc", "gate", 47e3)
	c.AddR("gate", "0", 5.1e3)
	// Drain feed resistor.
	c.AddR("vcc", "drain", 22)
	c.AddFET(golden.DC, "gate", "drain", "0")
	v, err := c.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	bias, ids, err := c.FETBias(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Divider value (no gate current): 5 * 5.1/52.1 = 0.489 V.
	wantVgs := 5 * 5.1 / 52.1
	if math.Abs(bias.Vgs-wantVgs) > 1e-6 {
		t.Errorf("Vgs = %g, want %g", bias.Vgs, wantVgs)
	}
	// KVL on the drain: Vds = 5 - Ids*22.
	if math.Abs(bias.Vds-(5-ids*22)) > 1e-6 {
		t.Errorf("Vds = %g inconsistent with Ids = %g", bias.Vds, ids)
	}
	if ids < 0.02 || ids > 0.2 {
		t.Errorf("Ids = %g A, want tens of mA", ids)
	}
	if _, _, err := c.FETBias(v, 7); err == nil {
		t.Error("bad FET index accepted")
	}
}

func TestDCSourceDegenerationFeedback(t *testing.T) {
	// With a source resistor the operating point must self-limit: raising
	// the divider voltage barely moves Ids compared to the grounded-source
	// case (negative feedback).
	golden := device.Golden()
	solve := func(rs float64, vdiv float64) float64 {
		c := NewDC()
		c.AddV("vcc", "0", 5)
		c.AddV("vg", "0", vdiv)
		c.AddR("vg", "gate", 1e3)
		c.AddR("vcc", "drain", 22)
		src := "0"
		if rs > 0 {
			src = "s"
			c.AddR("s", "0", rs)
		}
		c.AddFET(golden.DC, "gate", "drain", src)
		v, err := c.OperatingPoint()
		if err != nil {
			t.Fatalf("OperatingPoint(rs=%g): %v", rs, err)
		}
		_, ids, err := c.FETBias(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	dNoFB := solve(0, 0.52) - solve(0, 0.47)
	dFB := solve(10, 0.62) - solve(10, 0.57)
	if dFB >= dNoFB {
		t.Errorf("degeneration should reduce bias sensitivity: dIds %g (Rs=10) vs %g (Rs=0)",
			dFB, dNoFB)
	}
}

func TestDCErrors(t *testing.T) {
	c := NewDC()
	if _, err := c.OperatingPoint(); err == nil {
		t.Error("empty circuit accepted")
	}
	// Current forced into a floating island: no consistent solution, the
	// Jacobian is singular once Newton must take a step.
	c2 := NewDC()
	c2.AddR("a", "b", 100)
	c2.AddI("0", "a", 1e-3)
	if _, err := c2.OperatingPoint(); err == nil {
		t.Error("inconsistent floating network accepted")
	}
}
