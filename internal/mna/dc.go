package mna

import (
	"errors"
	"fmt"
	"math"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
)

// ErrNoConvergence reports a Newton iteration that failed to settle.
var ErrNoConvergence = errors.New("mna: DC Newton iteration did not converge")

// DCCircuit is a nonlinear DC circuit solved by Newton-Raphson on the
// modified nodal equations: resistors, current and voltage sources, and
// FETs described by any device.DCModel. It computes the true operating
// point of the amplifier's bias network — divider, feed resistors and the
// transistor's own I-V feedback — rather than assuming ideal bias voltages.
type DCCircuit struct {
	nodeIndex map[string]int
	nodeNames []string

	resistors []dcResistor
	isources  []dcISource
	vsources  []dcVSource
	fets      []dcFET
}

type dcResistor struct {
	a, b int
	g    float64
}

type dcISource struct {
	a, b int // current flows from a to b through the source (into b)
	amps float64
}

type dcVSource struct {
	plus, minus int
	volts       float64
}

type dcFET struct {
	model            device.DCModel
	gate, drain, src int
}

// NewDC returns an empty DC circuit.
func NewDC() *DCCircuit {
	return &DCCircuit{nodeIndex: make(map[string]int)}
}

func (c *DCCircuit) node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// AddR places a resistor between nodes a and b.
func (c *DCCircuit) AddR(a, b string, ohms float64) {
	c.resistors = append(c.resistors, dcResistor{c.node(a), c.node(b), 1 / ohms})
}

// AddI places a DC current source driving amps from node a to node b.
func (c *DCCircuit) AddI(a, b string, amps float64) {
	c.isources = append(c.isources, dcISource{c.node(a), c.node(b), amps})
}

// AddV places an ideal DC voltage source of volts between plus and minus.
func (c *DCCircuit) AddV(plus, minus string, volts float64) {
	c.vsources = append(c.vsources, dcVSource{c.node(plus), c.node(minus), volts})
}

// AddFET places a transistor described by the DC model with its gate, drain
// and source terminals.
func (c *DCCircuit) AddFET(m device.DCModel, gate, drain, src string) {
	c.fets = append(c.fets, dcFET{m, c.node(gate), c.node(drain), c.node(src)})
}

// OperatingPoint solves the nonlinear DC equations and returns the node
// voltages by name.
func (c *DCCircuit) OperatingPoint() (map[string]float64, error) {
	n := len(c.nodeNames)
	if n == 0 {
		return nil, errors.New("mna: empty DC circuit")
	}
	nv := len(c.vsources)
	dim := n + nv
	x := make([]float64, dim) // node voltages then source currents

	vAt := func(idx int) float64 {
		if idx < 0 {
			return 0
		}
		return x[idx]
	}

	const (
		maxIter = 200
		tol     = 1e-10
		maxStep = 0.5 // volts per Newton step on any node (damping)
	)
	for iter := 0; iter < maxIter; iter++ {
		j := mathx.NewMatrix(dim, dim)
		f := make([]float64, dim) // residual: KCL currents + source equations

		stampG := func(a, b int, g float64) {
			if a >= 0 {
				j.Add(a, a, g)
			}
			if b >= 0 {
				j.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				j.Add(a, b, -g)
				j.Add(b, a, -g)
			}
		}
		addCurrent := func(node int, i float64) {
			if node >= 0 {
				f[node] += i
			}
		}

		// Resistors: current a->b = g*(Va-Vb).
		for _, r := range c.resistors {
			i := r.g * (vAt(r.a) - vAt(r.b))
			addCurrent(r.a, i)
			addCurrent(r.b, -i)
			stampG(r.a, r.b, r.g)
		}
		// Current sources.
		for _, s := range c.isources {
			addCurrent(s.a, s.amps)
			addCurrent(s.b, -s.amps)
		}
		// Voltage sources: extra unknown x[n+k] is the current flowing from
		// plus through the source to minus.
		for k, s := range c.vsources {
			row := n + k
			i := x[row]
			addCurrent(s.plus, i)
			addCurrent(s.minus, -i)
			if s.plus >= 0 {
				j.Add(s.plus, row, 1)
				j.Add(row, s.plus, 1)
			}
			if s.minus >= 0 {
				j.Add(s.minus, row, -1)
				j.Add(row, s.minus, -1)
			}
			f[row] = vAt(s.plus) - vAt(s.minus) - s.volts
		}
		// FETs: drain current Ids(vgs, vds) flows drain -> source.
		for _, t := range c.fets {
			vg, vd, vs := vAt(t.gate), vAt(t.drain), vAt(t.src)
			vgs, vds := vg-vs, vd-vs
			ids := t.model.Ids(vgs, vds)
			gm := device.Gm(t.model, vgs, vds)
			gds := device.Gds(t.model, vgs, vds)
			addCurrent(t.drain, ids)
			addCurrent(t.src, -ids)
			// dIds/dVg = gm, /dVd = gds, /dVs = -(gm+gds).
			stampFET := func(row int, sign float64) {
				if row < 0 {
					return
				}
				if t.gate >= 0 {
					j.Add(row, t.gate, sign*gm)
				}
				if t.drain >= 0 {
					j.Add(row, t.drain, sign*gds)
				}
				if t.src >= 0 {
					j.Add(row, t.src, -sign*(gm+gds))
				}
			}
			stampFET(t.drain, 1)
			stampFET(t.src, -1)
		}

		// Converged when the residual is tiny.
		var rn float64
		for _, v := range f {
			rn += v * v
		}
		if math.Sqrt(rn) < tol {
			out := make(map[string]float64, n)
			for i, name := range c.nodeNames {
				out[name] = x[i]
			}
			return out, nil
		}

		// Newton step: J dx = -f.
		rhs := make([]float64, dim)
		for i := range f {
			rhs[i] = -f[i]
		}
		dx, err := mathx.SolveR(j, rhs)
		if err != nil {
			return nil, fmt.Errorf("mna: DC Jacobian singular at iteration %d: %w", iter, err)
		}
		// Damped update.
		scale := 1.0
		for i := 0; i < n; i++ {
			if s := math.Abs(dx[i]); s > maxStep {
				scale = math.Min(scale, maxStep/s)
			}
		}
		for i := range x {
			x[i] += scale * dx[i]
		}
	}
	return nil, ErrNoConvergence
}

// FETBias reports the operating point of the k-th FET after a solve.
func (c *DCCircuit) FETBias(voltages map[string]float64, k int) (device.Bias, float64, error) {
	if k < 0 || k >= len(c.fets) {
		return device.Bias{}, 0, fmt.Errorf("mna: no FET %d", k)
	}
	t := c.fets[k]
	get := func(idx int) float64 {
		if idx < 0 {
			return 0
		}
		return voltages[c.nodeNames[idx]]
	}
	b := device.Bias{
		Vgs: get(t.gate) - get(t.src),
		Vds: get(t.drain) - get(t.src),
	}
	return b, t.model.Ids(b.Vgs, b.Vds), nil
}
