// Package mna is a complex-valued Modified Nodal Analysis engine for linear
// AC (small-signal) circuit analysis: the role a commercial circuit
// simulator plays in the paper. Circuits are built from stamped elements
// (R, L, C, arbitrary admittances, voltage-controlled current sources and
// transmission lines), solved at each frequency with dense LU, and reduced
// to two-port S-parameters. It provides an independent verification path
// for the chain-matrix composition used by the design flow.
package mna

import (
	"errors"
	"fmt"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// Ground is the name of the reference node.
const Ground = "0"

// ErrNoSuchNode reports a port referencing an undefined node.
var ErrNoSuchNode = errors.New("mna: node not defined by any element")

// Circuit is a netlist of linear elements between named nodes. A Circuit is
// not safe for concurrent use: Solve reuses internal per-order scratch
// (matrix, factorization, vectors) across calls, which is what keeps the
// per-frequency sweep loops allocation-free.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string
	elems     []element

	// plan is the lazily compiled symbolic stamp plan (see band.go): one
	// scatter recipe per element, recompiled only when elements are added.
	plan []compiledStamp

	// Per-order solver scratch, sized lazily on first Solve.
	y   *mathx.CMatrix
	lu  mathx.CLU
	rhs []complex128
	sol []complex128
}

// element stamps itself into the nodal admittance matrix at angular
// frequency w (rad/s). Index -1 denotes ground.
type element interface {
	stamp(y *mathx.CMatrix, w float64)
	describe() string
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIndex: make(map[string]int)}
}

// node interns a node name and returns its matrix index (-1 for ground).
func (c *Circuit) node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NumNodes returns the number of non-ground nodes seen so far.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// twoNode is a generic branch admittance between two nodes. static marks a
// frequency-independent admittance whose value the stamp plan may freeze.
type twoNode struct {
	a, b   int
	y      func(w float64) complex128
	desc   string
	static bool
}

func (e twoNode) describe() string { return e.desc }

func (e twoNode) stamp(y *mathx.CMatrix, w float64) {
	v := e.y(w)
	if e.a >= 0 {
		y.Add(e.a, e.a, v)
	}
	if e.b >= 0 {
		y.Add(e.b, e.b, v)
	}
	if e.a >= 0 && e.b >= 0 {
		y.Add(e.a, e.b, -v)
		y.Add(e.b, e.a, -v)
	}
}

// AddR places a resistor of r ohms between nodes a and b.
func (c *Circuit) AddR(a, b string, r float64) {
	na, nb := c.node(a), c.node(b)
	c.elems = append(c.elems, twoNode{a: na, b: nb,
		y:      func(float64) complex128 { return complex(1/r, 0) },
		desc:   fmt.Sprintf("R %s-%s %g", a, b, r),
		static: true})
}

// AddC places a capacitor of f farads between nodes a and b.
func (c *Circuit) AddC(a, b string, farads float64) {
	na, nb := c.node(a), c.node(b)
	c.elems = append(c.elems, twoNode{a: na, b: nb,
		y:    func(w float64) complex128 { return complex(0, w*farads) },
		desc: fmt.Sprintf("C %s-%s %g", a, b, farads)})
}

// AddL places an inductor of h henries between nodes a and b.
func (c *Circuit) AddL(a, b string, h float64) {
	na, nb := c.node(a), c.node(b)
	c.elems = append(c.elems, twoNode{a: na, b: nb,
		y: func(w float64) complex128 {
			if w == 0 {
				return complex(1e12, 0) // DC short approximated
			}
			return 1 / complex(0, w*h)
		},
		desc: fmt.Sprintf("L %s-%s %g", a, b, h)})
}

// AddY places an arbitrary frequency-dependent admittance between nodes a
// and b. The function receives the frequency in Hz.
func (c *Circuit) AddY(a, b string, y func(fHz float64) complex128, desc string) {
	na, nb := c.node(a), c.node(b)
	c.elems = append(c.elems, twoNode{a: na, b: nb,
		y:    func(w float64) complex128 { return y(w / (2 * math.Pi)) },
		desc: desc})
}

// vccs is a voltage-controlled current source: current gm*exp(-jw tau) *
// (V(cp)-V(cm)) flows from dp to dm.
type vccs struct {
	cp, cm, dp, dm int
	gm             float64
	tau            float64
	desc           string
}

func (e vccs) describe() string { return e.desc }

func (e vccs) stamp(y *mathx.CMatrix, w float64) {
	g := complex(e.gm, 0)
	if e.tau != 0 {
		s, cth := math.Sincos(-w * e.tau)
		g *= complex(cth, s)
	}
	add := func(r, c int, v complex128) {
		if r >= 0 && c >= 0 {
			y.Add(r, c, v)
		}
	}
	add(e.dp, e.cp, g)
	add(e.dp, e.cm, -g)
	add(e.dm, e.cp, -g)
	add(e.dm, e.cm, g)
}

// AddVCCS places a voltage-controlled current source: a current
// gm*exp(-j w tau)*(V(cplus)-V(cminus)) flows from dplus to dminus.
func (c *Circuit) AddVCCS(cplus, cminus, dplus, dminus string, gm, tau float64) {
	c.elems = append(c.elems, vccs{
		cp: c.node(cplus), cm: c.node(cminus),
		dp: c.node(dplus), dm: c.node(dminus),
		gm: gm, tau: tau,
		desc: fmt.Sprintf("VCCS %s,%s->%s,%s gm=%g", cplus, cminus, dplus, dminus, gm),
	})
}

// tline stamps a two-conductor transmission line (both ports referenced to
// ground) via its Y-parameters.
type tline struct {
	a, b  int
	zc    func(fHz float64) complex128
	gamma func(fHz float64) complex128
	len   float64
	desc  string
}

func (e tline) describe() string { return e.desc }

func (e tline) stamp(y *mathx.CMatrix, w float64) {
	f := w / (2 * math.Pi)
	abcd := twoport.LineABCD(e.zc(f), e.gamma(f), e.len)
	ym, err := twoport.ABCDToY(abcd)
	if err != nil {
		// A zero-length line degenerates to a through: enormous coupling
		// admittance approximates it.
		ym = twoport.Mat2{{1e12, -1e12}, {-1e12, 1e12}}
	}
	idx := [2]int{e.a, e.b}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if idx[i] >= 0 && idx[j] >= 0 {
				y.Add(idx[i], idx[j], ym[i][j])
			}
		}
	}
}

// AddLine places a transmission line between nodes a and b (both referenced
// to ground) with frequency-dependent characteristic impedance and
// propagation constant.
func (c *Circuit) AddLine(a, b string, zc, gamma func(fHz float64) complex128, length float64) {
	c.elems = append(c.elems, tline{
		a: c.node(a), b: c.node(b), zc: zc, gamma: gamma, len: length,
		desc: fmt.Sprintf("TLINE %s-%s l=%g", a, b, length),
	})
}

// Netlist returns a human-readable listing of the circuit.
func (c *Circuit) Netlist() []string {
	out := make([]string, 0, len(c.elems))
	for _, e := range c.elems {
		out = append(out, e.describe())
	}
	return out
}

// ensureScratch sizes the per-order solver scratch for the current node
// count (matrix contents are left stale; callers Zero before stamping).
func (c *Circuit) ensureScratch() {
	n := len(c.nodeNames)
	if c.y == nil || c.y.Rows() != n {
		c.y = mathx.NewCMatrix(n, n)
		c.rhs = make([]complex128, n)
		c.sol = make([]complex128, n)
	}
}

// assemble builds the nodal admittance matrix at frequency f (Hz) via the
// compiled stamp plan, reusing the circuit's scratch matrix when the order
// is unchanged.
func (c *Circuit) assemble(f float64) *mathx.CMatrix {
	c.ensureScratch()
	c.ensurePlan()
	c.y.Zero()
	w := 2 * math.Pi * f
	for i := range c.plan {
		c.plan[i].stamp(c.y, w)
	}
	return c.y
}

// Solve computes the node voltages for current injections given as a map of
// node name to injected current (amperes, into the node) at frequency f.
func (c *Circuit) Solve(f float64, injections map[string]complex128) (map[string]complex128, error) {
	n := len(c.nodeNames)
	if n == 0 {
		return nil, errors.New("mna: empty circuit")
	}
	y := c.assemble(f)
	for i := range c.rhs {
		c.rhs[i] = 0
	}
	for name, i := range injections {
		idx, ok := c.nodeIndex[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, name)
		}
		c.rhs[idx] = i
	}
	if err := c.lu.Factorize(y); err != nil {
		return nil, fmt.Errorf("mna: solve at %g Hz: %w", f, err)
	}
	if err := c.lu.SolveInto(c.sol, c.rhs); err != nil {
		return nil, fmt.Errorf("mna: solve at %g Hz: %w", f, err)
	}
	out := make(map[string]complex128, n)
	for i, name := range c.nodeNames {
		out[name] = c.sol[i]
	}
	return out, nil
}

// ZParams computes the open-circuit impedance matrix looking into the named
// port nodes (each referenced to ground) at frequency f.
func (c *Circuit) ZParams(f float64, ports []string) (*mathx.CMatrix, error) {
	n := len(ports)
	z := mathx.NewCMatrix(n, n)
	for j, pj := range ports {
		v, err := c.Solve(f, map[string]complex128{pj: 1})
		if err != nil {
			return nil, err
		}
		for i, pi := range ports {
			vi, ok := v[pi]
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, pi)
			}
			z.Set(i, j, vi)
		}
	}
	return z, nil
}

// SParams2 computes two-port S-parameters between the two named port nodes
// over the frequency list, referenced to z0.
//
// The ports are driven terminated, not open-circuited: z0 is stamped at both
// port nodes and each column of S comes from one solve with a 1 V source
// behind z0 (S_ij = 2 V_i - delta_ij). Unlike the earlier Z-parameter
// reduction this stays well-posed for networks whose open-circuit parameters
// do not exist — a series-only ladder with no DC path to ground, or both
// ports on the same node — and it factorizes once per frequency instead of
// once per port.
func (c *Circuit) SParams2(freqs []float64, portIn, portOut string, z0 float64) (*twoport.Network, error) {
	return c.SParamsBand(freqs, portIn, portOut, z0)
}
