package mna

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/twoport"
)

func TestVoltageDividerDC(t *testing.T) {
	c := New()
	c.AddR("in", "mid", 1000)
	c.AddR("mid", "0", 1000)
	// Drive with 1 A into "in": V(in) = 2000, V(mid) = 1000.
	v, err := c.Solve(1, map[string]complex128{"in": 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if cmplx.Abs(v["in"]-2000) > 1e-9 {
		t.Errorf("V(in) = %v, want 2000", v["in"])
	}
	if cmplx.Abs(v["mid"]-1000) > 1e-9 {
		t.Errorf("V(mid) = %v, want 1000", v["mid"])
	}
}

func TestRCLowpassPole(t *testing.T) {
	// 1k / 1nF lowpass: f3dB = 159.15 kHz; at that frequency the transfer
	// magnitude from an ideal source is 1/sqrt(2).
	c := New()
	c.AddR("in", "out", 1000)
	c.AddC("out", "0", 1e-9)
	f3 := 1 / (2 * math.Pi * 1000 * 1e-9)
	// Thevenin drive: 1 A into "in" with a tiny source resistor to ground
	// would complicate; instead check the impedance ratio via Z-params.
	z, err := c.ZParams(f3, []string{"in", "out"})
	if err != nil {
		t.Fatalf("ZParams: %v", err)
	}
	// Transfer V(out)/V(in) with port 2 open = Z21/Z11.
	h := z.At(1, 0) / z.At(0, 0)
	if math.Abs(cmplx.Abs(h)-1/math.Sqrt2) > 1e-9 {
		t.Errorf("|H(f3dB)| = %g, want %g", cmplx.Abs(h), 1/math.Sqrt2)
	}
	// Phase -45 degrees.
	if math.Abs(cmplx.Phase(h)+math.Pi/4) > 1e-9 {
		t.Errorf("phase = %g rad, want -pi/4", cmplx.Phase(h))
	}
}

func TestSeriesLCResonance(t *testing.T) {
	// Series LC from in to out: at resonance the branch is a short, so
	// Z11 measured into "in" with "out" grounded through R equals R.
	c := New()
	c.AddL("in", "mid", 10e-9)
	c.AddC("mid", "out", 1e-12)
	c.AddR("out", "0", 50)
	f0 := 1 / (2 * math.Pi * math.Sqrt(10e-9*1e-12))
	z, err := c.ZParams(f0, []string{"in"})
	if err != nil {
		t.Fatalf("ZParams: %v", err)
	}
	if d := cmplx.Abs(z.At(0, 0) - 50); d > 1e-6 {
		t.Errorf("Z at resonance = %v, want 50 (diff %g)", z.At(0, 0), d)
	}
}

func TestSParamsOfAttenuatorAgainstAlgebra(t *testing.T) {
	// Build the 6 dB tee attenuator in MNA and compare with the chain
	// algebra result at several frequencies.
	a := math.Pow(10, 6.0/20)
	r1 := 50 * (a - 1) / (a + 1)
	r2 := 50 * 2 * a / (a*a - 1)
	c := New()
	c.AddR("p1", "m", r1)
	c.AddR("m", "p2", r1)
	c.AddR("m", "0", r2)
	freqs := []float64{1e9, 1.5e9}
	net, err := c.SParams2(freqs, "p1", "p2", 50)
	if err != nil {
		t.Fatalf("SParams2: %v", err)
	}
	abcd := twoport.SeriesZ(complex(r1, 0)).
		Mul(twoport.ShuntY(complex(1/r2, 0))).
		Mul(twoport.SeriesZ(complex(r1, 0)))
	want, err := twoport.ABCDToS(abcd, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		if d := twoport.MaxAbsDiff(net.S[i], want); d > 1e-9 {
			t.Errorf("f=%g: MNA vs algebra diff %g", freqs[i], d)
		}
	}
}

func TestTransmissionLineStampAgainstAlgebra(t *testing.T) {
	zc := func(float64) complex128 { return 50 }
	gamma := func(f float64) complex128 {
		return complex(0.1, 2*math.Pi*f/3e8*1.8)
	}
	length := 0.03
	c := New()
	c.AddLine("p1", "p2", zc, gamma, length)
	freqs := []float64{1.2e9, 1.6e9}
	net, err := c.SParams2(freqs, "p1", "p2", 50)
	if err != nil {
		t.Fatalf("SParams2: %v", err)
	}
	for i, f := range freqs {
		want, err := twoport.ABCDToS(twoport.LineABCD(zc(f), gamma(f), length), 50)
		if err != nil {
			t.Fatal(err)
		}
		if d := twoport.MaxAbsDiff(net.S[i], want); d > 1e-8 {
			t.Errorf("f=%g: line stamp vs algebra diff %g", f, d)
		}
	}
}

func TestPHEMTSmallSignalCircuitMatchesDevicePackage(t *testing.T) {
	// The decisive cross-check: build the full small-signal equivalent
	// circuit (intrinsic + extrinsics) node by node in MNA and compare its
	// S-parameters against the device package's correlation-matrix
	// embedding pipeline.
	d := device.Golden()
	b := device.Bias{Vgs: 0.56, Vds: 3}
	ss := d.SmallSignalAt(b)
	ex := d.Ext

	c := New()
	// External ports: G (gate pad), D (drain pad). Internal nodes: g, dr,
	// s (common source), and x (the Ri-Cgs midpoint).
	c.AddY("G", "g", func(f float64) complex128 {
		w := 2 * math.Pi * f
		return 1 / complex(ex.Rg, w*ex.Lg)
	}, "Zg")
	c.AddY("D", "dr", func(f float64) complex128 {
		w := 2 * math.Pi * f
		return 1 / complex(ex.Rd, w*ex.Ld)
	}, "Zd")
	c.AddY("s", "0", func(f float64) complex128 {
		w := 2 * math.Pi * f
		return 1 / complex(ex.Rs, w*ex.Ls)
	}, "Zs")
	c.AddC("G", "0", ex.Cpg)
	c.AddC("D", "0", ex.Cpd)
	// Intrinsic: Ri in series with Cgs between g and s via node x.
	c.AddR("g", "x", ss.Ri)
	c.AddC("x", "s", ss.Cgs)
	c.AddC("g", "dr", ss.Cgd)
	c.AddC("dr", "s", ss.Cds)
	c.AddR("dr", "s", 1/ss.Gds)
	// The VCCS is controlled by the voltage across Cgs (x to s).
	c.AddVCCS("x", "s", "dr", "s", ss.Gm, ss.Tau)

	for _, f := range []float64{1.1e9, 1.575e9, 2.4e9} {
		net, err := c.SParams2([]float64{f}, "G", "D", 50)
		if err != nil {
			t.Fatalf("SParams2: %v", err)
		}
		want, err := d.SAt(b, f, 50)
		if err != nil {
			t.Fatalf("device.SAt: %v", err)
		}
		if diff := twoport.MaxAbsDiff(net.S[0], want); diff > 1e-6 {
			t.Errorf("f=%g: MNA circuit vs embedding pipeline diff %g\nMNA: %v\ndev: %v",
				f, diff, net.S[0], want)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	c := New()
	if _, err := c.Solve(1e9, nil); err == nil {
		t.Error("empty circuit accepted")
	}
	c.AddR("a", "0", 50)
	if _, err := c.Solve(1e9, map[string]complex128{"nope": 1}); err == nil {
		t.Error("unknown injection node accepted")
	}
	if _, err := c.ZParams(1e9, []string{"nope"}); err == nil {
		t.Error("unknown port node accepted")
	}
	// Floating node makes the matrix singular.
	c2 := New()
	c2.AddR("a", "b", 50) // no ground reference anywhere
	if _, err := c2.Solve(1e9, map[string]complex128{"a": 1}); err == nil {
		t.Error("singular (floating) circuit accepted")
	}
}

func TestNetlistDescribesElements(t *testing.T) {
	c := New()
	c.AddR("a", "0", 50)
	c.AddC("a", "b", 1e-12)
	c.AddL("b", "0", 1e-9)
	c.AddVCCS("a", "0", "b", "0", 0.1, 0)
	nl := c.Netlist()
	if len(nl) != 4 {
		t.Fatalf("netlist entries = %d, want 4", len(nl))
	}
	if c.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2", c.NumNodes())
	}
}

// TestSParams2SeriesOnlyNetwork is the regression for a bug the verify
// harness found: SParams2 reduced open-circuit Z-parameters, which do not
// exist for a network with no DC path to ground, so a lone series resistor
// failed with a singular solve. The terminated-drive formulation must return
// the textbook S-matrix: S11 = R/(R+2Z0), S21 = 2Z0/(R+2Z0).
func TestSParams2SeriesOnlyNetwork(t *testing.T) {
	c := New()
	c.AddR("in", "out", 50)
	n, err := c.SParams2([]float64{1e9}, "in", "out", 50)
	if err != nil {
		t.Fatalf("series-only network: %v", err)
	}
	s := n.S[0]
	if d := cmplx.Abs(s[0][0] - complex(1.0/3, 0)); d > 1e-12 {
		t.Errorf("S11 = %v, want 1/3", s[0][0])
	}
	if d := cmplx.Abs(s[1][0] - complex(2.0/3, 0)); d > 1e-12 {
		t.Errorf("S21 = %v, want 2/3", s[1][0])
	}
}

// TestSParams2PortsOnSameNode drives the degenerate two-port whose ports
// share one node: a thru in parallel with a shunt load. For a bare 100-ohm
// shunt R at Z0 = 50: S11 = S21 - 1 = -z0/(z0 + 2R).
func TestSParams2PortsOnSameNode(t *testing.T) {
	c := New()
	c.AddR("in", Ground, 100)
	n, err := c.SParams2([]float64{1e9}, "in", "in", 50)
	if err != nil {
		t.Fatalf("same-node ports: %v", err)
	}
	s := n.S[0]
	want := complex(-50.0/250, 0)
	if d := cmplx.Abs(s[0][0] - want); d > 1e-12 {
		t.Errorf("S11 = %v, want %v", s[0][0], want)
	}
	if d := cmplx.Abs(s[1][0] - (1 + want)); d > 1e-12 {
		t.Errorf("S21 = %v, want %v", s[1][0], 1+want)
	}
}
