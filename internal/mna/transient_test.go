package mna

import (
	"math"
	"testing"

	"gnsslna/internal/device"
)

func TestTransientRCCharge(t *testing.T) {
	// Step into R-C: v(t) = V(1 - exp(-t/RC)).
	c := NewTransient()
	c.AddV("in", "0", StepV(5))
	c.AddR("in", "out", 1e3)
	c.AddC("out", "0", 1e-6) // tau = 1 ms
	wf, err := c.Run(5e-3, 5e-6, []string{"out"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := wf["out"]
	for i, tt := range out.Times {
		want := 5 * (1 - math.Exp(-tt/1e-3))
		if math.Abs(out.V[i]-want) > 0.02 {
			t.Fatalf("t=%g: v = %g, want %g", tt, out.V[i], want)
		}
	}
	if math.Abs(out.Final()-5) > 0.05 {
		t.Errorf("final = %g, want ~5", out.Final())
	}
}

func TestTransientRLDecayToStatic(t *testing.T) {
	// Step into R-L-R divider: at t=0 the inductor blocks; at t=inf it is a
	// short, so v(out) -> V * R2/(R1+R2).
	c := NewTransient()
	c.AddV("in", "0", StepV(2))
	c.AddR("in", "mid", 100)
	c.AddL("mid", "out", 1e-3)
	c.AddR("out", "0", 100)
	wf, err := c.Run(1e-3, 1e-6, []string{"out"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := wf["out"].Final(); math.Abs(got-1) > 0.01 {
		t.Errorf("final divider voltage = %g, want 1", got)
	}
	// Early on the inductor current is near zero: out stays near 0.
	if v0 := wf["out"].V[1]; v0 > 0.1 {
		t.Errorf("inductor passed current instantly: v = %g", v0)
	}
}

func TestTransientLCEnergyConservation(t *testing.T) {
	// A lossless LC tank rung by a brief current pulse must oscillate at
	// f0 = 1/(2 pi sqrt(LC)) with (nearly) constant amplitude under the
	// trapezoidal rule (which is non-dissipative).
	l, cf := 1e-3, 1e-6 // f0 ~ 5.03 kHz
	c := NewTransient()
	pulse := func(t float64) float64 {
		if t < 20e-6 {
			return 1e-3
		}
		return 0
	}
	c.AddI("0", "tank", pulse)
	c.AddL("tank", "0", l)
	c.AddC("tank", "0", cf)
	wf, err := c.Run(2e-3, 0.5e-6, []string{"tank"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := wf["tank"].V
	// Compare peak amplitude in the first and last quarter: trapezoidal
	// integration must not damp the tank appreciably.
	quarter := len(v) / 4
	peak := func(seg []float64) float64 {
		m := 0.0
		for _, x := range seg {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		return m
	}
	p1 := peak(v[quarter/2 : quarter])
	p2 := peak(v[len(v)-quarter:])
	if p1 <= 0 {
		t.Fatal("tank never rang")
	}
	if math.Abs(p2-p1)/p1 > 0.02 {
		t.Errorf("tank amplitude drifted: %g -> %g", p1, p2)
	}
	// Count zero crossings to estimate the frequency.
	crossings := 0
	for i := 1; i < len(v); i++ {
		if (v[i-1] < 0) != (v[i] < 0) {
			crossings++
		}
	}
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*cf))
	wantCrossings := 2 * f0 * 2e-3
	if math.Abs(float64(crossings)-wantCrossings) > 3 {
		t.Errorf("crossings = %d, want ~%.0f (f0 %.0f Hz)", crossings, wantCrossings, f0)
	}
}

func TestTransientBiasPowerUpMatchesDC(t *testing.T) {
	// Ramp the supply into the real bias network (divider, drain feed,
	// bypass caps, transistor): the settled transient state must agree
	// with the static DC operating point, and the gate must never
	// overshoot the divider target during the ramp.
	golden := device.Golden()
	build := func() (*TransientCircuit, *DCCircuit) {
		tr := NewTransient()
		tr.AddV("vcc", "0", RampV(5, 1e-4))
		tr.AddR("vcc", "gate", 47e3)
		tr.AddR("gate", "0", 5.1e3)
		tr.AddC("gate", "0", 100e-12)
		tr.AddR("vcc", "drain", 22)
		tr.AddC("drain", "0", 100e-12)
		tr.AddFET(golden.DC, "gate", "drain", "0")

		dc := NewDC()
		dc.AddV("vcc", "0", 5)
		dc.AddR("vcc", "gate", 47e3)
		dc.AddR("gate", "0", 5.1e3)
		dc.AddR("vcc", "drain", 22)
		dc.AddFET(golden.DC, "gate", "drain", "0")
		return tr, dc
	}
	tr, dc := build()
	wf, err := tr.Run(5e-4, 1e-6, []string{"gate", "drain"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	vdc, err := dc.OperatingPoint()
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	if g := wf["gate"].Final(); math.Abs(g-vdc["gate"]) > 1e-3 {
		t.Errorf("settled gate %g vs DC %g", g, vdc["gate"])
	}
	if d := wf["drain"].Final(); math.Abs(d-vdc["drain"]) > 5e-3 {
		t.Errorf("settled drain %g vs DC %g", d, vdc["drain"])
	}
	// No gate overshoot beyond the static divider voltage.
	if mx := wf["gate"].Max(); mx > vdc["gate"]*1.02 {
		t.Errorf("gate overshoot: peak %g vs settled %g", mx, vdc["gate"])
	}
}

func TestTransientValidation(t *testing.T) {
	c := NewTransient()
	if _, err := c.Run(1e-3, 1e-6, nil); err == nil {
		t.Error("empty circuit accepted")
	}
	c.AddR("a", "0", 100)
	if _, err := c.Run(0, 1e-6, nil); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := c.Run(1e-3, 1e-6, []string{"nope"}); err == nil {
		t.Error("unknown watch node accepted")
	}
}
