package obscli

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"gnsslna/internal/experiments"
)

// startSession registers the obscli flags on a fresh flag set, parses args,
// and starts the session.
func startSession(t *testing.T, args ...string) *Session {
	t.Helper()
	fs := flag.NewFlagSet("obscli_test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// sseClient tails the /events stream, reporting generation-event data lines
// on events and stream end on done.
func sseClient(t *testing.T, base string) (events <-chan string, done <-chan struct{}) {
	t.Helper()
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events: status %d", resp.StatusCode)
	}
	evc := make(chan string, 1024)
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		generation := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "event: generation":
				generation = true
			case strings.HasPrefix(line, "data: ") && generation:
				select {
				case evc <- strings.TrimPrefix(line, "data: "):
				default:
				}
				generation = false
			case strings.HasPrefix(line, "event: "):
				generation = false
			}
		}
	}()
	return evc, donec
}

// TestServeSessionEndToEnd is the lnaopt -serve acceptance path: a quick
// design run with -serve 127.0.0.1:0 must expose every registry metric on
// /metrics with cumulative histogram buckets, stream at least one generation
// event to a connected SSE client, and drain the endpoint on SIGINT before
// the run winds down.
func TestServeSessionEndToEnd(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	s := startSession(t, "-serve", "127.0.0.1:0", "-journal", journal)
	addr := s.ServeAddr()
	if addr == "" {
		t.Fatal("ServeAddr empty with -serve set")
	}
	base := "http://" + addr

	events, streamDone := sseClient(t, base)
	deadline := time.Now().Add(5 * time.Second)
	for s.bc.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE client never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("healthz before run: %d %s", code, body)
	}

	ctrl := s.Controller()
	suite := experiments.NewSuite(experiments.Config{
		Seed: 1, Quick: true, Observer: s.Observer(), Control: ctrl,
	})
	if _, err := suite.Design(); err != nil {
		t.Fatalf("quick design: %v", err)
	}

	// The run has finished but its last events may still be in flight to
	// the SSE reader; allow a bounded wait.
	select {
	case data := <-events:
		var payload struct {
			Event string `json:"event"`
			Scope string `json:"scope"`
			Gen   int    `json:"gen"`
		}
		if err := json.Unmarshal([]byte(data), &payload); err != nil {
			t.Fatalf("generation event payload %q: %v", data, err)
		}
		if payload.Event != "generation" || payload.Scope == "" {
			t.Fatalf("generation event payload = %+v", payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no generation event reached the SSE client during the run")
	}

	checkMetricsExposition(t, s, base)

	if code, body := get(t, base+"/runs"); code != http.StatusOK || !strings.Contains(body, "run.jsonl") {
		t.Fatalf("/runs: %d %s", code, body)
	}

	// First Ctrl-C: the cooperative stop must drain the telemetry endpoint —
	// the SSE stream ends and the listener closes — while the session (and
	// its best-so-far reporting) is still alive.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open 5s after SIGINT")
	}
	if err := ctrl.Check(); err == nil {
		t.Error("controller still running after SIGINT")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("telemetry listener still accepting connections after shutdown")
	}
}

// checkMetricsExposition scrapes /metrics and verifies that every metric in
// the registry snapshot appears, and that histogram buckets are cumulative
// with the +Inf bucket equal to the sample count.
func checkMetricsExposition(t *testing.T, s *Session, base string) {
	t.Helper()
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	snap := s.Registry().Snapshot()
	total := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
	if total == 0 {
		t.Fatal("registry empty after a design run")
	}
	for name := range snap.Counters {
		if !strings.Contains(body, fmt.Sprintf("{name=%q}", name)) {
			t.Errorf("counter %q missing from exposition", name)
		}
	}
	for name := range snap.Gauges {
		if !strings.Contains(body, fmt.Sprintf("{name=%q}", name)) {
			t.Errorf("gauge %q missing from exposition", name)
		}
	}
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		var counts []float64
		infCount, sampleCount := -1.0, -1.0
		for _, line := range strings.Split(body, "\n") {
			switch {
			case strings.Contains(line, fmt.Sprintf(`_bucket{name=%q,le=`, name)):
				fields := strings.Fields(line)
				v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
				if err != nil {
					t.Fatalf("bucket line %q: %v", line, err)
				}
				counts = append(counts, v)
				if strings.Contains(line, `le="+Inf"`) {
					infCount = v
				}
			case strings.Contains(line, fmt.Sprintf("_count{name=%q}", name)):
				fields := strings.Fields(line)
				sampleCount, _ = strconv.ParseFloat(fields[len(fields)-1], 64)
			}
		}
		if len(counts) == 0 {
			t.Errorf("histogram %q has no bucket lines", name)
			continue
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				t.Errorf("histogram %q buckets not cumulative at %d: %v", name, i, counts)
				break
			}
		}
		if infCount != sampleCount || sampleCount < 0 {
			t.Errorf("histogram %q: +Inf bucket %v != count %v", name, infCount, sampleCount)
		}
	}
}

// TestInertSessionWithoutFlags pins the zero-overhead path: no flags, no
// observer, no endpoint, Close is a no-op.
func TestInertSessionWithoutFlags(t *testing.T) {
	s := startSession(t)
	if s.Observer() != nil || s.Registry() != nil || s.ServeAddr() != "" {
		t.Fatal("inert session built observability state")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServeWithoutJournal serves the endpoint with only -serve set; /runs
// falls back to the current directory and /metrics serves the registry.
func TestServeWithoutJournal(t *testing.T) {
	s := startSession(t, "-serve", "127.0.0.1:0")
	defer s.Close()
	if s.Observer() == nil {
		t.Fatal("-serve alone must still build an observer")
	}
	if code, _ := get(t, "http://"+s.ServeAddr()+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if code, _ := get(t, "http://"+s.ServeAddr()+"/runs"); code != http.StatusOK {
		t.Fatalf("/runs status %d", code)
	}
}

func TestServeBadAddressFailsStart(t *testing.T) {
	fs := flag.NewFlagSet("obscli_test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-serve", "256.256.256.256:bad"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start(); err == nil {
		t.Fatal("bad -serve address accepted")
	}
}
