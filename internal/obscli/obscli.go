// Package obscli wires the observability and resilience layers into the
// command-line tools: it registers the shared -journal, -metrics and -pprof
// flags plus the run-control flags (-timeout, -max-evals, -checkpoint,
// -resume, -restarts), assembles the metrics registry / run journal behind
// them, publishes the registry through expvar, and handles teardown.
// Commands call Register before flag.Parse, Start after it, thread
// Session.Observer() and Session.Controller() into the pipelines, and defer
// Session.Close.
package obscli

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// expvarName is the key the metrics registry is published under; expvar's
// /debug/vars endpoint then exposes the snapshot alongside the runtime vars.
const expvarName = "gnsslna"

// Flags holds the observability and run-control command-line flags.
type Flags struct {
	// Journal is the JSONL run-journal path ("" disables).
	Journal string
	// Metrics requests a metrics snapshot dump on exit.
	Metrics bool
	// Pprof is the listen address for net/http/pprof and expvar
	// ("" disables).
	Pprof string
	// Timeout bounds the run wall-clock time (0: unbounded).
	Timeout time.Duration
	// MaxEvals bounds the total objective evaluations (0: unbounded).
	MaxEvals int64
	// Checkpoint is the JSONL stage-checkpoint path: completed pipeline
	// stages are appended to it and restored from it on a later run with
	// the same seed and budgets ("" disables).
	Checkpoint string
	// Restarts bounds the jittered multi-start recoveries after
	// circuit-breaker trips (0: single attempt).
	Restarts int
}

// Register installs the observability flags (-journal, -metrics, -pprof)
// and the run-control flags (-timeout, -max-evals, -checkpoint, -resume,
// -restarts) on the flag set. -resume is an alias of -checkpoint that
// reads more naturally when pointing a fresh run at an existing file.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Journal, "journal", "", "write a JSONL run journal to this `path`")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics snapshot when the run finishes")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof and expvar on this `address` (e.g. localhost:6060)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "stop the run after this wall-clock `duration`, keeping the best result so far (0: unbounded)")
	fs.Int64Var(&f.MaxEvals, "max-evals", 0, "stop the run after `N` objective evaluations, keeping the best result so far (0: unbounded)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "append completed pipeline stages to this JSONL `path` and reuse matching stages already recorded there")
	fs.StringVar(&f.Checkpoint, "resume", "", "alias of -checkpoint: resume from (and keep extending) a previous run's stage file")
	fs.IntVar(&f.Restarts, "restarts", 0, "allow up to `N` jittered multi-start recoveries after circuit-breaker trips")
	return f
}

// Session is the live observability context of one command run.
type Session struct {
	flags       Flags
	reg         *obs.Registry
	j           *obs.Journal
	hub         *obs.Hub
	stopSignals context.CancelFunc
}

// Start opens the journal (when requested), assembles the hub, publishes the
// registry under expvar, and serves pprof when an address is given. When no
// observability flag is set it returns an inert session whose Observer is
// nil, keeping the pipelines' hot loops free of instrumentation.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: *f}
	if f.Journal == "" && !f.Metrics && f.Pprof == "" {
		return s, nil
	}
	if f.Journal != "" {
		j, err := obs.OpenJournal(f.Journal)
		if err != nil {
			return nil, fmt.Errorf("obscli: %w", err)
		}
		s.j = j
	}
	s.reg = obs.NewRegistry()
	s.hub = obs.NewHub(s.reg, s.j)
	// Publish is idempotent across sessions in one process (tests): expvar
	// panics on duplicate names, so only the first session owns the name.
	if expvar.Get(expvarName) == nil {
		expvar.Publish(expvarName, s.reg)
	}
	if f.Pprof != "" {
		go func(addr string) {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obscli: pprof server:", err)
			}
		}(f.Pprof)
	}
	return s, nil
}

// Observer returns the session's observer, or nil when observation is
// disabled (callers can pass the result straight into the pipelines).
func (s *Session) Observer() obs.Observer {
	if s.hub == nil {
		return nil
	}
	return s.hub
}

// Registry exposes the metrics registry (nil when observation is disabled).
func (s *Session) Registry() *obs.Registry { return s.reg }

// Controller builds the run controller for the session's -timeout and
// -max-evals flags and arms SIGINT: the first Ctrl-C cancels the run
// cooperatively (the solvers return their best-so-far result), a second
// one terminates the process as usual. It returns a live controller even
// when no limit flag is set, so every command run stays interruptible.
func (s *Session) Controller() *resilience.RunController {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	s.stopSignals = stop
	co := resilience.ControllerOptions{Context: ctx, MaxEvals: s.flags.MaxEvals}
	if s.flags.Timeout > 0 {
		co.Deadline = time.Now().Add(s.flags.Timeout)
	}
	return resilience.NewController(co)
}

// Checkpoint returns the -checkpoint/-resume path ("" when disabled).
func (s *Session) Checkpoint() string { return s.flags.Checkpoint }

// Restarts returns the -restarts budget.
func (s *Session) Restarts() int { return s.flags.Restarts }

// Close appends the final metrics snapshot to the journal, flushes and
// closes it, and prints the snapshot to stdout when -metrics was given.
func (s *Session) Close() error {
	var firstErr error
	if s.stopSignals != nil {
		s.stopSignals()
	}
	if s.j != nil {
		if err := s.j.AppendSnapshot(s.reg); err != nil {
			firstErr = err
		}
		if err := s.j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.flags.Metrics && s.reg != nil {
		fmt.Println("\nmetrics snapshot:")
		if err := s.reg.WriteText(os.Stdout); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
