// Package obscli wires the observability and resilience layers into the
// command-line tools: it registers the shared -journal, -metrics, -pprof and
// -serve flags plus the run-control flags (-timeout, -max-evals, -checkpoint,
// -resume, -restarts), assembles the metrics registry / run journal / live
// telemetry endpoint behind them, publishes the registry through expvar, and
// handles teardown. Commands call Register before flag.Parse, Start after it,
// thread Session.Observer() and Session.Controller() into the pipelines, and
// defer Session.Close.
package obscli

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/obs/export"
	"gnsslna/internal/resilience"
)

// expvarName is the key the metrics registry is published under; expvar's
// /debug/vars endpoint then exposes the snapshot alongside the runtime vars.
const expvarName = "gnsslna"

// Flags holds the observability and run-control command-line flags.
type Flags struct {
	// Journal is the JSONL run-journal path ("" disables).
	Journal string
	// Metrics requests a metrics snapshot dump on exit.
	Metrics bool
	// Pprof is the listen address for net/http/pprof and expvar
	// ("" disables).
	Pprof string
	// Serve is the listen address of the live telemetry endpoint: /metrics
	// (Prometheus text format), /healthz, /runs, /events (SSE) and
	// /debug/pprof ("" disables).
	Serve string
	// Timeout bounds the run wall-clock time (0: unbounded).
	Timeout time.Duration
	// MaxEvals bounds the total objective evaluations (0: unbounded).
	MaxEvals int64
	// Checkpoint is the JSONL stage-checkpoint path: completed pipeline
	// stages are appended to it and restored from it on a later run with
	// the same seed and budgets ("" disables).
	Checkpoint string
	// Restarts bounds the jittered multi-start recoveries after
	// circuit-breaker trips (0: single attempt).
	Restarts int
	// Workers bounds the goroutines used to fan out candidate evaluations
	// (1: serial; results are identical for any worker count).
	Workers int
}

// Register installs the observability flags (-journal, -metrics, -pprof,
// -serve) and the run-control flags (-timeout, -max-evals, -checkpoint, -resume,
// -restarts) on the flag set. -resume is an alias of -checkpoint that
// reads more naturally when pointing a fresh run at an existing file.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Journal, "journal", "", "write a JSONL run journal to this `path`")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics snapshot when the run finishes")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof and expvar on this `address` (e.g. localhost:6060)")
	fs.StringVar(&f.Serve, "serve", "", "serve the live telemetry endpoint (/metrics, /healthz, /runs, /events, /debug/pprof) on this `address` (port 0 picks a free port)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "stop the run after this wall-clock `duration`, keeping the best result so far (0: unbounded)")
	fs.Int64Var(&f.MaxEvals, "max-evals", 0, "stop the run after `N` objective evaluations, keeping the best result so far (0: unbounded)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "append completed pipeline stages to this JSONL `path` and reuse matching stages already recorded there")
	fs.StringVar(&f.Checkpoint, "resume", "", "alias of -checkpoint: resume from (and keep extending) a previous run's stage file")
	fs.IntVar(&f.Restarts, "restarts", 0, "allow up to `N` jittered multi-start recoveries after circuit-breaker trips")
	fs.IntVar(&f.Workers, "workers", 1, "fan candidate evaluations across `N` goroutines (results are identical for any worker count)")
	return f
}

// Session is the live observability context of one command run.
type Session struct {
	flags       Flags
	reg         *obs.Registry
	j           *obs.Journal
	hub         *obs.Hub
	bc          *export.Broadcaster
	srv         *export.Server
	tracer      *obs.Tracer
	traced      *obs.Traced
	sampler     *obs.RuntimeSampler
	runScope    string
	runStart    time.Time
	ctrl        atomic.Pointer[resilience.RunController]
	stopSignals context.CancelFunc
}

// Start opens the journal (when requested), assembles the hub, publishes the
// registry under expvar, serves pprof when an address is given, and starts
// the live telemetry endpoint behind -serve. When no observability flag is
// set it returns an inert session whose Observer is nil, keeping the
// pipelines' hot loops free of instrumentation.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: *f}
	if f.Journal == "" && !f.Metrics && f.Pprof == "" && f.Serve == "" {
		return s, nil
	}
	if f.Journal != "" {
		j, err := obs.OpenJournal(f.Journal)
		if err != nil {
			return nil, fmt.Errorf("obscli: %w", err)
		}
		s.j = j
	}
	s.reg = obs.NewRegistry()
	s.hub = obs.NewHub(s.reg, s.j)
	// Publish is idempotent across sessions in one process (tests): expvar
	// panics on duplicate names, so only the first session owns the name.
	if expvar.Get(expvarName) == nil {
		expvar.Publish(expvarName, s.reg)
	}
	if f.Pprof != "" {
		go func(addr string) {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obscli: pprof server:", err)
			}
		}(f.Pprof)
	}
	if f.Serve != "" {
		s.bc = export.NewBroadcaster()
		runsDir := "."
		if f.Journal != "" {
			runsDir = filepath.Dir(f.Journal)
		}
		srv, err := export.Serve(f.Serve, export.Options{
			Registry:  s.reg,
			Broadcast: s.bc,
			Health:    s.health,
			RunsDir:   runsDir,
		})
		if err != nil {
			if s.j != nil {
				_ = s.j.Close()
			}
			return nil, fmt.Errorf("obscli: telemetry server: %w", err)
		}
		s.srv = srv
		fmt.Fprintf(os.Stderr, "obscli: telemetry endpoint on http://%s\n", srv.Addr())
	}

	// Every observed run is traced: the tracer stamps run/span identity onto
	// each event, the root "run.<tool>" span brackets the whole command, and
	// the outlier detector arms the pool's slow-evaluation flagging.
	sink := obs.Observer(s.hub)
	if s.bc != nil {
		sink = obs.Multi(s.hub, s.bc)
		s.bc.CountDrops(s.reg.Counter("sse.dropped"))
	}
	s.tracer = obs.NewTracer()
	s.tracer.SetOutliers(obs.NewOutlierDetector())
	s.traced = obs.NewTraced(sink, s.tracer)
	s.runScope = "run." + filepath.Base(os.Args[0])
	s.runStart = time.Now()
	s.traced.Observe(obs.Event{Kind: obs.KindSpanBegin, Scope: s.runScope})

	// Process health: runtime gauges land in the registry (the
	// gnsslna_runtime_* families on /metrics); the sample events go only to
	// the SSE stream — routing them through the hub would collide the gauge
	// names with the hub's sample histograms.
	var health obs.Observer
	if s.bc != nil {
		health = s.bc
	}
	s.sampler = obs.StartRuntimeSampler(s.reg, health, 0)
	return s, nil
}

// health adapts the session's run controller (set by Controller) for the
// telemetry endpoint's /healthz probe. Before Controller runs — or when no
// limits apply — the nil controller reports a healthy, unbounded run.
func (s *Session) health() resilience.HealthState {
	return s.ctrl.Load().Health()
}

// Observer returns the session's observer, or nil when observation is
// disabled (callers can pass the result straight into the pipelines). The
// observer is the run's root traced span: every event a pipeline emits
// through it carries the session's trace identity, and with -serve active
// the stamped events fan out to the SSE broadcaster as well.
func (s *Session) Observer() obs.Observer {
	if s.traced == nil {
		return nil
	}
	return s.traced
}

// Tracer exposes the session's span allocator (nil when observation is
// disabled).
func (s *Session) Tracer() *obs.Tracer { return s.tracer }

// Registry exposes the metrics registry (nil when observation is disabled).
func (s *Session) Registry() *obs.Registry { return s.reg }

// Controller builds the run controller for the session's -timeout and
// -max-evals flags and arms SIGINT: the first Ctrl-C cancels the run
// cooperatively (the solvers return their best-so-far result), a second
// one terminates the process as usual. It returns a live controller even
// when no limit flag is set, so every command run stays interruptible.
func (s *Session) Controller() *resilience.RunController {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	s.stopSignals = stop
	co := resilience.ControllerOptions{Context: ctx, MaxEvals: s.flags.MaxEvals}
	if s.flags.Timeout > 0 {
		co.Deadline = time.Now().Add(s.flags.Timeout)
	}
	c := resilience.NewController(co)
	s.ctrl.Store(c)
	if s.srv != nil {
		// Drain the telemetry endpoint as soon as the run is cancelled:
		// SSE clients see their streams end and the listener closes while
		// the solvers are still unwinding to their best-so-far result.
		// Close() also cancels ctx, so this goroutine never leaks.
		go func() {
			<-ctx.Done()
			s.shutdownServer()
		}()
	}
	return c
}

// shutdownServer drains the telemetry server (idempotent, bounded wait).
func (s *Session) shutdownServer() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// ServeAddr returns the telemetry endpoint's bound listen address (the
// resolved port when -serve used port 0), or "" when -serve is off.
func (s *Session) ServeAddr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}

// Checkpoint returns the -checkpoint/-resume path ("" when disabled).
func (s *Session) Checkpoint() string { return s.flags.Checkpoint }

// Restarts returns the -restarts budget.
func (s *Session) Restarts() int { return s.flags.Restarts }

// Workers returns the -workers fan-out width (>= 1).
func (s *Session) Workers() int {
	if s.flags.Workers < 1 {
		return 1
	}
	return s.flags.Workers
}

// Close drains the telemetry server, appends the final metrics snapshot to
// the journal, flushes and closes it, and prints the snapshot to stdout when
// -metrics was given.
func (s *Session) Close() error {
	var firstErr error
	if s.stopSignals != nil {
		s.stopSignals()
	}
	if s.sampler != nil {
		// Final health sample before the root span closes, so even a short
		// run journals and exports one snapshot.
		s.sampler.Stop()
	}
	if s.traced != nil {
		s.traced.Observe(obs.Event{
			Kind:  obs.KindSpanEnd,
			Scope: s.runScope,
			Value: float64(time.Since(s.runStart)) / float64(time.Millisecond),
		})
	}
	if err := s.shutdownServer(); err != nil {
		firstErr = err
	}
	if s.j != nil {
		if err := s.j.AppendSnapshot(s.reg); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.flags.Metrics && s.reg != nil {
		fmt.Println("\nmetrics snapshot:")
		if err := s.reg.WriteText(os.Stdout); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
