// Package obscli wires the observability layer into the command-line tools:
// it registers the shared -journal, -metrics and -pprof flags, assembles the
// metrics registry / run journal behind them, publishes the registry through
// expvar, and handles teardown. Commands call Register before flag.Parse,
// Start after it, thread Session.Observer() into the pipelines, and defer
// Session.Close.
package obscli

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"gnsslna/internal/obs"
)

// expvarName is the key the metrics registry is published under; expvar's
// /debug/vars endpoint then exposes the snapshot alongside the runtime vars.
const expvarName = "gnsslna"

// Flags holds the observability command-line flags.
type Flags struct {
	// Journal is the JSONL run-journal path ("" disables).
	Journal string
	// Metrics requests a metrics snapshot dump on exit.
	Metrics bool
	// Pprof is the listen address for net/http/pprof and expvar
	// ("" disables).
	Pprof string
}

// Register installs -journal, -metrics and -pprof on the flag set.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Journal, "journal", "", "write a JSONL run journal to this `path`")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics snapshot when the run finishes")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof and expvar on this `address` (e.g. localhost:6060)")
	return f
}

// Session is the live observability context of one command run.
type Session struct {
	flags Flags
	reg   *obs.Registry
	j     *obs.Journal
	hub   *obs.Hub
}

// Start opens the journal (when requested), assembles the hub, publishes the
// registry under expvar, and serves pprof when an address is given. When no
// observability flag is set it returns an inert session whose Observer is
// nil, keeping the pipelines' hot loops free of instrumentation.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: *f}
	if f.Journal == "" && !f.Metrics && f.Pprof == "" {
		return s, nil
	}
	if f.Journal != "" {
		j, err := obs.OpenJournal(f.Journal)
		if err != nil {
			return nil, fmt.Errorf("obscli: %w", err)
		}
		s.j = j
	}
	s.reg = obs.NewRegistry()
	s.hub = obs.NewHub(s.reg, s.j)
	// Publish is idempotent across sessions in one process (tests): expvar
	// panics on duplicate names, so only the first session owns the name.
	if expvar.Get(expvarName) == nil {
		expvar.Publish(expvarName, s.reg)
	}
	if f.Pprof != "" {
		go func(addr string) {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obscli: pprof server:", err)
			}
		}(f.Pprof)
	}
	return s, nil
}

// Observer returns the session's observer, or nil when observation is
// disabled (callers can pass the result straight into the pipelines).
func (s *Session) Observer() obs.Observer {
	if s.hub == nil {
		return nil
	}
	return s.hub
}

// Registry exposes the metrics registry (nil when observation is disabled).
func (s *Session) Registry() *obs.Registry { return s.reg }

// Close appends the final metrics snapshot to the journal, flushes and
// closes it, and prints the snapshot to stdout when -metrics was given.
func (s *Session) Close() error {
	var firstErr error
	if s.j != nil {
		if err := s.j.AppendSnapshot(s.reg); err != nil {
			firstErr = err
		}
		if err := s.j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.flags.Metrics && s.reg != nil {
		fmt.Println("\nmetrics snapshot:")
		if err := s.reg.WriteText(os.Stdout); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
