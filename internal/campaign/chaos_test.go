package campaign

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chaosSpec is the 4-cell campaign the SIGKILL proof runs: budgets big
// enough that the kill lands mid-campaign, small enough to keep the test
// quick.
func chaosSpec() *Spec {
	s := &Spec{
		Version: 1, Name: "chaos", Seed: 1, Quick: true, Workers: 1,
		Budget: Budget{GlobalEvals: 1500, PolishEvals: 600},
		Axes: Axes{
			Bands: []BandAxis{{Name: "l1", FLowHz: 1.559e9, FHighHz: 1.61e9, Points: 3}},
			Specs: []SpecAxis{{Name: "gnss", NFMaxDB: 0.9, GTMinDB: 14, S11MaxDB: -10, S22MaxDB: -10, PdcMaxW: 0.25}},
			Seeds: []int64{1, 2, 3, 4},
		},
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// TestCampaignChaosChild is not a test: it is the campaign process the
// SIGKILL proof below re-executes and murders. It runs the chaos campaign
// serially into CAMPAIGN_CHAOS_DIR, printing one CELL line per durably
// checkpointed cell (Logf fires after SaveCheckpoint returns).
func TestCampaignChaosChild(t *testing.T) {
	if os.Getenv("CAMPAIGN_CHAOS_CHILD") != "1" {
		t.Skip("helper process for TestCampaignChaosSIGKILLResumesBitIdentical")
	}
	_, err := Run(chaosSpec(), RunOptions{
		OutDir: os.Getenv("CAMPAIGN_CHAOS_DIR"), Parallel: 1,
		Logf: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if strings.HasPrefix(line, "cell ") {
				fmt.Printf("CELL %s\n", line)
			}
		},
	})
	if err != nil {
		fmt.Printf("CHILD-ERROR %v\n", err)
		os.Exit(1)
	}
	fmt.Println("CHILD-DONE")
}

// TestCampaignChaosSIGKILLResumesBitIdentical is the resume proof the
// campaign engine is built around: a campaign process SIGKILLed mid-run
// (at least one cell checkpointed, at least one not) is resumed over the
// same directory, and the merged summary must be byte-identical to an
// uninterrupted reference run — same JSON, same RESULTS.md.
func TestCampaignChaosSIGKILLResumesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos proof skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCampaignChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(), "CAMPAIGN_CHAOS_CHILD=1", "CAMPAIGN_CHAOS_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	defer cmd.Process.Kill()

	// Kill as soon as the first cell is durably checkpointed: the CELL
	// line is printed only after SaveCheckpoint's atomic rename returned.
	sc := bufio.NewScanner(stdout)
	killed := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "CHILD-ERROR"):
			t.Fatalf("child failed: %s", line)
		case line == "CHILD-DONE":
		case strings.HasPrefix(line, "CELL "):
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			killed = true
		}
		if killed {
			break
		}
	}
	_ = cmd.Wait()
	if !killed {
		t.Fatal("child finished before a single cell checkpoint appeared")
	}

	recs := bytes.Count(readFile(t, filepath.Join(dir, CheckpointFile)), []byte("\n"))
	if recs == 0 {
		t.Fatal("no checkpoint record survived the kill")
	}
	if recs >= 4 {
		t.Skipf("kill landed after all %d cells finished; nothing left to resume", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, SummaryFile)); !os.IsNotExist(err) {
		t.Fatalf("summary exists after mid-run kill (stat err %v); the kill landed too late", err)
	}

	// Uninterrupted reference.
	refDir := t.TempDir()
	if _, err := Run(chaosSpec(), RunOptions{OutDir: refDir, Parallel: 1}); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Resume over the killed directory: the checkpointed cells restore,
	// the rest recompute, and the merged artifacts must match the
	// reference byte for byte.
	var logged strings.Builder
	start := time.Now()
	if _, err := Run(chaosSpec(), RunOptions{OutDir: dir, Parallel: 1,
		Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }}); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	t.Logf("resumed %d-cell campaign with %d checkpointed in %v", 4, recs, time.Since(start))
	if !strings.Contains(logged.String(), fmt.Sprintf("%d restored from checkpoint", recs)) {
		t.Fatalf("resume restored fewer cells than were checkpointed:\n%s", logged.String())
	}
	for _, name := range []string{SummaryFile, ResultsFile} {
		got := readFile(t, filepath.Join(dir, name))
		want := readFile(t, filepath.Join(refDir, name))
		if !bytes.Equal(got, want) {
			t.Errorf("resumed %s differs from uninterrupted reference:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
		}
	}
}
