package campaign

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -update): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("%s mismatch:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunTwoCellCampaign(t *testing.T) {
	spec := testSpec()
	spec.Axes.Algorithms = []string{"attain", "nsga2"}
	dir := t.TempDir()
	s, err := Run(spec, RunOptions{OutDir: dir, Parallel: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.CellCount != 2 || len(s.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", s.CellCount)
	}
	if s.OKCount != 2 {
		t.Fatalf("ok = %d, want 2: %+v", s.OKCount, s.Cells)
	}
	for _, c := range s.Cells {
		if c.Evals == 0 || c.WorstNFdB.IsNaN() {
			t.Fatalf("cell %s has no graded result: %+v", c.ID, c)
		}
	}
	if s.Cells[1].FrontSize == 0 {
		t.Fatalf("nsga2 cell reports empty front: %+v", s.Cells[1])
	}
	// Artifacts present and consistent.
	loaded, err := LoadSummary(filepath.Join(dir, SummaryFile))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SpecDigest != spec.Digest() {
		t.Fatalf("summary digest %s, want %s", loaded.SpecDigest, spec.Digest())
	}
	md := string(readFile(t, filepath.Join(dir, ResultsFile)))
	for _, c := range s.Cells {
		if !strings.Contains(md, c.ID) {
			t.Fatalf("RESULTS.md misses cell %s:\n%s", c.ID, md)
		}
	}
}

// TestRunResumeBitIdentical pins the resume guarantee: a campaign with a
// partial checkpoint (simulating a killed run) completes to summary bytes
// identical to an uninterrupted reference, and completed cells are not
// recomputed.
func TestRunResumeBitIdentical(t *testing.T) {
	spec := testSpec()
	spec.Axes.Seeds = []int64{1, 2}

	refDir := t.TempDir()
	if _, err := Run(spec, RunOptions{OutDir: refDir, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	refSummary := readFile(t, filepath.Join(refDir, SummaryFile))
	refResults := readFile(t, filepath.Join(refDir, ResultsFile))

	// A "killed" run: keep only the first checkpoint record (the atomic
	// checkpoint writer guarantees whole-record prefixes).
	ckpt := readFile(t, filepath.Join(refDir, CheckpointFile))
	lines := bytes.SplitAfter(ckpt, []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("reference checkpoint has %d records, want >= 2", len(lines))
	}
	partialDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(partialDir, CheckpointFile), lines[0], 0o644); err != nil {
		t.Fatal(err)
	}

	var logged strings.Builder
	if _, err := Run(spec, RunOptions{OutDir: partialDir, Parallel: 1,
		Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logged.String(), "1 restored from checkpoint") {
		t.Fatalf("resume did not restore the checkpointed cell:\n%s", logged.String())
	}
	if got := readFile(t, filepath.Join(partialDir, SummaryFile)); !bytes.Equal(got, refSummary) {
		t.Errorf("resumed summary differs from uninterrupted reference:\n--- ref ---\n%s\n--- resumed ---\n%s", refSummary, got)
	}
	if got := readFile(t, filepath.Join(partialDir, ResultsFile)); !bytes.Equal(got, refResults) {
		t.Errorf("resumed RESULTS.md differs from uninterrupted reference")
	}
}

// TestRunRerunRestoresEverything pins full-restore idempotence: re-running
// a finished campaign restores every cell and rewrites identical bytes.
func TestRunRerunRestoresEverything(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	if _, err := Run(spec, RunOptions{OutDir: dir, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	first := readFile(t, filepath.Join(dir, SummaryFile))
	var logged strings.Builder
	if _, err := Run(spec, RunOptions{OutDir: dir, Parallel: 1,
		Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logged.String(), "1 cells, 1 restored from checkpoint") {
		t.Fatalf("rerun recomputed cells:\n%s", logged.String())
	}
	if got := readFile(t, filepath.Join(dir, SummaryFile)); !bytes.Equal(got, first) {
		t.Error("rerun changed summary bytes")
	}
}

// TestRunStaleCheckpointIgnored pins the digest guard: checkpoints written
// under a different spec definition are never restored into a run.
func TestRunStaleCheckpointIgnored(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	if _, err := Run(spec, RunOptions{OutDir: dir, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	// Same cell grid, different budget: the digest changes, the cell IDs
	// do not — exactly the stale case the digest key exists to catch.
	edited := testSpec()
	edited.Budget.GlobalEvals += 10
	if edited.Expand()[0].ID != spec.Expand()[0].ID {
		t.Fatal("fixture broken: cell IDs should match")
	}
	var logged strings.Builder
	if _, err := Run(edited, RunOptions{OutDir: dir, Parallel: 1,
		Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logged.String(), "0 restored from checkpoint") {
		t.Fatalf("stale checkpoint leaked into an edited campaign:\n%s", logged.String())
	}
}

// TestRunParallelMatchesSerial pins determinism across the cell fan-out:
// the summary bytes are independent of the Parallel setting.
func TestRunParallelMatchesSerial(t *testing.T) {
	spec := testSpec()
	spec.Axes.Seeds = []int64{1, 2}
	serialDir, parDir := t.TempDir(), t.TempDir()
	if _, err := Run(spec, RunOptions{OutDir: serialDir, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunOptions{OutDir: parDir, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	a := readFile(t, filepath.Join(serialDir, SummaryFile))
	b := readFile(t, filepath.Join(parDir, SummaryFile))
	if !bytes.Equal(a, b) {
		t.Error("parallel run changed summary bytes")
	}
}

func TestRunCellErrorRecorded(t *testing.T) {
	// An unknown algorithm smuggled past Normalize must surface as a cell
	// error, not abort the campaign.
	spec := testSpec()
	cells := spec.Expand()
	res := runCell(spec, Cell{ID: "x", Band: cells[0].Band, Spec: cells[0].Spec,
		Substrate: "ro4350", Device: "golden", Algorithm: "pso", Seed: 1}, nil)
	if res.Status != "error" || !strings.Contains(res.Error, "pso") {
		t.Fatalf("res = %+v", res)
	}
}
