package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlite is a deliberately small YAML-subset reader: enough to express
// campaign specs as humans like to write them, without pulling a YAML
// dependency into the module. The supported subset is:
//
//   - block maps (`key: value`, nested blocks indented by spaces)
//   - block lists (`- item`), including lists of maps (`- key: value` with
//     continuation keys indented to the item's column)
//   - inline flow maps `{a: 1, b: two}` and lists `[1, 2.5e9, x]`
//   - scalars: true/false, null/~, integers, floats (incl. 1.15e9),
//     single- or double-quoted strings, bare strings
//   - full-line `# comments` and trailing ` # comments` on unquoted values
//
// Anchors, multi-line strings, multi-document streams and tabs are
// rejected. Parse errors carry 1-based line numbers.
func parseYamlite(data []byte) (any, error) {
	ls, err := splitYamliteLines(data)
	if err != nil {
		return nil, err
	}
	if len(ls) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	v, next, err := parseYamliteBlock(ls, 0, ls[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(ls) {
		return nil, fmt.Errorf("line %d: unexpected outdent or mixed structure", ls[next].num)
	}
	return v, nil
}

// yamliteLine is one non-blank content line.
type yamliteLine struct {
	num    int // 1-based source line
	indent int // leading spaces
	text   string
}

func splitYamliteLines(data []byte) ([]yamliteLine, error) {
	var out []yamliteLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(trimmed)
		if strings.ContainsRune(line[:indent], '\t') || strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed in indentation", i+1)
		}
		out = append(out, yamliteLine{num: i + 1, indent: indent, text: trimmed})
	}
	return out, nil
}

// parseYamliteBlock parses the block starting at ls[i] whose lines sit at
// exactly `indent`, returning the value and the index of the first line
// after the block.
func parseYamliteBlock(ls []yamliteLine, i, indent int) (any, int, error) {
	if isYamliteListItem(ls[i].text) {
		return parseYamliteList(ls, i, indent)
	}
	return parseYamliteMap(ls, i, indent)
}

func isYamliteListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func parseYamliteMap(ls []yamliteLine, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(ls) && ls[i].indent == indent {
		l := ls[i]
		if isYamliteListItem(l.text) {
			return nil, 0, fmt.Errorf("line %d: list item inside a map block", l.num)
		}
		key, rest, err := splitYamliteKey(l)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		i++
		if rest != "" {
			v, err := parseYamliteFlow(rest, l.num)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			continue
		}
		// Block value: the following lines indented deeper than the key.
		if i >= len(ls) || ls[i].indent <= indent {
			m[key] = nil
			continue
		}
		v, next, err := parseYamliteBlock(ls, i, ls[i].indent)
		if err != nil {
			return nil, 0, err
		}
		m[key], i = v, next
	}
	if i < len(ls) && ls[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indent", ls[i].num)
	}
	return m, i, nil
}

func parseYamliteList(ls []yamliteLine, i, indent int) (any, int, error) {
	var out []any
	for i < len(ls) && ls[i].indent == indent {
		l := ls[i]
		if !isYamliteListItem(l.text) {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		i++
		switch {
		case rest == "":
			// `- ` alone: the item is the following deeper block.
			if i >= len(ls) || ls[i].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, next, err := parseYamliteBlock(ls, i, ls[i].indent)
			if err != nil {
				return nil, 0, err
			}
			out, i = append(out, v), next
		case yamliteLooksLikeMapEntry(rest):
			// `- key: value`: a map item. Reparse the inline fragment plus
			// every continuation line (indented past the dash) as one block
			// whose keys sit at the item's content column; deeper lines are
			// nested values handled by the recursive map parse.
			itemIndent := indent + 2
			item := []yamliteLine{{num: l.num, indent: itemIndent, text: rest}}
			for i < len(ls) && ls[i].indent > indent {
				item = append(item, ls[i])
				i++
			}
			v, _, err := parseYamliteMap(item, 0, itemIndent)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, v)
		default:
			v, err := parseYamliteFlow(rest, l.num)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, v)
		}
	}
	if i < len(ls) && ls[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indent", ls[i].num)
	}
	return out, i, nil
}

// yamliteLooksLikeMapEntry reports whether a list-item fragment starts a
// `key: value` map entry (as opposed to a scalar containing a colon, which
// must be quoted, or a flow value).
func yamliteLooksLikeMapEntry(s string) bool {
	if strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[") ||
		strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "'") {
		return false
	}
	idx := strings.Index(s, ":")
	if idx <= 0 {
		return false
	}
	return idx == len(s)-1 || s[idx+1] == ' '
}

// splitYamliteKey splits `key: rest` (or `key:`), stripping a trailing
// comment from the unquoted remainder.
func splitYamliteKey(l yamliteLine) (key, rest string, err error) {
	idx := strings.Index(l.text, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("line %d: expected `key: value`", l.num)
	}
	key = strings.TrimSpace(l.text[:idx])
	if strings.HasPrefix(key, `"`) || strings.HasPrefix(key, "'") {
		return "", "", fmt.Errorf("line %d: quoted keys are not supported", l.num)
	}
	rest = strings.TrimSpace(l.text[idx+1:])
	return key, rest, nil
}

// parseYamliteFlow parses an inline value: a flow map/list, a quoted
// string, or a scalar (with trailing-comment stripping for unquoted text).
func parseYamliteFlow(s string, lineNum int) (any, error) {
	p := &yamliteFlowParser{s: s, line: lineNum}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.s) && !strings.HasPrefix(p.s[p.pos:], "#") {
		return nil, fmt.Errorf("line %d: trailing garbage %q", lineNum, p.s[p.pos:])
	}
	return v, nil
}

type yamliteFlowParser struct {
	s    string
	pos  int
	line int
}

func (p *yamliteFlowParser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *yamliteFlowParser) skipSpace() {
	for p.pos < len(p.s) && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *yamliteFlowParser) value() (any, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, p.errf("missing value")
	}
	switch p.s[p.pos] {
	case '{':
		return p.flowMap()
	case '[':
		return p.flowList()
	case '"', '\'':
		return p.quoted()
	default:
		return p.bareScalar()
	}
}

func (p *yamliteFlowParser) flowMap() (any, error) {
	p.pos++ // {
	m := map[string]any{}
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == '}' {
		p.pos++
		return m, nil
	}
	for {
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] != ':' {
			p.pos++
		}
		if p.pos >= len(p.s) {
			return nil, p.errf("flow map missing `:`")
		}
		key := strings.TrimSpace(p.s[start:p.pos])
		if key == "" {
			return nil, p.errf("flow map with empty key")
		}
		p.pos++ // :
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, p.errf("duplicate key %q", key)
		}
		m[key] = v
		p.skipSpace()
		if p.pos >= len(p.s) {
			return nil, p.errf("unterminated flow map")
		}
		switch p.s[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return m, nil
		default:
			return nil, p.errf("expected `,` or `}` in flow map, got %q", p.s[p.pos])
		}
	}
}

func (p *yamliteFlowParser) flowList() (any, error) {
	p.pos++ // [
	out := []any{}
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ']' {
		p.pos++
		return out, nil
	}
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.skipSpace()
		if p.pos >= len(p.s) {
			return nil, p.errf("unterminated flow list")
		}
		switch p.s[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected `,` or `]` in flow list, got %q", p.s[p.pos])
		}
	}
}

func (p *yamliteFlowParser) quoted() (any, error) {
	quote := p.s[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.s) {
		if p.s[p.pos] == quote {
			v := p.s[start:p.pos]
			p.pos++
			return v, nil
		}
		p.pos++
	}
	return nil, p.errf("unterminated string")
}

// bareScalar reads up to the next flow delimiter (or trailing comment) and
// types the token: bool, null, integer, float, else string.
func (p *yamliteFlowParser) bareScalar() (any, error) {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ',' || c == '}' || c == ']' {
			break
		}
		if c == '#' && p.pos > start && p.s[p.pos-1] == ' ' {
			break
		}
		p.pos++
	}
	tok := strings.TrimSpace(p.s[start:p.pos])
	if tok == "" {
		return nil, p.errf("missing value")
	}
	switch tok {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "null", "~":
		return nil, nil
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f, nil
	}
	return tok, nil
}
