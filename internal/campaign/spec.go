// Package campaign is the declarative campaign engine: a YAML/JSON spec
// enumerates a (band, spec, substrate, device variant, algorithm, seed)
// grid, the runner expands it into deterministic per-cell design jobs,
// fans them out across the EvalPool worker machinery, checkpoints each
// finished cell through the resilience stage-checkpoint scheme (so a
// partially completed campaign resumes bit-identically), and emits a
// machine-readable campaign.summary.json plus a human RESULTS.md. Two
// summaries diff cell by cell via Diff / `obsreport campaign-diff`.
//
// The paper's contribution is this workflow — enumerate specifications,
// bands and bias conditions, optimize each, compare the fronts — and the
// campaign engine makes every new scenario (an S-band LNA, a C-band
// radio-astronomy front end, a PSO-vs-attainment comparison) a committed
// spec file instead of a hand-rolled shell loop.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Spec is one campaign: the axes whose cross product is the cell grid,
// plus the shared execution knobs.
type Spec struct {
	// Version is the spec schema version (must be 1).
	Version int `json:"version"`
	// Name identifies the campaign (lowercase, digits, dashes).
	Name string `json:"name"`
	// Seed is the default seed when Axes.Seeds is empty (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Quick trims the per-cell optimizer budgets and band grids, exactly
	// like the -quick flag of the CLI tools.
	Quick bool `json:"quick,omitempty"`
	// Workers bounds the per-cell evaluation fan-out (the EvalPool width
	// inside each solver; <= 1: serial). Results are bit-identical for any
	// worker count.
	Workers int `json:"workers,omitempty"`
	// Budget overrides the per-cell optimizer budgets (zero fields keep
	// the quick/full defaults).
	Budget Budget `json:"budget,omitempty"`
	// Axes define the campaign grid.
	Axes Axes `json:"axes"`
}

// Budget overrides the per-cell optimizer budgets.
type Budget struct {
	// GlobalEvals and PolishEvals budget the goal-attainment cells.
	GlobalEvals int `json:"global_evals,omitempty"`
	PolishEvals int `json:"polish_evals,omitempty"`
	// Pop and Generations budget the NSGA-II cells.
	Pop         int `json:"pop,omitempty"`
	Generations int `json:"generations,omitempty"`
}

// Axes are the campaign grid dimensions. Bands and Specs are required;
// the remaining axes default to single-element lists (ro4350, golden,
// attain, and the campaign seed).
type Axes struct {
	Bands      []BandAxis `json:"bands"`
	Specs      []SpecAxis `json:"specs"`
	Substrates []string   `json:"substrates,omitempty"`
	Devices    []string   `json:"devices,omitempty"`
	Algorithms []string   `json:"algorithms,omitempty"`
	Seeds      []int64    `json:"seeds,omitempty"`
}

// BandAxis is one operating band: the in-band evaluation grid and the
// wide out-of-band stability scan.
type BandAxis struct {
	Name string `json:"name"`
	// FLowHz and FHighHz bound the operating band.
	FLowHz  float64 `json:"f_low_hz"`
	FHighHz float64 `json:"f_high_hz"`
	// Points is the number of in-band evaluation frequencies (0: 11, or 7
	// in quick mode).
	Points int `json:"points,omitempty"`
	// StabLowHz and StabHighHz bound the stability scan (0,0: 0.2-6 GHz).
	StabLowHz  float64 `json:"stab_low_hz,omitempty"`
	StabHighHz float64 `json:"stab_high_hz,omitempty"`
}

// SpecAxis is one requirement set: the design goals a cell optimizes
// toward and is graded against.
type SpecAxis struct {
	Name string `json:"name"`
	// NFMaxDB is the worst-case in-band noise-figure goal in dB.
	NFMaxDB float64 `json:"nf_max_db"`
	// GTMinDB is the minimum in-band transducer-gain goal in dB.
	GTMinDB float64 `json:"gt_min_db"`
	// S11MaxDB and S22MaxDB are the return-loss goals in dB.
	S11MaxDB float64 `json:"s11_max_db"`
	S22MaxDB float64 `json:"s22_max_db"`
	// PdcMaxW is the DC power budget in watts (0: unconstrained).
	PdcMaxW float64 `json:"pdc_max_w,omitempty"`
}

// Cell is one expanded grid point: a fully specified design job.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int
	// ID is the deterministic cell identity
	// (<band>.<spec>.<substrate>.<device>.<algorithm>.s<seed>) that keys
	// its stage checkpoint and its row in the summary.
	ID        string
	Band      BandAxis
	Spec      SpecAxis
	Substrate string
	Device    string
	Algorithm string
	Seed      int64
}

var identRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Supported axis vocabularies. Devices additionally admit "variant-<N>"
// (the process-shifted golden device of device.GoldenVariant).
var (
	knownSubstrates = []string{"ro4350", "fr4"}
	knownAlgorithms = []string{"attain", "nsga2"}
)

// Load reads and validates a campaign spec file. The format follows the
// extension: .json is decoded directly; .yaml/.yml through the yamlite
// subset reader. Defaults are applied (see Normalize).
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var jsonBytes []byte
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		jsonBytes = data
	case ".yaml", ".yml":
		doc, err := parseYamlite(data)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", path, err)
		}
		jsonBytes, err = json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", path, err)
		}
	default:
		return nil, fmt.Errorf("campaign: %s: unsupported spec extension %q (want .json, .yaml or .yml)", path, ext)
	}
	dec := json.NewDecoder(strings.NewReader(string(jsonBytes)))
	dec.DisallowUnknownFields()
	spec := &Spec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	if err := spec.Normalize(); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return spec, nil
}

// Normalize applies defaults and validates the spec in place. Run and
// Expand require a normalized spec; Load normalizes automatically.
func (s *Spec) Normalize() error {
	if s.Version != 1 {
		return fmt.Errorf("version = %d, want 1", s.Version)
	}
	if !identRe.MatchString(s.Name) {
		return fmt.Errorf("name %q: want lowercase letters, digits and dashes", s.Name)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Axes.Bands) == 0 {
		return fmt.Errorf("axes.bands must name at least one band")
	}
	if len(s.Axes.Specs) == 0 {
		return fmt.Errorf("axes.specs must name at least one spec")
	}
	if len(s.Axes.Substrates) == 0 {
		s.Axes.Substrates = []string{"ro4350"}
	}
	if len(s.Axes.Devices) == 0 {
		s.Axes.Devices = []string{"golden"}
	}
	if len(s.Axes.Algorithms) == 0 {
		s.Axes.Algorithms = []string{"attain"}
	}
	if len(s.Axes.Seeds) == 0 {
		s.Axes.Seeds = []int64{s.Seed}
	}
	seen := map[string]bool{}
	for i, b := range s.Axes.Bands {
		if !identRe.MatchString(b.Name) {
			return fmt.Errorf("bands[%d].name %q: want lowercase letters, digits and dashes", i, b.Name)
		}
		if seen["b."+b.Name] {
			return fmt.Errorf("duplicate band name %q", b.Name)
		}
		seen["b."+b.Name] = true
		if !(b.FLowHz > 0 && b.FHighHz > b.FLowHz) {
			return fmt.Errorf("band %q: need 0 < f_low_hz < f_high_hz, got %g..%g", b.Name, b.FLowHz, b.FHighHz)
		}
		if b.Points < 0 || b.Points == 1 {
			return fmt.Errorf("band %q: points = %d, want 0 or >= 2", b.Name, b.Points)
		}
		if (b.StabLowHz != 0 || b.StabHighHz != 0) && !(b.StabLowHz > 0 && b.StabHighHz > b.StabLowHz) {
			return fmt.Errorf("band %q: need 0 < stab_low_hz < stab_high_hz, got %g..%g", b.Name, b.StabLowHz, b.StabHighHz)
		}
	}
	for i, sp := range s.Axes.Specs {
		if !identRe.MatchString(sp.Name) {
			return fmt.Errorf("specs[%d].name %q: want lowercase letters, digits and dashes", i, sp.Name)
		}
		if seen["s."+sp.Name] {
			return fmt.Errorf("duplicate spec name %q", sp.Name)
		}
		seen["s."+sp.Name] = true
		if sp.NFMaxDB <= 0 {
			return fmt.Errorf("spec %q: nf_max_db = %g, want > 0", sp.Name, sp.NFMaxDB)
		}
		if sp.PdcMaxW < 0 {
			return fmt.Errorf("spec %q: pdc_max_w = %g, want >= 0", sp.Name, sp.PdcMaxW)
		}
	}
	for _, sub := range s.Axes.Substrates {
		if _, err := substrateFor(sub); err != nil {
			return err
		}
		if seen["sub."+sub] {
			return fmt.Errorf("duplicate substrate %q", sub)
		}
		seen["sub."+sub] = true
	}
	for _, dev := range s.Axes.Devices {
		if _, err := deviceSeedFor(dev); err != nil {
			return err
		}
		if seen["dev."+dev] {
			return fmt.Errorf("duplicate device %q", dev)
		}
		seen["dev."+dev] = true
	}
	for _, alg := range s.Axes.Algorithms {
		ok := false
		for _, k := range knownAlgorithms {
			ok = ok || alg == k
		}
		if !ok {
			return fmt.Errorf("algorithm %q: want one of %s", alg, strings.Join(knownAlgorithms, ", "))
		}
		if seen["alg."+alg] {
			return fmt.Errorf("duplicate algorithm %q", alg)
		}
		seen["alg."+alg] = true
	}
	for _, sd := range s.Axes.Seeds {
		if sd <= 0 {
			return fmt.Errorf("seed %d: want > 0", sd)
		}
		if seen["seed."+strconv.FormatInt(sd, 10)] {
			return fmt.Errorf("duplicate seed %d", sd)
		}
		seen["seed."+strconv.FormatInt(sd, 10)] = true
	}
	if s.Budget.GlobalEvals < 0 || s.Budget.PolishEvals < 0 || s.Budget.Pop < 0 || s.Budget.Generations < 0 {
		return fmt.Errorf("budget fields must be >= 0")
	}
	return nil
}

// Expand enumerates the cell grid in the deterministic nested-axis order
// bands > specs > substrates > devices > algorithms > seeds. The order is
// part of the summary contract: cells appear in the summary exactly in
// expansion order.
func (s *Spec) Expand() []Cell {
	var out []Cell
	for _, b := range s.Axes.Bands {
		for _, sp := range s.Axes.Specs {
			for _, sub := range s.Axes.Substrates {
				for _, dev := range s.Axes.Devices {
					for _, alg := range s.Axes.Algorithms {
						for _, seed := range s.Axes.Seeds {
							out = append(out, Cell{
								Index: len(out),
								ID: fmt.Sprintf("%s.%s.%s.%s.%s.s%d",
									b.Name, sp.Name, sub, dev, alg, seed),
								Band: b, Spec: sp,
								Substrate: sub, Device: dev,
								Algorithm: alg, Seed: seed,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Digest is the FNV-1a fingerprint of the normalized spec's canonical JSON
// form. It keys the campaign's stage checkpoints — a resumed run only
// accepts cells recorded under an identical spec — and lets campaign-diff
// flag comparisons across different campaign definitions.
func (s *Spec) Digest() string {
	raw, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail. Keep the method
		// total anyway.
		return "invalid"
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range raw {
		h = (h ^ uint64(b)) * prime64
	}
	return fmt.Sprintf("%016x", h)
}

// attainBudget resolves the goal-attainment budget for the spec mode.
func (s *Spec) attainBudget() (global, polish int) {
	global, polish = 5000, 3000
	if s.Quick {
		global, polish = 1500, 900
	}
	if s.Budget.GlobalEvals > 0 {
		global = s.Budget.GlobalEvals
	}
	if s.Budget.PolishEvals > 0 {
		polish = s.Budget.PolishEvals
	}
	return global, polish
}

// nsgaBudget resolves the NSGA-II budget for the spec mode.
func (s *Spec) nsgaBudget() (pop, generations int) {
	pop, generations = 64, 60
	if s.Quick {
		pop, generations = 24, 18
	}
	if s.Budget.Pop > 0 {
		pop = s.Budget.Pop
	}
	if s.Budget.Generations > 0 {
		generations = s.Budget.Generations
	}
	return pop, generations
}

// bandPoints resolves a band's in-band grid size for the spec mode.
func (s *Spec) bandPoints(b BandAxis) int {
	if b.Points >= 2 {
		return b.Points
	}
	if s.Quick {
		return 7
	}
	return 11
}

// deviceSeedFor parses a device axis value: "golden" (seed 0) or
// "variant-<N>" for the process-shifted golden device with seed N.
func deviceSeedFor(name string) (variantSeed int64, err error) {
	if name == "golden" {
		return 0, nil
	}
	if rest, ok := strings.CutPrefix(name, "variant-"); ok {
		n, err := strconv.ParseInt(rest, 10, 64)
		if err == nil && n > 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("device %q: want \"golden\" or \"variant-<N>\"", name)
}
