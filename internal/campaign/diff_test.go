package campaign

import (
	"math"
	"strings"
	"testing"

	"gnsslna/internal/obs/replay"
)

// fixtureSummary builds a deterministic summary without running solvers.
func fixtureSummary(digest string, cells ...CellResult) *Summary {
	s := &Summary{Version: 1, Name: "fix", SpecDigest: digest, BaseSeed: 1,
		CellCount: len(cells), Cells: cells}
	for _, c := range cells {
		if c.Status == "ok" {
			s.OKCount++
		}
		if c.MeetsSpec {
			s.MeetsSpecCount++
		}
	}
	return s
}

func okCell(id string, nf float64) CellResult {
	return CellResult{
		ID: id, Band: "l1", Spec: "gnss", Substrate: "ro4350",
		Device: "golden", Algorithm: "attain", Seed: 1,
		Status: "ok", MeetsSpec: true, Evals: 100,
		Gamma:      replay.OptFloat(-0.05),
		Design:     []float64{0.4, 2, 5e-9, 0.5e-9, 3e-9, 1e-12},
		WorstNFdB:  replay.OptFloat(nf),
		MinGTdB:    replay.OptFloat(15.2),
		WorstS11dB: replay.OptFloat(-12),
		WorstS22dB: replay.OptFloat(-11),
		StabMargin: replay.OptFloat(0.04),
		PdcW:       replay.OptFloat(0.12),
	}
}

func TestDiffIdentical(t *testing.T) {
	a := fixtureSummary("d1", okCell("c1", 0.8), okCell("c2", 0.85))
	b := fixtureSummary("d1", okCell("c1", 0.8), okCell("c2", 0.85))
	res := Diff(a, b)
	if !res.Identical || !res.DigestMatch {
		t.Fatalf("identical summaries diff: %+v", res)
	}
	for _, d := range res.Cells {
		if !d.Equal {
			t.Fatalf("cell %s not equal: %+v", d.ID, d)
		}
	}
}

func TestDiffNaNSafe(t *testing.T) {
	a := fixtureSummary("d1", okCell("c1", 0.8))
	b := fixtureSummary("d1", okCell("c1", 0.8))
	// Both absent (NaN, JSON null): equal, not forever-different.
	a.Cells[0].Gamma = replay.OptFloat(math.NaN())
	b.Cells[0].Gamma = replay.OptFloat(math.NaN())
	if res := Diff(a, b); !res.Identical {
		t.Fatalf("NaN metrics compare unequal: %+v", res.Cells)
	}
	// One absent: a real difference.
	b.Cells[0].Gamma = replay.OptFloat(-0.1)
	res := Diff(a, b)
	if res.Identical || len(res.Cells[0].Fields) != 1 || res.Cells[0].Fields[0].Name != "gamma" {
		t.Fatalf("NaN-vs-value not reported: %+v", res.Cells)
	}
}

func TestDiffDisjointCells(t *testing.T) {
	a := fixtureSummary("d1", okCell("c1", 0.8))
	b := fixtureSummary("d1", okCell("c2", 0.9))
	res := Diff(a, b)
	if res.Identical || len(res.Cells) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Cells[0].OnlyIn != "a" || res.Cells[1].OnlyIn != "b" {
		t.Fatalf("only-in markers wrong: %+v", res.Cells)
	}
	var out strings.Builder
	if err := WriteDiffText(&out, "A", "B", a, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"removed in B (only in A): c1",
		"added in B (only in B): c2",
		"share no cells",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff text misses %q:\n%s", want, out.String())
		}
	}
}

// TestDiffGolden pins the campaign-diff report byte for byte: obsreport
// campaign-diff must keep emitting exactly this shape.
func TestDiffGolden(t *testing.T) {
	a := fixtureSummary("d1",
		okCell("l1.gnss.ro4350.golden.attain.s1", 0.82),
		okCell("l1.gnss.ro4350.golden.attain.s2", 0.85),
		okCell("l5.gnss.ro4350.golden.attain.s1", 0.88))
	bCell := okCell("l1.gnss.ro4350.golden.attain.s2", 0.79)
	bCell.MeetsSpec = false
	bCell.Evals = 140
	bCell.Gamma = replay.OptFloat(math.NaN())
	bAdded := okCell("l5.gnss.fr4.golden.attain.s1", 1.1)
	b := fixtureSummary("d2",
		okCell("l1.gnss.ro4350.golden.attain.s1", 0.82),
		bCell, bAdded)
	var out strings.Builder
	if err := WriteDiffText(&out, "run-a/campaign.summary.json", "run-b/campaign.summary.json", a, b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff_golden.txt", []byte(out.String()))
}

func TestWriteDiffTextIdenticalFooter(t *testing.T) {
	a := fixtureSummary("d1", okCell("c1", 0.8))
	b := fixtureSummary("d1", okCell("c1", 0.8))
	var out strings.Builder
	if err := WriteDiffText(&out, "A", "B", a, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "identical: 1 cells, no differences") {
		t.Fatalf("identical footer missing:\n%s", out.String())
	}
}
