package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSpec is a minimal valid campaign with tiny budgets, shared by the
// spec, run and diff tests.
func testSpec() *Spec {
	s := &Spec{
		Version: 1, Name: "test", Seed: 1, Quick: true, Workers: 1,
		Budget: Budget{GlobalEvals: 60, PolishEvals: 30, Pop: 8, Generations: 3},
		Axes: Axes{
			Bands: []BandAxis{{Name: "l1", FLowHz: 1.559e9, FHighHz: 1.61e9, Points: 3}},
			Specs: []SpecAxis{{Name: "gnss", NFMaxDB: 0.9, GTMinDB: 14, S11MaxDB: -10, S22MaxDB: -10, PdcMaxW: 0.25}},
		},
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

func writeSpecFile(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const yamlSpec = `
version: 1
name: two-cell
seed: 3
quick: true
budget:
  global_evals: 60
  polish_evals: 30
axes:
  bands:
    - name: l1
      f_low_hz: 1.559e9
      f_high_hz: 1.61e9
      points: 3
  specs:
    - name: gnss
      nf_max_db: 0.9
      gt_min_db: 14
      s11_max_db: -10
      s22_max_db: -10
  substrates: [ro4350, fr4]
`

func TestLoadYAMLSpec(t *testing.T) {
	s, err := Load(writeSpecFile(t, "c.yaml", yamlSpec))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Name != "two-cell" || !s.Quick || s.Budget.GlobalEvals != 60 {
		t.Fatalf("spec wrong: %+v", s)
	}
	// Defaults applied by Normalize.
	if got := s.Axes.Devices; len(got) != 1 || got[0] != "golden" {
		t.Fatalf("device default wrong: %v", got)
	}
	if got := s.Axes.Seeds; len(got) != 1 || got[0] != 3 {
		t.Fatalf("seed default wrong: %v", got)
	}
	cells := s.Expand()
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	if cells[0].ID != "l1.gnss.ro4350.golden.attain.s3" || cells[1].ID != "l1.gnss.fr4.golden.attain.s3" {
		t.Fatalf("cell IDs wrong: %q %q", cells[0].ID, cells[1].ID)
	}
}

func TestLoadJSONSpecEquivalent(t *testing.T) {
	jsonBody := `{
  "version": 1, "name": "two-cell", "seed": 3, "quick": true,
  "budget": {"global_evals": 60, "polish_evals": 30},
  "axes": {
    "bands": [{"name": "l1", "f_low_hz": 1.559e9, "f_high_hz": 1.61e9, "points": 3}],
    "specs": [{"name": "gnss", "nf_max_db": 0.9, "gt_min_db": 14, "s11_max_db": -10, "s22_max_db": -10}],
    "substrates": ["ro4350", "fr4"]
  }
}`
	fromYAML, err := Load(writeSpecFile(t, "c.yaml", yamlSpec))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(writeSpecFile(t, "c.json", jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	if fromYAML.Digest() != fromJSON.Digest() {
		t.Fatalf("YAML and JSON spellings digest differently: %s vs %s",
			fromYAML.Digest(), fromJSON.Digest())
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(writeSpecFile(t, "c.yaml", yamlSpec+"\ntypo_field: 1\n"))
	if err == nil || !strings.Contains(err.Error(), "typo_field") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"version", func(s *Spec) { s.Version = 2 }, "version"},
		{"name", func(s *Spec) { s.Name = "Bad Name" }, "name"},
		{"no bands", func(s *Spec) { s.Axes.Bands = nil }, "axes.bands"},
		{"no specs", func(s *Spec) { s.Axes.Specs = nil }, "axes.specs"},
		{"band range", func(s *Spec) { s.Axes.Bands[0].FHighHz = s.Axes.Bands[0].FLowHz }, "f_low_hz < f_high_hz"},
		{"one point", func(s *Spec) { s.Axes.Bands[0].Points = 1 }, "points"},
		{"stab range", func(s *Spec) { s.Axes.Bands[0].StabLowHz = 5e9; s.Axes.Bands[0].StabHighHz = 1e9 }, "stab_low_hz"},
		{"nf", func(s *Spec) { s.Axes.Specs[0].NFMaxDB = 0 }, "nf_max_db"},
		{"substrate", func(s *Spec) { s.Axes.Substrates = []string{"teflon"} }, "substrate"},
		{"device", func(s *Spec) { s.Axes.Devices = []string{"variant-x"} }, "device"},
		{"algorithm", func(s *Spec) { s.Axes.Algorithms = []string{"pso"} }, "algorithm"},
		{"seed", func(s *Spec) { s.Axes.Seeds = []int64{0} }, "seed"},
		{"dup band", func(s *Spec) { s.Axes.Bands = append(s.Axes.Bands, s.Axes.Bands[0]) }, "duplicate band"},
		{"dup seed", func(s *Spec) { s.Axes.Seeds = []int64{2, 2} }, "duplicate seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mut(s)
			err := s.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestExpandOrderAndIndex(t *testing.T) {
	s := testSpec()
	s.Axes.Substrates = []string{"ro4350", "fr4"}
	s.Axes.Algorithms = []string{"attain", "nsga2"}
	s.Axes.Seeds = []int64{1, 2}
	cells := s.Expand()
	if len(cells) != 8 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	// Seeds vary fastest, then algorithms, then substrates.
	wantPrefix := []string{
		"l1.gnss.ro4350.golden.attain.s1",
		"l1.gnss.ro4350.golden.attain.s2",
		"l1.gnss.ro4350.golden.nsga2.s1",
	}
	for i, want := range wantPrefix {
		if cells[i].ID != want || cells[i].Index != i {
			t.Fatalf("cell %d = %q (index %d), want %q", i, cells[i].ID, cells[i].Index, want)
		}
	}
}

func TestDigestTracksSpecContent(t *testing.T) {
	a, b := testSpec(), testSpec()
	if a.Digest() != b.Digest() {
		t.Fatal("identical specs digest differently")
	}
	b.Budget.GlobalEvals++
	if a.Digest() == b.Digest() {
		t.Fatal("edited spec kept the same digest")
	}
}

func TestDeviceSeedFor(t *testing.T) {
	if _, err := deviceSeedFor("golden"); err != nil {
		t.Fatal(err)
	}
	if n, err := deviceSeedFor("variant-7"); err != nil || n != 7 {
		t.Fatalf("variant-7: %d, %v", n, err)
	}
	for _, bad := range []string{"variant-0", "variant--1", "variant-", "goldenx"} {
		if _, err := deviceSeedFor(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
