package campaign

import (
	"reflect"
	"strings"
	"testing"
)

func TestYamliteCampaignShape(t *testing.T) {
	doc := `
# A campaign spec in the shapes Load feeds through yamlite.
version: 1
name: demo
seed: 7
quick: true
budget:
  global_evals: 120
  polish_evals: 60
axes:
  bands:
    - name: l1
      f_low_hz: 1.559e9
      f_high_hz: 1.61e9
      points: 3
    - {name: l5, f_low_hz: 1.164e9, f_high_hz: 1.189e9}
  specs:
    - name: tight
      nf_max_db: 0.9
      gt_min_db: 14
      s11_max_db: -10
      s22_max_db: -10
      pdc_max_w: 0.25
  substrates: [ro4350, fr4]
  algorithms:
    - attain
  seeds: [1, 2] # two repeats
`
	v, err := parseYamlite([]byte(doc))
	if err != nil {
		t.Fatalf("parseYamlite: %v", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("top level is %T, want map", v)
	}
	if m["version"] != int64(1) || m["name"] != "demo" || m["quick"] != true {
		t.Fatalf("scalars wrong: %v", m)
	}
	budget := m["budget"].(map[string]any)
	if budget["global_evals"] != int64(120) {
		t.Fatalf("nested map wrong: %v", budget)
	}
	axes := m["axes"].(map[string]any)
	bands := axes["bands"].([]any)
	if len(bands) != 2 {
		t.Fatalf("bands: %v", bands)
	}
	b0 := bands[0].(map[string]any)
	if b0["name"] != "l1" || b0["f_low_hz"] != 1.559e9 || b0["points"] != int64(3) {
		t.Fatalf("block list-of-maps item wrong: %v", b0)
	}
	b1 := bands[1].(map[string]any)
	if b1["name"] != "l5" || b1["f_high_hz"] != 1.189e9 {
		t.Fatalf("flow map item wrong: %v", b1)
	}
	if got := axes["substrates"]; !reflect.DeepEqual(got, []any{"ro4350", "fr4"}) {
		t.Fatalf("flow list wrong: %v", got)
	}
	if got := axes["algorithms"]; !reflect.DeepEqual(got, []any{"attain"}) {
		t.Fatalf("block list wrong: %v", got)
	}
	if got := axes["seeds"]; !reflect.DeepEqual(got, []any{int64(1), int64(2)}) {
		t.Fatalf("trailing-comment flow list wrong: %v", got)
	}
}

func TestYamliteScalars(t *testing.T) {
	doc := `
b_true: true
b_false: false
n: null
tilde: ~
i: -42
f: 2.5
e: 1.15e9
s: hello world
q: "quoted: with colon"
sq: 'single'
c: 3 # trailing comment
`
	v, err := parseYamlite([]byte(doc))
	if err != nil {
		t.Fatalf("parseYamlite: %v", err)
	}
	m := v.(map[string]any)
	want := map[string]any{
		"b_true": true, "b_false": false, "n": nil, "tilde": nil,
		"i": int64(-42), "f": 2.5, "e": 1.15e9,
		"s": "hello world", "q": "quoted: with colon", "sq": "single",
		"c": int64(3),
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %v, want %v", m, want)
	}
}

func TestYamliteNestedListItemBlocks(t *testing.T) {
	doc := `
items:
  - name: a
    inner:
      x: 1
      y: [2, 3]
  - name: b
`
	v, err := parseYamlite([]byte(doc))
	if err != nil {
		t.Fatalf("parseYamlite: %v", err)
	}
	items := v.(map[string]any)["items"].([]any)
	a := items[0].(map[string]any)
	inner := a["inner"].(map[string]any)
	if inner["x"] != int64(1) || !reflect.DeepEqual(inner["y"], []any{int64(2), int64(3)}) {
		t.Fatalf("nested block inside list item wrong: %v", inner)
	}
	if items[1].(map[string]any)["name"] != "b" {
		t.Fatalf("second item wrong: %v", items[1])
	}
}

func TestYamliteErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"tabs", "a:\n\tb: 1\n", "tabs are not allowed"},
		{"dup key", "a: 1\na: 2\n", "duplicate key"},
		{"dup flow key", "m: {a: 1, a: 2}\n", "duplicate key"},
		{"empty", "# only a comment\n", "empty document"},
		{"bad flow", "l: [1, 2\n", "unterminated flow list"},
		{"bad map", "m: {a: 1\n", "unterminated flow map"},
		{"unterminated string", `s: "oops` + "\n", "unterminated string"},
		{"garbage", "x: 1} trailing\n", "trailing garbage"},
		{"list in map", "a: 1\n- item\n", "list item inside a map block"},
		{"quoted key", `"k": 1` + "\n", "quoted keys are not supported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYamlite([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestYamliteErrorsCarryLineNumbers(t *testing.T) {
	doc := "a: 1\n\n# comment\nb: {x: }\n"
	_, err := parseYamlite([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v, want line 4", err)
	}
}
